// E6a (thesis §8.2.2): ZWSM disconnection management. For outages of
// increasing length, measure whether the connection survives and how long
// it takes to resume after reconnection, with and without the wsize:zwsm
// service (EEM-triggered at the proxy).
#include "bench/common.h"

#include "src/util/strings.h"

using namespace commabench;

namespace {

struct ZwsmResult {
  bool survived = false;
  double resume_seconds = -1;
};

ZwsmResult Run(bool with_zwsm, sim::Duration outage) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.eem.check_interval = 100 * sim::kMillisecond;
  config.start_command_server = false;
  core::CommaSystem comma(config);
  if (with_zwsm) {
    proxy::StreamKey ack_path{comma.scenario().mobile_addr(), 80, net::Ipv4Address(), 0};
    std::string error;
    comma.sp().AddService("launcher", ack_path, {"tcp", "wsize:zwsm:2"}, &error);
  }
  tcp::TcpConfig tcp_config;
  tcp_config.max_data_retries = 8;
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80, tcp_config);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::PatternPayload(5'000'000), tcp_config);
  comma.sim().RunFor(3 * sim::kSecond);
  comma.scenario().wireless_link().SetUp(false);
  comma.sim().RunFor(outage);
  const size_t delivered = sink.bytes_received();
  comma.scenario().wireless_link().SetUp(true);
  const sim::TimePoint reconnect = comma.sim().Now();
  ZwsmResult result;
  while (comma.sim().Now() < reconnect + 300 * sim::kSecond) {
    comma.sim().RunFor(50 * sim::kMillisecond);
    if (sink.bytes_received() > delivered) {
      result.survived = true;
      result.resume_seconds = sim::DurationToSeconds(comma.sim().Now() - reconnect);
      break;
    }
    if (sender.connection()->state() == tcp::TcpState::kClosed) {
      break;
    }
  }
  return result;
}

}  // namespace

int main() {
  PrintHeader("E6a", "ZWSM disconnection management",
              "Outage survival and resume latency, with vs without the zero-\n"
              "window-size message service. Expected shape: ZWSM resumes in a\n"
              "fraction of a second regardless of outage length; plain TCP's\n"
              "resume time grows with the backed-off RTO and long outages kill\n"
              "the connection entirely (\"stays alive indefinitely\").");

  std::printf("%-12s | %-9s %-14s | %-9s %-14s\n", "outage (s)", "plain", "resume (s)",
              "zwsm", "resume (s)");
  for (sim::Duration outage : {10 * sim::kSecond, 30 * sim::kSecond, 60 * sim::kSecond,
                               120 * sim::kSecond, 400 * sim::kSecond}) {
    ZwsmResult plain = Run(false, outage);
    ZwsmResult zwsm = Run(true, outage);
    auto cell = [](const ZwsmResult& r) {
      return r.survived ? util::Format("%.2f", r.resume_seconds) : std::string("dead");
    };
    std::printf("%-12.0f | %-9s %-14s | %-9s %-14s\n", sim::DurationToSeconds(outage),
                plain.survived ? "alive" : "DEAD", cell(plain).c_str(),
                zwsm.survived ? "alive" : "DEAD", cell(zwsm).c_str());
  }
  return 0;
}

// Recovery-latency characterization for stateful gateway failover
// (docs/robustness.md, "Checkpoint & failover").
//
// Each seed drives one deterministic chaos scenario (core::RunChaosScenario):
// wireless flaps, an unplanned primary-gateway crash in [4s, 8s), and bulk
// transfers that must survive the takeover. Two latencies are reported per
// seed:
//   detection = takeover_at - crash_at   (standby watchdog firing)
//   recovery  = finished_at - crash_at   (last stream byte after the crash)
// plus restored/rebuilt stream accounting, and p50/p90/p99 across seeds.
//
// Flags:
//   --seeds N            number of seeds to run (default 8, seeds 1..N)
//   --metrics-json PATH  write the latency percentiles as one JSON object
//   --soak N             soak mode: run N seeds and print the per-seed
//                        determinism witnesses (applied-fault log + metric
//                        snapshot); CI runs this twice and diffs the output
//   --soak-log PATH      in soak mode, also write the witnesses to PATH
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/chaos.h"
#include "src/util/stats.h"

namespace {

using comma::core::ChaosOptions;
using comma::core::ChaosResult;
using comma::core::RunChaosScenario;

double ToMs(comma::sim::Duration d) { return static_cast<double>(d) / 1000.0; }

int SoakMode(int seeds, const std::string& log_path) {
  std::string witness;
  bool all_ok = true;
  for (int s = 1; s <= seeds; ++s) {
    ChaosOptions options;
    options.seed = static_cast<uint64_t>(s);
    const ChaosResult r = RunChaosScenario(options);
    all_ok = all_ok && r.all_completed;
    witness += "=== seed " + std::to_string(s) + " ===\n";
    witness += r.fault_log;
    witness += r.metrics;
    for (const auto& stream : r.streams) {
      witness += "port=" + std::to_string(stream.port) +
                 " bytes=" + std::to_string(stream.bytes) +
                 " last_byte_at=" + std::to_string(stream.last_byte_at) + "\n";
    }
    std::printf("seed %2d: completed=%s crash=%llu takeover=%llu\n", s,
                r.all_completed ? "yes" : "NO",
                static_cast<unsigned long long>(r.crash_at),
                static_cast<unsigned long long>(r.takeover_at));
  }
  if (!log_path.empty()) {
    std::FILE* f = std::fopen(log_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write soak log: %s\n", log_path.c_str());
      return 1;
    }
    std::fwrite(witness.data(), 1, witness.size(), f);
    std::fclose(f);
    std::printf("soak log: %s (%zu bytes)\n", log_path.c_str(), witness.size());
  } else {
    std::printf("%s", witness.c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 8;
  int soak = 0;
  std::string metrics_path;
  std::string soak_log;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--soak-log") == 0) {
      soak_log = argv[i + 1];
    }
  }
  if (soak > 0) {
    return SoakMode(soak, soak_log);
  }

  std::printf("================================================================\n");
  std::printf("E18: Stateful failover recovery latency\n");
  std::printf("Per seed: flaps + a primary-gateway crash mid-transfer; the\n");
  std::printf("standby restores the last checkpoint, Mobile IP re-registers,\n");
  std::printf("and every stream must complete. Latencies are crash-relative.\n");
  std::printf("================================================================\n");
  std::printf("%5s %10s %12s %12s %9s %9s %10s\n", "seed", "completed", "detect ms",
              "recover ms", "restored", "rebuilt", "streams");

  comma::util::Percentiles detection_ms;
  comma::util::Percentiles recovery_ms;
  bool all_ok = true;
  for (int s = 1; s <= seeds; ++s) {
    ChaosOptions options;
    options.seed = static_cast<uint64_t>(s);
    const ChaosResult r = RunChaosScenario(options);
    const double detect = ToMs(r.takeover_at - r.crash_at);
    const double recover = ToMs(r.finished_at - r.crash_at);
    detection_ms.Add(detect);
    recovery_ms.Add(recover);
    all_ok = all_ok && r.all_completed;
    std::printf("%5d %10s %12.1f %12.1f %9llu %9llu %10llu\n", s,
                r.all_completed ? "yes" : "NO", detect, recover,
                static_cast<unsigned long long>(r.streams_restored),
                static_cast<unsigned long long>(r.streams_rebuilt),
                static_cast<unsigned long long>(r.pre_crash_streams));
  }

  std::printf("\n%12s %10s %10s %10s\n", "", "p50", "p90", "p99");
  std::printf("%12s %10.1f %10.1f %10.1f\n", "detect ms", detection_ms.Percentile(50),
              detection_ms.Percentile(90), detection_ms.Percentile(99));
  std::printf("%12s %10.1f %10.1f %10.1f\n", "recover ms", recovery_ms.Percentile(50),
              recovery_ms.Percentile(90), recovery_ms.Percentile(99));

  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics snapshot: %s\n", metrics_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"bench\":\"recovery\",\"seeds\":%d,\"completed\":%s,"
                 "\"detection_ms\":{\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f},"
                 "\"recovery_ms\":{\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f}}\n",
                 seeds, all_ok ? "true" : "false", detection_ms.Percentile(50),
                 detection_ms.Percentile(90), detection_ms.Percentile(99),
                 recovery_ms.Percentile(50), recovery_ms.Percentile(90),
                 recovery_ms.Percentile(99));
    std::fclose(f);
    std::printf("metrics snapshot: %s\n", metrics_path.c_str());
  }

  std::printf("\nJSON {\"bench\":\"recovery\",\"seeds\":%d,\"completed\":%s,"
              "\"detect_p50_ms\":%.1f,\"recover_p99_ms\":%.1f}\n",
              seeds, all_ok ? "true" : "false", detection_ms.Percentile(50),
              recovery_ms.Percentile(99));
  return all_ok ? 0 : 1;
}

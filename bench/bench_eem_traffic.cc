// E12 (thesis §6.1.2/§6.1.3): monitor traffic by notification method. The
// thesis centralizes gathering on servers and batches updates specifically
// to keep wireless monitor traffic low; this bench measures the bytes each
// client strategy actually generates for the same information need
// (tracking 5 variables for 60 s).
#include "bench/common.h"

#include "src/monitor/eem_client.h"
#include "src/monitor/eem_server.h"

using namespace commabench;

namespace {

const char* kVariables[] = {"sysUpTime", "ipInReceives", "bytes_rx", "ethInAvg", "cpuLoadAvg"};

struct TrafficResult {
  uint64_t client_tx = 0;
  uint64_t server_tx = 0;
  uint64_t datagrams = 0;
};

TrafficResult Run(const std::string& strategy) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.eem.check_interval = sim::kSecond;
  config.eem.update_interval = 10 * sim::kSecond;  // The thesis's ~10 s.
  config.start_command_server = false;
  core::CommaSystem comma(config);
  monitor::EemClient client(&comma.scenario().mobile_host());

  auto id_for = [&](const char* name) {
    monitor::VariableId id;
    id.name = name;
    id.server = comma.scenario().gateway_wireless_addr();
    return id;
  };

  // Keep some background traffic so counters keep changing.
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::PatternPayload(4'000'000));

  if (strategy == "periodic" || strategy == "interrupt") {
    const monitor::NotifyMode mode = strategy == "periodic"
                                         ? monitor::NotifyMode::kPeriodic
                                         : monitor::NotifyMode::kInterrupt;
    for (const char* name : kVariables) {
      client.Register(id_for(name), monitor::Attr::Always(mode));
    }
    comma.sim().RunFor(60 * sim::kSecond);
  } else {
    // Polling: ask for each variable once a second, as a poll-based client
    // with a 1 Hz display would.
    for (int second = 0; second < 60; ++second) {
      for (const char* name : kVariables) {
        client.GetValueOnce(id_for(name), nullptr);
      }
      comma.sim().RunFor(sim::kSecond);
    }
  }
  TrafficResult r;
  r.client_tx = client.bytes_sent();
  r.server_tx = comma.eem_server()->bytes_sent();
  r.datagrams = comma.eem_server()->updates_sent() + comma.eem_server()->notifies_sent();
  return r;
}

}  // namespace

int main() {
  PrintHeader("E12", "EEM monitor traffic by notification method",
              "Five variables tracked for 60 s across the wireless hop.\n"
              "Expected shape: polling costs an order of magnitude more than the\n"
              "server-push methods; batched periodic updates cost the least per\n"
              "variable; interrupts pay only for actual changes.");

  std::printf("%-12s %14s %14s %14s\n", "method", "client tx B", "server tx B",
              "server msgs");
  for (const char* strategy_name : {"poll", "periodic", "interrupt"}) {
    const std::string strategy(strategy_name);
    TrafficResult r = Run(strategy);
    std::printf("%-12s %14llu %14llu %14llu\n", strategy.c_str(),
                static_cast<unsigned long long>(r.client_tx),
                static_cast<unsigned long long>(r.server_tx),
                static_cast<unsigned long long>(r.datagrams));
  }
  std::printf("\n\"Communication overhead is greatly increased since different\n"
              "metrics must be queried separately, where both periodic and\n"
              "interrupt-style updates can include all related information in a\n"
              "single message\" (6.1.3).\n");
  return 0;
}

// E13 (thesis §3.2, §5.1.2): I-TCP split connections. Two measurements:
//  (a) goodput vs loss — splitting isolates the wired leg from wireless
//      loss, so I-TCP also beats plain TCP;
//  (b) the price: when the wireless leg dies mid-transfer, the relay has
//      already acknowledged bytes the mobile never received (the broken
//      end-to-end contract that motivates the thesis's packet-level
//      transparency instead).
#include "bench/common.h"

#include "src/baselines/itcp.h"

using namespace commabench;

namespace {

BulkRunResult RunViaItcp(double loss, uint64_t seed) {
  core::ScenarioConfig scenario;
  scenario.wireless.loss_probability = loss;
  scenario.seed = seed;
  core::WirelessScenario s(scenario);
  baselines::ItcpRelay relay(&s.gateway(), 8080, s.mobile_addr(), 80);
  apps::BulkSink sink(&s.mobile_host(), 80);
  apps::BulkSender sender(&s.wired_host(), s.gateway_wired_addr(), 8080,
                          apps::PatternPayload(400'000));
  while (!sender.finished() && s.sim().Now() < 2000 * sim::kSecond) {
    s.sim().RunFor(100 * sim::kMillisecond);
  }
  // I-TCP completion = the mobile actually has everything.
  while (sink.bytes_received() < 400'000 && s.sim().Now() < 2000 * sim::kSecond) {
    s.sim().RunFor(100 * sim::kMillisecond);
  }
  BulkRunResult r;
  r.completed = sink.bytes_received() == 400'000;
  r.seconds = sim::DurationToSeconds(s.sim().Now());
  r.goodput_kbps = r.completed ? 400'000 * 8.0 / r.seconds / 1000.0 : 0;
  r.delivered = sink.bytes_received();
  return r;
}

}  // namespace

int main() {
  PrintHeader("E13", "I-TCP split connection",
              "(a) goodput vs loss for plain TCP vs the split-connection relay;\n"
              "(b) the end-to-end violation when the wireless leg dies.");

  std::printf("%-10s %16s %16s\n", "loss", "plain kbit/s", "i-tcp kbit/s");
  constexpr int kRepeats = 5;
  for (double loss : {0.0, 0.02, 0.05, 0.10}) {
    double plain_goodput = 0;
    double split_goodput = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const uint64_t seed = 3000 + static_cast<uint64_t>(loss * 10000) + rep;
      core::CommaSystemConfig plain_cfg;
      plain_cfg.scenario.wireless.loss_probability = loss;
      plain_cfg.scenario.seed = seed;
      plain_cfg.start_eem = false;
      plain_cfg.start_command_server = false;
      plain_goodput += RunBulk(plain_cfg, 400'000, nullptr, 2000 * sim::kSecond).goodput_kbps /
                       kRepeats;
      split_goodput += RunViaItcp(loss, seed).goodput_kbps / kRepeats;
    }
    std::printf("%-10.2f %16.1f %16.1f\n", loss, plain_goodput, split_goodput);
  }

  std::printf("\n(b) end-to-end semantics: kill the wireless link mid-transfer\n");
  {
    core::ScenarioConfig scenario;
    scenario.wireless.loss_probability = 0.0;
    core::WirelessScenario s(scenario);
    tcp::TcpConfig wireless_cfg = baselines::ItcpRelay::WirelessTuned();
    wireless_cfg.max_data_retries = 6;
    baselines::ItcpRelay relay(&s.gateway(), 8080, s.mobile_addr(), 80, wireless_cfg);
    apps::BulkSink sink(&s.mobile_host(), 80);
    apps::BulkSender sender(&s.wired_host(), s.gateway_wired_addr(), 8080,
                            apps::PatternPayload(2'000'000));
    s.sim().RunFor(2 * sim::kSecond);
    s.wireless_link().SetUp(false);
    s.sim().RunFor(600 * sim::kSecond);
    std::printf("    sender handed the relay : %10llu bytes (all acked back to it)\n",
                static_cast<unsigned long long>(relay.stats().bytes_wired_in));
    std::printf("    mobile actually received: %10zu bytes\n", sink.bytes_received());
    std::printf("    orphaned (acked, lost)  : %10llu bytes  <- the 5.1.2 violation\n",
                static_cast<unsigned long long>(relay.stats().bytes_orphaned));
  }
  std::printf("\nThe thesis's TTSF keeps modifications at packet level precisely to\n"
              "avoid this: nothing is acknowledged that the service did not consume\n"
              "deliberately (transparent drop) or deliver.\n");
  return 0;
}

// Ablations for design choices DESIGN.md calls out.
//
//  A1 — snoop's local timer: stall-gated (ours) vs fixed-period (naive).
//       Deep drop-tail queues inflate the RTT past any fixed timer, so the
//       naive variant duplicates merely-delayed segments; the duplicates
//       come back as dupacks and poke the sender into spurious recovery.
//
//  A2 — ARQ window size: the link-layer ARQ protects at most W frames at a
//       time; beyond W packets travel unprotected. Sweeps W to show the
//       protection/throughput trade-off at 8% loss.
//
//  A3 — TCP receive window vs the 32-packet bottleneck queue: why the
//       scenario sits in the window-limited regime the experiments assume.
#include "bench/common.h"

#include "src/baselines/link_arq.h"

using namespace commabench;

namespace {

BulkRunResult RunSnoopVariant(bool fixed_timer, double loss, uint64_t seed) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = loss;
  config.scenario.seed = seed;
  config.start_eem = false;
  config.start_command_server = false;
  auto setup = [fixed_timer](core::CommaSystem& comma) {
    proxy::StreamKey key{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 0};
    std::string error;
    if (fixed_timer) {
      comma.sp().AddService("launcher", key, {"tcp", "snoop:fixed"}, &error);
    } else {
      comma.sp().AddService("launcher", key, {"tcp", "snoop"}, &error);
    }
  };
  return RunBulk(config, 400'000, setup, 2000 * sim::kSecond);
}

}  // namespace

int main() {
  PrintHeader("ABL", "Ablations",
              "Design-choice ablations: snoop timer policy, ARQ window size,\n"
              "receive-window vs queue regime.");

  std::printf("A1: snoop local-timer policy (400 KB transfer, 5 seeds)\n");
  std::printf("%-8s | %-26s | %-26s\n", "", "stall-gated (default)", "fixed-period");
  std::printf("%-8s | %12s %12s | %12s %12s\n", "loss", "kbit/s", "sender retx", "kbit/s",
              "sender retx");
  for (double loss : {0.0, 0.02, 0.10}) {
    double goodput[2] = {0, 0};
    uint64_t retx[2] = {0, 0};
    for (int rep = 0; rep < 5; ++rep) {
      for (int fixed = 0; fixed <= 1; ++fixed) {
        BulkRunResult r =
            RunSnoopVariant(fixed != 0, loss, 7000 + static_cast<uint64_t>(loss * 1000) + rep);
        goodput[fixed] += r.goodput_kbps / 5;
        retx[fixed] += r.bytes_retransmitted / 5;
      }
    }
    std::printf("%-8.2f | %12.1f %12llu | %12.1f %12llu\n", loss, goodput[0],
                static_cast<unsigned long long>(retx[0]), goodput[1],
                static_cast<unsigned long long>(retx[1]));
  }

  std::printf("\nA2: ARQ window size at 8%% loss (200 KB transfer)\n");
  std::printf("%-10s %14s %14s %16s\n", "window", "goodput kbit/s", "link retx",
              "sender retx B");
  for (size_t window : {4ul, 16ul, 64ul, 256ul}) {
    core::ScenarioConfig scenario;
    scenario.wireless.loss_probability = 0.08;
    scenario.seed = 8800;
    core::WirelessScenario s(scenario);
    baselines::ArqConfig arq_cfg;
    arq_cfg.window = window;
    baselines::ArqEndpoint gw(&s.gateway(), s.mobile_addr(),
                              baselines::ArqEndpoint::WrapMode::kTowardPeerAddress, arq_cfg);
    baselines::ArqEndpoint mob(&s.mobile_host(), s.gateway_wireless_addr(),
                               baselines::ArqEndpoint::WrapMode::kEverything, arq_cfg);
    apps::BulkSink sink(&s.mobile_host(), 80);
    apps::BulkSender sender(&s.wired_host(), s.mobile_addr(), 80, apps::PatternPayload(200'000));
    while (!sender.finished() && s.sim().Now() < 2000 * sim::kSecond) {
      s.sim().RunFor(100 * sim::kMillisecond);
    }
    std::printf("%-10zu %14.1f %14llu %16llu\n", window, sender.GoodputBps() / 1000.0,
                static_cast<unsigned long long>(gw.stats().retransmissions),
                static_cast<unsigned long long>(
                    sender.connection()->stats().bytes_retransmitted));
  }

  std::printf("\nA3: receive window vs queue (clean link, 400 KB)\n");
  std::printf("%-14s %14s\n", "recv window", "goodput kbit/s");
  for (uint32_t window : {8u * 1024, 16u * 1024, 32u * 1024, 60u * 1024}) {
    core::ScenarioConfig scenario;
    scenario.wireless.loss_probability = 0.0;
    core::WirelessScenario s(scenario);
    tcp::TcpConfig cfg;
    cfg.recv_buffer = window;
    apps::BulkSink sink(&s.mobile_host(), 80, cfg);
    apps::BulkSender sender(&s.wired_host(), s.mobile_addr(), 80, apps::PatternPayload(400'000),
                            cfg);
    while (!sender.finished() && s.sim().Now() < 600 * sim::kSecond) {
      s.sim().RunFor(100 * sim::kMillisecond);
    }
    std::printf("%-14u %14.1f\n", window, sender.GoodputBps() / 1000.0);
  }
  std::printf("\nThe default 32 KB window roughly matches the 32-packet queue: the\n"
              "flow is window-limited, which is why cwnd halvings are cheap (E5's\n"
              "low-loss crossover) and queueing delay dominates the RTT.\n");
  return 0;
}

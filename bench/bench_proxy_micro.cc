// E11 (thesis §5.1.3): the run-time environment question — what does the
// native (binary) filter environment cost per packet? Google-benchmark
// microbenchmarks of the proxy's hot paths: packet construction, checksum
// work, the in/out filter queues, TTSF transformation, and the raw
// simulator event loop.
#include <benchmark/benchmark.h>

#include "src/filters/standard_set.h"
#include "src/net/checksum.h"
#include "src/obs/metric_registry.h"
#include "src/proxy/service_proxy.h"
#include "src/core/scenario.h"
#include "src/util/compress.h"

namespace {

using namespace comma;

net::PacketPtr MakeSegment(size_t payload_len) {
  net::TcpHeader h;
  h.src_port = 7;
  h.dst_port = 1169;
  h.seq = 1000;
  h.flags = net::kTcpAck;
  h.window = 8192;
  return net::Packet::MakeTcp(net::Ipv4Address(10, 0, 0, 99), net::Ipv4Address(11, 11, 10, 10),
                              h, util::Bytes(payload_len, 0x55));
}

void BM_PacketConstructTcp(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeSegment(static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_PacketConstructTcp)->Arg(0)->Arg(1000);

void BM_InternetChecksum(benchmark::State& state) {
  util::Bytes data(static_cast<size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::InternetChecksum(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500)->Arg(65536);

void BM_UpdateChecksums(benchmark::State& state) {
  auto p = MakeSegment(1000);
  for (auto _ : state) {
    p->tcp().window ^= 1;  // Dirty it.
    p->UpdateChecksums();
    benchmark::DoNotOptimize(p->tcp().checksum);
  }
}
BENCHMARK(BM_UpdateChecksums);

// The per-packet cost of the proxy with N filters attached to the stream.
void BM_FilterQueue(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.0;
  core::WirelessScenario scenario(cfg);
  proxy::ServiceProxy sp(&scenario.gateway(), filters::StandardRegistry());
  proxy::StreamKey key{scenario.wired_addr(), 7, scenario.mobile_addr(), 1169};
  std::string error;
  const int n_filters = static_cast<int>(state.range(0));
  if (n_filters >= 1) {
    sp.AddService("tcp", key, {}, &error);
  }
  if (n_filters >= 2) {
    sp.AddService("meter", key, {}, &error);
  }
  if (n_filters >= 3) {
    sp.AddService("wsize", key, {"clamp", "8192"}, &error);
  }
  if (n_filters >= 4) {
    sp.AddService("rdrop", key, {"0"}, &error);
  }
  net::TapContext ctx{&scenario.gateway(), 0};
  for (auto _ : state) {
    net::PacketPtr p = MakeSegment(1000);
    benchmark::DoNotOptimize(sp.OnPacket(p, ctx));
  }
}
BENCHMARK(BM_FilterQueue)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// The observability substrate's hot-path primitives (docs/observability.md).
// BM_FilterQueue above already includes the per-filter telemetry cost — the
// registry is always on — these isolate the primitives themselves so a
// regression is attributable.
void BM_MetricCounterInc(benchmark::State& state) {
  obs::MetricRegistry reg;
  obs::Counter* c = reg.GetCounter("bench.counter");
  for (auto _ : state) {
    c->Inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MetricCounterInc);

void BM_MetricHistogramObserve(benchmark::State& state) {
  obs::MetricRegistry reg;
  obs::HistogramMetric* h = reg.GetHistogram("bench.hist", 0.0, 1000.0, 50);
  double x = 0.0;
  for (auto _ : state) {
    h->Observe(x);
    x += 1.0;
    if (x >= 1000.0) {
      x = 0.0;
    }
  }
}
BENCHMARK(BM_MetricHistogramObserve);

// Snapshot of a realistically-sized registry (what `stats` and the EEM
// bridge pay) — off the packet path, but bounds the publication cost.
void BM_MetricSnapshot(benchmark::State& state) {
  obs::MetricRegistry reg;
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("bench.family" + std::to_string(i % 10) + ".counter" + std::to_string(i))
        ->Inc(static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.Snapshot());
  }
}
BENCHMARK(BM_MetricSnapshot);

void BM_CompressLz(benchmark::State& state) {
  util::Bytes text;
  const char* phrase = "transparent communication management in wireless networks ";
  while (text.size() < 1000) {
    text.insert(text.end(), phrase, phrase + strlen(phrase));
  }
  text.resize(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Compress(text, util::Codec::kLz));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_CompressLz);

void BM_DecompressLz(benchmark::State& state) {
  util::Bytes text(1000);
  for (size_t i = 0; i < text.size(); ++i) {
    text[i] = static_cast<uint8_t>("abcdabcdefef"[i % 12]);
  }
  util::Bytes compressed = util::Compress(text, util::Codec::kLz);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Decompress(compressed));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_DecompressLz);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventLoop);

}  // namespace

BENCHMARK_MAIN();

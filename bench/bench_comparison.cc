// E1 (thesis Table 3.1): a comparison of the reviewed approaches. The
// thesis's table is qualitative; this bench reprints those verdicts for the
// systems we implemented and backs them with a measured column: goodput of
// the same 400 KB transfer over the same 5%-lossy wireless hop, same seed.
#include "bench/common.h"

#include "src/baselines/itcp.h"
#include "src/baselines/link_arq.h"

using namespace commabench;

namespace {

constexpr double kLoss = 0.05;
constexpr size_t kBytes = 400'000;
constexpr int kRepeats = 5;
uint64_t kSeed = 5150;  // Varied per repeat below.

double Averaged(double (*fn)()) {
  double total = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    kSeed = 5150 + static_cast<uint64_t>(rep);
    total += fn();
  }
  return total / kRepeats;
}

double RunPlain() {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = kLoss;
  config.scenario.seed = kSeed;
  config.start_eem = false;
  config.start_command_server = false;
  return RunBulk(config, kBytes, nullptr, 2000 * sim::kSecond).goodput_kbps;
}

double RunSnoopComma() {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = kLoss;
  config.scenario.seed = kSeed;
  config.start_eem = false;
  config.start_command_server = false;
  auto setup = [](core::CommaSystem& comma) {
    proxy::StreamKey key{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 0};
    std::string error;
    comma.sp().AddService("launcher", key, {"tcp", "snoop"}, &error);
  };
  return RunBulk(config, kBytes, setup, 2000 * sim::kSecond).goodput_kbps;
}

double RunItcp() {
  core::ScenarioConfig scenario;
  scenario.wireless.loss_probability = kLoss;
  scenario.seed = kSeed;
  core::WirelessScenario s(scenario);
  baselines::ItcpRelay relay(&s.gateway(), 8080, s.mobile_addr(), 80);
  apps::BulkSink sink(&s.mobile_host(), 80);
  apps::BulkSender sender(&s.wired_host(), s.gateway_wired_addr(), 8080,
                          apps::PatternPayload(kBytes));
  while (sink.bytes_received() < kBytes && s.sim().Now() < 2000 * sim::kSecond) {
    s.sim().RunFor(100 * sim::kMillisecond);
  }
  return kBytes * 8.0 / sim::DurationToSeconds(s.sim().Now()) / 1000.0;
}

double RunArq() {
  core::ScenarioConfig scenario;
  scenario.wireless.loss_probability = kLoss;
  scenario.seed = kSeed;
  core::WirelessScenario s(scenario);
  baselines::ArqEndpoint gw(&s.gateway(), s.mobile_addr(),
                            baselines::ArqEndpoint::WrapMode::kTowardPeerAddress);
  baselines::ArqEndpoint mob(&s.mobile_host(), s.gateway_wireless_addr(),
                             baselines::ArqEndpoint::WrapMode::kEverything);
  apps::BulkSink sink(&s.mobile_host(), 80);
  apps::BulkSender sender(&s.wired_host(), s.mobile_addr(), 80, apps::PatternPayload(kBytes));
  while (!sender.finished() && s.sim().Now() < 2000 * sim::kSecond) {
    s.sim().RunFor(100 * sim::kMillisecond);
  }
  return sender.GoodputBps() / 1000.0;
}

}  // namespace

int main() {
  PrintHeader("E1", "Table 3.1 — a comparison of the work reviewed",
              "Thesis verdicts (protocol transparency / application transparency /\n"
              "general applicability), with measured goodput on an identical\n"
              "5%-lossy 1 Mbit/s hop for the approaches implemented here.");

  std::printf("%-14s %-10s %-10s %-10s %16s\n", "approach", "protocol", "app",
              "general", "goodput kbit/s");
  auto row = [](const char* name, const char* p, const char* a, const char* g, double kbps) {
    if (kbps >= 0) {
      std::printf("%-14s %-10s %-10s %-10s %16.1f\n", name, p, a, g, kbps);
    } else {
      std::printf("%-14s %-10s %-10s %-10s %16s\n", name, p, a, g, "(not built)");
    }
  };
  // Rows from the thesis Table 3.1 (Coda/Rover/WIT are application-level
  // toolkits outside this repo's scope — their verdicts are reprinted for
  // completeness).
  row("Coda", "Yes", "Yes", "No", -1);
  row("Rover", "Yes", "No", "Yes", -1);
  row("WIT", "Yes", "No", "Yes", -1);
  row("(plain TCP)", "-", "-", "-", Averaged(RunPlain));
  row("I-TCP", "No", "Yes", "No", Averaged(RunItcp));
  const double snoop_goodput = Averaged(RunSnoopComma);
  row("Snoop", "Yes", "Yes", "No", snoop_goodput);
  row("AIRMAIL ARQ", "Yes", "Yes", "No", Averaged(RunArq));
  row("BSSP", "Yes", "Yes", "No", -1);
  row("TranSend", "No", "No", "No", -1);
  row("MOWGLI", "No", "No", "No", -1);
  row("Comma (this)", "Yes", "Yes", "Yes", snoop_goodput);

  std::printf("\nComma subsumes the protocol-level services (snoop, wsize) as proxy\n"
              "filters while preserving both transparencies and staying general —\n"
              "the thesis's argument for the proxied approach (3.4).\n");
  return 0;
}

// E10 (thesis §8.3.2): hierarchical discard. A 3-layer media stream crosses
// a wireless hop whose bandwidth shrinks mid-run. Expected shape: with no
// service the queue fills and frames of *all* layers are lost or arrive
// late; a fixed layer cut trades quality for timeliness; the EEM-driven
// auto mode adapts the cut to the available bandwidth.
#include "bench/common.h"

#include "src/apps/media.h"
#include "src/filters/media_filters.h"

using namespace commabench;

namespace {

struct MediaResult {
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t base_layer_received = 0;
  uint64_t base_layer_sent = 0;
  uint64_t late = 0;
  double p95_latency_ms = 0;
};

MediaResult Run(const std::string& mode, const std::string& metrics_path) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.eem.check_interval = 200 * sim::kMillisecond;
  config.eem.update_interval = 500 * sim::kMillisecond;
  config.start_command_server = false;
  core::CommaSystem comma(config);

  std::string error;
  proxy::StreamKey key{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 5004};
  if (mode == "fixed") {
    comma.sp().AddService("hdiscard", key, {"0"}, &error);  // Base layer only.
  } else if (mode == "auto") {
    comma.sp().AddService("hdiscard", key, {"auto", "2"}, &error);
  }
  if (!error.empty()) {
    std::fprintf(stderr, "setup: %s\n", error.c_str());
  }

  apps::MediaSink sink(&comma.scenario().mobile_host(), 5004,
                       /*deadline=*/150 * sim::kMillisecond);
  apps::MediaSourceConfig source_cfg;
  source_cfg.frame_interval = 10 * sim::kMillisecond;  // 100 frames/s total.
  source_cfg.frame_body = 850;  // ~100 fps * 880 B = ~700 kbit/s offered.
  apps::LayeredMediaSource source(&comma.scenario().wired_host(),
                                  comma.scenario().mobile_addr(), source_cfg);
  source.Start();
  comma.sim().RunFor(5 * sim::kSecond);          // Plenty of bandwidth.
  comma.scenario().wireless_link().SetBandwidth(300'000);  // Squeeze.
  comma.sim().RunFor(10 * sim::kSecond);
  source.Stop();
  comma.sim().RunFor(2 * sim::kSecond);

  // The auto-mode run is the registry CI smokes: it carries the sp.* and
  // sp.filter.* families with the hdiscard service under load.
  WriteMetricsJson(comma, metrics_path);

  MediaResult r;
  r.sent = source.frames_sent();
  r.base_layer_sent = (source.frames_sent() + 2) / 3;
  r.received = sink.frames_received();
  r.base_layer_received = sink.frames_per_layer(0);
  r.late = sink.late_frames();
  r.p95_latency_ms = sink.latencies_ms().Percentile(95);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = MetricsJsonPathFromArgs(argc, argv);
  PrintHeader("E10", "Hierarchical discard for layered media",
              "3-layer 100 fps stream (~700 kbit/s); wireless bandwidth drops to\n"
              "300 kbit/s at t=5s. What matters for real-time media is the base\n"
              "layer arriving on time, not total frames.");

  std::printf("%-10s %8s %8s %12s %8s %14s\n", "service", "sent", "recv", "base recv",
              "late", "p95 latency ms");
  for (const char* mode_name : {"none", "fixed", "auto"}) {
    const std::string mode(mode_name);
    MediaResult r = Run(mode, mode == "auto" ? metrics_path : "");
    std::printf("%-10s %8llu %8llu %6llu/%-5llu %8llu %14.1f\n", mode.c_str(),
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.received),
                static_cast<unsigned long long>(r.base_layer_received),
                static_cast<unsigned long long>(r.base_layer_sent),
                static_cast<unsigned long long>(r.late), r.p95_latency_ms);
  }
  std::printf("\nWithout the service the overloaded queue delays and drops frames\n"
              "indiscriminately — including the base layer. Discarding enhancement\n"
              "layers at the proxy keeps the base layer complete and punctual;\n"
              "auto mode restores the enhancement layers when capacity returns.\n");
  return 0;
}

// E15 (thesis Ch. 1 "Support for Partitioned Applications", §5.2's first
// service class): the qcache filter moves the answering half of a query
// application onto the proxy. Three effects to show:
//  - repeated queries answer from the proxy: lower latency;
//  - the wired hop carries only cold queries: less upstream traffic;
//  - during a wired-side outage, known queries keep working
//    ("processing can continue if the mobile becomes disconnected").
#include "bench/common.h"

#include "src/apps/query.h"
#include "src/filters/qcache_filter.h"

using namespace commabench;

namespace {

struct PartitionResult {
  double median_ms = 0;
  uint64_t upstream_queries = 0;
  int answered_during_outage = 0;
  int asked_during_outage = 0;
};

PartitionResult Run(bool with_qcache) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.start_eem = false;
  config.start_command_server = false;
  core::CommaSystem comma(config);

  if (with_qcache) {
    proxy::StreamKey requests{comma.scenario().mobile_addr(), 0,
                              comma.scenario().wired_addr(), filters::kQueryPort};
    std::string error;
    comma.sp().AddService("qcache", requests, {}, &error);
  }

  apps::QueryServer server(&comma.scenario().wired_host());
  apps::QueryClient client(&comma.scenario().mobile_host(), comma.scenario().wired_addr());

  // A Zipf-ish workload: 200 queries over 20 keys, hot keys repeated.
  auto ask = [&](const std::string& key, int* ok_count) {
    bool done = false;
    client.Query(key, [&](bool ok, const util::Bytes&) {
      done = true;
      if (ok && ok_count != nullptr) {
        ++*ok_count;
      }
    });
    for (int step = 0; step < 600 && !done; step += 1) {
      comma.sim().RunFor(10 * sim::kMillisecond);
    }
  };
  sim::Random rng(77);
  for (int i = 0; i < 200; ++i) {
    const int key = static_cast<int>(rng.NextBelow(rng.NextBelow(20) + 1));
    ask("key" + std::to_string(key), nullptr);
  }

  PartitionResult result;
  result.median_ms = client.latencies_ms().Median();
  result.upstream_queries = server.queries_answered();

  // Outage: the wired side disappears; ask 20 hot queries.
  comma.scenario().wired_link().SetUp(false);
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    ask("key" + std::to_string(i % 5), &answered);
  }
  result.asked_during_outage = 20;
  result.answered_during_outage = answered;
  return result;
}

}  // namespace

int main() {
  PrintHeader("E15", "Application partitioning (qcache)",
              "A query application; 200 queries over 20 hot keys, then a wired-\n"
              "side outage. The qcache filter hosts the answering half of the\n"
              "application at the proxy (ch. 1's partitioned applications).");

  std::printf("%-12s %14s %18s %22s\n", "service", "median ms", "upstream queries",
              "answered in outage");
  for (bool with_qcache : {false, true}) {
    PartitionResult r = Run(with_qcache);
    std::printf("%-12s %14.1f %18llu %15d / %d\n", with_qcache ? "qcache" : "none",
                r.median_ms, static_cast<unsigned long long>(r.upstream_queries),
                r.answered_during_outage, r.asked_during_outage);
  }
  std::printf("\nRepeated queries never cross the wired network (upstream traffic\n"
              "collapses), answer faster (the wired hop is skipped), and keep\n"
              "answering while the wired side is gone - the proxy is running\n"
              "part of the application.\n");
  return 0;
}

// E4 (thesis §1, §2.3): TCP misreads wireless loss as congestion, so
// goodput collapses as the packet-loss rate rises — the motivating
// observation behind every proxy service in the thesis.
//
// 400 KB bulk transfer, 10 Mbit/s wired + 1 Mbit/s wireless, loss swept.
#include "bench/common.h"

using namespace commabench;

int main() {
  PrintHeader("E4", "TCP over a lossy wireless hop",
              "Goodput vs wireless packet-loss rate (plain TCP, no services).\n"
              "Expected shape: steep collapse well before the loss itself\n"
              "could account for the lost capacity.");

  std::printf("%-12s %14s %16s %12s %10s\n", "loss rate", "goodput kbit/s", "retransmitted B",
              "fast retx", "timeouts");
  const double kLossRates[] = {0.0, 0.001, 0.01, 0.02, 0.05, 0.10, 0.20};
  constexpr int kRepeats = 5;  // Average over seeds: loss patterns vary a lot.
  double base_goodput = 0;
  for (double loss : kLossRates) {
    double goodput = 0;
    uint64_t retx = 0;
    uint64_t fast = 0;
    uint64_t timeouts = 0;
    bool all_completed = true;
    for (int rep = 0; rep < kRepeats; ++rep) {
      core::CommaSystemConfig config;
      config.scenario.wireless.loss_probability = loss;
      config.scenario.seed = 1000 + static_cast<uint64_t>(loss * 10000) + rep;
      config.start_eem = false;
      BulkRunResult r = RunBulk(config, 400'000, nullptr, 2000 * sim::kSecond);
      goodput += r.goodput_kbps / kRepeats;
      retx += r.bytes_retransmitted / kRepeats;
      fast += r.fast_retransmits / kRepeats;
      timeouts += r.timeouts / kRepeats;
      all_completed = all_completed && r.completed;
    }
    if (loss == 0.0) {
      base_goodput = goodput;
    }
    std::printf("%-12.3f %14.1f %16llu %12llu %10llu%s\n", loss, goodput,
                static_cast<unsigned long long>(retx), static_cast<unsigned long long>(fast),
                static_cast<unsigned long long>(timeouts),
                all_completed ? "" : "  (incomplete)");
  }
  std::printf("\nclean-link goodput: %.1f kbit/s; at 10%% loss TCP keeps only a fraction\n",
              base_goodput);
  std::printf("of it because congestion control halves cwnd on every wireless drop.\n");
  return 0;
}

// PAR — Region-sharded parallel simulator scaling (docs/parallel-sim.md).
//
// Runs the 4-gateway MultiGatewayScenario (one region per cluster plus the
// backbone) at 1, 2, 4, and 8 workers, reporting events/second, speedup
// over the serial epoch loop, and the witness hash — which must be
// identical at every worker count; any divergence fails the process.
//
// Flags:
//   --clusters N          gateway clusters (default 4)
//   --workers a,b,c       worker counts (default 1,2,4,8)
//   --witness-seeds N     CI mode: diff serial vs 4-worker witnesses for
//                         seeds 1..N and emit a markdown table
//   --witness-md PATH     write that table to PATH (default stdout)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/multi_gateway.h"
#include "src/sim/witness.h"

using namespace commabench;

namespace {

struct ParallelRun {
  uint64_t events = 0;
  uint64_t epochs = 0;
  uint64_t cross_region_events = 0;
  uint64_t barrier_wait_us = 0;
  uint64_t critical_path_events = 0;
  double wall_seconds = 0;
  uint64_t witness_hash = 0;
  bool all_completed = false;
};

ParallelRun RunOnce(uint64_t seed, int clusters, int workers) {
  core::MultiGatewayConfig config;
  config.clusters = clusters;
  config.seed = seed;
  config.sim.num_workers = workers;
  config.with_flaps = true;
  // Dense variant of the scenario: 802.11-class wireless instead of
  // WaveLAN, a fat backbone with a 20 ms haul (the lookahead — fewer,
  // fatter epochs), and multi-megabyte transfers, so each shard has real
  // work between barriers. Determinism must hold regardless; this knobs
  // only how much computation an epoch carries.
  config.wireless.bandwidth_bps = 100'000'000;
  config.wireless.loss_probability = 0.005;
  config.wired.bandwidth_bps = 100'000'000;
  config.backbone.bandwidth_bps = 1'000'000'000;
  config.backbone.propagation_delay = 20 * sim::kMillisecond;
  config.local_bytes = 40'000'000;
  config.cross_bytes = 10'000'000;
  core::MultiGatewayScenario scenario(config);
  scenario.StartTraffic();

  const auto start = std::chrono::steady_clock::now();
  // Run in 1 s slices and stop once every stream has completed: the chunk
  // boundary is simulated time, so the stopping point — like everything
  // else — is identical for every worker count. Running a fixed long
  // horizon instead would spend thousands of near-empty epochs on
  // straggler timers and measure barrier overhead, not the simulator.
  for (int slice = 0; slice < 300 && !scenario.AllCompleted(); ++slice) {
    scenario.sim().RunFor(sim::kSecond);
  }
  const auto end = std::chrono::steady_clock::now();

  ParallelRun r;
  r.events = scenario.sim().EventsRun();
  r.epochs = scenario.sim().epochs();
  r.cross_region_events = scenario.sim().cross_region_events();
  r.barrier_wait_us = scenario.sim().barrier_wait_us();
  r.critical_path_events = scenario.sim().critical_path_events();
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.witness_hash = sim::WitnessHash(scenario.Witness());
  r.all_completed = scenario.AllCompleted();
  return r;
}

std::vector<int> ParseWorkerList(const char* arg) {
  std::vector<int> workers;
  int value = 0;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = value * 10 + (*p - '0');
    } else {
      if (value > 0) {
        workers.push_back(value);
      }
      value = 0;
      if (*p == '\0') {
        break;
      }
    }
  }
  return workers;
}

// CI mode: serial vs 4-worker witness diff across `seeds` seeds, rendered
// as a markdown table (the chaos job puts it in the step summary).
int WitnessSweep(int clusters, int seeds, const std::string& md_path) {
  std::FILE* out = stdout;
  if (!md_path.empty()) {
    out = std::fopen(md_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", md_path.c_str());
      return 2;
    }
  }
  std::fprintf(out, "| seed | serial hash | 4-worker hash | match |\n");
  std::fprintf(out, "|-----:|-------------|---------------|:-----:|\n");
  int divergences = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    const ParallelRun serial = RunOnce(static_cast<uint64_t>(seed), clusters, 1);
    const ParallelRun parallel = RunOnce(static_cast<uint64_t>(seed), clusters, 4);
    const bool match = serial.witness_hash == parallel.witness_hash;
    divergences += match ? 0 : 1;
    std::fprintf(out, "| %d | `%016llx` | `%016llx` | %s |\n", seed,
                 static_cast<unsigned long long>(serial.witness_hash),
                 static_cast<unsigned long long>(parallel.witness_hash),
                 match ? "yes" : "**NO**");
  }
  std::fprintf(out, "\n%d/%d seeds byte-identical.\n", seeds - divergences, seeds);
  if (out != stdout) {
    std::fclose(out);
  }
  std::fprintf(stderr, "witness sweep: %d/%d identical\n", seeds - divergences, seeds);
  return divergences == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int clusters = 4;
  std::vector<int> workers = {1, 2, 4, 8};
  int witness_seeds = 0;
  std::string witness_md;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--clusters") == 0) {
      clusters = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = ParseWorkerList(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--witness-seeds") == 0) {
      witness_seeds = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--witness-md") == 0) {
      witness_md = argv[i + 1];
    }
  }
  if (witness_seeds > 0) {
    return WitnessSweep(clusters, witness_seeds, witness_md);
  }

  PrintHeader("PAR", "Parallel simulator scaling",
              "Region-sharded epoch loop on the multi-gateway scenario\n"
              "(one region per cluster + backbone); witness hash must be\n"
              "identical at every worker count.");

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("%d clusters, per-cluster bulk + cross traffic + flaps; %u hardware thread%s\n\n",
              clusters, cores, cores == 1 ? "" : "s");
  std::printf("%8s %12s %12s %9s %9s %10s %12s  %-18s %s\n", "workers", "events", "events/s",
              "speedup", "parallel", "epochs", "barrier ms", "witness", "ok");

  double serial_rate = 0;
  uint64_t reference_hash = 0;
  bool diverged = false;
  double parallelism = 0;
  for (const int w : workers) {
    const ParallelRun r = RunOnce(42, clusters, w);
    const double rate = r.wall_seconds > 0 ? static_cast<double>(r.events) / r.wall_seconds : 0;
    if (serial_rate == 0) {
      serial_rate = rate;
      reference_hash = r.witness_hash;
    }
    if (r.witness_hash != reference_hash) {
      diverged = true;
    }
    // Available parallelism: events / per-epoch critical path. It is a
    // property of the run, not the host, so it must be identical at every
    // worker count (it is accounted deterministically alongside the
    // witness) — and it bounds wall-clock speedup on any machine.
    parallelism = r.critical_path_events > 0
                      ? static_cast<double>(r.events) / static_cast<double>(r.critical_path_events)
                      : 1.0;
    std::printf("%8d %12llu %12.0f %8.2fx %8.2fx %10llu %12.1f  %016llx %s\n", w,
                static_cast<unsigned long long>(r.events), rate,
                serial_rate > 0 ? rate / serial_rate : 0, parallelism,
                static_cast<unsigned long long>(r.epochs),
                static_cast<double>(r.barrier_wait_us) / 1000.0,
                static_cast<unsigned long long>(r.witness_hash),
                r.witness_hash == reference_hash ? (r.all_completed ? "ok" : "INCOMPLETE")
                                                 : "DIVERGED");
  }
  std::printf(
      "\nspeedup  = wall-clock vs serial; only meaningful when hardware threads >= workers\n"
      "parallel = available parallelism (events / epoch critical path), the\n"
      "           deterministic speedup bound; identical at every worker count\n");
  if (cores < 4) {
    std::printf(
        "NOTE: %u hardware thread%s — workers timeslice, so wall-clock speedup ~1x\n"
        "is expected here; the parallel column is the scaling signal.\n",
        cores, cores == 1 ? "" : "s");
  }
  if (diverged) {
    std::fprintf(stderr, "FATAL: witness hash diverged across worker counts\n");
    return 1;
  }
  return 0;
}

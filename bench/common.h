// Shared helpers for the experiment benches. Each bench regenerates one of
// the thesis artifacts catalogued in DESIGN.md / EXPERIMENTS.md and prints a
// self-describing table; absolute numbers are simulator-specific, the
// *shape* is what reproduces the paper.
#ifndef COMMA_BENCH_COMMON_H_
#define COMMA_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "src/apps/bulk.h"
#include "src/core/comma_system.h"

namespace commabench {

using namespace comma;  // Bench binaries only.

// Snapshot support: every bench accepts `--metrics-json <path>` and, when
// given, writes one JSON snapshot of the system's metric registry after the
// run (docs/observability.md). CI smoke-checks the snapshot parses and
// carries the expected keys.
inline std::string MetricsJsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      return argv[i + 1];
    }
  }
  return "";
}

// Writes the gateway proxy's registry (pattern-unfiltered) to `path`.
inline void WriteMetricsJson(core::CommaSystem& comma, const std::string& path) {
  if (path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics snapshot: %s\n", path.c_str());
    return;
  }
  const std::string json = comma.sp().metrics().RenderJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("metrics snapshot: %s\n", path.c_str());
}

inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

struct BulkRunResult {
  bool completed = false;
  double seconds = 0;
  double goodput_kbps = 0;
  uint64_t bytes_retransmitted = 0;
  uint64_t timeouts = 0;
  uint64_t fast_retransmits = 0;
  uint64_t wireless_tx_bytes = 0;
  size_t delivered = 0;
};

// Runs a wired->mobile bulk transfer of `bytes` through a CommaSystem built
// from `config`; `setup` may install services before traffic starts.
inline BulkRunResult RunBulk(const core::CommaSystemConfig& config, size_t bytes,
                             const std::function<void(core::CommaSystem&)>& setup = nullptr,
                             sim::Duration limit = 600 * sim::kSecond,
                             const util::Bytes* payload_override = nullptr) {
  core::CommaSystem comma(config);
  if (setup) {
    setup(comma);
  }
  const util::Bytes payload =
      payload_override != nullptr ? *payload_override : apps::PatternPayload(bytes);
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          payload);
  const uint64_t wireless_before = comma.scenario().wireless_link().stats(0).tx_bytes;
  while (!sender.finished() && comma.sim().Now() < limit) {
    comma.sim().RunFor(100 * sim::kMillisecond);
  }
  BulkRunResult result;
  result.completed = sender.finished() && sink.bytes_received() == payload.size();
  result.delivered = sink.bytes_received();
  if (sender.finished()) {
    result.seconds = sim::DurationToSeconds(sender.finished_at() - sender.started_at());
    result.goodput_kbps = sender.GoodputBps() / 1000.0;
  }
  const auto& st = sender.connection()->stats();
  result.bytes_retransmitted = st.bytes_retransmitted;
  result.timeouts = st.retransmit_timeouts;
  result.fast_retransmits = st.fast_retransmits;
  result.wireless_tx_bytes = comma.scenario().wireless_link().stats(0).tx_bytes - wireless_before;
  return result;
}

}  // namespace commabench

#endif  // COMMA_BENCH_COMMON_H_

// E7 (thesis §8.1.5, Fig. 8.3): transparent packet dropping. The tdrop+ttsf
// service removes a fraction of data segments from the stream at the proxy.
// Expected shape: the sender's completion time stays near the no-service
// baseline (no stalls, no end-to-end retransmission of the discarded data),
// wireless bytes shrink proportionally, and the mobile receives an intact
// ordered subset. Contrast with rdrop, the naive dropper, which forces the
// sender to retransmit everything it drops.
#include "bench/common.h"

#include "src/util/strings.h"

using namespace commabench;

int main(int argc, char** argv) {
  const std::string metrics_path = MetricsJsonPathFromArgs(argc, argv);
  PrintHeader("E7", "Transparent packet dropping (TTSF)",
              "300 KB transfer; a fraction of data segments is discarded at the\n"
              "proxy. tdrop (with ttsf) vs rdrop (naive).");

  std::printf("%-8s | %-28s | %-28s\n", "", "tdrop+ttsf (transparent)", "rdrop (naive)");
  std::printf("%-8s | %9s %9s %8s | %9s %9s %8s\n", "drop %", "time s", "e2e retx", "recv KB",
              "time s", "e2e retx", "recv KB");
  for (int percent : {0, 10, 30, 50, 80}) {
    BulkRunResult results[2];
    for (int naive = 0; naive <= 1; ++naive) {
      core::CommaSystemConfig config;
      config.scenario.wireless.loss_probability = 0.0;
      config.scenario.seed = 4000 + static_cast<uint64_t>(percent);
      config.start_eem = false;
      config.start_command_server = false;
      auto setup = [naive, percent](core::CommaSystem& comma) {
        proxy::StreamKey key{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 80};
        std::string error;
        if (naive != 0) {
          comma.sp().AddService("launcher", key,
                                {"tcp", util::Format("rdrop:%d:9", percent)}, &error);
        } else {
          comma.sp().AddService(
              "launcher", key, {"tcp", "ttsf", util::Format("tdrop:%d:9", percent)}, &error);
        }
      };
      // "Completed" for this experiment = the sender finished; the mobile
      // intentionally receives less.
      core::CommaSystem comma(config);
      setup(comma);
      apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
      apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(),
                              80, apps::PatternPayload(300'000));
      while (!sender.finished() && comma.sim().Now() < 2000 * sim::kSecond) {
        comma.sim().RunFor(100 * sim::kMillisecond);
      }
      // The last transparent run's registry is the snapshot CI smokes: it
      // carries the sp.*, sp.filter.*, and ttsf.* families under load.
      if (naive == 0 && percent == 80) {
        WriteMetricsJson(comma, metrics_path);
      }
      BulkRunResult& r = results[naive];
      r.completed = sender.finished();
      r.seconds = sender.finished()
                      ? sim::DurationToSeconds(sender.finished_at() - sender.started_at())
                      : sim::DurationToSeconds(comma.sim().Now());
      r.bytes_retransmitted = sender.connection()->stats().bytes_retransmitted;
      r.delivered = sink.bytes_received();
    }
    std::printf("%-8d | %9.2f %9llu %8.0f | %9.2f %9llu %8.0f\n", percent, results[0].seconds,
                static_cast<unsigned long long>(results[0].bytes_retransmitted),
                results[0].delivered / 1000.0, results[1].seconds,
                static_cast<unsigned long long>(results[1].bytes_retransmitted),
                results[1].delivered / 1000.0);
  }
  std::printf("\nThe transparent dropper gets *faster* as it discards more (less to\n"
              "carry over the bottleneck, nothing retransmitted); the naive dropper\n"
              "gets slower because every dropped segment comes back end-to-end.\n");
  return 0;
}

// E9 (thesis §2.1, Fig. 2.1): Mobile IP costs. (a) Triangular routing: the
// correspondent->mobile path detours through the home agent while the
// reverse path is direct. (b) Hand-off: packets in flight to the old
// foreign agent are lost under the drop policy and rescued under the
// forwarding policy.
#include <cstdio>

#include "src/apps/bulk.h"
#include "src/mobileip/scenario.h"

using namespace comma;

namespace {

constexpr net::IpProtocol kProbe = net::IpProtocol::kIcmp;

// One-way delay of a probe from the correspondent to the mobile.
double MeasureForwardDelayMs(mobileip::MobileIpScenario& s) {
  double delay_ms = -1;
  const sim::TimePoint sent = s.sim().Now();
  s.mobile().RegisterProtocol(kProbe, [&](net::PacketPtr) {
    delay_ms = sim::DurationToSeconds(s.sim().Now() - sent) * 1000.0;
  });
  s.correspondent().SendPacket(net::Packet::MakeRaw(
      s.correspondent_addr(), s.mobile_home_addr(), kProbe, util::Bytes(64, 1)));
  s.sim().RunFor(sim::kSecond);
  return delay_ms;
}

double MeasureReverseDelayMs(mobileip::MobileIpScenario& s) {
  double delay_ms = -1;
  const sim::TimePoint sent = s.sim().Now();
  s.correspondent().RegisterProtocol(kProbe, [&](net::PacketPtr) {
    delay_ms = sim::DurationToSeconds(s.sim().Now() - sent) * 1000.0;
  });
  s.mobile().SendPacket(net::Packet::MakeRaw(s.mobile_home_addr(), s.correspondent_addr(),
                                             kProbe, util::Bytes(64, 1)));
  s.sim().RunFor(sim::kSecond);
  return delay_ms;
}

int CountHandoffDelivery(mobileip::HandoffPolicy policy) {
  mobileip::MobileIpConfig config;
  config.wireless.loss_probability = 0.0;
  // Long wired delays widen the in-flight window so the policy matters.
  config.wired.propagation_delay = 20 * sim::kMillisecond;
  config.handoff_policy = policy;
  mobileip::MobileIpScenario s(config);
  int received = 0;
  s.mobile().RegisterProtocol(kProbe, [&](net::PacketPtr) { ++received; });
  s.MoveToForeign1();
  s.sim().RunFor(2 * sim::kSecond);
  for (int i = 0; i < 100; ++i) {
    s.sim().Schedule(i * 2 * sim::kMillisecond, [&s] {
      s.correspondent().SendPacket(net::Packet::MakeRaw(
          s.correspondent_addr(), s.mobile_home_addr(), kProbe, util::Bytes(64, 1)));
    });
  }
  s.sim().Schedule(100 * sim::kMillisecond, [&s] { s.MoveToForeign2(); });
  s.sim().RunFor(10 * sim::kSecond);
  return received;
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("E9: Mobile IP — triangular routing and hand-off loss (thesis 2.1)\n");
  std::printf("================================================================\n\n");

  std::printf("(a) triangular routing (Fig. 2.1)\n");
  {
    mobileip::MobileIpConfig config;
    config.wireless.loss_probability = 0.0;
    mobileip::MobileIpScenario s(config);
    s.MoveToForeign1();
    s.sim().RunFor(2 * sim::kSecond);
    const double forward = MeasureForwardDelayMs(s);
    const double reverse = MeasureReverseDelayMs(s);
    std::printf("    correspondent -> mobile (via HA tunnel): %7.2f ms\n", forward);
    std::printf("    mobile -> correspondent (direct)       : %7.2f ms\n", reverse);
    std::printf("    asymmetry: %.2fx — every inbound packet detours through the\n"
                "    home network even though the hosts are topologically close.\n\n",
                forward / reverse);
  }

  std::printf("(b) hand-off, 100 probes at 2 ms spacing, move mid-burst\n");
  const int dropped_policy = CountHandoffDelivery(mobileip::HandoffPolicy::kDrop);
  const int forward_policy = CountHandoffDelivery(mobileip::HandoffPolicy::kForward);
  std::printf("    delivered with drop policy    : %3d / 100\n", dropped_policy);
  std::printf("    delivered with forward policy : %3d / 100\n", forward_policy);
  std::printf("    Forwarding at the old FA rescues packets tunneled before the new\n"
              "    registration reached the home agent (2.1's two options).\n");
  return 0;
}

// E6b (thesis §8.2.2): stream prioritization by advertised-window clamping.
// Two concurrent bulk streams share the wireless hop; the low-priority
// stream's ACKs are clamped to successively smaller windows. Expected
// shape: the priority stream's share of the link grows as the clamp
// tightens, and the interactive latency of a third, small-request stream
// drops.
#include "bench/common.h"

#include "src/util/strings.h"

#include "src/apps/request_response.h"

using namespace commabench;

int main() {
  PrintHeader("E6b", "BSSP window-clamp prioritization",
              "Two competing bulk streams for 30 s; the low-priority stream's\n"
              "window is clamped. Plus an interactive request/response stream\n"
              "whose median latency benefits.");

  std::printf("(a) bandwidth share: clamp the low-priority stream's window\n");
  std::printf("%-14s %16s %16s %10s\n", "clamp (bytes)", "low-prio KB", "high-prio KB",
              "high share");
  for (uint32_t clamp : {65535u, 8000u, 4000u, 2000u, 1000u}) {
    core::CommaSystemConfig config;
    config.scenario.wireless.loss_probability = 0.0;
    config.start_eem = false;
    config.start_command_server = false;
    core::CommaSystem comma(config);

    // Clamp the ACK path of the low-priority stream (port 81).
    proxy::StreamKey low_acks{comma.scenario().mobile_addr(), 81, net::Ipv4Address(), 0};
    std::string error;
    comma.sp().AddService("launcher", low_acks,
                          {"tcp", util::Format("wsize:clamp:%u", clamp)}, &error);

    apps::BulkSink low_sink(&comma.scenario().mobile_host(), 81);
    apps::BulkSink high_sink(&comma.scenario().mobile_host(), 82);
    apps::BulkSender low(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 81,
                         apps::PatternPayload(20'000'000));
    apps::BulkSender high(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 82,
                          apps::PatternPayload(20'000'000));
    comma.sim().RunFor(30 * sim::kSecond);

    const double low_kb = static_cast<double>(low_sink.bytes_received()) / 1000.0;
    const double high_kb = static_cast<double>(high_sink.bytes_received()) / 1000.0;
    std::printf("%-14u %16.0f %16.0f %9.0f%%\n", clamp, low_kb, high_kb,
                100.0 * high_kb / (low_kb + high_kb));
  }

  std::printf("\n(b) interactive delay: an RPC stream competes with a clamped bulk\n");
  std::printf("%-14s %20s %16s\n", "bulk clamp", "interactive med ms", "p95 ms");
  for (uint32_t clamp : {65535u, 8000u, 2000u}) {
    core::CommaSystemConfig config;
    config.scenario.wireless.loss_probability = 0.0;
    config.scenario.wireless.queue_limit_packets = 64;  // Deep queue: delay hurts.
    config.start_eem = false;
    config.start_command_server = false;
    core::CommaSystem comma(config);
    proxy::StreamKey bulk_acks{comma.scenario().mobile_addr(), 81, net::Ipv4Address(), 0};
    std::string error;
    comma.sp().AddService("launcher", bulk_acks,
                          {"tcp", util::Format("wsize:clamp:%u", clamp)}, &error);
    apps::BulkSink bulk_sink(&comma.scenario().mobile_host(), 81);
    apps::BulkSender bulk(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 81,
                          apps::PatternPayload(20'000'000));
    apps::RequestResponseServer rr_server(&comma.scenario().mobile_host(), 83, 100, 200);
    apps::RequestResponseClient rr_client(&comma.scenario().wired_host(),
                                          comma.scenario().mobile_addr(), 83, 100, 200, 150);
    comma.sim().RunFor(60 * sim::kSecond);
    std::printf("%-14u %20.1f %16.1f\n", clamp, rr_client.latencies_ms().Median(),
                rr_client.latencies_ms().Percentile(95));
  }
  std::printf("\n\"This forces them to send more slowly as the window fills sooner,\n"
              "allowing priority streams more bandwidth and smaller delay\" (8.2.2).\n");
  return 0;
}

// E8 (thesis §8.1.6, Fig. 8.4): transparent compression in the double-proxy
// arrangement. Expected shape: transfer time improves most on the slowest
// links (compression trades proxy work for wireless bytes), wireless volume
// drops to the compression ratio, and the endpoints exchange identical
// bytes throughout.
#include "bench/common.h"

using namespace commabench;

namespace {

struct CompressResult {
  double seconds = 0;
  uint64_t wireless_bytes = 0;
  bool intact = false;
};

CompressResult Run(uint64_t wireless_bps, bool with_compression, const util::Bytes& payload) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.scenario.wireless.bandwidth_bps = wireless_bps;
  config.start_eem = false;
  config.start_command_server = false;
  core::CommaSystem comma(config);
  if (with_compression) {
    proxy::StreamKey key{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 80};
    std::string error;
    comma.sp().AddService("launcher", key, {"tcp", "ttsf", "tcompress:lz"}, &error);
    comma.MobileProxy().AddService("launcher", key, {"tcp", "ttsf", "tdecompress"}, &error);
  }
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          payload);
  const uint64_t before = comma.scenario().wireless_link().stats(0).tx_bytes;
  while (!sender.finished() && comma.sim().Now() < 4000 * sim::kSecond) {
    comma.sim().RunFor(100 * sim::kMillisecond);
  }
  comma.sim().RunFor(3 * sim::kSecond);
  CompressResult r;
  r.seconds = sim::DurationToSeconds(sender.finished_at() - sender.started_at());
  r.wireless_bytes = comma.scenario().wireless_link().stats(0).tx_bytes - before;
  r.intact = sink.received() == payload;
  return r;
}

}  // namespace

int main() {
  PrintHeader("E8", "Transparent compression (TTSF, double proxy)",
              "150 KB of compressible text; wireless bandwidth swept. Both TCP\n"
              "endpoints are stock; tcompress/tdecompress live at the proxies.");

  const util::Bytes payload = apps::TextPayload(150'000);
  std::printf("%-16s | %10s | %10s %8s | %14s %8s\n", "wireless bps", "plain s", "compr s",
              "speedup", "wireless KB", "intact");
  for (uint64_t bps : {64'000ull, 200'000ull, 500'000ull, 1'000'000ull, 5'000'000ull}) {
    CompressResult plain = Run(bps, false, payload);
    CompressResult compressed = Run(bps, true, payload);
    std::printf("%-16llu | %10.2f | %10.2f %7.2fx | %6llu -> %-6llu %7s\n",
                static_cast<unsigned long long>(bps), plain.seconds, compressed.seconds,
                plain.seconds / compressed.seconds,
                static_cast<unsigned long long>(plain.wireless_bytes / 1000),
                static_cast<unsigned long long>(compressed.wireless_bytes / 1000),
                plain.intact && compressed.intact ? "yes" : "NO");
  }
  std::printf("\nThe win tracks the bandwidth deficit: on fast links compression only\n"
              "saves bytes; on slow links it saves the transfer.\n");
  return 0;
}

// E5 (thesis §8.2.1, §3.2): the snoop filter recovers wireless losses
// locally at the proxy — dupacks suppressed, cache retransmissions — and
// restores most of the goodput plain TCP loses, transparently to both ends.
#include "bench/common.h"

#include "src/filters/snoop_filter.h"

using namespace commabench;

int main() {
  PrintHeader("E5", "Snoop protocol tuning",
              "Goodput of a 400 KB transfer vs wireless loss, plain TCP vs the\n"
              "snoop service at the gateway. Expected shape: snoop holds goodput\n"
              "high as loss grows; the gap widens with the loss rate.");

  std::printf("%-10s | %14s %9s | %14s %9s %7s\n", "loss", "plain kbit/s", "e2e retx",
              "snoop kbit/s", "e2e retx", "gain");
  constexpr int kRepeats = 15;
  for (double loss : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    double goodput[2] = {0, 0};
    uint64_t retx[2] = {0, 0};
    for (int rep = 0; rep < kRepeats; ++rep) {
      for (int with_snoop = 0; with_snoop <= 1; ++with_snoop) {
        core::CommaSystemConfig config;
        config.scenario.wireless.loss_probability = loss;
        config.scenario.seed = 2000 + static_cast<uint64_t>(loss * 10000) + rep;
        config.start_eem = false;
        auto setup = [with_snoop](core::CommaSystem& comma) {
          if (with_snoop != 0) {
            proxy::StreamKey key{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 0};
            std::string error;
            comma.sp().AddService("launcher", key, {"tcp", "snoop"}, &error);
          }
        };
        BulkRunResult r = RunBulk(config, 400'000, setup, 2000 * sim::kSecond);
        goodput[with_snoop] += r.goodput_kbps / kRepeats;
        retx[with_snoop] += r.bytes_retransmitted / kRepeats;
      }
    }
    std::printf("%-10.2f | %14.1f %9llu | %14.1f %9llu %6.2fx\n", loss, goodput[0],
                static_cast<unsigned long long>(retx[0]), goodput[1],
                static_cast<unsigned long long>(retx[1]),
                goodput[0] > 0 ? goodput[1] / goodput[0] : 0.0);
  }
  std::printf("\nSnoop retransmits from its segment cache on the first dupack and\n"
              "suppresses the rest, so the wired sender never enters congestion\n"
              "avoidance for losses that were never congestion (thesis 8.2.1).\n");
  return 0;
}

// Robustness trajectory: goodput through a scripted fault timeline.
//
// One bulk transfer rides through four scripted faults — a wireless link
// flap, an EEM server outage, a filter quarantine, and a forced TTSF
// bypass — while we sample delivered bytes every second. The table shows
// throughput collapsing during each fault and recovering after it; the
// final JSON line is machine-readable for trend tracking.
#include "bench/common.h"

#include "src/filters/ttsf_filter.h"

using namespace commabench;

namespace {

// Throws from Out() after a scripted arming point — the quarantine fault.
class TimeBombFilter : public proxy::Filter {
 public:
  TimeBombFilter() : proxy::Filter("timebomb", proxy::FilterPriority::kLow) {}

  void Arm() { armed_ = true; }

  proxy::FilterVerdict Out(proxy::FilterContext&, const proxy::StreamKey&,
                           net::Packet& packet) override {
    if (armed_ && packet.has_tcp() && !packet.payload().empty()) {
      throw std::runtime_error("scripted filter fault");
    }
    return proxy::FilterVerdict::kPass;
  }

 private:
  bool armed_ = false;
};

struct Interval {
  double t = 0;           // End of the sampling interval (seconds).
  uint64_t delivered = 0; // Bytes delivered to the sink in this interval.
  std::string fault;      // Fault window active during the interval, if any.
};

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = MetricsJsonPathFromArgs(argc, argv);
  PrintHeader("E17", "Fault-injection recovery trajectory",
              "A 12 MB transfer through TTSF while the fault plan flaps the\n"
              "wireless link (5-7s), kills the EEM server (10-15s), blows up a\n"
              "filter into quarantine (20s) and forces TTSF bypass (25s).\n"
              "Goodput must collapse only inside the windows and recover after.");

  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.01;
  core::CommaSystem comma(config);
  sim::Simulator& sim = comma.sim();

  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 80};
  if (!comma.sp().AddService("launcher", wildcard, {"tcp", "ttsf", "tdrop:0:5"}, &error)) {
    std::fprintf(stderr, "launcher: %s\n", error.c_str());
    return 1;
  }
  auto bomb = std::make_shared<TimeBombFilter>();
  comma.sp().Attach(bomb, wildcard);

  monitor::EemClient eem(&comma.scenario().mobile_host());
  monitor::VariableId var;
  var.name = "sysUpTime";
  var.server = comma.scenario().gateway_wireless_addr();
  eem.Register(var, monitor::Attr::Always());

  // The scripted timeline (all declarative, all in the applied-fault log).
  comma.ScheduleLinkFlap(comma.scenario().wireless_link(), 5 * sim::kSecond, 7 * sim::kSecond,
                         "wireless");
  comma.ScheduleEemOutage(10 * sim::kSecond, 15 * sim::kSecond);
  comma.fault_plan().At(20 * sim::kSecond, "filter-fault", [&] { bomb->Arm(); });
  comma.fault_plan().At(25 * sim::kSecond, "ttsf-bypass", [&] {
    for (const auto& [stream, info] : comma.sp().streams()) {
      auto* ttsf =
          dynamic_cast<filters::TtsfFilter*>(comma.sp().FindFilterOnKey(stream, "ttsf"));
      if (ttsf != nullptr && !ttsf->bypassed(stream)) {
        ttsf->ForceBypass(comma.sp().context(), stream, "scripted bypass");
      }
    }
  });
  comma.ArmFaults();

  const size_t kBytes = 12 * 1000 * 1000;
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::PatternPayload(kBytes));

  auto fault_annotation = [](double t) -> std::string {
    if (t > 5 && t <= 7) return "link-flap";
    if (t > 10 && t <= 15) return "eem-outage";
    if (t > 20 && t <= 21) return "filter-fault";
    if (t > 25 && t <= 26) return "ttsf-bypass";
    return "";
  };

  std::vector<Interval> intervals;
  uint64_t last_delivered = 0;
  const int kMaxSeconds = 120;
  for (int s = 1; s <= kMaxSeconds && !sender.finished(); ++s) {
    sim.RunFor(sim::kSecond);
    Interval iv;
    iv.t = static_cast<double>(s);
    iv.delivered = sink.bytes_received() - last_delivered;
    iv.fault = fault_annotation(iv.t);
    last_delivered = sink.bytes_received();
    intervals.push_back(iv);
  }

  std::printf("%6s %16s %16s  %s\n", "t (s)", "interval kB", "cumulative kB", "fault window");
  uint64_t cumulative = 0;
  for (const Interval& iv : intervals) {
    cumulative += iv.delivered;
    std::printf("%6.0f %16.1f %16.1f  %s\n", iv.t, iv.delivered / 1000.0, cumulative / 1000.0,
                iv.fault.c_str());
  }

  const bool completed = sender.finished() && sink.bytes_received() == kBytes;
  const auto& qlog = comma.sp().quarantine_log();
  std::printf("\ncompleted=%s delivered=%llu quarantined=%zu faults_applied=%zu\n",
              completed ? "yes" : "no",
              static_cast<unsigned long long>(sink.bytes_received()), qlog.size(),
              comma.fault_plan().applied().size());
  std::printf("applied fault log:\n%s", comma.fault_plan().AppliedLog().c_str());
  WriteMetricsJson(comma, metrics_path);

  // Machine-readable summary (one line).
  std::printf("\nJSON {\"bench\":\"faults\",\"completed\":%s,\"delivered\":%llu,"
              "\"seconds\":%.1f,\"quarantined\":%zu,\"faults_applied\":%zu}\n",
              completed ? "true" : "false",
              static_cast<unsigned long long>(sink.bytes_received()),
              intervals.empty() ? 0.0 : intervals.back().t, qlog.size(),
              comma.fault_plan().applied().size());
  return completed ? 0 : 1;
}

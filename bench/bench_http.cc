// E16 (thesis §8.3): content-aware vs byte-level services on web traffic.
//
// A mobile client fetches a mixed HTTP/1.1 workload (compressible text,
// incompressible images, layered media) from a wired origin through the
// gateway proxy while the wireless hop loses packets. Three services
// compete on *useful goodput* — application bytes the client can actually
// consume per second:
//
//   none    transparent proxy only ({tcp, ttsf}); every byte crosses the
//           wireless hop, every byte is useful.
//   tdrop   byte-level discard: tdrop:30 on the response direction. Blind
//           byte removal shreds HTTP framing, so the client's parser dies
//           at the first hole and everything after it is useless.
//   htype   content-aware: htype keeps media base layers and compresses
//           text at the proxy, re-framing messages so they stay parseable.
//           Fewer bytes cross the wireless hop and all of them are useful.
//
// Flags:
//   --metrics-json PATH   write the htype run's metric registry (http.*)
//   --witness             determinism mode: run the 5%-loss htype scenario
//                         partitioned at 1/2/4/8 workers; witness hashes
//                         must be identical (exit 1 on divergence)
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/apps/http.h"
#include "src/sim/witness.h"
#include "src/util/strings.h"

using namespace commabench;

namespace {

// Drops wall-clock metric lines (sim.barrier_wait_us is real elapsed time)
// so a RenderText snapshot can join a determinism witness.
std::string StripWallClockLines(const std::string& text) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size() - 1;
    }
    const std::string line = text.substr(pos, eol - pos + 1);
    if (line.find("barrier_wait_us") == std::string::npos) {
      out += line;
    }
    pos = eol + 1;
  }
  return out;
}

// The mixed workload: ~200 KB of response bodies, pipelined 4 deep.
std::vector<apps::HttpRequestSpec> Workload() {
  std::vector<apps::HttpRequestSpec> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back({"GET", util::Format("/text/%d", 16000 + i * 512), {}});
  }
  reqs.push_back({"GET", "/media/3/30/600", {}});
  reqs.push_back({"GET", "/media/3/30/600", {}});
  reqs.push_back({"GET", "/image/12000", {}});
  reqs.push_back({"GET", "/image/12000", {}});
  reqs.push_back({"POST", "/upload", apps::PatternPayload(2000)});
  return reqs;
}

struct HttpRun {
  bool finished = false;
  bool parse_failed = false;
  size_t responses = 0;
  uint64_t useful_bytes = 0;
  double seconds = 0;
  double useful_goodput_kbps = 0;
  uint64_t wireless_tx_bytes = 0;
  std::string witness;
};

// One full scenario at `loss`% wireless loss with service `mode`
// (none|tdrop|htype). `workers` > 1 partitions the topology (witness mode).
HttpRun Run(int loss_percent, const std::string& mode, int workers,
            const std::string& metrics_path) {
  core::CommaSystemConfig config;
  config.scenario.seed = 9000 + static_cast<uint64_t>(loss_percent);
  config.scenario.wireless.loss_probability = loss_percent / 100.0;
  config.scenario.partition_regions = workers > 1;
  config.scenario.sim.num_workers = workers;
  config.start_command_server = false;
  config.start_eem = false;
  core::CommaSystem comma(config);
  sim::Simulator& sim = comma.sim();
  const net::Ipv4Address origin = comma.scenario().wired_addr();

  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, origin, 80};
  std::vector<std::string> services = {"tcp", "ttsf"};
  if (mode == "htype") {
    services.push_back("hrewrite");
    services.push_back("htype:0");  // Base media layer only; compress text.
  }
  if (!comma.sp().AddService("launcher", wildcard, services, &error)) {
    std::fprintf(stderr, "setup: %s\n", error.c_str());
  }

  std::unique_ptr<apps::HttpServer> server;
  {
    sim::ScopedRegion in_wired(&sim, comma.scenario().wired_region());
    server = std::make_unique<apps::HttpServer>(&comma.scenario().wired_host(), 80);
  }
  std::unique_ptr<apps::HttpClient> client;
  {
    sim::ScopedRegion in_wireless(&sim, comma.scenario().wireless_region());
    client = std::make_unique<apps::HttpClient>(&comma.scenario().mobile_host(), origin, 80,
                                                Workload());
  }

  if (mode == "tdrop") {
    // tdrop acts on its service key's direction, so it must be installed on
    // the concrete response-direction key — which exists only once the SYN
    // has carried tcp+ttsf onto the stream. 20 ms covers the handshake but
    // lands before response bodies flow.
    sim.RunFor(20 * sim::kMillisecond);
    proxy::StreamKey response_key{origin, 80, comma.scenario().mobile_addr(),
                                  client->connection()->local_port()};
    if (!comma.sp().AddService("tdrop", response_key, {"30", "9"}, &error)) {
      std::fprintf(stderr, "setup tdrop: %s\n", error.c_str());
    }
  }

  const sim::Duration limit = 120 * sim::kSecond;
  while (!client->finished() && sim.Now() < limit) {
    sim.RunFor(100 * sim::kMillisecond);
  }

  HttpRun r;
  r.finished = client->finished();
  r.parse_failed = client->failed();
  r.responses = client->responses_received();
  r.useful_bytes = client->useful_bytes();
  r.seconds = sim::DurationToSeconds((client->finished() ? client->finished_at() : sim.Now()) -
                                     client->started_at());
  r.useful_goodput_kbps = client->UsefulGoodputBps(sim.Now()) / 1000.0;
  r.wireless_tx_bytes = comma.scenario().wireless_link().stats(0).tx_bytes;

  r.witness = util::Format("responses=%zu useful=%llu failed=%d served=%llu\n", r.responses,
                           static_cast<unsigned long long>(r.useful_bytes), r.parse_failed ? 1 : 0,
                           static_cast<unsigned long long>(server->requests_served()));
  r.witness += StripWallClockLines(comma.sp().metrics().RenderText("http"));
  r.witness += StripWallClockLines(comma.sp().metrics().RenderText("tcp"));
  r.witness += util::Format("events=%llu\n", static_cast<unsigned long long>(sim.EventsRun()));

  WriteMetricsJson(comma, metrics_path);
  return r;
}

// Witness mode: the 5%-loss htype scenario, partitioned, at 1/2/4/8
// workers. Prints one hash per worker count; any divergence is fatal.
int WitnessSweep() {
  std::printf("%8s  %-18s\n", "workers", "witness");
  uint64_t reference = 0;
  bool diverged = false;
  for (const int w : {1, 2, 4, 8}) {
    const HttpRun r = Run(5, "htype", w, "");
    const uint64_t hash = sim::WitnessHash(r.witness);
    if (w == 1) {
      reference = hash;
    }
    diverged = diverged || hash != reference;
    std::printf("%8d  %016llx %s\n", w, static_cast<unsigned long long>(hash),
                hash == reference ? "ok" : "DIVERGED");
  }
  if (diverged) {
    std::fprintf(stderr, "FATAL: http witness diverged across worker counts\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--witness") == 0) {
      return WitnessSweep();
    }
  }
  const std::string metrics_path = MetricsJsonPathFromArgs(argc, argv);

  PrintHeader("E16", "Content-aware vs byte-level HTTP services",
              "Mobile client fetches ~200 KB of mixed web content (text, images,\n"
              "3-layer media) through the gateway proxy; the wireless hop loses\n"
              "0-10% of packets. Useful goodput counts only bytes the client's\n"
              "HTTP parser can still consume.");

  std::printf("%-7s %-7s %6s %10s %8s %12s %12s %s\n", "loss %", "service", "resp",
              "useful KB", "time s", "useful kbps", "wireless KB", "status");
  bool acceptance_ok = true;
  for (const int loss : {0, 1, 5, 10}) {
    double tdrop_goodput = 0;
    double htype_goodput = 0;
    for (const char* mode_name : {"none", "tdrop", "htype"}) {
      const std::string mode(mode_name);
      // The 5%-loss htype run carries the http.* family under load; that is
      // the snapshot CI smokes.
      const bool snapshot = mode == "htype" && loss == 5;
      const HttpRun r = Run(loss, mode, 1, snapshot ? metrics_path : "");
      if (mode == "tdrop") {
        tdrop_goodput = r.useful_goodput_kbps;
      } else if (mode == "htype") {
        htype_goodput = r.useful_goodput_kbps;
      }
      std::printf("%-7d %-7s %6zu %10.1f %8.2f %12.1f %12.1f %s\n", loss, mode.c_str(),
                  r.responses, r.useful_bytes / 1000.0, r.seconds, r.useful_goodput_kbps,
                  r.wireless_tx_bytes / 1000.0,
                  r.parse_failed ? "PARSE-FAILED" : (r.finished ? "ok" : "TIMEOUT"));
    }
    if (loss >= 5 && htype_goodput <= tdrop_goodput) {
      acceptance_ok = false;
    }
  }
  std::printf("\nBlind byte-level dropping destroys message framing: the client's\n"
              "parser fails at the first hole and everything after it is waste.\n"
              "The content-aware service removes bytes *within* message structure\n"
              "(enhancement layers, compressible text), so the stream stays\n"
              "parseable and every delivered byte counts.\n");
  if (!acceptance_ok) {
    std::fprintf(stderr, "FATAL: content-aware did not beat byte-level at >=5%% loss\n");
    return 1;
  }
  return 0;
}

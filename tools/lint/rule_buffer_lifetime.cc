// buffer-lifetime — pointers into packet payloads must not outlive the
// payload.
//
// net::Packet::payload() hands out util::Bytes& — a live reference into the
// packet's own storage. Filters routinely take `.data()` pointers or bind
// references to it for zero-copy parsing (the HTTP/DNS service tier), which
// is fine *within* a processing call. It stops being fine the moment the
// packet's storage can move: set_payload() replaces the buffer,
// Decapsulate() hands the inner packet away, and std::move()-ing the
// PacketPtr requeues it to another owner (the proxy's reinjection path).
// Any use of a previously-taken alias after such a point is a
// use-after-free waiting for a reallocation.
//
// The check is deliberately local and token-ordered, per function body from
// the pass-1 index: (a) record aliases — `auto* p = pkt->payload().data()`,
// `util::Bytes& b = pkt->payload()` — keyed by the packet variable;
// (b) after a mutation/requeue of that same packet variable, flag any later
// use of one of its aliases; (c) flag member-field retention
// (`member_ = pkt->payload().data()`) outright — a field outlives the call
// by definition. Aliases of distinct packet variables are independent, so
// two-packet splice code stays clean. Scope is src/.
#include <map>
#include <string>
#include <vector>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

// Calls on a packet variable after which payload aliases are dead.
bool IsPayloadMutator(const std::string& method) {
  return method == "set_payload" || method == "Decapsulate";
}

struct Alias {
  std::string var;     // The alias variable.
  std::string packet;  // The packet variable it points into.
  int decl_line = 0;
};

struct Invalidation {
  size_t at = 0;  // Token index of the mutation/requeue.
  std::string packet;
  std::string what;  // For the message: "set_payload()", "std::move", ...
};

class BufferLifetimeRule : public Rule {
 public:
  std::string_view name() const override { return "buffer-lifetime"; }
  std::string_view description() const override {
    return "pointers/references into a packet payload must not be used after the "
           "packet is mutated, moved, or requeued, nor stored in fields";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (size_t fi = 0; fi < project.files.size() && fi < project.index.per_file.size(); ++fi) {
      const LintFile& f = project.files[fi];
      if (!PathUnder(f.path, "src/")) {
        continue;
      }
      for (const IndexFunction& fn : project.index.per_file[fi].functions) {
        CheckFunction(project, f, fn, out);
      }
    }
  }

 private:
  void CheckFunction(const Project& project, const LintFile& f, const IndexFunction& fn,
                     Diagnostics* out) const {
    const Tokens& toks = f.tokens;
    if (fn.body_open >= toks.size() || fn.body_close >= toks.size() ||
        fn.body_close <= fn.body_open) {
      return;
    }
    const std::vector<IndexField> fields =
        fn.class_name.empty() ? std::vector<IndexField>()
                              : FieldNames(project, fn.class_name);

    std::vector<Alias> aliases;
    std::vector<Invalidation> invalidations;

    for (size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
      const Token& t = toks[i];
      if (!t.IsIdent("payload") || i + 1 >= fn.body_close || !toks[i + 1].IsPunct("(") ||
          i + 2 >= fn.body_close || !toks[i + 2].IsPunct(")")) {
        if (t.kind == TokenKind::kIdentifier) {
          RecordInvalidation(toks, i, fn.body_close, &invalidations);
        }
        continue;
      }
      // `<pkt> . payload ( )` — the packet variable is the identifier
      // before the member access.
      if (i < 2 || (!toks[i - 1].IsPunct(".") && !toks[i - 1].IsPunct("->")) ||
          toks[i - 2].kind != TokenKind::kIdentifier) {
        continue;
      }
      const std::string packet = toks[i - 2].text;
      const bool takes_pointer = i + 4 < fn.body_close &&
                                 (toks[i + 3].IsPunct(".") || toks[i + 3].IsPunct("->")) &&
                                 toks[i + 4].IsIdent("data");

      // Assignment target: walk back across the packet expression to `=`.
      const size_t expr_begin = i - 2;
      if (expr_begin == 0 || !toks[expr_begin - 1].IsPunct("=")) {
        continue;
      }
      const size_t lhs = expr_begin - 2;
      if (lhs >= toks.size() || toks[lhs].kind != TokenKind::kIdentifier) {
        continue;
      }
      const std::string target = toks[lhs].text;

      // Field retention: `member_ = pkt.payload().data()` (or binding the
      // reference into a field). The field outlives the call; flag now.
      // Members are recognized by the index or by the project's trailing-
      // underscore style (the index only records mutex/guarded fields).
      const bool is_member =
          IsField(fields, target) ||
          (!fn.class_name.empty() && target.size() > 1 && target.back() == '_');
      // `stored_ = pkt.payload()` copies the bytes — only a retained
      // `.data()` pointer aliases the packet's storage.
      if (is_member && takes_pointer) {
        Emit(f, toks[lhs],
             "field '" + target + "' retains a pointer into '" + packet +
                 "'s payload; the buffer can be reallocated or requeued after this call "
                 "returns",
             out);
        continue;
      }
      // Local alias: `auto* p = pkt.payload().data()` or
      // `util::Bytes& b = pkt.payload()` (declaration has '&' or '*'
      // before the variable name).
      const bool is_ref_decl =
          lhs > 0 && (toks[lhs - 1].IsPunct("&") || toks[lhs - 1].IsPunct("*"));
      if (takes_pointer || is_ref_decl) {
        aliases.push_back({target, packet, t.line});
      }
    }

    // Any use of an alias after an invalidation of its packet.
    for (const Invalidation& inv : invalidations) {
      for (const Alias& alias : aliases) {
        if (alias.packet != inv.packet) {
          continue;
        }
        for (size_t j = inv.at + 1; j < fn.body_close; ++j) {
          const Token& t = toks[j];
          if (t.kind != TokenKind::kIdentifier || t.text != alias.var) {
            continue;
          }
          if (j > 0 && (toks[j - 1].IsPunct(".") || toks[j - 1].IsPunct("->") ||
                        toks[j - 1].IsPunct("::"))) {
            continue;  // Someone else's member with the same name.
          }
          Emit(f, t,
               "'" + alias.var + "' points into '" + alias.packet + "'s payload (taken at line " +
                   std::to_string(alias.decl_line) + ") but '" + alias.packet + "' was " +
                   inv.what + " at line " + std::to_string(toks[inv.at].line) +
                   "; the buffer may have been reallocated or handed away",
               out);
          break;  // One finding per (alias, invalidation) pair.
        }
      }
    }
  }

  // Records an invalidation at token `i` when it starts one of:
  //   pkt.set_payload(... / pkt.Decapsulate(... — storage replaced/detached
  //   std::move(pkt)                            — ownership handed away
  static void RecordInvalidation(const Tokens& toks, size_t i, size_t limit,
                                 std::vector<Invalidation>* out) {
    const Token& t = toks[i];
    if (t.IsIdent("move") && i + 2 < limit && toks[i + 1].IsPunct("(") &&
        toks[i + 2].kind == TokenKind::kIdentifier && i + 3 < limit && toks[i + 3].IsPunct(")")) {
      out->push_back({i, toks[i + 2].text, "std::move()d away"});
      return;
    }
    if (IsPayloadMutator(t.text) && i >= 2 && i + 1 < limit && toks[i + 1].IsPunct("(") &&
        (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) &&
        toks[i - 2].kind == TokenKind::kIdentifier) {
      out->push_back({i, toks[i - 2].text, t.text + "()'d"});
    }
  }

  static std::vector<IndexField> FieldNames(const Project& project, const std::string& cls) {
    const auto it = project.index.classes.find(cls);
    return it == project.index.classes.end() ? std::vector<IndexField>() : it->second.fields;
  }

  static bool IsField(const std::vector<IndexField>& fields, const std::string& name) {
    for (const IndexField& f : fields) {
      if (f.name == name) {
        return true;
      }
    }
    return false;
  }

  static void Emit(const LintFile& f, const Token& at, std::string message, Diagnostics* out) {
    Diagnostic d;
    d.file = f.path;
    d.line = at.line;
    d.col = at.col;
    d.rule = "buffer-lifetime";
    d.message = std::move(message);
    if (!f.IsSuppressed(d.rule, d.line)) {
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

RulePtr MakeBufferLifetimeRule() { return std::make_unique<BufferLifetimeRule>(); }

}  // namespace comma::lint

#include "tools/lint/lexer.h"

#include <cctype>

namespace comma::lint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character punctuators, longest first so maximal munch falls out of
// the scan order.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
};

class Lexer {
 public:
  explicit Lexer(std::string_view content) : s_(content) {}

  Tokens Run() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\n') {
        Advance();
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipPreprocessorLine();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        SkipLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        SkipBlockComment();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteralPrefix();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      LexPunct();
    }
    return out_;
  }

 private:
  char Peek(size_t ahead) const { return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0'; }

  void Advance() {
    if (s_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceN(size_t n) {
    for (size_t i = 0; i < n && pos_ < s_.size(); ++i) {
      Advance();
    }
  }

  void Emit(TokenKind kind, size_t begin, int line, int col, std::string text) {
    out_.push_back(Token{kind, std::move(text), line, col, begin, pos_});
  }

  void SkipLineComment() {
    while (pos_ < s_.size() && s_[pos_] != '\n') {
      Advance();
    }
  }

  void SkipBlockComment() {
    AdvanceN(2);
    while (pos_ < s_.size() && !(s_[pos_] == '*' && Peek(1) == '/')) {
      Advance();
    }
    AdvanceN(2);
  }

  // Consumes a whole preprocessor directive including \-continuations, but
  // stops at comments correctly ("#define X /* y */ z").
  void SkipPreprocessorLine() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        AdvanceN(2);
        continue;
      }
      if (c == '\n') {
        return;  // The newline itself is handled by Run().
      }
      if (c == '/' && Peek(1) == '*') {
        SkipBlockComment();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        SkipLineComment();
        return;
      }
      Advance();
    }
  }

  void LexIdentifierOrLiteralPrefix() {
    const size_t begin = pos_;
    const int line = line_;
    const int col = col_;
    while (pos_ < s_.size() && IsIdentChar(s_[pos_])) {
      Advance();
    }
    std::string text(s_.substr(begin, pos_ - begin));
    // String-literal prefixes: R"...", u8"...", L"...", and combinations.
    if (pos_ < s_.size() && s_[pos_] == '"' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR")) {
      pos_ = begin;
      line_ = line;
      col_ = col;
      LexString(/*raw=*/true);
      return;
    }
    if (pos_ < s_.size() && s_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      pos_ = begin;
      line_ = line;
      col_ = col;
      LexString(/*raw=*/false);
      return;
    }
    Emit(TokenKind::kIdentifier, begin, line, col, std::move(text));
  }

  void LexNumber() {
    const size_t begin = pos_;
    const int line = line_;
    const int col = col_;
    // pp-number: digits, idents, dots, and exponent signs. Good enough.
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        Advance();
      } else if ((c == '+' || c == '-') && pos_ > begin &&
                 (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E' || s_[pos_ - 1] == 'p' ||
                  s_[pos_ - 1] == 'P')) {
        Advance();
      } else {
        break;
      }
    }
    Emit(TokenKind::kNumber, begin, line, col, std::string(s_.substr(begin, pos_ - begin)));
  }

  void LexString(bool raw) {
    const size_t begin = pos_;
    const int line = line_;
    const int col = col_;
    // Skip any encoding prefix up to the quote.
    while (pos_ < s_.size() && s_[pos_] != '"') {
      Advance();
    }
    if (raw) {
      Advance();  // "
      std::string delim;
      while (pos_ < s_.size() && s_[pos_] != '(') {
        delim += s_[pos_];
        Advance();
      }
      Advance();  // (
      const size_t inner_begin = pos_;
      const std::string closer = ")" + delim + "\"";
      size_t found = s_.find(closer, pos_);
      if (found == std::string_view::npos) {
        found = s_.size();
      }
      std::string inner(s_.substr(inner_begin, found - inner_begin));
      while (pos_ < s_.size() && pos_ < found + closer.size()) {
        Advance();
      }
      Emit(TokenKind::kString, begin, line, col, std::move(inner));
      return;
    }
    Advance();  // "
    std::string inner;
    while (pos_ < s_.size() && s_[pos_] != '"' && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        inner += s_[pos_];
        Advance();
      }
      inner += s_[pos_];
      Advance();
    }
    if (pos_ < s_.size() && s_[pos_] == '"') {
      Advance();
    }
    Emit(TokenKind::kString, begin, line, col, std::move(inner));
  }

  void LexCharLiteral() {
    const size_t begin = pos_;
    const int line = line_;
    const int col = col_;
    Advance();  // '
    std::string inner;
    while (pos_ < s_.size() && s_[pos_] != '\'' && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        inner += s_[pos_];
        Advance();
      }
      inner += s_[pos_];
      Advance();
    }
    if (pos_ < s_.size() && s_[pos_] == '\'') {
      Advance();
    }
    Emit(TokenKind::kChar, begin, line, col, std::move(inner));
  }

  void LexPunct() {
    const size_t begin = pos_;
    const int line = line_;
    const int col = col_;
    for (std::string_view p : kPuncts) {
      if (s_.substr(pos_).substr(0, p.size()) == p) {
        AdvanceN(p.size());
        Emit(TokenKind::kPunct, begin, line, col, std::string(p));
        return;
      }
    }
    Advance();
    Emit(TokenKind::kPunct, begin, line, col, std::string(s_.substr(begin, 1)));
  }

  std::string_view s_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  Tokens out_;
};

}  // namespace

Tokens Lex(std::string_view content) { return Lexer(content).Run(); }

}  // namespace comma::lint

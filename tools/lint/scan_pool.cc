#include "tools/lint/scan_pool.h"

#include <algorithm>
#include <thread>

namespace comma::lint {

bool ScanPool::LoadAll(const std::filesystem::path& root, const std::vector<std::string>& rels,
                       int jobs, std::vector<LintFile>* out, std::string* error) {
  out->clear();
  out->resize(rels.size());
  ScanPool pool(root, rels, out);
  const int workers = std::max(1, std::min<int>(jobs, static_cast<int>(rels.size())));
  if (workers == 1) {
    // Serial path runs the same worker loop inline: one code path to test,
    // and --jobs 1 behaves byte-for-byte like the pre-pool runner.
    pool.Worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads.emplace_back([&pool] { pool.Worker(); });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  const std::string failed = pool.TakeFailure();
  if (!failed.empty()) {
    *error = "cannot read " + failed;
    return false;
  }
  return true;
}

void ScanPool::Worker() {
  for (std::optional<size_t> i = NextIndex(); i.has_value(); i = NextIndex()) {
    const std::string& rel = rels_[*i];
    if (!LoadLintFile((root_ / rel).string(), rel, &(*out_)[*i])) {
      RecordFailure(rel);
      return;
    }
  }
}

std::optional<size_t> ScanPool::NextIndex() {
  std::lock_guard<std::mutex> lock(scan_mu_);
  if (!failed_rel_.empty() || next_ >= rels_.size()) {
    return std::nullopt;  // Done, or draining after a failure.
  }
  return next_++;
}

void ScanPool::RecordFailure(const std::string& rel) {
  std::lock_guard<std::mutex> lock(scan_mu_);
  if (failed_rel_.empty()) {
    failed_rel_ = rel;
  }
}

std::string ScanPool::TakeFailure() {
  std::lock_guard<std::mutex> lock(scan_mu_);
  return failed_rel_;
}

}  // namespace comma::lint

// checkpoint-blob-symmetry — ExportState and ImportState are two halves of
// one wire format (src/proxy/filter_state.h): the byte sequence the writer
// produces must be exactly what the reader consumes, or a warm-standby
// proxy resumes from garbage. The compiler cannot see that contract — the
// two functions share no types beyond ByteWriter/ByteReader — so this rule
// recovers it from the semantic index: each Export/ImportState body is
// lowered to a canonical op sequence (header, u8..u64, bytes, string,
// stream-key) tagged with its loop depth, and the two sequences must match
// op-for-op, including the magic tag and version constant. Same-file free
// helpers that take a ByteReader*/ByteWriter* (the StateVersionOk idiom in
// transform_filters.cc / http_filters.cc) are inlined one level, with the
// call-site magic constant substituted for the helper's parameter.
//
// Loop depth, not trip count, is what's comparable statically: a count
// written as u32 followed by a depth-1 loop of reads mirrors the export's
// depth-1 loop of writes whatever the runtime count is. The diagnostic
// anchors at the first diverging import-side op — the exact field where a
// restore would desynchronize.
#include <array>
#include <map>
#include <string>
#include <vector>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

enum class BlobOpKind { kHeader, kU8, kU16, kU32, kU64, kBytes, kString, kStreamKey };

std::string_view OpName(BlobOpKind k) {
  switch (k) {
    case BlobOpKind::kHeader:
      return "header";
    case BlobOpKind::kU8:
      return "u8";
    case BlobOpKind::kU16:
      return "u16";
    case BlobOpKind::kU32:
      return "u32";
    case BlobOpKind::kU64:
      return "u64";
    case BlobOpKind::kBytes:
      return "bytes";
    case BlobOpKind::kString:
      return "string";
    case BlobOpKind::kStreamKey:
      return "stream-key";
  }
  return "?";
}

struct BlobOp {
  BlobOpKind kind = BlobOpKind::kU8;
  int loop_depth = 0;
  std::string magic;  // kHeader only: the magic constant's identifier.
  int line = 0;
  int col = 0;
};

// One side of a format: the lowered op sequence plus the identity constants.
struct BlobSeq {
  std::vector<BlobOp> ops;
  std::string magic;    // First header op's magic identifier.
  std::string version;  // First k...Version identifier seen in the body.
  int line = 0;         // Function definition anchor.
  int col = 0;
  const LintFile* file = nullptr;
};

struct MethodOp {
  std::string_view method;
  BlobOpKind kind;
};

// ByteWriter / WriteStreamKey vocabulary and the ByteReader mirror
// (src/util/bytes.h, src/proxy/filter_state.h).
constexpr std::array<MethodOp, 7> kWriteOps = {{
    {"WriteU8", BlobOpKind::kU8},
    {"WriteU16", BlobOpKind::kU16},
    {"WriteU32", BlobOpKind::kU32},
    {"WriteU64", BlobOpKind::kU64},
    {"WriteBytes", BlobOpKind::kBytes},
    {"WriteString", BlobOpKind::kString},
    {"WriteStreamKey", BlobOpKind::kStreamKey},
}};
constexpr std::array<MethodOp, 7> kReadOps = {{
    {"ReadU8", BlobOpKind::kU8},
    {"ReadU16", BlobOpKind::kU16},
    {"ReadU32", BlobOpKind::kU32},
    {"ReadU64", BlobOpKind::kU64},
    {"ReadBytes", BlobOpKind::kBytes},
    {"ReadString", BlobOpKind::kString},
    {"ReadStreamKey", BlobOpKind::kStreamKey},
}};

// Statement end for the loop-depth prepass: the ';' closing the statement
// at `i`, skipping parens/braces.
size_t SingleStmtEnd(const Tokens& toks, size_t i, size_t limit) {
  for (size_t j = i; j < limit; ++j) {
    if (toks[j].IsPunct("(")) {
      const size_t c = MatchingParen(toks, j);
      if (c == kNpos || c >= limit) return limit - 1;
      j = c;
    } else if (toks[j].IsPunct("{")) {
      const size_t c = MatchingBrace(toks, j);
      if (c == kNpos || c >= limit) return limit - 1;
      j = c;
    } else if (toks[j].IsPunct(";")) {
      return j;
    }
  }
  return limit - 1;
}

// Fills depth[i] for i in [begin, end) with the loop-nesting depth. Only
// for/while/do bodies count; if/switch do not change depth.
void ComputeLoopDepth(const Tokens& toks, size_t begin, size_t end, int base,
                      std::vector<int>* depth) {
  for (size_t i = begin; i < end; ++i) {
    (*depth)[i] = base;
    const Token& t = toks[i];
    const bool is_loop_kw = t.IsIdent("for") || t.IsIdent("while");
    if (is_loop_kw && i + 1 < end && toks[i + 1].IsPunct("(")) {
      const size_t close = MatchingParen(toks, i + 1);
      if (close == kNpos || close + 1 >= end) continue;
      // `} while (cond);` is a do-while tail: no body follows.
      if (t.IsIdent("while") && toks[close + 1].IsPunct(";")) {
        for (size_t j = i + 1; j <= close; ++j) (*depth)[j] = base;
        i = close + 1;
        (*depth)[i] = base;
        continue;
      }
      for (size_t j = i + 1; j <= close; ++j) (*depth)[j] = base;
      size_t body_end;
      if (toks[close + 1].IsPunct("{")) {
        const size_t bc = MatchingBrace(toks, close + 1);
        body_end = (bc == kNpos || bc > end) ? end : bc;
        (*depth)[close + 1] = base;
        ComputeLoopDepth(toks, close + 2, body_end, base + 1, depth);
        if (body_end < end) (*depth)[body_end] = base;
      } else {
        body_end = SingleStmtEnd(toks, close + 1, end);
        ComputeLoopDepth(toks, close + 1, body_end + 1, base + 1, depth);
      }
      i = body_end;
    } else if (t.IsIdent("do") && i + 1 < end && toks[i + 1].IsPunct("{")) {
      const size_t bc = MatchingBrace(toks, i + 1);
      const size_t body_end = (bc == kNpos || bc > end) ? end : bc;
      (*depth)[i + 1] = base;
      ComputeLoopDepth(toks, i + 2, body_end, base + 1, depth);
      if (body_end < end) (*depth)[body_end] = base;
      i = body_end;
    }
  }
}

// First argument inside `(args)` that names a magic constant: an identifier
// starting with 'k', or a string literal (fixtures write "TTSF" inline).
std::string FindMagicArg(const Tokens& toks, size_t open, size_t close) {
  for (size_t j = open + 1; j < close; ++j) {
    const Token& t = toks[j];
    if (t.kind == TokenKind::kIdentifier && t.text.size() > 1 && t.text[0] == 'k') {
      return t.text;
    }
    if (t.kind == TokenKind::kString) {
      return t.text;
    }
  }
  return std::string();
}

bool EndsWithVersion(const std::string& s) {
  constexpr std::string_view kSuffix = "Version";
  return s.size() > kSuffix.size() &&
         std::string_view(s).substr(s.size() - kSuffix.size()) == kSuffix;
}

// Lowers a body token range to its blob-op sequence. `helpers` maps a
// same-file free function name to its (already lowered) sequence; calls to
// one are spliced in with the call-site magic substituted — one level only,
// so helper extraction passes an empty map.
BlobSeq ExtractOps(const LintFile& f, size_t body_open, size_t body_close,
                   const std::map<std::string, BlobSeq>& helpers) {
  BlobSeq seq;
  seq.file = &f;
  const Tokens& toks = f.tokens;
  if (body_open >= toks.size() || body_close >= toks.size() || body_close <= body_open) {
    return seq;
  }
  std::vector<int> depth(toks.size(), 0);
  ComputeLoopDepth(toks, body_open + 1, body_close, 0, &depth);

  for (size_t i = body_open + 1; i < body_close; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (seq.version.empty() && EndsWithVersion(t.text)) {
      seq.version = t.text;
    }
    if (i + 1 >= body_close || !toks[i + 1].IsPunct("(")) continue;
    const size_t close = MatchingParen(toks, i + 1);
    if (close == kNpos) continue;

    if (t.text == "WriteStateHeader" || t.text == "ReadStateHeader") {
      BlobOp op;
      op.kind = BlobOpKind::kHeader;
      op.loop_depth = depth[i];
      op.magic = FindMagicArg(toks, i + 1, close);
      op.line = t.line;
      op.col = t.col;
      if (seq.magic.empty()) seq.magic = op.magic;
      seq.ops.push_back(std::move(op));
      continue;
    }
    bool matched = false;
    for (const auto& table : {kWriteOps, kReadOps}) {
      for (const MethodOp& m : table) {
        if (t.text == m.method) {
          seq.ops.push_back({m.kind, depth[i], std::string(), t.line, t.col});
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    if (matched) continue;

    const auto helper = helpers.find(t.text);
    if (helper != helpers.end()) {
      const std::string call_magic = FindMagicArg(toks, i + 1, close);
      for (BlobOp op : helper->second.ops) {
        op.loop_depth += depth[i];
        // The splice anchors at the call site: that is the line a reader
        // sees and the line NOLINT must be able to suppress.
        op.line = t.line;
        op.col = t.col;
        if (op.kind == BlobOpKind::kHeader && !call_magic.empty()) {
          op.magic = call_magic;
        }
        if (seq.magic.empty() && op.kind == BlobOpKind::kHeader) seq.magic = op.magic;
        seq.ops.push_back(std::move(op));
      }
      if (seq.version.empty()) seq.version = helper->second.version;
    }
  }
  return seq;
}

struct FormatPair {
  BlobSeq export_seq;
  BlobSeq import_seq;
  bool has_export = false;
  bool has_import = false;
};

class BlobSymmetryRule : public Rule {
 public:
  std::string_view name() const override { return "checkpoint-blob-symmetry"; }
  std::string_view description() const override {
    return "ImportState must read exactly the byte sequence ExportState writes "
           "(magic, version, field order/widths, loop structure)";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    // Keyed by class name: Export/Import halves may live in different files.
    std::map<std::string, FormatPair> pairs;
    for (size_t fi = 0; fi < project.files.size() && fi < project.index.per_file.size(); ++fi) {
      const LintFile& f = project.files[fi];
      if (!PathUnder(f.path, "src/")) continue;
      const FileIndex& idx = project.index.per_file[fi];

      // Same-file free helpers (StateVersionOk and friends), lowered first
      // so Export/Import extraction can splice them.
      std::map<std::string, BlobSeq> helpers;
      for (const IndexFunction& fn : idx.functions) {
        if (!fn.class_name.empty()) continue;
        BlobSeq seq = ExtractOps(f, fn.body_open, fn.body_close, {});
        if (!seq.ops.empty()) {
          helpers[fn.name] = std::move(seq);
        }
      }
      for (const IndexFunction& fn : idx.functions) {
        if (fn.class_name.empty()) continue;
        const bool is_export = fn.name == "ExportState";
        const bool is_import = fn.name == "ImportState";
        if (!is_export && !is_import) continue;
        BlobSeq seq = ExtractOps(f, fn.body_open, fn.body_close, helpers);
        seq.line = fn.line;
        seq.col = fn.col;
        FormatPair& pair = pairs[fn.class_name];
        if (is_export) {
          pair.export_seq = std::move(seq);
          pair.has_export = true;
        } else {
          pair.import_seq = std::move(seq);
          pair.has_import = true;
        }
      }
    }

    for (const auto& [cls, pair] : pairs) {
      ComparePair(cls, pair, out);
    }
  }

 private:
  static void Emit(const LintFile* f, int line, int col, std::string message, Diagnostics* out) {
    if (f == nullptr) return;
    Diagnostic d;
    d.file = f->path;
    d.line = line;
    d.col = col;
    d.rule = "checkpoint-blob-symmetry";
    d.message = std::move(message);
    if (!f->IsSuppressed(d.rule, d.line)) {
      out->push_back(std::move(d));
    }
  }

  static void ComparePair(const std::string& cls, const FormatPair& pair, Diagnostics* out) {
    // A lone half with real ops is a broken contract; the default
    // Filter::Export/ImportState pair has no ops on either side and passes.
    if (pair.has_export != pair.has_import) {
      const BlobSeq& present = pair.has_export ? pair.export_seq : pair.import_seq;
      if (!present.ops.empty()) {
        Emit(present.file, present.line, present.col,
             cls + "::" + (pair.has_export ? "ExportState" : "ImportState") +
                 " serializes a checkpoint blob but the " +
                 (pair.has_export ? "ImportState" : "ExportState") +
                 " counterpart is missing",
             out);
      }
      return;
    }
    if (!pair.has_export) return;
    const BlobSeq& ex = pair.export_seq;
    const BlobSeq& im = pair.import_seq;
    if (!ex.magic.empty() && !im.magic.empty() && ex.magic != im.magic) {
      Emit(im.file, im.ops.empty() ? im.line : im.ops[0].line,
           im.ops.empty() ? im.col : im.ops[0].col,
           cls + "::ImportState expects magic " + im.magic + " but ExportState writes " + ex.magic,
           out);
      return;
    }
    if (!ex.version.empty() && !im.version.empty() && ex.version != im.version) {
      Emit(im.file, im.ops.empty() ? im.line : im.ops[0].line,
           im.ops.empty() ? im.col : im.ops[0].col,
           cls + "::ImportState checks version " + im.version + " but ExportState writes " +
               ex.version,
           out);
      return;
    }
    const size_t n = std::min(ex.ops.size(), im.ops.size());
    for (size_t i = 0; i < n; ++i) {
      if (ex.ops[i].kind == im.ops[i].kind && ex.ops[i].loop_depth == im.ops[i].loop_depth) {
        continue;
      }
      Emit(im.file, im.ops[i].line, im.ops[i].col,
           cls + " checkpoint blob desync at step " + std::to_string(i + 1) + ": import reads " +
               std::string(OpName(im.ops[i].kind)) + " at loop depth " +
               std::to_string(im.ops[i].loop_depth) + " but export writes " +
               std::string(OpName(ex.ops[i].kind)) + " at loop depth " +
               std::to_string(ex.ops[i].loop_depth),
           out);
      return;  // Everything after the first divergence is noise.
    }
    if (ex.ops.size() > im.ops.size()) {
      const BlobOp& extra = ex.ops[im.ops.size()];
      Emit(im.file, im.line, im.col,
           cls + "::ImportState stops after " + std::to_string(im.ops.size()) +
               " field(s) but ExportState also writes " + std::string(OpName(extra.kind)) +
               " at step " + std::to_string(im.ops.size() + 1),
           out);
    } else if (im.ops.size() > ex.ops.size()) {
      const BlobOp& extra = im.ops[ex.ops.size()];
      Emit(im.file, extra.line, extra.col,
           cls + "::ImportState reads " + std::string(OpName(extra.kind)) + " at step " +
               std::to_string(ex.ops.size() + 1) + " past the end of the exported blob (" +
               std::to_string(ex.ops.size()) + " field(s))",
           out);
    }
  }
};

}  // namespace

RulePtr MakeBlobSymmetryRule() { return std::make_unique<BlobSymmetryRule>(); }

}  // namespace comma::lint

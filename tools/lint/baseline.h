// Grandfathered-findings baseline.
//
// The baseline lets a new rule land with the tree still dirty: existing
// findings are recorded and stop failing the build, while any *new* finding
// (or an old one that moved to a different source line) fails immediately.
// Entries key on (rule, file, normalized source-line text) rather than line
// numbers so unrelated edits above a grandfathered line don't churn the
// file. Matching is multiset-style: N identical entries absorb at most N
// identical findings.
//
// Format, one entry per line (blank lines and '#' comments ignored):
//   <rule>|<path>|<normalized line text>
#ifndef COMMA_TOOLS_LINT_BASELINE_H_
#define COMMA_TOOLS_LINT_BASELINE_H_

#include <map>
#include <string>

#include "tools/lint/diagnostic.h"
#include "tools/lint/rules.h"

namespace comma::lint {

class Baseline {
 public:
  // Loads entries from `path`. A missing file is an empty baseline (so the
  // flag can always be passed); a malformed line is reported via *error.
  bool Load(const std::string& path, std::string* error);

  // True (and consumes one entry) when `d` matches a grandfathered finding.
  // `line_text` is the source line the diagnostic points at.
  bool Absorb(const Diagnostic& d, const std::string& line_text);

  // Entries loaded but not consumed by any Absorb() call — findings that
  // were fixed (or moved) since the baseline was written. Reported every
  // run so the baseline's drift is visible; --prune-baseline rewrites the
  // file without them.
  int StaleCount() const;

  // Renders the loaded entries minus the stale ones (i.e. only entries some
  // finding actually consumed), for --prune-baseline.
  std::string RenderPruned() const;

  // Renders entries for the given findings, ready to write back with
  // --write-baseline. `project` supplies the source lines.
  static std::string Render(const Diagnostics& findings, const Project& project);

 private:
  static std::string Normalize(const std::string& line);
  static std::string Key(const std::string& rule, const std::string& file,
                         const std::string& normalized_line);
  static std::string Header();

  std::map<std::string, int> loaded_;     // Entry -> count as read from disk.
  std::map<std::string, int> remaining_;  // Decremented by Absorb().
};

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_BASELINE_H_

// include-layering — the DESIGN.md module DAG, encoded as data.
//
// Layer order (low to high):
//   sim, util                         deterministic core, no deps
//   net                               packets/links; obs only via counter.h
//   tcp, udp                          endpoint stacks
//   reassembly                        stream/message codecs; tcp only via
//                                     seq.h (sequence arithmetic)
//   obs                               metric registry (+ the EEM bridge)
//   core(host)                        Host/ping — the *restricted* slice of
//                                     src/core mid modules may touch
//   monitor                           EEM client/server
//   proxy                             Service Proxy
//   filters, mobileip, kati, apps,    service layer
//   baselines
//   core(CommaSystem)                 facade: may include anything
//
// src/core is deliberately two layers in one directory: host.h/ping.h sit
// low (every endpoint-owning module includes them), comma_system.h sits on
// top. The table expresses that with per-edge header allowlists instead of
// pretending the directory is one node and letting a cycle grow.
//
// An edge not in this table is an error: adding a dependency between
// modules is an architectural decision and belongs in the same commit that
// extends the table (docs/static-analysis.md describes the process).
#include <array>
#include <string>

#include "tools/lint/rules.h"

namespace comma::lint {
namespace {

struct AllowedEdge {
  std::string_view from;
  std::string_view to;
  // When non-empty, only these headers of `to` may be included (filename
  // component only, e.g. "host.h").
  std::array<std::string_view, 3> headers{};
};

// Every permitted cross-module edge. Self-includes are always allowed, and
// `core` (the facade) may include anything.
constexpr AllowedEdge kAllowedEdges[] = {
    // The simulator gained real dependencies with the region sharding:
    // contract checks (util/check.h) and the lock annotations on the
    // cross-region channels (util/thread_annotations.h). util stays
    // leaf-level; the edge points downward only.
    {"sim", "util"},
    {"net", "sim"},
    {"net", "util"},
    // The TraceTap binds raw counter handles; only the tiny header-only
    // counter type may cross down into net (the registry stays above).
    {"net", "obs", {"counter.h"}},
    {"udp", "net"},
    {"udp", "sim"},
    {"udp", "util"},
    {"tcp", "net"},
    {"tcp", "sim"},
    {"tcp", "util"},
    // The reassembly codecs are pure byte-stream/message logic: no packets,
    // no sim. Sequence-space arithmetic is the one sanctioned tcp import.
    {"reassembly", "util"},
    {"reassembly", "tcp", {"seq.h"}},
    {"obs", "sim"},
    {"obs", "util"},
    // The EEM bridge is the designated obs->monitor adapter.
    {"obs", "monitor"},
    {"monitor", "sim"},
    {"monitor", "util"},
    {"monitor", "net"},
    {"monitor", "udp"},
    {"monitor", "core", {"host.h", "ping.h"}},
    {"proxy", "sim"},
    {"proxy", "util"},
    {"proxy", "net"},
    {"proxy", "tcp"},
    {"proxy", "obs"},
    {"proxy", "monitor"},
    {"filters", "sim"},
    {"filters", "util"},
    {"filters", "net"},
    {"filters", "tcp"},
    {"filters", "obs"},
    {"filters", "monitor"},
    {"filters", "proxy"},
    // The content-aware family (hrewrite/htype/dnscache) recovers streams
    // and messages through the reassembly codecs.
    {"filters", "reassembly", {"stream_reassembler.h", "http_parser.h", "dns_codec.h"}},
    {"kati", "sim"},
    {"kati", "util"},
    {"kati", "net"},
    {"kati", "monitor"},
    {"kati", "proxy"},
    {"kati", "core", {"host.h", "ping.h"}},
    {"mobileip", "sim"},
    {"mobileip", "util"},
    {"mobileip", "net"},
    {"mobileip", "proxy"},
    {"mobileip", "core", {"host.h", "ping.h"}},
    // apps share wire-protocol helpers with their filters (media layering,
    // query protocol), not filter machinery.
    {"apps", "sim"},
    {"apps", "util"},
    {"apps", "net"},
    {"apps", "filters"},
    // The HTTP/DNS workload apps speak the same message codecs the filters
    // rewrite — message parsing, not the reassembler (the endpoint TCP stack
    // already delivers ordered bytes).
    {"apps", "reassembly", {"http_parser.h", "dns_codec.h"}},
    {"apps", "core", {"host.h", "ping.h"}},
    {"baselines", "sim"},
    {"baselines", "util"},
    {"baselines", "net"},
    {"baselines", "tcp"},
    {"baselines", "core", {"host.h", "ping.h"}},
};

// Returns nullptr when allowed; otherwise a reason string fragment.
std::string CheckEdge(const std::string& from, const std::string& to,
                      const std::string& header_file) {
  if (from == to || from == "core") {
    return {};
  }
  bool module_allowed = false;
  for (const AllowedEdge& e : kAllowedEdges) {
    if (e.from != from || e.to != to) {
      continue;
    }
    module_allowed = true;
    if (e.headers[0].empty()) {
      return {};
    }
    for (std::string_view h : e.headers) {
      if (!h.empty() && header_file == h) {
        return {};
      }
    }
  }
  if (module_allowed) {
    return "only " + std::string("the allowlisted headers of src/") + to +
           " may be included from src/" + from;
  }
  return "src/" + from + " sits below src/" + to + " in the DESIGN.md layer DAG";
}

class IncludeLayeringRule : public Rule {
 public:
  std::string_view name() const override { return "include-layering"; }
  std::string_view description() const override {
    return "src/ module includes must follow the DESIGN.md layer DAG (encoded as data)";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      const std::string from = f.SrcModule();
      if (from.empty()) {
        continue;  // Only src/<module>/ files carry layering obligations.
      }
      for (size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& line = f.lines[i];
        std::string to;
        std::string header;
        int col = 0;
        if (!ParseInclude(line, &to, &header, &col)) {
          continue;
        }
        const std::string reason = CheckEdge(from, to, header);
        if (reason.empty()) {
          continue;
        }
        Diagnostic d;
        d.file = f.path;
        d.line = static_cast<int>(i + 1);
        d.col = col;
        d.rule = "include-layering";
        d.message = "forbidden include of \"src/" + to + "/" + header + "\": " + reason;
        if (!f.IsSuppressed(d.rule, d.line)) {
          out->push_back(std::move(d));
        }
      }
    }
  }

 private:
  // Matches `#include "src/<module>/<path>"`; returns the module, the
  // filename component of <path>, and the 1-based column of the quote.
  static bool ParseInclude(const std::string& line, std::string* module, std::string* header,
                           int* col) {
    size_t p = line.find_first_not_of(" \t");
    if (p == std::string::npos || line[p] != '#') {
      return false;
    }
    p = line.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || line.compare(p, 7, "include") != 0) {
      return false;
    }
    p = line.find('"', p + 7);
    if (p == std::string::npos || line.compare(p + 1, 4, "src/") != 0) {
      return false;
    }
    const size_t close = line.find('"', p + 1);
    if (close == std::string::npos) {
      return false;
    }
    const std::string inner = line.substr(p + 1, close - p - 1);  // src/mod/path.h
    const size_t mod_end = inner.find('/', 4);
    if (mod_end == std::string::npos) {
      return false;
    }
    *module = inner.substr(4, mod_end - 4);
    const size_t last_slash = inner.rfind('/');
    *header = inner.substr(last_slash + 1);
    *col = static_cast<int>(p) + 1;
    return true;
  }
};

}  // namespace

RulePtr MakeIncludeLayeringRule() { return std::make_unique<IncludeLayeringRule>(); }

}  // namespace comma::lint

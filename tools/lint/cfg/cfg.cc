#include "tools/lint/cfg/cfg.h"

#include <algorithm>
#include <deque>

#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

class Builder {
 public:
  explicit Builder(const Tokens& toks) : toks_(toks) {}

  Cfg Run(size_t body_open, size_t body_close) {
    cur_ = NewBlock();
    cfg_.entry = cur_;
    ParseSeq(body_open + 1, body_close);
    return std::move(cfg_);
  }

 private:
  struct LoopCtx {
    size_t continue_target = kNpos;  // kNpos inside switch: continue belongs
                                     // to the enclosing loop (approximated
                                     // as falling out of the block).
    std::vector<size_t> break_sources;
  };

  size_t NewBlock() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }

  void Edge(size_t from, size_t to) { cfg_.blocks[from].succs.push_back(to); }

  void Append(CfgStmt::Kind kind, size_t begin, size_t end) {
    cfg_.blocks[cur_].stmts.push_back({kind, begin, end});
  }

  // Index of the ';' ending the statement starting at `i`, skipping nested
  // parens and braces (lambdas, braced init). Returns limit-1 when the
  // statement runs to the end of the enclosing range.
  size_t StmtSemi(size_t i, size_t limit) const {
    for (size_t j = i; j < limit; ++j) {
      if (toks_[j].IsPunct("(")) {
        const size_t c = MatchingParen(toks_, j);
        if (c == kNpos || c >= limit) {
          return limit - 1;
        }
        j = c;
      } else if (toks_[j].IsPunct("{")) {
        const size_t c = MatchingBrace(toks_, j);
        if (c == kNpos || c >= limit) {
          return limit - 1;
        }
        j = c;
      } else if (toks_[j].IsPunct(";")) {
        return j;
      }
    }
    return limit - 1;
  }

  void ParseSeq(size_t i, size_t limit) {
    while (i < limit) {
      i = ParseStmt(i, limit);
    }
  }

  // Parses one statement starting at `i`; returns the index just past it.
  size_t ParseStmt(size_t i, size_t limit) {
    if (i >= limit) {
      return limit;
    }
    const Token& t = toks_[i];

    if (t.IsPunct("{")) {
      const size_t close = MatchingBrace(toks_, i);
      const size_t end = (close == kNpos || close > limit) ? limit : close;
      ParseSeq(i + 1, end);
      Append(CfgStmt::Kind::kScopeExit, i, end);
      return end + 1;
    }
    if (t.IsPunct(";")) {
      return i + 1;  // Empty statement.
    }
    if (t.IsIdent("case") || t.IsIdent("default")) {
      // Labels carry no effects; skip to the ':'.
      for (size_t j = i; j < limit; ++j) {
        if (toks_[j].IsPunct(":")) {
          return j + 1;
        }
      }
      return limit;
    }
    if (t.IsIdent("if")) {
      return ParseIf(i, limit);
    }
    if (t.IsIdent("while")) {
      return ParseWhile(i, limit);
    }
    if (t.IsIdent("for")) {
      return ParseFor(i, limit);
    }
    if (t.IsIdent("do")) {
      return ParseDo(i, limit);
    }
    if (t.IsIdent("switch")) {
      return ParseSwitch(i, limit);
    }
    if (t.IsIdent("return") || t.IsIdent("throw")) {
      const size_t semi = StmtSemi(i, limit);
      Append(CfgStmt::Kind::kNormal, i, semi);
      cur_ = NewBlock();  // Unreachable continuation (TOP in dataflow).
      return semi + 1;
    }
    if (t.IsIdent("break") || t.IsIdent("continue")) {
      Append(CfgStmt::Kind::kNormal, i, i);
      if (!loops_.empty()) {
        if (t.IsIdent("break")) {
          loops_.back().break_sources.push_back(cur_);
        } else if (loops_.back().continue_target != kNpos) {
          Edge(cur_, loops_.back().continue_target);
        }
      }
      cur_ = NewBlock();
      const size_t semi = StmtSemi(i, limit);
      return semi + 1;
    }
    const size_t semi = StmtSemi(i, limit);
    Append(CfgStmt::Kind::kNormal, i, semi);
    return semi + 1;
  }

  // `cond_open` must be the '(' after the keyword at `i`; returns the
  // matching ')' clamped to the range, or kNpos.
  size_t CondClose(size_t i, size_t limit) const {
    if (i + 1 >= limit || !toks_[i + 1].IsPunct("(")) {
      return kNpos;
    }
    const size_t close = MatchingParen(toks_, i + 1);
    return (close == kNpos || close >= limit) ? kNpos : close;
  }

  size_t ParseIf(size_t i, size_t limit) {
    const size_t close = CondClose(i, limit);
    if (close == kNpos) {
      const size_t semi = StmtSemi(i, limit);
      Append(CfgStmt::Kind::kNormal, i, semi);
      return semi + 1;
    }
    Append(CfgStmt::Kind::kNormal, i, close);
    const size_t cond_block = cur_;

    const size_t then_entry = NewBlock();
    Edge(cond_block, then_entry);
    cur_ = then_entry;
    size_t next = ParseStmt(close + 1, limit);
    const size_t then_exit = cur_;

    if (next < limit && toks_[next].IsIdent("else")) {
      const size_t else_entry = NewBlock();
      Edge(cond_block, else_entry);
      cur_ = else_entry;
      next = ParseStmt(next + 1, limit);
      const size_t else_exit = cur_;
      const size_t merge = NewBlock();
      Edge(then_exit, merge);
      Edge(else_exit, merge);
      cur_ = merge;
      return next;
    }
    const size_t merge = NewBlock();
    Edge(then_exit, merge);
    Edge(cond_block, merge);
    cur_ = merge;
    return next;
  }

  size_t ParseWhile(size_t i, size_t limit) {
    const size_t close = CondClose(i, limit);
    if (close == kNpos) {
      const size_t semi = StmtSemi(i, limit);
      Append(CfgStmt::Kind::kNormal, i, semi);
      return semi + 1;
    }
    const size_t header = NewBlock();
    Edge(cur_, header);
    cur_ = header;
    Append(CfgStmt::Kind::kNormal, i, close);

    loops_.push_back({header, {}});
    const size_t body_entry = NewBlock();
    Edge(header, body_entry);
    cur_ = body_entry;
    const size_t next = ParseStmt(close + 1, limit);
    Edge(cur_, header);
    const LoopCtx ctx = loops_.back();
    loops_.pop_back();

    const size_t after = NewBlock();
    Edge(header, after);
    for (size_t b : ctx.break_sources) {
      Edge(b, after);
    }
    cur_ = after;
    return next;
  }

  size_t ParseFor(size_t i, size_t limit) {
    // The whole `for (init; cond; inc)` head is one header statement; the
    // must-analysis re-applies init/inc each trip, which only shrinks facts.
    return ParseWhile(i, limit);
  }

  size_t ParseDo(size_t i, size_t limit) {
    const size_t body_entry = NewBlock();
    Edge(cur_, body_entry);
    const size_t cond_block = NewBlock();
    loops_.push_back({cond_block, {}});
    cur_ = body_entry;
    size_t next = ParseStmt(i + 1, limit);
    Edge(cur_, cond_block);
    const LoopCtx ctx = loops_.back();
    loops_.pop_back();

    cur_ = cond_block;
    // `while (cond) ;`
    if (next < limit && toks_[next].IsIdent("while")) {
      const size_t close = CondClose(next, limit);
      const size_t semi = close == kNpos ? StmtSemi(next, limit) : StmtSemi(close, limit);
      Append(CfgStmt::Kind::kNormal, next, close == kNpos ? semi : close);
      next = semi + 1;
    }
    Edge(cond_block, body_entry);
    const size_t after = NewBlock();
    Edge(cond_block, after);
    for (size_t b : ctx.break_sources) {
      Edge(b, after);
    }
    cur_ = after;
    return next;
  }

  size_t ParseSwitch(size_t i, size_t limit) {
    const size_t close = CondClose(i, limit);
    if (close == kNpos || close + 1 >= limit || !toks_[close + 1].IsPunct("{")) {
      const size_t semi = StmtSemi(i, limit);
      Append(CfgStmt::Kind::kNormal, i, semi);
      return semi + 1;
    }
    Append(CfgStmt::Kind::kNormal, i, close);
    const size_t header = cur_;
    const size_t body_open = close + 1;
    size_t body_close = MatchingBrace(toks_, body_open);
    if (body_close == kNpos || body_close > limit) {
      body_close = limit;
    }
    // The body is approximated as one optional alternative; `break` exits.
    loops_.push_back({kNpos, {}});
    const size_t body_entry = NewBlock();
    Edge(header, body_entry);
    cur_ = body_entry;
    ParseSeq(body_open + 1, body_close);
    Append(CfgStmt::Kind::kScopeExit, body_open, body_close);
    const LoopCtx ctx = loops_.back();
    loops_.pop_back();

    const size_t after = NewBlock();
    Edge(cur_, after);
    Edge(header, after);
    for (size_t b : ctx.break_sources) {
      Edge(b, after);
    }
    cur_ = after;
    return body_close + 1;
  }

  const Tokens& toks_;
  Cfg cfg_;
  size_t cur_ = 0;
  std::vector<LoopCtx> loops_;
};

FactSet Intersect(const FactSet& a, const FactSet& b) {
  FactSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

}  // namespace

Cfg BuildCfg(const Tokens& toks, size_t body_open, size_t body_close) {
  return Builder(toks).Run(body_open, body_close);
}

StmtFacts RunMustDataflow(const Cfg& cfg, const FactSet& entry_facts,
                          const std::function<void(const CfgStmt&, FactSet*)>& transfer) {
  std::vector<std::optional<FactSet>> in(cfg.blocks.size());
  in[cfg.entry] = entry_facts;
  std::deque<size_t> worklist = {cfg.entry};
  std::vector<bool> queued(cfg.blocks.size(), false);
  queued[cfg.entry] = true;
  // Each iteration transfers one block and narrows its successors; facts
  // only shrink, so the fixpoint is reached in O(blocks * facts) rounds.
  while (!worklist.empty()) {
    const size_t b = worklist.front();
    worklist.pop_front();
    queued[b] = false;
    FactSet facts = *in[b];
    for (const CfgStmt& s : cfg.blocks[b].stmts) {
      transfer(s, &facts);
    }
    for (size_t succ : cfg.blocks[b].succs) {
      std::optional<FactSet> merged =
          in[succ].has_value() ? Intersect(*in[succ], facts) : facts;
      if (in[succ] != merged) {
        in[succ] = std::move(merged);
        if (!queued[succ]) {
          worklist.push_back(succ);
          queued[succ] = true;
        }
      }
    }
  }
  // Final per-statement facts from the converged block-entry sets.
  StmtFacts out(cfg.blocks.size());
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    out[b].resize(cfg.blocks[b].stmts.size());
    if (!in[b].has_value()) {
      continue;  // Unreachable: every entry stays TOP (nullopt).
    }
    FactSet facts = *in[b];
    for (size_t s = 0; s < cfg.blocks[b].stmts.size(); ++s) {
      out[b][s] = facts;
      transfer(cfg.blocks[b].stmts[s], &facts);
    }
  }
  return out;
}

}  // namespace comma::lint

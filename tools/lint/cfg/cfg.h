// Pass 2 of the two-pass analyzer: a lightweight per-function control-flow
// graph built straight from the token stream.
//
// The flow-sensitive rules (guarded-field-flow today; the buffer-lifetime
// slab-pool guard rail as ROADMAP item 1 lands) need more than lexical
// scanning: `if (x) mu_.lock(); field_ = 1;` holds the lock on one path
// only, which no scope walk can see. The CFG stays deliberately small —
// statement-granularity basic blocks with edges for if/else, the three
// loops, switch, return/throw, break/continue — because the analyses over
// it are must-analyses with intersection joins: approximating an unknown
// construct as a branch both ways is safe (facts only shrink).
//
// Scope exits are materialized as synthetic kScopeExit statements spanning
// the compound's braces, so RAII facts (lock_guard lifetimes) can be killed
// exactly where the destructor runs without the CFG knowing about locks.
#ifndef COMMA_TOOLS_LINT_CFG_CFG_H_
#define COMMA_TOOLS_LINT_CFG_CFG_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/token.h"

namespace comma::lint {

struct CfgStmt {
  enum class Kind {
    kNormal,     // [begin, end] is a statement's (or condition's) token range.
    kScopeExit,  // begin/end are the '{' / '}' token indices of a compound
                 // whose locals are destroyed here.
  };
  Kind kind = Kind::kNormal;
  size_t begin = 0;
  size_t end = 0;  // Inclusive.
};

struct CfgBlock {
  std::vector<CfgStmt> stmts;
  std::vector<size_t> succs;
};

struct Cfg {
  std::vector<CfgBlock> blocks;
  size_t entry = 0;
};

// Builds the CFG of a function body: `body_open`/`body_close` are the token
// indices of the outermost '{' / '}'. Never fails — unknown constructs
// degrade to straight-line statements.
Cfg BuildCfg(const Tokens& toks, size_t body_open, size_t body_close);

// Forward must-dataflow over string facts (e.g. names of held mutexes):
// facts merge by intersection at joins, so a fact survives only when it
// holds on every path. `transfer` mutates the fact set across one
// statement. Returns the fact set at entry to each statement, indexed
// [block][stmt]. Unreachable blocks report TOP (nullopt), which callers
// should treat as "everything holds" — no diagnostics in dead code.
using FactSet = std::set<std::string>;
using StmtFacts = std::vector<std::vector<std::optional<FactSet>>>;
StmtFacts RunMustDataflow(const Cfg& cfg, const FactSet& entry_facts,
                          const std::function<void(const CfgStmt&, FactSet*)>& transfer);

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_CFG_CFG_H_

#include "tools/lint/sarif.h"

#include <cstdio>
#include <sstream>

#include "tools/lint/rules.h"

namespace comma::lint {
namespace {

// Minimal JSON string escaping; diagnostics are ASCII by construction.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderSarif(const LintResult& result) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
         "sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"comma-lint\",\n"
      << "          \"informationUri\": \"docs/static-analysis.md\",\n"
      << "          \"rules\": [\n";
  const std::vector<RulePtr> rules = BuiltinRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "            {\n"
        << "              \"id\": \"comma-" << rules[i]->name() << "\",\n"
        << "              \"shortDescription\": { \"text\": \""
        << JsonEscape(rules[i]->description()) << "\" }\n"
        << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Diagnostic& d = result.findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"comma-" << d.rule << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": { \"text\": \"" << JsonEscape(d.message) << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \"" << JsonEscape(d.file)
        << "\" },\n"
        << "                \"region\": { \"startLine\": " << d.line
        << ", \"startColumn\": " << d.col << " }\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < result.findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace comma::lint

// A small, self-contained C++ tokenizer.
//
// Produces the token stream the rule implementations pattern-match over.
// Comments and preprocessor directives are consumed but not emitted:
// suppression comments are matched on raw source lines (source.h) and the
// include-layering rule reads #include lines directly, so the token stream
// stays purely "code". Line continuations inside directives are honoured.
#ifndef COMMA_TOOLS_LINT_LEXER_H_
#define COMMA_TOOLS_LINT_LEXER_H_

#include <string_view>

#include "tools/lint/token.h"

namespace comma::lint {

// Tokenizes `content`. The lexer never fails: malformed input (an unclosed
// string, say) yields a best-effort stream that simply ends early, which for
// a linter is the right trade — rules then see nothing to match.
Tokens Lex(std::string_view content);

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_LEXER_H_

// The EEM-bridged metric namespace, shared by the metric-name-style rule,
// the semantic index (pass 1), and the metric-consistency rule (pass 2).
//
// Every metric the obs::MetricRegistry interns is also a watchable EEM
// variable (obs::EemMetricsBridge), so the family prefixes below are the
// bridge's allowlist: a name outside them is unwatchable from Kati, and a
// docs/watch reference outside them is not a metric reference at all.
#ifndef COMMA_TOOLS_LINT_METRIC_NAMESPACE_H_
#define COMMA_TOOLS_LINT_METRIC_NAMESPACE_H_

#include <array>
#include <string>
#include <string_view>

namespace comma::lint {

inline constexpr std::array<std::string_view, 9> kMetricFamilies = {
    "sp", "ttsf", "tcp", "eem", "trace", "mip", "sim", "http", "dns"};

// Matches ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns)\.[a-z0-9_.]+$ — the
// regex the metric-name-style rule enforces and the bridge advertises.
inline bool IsMetricName(std::string_view name) {
  const size_t dot = name.find('.');
  if (dot == std::string_view::npos || dot + 1 >= name.size()) {
    return false;
  }
  bool family_ok = false;
  for (std::string_view f : kMetricFamilies) {
    if (name.substr(0, dot) == f) {
      family_ok = true;
      break;
    }
  }
  if (!family_ok) {
    return false;
  }
  for (size_t i = dot + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.')) {
      return false;
    }
  }
  return true;
}

// The histogram sub-fields the registry and the EEM bridge answer for a
// histogram metric "<name>.<field>".
inline constexpr std::array<std::string_view, 8> kHistogramFields = {
    "count", "mean", "min", "max", "p50", "p90", "p95", "p99"};

inline bool IsHistogramFieldSuffix(std::string_view field) {
  for (std::string_view f : kHistogramFields) {
    if (field == f) {
      return true;
    }
  }
  return false;
}

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_METRIC_NAMESPACE_H_

// seq-raw-compare — the rule this linter exists for (ISSUE 5, thesis Ch. 8).
//
// TCP sequence numbers live in a modular 2^32 space; `a < b` on raw uint32_t
// values gives the wrong answer once a stream crosses the wrap, and the bug
// is invisible until a multi-gigabyte transfer hits it. Every ordering or
// distance computation on sequence values must go through the helpers in
// src/tcp/seq.h (SeqLt/SeqLeq/SeqGt/SeqGeq/SeqDiff), which the TTSF, snoop,
// and the Reno stack already use.
//
// Detection is name- and declaration-driven: an identifier is treated as a
// sequence value when its snake_case segments contain a sequence marker
// (seq, ack, una, isn, nxt, end, frontier) and no counting segment (count,
// len, bytes, ...), unless the same file declares it with a non-uint32
// integer type (the simulator's uint64_t event `seq` tie-breaker is the
// canonical exemption). Both operands must look like sequence values, which
// keeps `seq - 1` and `cache_.size() > seq` out of scope.
//
// Flagged forms:
//   * `a < b`, `a <= b`, `a > b`, `a >= b`, `a - b` — fixable, rewritten to
//     the matching seq.h helper by --fix;
//   * `COMMA_CHECK_LT(a, b)` and the other ordered CHECK/DCHECK/gtest
//     comparison macros — same defect behind a macro; not auto-fixed
//     because the rewrite changes the failure message shape.
#include <array>
#include <set>
#include <string>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

constexpr std::array<std::string_view, 7> kMarkerSegments = {
    "seq", "ack", "una", "isn", "nxt", "end", "frontier",
};
// Segments that mark a *count* of something, not a position in sequence
// space — "ack_count" is a tally even though "ack" appears in it.
constexpr std::array<std::string_view, 10> kBlockerSegments = {
    "count", "cnt", "len", "bytes", "num", "seen", "id", "idx", "index", "flags",
};

// Integer types that positively mark a name as NOT a TCP sequence number
// when they appear as the declared type in the same file.
constexpr std::array<std::string_view, 12> kNonSeqTypes = {
    "uint64_t", "int64_t", "uint16_t", "int16_t", "uint8_t", "int8_t",
    "int",      "long",    "short",    "size_t",  "TimePoint", "TimerId",
};

bool SegmentsLookLikeSeq(const std::string& raw_name) {
  std::string name = raw_name;
  while (!name.empty() && name.back() == '_') {
    name.pop_back();
  }
  bool has_marker = false;
  size_t pos = 0;
  while (pos <= name.size()) {
    size_t us = name.find('_', pos);
    if (us == std::string::npos) {
      us = name.size();
    }
    const std::string_view seg(name.data() + pos, us - pos);
    for (std::string_view b : kBlockerSegments) {
      if (seg == b) {
        return false;
      }
    }
    for (std::string_view m : kMarkerSegments) {
      if (seg == m) {
        has_marker = true;
      }
    }
    if (us == name.size()) {
      break;
    }
    pos = us + 1;
  }
  return has_marker;
}

struct FileTypeInfo {
  std::set<std::string> declared_uint32;
  std::set<std::string> declared_other_int;
};

FileTypeInfo ScanDeclarations(const LintFile& f) {
  FileTypeInfo info;
  for (size_t i = 1; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (t.kind != TokenKind::kIdentifier || !SegmentsLookLikeSeq(t.text)) {
      continue;
    }
    const Token& prev = f.tokens[i - 1];
    if (prev.kind != TokenKind::kIdentifier) {
      continue;
    }
    if (prev.text == "uint32_t") {
      info.declared_uint32.insert(t.text);
      continue;
    }
    for (std::string_view nt : kNonSeqTypes) {
      if (prev.text == nt) {
        info.declared_other_int.insert(t.text);
        break;
      }
    }
  }
  return info;
}

bool IsSeqValue(const std::string& name, const FileTypeInfo& info) {
  if (!SegmentsLookLikeSeq(name)) {
    return false;
  }
  if (info.declared_uint32.count(name) != 0) {
    return true;
  }
  return info.declared_other_int.count(name) == 0;
}

struct OpInfo {
  std::string_view op;
  std::string_view helper;
};
constexpr std::array<OpInfo, 5> kOps = {{
    {"<", "SeqLt"},
    {"<=", "SeqLeq"},
    {">", "SeqGt"},
    {">=", "SeqGeq"},
    {"-", "SeqDiff"},
}};

const OpInfo* FindOp(const Token& t) {
  if (t.kind != TokenKind::kPunct) {
    return nullptr;
  }
  for (const OpInfo& o : kOps) {
    if (t.text == o.op) {
      return &o;
    }
  }
  return nullptr;
}

// Ordered comparison macros that hide the same raw operator.
struct MacroInfo {
  std::string_view macro;
  std::string_view helper;
};
constexpr std::array<MacroInfo, 12> kOrderedMacros = {{
    {"COMMA_CHECK_LT", "SeqLt"},
    {"COMMA_CHECK_LE", "SeqLeq"},
    {"COMMA_CHECK_GT", "SeqGt"},
    {"COMMA_CHECK_GE", "SeqGeq"},
    {"COMMA_DCHECK_LT", "SeqLt"},
    {"COMMA_DCHECK_LE", "SeqLeq"},
    {"COMMA_DCHECK_GT", "SeqGt"},
    {"COMMA_DCHECK_GE", "SeqGeq"},
    {"EXPECT_LT", "SeqLt"},
    {"EXPECT_LE", "SeqLeq"},
    {"EXPECT_GT", "SeqGt"},
    {"EXPECT_GE", "SeqGeq"},
}};

const MacroInfo* FindOrderedMacro(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) {
    return nullptr;
  }
  for (const MacroInfo& m : kOrderedMacros) {
    if (t.text == m.macro) {
      return &m;
    }
  }
  return nullptr;
}

class SeqRawCompareRule : public Rule {
 public:
  std::string_view name() const override { return "seq-raw-compare"; }
  std::string_view description() const override {
    return "sequence-space values must be ordered/subtracted via src/tcp/seq.h helpers";
  }
  bool fixable() const override { return true; }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      if (!PathUnder(f.path, "src/") && !PathUnder(f.path, "tests/")) {
        continue;
      }
      if (f.path == "src/tcp/seq.h") {
        continue;  // The helpers themselves.
      }
      const FileTypeInfo types = ScanDeclarations(f);
      CheckOperators(f, types, out);
      CheckMacros(f, types, out);
    }
  }

 private:
  static void CheckOperators(const LintFile& f, const FileTypeInfo& types, Diagnostics* out) {
    const Tokens& toks = f.tokens;
    for (size_t i = 1; i + 1 < toks.size(); ++i) {
      const OpInfo* op = FindOp(toks[i]);
      if (op == nullptr) {
        continue;
      }
      auto lhs = ChainEndingAt(toks, i - 1);
      auto rhs = ChainStartingAt(toks, i + 1);
      if (!lhs || !rhs) {
        continue;
      }
      // The token before the left chain must not extend an expression the
      // chain walk could not see ("operator<", "a.b" handled inside the
      // chain already).
      if (!IsSeqValue(lhs->name, types) || !IsSeqValue(rhs->name, types)) {
        continue;
      }
      Diagnostic d;
      d.file = f.path;
      d.line = toks[i].line;
      d.col = toks[i].col;
      d.rule = "seq-raw-compare";
      d.message = "raw '" + std::string(op->op) + "' on TCP sequence values '" + lhs->name +
                  "' and '" + rhs->name + "' breaks at the 2^32 wrap; use comma::tcp::" +
                  std::string(op->helper);
      FixIt fix;
      fix.begin = toks[lhs->begin].begin;
      fix.end = toks[rhs->end].end;
      const std::string lhs_text =
          f.content.substr(toks[lhs->begin].begin, toks[lhs->end].end - toks[lhs->begin].begin);
      const std::string rhs_text =
          f.content.substr(toks[rhs->begin].begin, toks[rhs->end].end - toks[rhs->begin].begin);
      fix.replacement =
          "comma::tcp::" + std::string(op->helper) + "(" + lhs_text + ", " + rhs_text + ")";
      fix.required_include = "src/tcp/seq.h";
      d.fix = fix;
      if (!f.IsSuppressed(d.rule, d.line)) {
        out->push_back(std::move(d));
      }
    }
  }

  static void CheckMacros(const LintFile& f, const FileTypeInfo& types, Diagnostics* out) {
    const Tokens& toks = f.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      const MacroInfo* m = FindOrderedMacro(toks[i]);
      if (m == nullptr || !toks[i + 1].IsPunct("(")) {
        continue;
      }
      auto first = ChainStartingAt(toks, i + 2);
      if (!first || first->end + 1 >= toks.size() || !toks[first->end + 1].IsPunct(",")) {
        continue;
      }
      auto second = ChainStartingAt(toks, first->end + 2);
      if (!second || second->end + 1 >= toks.size() || !toks[second->end + 1].IsPunct(")")) {
        continue;
      }
      if (!IsSeqValue(first->name, types) || !IsSeqValue(second->name, types)) {
        continue;
      }
      Diagnostic d;
      d.file = f.path;
      d.line = toks[i].line;
      d.col = toks[i].col;
      d.rule = "seq-raw-compare";
      d.message = toks[i].text + " on TCP sequence values '" + first->name + "' and '" +
                  second->name + "' breaks at the 2^32 wrap; assert comma::tcp::" +
                  std::string(m->helper) + "(...) instead";
      if (!f.IsSuppressed(d.rule, d.line)) {
        out->push_back(std::move(d));
      }
    }
  }
};

}  // namespace

RulePtr MakeSeqRawCompareRule() { return std::make_unique<SeqRawCompareRule>(); }

}  // namespace comma::lint

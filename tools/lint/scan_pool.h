// Parallel file loading for the lint runner (--jobs N).
//
// Loading + lexing the tree dominates a comma-lint run; the rules
// themselves are cheap token scans. The pool fans the load out over N
// worker threads pulling indices from a shared cursor. Each worker writes
// only its own slot of the output vector, so the one shared thing is the
// cursor (and the first-error record) behind scan_mu_.
//
// This is also the lint tool eating its own dog food: scan_mu_ is rank 10
// in the DESIGN.md lock hierarchy, the shared state carries
// COMMA_GUARDED_BY annotations, and the mutex-annotation / lock-order rules
// scan this file like any other (tools/ is in the default scan paths).
#ifndef COMMA_TOOLS_LINT_SCAN_POOL_H_
#define COMMA_TOOLS_LINT_SCAN_POOL_H_

#include <cstddef>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/util/thread_annotations.h"
#include "tools/lint/source.h"

namespace comma::lint {

class ScanPool {
 public:
  // Loads root/rels[i] into (*out)[i] for every i, using up to `jobs`
  // threads (clamped to [1, number of files]). Returns false with *error
  // naming the first unreadable file. `out` is resized to rels.size().
  static bool LoadAll(const std::filesystem::path& root, const std::vector<std::string>& rels,
                      int jobs, std::vector<LintFile>* out, std::string* error);

 private:
  ScanPool(const std::filesystem::path& root, const std::vector<std::string>& rels,
           std::vector<LintFile>* out)
      : root_(root), rels_(rels), out_(out) {}

  // Worker loop: claim an index, load that file, repeat. Thread-safe.
  void Worker();
  // Claims the next unprocessed index, or nullopt when the list (or the
  // run, after a failure) is exhausted.
  std::optional<size_t> NextIndex() COMMA_EXCLUDES(scan_mu_);
  void RecordFailure(const std::string& rel) COMMA_EXCLUDES(scan_mu_);
  std::string TakeFailure() COMMA_EXCLUDES(scan_mu_);

  const std::filesystem::path& root_;
  const std::vector<std::string>& rels_;
  std::vector<LintFile>* out_;  // Workers write disjoint slots, no lock.

  // Rank 10 in the DESIGN.md lock hierarchy. A leaf in practice: the pool
  // acquires nothing while holding it, and the lint binary never holds a
  // higher-ranked lock (those live in the simulator process).
  std::mutex scan_mu_;
  size_t next_ COMMA_GUARDED_BY(scan_mu_) = 0;
  std::string failed_rel_ COMMA_GUARDED_BY(scan_mu_);  // First unreadable file.
};

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_SCAN_POOL_H_

// Diagnostics and fix-its.
//
// A finding renders clang-style so editors and CI annotate it natively:
//   src/tcp/foo.cc:41:17: error: raw '<' compares TCP sequence numbers;
//       use comma::tcp::SeqLt [comma-seq-raw-compare]
#ifndef COMMA_TOOLS_LINT_DIAGNOSTIC_H_
#define COMMA_TOOLS_LINT_DIAGNOSTIC_H_

#include <optional>
#include <string>
#include <vector>

namespace comma::lint {

// A mechanical rewrite: replace content bytes [begin, end) with
// `replacement`, and make sure `required_include` (a "src/..." header) is
// present in the file. Only rules documented as fixable attach one.
struct FixIt {
  size_t begin = 0;
  size_t end = 0;
  std::string replacement;
  std::string required_include;
};

struct Diagnostic {
  std::string file;  // relative path, '/' separators
  int line = 0;
  int col = 0;
  std::string rule;     // e.g. "seq-raw-compare" (rendered as [comma-...])
  std::string message;  // one sentence, no trailing period needed
  std::optional<FixIt> fix;

  std::string Render() const {
    return file + ":" + std::to_string(line) + ":" + std::to_string(col) + ": error: " + message +
           " [comma-" + rule + "]";
  }
};

inline bool DiagnosticOrder(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.col != b.col) return a.col < b.col;
  return a.rule < b.rule;
}

using Diagnostics = std::vector<Diagnostic>;

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_DIAGNOSTIC_H_

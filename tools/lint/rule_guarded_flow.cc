// guarded-field-flow — flow-sensitive COMMA_GUARDED_BY checking.
//
// The mutex-annotation rule (PR 6) enforces that shared fields carry
// COMMA_GUARDED_BY; on Clang the annotations also feed
// -Wthread-safety-analysis, but GCC compiles them away (src/util/thread.h),
// so half the CI matrix never checks that the annotated lock is actually
// held. This rule closes that gap without a compiler: for every method of a
// class with guarded fields, it builds the function's CFG
// (tools/lint/cfg/cfg.h) and runs a must-dataflow of held locks — RAII
// guards live until their scope's kScopeExit, explicit lock()/unlock()
// toggle, COMMA_REQUIRES seeds the entry state — then flags any guarded
// field access where the annotated lock is not held on *every* path.
// Lexical checking cannot see `if (flag) mu_.lock(); field_ = 1;`; the
// intersection join does.
//
// Deliberate scope cuts, calibrated against the real guarded classes
// (HistogramMetric, MetricRegistry, CrossRegionChannel, ScanPool):
// constructors/destructors are exempt (no concurrent access before the
// object escapes), COMMA_NO_THREAD_SAFETY_ANALYSIS opts a function out
// exactly as it does for Clang, and only `field_` / `this->field_`
// accesses are checked — `other.field_` is the copy-from-peer idiom whose
// lock is the peer's, which a name-based analysis cannot resolve. Scope is
// src/ and tools/ (tests poke internals single-threaded on purpose).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/cfg/cfg.h"
#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

bool IsGuardType(const Token& t) {
  return t.IsIdent("lock_guard") || t.IsIdent("scoped_lock") || t.IsIdent("unique_lock") ||
         t.IsIdent("shared_lock");
}

size_t SkipTemplateArgs(const Tokens& toks, size_t open) {
  if (open >= toks.size() || !toks[open].IsPunct("<")) {
    return open;
  }
  int depth = 0;
  for (size_t j = open; j < toks.size() && j < open + 128; ++j) {
    if (toks[j].IsPunct("<")) {
      ++depth;
    } else if (toks[j].IsPunct(">")) {
      if (--depth == 0) {
        return j + 1;
      }
    } else if (toks[j].IsPunct(">>")) {
      depth -= 2;
      if (depth <= 0) {
        return j + 1;
      }
    }
  }
  return open;
}

// Last identifier of each top-level comma-separated argument — the lock's
// base name, with `this->` / `registry.` qualifiers stripped.
std::vector<std::string> ArgLockNames(const Tokens& toks, size_t open, size_t close) {
  std::vector<std::string> names;
  const Token* last_ident = nullptr;
  int depth = 0;
  for (size_t j = open + 1; j < close; ++j) {
    const Token& t = toks[j];
    if (t.IsPunct("(")) {
      ++depth;
    } else if (t.IsPunct(")")) {
      --depth;
    } else if (t.IsPunct(",") && depth == 0) {
      if (last_ident != nullptr) {
        names.push_back(last_ident->text);
      }
      last_ident = nullptr;
    } else if (t.kind == TokenKind::kIdentifier) {
      last_ident = &t;
    }
  }
  if (last_ident != nullptr) {
    names.push_back(last_ident->text);
  }
  return names;
}

// A lock-state event at a token position: a RAII guard declaration, or an
// explicit .lock()/.unlock() call.
struct LockEvent {
  size_t at = 0;
  bool acquire = true;
  bool is_raii = false;  // RAII guards die at their scope's kScopeExit.
  std::vector<std::string> locks;
};

// All lock-state events in the body, in token order, plus the guard-var ->
// locks map so `lk.unlock()` resolves to the guarded mutexes.
std::vector<LockEvent> CollectLockEvents(const Tokens& toks, size_t body_open, size_t body_close) {
  std::vector<LockEvent> events;
  std::map<std::string, std::vector<std::string>> guard_vars;
  for (size_t i = body_open + 1; i < body_close; ++i) {
    const Token& t = toks[i];
    if (IsGuardType(t)) {
      // std::lock_guard<...> var ( locks... ) ;
      const size_t v = SkipTemplateArgs(toks, i + 1);
      if (v >= body_close || toks[v].kind != TokenKind::kIdentifier || v + 1 >= body_close ||
          !toks[v + 1].IsPunct("(")) {
        continue;
      }
      const size_t close = MatchingParen(toks, v + 1);
      if (close == kNpos || close > body_close) {
        continue;
      }
      LockEvent ev;
      ev.at = i;
      ev.is_raii = true;
      ev.locks = ArgLockNames(toks, v + 1, close);
      guard_vars[toks[v].text] = ev.locks;
      events.push_back(std::move(ev));
      i = close;
      continue;
    }
    // X.lock() / X.unlock(): X is a guard variable or the mutex itself.
    if ((t.IsIdent("lock") || t.IsIdent("unlock")) && i >= 2 && i + 2 < body_close &&
        (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) && toks[i + 1].IsPunct("(") &&
        toks[i + 2].IsPunct(")") && toks[i - 2].kind == TokenKind::kIdentifier) {
      LockEvent ev;
      ev.at = i;
      ev.acquire = t.IsIdent("lock");
      const auto guard = guard_vars.find(toks[i - 2].text);
      ev.locks = guard != guard_vars.end() ? guard->second
                                           : std::vector<std::string>{toks[i - 2].text};
      events.push_back(std::move(ev));
    }
  }
  return events;
}

class GuardedFlowRule : public Rule {
 public:
  std::string_view name() const override { return "guarded-field-flow"; }
  std::string_view description() const override {
    return "COMMA_GUARDED_BY fields must only be accessed with the named lock held "
           "on every path (CFG must-analysis)";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (size_t fi = 0; fi < project.files.size() && fi < project.index.per_file.size(); ++fi) {
      const LintFile& f = project.files[fi];
      if (!PathUnder(f.path, "src/") && !PathUnder(f.path, "tools/")) {
        continue;
      }
      for (const IndexFunction& fn : project.index.per_file[fi].functions) {
        CheckFunction(project, f, fn, out);
      }
    }
  }

 private:
  void CheckFunction(const Project& project, const LintFile& f, const IndexFunction& fn,
                     Diagnostics* out) const {
    if (fn.class_name.empty() || fn.is_ctor_dtor || fn.no_thread_safety) {
      return;
    }
    const std::vector<IndexField> guarded = project.index.GuardedFields(fn.class_name);
    if (guarded.empty()) {
      return;
    }
    const IndexMethodDecl* decl = project.index.FindMethodDecl(fn.class_name, fn.name);
    if (decl != nullptr && decl->no_thread_safety) {
      return;
    }

    FactSet entry;
    for (const std::string& lock : fn.requires_locks) {
      entry.insert(lock);
    }
    if (decl != nullptr) {
      for (const std::string& lock : decl->requires_locks) {
        entry.insert(lock);
      }
    }

    const Tokens& toks = f.tokens;
    if (fn.body_open >= toks.size() || fn.body_close >= toks.size() ||
        fn.body_close <= fn.body_open) {
      return;
    }
    const std::vector<LockEvent> events = CollectLockEvents(toks, fn.body_open, fn.body_close);
    const Cfg cfg = BuildCfg(toks, fn.body_open, fn.body_close);

    const auto apply_range = [&events](size_t begin, size_t end, FactSet* facts) {
      for (const LockEvent& ev : events) {
        if (ev.at < begin || ev.at > end) {
          continue;
        }
        for (const std::string& lock : ev.locks) {
          if (ev.acquire) {
            facts->insert(lock);
          } else {
            facts->erase(lock);
          }
        }
      }
    };
    const auto transfer = [&events, &apply_range](const CfgStmt& s, FactSet* facts) {
      if (s.kind == CfgStmt::Kind::kNormal) {
        apply_range(s.begin, s.end, facts);
        return;
      }
      // kScopeExit: RAII guards declared inside this compound die here.
      for (const LockEvent& ev : events) {
        if (ev.is_raii && ev.at > s.begin && ev.at < s.end) {
          for (const std::string& lock : ev.locks) {
            facts->erase(lock);
          }
        }
      }
    };
    const StmtFacts facts = RunMustDataflow(cfg, entry, transfer);

    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
      for (size_t s = 0; s < cfg.blocks[b].stmts.size(); ++s) {
        const CfgStmt& stmt = cfg.blocks[b].stmts[s];
        if (stmt.kind != CfgStmt::Kind::kNormal || !facts[b][s].has_value()) {
          continue;  // Scope exits touch no fields; TOP is unreachable code.
        }
        CheckStatement(f, stmt, *facts[b][s], guarded, apply_range, out);
      }
    }
  }

  template <typename ApplyRange>
  void CheckStatement(const LintFile& f, const CfgStmt& stmt, const FactSet& entry_facts,
                      const std::vector<IndexField>& guarded, const ApplyRange& apply_range,
                      Diagnostics* out) const {
    const Tokens& toks = f.tokens;
    for (size_t j = stmt.begin; j <= stmt.end && j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      const IndexField* field = nullptr;
      for (const IndexField& g : guarded) {
        if (t.text == g.name) {
          field = &g;
          break;
        }
      }
      if (field == nullptr) {
        continue;
      }
      // Only bare `field_` / `this->field_` are this object's state.
      if (j > 0 && (toks[j - 1].IsPunct(".") || toks[j - 1].IsPunct("->"))) {
        if (j < 2 || !toks[j - 2].IsIdent("this")) {
          continue;
        }
      }
      if (j > 0 && toks[j - 1].IsPunct("::")) {
        continue;
      }
      // Facts at the access: the statement's entry state plus any guard
      // taken earlier in the same statement (the lambda-body idiom:
      // `pool.emplace_back([&]{ lock_guard lk(mu_); ++field_; });` is one
      // statement to the CFG).
      FactSet at_access = entry_facts;
      if (j > stmt.begin) {
        apply_range(stmt.begin, j - 1, &at_access);
      }
      if (at_access.count(field->guarded_by) != 0) {
        continue;
      }
      Diagnostic d;
      d.file = f.path;
      d.line = t.line;
      d.col = t.col;
      d.rule = "guarded-field-flow";
      d.message = "field '" + field->name + "' is guarded by '" + field->guarded_by +
                  "' (COMMA_GUARDED_BY) but the lock is not held on every path to this access";
      if (!f.IsSuppressed(d.rule, d.line)) {
        out->push_back(std::move(d));
      }
    }
  }
};

}  // namespace

RulePtr MakeGuardedFlowRule() { return std::make_unique<GuardedFlowRule>(); }

}  // namespace comma::lint

// comma-lint — the project's domain-specific static analyzer.
//
//   comma-lint --root . [src tests ...]
//
// Enforces the invariants generic tools cannot express (sequence-space
// arithmetic, wire-format casts, DCHECK purity, metric naming, the layer
// DAG, the filter pool contract). Rule catalog, suppression syntax, and
// how to add a rule: docs/static-analysis.md.
//
// Exit codes: 0 clean (or baselined), 1 findings, 2 usage/environment
// error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "tools/lint/runner.h"
#include "tools/lint/sarif.h"

namespace {

void PrintUsage() {
  std::fputs(
      "usage: comma-lint [options] [paths...]\n"
      "\n"
      "Scans *.h/*.cc under the given paths (default: src tests tools) and\n"
      "checks the comma project invariants. Paths are relative to --root.\n"
      "\n"
      "options:\n"
      "  --root <dir>       repo root diagnostics are relative to (default .)\n"
      "  --baseline <file>  grandfathered-findings file (default\n"
      "                     tools/lint/baseline.txt under root, if present)\n"
      "  --no-baseline      ignore any baseline file\n"
      "  --write-baseline   rewrite the baseline with the current findings\n"
      "  --prune-baseline   rewrite the baseline without its stale entries\n"
      "  --fix              apply mechanical fixes (rules marked fixable)\n"
      "  --rule <name>      run only this rule (repeatable)\n"
      "  --jobs <n>         load/lex files with n worker threads (default 1)\n"
      "  --index-cache <f>  cache the pass-1 semantic index by content hash\n"
      "                     (warm runs re-extract only changed files)\n"
      "  --format <fmt>     finding output: text (default) or sarif\n"
      "                     (SARIF 2.1.0 on stdout, for code scanning)\n"
      "  --counts-md <file> write the per-rule finding table as markdown\n"
      "                     (CI appends it to the job summary)\n"
      "  --list-rules       print the rule catalog and exit\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  comma::lint::LintOptions options;
  bool no_baseline = false;
  bool baseline_set = false;
  bool sarif = false;
  std::string counts_md_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "comma-lint: %s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root = next("--root");
    } else if (arg == "--baseline") {
      options.baseline_path = next("--baseline");
      baseline_set = true;
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--write-baseline") {
      options.write_baseline = true;
    } else if (arg == "--prune-baseline") {
      options.prune_baseline = true;
    } else if (arg == "--index-cache") {
      options.index_cache_path = next("--index-cache");
    } else if (arg == "--format") {
      const std::string fmt = next("--format");
      if (fmt != "text" && fmt != "sarif") {
        std::fprintf(stderr, "comma-lint: --format wants text or sarif\n");
        return 2;
      }
      sarif = fmt == "sarif";
    } else if (arg == "--fix") {
      options.apply_fixes = true;
    } else if (arg == "--rule") {
      options.rules.push_back(next("--rule"));
    } else if (arg == "--jobs") {
      options.jobs = std::atoi(next("--jobs"));
      if (options.jobs < 1) {
        std::fprintf(stderr, "comma-lint: --jobs wants a positive integer\n");
        return 2;
      }
    } else if (arg == "--counts-md") {
      counts_md_path = next("--counts-md");
    } else if (arg == "--list-rules") {
      for (const auto& rule : comma::lint::BuiltinRules()) {
        std::printf("comma-%-20s %s%s\n", std::string(rule->name()).c_str(),
                    std::string(rule->description()).c_str(),
                    rule->fixable() ? " [fixable]" : "");
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "comma-lint: unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (!baseline_set && !no_baseline) {
    options.baseline_path = "tools/lint/baseline.txt";
  }
  if (no_baseline) {
    options.baseline_path.clear();
    options.write_baseline = false;
  }

  comma::lint::LintResult result;
  std::string error;
  if (!comma::lint::RunLint(options, &result, &error)) {
    std::fprintf(stderr, "comma-lint: %s\n", error.c_str());
    return 2;
  }
  if (sarif) {
    std::fputs(comma::lint::RenderSarif(result).c_str(), stdout);
  } else {
    for (const auto& d : result.findings) {
      std::printf("%s\n", d.Render().c_str());
    }
  }
  std::string summary = "comma-lint: " + std::to_string(result.files_scanned) + " file(s), " +
                        std::to_string(result.findings.size()) + " finding(s), " +
                        std::to_string(result.baselined.size()) + " baselined, " +
                        std::to_string(result.stale_baseline) + " stale baseline entr" +
                        (result.stale_baseline == 1 ? "y" : "ies") +
                        (options.prune_baseline && result.stale_baseline > 0 ? " (pruned)" : "");
  if (!options.index_cache_path.empty()) {
    summary += ", index cache " + std::to_string(result.index_cache_hits) + " hit(s) / " +
               std::to_string(result.index_cache_misses) + " miss(es)";
  }
  if (result.fixes_applied > 0) {
    summary += ", " + std::to_string(result.fixes_applied) + " fix(es) applied";
  }
  std::fprintf(stderr, "%s\n", summary.c_str());
  if (!counts_md_path.empty()) {
    std::ofstream md(counts_md_path, std::ios::trunc);
    if (!md) {
      std::fprintf(stderr, "comma-lint: cannot write %s\n", counts_md_path.c_str());
      return 2;
    }
    md << "### comma-lint rule counts\n\n" << comma::lint::RenderCountsMarkdown(result);
  }
  return result.findings.empty() ? 0 : 1;
}

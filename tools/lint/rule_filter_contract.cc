// filter-contract — the filter pool's registration contract (thesis §5.2).
//
// FindFilterOnKey and the `add`/`report` commands look filters up by the
// name string the instance passes to its Filter base constructor, while the
// pool creates instances under the name passed to FilterRegistry::Register.
// If the two drift apart ("tcompress" registered, Filter("compress")
// constructed) every by-name lookup silently misses — the transformer
// filters stop finding their TTSF and transparency quietly degrades. And a
// filter that overrides neither In() nor Out() attaches to streams but can
// never see a packet, which is a dead registration.
//
// The rule cross-references, for every `Register("<name>", ...,
// make_unique<Class>())` under src/filters:
//   * Class exists under src/filters and derives (transitively) from Filter;
//   * Class or an ancestor declares an In() or Out() pass — its direction;
//   * the string literal Class hands its base constructor equals <name>.
//
// Control-plane filters that act purely through OnNewStream (the launcher)
// carry a NOLINT(comma-filter-contract) with the reason on the class line.
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

struct ClassInfo {
  const LintFile* file = nullptr;
  size_t name_tok = 0;     // Token index of the class-name identifier.
  std::string base;        // Last identifier of the first public base.
  size_t body_begin = 0;   // Token index of '{'.
  size_t body_end = 0;     // Token index of matching '}'.
  bool declares_direction = false;   // In() or Out() with a FilterContext param.
  std::optional<std::string> ctor_name_literal;
};

struct Registration {
  const LintFile* file = nullptr;
  size_t name_tok = 0;  // Token index of the name string literal.
  std::string name;
  std::string class_name;
};

// Finds `class X : ... { ... }` declarations and records the first base's
// last identifier ("proxy::Filter" -> "Filter").
void CollectClasses(const LintFile& f, std::map<std::string, ClassInfo>* classes) {
  const Tokens& toks = f.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdent("class") && !toks[i].IsIdent("struct")) {
      continue;
    }
    if (i > 0 && toks[i - 1].IsIdent("enum")) {
      continue;
    }
    if (toks[i + 1].kind != TokenKind::kIdentifier) {
      continue;
    }
    const std::string cls = toks[i + 1].text;
    // Scan to '{' (definition) or ';' (forward declaration).
    size_t j = i + 2;
    std::string base;
    bool in_base_clause = false;
    while (j < toks.size() && !toks[j].IsPunct("{") && !toks[j].IsPunct(";")) {
      if (toks[j].IsPunct(":")) {
        in_base_clause = true;
      } else if (in_base_clause && base.empty() && toks[j].kind == TokenKind::kIdentifier &&
                 toks[j].text != "public" && toks[j].text != "private" &&
                 toks[j].text != "protected" && toks[j].text != "virtual") {
        // Consume a possibly qualified name; keep the last identifier.
        base = toks[j].text;
        while (j + 2 < toks.size() && toks[j + 1].IsPunct("::") &&
               toks[j + 2].kind == TokenKind::kIdentifier) {
          j += 2;
          base = toks[j].text;
        }
      }
      ++j;
    }
    if (j >= toks.size() || !toks[j].IsPunct("{")) {
      continue;
    }
    ClassInfo info;
    info.file = &f;
    info.name_tok = i + 1;
    info.base = base;
    info.body_begin = j;
    info.body_end = MatchingBrace(toks, j);
    if (info.body_end == kNpos) {
      continue;
    }
    (*classes)[cls] = info;
  }
}

// True when tokens[i] starts `In(...)` / `Out(...)` whose parameter list
// names FilterContext — a declaration or definition, not a call site.
bool IsDirectionSignature(const Tokens& toks, size_t i) {
  if (!(toks[i].IsIdent("In") || toks[i].IsIdent("Out")) || i + 1 >= toks.size() ||
      !toks[i + 1].IsPunct("(")) {
    return false;
  }
  if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"))) {
    return false;
  }
  const size_t close = MatchingParen(toks, i + 1);
  if (close == kNpos) {
    return false;
  }
  for (size_t j = i + 2; j < close; ++j) {
    if (toks[j].IsIdent("FilterContext")) {
      return true;
    }
  }
  return false;
}

// Scans a constructor initializer list starting right after its ':' for
// `<base>("literal"` and returns the literal. `bases` holds acceptable
// element names (the class's direct base and the root "Filter").
std::optional<std::string> LiteralFromInitList(const Tokens& toks, size_t colon,
                                               const std::vector<std::string>& bases) {
  size_t j = colon + 1;
  while (j + 1 < toks.size()) {
    // Element: qualified-name '(' args ')' [',' element]* then '{'.
    std::string last_name;
    while (j < toks.size() && (toks[j].kind == TokenKind::kIdentifier || toks[j].IsPunct("::"))) {
      if (toks[j].kind == TokenKind::kIdentifier) {
        last_name = toks[j].text;
      }
      ++j;
    }
    if (j >= toks.size() || !toks[j].IsPunct("(")) {
      return std::nullopt;
    }
    const size_t close = MatchingParen(toks, j);
    if (close == kNpos) {
      return std::nullopt;
    }
    for (const std::string& b : bases) {
      if (last_name == b) {
        if (toks[j + 1].kind == TokenKind::kString) {
          return toks[j + 1].text;
        }
        return std::nullopt;  // Base initialized, but not with a literal.
      }
    }
    j = close + 1;
    if (j < toks.size() && toks[j].IsPunct(",")) {
      ++j;
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

// Looks for `Cls(...) : base("name"` — in-class (within the body range) or
// out-of-class (`Cls::Cls(...) : ...` anywhere in scope files).
std::optional<std::string> FindCtorNameLiteral(const std::string& cls, const ClassInfo& info,
                                               const std::vector<const LintFile*>& files) {
  std::vector<std::string> bases = {"Filter"};
  if (!info.base.empty()) {
    bases.push_back(info.base);
  }
  for (const LintFile* f : files) {
    const Tokens& toks = f->tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!toks[i].IsIdent(cls) || !toks[i + 1].IsPunct("(")) {
        continue;
      }
      const bool in_class = f == info.file && i > info.body_begin && i < info.body_end;
      const bool out_of_class =
          i >= 2 && toks[i - 1].IsPunct("::") && toks[i - 2].IsIdent(cls);
      if (!in_class && !out_of_class) {
        continue;
      }
      const size_t close = MatchingParen(toks, i + 1);
      if (close == kNpos || close + 1 >= toks.size() || !toks[close + 1].IsPunct(":")) {
        continue;
      }
      auto lit = LiteralFromInitList(toks, close + 1, bases);
      if (lit) {
        return lit;
      }
    }
  }
  return std::nullopt;
}

void CollectRegistrations(const LintFile& f, std::vector<Registration>* regs) {
  const Tokens& toks = f.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("Register") || !toks[i + 1].IsPunct("(") ||
        toks[i + 2].kind != TokenKind::kString) {
      continue;
    }
    const size_t close = MatchingParen(toks, i + 1);
    if (close == kNpos) {
      continue;
    }
    for (size_t j = i + 3; j + 3 < close; ++j) {
      if (toks[j].IsIdent("make_unique") && toks[j + 1].IsPunct("<") &&
          toks[j + 2].kind == TokenKind::kIdentifier && toks[j + 3].IsPunct(">")) {
        Registration r;
        r.file = &f;
        r.name_tok = i + 2;
        r.name = toks[i + 2].text;
        r.class_name = toks[j + 2].text;
        regs->push_back(std::move(r));
        break;
      }
    }
  }
}

class FilterContractRule : public Rule {
 public:
  std::string_view name() const override { return "filter-contract"; }
  std::string_view description() const override {
    return "registered filters must derive from Filter, declare an In/Out pass, and "
           "construct the name they are registered under";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    std::vector<const LintFile*> scope;
    std::map<std::string, ClassInfo> classes;
    std::vector<Registration> regs;
    for (const LintFile& f : project.files) {
      if (!PathUnder(f.path, "src/filters/")) {
        continue;
      }
      scope.push_back(&f);
      CollectClasses(f, &classes);
      CollectRegistrations(f, &regs);
    }
    // Direction and name-literal analysis per class.
    for (auto& [cls, info] : classes) {
      for (size_t i = info.body_begin; i < info.body_end; ++i) {
        if (IsDirectionSignature(info.file->tokens, i)) {
          info.declares_direction = true;
          break;
        }
      }
      info.ctor_name_literal = FindCtorNameLiteral(cls, info, scope);
    }

    for (const Registration& r : regs) {
      const Token& name_tok = r.file->tokens[r.name_tok];
      auto it = classes.find(r.class_name);
      if (it == classes.end()) {
        Emit(*r.file, name_tok,
             "filter '" + r.name + "' registers class '" + r.class_name +
                 "' but no such class is defined under src/filters",
             out);
        continue;
      }
      const ClassInfo& info = it->second;
      if (!DerivesFromFilter(r.class_name, classes)) {
        Emit(*r.file, name_tok,
             "filter '" + r.name + "' registers class '" + r.class_name +
                 "' which does not derive from proxy::Filter",
             out);
        continue;
      }
      if (!DeclaresDirection(r.class_name, classes)) {
        const Token& cls_tok = info.file->tokens[info.name_tok];
        Emit(*info.file, cls_tok,
             "filter class '" + r.class_name +
                 "' overrides neither In() nor Out(); a pool filter must declare its "
                 "pass direction",
             out);
      }
      if (!info.ctor_name_literal) {
        const Token& cls_tok = info.file->tokens[info.name_tok];
        Emit(*info.file, cls_tok,
             "cannot find the name literal '" + r.class_name +
                 "' passes to its Filter base; the pool cannot be audited without it",
             out);
      } else if (*info.ctor_name_literal != r.name) {
        Emit(*r.file, name_tok,
             "filter registered as '" + r.name + "' but class '" + r.class_name +
                 "' constructs Filter(\"" + *info.ctor_name_literal +
                 "\"); by-name lookup (FindFilterOnKey, report) would miss it",
             out);
      }
    }
  }

 private:
  static bool DerivesFromFilter(const std::string& cls,
                                const std::map<std::string, ClassInfo>& classes) {
    std::string cur = cls;
    for (int depth = 0; depth < 16; ++depth) {
      auto it = classes.find(cur);
      if (it == classes.end()) {
        return false;
      }
      if (it->second.base == "Filter") {
        return true;
      }
      cur = it->second.base;
    }
    return false;
  }

  static bool DeclaresDirection(const std::string& cls,
                                const std::map<std::string, ClassInfo>& classes) {
    std::string cur = cls;
    for (int depth = 0; depth < 16; ++depth) {
      auto it = classes.find(cur);
      if (it == classes.end()) {
        return false;
      }
      if (it->second.declares_direction) {
        return true;
      }
      cur = it->second.base;
    }
    return false;
  }

  static void Emit(const LintFile& f, const Token& at, std::string message, Diagnostics* out) {
    Diagnostic d;
    d.file = f.path;
    d.line = at.line;
    d.col = at.col;
    d.rule = "filter-contract";
    d.message = std::move(message);
    if (!f.IsSuppressed(d.rule, d.line)) {
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

RulePtr MakeFilterContractRule() { return std::make_unique<FilterContractRule>(); }

}  // namespace comma::lint

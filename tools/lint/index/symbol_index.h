// Pass 1 of the two-pass analyzer: the project-wide semantic index.
//
// The token rules of PR 4/6 see one file at a time; the contracts added
// since (checkpoint blobs that must round-trip, COMMA_GUARDED_BY fields
// whose guards are declared in a header but taken in a .cc, metric names
// that must agree across code, docs, and the EEM bridge) span files. The
// index is the cross-file half: a cheap, deterministic extraction of the
// declarations those rules reason about — class bodies with their mutex and
// guarded members, method declarations with their thread-safety
// annotations, function definitions with their body token ranges,
// and metric-name string literals with their registration family.
//
// The per-file extraction (FileIndex) is a pure function of the file
// content, so it serializes and caches by content hash
// (tools/lint/index/index_cache.h): an incremental CI run re-extracts only
// the files that changed. Token indices stored in the index refer to the
// owning LintFile's token stream, which is itself deterministic in the
// content, so cached entries stay valid as long as the hash matches.
#ifndef COMMA_TOOLS_LINT_INDEX_SYMBOL_INDEX_H_
#define COMMA_TOOLS_LINT_INDEX_SYMBOL_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tools/lint/source.h"

namespace comma::lint {

// A data member recorded for the concurrency rules: either a mutex, or a
// field carrying a COMMA_GUARDED_BY annotation naming its lock.
struct IndexField {
  std::string name;
  std::string guarded_by;  // Lock named by COMMA_GUARDED_BY; empty for mutexes.
  bool is_mutex = false;
  int line = 0;
  int col = 0;
};

// A method declared in a class body, with the declaration-side thread-safety
// annotations. Definitions in a .cc usually do not repeat the annotation, so
// flow rules join the definition with this record by (class, method) name.
struct IndexMethodDecl {
  std::string name;
  std::vector<std::string> requires_locks;  // COMMA_REQUIRES(...) arguments.
  bool no_thread_safety = false;            // COMMA_NO_THREAD_SAFETY_ANALYSIS.
};

struct IndexClass {
  std::string name;
  int line = 0;
  std::vector<IndexField> fields;
  std::vector<IndexMethodDecl> methods;
};

// A function definition with a body. `body_open`/`body_close` are token
// indices of the '{'/'}' in the owning file's token stream.
struct IndexFunction {
  std::string class_name;  // Empty for free functions.
  std::string name;
  int line = 0;
  int col = 0;
  size_t body_open = 0;
  size_t body_close = 0;
  bool is_ctor_dtor = false;
  std::vector<std::string> requires_locks;  // Definition-site annotations.
  bool no_thread_safety = false;
};

// A metric-name string literal at a registration call site.
enum class MetricFamily { kCounter, kGauge, kHistogram };
struct MetricRef {
  std::string name;
  MetricFamily family = MetricFamily::kCounter;
  bool is_source = false;  // Register{Counter,Gauge}Source (replaces on re-register).
  int line = 0;
  int col = 0;
};

// Everything extracted from one file. Serializes for the content-hash cache.
struct FileIndex {
  std::vector<IndexClass> classes;
  std::vector<IndexFunction> functions;
  std::vector<MetricRef> metric_refs;
  // String literals like "sp.filter." — prefixes of dynamically-built metric
  // names; docs references under such a prefix are resolvable.
  std::vector<std::string> metric_prefixes;
  // Metric names referenced by `watch <name> ...` command literals in code
  // (Kati examples, closed-loop tests); they must exist in the registry.
  struct WatchRef {
    std::string name;
    int line = 0;
    int col = 0;
  };
  std::vector<WatchRef> watch_refs;

  std::string Serialize() const;
  static bool Deserialize(const std::string& blob, FileIndex* out);
};

// Extracts the FileIndex of one file. Deterministic in f.content.
FileIndex IndexFile(const LintFile& f);

// The merged project view rules query in pass 2. `per_file[i]` belongs to
// `Project::files[i]`; the class map merges declarations across files (a
// class declared in a header and implemented in a .cc appears once).
struct ProjectIndex {
  std::vector<FileIndex> per_file;
  // Class name -> merged declaration. Names are unqualified; the project
  // keeps class names unique per module by convention.
  std::map<std::string, IndexClass> classes;

  // Declaration-side annotations for (class, method), or nullptr.
  const IndexMethodDecl* FindMethodDecl(const std::string& class_name,
                                        const std::string& method) const;
  // Guarded fields of `class_name` (fields with a non-empty guarded_by).
  std::vector<IndexField> GuardedFields(const std::string& class_name) const;

  static ProjectIndex Build(const std::vector<FileIndex>& per_file);
};

// FNV-1a 64-bit over the content, salted with the index format version so a
// format change invalidates every cached entry.
uint64_t IndexContentHash(const std::string& content);

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_INDEX_SYMBOL_INDEX_H_

// Content-hash cache for the pass-1 semantic index (--index-cache <file>).
//
// The per-file index (tools/lint/index/symbol_index.h) is a pure function
// of the file content, so entries key on IndexContentHash(content) — no
// paths, no mtimes. A warm run re-extracts only changed files; renames are
// free hits. The cache file is a plain text artifact CI can stash between
// runs; a corrupt or version-skewed file degrades to a cold run, never to
// wrong results (the hash is salted with the index format version).
//
// Format:
//   comma-lint-index-cache v1
//   E <hash-hex> <byte-length-of-blob>
//   <blob bytes, exactly as FileIndex::Serialize produced them>
//   ... repeated ...
#ifndef COMMA_TOOLS_LINT_INDEX_INDEX_CACHE_H_
#define COMMA_TOOLS_LINT_INDEX_INDEX_CACHE_H_

#include <cstdint>
#include <map>
#include <string>

#include "tools/lint/index/symbol_index.h"

namespace comma::lint {

class IndexCache {
 public:
  // Loads `path`. A missing, unreadable, or malformed file is an empty
  // cache (cold run), not an error.
  void Load(const std::string& path);

  // Returns true and fills *out when `hash` is cached and deserializes.
  bool Lookup(uint64_t hash, FileIndex* out) const;

  // Records the index of a file (overwrites any entry with the same hash).
  void Insert(uint64_t hash, const FileIndex& index);

  // Writes every entry back to `path`. Returns false when the file cannot
  // be written.
  bool Save(const std::string& path) const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<uint64_t, std::string> entries_;  // hash -> serialized FileIndex.
};

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_INDEX_INDEX_CACHE_H_

#include "tools/lint/index/symbol_index.h"

#include <array>
#include <sstream>

#include "tools/lint/metric_namespace.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

constexpr uint64_t kIndexFormatVersion = 1;

constexpr std::array<std::string_view, 5> kMutexTypes = {
    "mutex", "recursive_mutex", "timed_mutex", "shared_mutex", "shared_timed_mutex",
};

// Keywords that look like `name (...)` but never open a function definition.
constexpr std::array<std::string_view, 12> kNotAFunction = {
    "if", "for", "while", "switch", "catch", "return",
    "sizeof", "alignof", "new", "delete", "do", "else",
};

bool IsMutexType(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) {
    return false;
  }
  for (std::string_view m : kMutexTypes) {
    if (t.text == m) {
      return true;
    }
  }
  return false;
}

bool IsNotAFunctionName(const std::string& text) {
  for (std::string_view k : kNotAFunction) {
    if (text == k) {
      return true;
    }
  }
  return false;
}

bool IsCommaAnnotation(const Token& t) {
  return t.kind == TokenKind::kIdentifier && t.text.rfind("COMMA_", 0) == 0;
}

// Collects the identifier arguments of an annotation like
// COMMA_REQUIRES(a, b) starting at the macro name token `i`. Returns the
// index just past the closing paren (or past the name when there is none).
size_t ReadAnnotationArgs(const Tokens& toks, size_t i, std::vector<std::string>* args) {
  if (i + 1 >= toks.size() || !toks[i + 1].IsPunct("(")) {
    return i + 1;
  }
  const size_t close = MatchingParen(toks, i + 1);
  if (close == kNpos) {
    return i + 1;
  }
  if (args != nullptr) {
    for (size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier) {
        args->push_back(toks[j].text);
      }
    }
  }
  return close + 1;
}

// Finds the '{' opening the body of the class-head at `i` (the keyword).
// Mirrors the mutex-annotation rule: kNpos for forward declarations,
// template parameters, `enum class`, and anonymous structs.
size_t ClassBodyOpen(const Tokens& toks, size_t i) {
  if (i + 2 >= toks.size() || toks[i + 1].kind != TokenKind::kIdentifier) {
    return kNpos;
  }
  if (i > 0 && toks[i - 1].IsIdent("enum")) {
    return kNpos;
  }
  for (size_t j = i + 2; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.IsPunct("{")) {
      return j;
    }
    if (t.IsPunct(";") || t.IsPunct(",") || t.IsPunct(">") || t.IsPunct("(") || t.IsPunct(")") ||
        t.IsPunct("=")) {
      return kNpos;
    }
  }
  return kNpos;
}

// True when `sig_end` (the token after a parameter list and its trailing
// qualifiers) opens a definition body; advances past constructor
// initializer lists. Returns the '{' index or kNpos.
size_t DefinitionBodyOpen(const Tokens& toks, size_t after_params,
                          std::vector<std::string>* requires_locks, bool* no_analysis) {
  size_t j = after_params;
  int sanity = 0;
  while (j < toks.size() && ++sanity < 64) {
    const Token& t = toks[j];
    if (t.IsPunct("{")) {
      return j;
    }
    if (t.IsIdent("const") || t.IsIdent("noexcept") || t.IsIdent("override") ||
        t.IsIdent("final") || t.IsIdent("try")) {
      ++j;
      continue;
    }
    if (t.IsIdent("COMMA_REQUIRES") || t.IsIdent("COMMA_ACQUIRE") ||
        t.IsIdent("COMMA_RELEASE") || t.IsIdent("COMMA_EXCLUDES")) {
      std::vector<std::string> args;
      j = ReadAnnotationArgs(toks, j, &args);
      if (requires_locks != nullptr && t.IsIdent("COMMA_REQUIRES")) {
        requires_locks->insert(requires_locks->end(), args.begin(), args.end());
      }
      continue;
    }
    if (IsCommaAnnotation(t)) {
      if (no_analysis != nullptr && t.text == "COMMA_NO_THREAD_SAFETY_ANALYSIS") {
        *no_analysis = true;
      }
      j = ReadAnnotationArgs(toks, j, nullptr);
      continue;
    }
    if (t.IsPunct(":")) {
      // Constructor initializer list: `name(args)` / `name{args}` items
      // separated by commas, then the body '{'.
      ++j;
      while (j < toks.size()) {
        if (toks[j].kind != TokenKind::kIdentifier) {
          return kNpos;
        }
        ++j;
        // Qualified member or template argument spellings are skipped
        // conservatively: walk to the next '(' or '{' at this level.
        while (j < toks.size() && (toks[j].IsPunct("::") || toks[j].IsPunct("<") ||
                                   toks[j].IsPunct(">") || toks[j].IsPunct(",") ||
                                   toks[j].kind == TokenKind::kIdentifier)) {
          if (toks[j].IsPunct(",")) {
            break;
          }
          ++j;
        }
        if (j >= toks.size()) {
          return kNpos;
        }
        if (toks[j].IsPunct("(")) {
          const size_t c = MatchingParen(toks, j);
          if (c == kNpos) {
            return kNpos;
          }
          j = c + 1;
        } else if (toks[j].IsPunct("{")) {
          const size_t c = MatchingBrace(toks, j);
          if (c == kNpos) {
            return kNpos;
          }
          j = c + 1;
        } else {
          return kNpos;
        }
        if (j < toks.size() && toks[j].IsPunct(",")) {
          ++j;
          continue;
        }
        break;
      }
      if (j < toks.size() && toks[j].IsPunct("{")) {
        return j;
      }
      return kNpos;
    }
    if (t.IsPunct("->")) {
      // Trailing return type: accept type-ish tokens up to the body.
      ++j;
      while (j < toks.size() &&
             (toks[j].kind == TokenKind::kIdentifier || toks[j].IsPunct("::") ||
              toks[j].IsPunct("<") || toks[j].IsPunct(">") || toks[j].IsPunct("*") ||
              toks[j].IsPunct("&"))) {
        ++j;
      }
      continue;
    }
    return kNpos;
  }
  return kNpos;
}

// True when the tokens before the candidate name look like a declaration
// head (type or qualified-id context) rather than an expression. Filters
// out plain calls `Foo(x);` at statement scope in macros etc.
bool LooksLikeDefinitionContext(const Tokens& toks, size_t name_idx) {
  if (name_idx == 0) {
    return true;
  }
  const Token& prev = toks[name_idx - 1];
  if (prev.IsPunct(";") || prev.IsPunct("}") || prev.IsPunct("{")) {
    return true;  // Start of a statement at file/class scope (e.g. TEST macros).
  }
  if (prev.kind == TokenKind::kIdentifier || prev.IsPunct("::") || prev.IsPunct("*") ||
      prev.IsPunct("&") || prev.IsPunct(">") || prev.IsPunct("~")) {
    return true;  // Preceded by a return type, class qualifier, or '~'.
  }
  return false;
}

struct MemberScanResult {
  IndexClass klass;
  std::vector<IndexFunction> inline_methods;
};

// Scans one class body (open, close) at member depth. Inline method bodies
// are recorded as functions and skipped; nested classes are left for the
// outer loop (it scans every `class` keyword).
void ScanClassBody(const LintFile& f, size_t head, size_t open, size_t close,
                   MemberScanResult* out) {
  const Tokens& toks = f.tokens;
  IndexClass& k = out->klass;
  k.name = toks[head + 1].text;
  k.line = toks[head + 1].line;
  int depth = 0;
  for (size_t j = open; j < close; ++j) {
    const Token& t = toks[j];
    if (t.IsPunct("{")) {
      ++depth;
      continue;
    }
    if (t.IsPunct("}")) {
      --depth;
      continue;
    }
    if (depth != 1) {
      continue;
    }
    // Mutex member: `std :: <mutex-type> <name>`.
    if (t.IsIdent("std") && j + 3 < close && toks[j + 1].IsPunct("::") &&
        IsMutexType(toks[j + 2]) && toks[j + 3].kind == TokenKind::kIdentifier) {
      IndexField field;
      field.name = toks[j + 3].text;
      field.is_mutex = true;
      field.line = toks[j + 3].line;
      field.col = toks[j + 3].col;
      k.fields.push_back(std::move(field));
      j += 3;
      continue;
    }
    // Guarded field: `<type> <name> COMMA_GUARDED_BY(lock) [= init];`.
    if ((t.IsIdent("COMMA_GUARDED_BY") || t.IsIdent("COMMA_PT_GUARDED_BY")) && j > open &&
        toks[j - 1].kind == TokenKind::kIdentifier) {
      std::vector<std::string> args;
      const size_t next = ReadAnnotationArgs(toks, j, &args);
      if (!args.empty()) {
        IndexField field;
        field.name = toks[j - 1].text;
        field.guarded_by = args.front();
        field.line = toks[j - 1].line;
        field.col = toks[j - 1].col;
        k.fields.push_back(std::move(field));
      }
      j = next - 1;
      continue;
    }
    // Method declaration or inline definition: `<name> ( ... ) ...`.
    if (t.kind == TokenKind::kIdentifier && !IsCommaAnnotation(t) &&
        !IsNotAFunctionName(t.text) && j + 1 < close && toks[j + 1].IsPunct("(")) {
      const size_t params_close = MatchingParen(toks, j + 1);
      if (params_close == kNpos || params_close > close) {
        continue;
      }
      IndexMethodDecl decl;
      decl.name = t.text;
      size_t after = params_close + 1;
      // Collect trailing annotations whether or not a body follows.
      const size_t body =
          DefinitionBodyOpen(toks, after, &decl.requires_locks, &decl.no_thread_safety);
      if (!decl.requires_locks.empty() || decl.no_thread_safety) {
        k.methods.push_back(decl);
      } else {
        // Keep annotation-free declarations too: FindMethodDecl answers
        // "declared here, no annotations" distinctly from "unknown".
        k.methods.push_back(decl);
      }
      if (body != kNpos) {
        const size_t body_close = MatchingBrace(toks, body);
        if (body_close != kNpos && body_close <= close) {
          IndexFunction fn;
          fn.class_name = k.name;
          fn.name = decl.name;
          fn.line = t.line;
          fn.col = t.col;
          fn.body_open = body;
          fn.body_close = body_close;
          fn.is_ctor_dtor =
              decl.name == k.name || (j > open && toks[j - 1].IsPunct("~"));
          fn.requires_locks = decl.requires_locks;
          fn.no_thread_safety = decl.no_thread_safety;
          out->inline_methods.push_back(std::move(fn));
          j = body_close;
          continue;
        }
      }
      j = params_close;
      continue;
    }
  }
}

void ScanMetricLiterals(const LintFile& f, FileIndex* out) {
  const Tokens& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kString) {
      if (t.text.rfind("watch ", 0) == 0) {
        // `watch <name> [...]` command literal.
        std::istringstream in(t.text);
        std::string cmd;
        std::string name;
        in >> cmd >> name;
        if (!name.empty()) {
          out->watch_refs.push_back({name, t.line, t.col});
        }
      }
      // Dynamic-prefix literal: "<family>." or "<family>.<path>." used to
      // build metric names at runtime ("sp.filter.", "sp.recovery.").
      // IsMetricName on the prefix minus its trailing dot keeps arbitrary
      // dotted prose ("e.g.") out of the index.
      if (t.text.size() > 2 && t.text.back() == '.' &&
          IsMetricName(std::string_view(t.text).substr(0, t.text.size() - 1))) {
        out->metric_prefixes.push_back(t.text);
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) {
      continue;
    }
    MetricFamily family;
    bool is_source = false;
    if (t.text == "GetCounter") {
      family = MetricFamily::kCounter;
    } else if (t.text == "GetGauge") {
      family = MetricFamily::kGauge;
    } else if (t.text == "GetHistogram") {
      family = MetricFamily::kHistogram;
    } else if (t.text == "RegisterCounterSource") {
      family = MetricFamily::kCounter;
      is_source = true;
    } else if (t.text == "RegisterGaugeSource") {
      family = MetricFamily::kGauge;
      is_source = true;
    } else {
      continue;
    }
    if (i + 2 < toks.size() && toks[i + 1].IsPunct("(") &&
        toks[i + 2].kind == TokenKind::kString) {
      MetricRef ref;
      ref.name = toks[i + 2].text;
      ref.family = family;
      ref.is_source = is_source;
      ref.line = toks[i + 2].line;
      ref.col = toks[i + 2].col;
      out->metric_refs.push_back(std::move(ref));
    }
  }
}

// --- Serialization ---
// Line-oriented; identifiers and metric names never contain spaces, so
// space-separated fields round-trip.

std::string JoinLocks(const std::vector<std::string>& locks) {
  std::string out = "-";
  if (!locks.empty()) {
    out.clear();
    for (size_t i = 0; i < locks.size(); ++i) {
      out += (i != 0 ? "," : "") + locks[i];
    }
  }
  return out;
}

std::vector<std::string> SplitLocks(const std::string& s) {
  std::vector<std::string> out;
  if (s == "-") {
    return out;
  }
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    out.push_back(s.substr(pos, comma == std::string::npos ? comma : comma - pos));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

FileIndex IndexFile(const LintFile& f) {
  FileIndex out;
  const Tokens& toks = f.tokens;

  // Class bodies, with their member depth scanned for fields/methods.
  // Stack of (class index in out.classes, body close token) for resolving
  // the class of out-of-line scans below.
  std::vector<std::pair<size_t, size_t>> class_stack;
  for (size_t i = 0; i < toks.size(); ++i) {
    while (!class_stack.empty() && i > class_stack.back().second) {
      class_stack.pop_back();
    }
    const Token& t = toks[i];
    if (t.IsIdent("class") || t.IsIdent("struct")) {
      const size_t open = ClassBodyOpen(toks, i);
      if (open == kNpos) {
        continue;
      }
      const size_t close = MatchingBrace(toks, open);
      if (close == kNpos) {
        continue;
      }
      MemberScanResult scan;
      ScanClassBody(f, i, open, close, &scan);
      out.classes.push_back(std::move(scan.klass));
      for (IndexFunction& fn : scan.inline_methods) {
        out.functions.push_back(std::move(fn));
      }
      class_stack.emplace_back(out.classes.size() - 1, close);
      continue;
    }
    // Out-of-class function definitions (free functions and
    // `Class::Method(...) { ... }`). Skip anything inside a class body —
    // ScanClassBody already recorded inline methods.
    if (!class_stack.empty()) {
      continue;
    }
    if (t.kind != TokenKind::kIdentifier || IsNotAFunctionName(t.text) || IsCommaAnnotation(t) ||
        i + 1 >= toks.size() || !toks[i + 1].IsPunct("(")) {
      continue;
    }
    if (!LooksLikeDefinitionContext(toks, i)) {
      continue;
    }
    const size_t params_close = MatchingParen(toks, i + 1);
    if (params_close == kNpos) {
      continue;
    }
    IndexFunction fn;
    const size_t body =
        DefinitionBodyOpen(toks, params_close + 1, &fn.requires_locks, &fn.no_thread_safety);
    if (body == kNpos) {
      continue;
    }
    const size_t body_close = MatchingBrace(toks, body);
    if (body_close == kNpos) {
      continue;
    }
    fn.name = t.text;
    fn.line = t.line;
    fn.col = t.col;
    fn.body_open = body;
    fn.body_close = body_close;
    if (i >= 2 && toks[i - 1].IsPunct("::") && toks[i - 2].kind == TokenKind::kIdentifier) {
      fn.class_name = toks[i - 2].text;
    }
    if (i >= 1 && toks[i - 1].IsPunct("~")) {
      fn.is_ctor_dtor = true;
      if (i >= 3 && toks[i - 2].IsPunct("::") && toks[i - 3].kind == TokenKind::kIdentifier) {
        fn.class_name = toks[i - 3].text;
      }
    }
    if (!fn.class_name.empty() && fn.name == fn.class_name) {
      fn.is_ctor_dtor = true;
    }
    out.functions.push_back(std::move(fn));
    i = body_close;  // Function bodies nest no further definitions we index.
  }

  ScanMetricLiterals(f, &out);
  return out;
}

std::string FileIndex::Serialize() const {
  std::ostringstream out;
  for (const IndexClass& k : classes) {
    out << "C " << k.name << ' ' << k.line << '\n';
    for (const IndexField& field : k.fields) {
      out << "f " << field.name << ' ' << (field.guarded_by.empty() ? "-" : field.guarded_by)
          << ' ' << (field.is_mutex ? 1 : 0) << ' ' << field.line << ' ' << field.col << '\n';
    }
    for (const IndexMethodDecl& m : k.methods) {
      out << "m " << m.name << ' ' << (m.no_thread_safety ? 1 : 0) << ' '
          << JoinLocks(m.requires_locks) << '\n';
    }
  }
  for (const IndexFunction& fn : functions) {
    out << "U " << (fn.class_name.empty() ? "-" : fn.class_name) << ' ' << fn.name << ' '
        << fn.line << ' ' << fn.col << ' ' << fn.body_open << ' ' << fn.body_close << ' '
        << (fn.is_ctor_dtor ? 1 : 0) << ' ' << (fn.no_thread_safety ? 1 : 0) << ' '
        << JoinLocks(fn.requires_locks) << '\n';
  }
  for (const MetricRef& ref : metric_refs) {
    out << "M " << static_cast<int>(ref.family) << ' ' << (ref.is_source ? 1 : 0) << ' '
        << ref.line << ' ' << ref.col << ' ' << ref.name << '\n';
  }
  for (const std::string& prefix : metric_prefixes) {
    out << "P " << prefix << '\n';
  }
  for (const WatchRef& ref : watch_refs) {
    out << "W " << ref.line << ' ' << ref.col << ' ' << ref.name << '\n';
  }
  return out.str();
}

bool FileIndex::Deserialize(const std::string& blob, FileIndex* out) {
  *out = FileIndex();
  std::istringstream in(blob);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    std::string tag;
    row >> tag;
    if (tag == "C") {
      IndexClass k;
      row >> k.name >> k.line;
      if (row.fail()) {
        return false;
      }
      out->classes.push_back(std::move(k));
    } else if (tag == "f") {
      if (out->classes.empty()) {
        return false;
      }
      IndexField field;
      std::string guard;
      int is_mutex = 0;
      row >> field.name >> guard >> is_mutex >> field.line >> field.col;
      if (row.fail()) {
        return false;
      }
      field.guarded_by = guard == "-" ? "" : guard;
      field.is_mutex = is_mutex != 0;
      out->classes.back().fields.push_back(std::move(field));
    } else if (tag == "m") {
      if (out->classes.empty()) {
        return false;
      }
      IndexMethodDecl m;
      int no_analysis = 0;
      std::string locks;
      row >> m.name >> no_analysis >> locks;
      if (row.fail()) {
        return false;
      }
      m.no_thread_safety = no_analysis != 0;
      m.requires_locks = SplitLocks(locks);
      out->classes.back().methods.push_back(std::move(m));
    } else if (tag == "U") {
      IndexFunction fn;
      std::string class_name;
      std::string locks;
      int ctor = 0;
      int no_analysis = 0;
      row >> class_name >> fn.name >> fn.line >> fn.col >> fn.body_open >> fn.body_close >>
          ctor >> no_analysis >> locks;
      if (row.fail()) {
        return false;
      }
      fn.class_name = class_name == "-" ? "" : class_name;
      fn.is_ctor_dtor = ctor != 0;
      fn.no_thread_safety = no_analysis != 0;
      fn.requires_locks = SplitLocks(locks);
      out->functions.push_back(std::move(fn));
    } else if (tag == "M") {
      MetricRef ref;
      int family = 0;
      int is_source = 0;
      row >> family >> is_source >> ref.line >> ref.col >> ref.name;
      if (row.fail()) {
        return false;
      }
      ref.family = static_cast<MetricFamily>(family);
      ref.is_source = is_source != 0;
      out->metric_refs.push_back(std::move(ref));
    } else if (tag == "P") {
      std::string prefix;
      row >> prefix;
      if (row.fail()) {
        return false;
      }
      out->metric_prefixes.push_back(std::move(prefix));
    } else if (tag == "W") {
      WatchRef ref;
      row >> ref.line >> ref.col >> ref.name;
      if (row.fail()) {
        return false;
      }
      out->watch_refs.push_back(std::move(ref));
    } else {
      return false;
    }
  }
  return true;
}

const IndexMethodDecl* ProjectIndex::FindMethodDecl(const std::string& class_name,
                                                    const std::string& method) const {
  const auto it = classes.find(class_name);
  if (it == classes.end()) {
    return nullptr;
  }
  for (const IndexMethodDecl& m : it->second.methods) {
    if (m.name == method) {
      return &m;
    }
  }
  return nullptr;
}

std::vector<IndexField> ProjectIndex::GuardedFields(const std::string& class_name) const {
  std::vector<IndexField> out;
  const auto it = classes.find(class_name);
  if (it == classes.end()) {
    return out;
  }
  for (const IndexField& field : it->second.fields) {
    if (!field.guarded_by.empty()) {
      out.push_back(field);
    }
  }
  return out;
}

ProjectIndex ProjectIndex::Build(const std::vector<FileIndex>& per_file) {
  ProjectIndex out;
  out.per_file = per_file;
  for (const FileIndex& file : out.per_file) {
    for (const IndexClass& k : file.classes) {
      IndexClass& merged = out.classes[k.name];
      if (merged.name.empty()) {
        merged.name = k.name;
        merged.line = k.line;
      }
      merged.fields.insert(merged.fields.end(), k.fields.begin(), k.fields.end());
      merged.methods.insert(merged.methods.end(), k.methods.begin(), k.methods.end());
    }
  }
  return out;
}

uint64_t IndexContentHash(const std::string& content) {
  uint64_t h = 14695981039346656037ull ^ (kIndexFormatVersion * 1099511628211ull);
  for (unsigned char c : content) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace comma::lint

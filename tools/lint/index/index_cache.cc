#include "tools/lint/index/index_cache.h"

#include <fstream>
#include <sstream>

namespace comma::lint {
namespace {

constexpr char kCacheHeader[] = "comma-lint-index-cache v1";

}  // namespace

void IndexCache::Load(const std::string& path) {
  entries_.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return;
  }
  std::string line;
  if (!std::getline(in, line) || line != kCacheHeader) {
    return;  // Version skew or garbage: cold run.
  }
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    std::string tag;
    std::string hash_hex;
    size_t blob_len = 0;
    row >> tag >> hash_hex >> blob_len;
    if (row.fail() || tag != "E") {
      entries_.clear();
      return;
    }
    uint64_t hash = 0;
    std::istringstream(hash_hex) >> std::hex >> hash;
    std::string blob(blob_len, '\0');
    in.read(blob.data(), static_cast<std::streamsize>(blob_len));
    if (in.gcount() != static_cast<std::streamsize>(blob_len)) {
      entries_.clear();
      return;  // Truncated cache: cold run.
    }
    entries_[hash] = std::move(blob);
  }
}

bool IndexCache::Lookup(uint64_t hash, FileIndex* out) const {
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    return false;
  }
  return FileIndex::Deserialize(it->second, out);
}

void IndexCache::Insert(uint64_t hash, const FileIndex& index) {
  entries_[hash] = index.Serialize();
}

bool IndexCache::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return false;
  }
  out << kCacheHeader << '\n';
  for (const auto& [hash, blob] : entries_) {
    std::ostringstream hex;
    hex << std::hex << hash;
    out << "E " << hex.str() << ' ' << blob.size() << '\n' << blob;
  }
  return static_cast<bool>(out);
}

}  // namespace comma::lint

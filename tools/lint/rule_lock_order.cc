// lock-order — the declared lock hierarchy, checked against the code.
//
// DESIGN.md §"Lock hierarchy" declares every lock in the tree with a
// numeric rank; locks must only be acquired in increasing rank order, which
// makes cross-thread deadlock impossible by construction. This rule parses
// that table (it travels with the code, so re-ranking a lock and the sites
// that take it land in one commit) and checks two things:
//
//  1. Lexically nested acquisitions: a std::lock_guard / scoped_lock /
//     unique_lock / shared_lock taken while a guard on a same-or-higher
//     ranked lock is still in scope.
//  2. Annotation pairs: a declaration carrying both COMMA_REQUIRES(a) and
//     COMMA_ACQUIRE(b) where rank(a) >= rank(b) — the caller already holds
//     `a`, so the function body will acquire against the order.
//
// Every acquired lock must be in the table: an unranked mutex cannot be
// ordered, so taking one is itself a finding. Scope is src/ and tools/
// (tests build ad-hoc mutexes for harness plumbing).
//
// Table format parsed from DESIGN.md, first row after a heading line
// containing "lock hierarchy" (case-insensitive):
//
//   | Rank | Lock            | Owner              | ... |
//   |------|-----------------|--------------------|-----|
//   | 10   | `scan_mu_`      | lint::ScanPool     | ... |
//
// Rank is the first cell (an integer), the lock is the first `backticked`
// identifier in the second cell. Lock field names are globally unique by
// convention, so the rule matches by name alone.
#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

struct LockRank {
  int rank = 0;
  int design_line = 0;  // Where the table row lives, for messages.
};

using Hierarchy = std::map<std::string, LockRank>;

std::string Lowered(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Splits a markdown table row into trimmed cells ("|a | b|" -> {"a","b"}).
std::vector<std::string> RowCells(const std::string& line) {
  std::vector<std::string> cells;
  size_t pos = line.find('|');
  while (pos != std::string::npos) {
    const size_t next = line.find('|', pos + 1);
    if (next == std::string::npos) {
      break;
    }
    std::string cell = line.substr(pos + 1, next - pos - 1);
    const size_t b = cell.find_first_not_of(" \t");
    const size_t e = cell.find_last_not_of(" \t");
    cells.push_back(b == std::string::npos ? std::string() : cell.substr(b, e - b + 1));
    pos = next;
  }
  return cells;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) {
    return false;
  }
  int v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

// First `backticked` span of `cell`, or empty.
std::string BacktickedName(const std::string& cell) {
  const size_t open = cell.find('`');
  if (open == std::string::npos) {
    return {};
  }
  const size_t close = cell.find('`', open + 1);
  if (close == std::string::npos) {
    return {};
  }
  return cell.substr(open + 1, close - open - 1);
}

Hierarchy ParseHierarchy(const LintFile& design) {
  Hierarchy ranks;
  bool in_section = false;
  bool in_table = false;
  for (size_t i = 0; i < design.lines.size(); ++i) {
    const std::string& line = design.lines[i];
    if (!in_section) {
      if (line.find('#') != std::string::npos &&
          Lowered(line).find("lock hierarchy") != std::string::npos) {
        in_section = true;
      }
      continue;
    }
    const size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) {
      if (in_table) {
        break;  // Blank line after the table ends it.
      }
      continue;
    }
    if (line[b] != '|') {
      if (in_table) {
        break;
      }
      continue;  // Prose between the heading and the table.
    }
    in_table = true;
    const std::vector<std::string> cells = RowCells(line);
    int rank = 0;
    if (cells.size() < 2 || !ParseInt(cells[0], &rank)) {
      continue;  // Header or separator row.
    }
    const std::string name = BacktickedName(cells[1]);
    if (!name.empty()) {
      ranks[name] = {rank, static_cast<int>(i + 1)};
    }
  }
  return ranks;
}

// A guard variable still in scope: which lock it holds and the brace depth
// its enclosing scope started at.
struct HeldLock {
  std::string name;
  int rank = 0;
  int depth = 0;
};

bool IsGuardType(const Token& t) {
  return t.IsIdent("lock_guard") || t.IsIdent("scoped_lock") || t.IsIdent("unique_lock") ||
         t.IsIdent("shared_lock");
}

// Token index just past a `<...>` template argument list at `open`, or
// `open` when there is none.
size_t SkipTemplateArgs(const Tokens& toks, size_t open) {
  if (open >= toks.size() || !toks[open].IsPunct("<")) {
    return open;
  }
  int depth = 0;
  for (size_t j = open; j < toks.size() && j < open + 128; ++j) {
    if (toks[j].IsPunct("<")) {
      ++depth;
    } else if (toks[j].IsPunct(">")) {
      if (--depth == 0) {
        return j + 1;
      }
    } else if (toks[j].IsPunct(">>")) {
      depth -= 2;
      if (depth <= 0) {
        return j + 1;
      }
    }
  }
  return open;
}

class LockOrderRule : public Rule {
 public:
  std::string_view name() const override { return "lock-order"; }
  std::string_view description() const override {
    return "nested lock acquisitions must follow the DESIGN.md lock-hierarchy ranks";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    if (!project.has_design) {
      return;  // No declared hierarchy to check against.
    }
    const Hierarchy ranks = ParseHierarchy(project.design);
    if (ranks.empty()) {
      return;
    }
    for (const LintFile& f : project.files) {
      if (!PathUnder(f.path, "src/") && !PathUnder(f.path, "tools/")) {
        continue;
      }
      CheckLexicalNesting(f, ranks, out);
      CheckAnnotationPairs(f, ranks, out);
    }
  }

 private:
  // The last identifier of one acquisition argument (`registry.metrics_mu_`
  // -> `metrics_mu_`). Arguments are split on top-level commas.
  static std::vector<std::pair<std::string, const Token*>> ArgLockNames(const Tokens& toks,
                                                                        size_t open,
                                                                        size_t close) {
    std::vector<std::pair<std::string, const Token*>> names;
    const Token* last_ident = nullptr;
    int depth = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const Token& t = toks[j];
      if (t.IsPunct("(")) {
        ++depth;
      } else if (t.IsPunct(")")) {
        --depth;
      } else if (t.IsPunct(",") && depth == 0) {
        if (last_ident != nullptr) {
          names.emplace_back(last_ident->text, last_ident);
        }
        last_ident = nullptr;
      } else if (t.kind == TokenKind::kIdentifier) {
        last_ident = &t;
      }
    }
    if (last_ident != nullptr) {
      names.emplace_back(last_ident->text, last_ident);
    }
    return names;
  }

  void CheckLexicalNesting(const LintFile& f, const Hierarchy& ranks, Diagnostics* out) const {
    const Tokens& toks = f.tokens;
    std::vector<HeldLock> held;
    int depth = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.IsPunct("{")) {
        ++depth;
        continue;
      }
      if (t.IsPunct("}")) {
        --depth;
        while (!held.empty() && held.back().depth > depth) {
          held.pop_back();
        }
        continue;
      }
      if (!IsGuardType(t)) {
        continue;
      }
      // std::lock_guard<...> var ( args ) ;
      size_t j = SkipTemplateArgs(toks, i + 1);
      if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier ||
          j + 1 >= toks.size() || !toks[j + 1].IsPunct("(")) {
        continue;
      }
      const size_t close = MatchingParen(toks, j + 1);
      if (close == kNpos) {
        continue;
      }
      for (const auto& [name, tok] : ArgLockNames(toks, j + 1, close)) {
        const auto rank = ranks.find(name);
        if (rank == ranks.end()) {
          Emit(f, *tok,
               "acquires '" + name +
                   "', which is not in the DESIGN.md lock-hierarchy table; every lock must be "
                   "ranked before it can be taken",
               out);
          continue;
        }
        if (!held.empty() && held.back().rank >= rank->second.rank) {
          Emit(f, *tok,
               "acquires '" + name + "' (rank " + std::to_string(rank->second.rank) +
                   ") while '" + held.back().name + "' (rank " +
                   std::to_string(held.back().rank) +
                   ") is held; the DESIGN.md lock hierarchy orders acquisitions by "
                   "increasing rank",
               out);
        }
        held.push_back({name, rank->second.rank, depth});
      }
      i = close;
    }
  }

  void CheckAnnotationPairs(const LintFile& f, const Hierarchy& ranks, Diagnostics* out) const {
    const Tokens& toks = f.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].IsIdent("COMMA_ACQUIRE") || i + 1 >= toks.size() ||
          !toks[i + 1].IsPunct("(")) {
        continue;
      }
      const size_t close = MatchingParen(toks, i + 1);
      if (close == kNpos) {
        continue;
      }
      const auto acquired = ArgLockNames(toks, i + 1, close);
      // The declaration this annotation belongs to: back to the previous
      // `;`, `{`, or `}`.
      size_t begin = 0;
      for (size_t j = i; j > 0; --j) {
        const Token& t = toks[j - 1];
        if (t.IsPunct(";") || t.IsPunct("{") || t.IsPunct("}")) {
          begin = j;
          break;
        }
      }
      std::vector<std::pair<std::string, const Token*>> required;
      for (size_t j = begin; j < i; ++j) {
        if (toks[j].IsIdent("COMMA_REQUIRES") && j + 1 < i && toks[j + 1].IsPunct("(")) {
          const size_t rclose = MatchingParen(toks, j + 1);
          if (rclose != kNpos && rclose < i) {
            for (auto& nm : ArgLockNames(toks, j + 1, rclose)) {
              required.push_back(std::move(nm));
            }
          }
        }
      }
      for (const auto& [aname, atok] : acquired) {
        const auto arank = ranks.find(aname);
        if (arank == ranks.end()) {
          Emit(f, *atok,
               "COMMA_ACQUIRE names '" + aname +
                   "', which is not in the DESIGN.md lock-hierarchy table; every lock must be "
                   "ranked before it can be taken",
               out);
          continue;
        }
        for (const auto& [rname, rtok] : required) {
          const auto rrank = ranks.find(rname);
          if (rrank == ranks.end() || rrank->second.rank < arank->second.rank) {
            continue;
          }
          Emit(f, *atok,
               "declared to acquire '" + aname + "' (rank " +
                   std::to_string(arank->second.rank) + ") while requiring '" + rname +
                   "' (rank " + std::to_string(rrank->second.rank) +
                   "); the DESIGN.md lock hierarchy orders acquisitions by increasing rank",
               out);
        }
      }
    }
  }

  static void Emit(const LintFile& f, const Token& at, std::string message, Diagnostics* out) {
    Diagnostic d;
    d.file = f.path;
    d.line = at.line;
    d.col = at.col;
    d.rule = "lock-order";
    d.message = std::move(message);
    if (!f.IsSuppressed(d.rule, d.line)) {
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

RulePtr MakeLockOrderRule() { return std::make_unique<LockOrderRule>(); }

}  // namespace comma::lint

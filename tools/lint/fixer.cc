#include "tools/lint/fixer.h"

#include <algorithm>
#include <set>

namespace comma::lint {
namespace {

bool HasInclude(const std::string& content, const std::string& header) {
  return content.find("#include \"" + header + "\"") != std::string::npos;
}

// Byte offset at which to insert a new `#include "src/..."` line: after the
// last existing "src/..." include, else after the last include of any kind,
// else after a leading comment block, else 0.
size_t IncludeInsertionPoint(const std::string& content) {
  size_t last_src_include_end = std::string::npos;
  size_t last_include_end = std::string::npos;
  size_t pos = 0;
  while ((pos = content.find("#include", pos)) != std::string::npos) {
    const size_t eol = content.find('\n', pos);
    const size_t line_end = eol == std::string::npos ? content.size() : eol + 1;
    last_include_end = line_end;
    if (content.compare(pos, 14, "#include \"src/") == 0) {
      last_src_include_end = line_end;
    }
    pos = line_end;
  }
  if (last_src_include_end != std::string::npos) {
    return last_src_include_end;
  }
  if (last_include_end != std::string::npos) {
    return last_include_end;
  }
  return 0;
}

}  // namespace

std::string ApplyFixes(const std::string& content, std::vector<FixIt> fixes) {
  std::sort(fixes.begin(), fixes.end(),
            [](const FixIt& a, const FixIt& b) { return a.begin < b.begin; });
  std::string out;
  out.reserve(content.size());
  size_t cursor = 0;
  std::set<std::string> needed_includes;
  for (const FixIt& fix : fixes) {
    if (fix.begin < cursor || fix.end > content.size()) {
      continue;  // Overlap or out of range: first fix wins.
    }
    out.append(content, cursor, fix.begin - cursor);
    out.append(fix.replacement);
    cursor = fix.end;
    if (!fix.required_include.empty() && !HasInclude(content, fix.required_include)) {
      needed_includes.insert(fix.required_include);
    }
  }
  out.append(content, cursor, content.size() - cursor);
  if (!needed_includes.empty()) {
    std::string block;
    for (const std::string& h : needed_includes) {
      block += "#include \"" + h + "\"\n";
    }
    const size_t at = IncludeInsertionPoint(out);
    out.insert(at, block);
  }
  return out;
}

}  // namespace comma::lint

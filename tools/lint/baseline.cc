#include "tools/lint/baseline.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace comma::lint {

std::string Baseline::Normalize(const std::string& line) {
  std::string out;
  bool in_space = true;  // Also strips leading whitespace.
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!in_space) {
        out += ' ';
        in_space = true;
      }
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') {
    out.pop_back();
  }
  return out;
}

std::string Baseline::Key(const std::string& rule, const std::string& file,
                          const std::string& normalized_line) {
  return rule + "|" + file + "|" + normalized_line;
}

bool Baseline::Load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return true;  // Absent baseline == empty baseline.
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t first = line.find('|');
    const size_t second = first == std::string::npos ? std::string::npos : line.find('|', first + 1);
    if (second == std::string::npos) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": malformed baseline entry";
      }
      return false;
    }
    ++loaded_[line];
    ++remaining_[line];
  }
  return true;
}

int Baseline::StaleCount() const {
  int stale = 0;
  for (const auto& [entry, count] : remaining_) {
    stale += count;
  }
  return stale;
}

std::string Baseline::RenderPruned() const {
  std::ostringstream out;
  out << Header();
  // loaded_ is sorted, matching Render()'s sorted output.
  for (const auto& [entry, count] : loaded_) {
    const auto rem = remaining_.find(entry);
    const int consumed = count - (rem == remaining_.end() ? 0 : rem->second);
    for (int i = 0; i < consumed; ++i) {
      out << entry << "\n";
    }
  }
  return out.str();
}

bool Baseline::Absorb(const Diagnostic& d, const std::string& line_text) {
  auto it = remaining_.find(Key(d.rule, d.file, Normalize(line_text)));
  if (it == remaining_.end() || it->second == 0) {
    return false;
  }
  --it->second;
  return true;
}

std::string Baseline::Header() {
  return "# comma-lint baseline — grandfathered findings (docs/static-analysis.md).\n"
         "# One entry per line: <rule>|<path>|<normalized source line>.\n"
         "# Regenerate with: comma-lint --write-baseline\n";
}

std::string Baseline::Render(const Diagnostics& findings, const Project& project) {
  std::ostringstream out;
  out << Header();
  std::vector<std::string> entries;
  for (const Diagnostic& d : findings) {
    const LintFile* file = nullptr;
    for (const LintFile& f : project.files) {
      if (f.path == d.file) {
        file = &f;
        break;
      }
    }
    const std::string line_text = file != nullptr ? file->Line(d.line) : std::string();
    entries.push_back(Key(d.rule, d.file, Normalize(line_text)));
  }
  std::sort(entries.begin(), entries.end());
  for (const std::string& e : entries) {
    out << e << "\n";
  }
  return out.str();
}

}  // namespace comma::lint

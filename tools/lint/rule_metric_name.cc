// metric-name-style — every metric registered with the obs::MetricRegistry
// is also a watchable EEM variable (obs::EemMetricsBridge, PR 3), so the
// name is API: Kati `watch` patterns, the `stats` command globs, and the
// bench snapshot tooling all key on it. Names must stay inside the
// namespace the bridge advertises:
//
//   ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns)\.[a-z0-9_.]+$
//
// "mip" joined the namespace with the failover work: Mobile IP client and
// hand-off counters are exported through the standby proxy's registry
// (core::FailoverSystem), and recovery metrics live under "sp.recovery.".
// "sim" joined with the region-sharded simulator: the epoch-loop telemetry
// (sim.epochs, sim.cross_region_events, sim.barrier_wait_us,
// sim.critical_path_events; docs/parallel-sim.md) is bridged like any
// other counter so Kati and the bench snapshots can watch it.
// "http" and "dns" joined with the application-layer service tier: the
// content-aware filter family's fail-open/transcode counters and the
// dnscache hit rates (docs/app-services.md) drive the examples/http_adapt
// Kati policy and the bench_http snapshots.
//
// Only string *literals* are checked; computed names (the per-filter
// "sp.filter.<name>." telemetry prefix) are validated at runtime by the
// registry and exercised by tests/obs. Scope is src/ — tests register
// synthetic names on purpose.
#include <array>
#include <cctype>
#include <string>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

constexpr std::array<std::string_view, 5> kRegistrationMethods = {
    "GetCounter", "GetGauge", "GetHistogram", "RegisterCounterSource", "RegisterGaugeSource",
};

constexpr std::array<std::string_view, 9> kAllowedPrefixes = {
    "sp", "ttsf", "tcp", "eem", "trace", "mip", "sim", "http", "dns"};

bool IsRegistrationMethod(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) {
    return false;
  }
  for (std::string_view m : kRegistrationMethods) {
    if (t.text == m) {
      return true;
    }
  }
  return false;
}

// Hand-rolled match of ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns)\.[a-z0-9_.]+$
// — exact regex semantics, no <regex> dependency.
bool NameMatches(const std::string& name) {
  size_t dot = name.find('.');
  if (dot == std::string::npos || dot + 1 >= name.size()) {
    return false;
  }
  const std::string_view prefix(name.data(), dot);
  bool prefix_ok = false;
  for (std::string_view p : kAllowedPrefixes) {
    if (prefix == p) {
      prefix_ok = true;
      break;
    }
  }
  if (!prefix_ok) {
    return false;
  }
  for (size_t i = dot + 1; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

class MetricNameStyleRule : public Rule {
 public:
  std::string_view name() const override { return "metric-name-style"; }
  std::string_view description() const override {
    return "MetricRegistry names must match "
           "^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns)\\.[a-z0-9_.]+$";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      if (!PathUnder(f.path, "src/")) {
        continue;
      }
      const Tokens& toks = f.tokens;
      for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!IsRegistrationMethod(toks[i]) || !toks[i + 1].IsPunct("(")) {
          continue;
        }
        const Token& arg = toks[i + 2];
        if (arg.kind != TokenKind::kString || NameMatches(arg.text)) {
          continue;
        }
        Diagnostic d;
        d.file = f.path;
        d.line = arg.line;
        d.col = arg.col;
        d.rule = "metric-name-style";
        d.message = "metric name \"" + arg.text + "\" is outside the EEM-bridged namespace " +
                    "^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns).[a-z0-9_.]+$ and would be "
                    "unwatchable from Kati";
        if (!f.IsSuppressed(d.rule, d.line)) {
          out->push_back(std::move(d));
        }
      }
    }
  }
};

}  // namespace

RulePtr MakeMetricNameStyleRule() { return std::make_unique<MetricNameStyleRule>(); }

}  // namespace comma::lint

// Token model for the comma-lint tokenizer (tools/lint/lexer.h).
//
// comma-lint deliberately works on tokens, not an AST: the invariants it
// enforces (docs/static-analysis.md) are expressible as local token
// patterns plus a little file-global bookkeeping, and a tokenizer keeps the
// tool free of any LLVM dependency so it builds everywhere the project does.
#ifndef COMMA_TOOLS_LINT_TOKEN_H_
#define COMMA_TOOLS_LINT_TOKEN_H_

#include <string>
#include <vector>

namespace comma::lint {

enum class TokenKind {
  kIdentifier,   // names and keywords, including macro names
  kNumber,       // integer / floating literals (incl. hex, suffixes)
  kString,       // "..." or R"...(...)..." — text is the *inner* value
  kChar,         // '...' — text is the inner value
  kPunct,        // operators and punctuation, maximal munch ("<<=", "->", …)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based column of the first character
  // Byte offsets into the file content, [begin, end). For string literals
  // these span the quotes/prefix, while `text` holds only the inner value.
  size_t begin = 0;
  size_t end = 0;

  bool Is(TokenKind k, std::string_view t) const { return kind == k && text == t; }
  bool IsIdent(std::string_view t) const { return Is(TokenKind::kIdentifier, t); }
  bool IsPunct(std::string_view t) const { return Is(TokenKind::kPunct, t); }
};

using Tokens = std::vector<Token>;

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_TOKEN_H_

// SARIF 2.1.0 rendering of a lint run, for GitHub code scanning.
//
// CI runs `comma-lint --format=sarif > comma-lint.sarif` and uploads the
// file with github/codeql-action/upload-sarif, which turns findings into
// code-scanning annotations on the PR diff. Only new findings are emitted —
// baselined ones are grandfathered by definition and would re-annotate
// every PR that touches a dirty file.
#ifndef COMMA_TOOLS_LINT_SARIF_H_
#define COMMA_TOOLS_LINT_SARIF_H_

#include <string>

#include "tools/lint/runner.h"

namespace comma::lint {

// Renders `result.findings` as one SARIF run. The rule catalog (every
// builtin rule, whether or not it fired) goes into tool.driver.rules so
// GitHub can show descriptions for rules with zero current findings.
std::string RenderSarif(const LintResult& result);

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_SARIF_H_

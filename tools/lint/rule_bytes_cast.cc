// bytes-raw-cast — wire buffers cross the text/byte boundary only through
// src/util/bytes.h (AsBytePtr/AsCharPtr/ToBytes/ToString, ByteReader/
// ByteWriter). A stray reinterpret_cast or memcpy on packet bytes dodges
// both the checked-reader discipline and the sanctioned-cast inventory that
// clang-tidy is pointed at (see the NOLINT markers in bytes.h), so the tree
// outside bytes.* must stay free of them.
//
// The two common cast shapes are mechanical and --fix rewrites them:
//   reinterpret_cast<const char*>(x)    -> comma::util::AsCharPtr(x)
//   reinterpret_cast<const uint8_t*>(x) -> comma::util::AsBytePtr(x)
#include <string>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

class BytesRawCastRule : public Rule {
 public:
  std::string_view name() const override { return "bytes-raw-cast"; }
  std::string_view description() const override {
    return "no reinterpret_cast/memcpy outside src/util/bytes.*; use the util::bytes helpers";
  }
  bool fixable() const override { return true; }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      if (!PathUnder(f.path, "src/") && !PathUnder(f.path, "tests/")) {
        continue;
      }
      if (f.path == "src/util/bytes.h" || f.path == "src/util/bytes.cc") {
        continue;  // The sanctioned sites.
      }
      const Tokens& toks = f.tokens;
      for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].IsIdent("reinterpret_cast")) {
          Report(f, i, out);
        } else if (toks[i].IsIdent("memcpy") && i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
          Diagnostic d = At(f, toks[i]);
          d.message =
              "raw memcpy on a wire buffer; use util::ByteReader/ByteWriter or the "
              "util::bytes copy helpers";
          if (!f.IsSuppressed(d.rule, d.line)) {
            out->push_back(std::move(d));
          }
        }
      }
    }
  }

 private:
  static Diagnostic At(const LintFile& f, const Token& t) {
    Diagnostic d;
    d.file = f.path;
    d.line = t.line;
    d.col = t.col;
    d.rule = "bytes-raw-cast";
    return d;
  }

  static void Report(const LintFile& f, size_t i, Diagnostics* out) {
    const Tokens& toks = f.tokens;
    Diagnostic d = At(f, toks[i]);
    d.message =
        "reinterpret_cast outside src/util/bytes.*; route byte/text bridging through "
        "comma::util::AsBytePtr/AsCharPtr";
    // Fixable shapes: reinterpret_cast < const (char|uint8_t) * > — the
    // call argument that follows is untouched.
    if (i + 5 < toks.size() && toks[i + 1].IsPunct("<") && toks[i + 2].IsIdent("const") &&
        toks[i + 4].IsPunct("*") && toks[i + 5].IsPunct(">")) {
      std::string helper;
      if (toks[i + 3].IsIdent("char")) {
        helper = "comma::util::AsCharPtr";
      } else if (toks[i + 3].IsIdent("uint8_t")) {
        helper = "comma::util::AsBytePtr";
      }
      if (!helper.empty()) {
        FixIt fix;
        fix.begin = toks[i].begin;
        fix.end = toks[i + 5].end;
        fix.replacement = helper;
        fix.required_include = "src/util/bytes.h";
        d.fix = fix;
      }
    }
    if (!f.IsSuppressed(d.rule, d.line)) {
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

RulePtr MakeBytesRawCastRule() { return std::make_unique<BytesRawCastRule>(); }

}  // namespace comma::lint

// The comma-lint rule engine.
//
// Each rule sees the whole project (some contracts, like filter-contract,
// span files) and appends diagnostics. Rules decide their own path scope —
// e.g. include-layering only constrains src/, while bytes-raw-cast also
// polices tests. The catalog lives in docs/static-analysis.md; adding a
// rule means one .cc implementing Rule, one line in BuiltinRules(), one
// fixture in tests/lint/testdata, and a catalog entry.
#ifndef COMMA_TOOLS_LINT_RULES_H_
#define COMMA_TOOLS_LINT_RULES_H_

#include <memory>
#include <string_view>
#include <vector>

#include "tools/lint/diagnostic.h"
#include "tools/lint/source.h"

namespace comma::lint {

struct Project {
  std::vector<LintFile> files;
};

class Rule {
 public:
  virtual ~Rule() = default;
  // The bare rule name; diagnostics and NOLINT categories prepend "comma-".
  virtual std::string_view name() const = 0;
  // One-line description for --list-rules and the docs.
  virtual std::string_view description() const = 0;
  // True when the rule attaches FixIts that --fix may apply.
  virtual bool fixable() const { return false; }
  virtual void Check(const Project& project, Diagnostics* out) const = 0;
};

using RulePtr = std::unique_ptr<Rule>;

// Factories, one per rule (each defined in its rule_*.cc).
RulePtr MakeSeqRawCompareRule();
RulePtr MakeBytesRawCastRule();
RulePtr MakeCheckSideEffectRule();
RulePtr MakeMetricNameStyleRule();
RulePtr MakeIncludeLayeringRule();
RulePtr MakeFilterContractRule();

// All six launch rules, in catalog order.
std::vector<RulePtr> BuiltinRules();

// Shared helper: true when `path` is under `prefix` ("src/" etc.).
inline bool PathUnder(std::string_view path, std::string_view prefix) {
  return path.substr(0, prefix.size()) == prefix;
}

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_RULES_H_

// The comma-lint rule engine.
//
// Each rule sees the whole project (some contracts, like filter-contract,
// span files) and appends diagnostics. Rules decide their own path scope —
// e.g. include-layering only constrains src/, while bytes-raw-cast also
// polices tests. The catalog lives in docs/static-analysis.md; adding a
// rule means one .cc implementing Rule, one line in BuiltinRules(), one
// fixture in tests/lint/testdata, and a catalog entry.
#ifndef COMMA_TOOLS_LINT_RULES_H_
#define COMMA_TOOLS_LINT_RULES_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/diagnostic.h"
#include "tools/lint/index/symbol_index.h"
#include "tools/lint/source.h"

namespace comma::lint {

struct Project {
  std::vector<LintFile> files;
  // The repo's DESIGN.md, when present at the scan root. Not a lintable
  // file itself: the lock-order rule reads its §"Lock hierarchy" table, so
  // the declared lock ranks and the code that takes the locks travel in the
  // same commit.
  LintFile design;
  bool has_design = false;
  // Markdown that references metric names (docs/*.md plus README.md at the
  // scan root). Input to metric-consistency: `watch`/`stats` examples in
  // the docs must name metrics that exist in code.
  std::vector<LintFile> docs;
  // Pass-1 semantic index over `files` (index.per_file[i] matches
  // files[i]). The cross-file rules — checkpoint-blob-symmetry,
  // guarded-field-flow, metric-consistency — query this instead of
  // re-walking tokens.
  ProjectIndex index;
};

class Rule {
 public:
  virtual ~Rule() = default;
  // The bare rule name; diagnostics and NOLINT categories prepend "comma-".
  virtual std::string_view name() const = 0;
  // One-line description for --list-rules and the docs.
  virtual std::string_view description() const = 0;
  // True when the rule attaches FixIts that --fix may apply.
  virtual bool fixable() const { return false; }
  virtual void Check(const Project& project, Diagnostics* out) const = 0;
};

using RulePtr = std::unique_ptr<Rule>;

// One sanctioned use of a banned nondeterminism API: `api` (the banned
// identifier, or "*" for all of them) is permitted in `file` (exact path
// relative to the scan root). Mirrors include-layering's AllowedEdge table:
// extending the allowlist is an architectural decision made in code review,
// not an inline suppression.
struct NondetAllowance {
  std::string file;
  std::string api;
};

// Factories, one per rule (each defined in its rule_*.cc).
RulePtr MakeSeqRawCompareRule();
RulePtr MakeBytesRawCastRule();
RulePtr MakeCheckSideEffectRule();
RulePtr MakeMetricNameStyleRule();
RulePtr MakeIncludeLayeringRule();
RulePtr MakeFilterContractRule();
RulePtr MakeMutexAnnotationRule();
RulePtr MakeNondeterminismRule();  // Built-in (kNondetAllowlist) allowances.
RulePtr MakeNondeterminismRule(std::vector<NondetAllowance> allow);
RulePtr MakeLockOrderRule();
RulePtr MakeNolintReasonRule();
RulePtr MakeBlobSymmetryRule();       // checkpoint-blob-symmetry
RulePtr MakeGuardedFlowRule();        // guarded-field-flow
RulePtr MakeMetricConsistencyRule();  // metric-consistency
RulePtr MakeBufferLifetimeRule();     // buffer-lifetime

// All builtin rules, in catalog order.
std::vector<RulePtr> BuiltinRules();

// The catalog names in the same order, without instantiating the rules
// (the nolint-reason rule consults this; a rule constructing the catalog
// inside BuiltinRules() would recurse).
const std::vector<std::string_view>& BuiltinRuleNames();

// Shared helper: true when `path` is under `prefix` ("src/" etc.).
inline bool PathUnder(std::string_view path, std::string_view prefix) {
  return path.substr(0, prefix.size()) == prefix;
}

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_RULES_H_

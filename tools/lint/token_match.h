// Small token-pattern helpers shared by the rule implementations.
#ifndef COMMA_TOOLS_LINT_TOKEN_MATCH_H_
#define COMMA_TOOLS_LINT_TOKEN_MATCH_H_

#include <cstddef>
#include <optional>
#include <string>

#include "tools/lint/token.h"

namespace comma::lint {

inline constexpr size_t kNpos = static_cast<size_t>(-1);

// Index of the ')' matching the '(' at `open`, or kNpos. Also used for
// '<...>' is NOT supported — angle brackets don't nest reliably in C++.
inline size_t MatchingParen(const Tokens& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].IsPunct("(")) {
      ++depth;
    } else if (toks[i].IsPunct(")")) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return kNpos;
}

// Index of the '(' matching the ')' at `close`, or kNpos.
inline size_t MatchingParenBack(const Tokens& toks, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (toks[i].IsPunct(")")) {
      ++depth;
    } else if (toks[i].IsPunct("(")) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return kNpos;
}

// Index of the '}' matching the '{' at `open`, or kNpos.
inline size_t MatchingBrace(const Tokens& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].IsPunct("{")) {
      ++depth;
    } else if (toks[i].IsPunct("}")) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return kNpos;
}

// A postfix-expression chain of identifiers, member accesses, and calls —
// `p.tcp().seq`, `stats_.acks`, `rcv_nxt_`. `begin`/`end` are inclusive
// token indices; `name` is the rightmost plain identifier, which is what
// naming-convention rules judge.
struct Chain {
  size_t begin = 0;
  size_t end = 0;
  std::string name;
};

// Parses a chain whose last token is at `last` (walking left). `last` must
// be an identifier. Returns nullopt when the token stream does not end a
// chain there.
inline std::optional<Chain> ChainEndingAt(const Tokens& toks, size_t last) {
  if (last >= toks.size() || toks[last].kind != TokenKind::kIdentifier) {
    return std::nullopt;
  }
  Chain chain;
  chain.end = last;
  chain.name = toks[last].text;
  size_t j = last;
  while (j >= 2) {
    const Token& sep = toks[j - 1];
    if (!sep.IsPunct(".") && !sep.IsPunct("->") && !sep.IsPunct("::")) {
      break;
    }
    if (toks[j - 2].kind == TokenKind::kIdentifier) {
      j -= 2;
      continue;
    }
    if (toks[j - 2].IsPunct(")")) {
      const size_t open = MatchingParenBack(toks, j - 2);
      if (open == kNpos || open == 0 || toks[open - 1].kind != TokenKind::kIdentifier) {
        break;
      }
      j = open - 1;
      continue;
    }
    break;
  }
  chain.begin = j;
  return chain;
}

// Parses a chain starting at `first` (walking right). `first` must be an
// identifier.
inline std::optional<Chain> ChainStartingAt(const Tokens& toks, size_t first) {
  if (first >= toks.size() || toks[first].kind != TokenKind::kIdentifier) {
    return std::nullopt;
  }
  Chain chain;
  chain.begin = first;
  chain.end = first;
  chain.name = toks[first].text;
  size_t j = first;
  while (j + 1 < toks.size()) {
    const Token& next = toks[j + 1];
    if (next.IsPunct("(")) {
      const size_t close = MatchingParen(toks, j + 1);
      if (close == kNpos) {
        break;
      }
      j = close;
      chain.end = j;
      continue;
    }
    if ((next.IsPunct(".") || next.IsPunct("->") || next.IsPunct("::")) && j + 2 < toks.size() &&
        toks[j + 2].kind == TokenKind::kIdentifier) {
      j += 2;
      chain.end = j;
      chain.name = toks[j].text;
      continue;
    }
    break;
  }
  return chain;
}

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_TOKEN_MATCH_H_

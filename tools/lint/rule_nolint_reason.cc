// nolint-reason — a suppression without a reason is a time bomb.
//
// comma-lint already refuses bare `// NOLINT` (the rule must be named, see
// source.cc). This rule tightens the contract one step: a suppression that
// names a comma rule must also say *why* the site is exempt, in the
// trailing-comment form the docs mandate:
//
//   ... // NOLINT(comma-filter-contract): no data-path direction; acts at
//                                         stream creation only
//
// Six months later the reason is the difference between "this exemption is
// load-bearing" and "nobody remembers, better not touch it". Suppressions
// of third-party rules (clang-tidy's cppcoreguidelines-*, etc.) are not
// comma-lint's business and are ignored.
//
// This rule deliberately does NOT honor NOLINT(nolint-reason) suppression:
// a bare suppression that silences the rule demanding reasons would be
// self-defeating. The only way to quiet it is to write the reason. The
// linter's own sources and tests (tools/lint, tests/lint) spell out bare
// suppressions as examples and test vectors, so they are out of scope.
#include <string>

#include "tools/lint/rules.h"

namespace comma::lint {
namespace {

// True when the NOLINT list `list` names at least one comma rule (either
// the bare name or the "comma-" prefixed spelling).
bool NamesCommaRule(std::string_view list) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma_at = list.find(',', pos);
    if (comma_at == std::string_view::npos) {
      comma_at = list.size();
    }
    std::string_view item = list.substr(pos, comma_at - pos);
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    std::string_view bare = item;
    if (bare.substr(0, 6) == "comma-") {
      bare.remove_prefix(6);
    }
    for (std::string_view rule : BuiltinRuleNames()) {
      if (bare == rule) {
        return true;
      }
    }
    if (comma_at == list.size()) {
      break;
    }
    pos = comma_at + 1;
  }
  return false;
}

class NolintReasonRule : public Rule {
 public:
  std::string_view name() const override { return "nolint-reason"; }
  std::string_view description() const override {
    return "comma-lint suppressions must carry a trailing reason: NOLINT(<rule>): <why>";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      if (PathUnder(f.path, "tools/lint/") || PathUnder(f.path, "tests/lint/")) {
        continue;  // The linter's own sources quote bare suppressions.
      }
      for (size_t i = 0; i < f.lines.size(); ++i) {
        CheckLine(f, f.lines[i], static_cast<int>(i + 1), out);
      }
    }
  }

 private:
  static void CheckLine(const LintFile& f, const std::string& line, int line_no,
                        Diagnostics* out) {
    size_t at = line.find("NOLINT");
    while (at != std::string::npos) {
      const bool nextline = line.compare(at, 14, "NOLINTNEXTLINE") == 0;
      const size_t open = at + (nextline ? 14 : 6);
      if (open >= line.size() || line[open] != '(') {
        at = line.find("NOLINT", at + 1);
        continue;  // Bare NOLINT never silences comma-lint; nothing to demand.
      }
      const size_t close = line.find(')', open);
      if (close == std::string::npos ||
          !NamesCommaRule(std::string_view(line).substr(open + 1, close - open - 1))) {
        at = line.find("NOLINT", close == std::string::npos ? at + 1 : close);
        continue;
      }
      if (!HasReason(line, close)) {
        Diagnostic d;
        d.file = f.path;
        d.line = line_no;
        d.col = static_cast<int>(at) + 1;
        d.rule = "nolint-reason";
        d.message =
            "comma-lint suppression is missing its reason; write "
            "`NOLINT(<rule>): <why this site is exempt>`";
        out->push_back(std::move(d));  // Not IsSuppressed-gated: see header comment.
      }
      at = line.find("NOLINT", close);
    }
  }

  // `): <non-empty reason>` after the close paren at `close`.
  static bool HasReason(const std::string& line, size_t close) {
    size_t p = close + 1;
    if (p >= line.size() || line[p] != ':') {
      return false;
    }
    ++p;
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
      ++p;
    }
    return p < line.size();
  }
};

}  // namespace

RulePtr MakeNolintReasonRule() { return std::make_unique<NolintReasonRule>(); }

}  // namespace comma::lint

// End-to-end lint driver shared by the comma-lint binary and tests/lint.
#ifndef COMMA_TOOLS_LINT_RUNNER_H_
#define COMMA_TOOLS_LINT_RUNNER_H_

#include <string>
#include <vector>

#include "tools/lint/diagnostic.h"
#include "tools/lint/rules.h"

namespace comma::lint {

struct LintOptions {
  // Directory diagnostics are reported relative to; paths below are
  // resolved against it.
  std::string root = ".";
  // Files or directories (relative to root) to scan; directories are
  // walked recursively for *.h / *.cc. Defaults to {"src", "tests",
  // "tools"}; default entries missing under root are skipped (explicitly
  // named paths still error).
  std::vector<std::string> paths;
  // Restrict to these rule names; empty means all builtin rules.
  std::vector<std::string> rules;
  // Baseline file (relative to root or absolute). Empty disables.
  std::string baseline_path;
  bool write_baseline = false;
  // Rewrite the baseline without its stale entries (entries no finding
  // consumed this run). Mutually meaningful with baseline_path only.
  bool prune_baseline = false;
  bool apply_fixes = false;
  // Pass-1 index cache file (relative to root or absolute). Empty disables
  // caching; the index is then rebuilt from scratch (tools/lint/index/).
  std::string index_cache_path;
  // Worker threads for the file scan (tools/lint/scan_pool.h). Results are
  // independent of the value: files load into fixed slots and the rules run
  // after the barrier.
  int jobs = 1;
};

// Per-rule tally for the run summary (CI renders this as a table).
struct RuleCount {
  std::string rule;
  int findings = 0;
  int baselined = 0;
};

struct LintResult {
  Diagnostics findings;    // New findings (post NOLINT + baseline), sorted.
  Diagnostics baselined;   // Findings absorbed by the baseline, sorted.
  int files_scanned = 0;
  int fixes_applied = 0;
  std::vector<std::string> fixed_files;  // Relative paths rewritten by --fix.
  std::vector<RuleCount> rule_counts;    // One entry per active rule, catalog order.
  // Baseline entries loaded but unmatched this run (fixed findings whose
  // entries linger). Reported in every summary; --prune-baseline drops them.
  int stale_baseline = 0;
  // Pass-1 index cache effectiveness, for the CI step summary.
  int index_cache_hits = 0;
  int index_cache_misses = 0;
};

// Runs the configured rules. Returns false (with *error set) only on
// environment problems — unreadable root, bad baseline, bad rule name;
// findings are success with a non-empty `findings`.
bool RunLint(const LintOptions& options, LintResult* result, std::string* error);

// The per-rule tally as a markdown table, for $GITHUB_STEP_SUMMARY.
// Sorted by rule id, then finding count — not catalog order — so the table
// is diffable across runs and across catalog reorderings.
std::string RenderCountsMarkdown(const LintResult& result);

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_RUNNER_H_

// metric-consistency — the metric namespace as one cross-file contract.
//
// metric-name-style (PR 4) checks each registration literal in isolation;
// this rule checks the *set*. Three invariants, all enforced from the
// pass-1 index (MetricRef / metric_prefixes / watch_refs), so no tokens are
// re-walked here:
//
//  1. One name, one family. GetCounter/GetGauge/GetHistogram are
//     get-or-create, so registering the same name from many sites is fine —
//     but registering it as a counter in one file and a gauge in another
//     silently forks the metric (the registry interns per family).
//  2. Register{Counter,Gauge}Source replaces on re-register
//     (src/obs/metric_registry.h), so two source registrations for one name
//     is a real bug: the second silently wins.
//  3. Every metric name referenced outside the registry must exist in it:
//     `watch <name> ...` command literals in code, and metric references in
//     docs/*.md and README.md. An orphaned reference is a broken runbook —
//     the Kati example would answer "unknown variable". Names that are not
//     in the EEM-bridged namespace (ifInErrors and other EEM-native
//     variables) are not metric references and are skipped; so are
//     placeholders ("sp.filter.<name>.drops") past the '<', globs past the
//     '*', and histogram sub-fields (resolved against the base name).
//
// Registration scope is src/ — tests intern synthetic names on purpose.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/metric_namespace.h"
#include "tools/lint/rules.h"

namespace comma::lint {
namespace {

std::string_view FamilyName(MetricFamily f) {
  switch (f) {
    case MetricFamily::kCounter:
      return "counter";
    case MetricFamily::kGauge:
      return "gauge";
    case MetricFamily::kHistogram:
      return "histogram";
  }
  return "?";
}

struct RefSite {
  const LintFile* file = nullptr;
  MetricFamily family = MetricFamily::kCounter;
  bool is_source = false;
  int line = 0;
  int col = 0;
};

// The registered-name universe a reference resolves against.
struct Universe {
  std::set<std::string> names;
  std::set<std::string> prefixes;  // Dynamic prefixes like "sp.filter.".

  bool Resolves(std::string name) const {
    // A trailing dot is a prefix mention ("the sp.recovery. namespace").
    const bool is_prefix_ref = !name.empty() && name.back() == '.';
    if (is_prefix_ref) {
      name.pop_back();
    }
    // Placeholders and globs resolve up to the variable part.
    for (const char wildcard : {'<', '*'}) {
      const size_t pos = name.find(wildcard);
      if (pos != std::string::npos) {
        name = name.substr(0, pos);
        while (!name.empty() && name.back() == '.') {
          name.pop_back();
        }
        return name.empty() || ResolvesPrefix(name);
      }
    }
    if (is_prefix_ref) {
      return ResolvesPrefix(name);
    }
    if (names.count(name) != 0 || UnderDynamicPrefix(name)) {
      return true;
    }
    // Histogram sub-field: "trace.filter_us.p99" -> "trace.filter_us".
    const size_t dot = name.rfind('.');
    if (dot != std::string::npos && IsHistogramFieldSuffix(std::string_view(name).substr(dot + 1))) {
      const std::string base = name.substr(0, dot);
      return names.count(base) != 0 || UnderDynamicPrefix(base);
    }
    return false;
  }

 private:
  bool ResolvesPrefix(const std::string& p) const {
    for (const std::string& name : names) {
      if (name.size() >= p.size() && name.compare(0, p.size(), p) == 0) {
        return true;
      }
    }
    for (const std::string& prefix : prefixes) {
      if (prefix.compare(0, p.size(), p) == 0 || p.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
    return false;
  }

  bool UnderDynamicPrefix(const std::string& name) const {
    for (const std::string& prefix : prefixes) {
      if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
    return false;
  }
};

class MetricConsistencyRule : public Rule {
 public:
  std::string_view name() const override { return "metric-consistency"; }
  std::string_view description() const override {
    return "metric names must register under one family, one source site, and every "
           "docs/watch reference must resolve";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    std::map<std::string, std::vector<RefSite>> by_name;
    Universe universe;
    for (size_t fi = 0; fi < project.files.size() && fi < project.index.per_file.size(); ++fi) {
      const LintFile& f = project.files[fi];
      if (!PathUnder(f.path, "src/")) {
        continue;
      }
      const FileIndex& idx = project.index.per_file[fi];
      for (const MetricRef& ref : idx.metric_refs) {
        by_name[ref.name].push_back({&f, ref.family, ref.is_source, ref.line, ref.col});
        universe.names.insert(ref.name);
      }
      for (const std::string& prefix : idx.metric_prefixes) {
        universe.prefixes.insert(prefix);
      }
    }

    // 1 + 2: family conflicts and duplicate source registrations. Sites are
    // already in (file, line) order because the index is built in file
    // order; the first site wins and later conflicting sites are flagged.
    for (const auto& [name, sites] : by_name) {
      const RefSite& first = sites.front();
      int source_sites = 0;
      for (const RefSite& site : sites) {
        if (site.family != first.family) {
          Emit(*site.file, site.line, site.col,
               "metric '" + name + "' is registered as a " + std::string(FamilyName(site.family)) +
                   " here but as a " + std::string(FamilyName(first.family)) + " in " +
                   first.file->path + ":" + std::to_string(first.line) +
                   "; the registry interns per family, so this silently forks the metric",
               out);
        }
        if (site.is_source && ++source_sites > 1) {
          Emit(*site.file, site.line, site.col,
               "metric '" + name +
                   "' has a second Register*Source site; source registrations replace, so "
                   "this one silently wins over the earlier site",
               out);
        }
      }
    }

    // 3a: `watch <name>` literals in src/ must resolve.
    for (size_t fi = 0; fi < project.files.size() && fi < project.index.per_file.size(); ++fi) {
      const LintFile& f = project.files[fi];
      if (!PathUnder(f.path, "src/")) {
        continue;
      }
      for (const FileIndex::WatchRef& ref : project.index.per_file[fi].watch_refs) {
        if (!MetricReference(ref.name) || universe.Resolves(ref.name)) {
          continue;
        }
        Emit(f, ref.line, ref.col,
             "watch example references metric '" + ref.name +
                 "', which no src/ registration site interns (orphan)",
             out);
      }
    }

    // 3b: metric references in the docs must resolve.
    for (const LintFile& doc : project.docs) {
      for (size_t li = 0; li < doc.lines.size(); ++li) {
        for (const auto& [name, col] : DocMetricTokens(doc.lines[li])) {
          if (universe.Resolves(name)) {
            continue;
          }
          Diagnostic d;
          d.file = doc.path;
          d.line = static_cast<int>(li + 1);
          d.col = col;
          d.rule = "metric-consistency";
          d.message = "doc references metric '" + name +
                      "', which no src/ registration site interns (orphan)";
          out->push_back(std::move(d));
        }
      }
    }
  }

 private:
  // A watch ref is only a metric reference when it is inside the bridged
  // namespace; "watch ifInErrors" watches an EEM-native variable.
  static bool MetricReference(const std::string& name) { return IsMetricName(name); }

  // Metric-shaped words of one markdown line, with their 1-based columns.
  // A candidate is a maximal run of [a-zA-Z0-9_.<>*] containing a '.'; it
  // counts when the part up to the first placeholder/glob is a well-formed
  // (possibly truncated-at-dot) metric name.
  static std::vector<std::pair<std::string, int>> DocMetricTokens(const std::string& line) {
    std::vector<std::pair<std::string, int>> out;
    size_t i = 0;
    const auto is_word = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
             c == '_' || c == '.' || c == '<' || c == '>' || c == '*';
    };
    while (i < line.size()) {
      if (!is_word(line[i])) {
        ++i;
        continue;
      }
      size_t j = i;
      while (j < line.size() && is_word(line[j])) {
        ++j;
      }
      // Not a metric reference: a path fragment ("docs/parallel-sim.md"
      // splits at '-' and '/'), or a C++ call expression ("sp.metrics()").
      if ((i > 0 && (line[i - 1] == '-' || line[i - 1] == '/')) ||
          (j < line.size() && line[j] == '(')) {
        i = j;
        continue;
      }
      const std::string word = line.substr(i, j - i);
      // A trailing dot (sentence end or prefix mention) and wildcards are
      // fine: Resolves() treats both as prefix references.
      const size_t wildcard = word.find_first_of("<*");
      std::string head = wildcard == std::string::npos ? word : word.substr(0, wildcard);
      while (!head.empty() && head.back() == '.') {
        head.pop_back();
      }
      if (IsMetricName(head)) {
        out.emplace_back(word, static_cast<int>(i + 1));
      }
      i = j;
    }
    return out;
  }

  static void Emit(const LintFile& f, int line, int col, std::string message, Diagnostics* out) {
    Diagnostic d;
    d.file = f.path;
    d.line = line;
    d.col = col;
    d.rule = "metric-consistency";
    d.message = std::move(message);
    if (!f.IsSuppressed(d.rule, d.line)) {
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

RulePtr MakeMetricConsistencyRule() { return std::make_unique<MetricConsistencyRule>(); }

}  // namespace comma::lint

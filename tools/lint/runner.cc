#include "tools/lint/runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "tools/lint/baseline.h"
#include "tools/lint/fixer.h"
#include "tools/lint/index/index_cache.h"
#include "tools/lint/scan_pool.h"

namespace comma::lint {
namespace {

namespace fs = std::filesystem;

bool IsLintableFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

// Directories never scanned: build trees and the linter's own fixture
// corpus of deliberately-bad files.
bool IsSkippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0 || name == ".git";
}

std::string RelPath(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

void CollectFiles(const fs::path& base, const fs::path& root, std::set<std::string>* out) {
  if (fs::is_regular_file(base)) {
    if (IsLintableFile(base)) {
      out->insert(RelPath(base, root));
    }
    return;
  }
  if (!fs::is_directory(base)) {
    return;
  }
  for (auto it = fs::recursive_directory_iterator(base); it != fs::recursive_directory_iterator();
       ++it) {
    if (it->is_directory() && IsSkippedDir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsLintableFile(it->path())) {
      out->insert(RelPath(it->path(), root));
    }
  }
}

}  // namespace

bool RunLint(const LintOptions& options, LintResult* result, std::string* error) {
  const fs::path root = fs::path(options.root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    *error = "root is not a directory: " + options.root;
    return false;
  }

  // Resolve the rule set.
  std::vector<RulePtr> all = BuiltinRules();
  std::vector<const Rule*> active;
  for (const RulePtr& r : all) {
    if (options.rules.empty() ||
        std::find(options.rules.begin(), options.rules.end(), r->name()) != options.rules.end()) {
      active.push_back(r.get());
    }
  }
  if (!options.rules.empty() && active.size() != options.rules.size()) {
    // Name the offender and print the catalog: a typo'd --rule should not
    // send the user to a second command to find the right spelling.
    std::string unknown;
    for (const std::string& want : options.rules) {
      bool found = false;
      for (const RulePtr& r : all) {
        if (r->name() == want) {
          found = true;
          break;
        }
      }
      if (!found) {
        unknown += (unknown.empty() ? "" : ", ") + want;
      }
    }
    *error = "unknown rule name: " + unknown + "\navailable rules:";
    for (const RulePtr& r : all) {
      *error += "\n  comma-" + std::string(r->name()) + "  " + std::string(r->description());
    }
    return false;
  }

  // Collect and load files. Default paths tolerate a missing directory
  // (a checkout without tools/ is still lintable); explicit paths do not.
  const bool default_paths = options.paths.empty();
  std::vector<std::string> scan_paths =
      default_paths ? std::vector<std::string>{"src", "tests", "tools"} : options.paths;
  std::set<std::string> rel_paths;
  for (const std::string& p : scan_paths) {
    const fs::path base = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (!fs::exists(base, ec)) {
      if (default_paths) {
        continue;
      }
      *error = "no such path: " + base.string();
      return false;
    }
    CollectFiles(base, root, &rel_paths);
  }
  Project project;
  const std::vector<std::string> rels(rel_paths.begin(), rel_paths.end());
  if (!ScanPool::LoadAll(root, rels, options.jobs, &project.files, error)) {
    return false;
  }
  result->files_scanned = static_cast<int>(project.files.size());

  // DESIGN.md (the lock-hierarchy table) rides along when present; it is
  // input to the lock-order rule, not a linted file.
  const fs::path design = root / "DESIGN.md";
  if (fs::is_regular_file(design, ec)) {
    project.has_design = LoadLintFile(design.string(), "DESIGN.md", &project.design);
  }

  // docs/*.md and README.md feed metric-consistency (watch examples must
  // name real metrics). Sorted for deterministic diagnostic order.
  {
    std::set<std::string> doc_rels;
    const fs::path docs_dir = root / "docs";
    if (fs::is_directory(docs_dir, ec)) {
      for (const auto& entry : fs::directory_iterator(docs_dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".md") {
          doc_rels.insert(RelPath(entry.path(), root));
        }
      }
    }
    if (fs::is_regular_file(root / "README.md", ec)) {
      doc_rels.insert("README.md");
    }
    for (const std::string& rel : doc_rels) {
      LintFile doc;
      if (LoadLintFile((root / rel).string(), rel, &doc)) {
        project.docs.push_back(std::move(doc));
      }
    }
  }

  // Pass 1: the semantic index, by content hash through the cache when one
  // is configured. A cold cache (missing/corrupt/version-skewed file) just
  // re-extracts everything.
  IndexCache cache;
  const bool use_cache = !options.index_cache_path.empty();
  const fs::path cache_path = use_cache ? (fs::path(options.index_cache_path).is_absolute()
                                               ? fs::path(options.index_cache_path)
                                               : root / options.index_cache_path)
                                        : fs::path();
  if (use_cache) {
    cache.Load(cache_path.string());
  }
  std::vector<FileIndex> per_file;
  per_file.reserve(project.files.size());
  for (const LintFile& f : project.files) {
    const uint64_t hash = IndexContentHash(f.content);
    FileIndex fi;
    if (use_cache && cache.Lookup(hash, &fi)) {
      ++result->index_cache_hits;
    } else {
      fi = IndexFile(f);
      ++result->index_cache_misses;
      if (use_cache) {
        cache.Insert(hash, fi);
      }
    }
    per_file.push_back(std::move(fi));
  }
  project.index = ProjectIndex::Build(per_file);
  if (use_cache) {
    cache.Save(cache_path.string());  // Best-effort; a read-only FS is fine.
  }

  // Run the rules. NOLINT suppression happens inside each rule (it knows
  // the finding's anchor line).
  Diagnostics raw;
  for (const Rule* rule : active) {
    rule->Check(project, &raw);
  }
  std::sort(raw.begin(), raw.end(), DiagnosticOrder);

  // Baseline split.
  Baseline baseline;
  if (!options.baseline_path.empty()) {
    const fs::path bp = fs::path(options.baseline_path).is_absolute()
                            ? fs::path(options.baseline_path)
                            : root / options.baseline_path;
    if (!baseline.Load(bp.string(), error)) {
      return false;
    }
  }
  for (Diagnostic& d : raw) {
    const LintFile* file = nullptr;
    for (const LintFile& f : project.files) {
      if (f.path == d.file) {
        file = &f;
        break;
      }
    }
    const std::string line_text = file != nullptr ? file->Line(d.line) : std::string();
    if (baseline.Absorb(d, line_text)) {
      result->baselined.push_back(std::move(d));
    } else {
      result->findings.push_back(std::move(d));
    }
  }
  result->stale_baseline = baseline.StaleCount();

  // Per-rule tally, one row per active rule in catalog order (zero rows
  // included: "this rule ran and found nothing" is the interesting datum).
  for (const Rule* rule : active) {
    RuleCount count;
    count.rule = std::string(rule->name());
    for (const Diagnostic& d : result->findings) {
      count.findings += d.rule == count.rule ? 1 : 0;
    }
    for (const Diagnostic& d : result->baselined) {
      count.baselined += d.rule == count.rule ? 1 : 0;
    }
    result->rule_counts.push_back(std::move(count));
  }

  if (options.write_baseline && !options.baseline_path.empty()) {
    const fs::path bp = fs::path(options.baseline_path).is_absolute()
                            ? fs::path(options.baseline_path)
                            : root / options.baseline_path;
    std::ofstream out(bp.string(), std::ios::trunc);
    if (!out) {
      *error = "cannot write baseline " + bp.string();
      return false;
    }
    out << Baseline::Render(result->findings, project);
  } else if (options.prune_baseline && !options.baseline_path.empty() &&
             result->stale_baseline > 0) {
    // Drop the entries nothing matched; the consumed ones survive verbatim.
    const fs::path bp = fs::path(options.baseline_path).is_absolute()
                            ? fs::path(options.baseline_path)
                            : root / options.baseline_path;
    std::ofstream out(bp.string(), std::ios::trunc);
    if (!out) {
      *error = "cannot write baseline " + bp.string();
      return false;
    }
    out << baseline.RenderPruned();
  }

  if (options.apply_fixes) {
    std::map<std::string, std::vector<FixIt>> by_file;
    for (const Diagnostic& d : result->findings) {
      if (d.fix) {
        by_file[d.file].push_back(*d.fix);
      }
    }
    for (auto& [rel, fixes] : by_file) {
      const LintFile* file = nullptr;
      for (const LintFile& f : project.files) {
        if (f.path == rel) {
          file = &f;
          break;
        }
      }
      const std::string fixed = ApplyFixes(file->content, fixes);
      if (fixed == file->content) {
        continue;
      }
      std::ofstream out((root / rel).string(), std::ios::trunc | std::ios::binary);
      if (!out) {
        *error = "cannot rewrite " + rel;
        return false;
      }
      out << fixed;
      result->fixes_applied += static_cast<int>(fixes.size());
      result->fixed_files.push_back(rel);
    }
  }
  return true;
}

std::string RenderCountsMarkdown(const LintResult& result) {
  std::vector<RuleCount> counts = result.rule_counts;
  std::sort(counts.begin(), counts.end(), [](const RuleCount& a, const RuleCount& b) {
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.findings < b.findings;
  });
  std::string out = "| rule | findings | baselined |\n|---|---:|---:|\n";
  for (const RuleCount& c : counts) {
    out += "| comma-" + c.rule + " | " + std::to_string(c.findings) + " | " +
           std::to_string(c.baselined) + " |\n";
  }
  return out;
}

}  // namespace comma::lint

// nondeterminism-ban — the deterministic core must stay replayable.
//
// The simulator's whole value (and the fault-replay oracle's correctness,
// tools/faultcheck) rests on bit-for-bit reproducibility: the same scenario
// and seed must produce the same event trace, the same metric snapshot, the
// same packet bytes. That breaks the moment deterministic code reads a wall
// clock, OS entropy, or the environment — or iterates a hash container
// keyed by pointer, whose order is whatever the allocator handed out this
// run.
//
// Scope: src/sim, src/core, src/proxy, src/tcp — the modules on the
// simulated event path. The simulator clock (sim::Simulator::Now) and the
// seeded sim::Random are the only sanctioned time/randomness sources;
// anything else below is banned:
//
//   std::rand / srand          unseeded global RNG
//   std::random_device         OS entropy
//   time() / clock()           wall clock (libc)
//   system_clock / steady_clock / high_resolution_clock::now()  (chrono)
//   getenv                     host-dependent configuration
//   std::unordered_{map,set,multimap,multiset} with a pointer key
//                              address-ordered iteration
//
// Escapes go through the allowlist table below (like include-layering's
// edge table), reviewed in the same commit — not through inline NOLINT.
#include <array>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

constexpr std::array<std::string_view, 4> kModules = {
    "src/sim/", "src/core/", "src/proxy/", "src/tcp/",
};

// Sanctioned uses of banned APIs. The sim clock and sim::Random are
// implemented without OS entropy or wall clocks, and src/proxy's one
// steady_clock read was replaced by a deterministic work count
// (sp.queue_resolve_work); only wall-clock *telemetry* that never feeds
// event ordering belongs here. Format:
//   {"src/sim/random.cc", "random_device"}  // one API in one file
//   {"src/sim/debug.cc", "*"}               // every banned API in the file
constexpr struct {
  std::string_view file;
  std::string_view api;
} kNondetAllowlist[] = {
    // Barrier-wait telemetry: the parallel epoch loop times how long
    // workers sit at the barrier (sim.barrier_wait_us). Wall clock by
    // nature, never feeds event ordering, and the determinism harness
    // filters it out of witnesses (testing::FilterWallClockMetrics).
    {"src/sim/simulator.cc", "steady_clock"},
};

constexpr std::array<std::string_view, 4> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
};

bool InScope(std::string_view path) {
  for (std::string_view m : kModules) {
    if (path.substr(0, m.size()) == m) {
      return true;
    }
  }
  return false;
}

// True when the identifier at `i` is qualified by something other than
// `std` (e.g. `sim::Random::rand` would be, `std::rand` and bare `rand`
// are not).
bool HasNonStdQualifier(const Tokens& toks, size_t i) {
  if (i < 2 || !toks[i - 1].IsPunct("::")) {
    return false;
  }
  return !(toks[i - 2].IsIdent("std") || toks[i - 2].IsIdent("chrono"));
}

bool IsMemberAccess(const Tokens& toks, size_t i) {
  return i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"));
}

// Walks the template argument list opened by the '<' at `open` and returns
// true when the *first* (key) argument contains a '*' at its top level —
// a pointer-keyed container. Tolerates nested templates; `>>` closers are
// counted as two.
bool PointerKeyedFirstArg(const Tokens& toks, size_t open) {
  int depth = 1;
  bool in_first_arg = true;
  for (size_t j = open + 1; j < toks.size() && j < open + 128; ++j) {
    const Token& t = toks[j];
    if (t.IsPunct("<")) {
      ++depth;
    } else if (t.IsPunct(">")) {
      if (--depth == 0) {
        return false;
      }
    } else if (t.IsPunct(">>")) {
      depth -= 2;
      if (depth <= 0) {
        return false;
      }
    } else if (t.IsPunct(",") && depth == 1) {
      in_first_arg = false;
    } else if (t.IsPunct("*") && depth == 1 && in_first_arg) {
      return true;
    }
  }
  return false;
}

class NondeterminismRule : public Rule {
 public:
  explicit NondeterminismRule(std::vector<NondetAllowance> allow) : allow_(std::move(allow)) {}

  std::string_view name() const override { return "nondeterminism-ban"; }
  std::string_view description() const override {
    return "src/{sim,core,proxy,tcp} may not read wall clocks, OS entropy, getenv, or iterate "
           "pointer-keyed hash containers";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      if (!InScope(f.path)) {
        continue;
      }
      const Tokens& toks = f.tokens;
      for (size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdentifier) {
          continue;
        }
        std::string api;
        std::string message;
        if ((t.text == "rand" || t.text == "srand") && NextIsCall(toks, i) &&
            !IsMemberAccess(toks, i) && !HasNonStdQualifier(toks, i)) {
          api = t.text;
          message = "'" + t.text + "()' draws from the unseeded global RNG; draw from the "
                    "scenario's seeded sim::Random instead";
        } else if (t.text == "random_device" && !IsMemberAccess(toks, i) &&
                   !HasNonStdQualifier(toks, i)) {
          api = t.text;
          message = "'std::random_device' taps OS entropy and breaks replay; seed a "
                    "sim::Random from the scenario config";
        } else if ((t.text == "time" || t.text == "clock") && NextIsCall(toks, i) &&
                   !IsMemberAccess(toks, i) && !HasNonStdQualifier(toks, i)) {
          api = t.text;
          message = "wall-clock call '" + t.text + "()' in deterministic code; event time is "
                    "sim::Simulator::Now()";
        } else if ((t.text == "system_clock" || t.text == "steady_clock" ||
                    t.text == "high_resolution_clock") &&
                   !IsMemberAccess(toks, i)) {
          api = t.text;
          message = "wall-clock read via std::chrono::" + t.text + " in deterministic code; "
                    "event time is sim::Simulator::Now()";
        } else if (t.text == "getenv" && NextIsCall(toks, i) && !IsMemberAccess(toks, i) &&
                   !HasNonStdQualifier(toks, i)) {
          api = t.text;
          message = "'getenv()' makes behaviour host-dependent; thread configuration through "
                    "the scenario/config structs";
        } else if (IsUnorderedContainer(t.text) && i + 1 < toks.size() &&
                   toks[i + 1].IsPunct("<") && PointerKeyedFirstArg(toks, i + 1)) {
          api = t.text;
          message = "pointer-keyed std::" + t.text + " iterates in address order, which varies "
                    "run to run; key by a stable id or use an ordered container";
        } else {
          continue;
        }
        if (Allowed(f.path, api)) {
          continue;
        }
        Diagnostic d;
        d.file = f.path;
        d.line = t.line;
        d.col = t.col;
        d.rule = "nondeterminism-ban";
        d.message = std::move(message);
        if (!f.IsSuppressed(d.rule, d.line)) {
          out->push_back(std::move(d));
        }
      }
    }
  }

 private:
  static bool NextIsCall(const Tokens& toks, size_t i) {
    return i + 1 < toks.size() && toks[i + 1].IsPunct("(");
  }

  static bool IsUnorderedContainer(const std::string& text) {
    for (std::string_view c : kUnorderedContainers) {
      if (text == c) {
        return true;
      }
    }
    return false;
  }

  bool Allowed(const std::string& file, const std::string& api) const {
    for (const auto& e : kNondetAllowlist) {
      if (!e.file.empty() && file == e.file && (e.api == "*" || api == e.api)) {
        return true;
      }
    }
    for (const NondetAllowance& e : allow_) {
      if (file == e.file && (e.api == "*" || api == e.api)) {
        return true;
      }
    }
    return false;
  }

  std::vector<NondetAllowance> allow_;
};

}  // namespace

RulePtr MakeNondeterminismRule() {
  return std::make_unique<NondeterminismRule>(std::vector<NondetAllowance>{});
}

RulePtr MakeNondeterminismRule(std::vector<NondetAllowance> allow) {
  return std::make_unique<NondeterminismRule>(std::move(allow));
}

}  // namespace comma::lint

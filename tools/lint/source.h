// Source-file model shared by the rules: raw content, split lines, token
// stream, and NOLINT suppression lookup.
#ifndef COMMA_TOOLS_LINT_SOURCE_H_
#define COMMA_TOOLS_LINT_SOURCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/token.h"

namespace comma::lint {

struct LintFile {
  // Path relative to the scan root, with '/' separators — exactly what
  // diagnostics print and what the baseline stores.
  std::string path;
  std::string content;
  std::vector<std::string> lines;  // lines[i] is line i+1, no newline
  Tokens tokens;

  // Directory component under the scan root: "src/tcp/seq.h" -> "src/tcp".
  std::string Dir() const;
  // Top-level module for layering: "src/tcp/seq.h" -> "tcp"; empty when the
  // file is not under src/.
  std::string SrcModule() const;
  // Filename component: "src/tcp/seq.h" -> "seq.h".
  std::string Filename() const;

  const std::string& Line(int line_number) const;  // 1-based, clamped

  // True when a finding of `rule` at `line` is suppressed by a
  // `NOLINT(<rule-list>)` comment on the same line or a
  // `NOLINTNEXTLINE(<rule-list>)` comment on the previous line. A bare
  // NOLINT without a rule list does NOT silence comma-lint: suppressions
  // must name the rule so the reason survives review
  // (docs/static-analysis.md).
  bool IsSuppressed(std::string_view rule, int line) const;
};

// Builds a LintFile from in-memory content (used directly by tests).
LintFile MakeLintFile(std::string path, std::string content);

// Reads `abs_path` and builds a LintFile carrying `rel_path`. Returns false
// if the file cannot be read.
bool LoadLintFile(const std::string& abs_path, std::string rel_path, LintFile* out);

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_SOURCE_H_

#include "tools/lint/rules.h"

namespace comma::lint {

std::vector<RulePtr> BuiltinRules() {
  std::vector<RulePtr> rules;
  rules.push_back(MakeSeqRawCompareRule());
  rules.push_back(MakeBytesRawCastRule());
  rules.push_back(MakeCheckSideEffectRule());
  rules.push_back(MakeMetricNameStyleRule());
  rules.push_back(MakeIncludeLayeringRule());
  rules.push_back(MakeFilterContractRule());
  rules.push_back(MakeMutexAnnotationRule());
  rules.push_back(MakeNondeterminismRule());
  rules.push_back(MakeLockOrderRule());
  rules.push_back(MakeNolintReasonRule());
  rules.push_back(MakeBlobSymmetryRule());
  rules.push_back(MakeGuardedFlowRule());
  rules.push_back(MakeMetricConsistencyRule());
  rules.push_back(MakeBufferLifetimeRule());
  return rules;
}

const std::vector<std::string_view>& BuiltinRuleNames() {
  // Kept in lockstep with BuiltinRules(); tests/lint cross-checks the two.
  static const std::vector<std::string_view> kNames = {
      "seq-raw-compare",  "bytes-raw-cast",          "check-side-effect",
      "metric-name-style", "include-layering",       "filter-contract",
      "mutex-annotation", "nondeterminism-ban",      "lock-order",
      "nolint-reason",    "checkpoint-blob-symmetry", "guarded-field-flow",
      "metric-consistency", "buffer-lifetime",
  };
  return kNames;
}

}  // namespace comma::lint

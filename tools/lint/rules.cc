#include "tools/lint/rules.h"

namespace comma::lint {

std::vector<RulePtr> BuiltinRules() {
  std::vector<RulePtr> rules;
  rules.push_back(MakeSeqRawCompareRule());
  rules.push_back(MakeBytesRawCastRule());
  rules.push_back(MakeCheckSideEffectRule());
  rules.push_back(MakeMetricNameStyleRule());
  rules.push_back(MakeIncludeLayeringRule());
  rules.push_back(MakeFilterContractRule());
  return rules;
}

}  // namespace comma::lint

// Applies FixIts to file content.
#ifndef COMMA_TOOLS_LINT_FIXER_H_
#define COMMA_TOOLS_LINT_FIXER_H_

#include <string>
#include <vector>

#include "tools/lint/diagnostic.h"

namespace comma::lint {

// Applies non-overlapping `fixes` (byte ranges refer to `content`) and
// inserts any required `#include "src/..."` lines that are missing, keeping
// the include block sorted-ish by appending after the last existing
// `#include "src/` line (or the first include, or the top of file).
// Overlapping fixes are applied first-wins. Returns the rewritten content.
std::string ApplyFixes(const std::string& content, std::vector<FixIt> fixes);

}  // namespace comma::lint

#endif  // COMMA_TOOLS_LINT_FIXER_H_

// check-side-effect — COMMA_DCHECK* compile to nothing under NDEBUG
// (src/util/check.h): the condition is not even evaluated. A mutation
// inside one (`COMMA_DCHECK(--budget >= 0)`) therefore changes program
// behaviour between debug and release builds, which is exactly the class of
// heisenbug a deterministic simulator cannot afford. clang-tidy's
// bugprone-assert-side-effect knows about the macro names but only runs
// where clang is installed; this rule makes the gate unconditional.
#include <array>
#include <string>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

constexpr std::array<std::string_view, 7> kDcheckMacros = {
    "COMMA_DCHECK",    "COMMA_DCHECK_EQ", "COMMA_DCHECK_NE", "COMMA_DCHECK_LT",
    "COMMA_DCHECK_LE", "COMMA_DCHECK_GT", "COMMA_DCHECK_GE",
};

constexpr std::array<std::string_view, 13> kMutatingOps = {
    "++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
};

bool IsDcheckMacro(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) {
    return false;
  }
  for (std::string_view m : kDcheckMacros) {
    if (t.text == m) {
      return true;
    }
  }
  return false;
}

bool IsMutatingOp(const Token& t) {
  if (t.kind != TokenKind::kPunct) {
    return false;
  }
  for (std::string_view op : kMutatingOps) {
    if (t.text == op) {
      return true;
    }
  }
  return false;
}

class CheckSideEffectRule : public Rule {
 public:
  std::string_view name() const override { return "check-side-effect"; }
  std::string_view description() const override {
    return "no mutating expressions inside COMMA_DCHECK (compiled out in release)";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      if (!PathUnder(f.path, "src/") && !PathUnder(f.path, "tests/")) {
        continue;
      }
      if (f.path == "src/util/check.h") {
        continue;  // The macro definitions themselves.
      }
      const Tokens& toks = f.tokens;
      for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!IsDcheckMacro(toks[i]) || !toks[i + 1].IsPunct("(")) {
          continue;
        }
        const size_t close = MatchingParen(toks, i + 1);
        if (close == kNpos) {
          continue;
        }
        for (size_t j = i + 2; j < close; ++j) {
          if (!IsMutatingOp(toks[j])) {
            continue;
          }
          Diagnostic d;
          d.file = f.path;
          d.line = toks[j].line;
          d.col = toks[j].col;
          d.rule = "check-side-effect";
          d.message = "'" + toks[j].text + "' inside " + toks[i].text +
                      " mutates state the release build never executes; hoist the side "
                      "effect out of the check";
          if (!f.IsSuppressed(d.rule, d.line)) {
            out->push_back(std::move(d));
          }
        }
      }
    }
  }
};

}  // namespace

RulePtr MakeCheckSideEffectRule() { return std::make_unique<CheckSideEffectRule>(); }

}  // namespace comma::lint

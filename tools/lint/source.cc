#include "tools/lint/source.h"

#include <fstream>
#include <sstream>

#include "tools/lint/lexer.h"

namespace comma::lint {
namespace {

// True when `list` (the inside of "NOLINT(...)") names `rule`, either
// exactly or via the "comma-" prefixed spelling used in docs.
bool ListNamesRule(std::string_view list, std::string_view rule) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma_at = list.find(',', pos);
    if (comma_at == std::string_view::npos) {
      comma_at = list.size();
    }
    std::string_view item = list.substr(pos, comma_at - pos);
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    if (item == rule) {
      return true;
    }
    if (item.substr(0, 6) == "comma-" && item.substr(6) == rule) {
      return true;
    }
    if (comma_at == list.size()) {
      break;
    }
    pos = comma_at + 1;
  }
  return false;
}

bool LineSuppresses(std::string_view line, std::string_view marker, std::string_view rule) {
  size_t at = line.find(marker);
  while (at != std::string_view::npos) {
    const size_t open = at + marker.size();
    if (open < line.size() && line[open] == '(') {
      const size_t close = line.find(')', open);
      if (close != std::string_view::npos &&
          ListNamesRule(line.substr(open + 1, close - open - 1), rule)) {
        return true;
      }
    }
    at = line.find(marker, at + 1);
  }
  return false;
}

}  // namespace

std::string LintFile::Dir() const {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string LintFile::SrcModule() const {
  if (path.rfind("src/", 0) != 0) {
    return {};
  }
  const size_t next = path.find('/', 4);
  return next == std::string::npos ? std::string() : path.substr(4, next - 4);
}

std::string LintFile::Filename() const {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

const std::string& LintFile::Line(int line_number) const {
  static const std::string kEmpty;
  if (line_number < 1 || static_cast<size_t>(line_number) > lines.size()) {
    return kEmpty;
  }
  return lines[static_cast<size_t>(line_number) - 1];
}

bool LintFile::IsSuppressed(std::string_view rule, int line) const {
  // NOLINTNEXTLINE is checked first so its marker is not mistaken for a
  // same-line NOLINT (the string contains "NOLINT" as a prefix).
  if (LineSuppresses(Line(line - 1), "NOLINTNEXTLINE", rule)) {
    return true;
  }
  const std::string& text = Line(line);
  // Avoid NOLINTNEXTLINE on the same line matching the "NOLINT" marker.
  if (text.find("NOLINTNEXTLINE") == std::string::npos &&
      LineSuppresses(text, "NOLINT", rule)) {
    return true;
  }
  return false;
}

LintFile MakeLintFile(std::string path, std::string content) {
  LintFile f;
  f.path = std::move(path);
  f.content = std::move(content);
  std::string line;
  std::istringstream in(f.content);
  while (std::getline(in, line)) {
    f.lines.push_back(line);
  }
  f.tokens = Lex(f.content);
  return f;
}

bool LoadLintFile(const std::string& abs_path, std::string rel_path, LintFile* out) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = MakeLintFile(std::move(rel_path), buf.str());
  return true;
}

}  // namespace comma::lint

// mutex-annotation — a mutex must say what it protects.
//
// The parallel-simulator work (ROADMAP item 3) makes the lock story part of
// the architecture, and the thread-safety annotations in
// src/util/thread_annotations.h are how that story is written down where
// Clang can check it. This rule keeps the annotations from rotting on
// compilers that cannot (the tree builds with GCC, where the macros expand
// to nothing):
//
//  1. Every mutex-typed class member must be referenced by at least one
//     COMMA_GUARDED_BY / COMMA_PT_GUARDED_BY annotation in the same class.
//     An unreferenced mutex is either dead weight or — worse — protecting
//     state by convention nobody wrote down.
//  2. Members named `*_locked_` declare by convention that they are
//     lock-protected; such a field without a COMMA_GUARDED_BY annotation is
//     a contract stated in the name but invisible to the analysis.
//
// Scope is src/ and tools/ — the lint tool's own worker pool (scan_pool.h)
// eats the same dog food. Tests build ad-hoc harness types and are exempt.
#include <array>
#include <string>
#include <vector>

#include "tools/lint/rules.h"
#include "tools/lint/token_match.h"

namespace comma::lint {
namespace {

constexpr std::array<std::string_view, 5> kMutexTypes = {
    "mutex", "recursive_mutex", "timed_mutex", "shared_mutex", "shared_timed_mutex",
};

constexpr std::array<std::string_view, 2> kGuardAnnotations = {
    "COMMA_GUARDED_BY", "COMMA_PT_GUARDED_BY",
};

bool IsMutexType(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) {
    return false;
  }
  for (std::string_view m : kMutexTypes) {
    if (t.text == m) {
      return true;
    }
  }
  return false;
}

bool IsGuardAnnotation(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) {
    return false;
  }
  for (std::string_view a : kGuardAnnotations) {
    if (t.text == a) {
      return true;
    }
  }
  return false;
}

struct MutexMember {
  std::string name;
  int line = 0;
  int col = 0;
};

struct LockedField {
  std::string name;
  int line = 0;
  int col = 0;
  bool annotated = false;
};

// One `class`/`struct` body, scanned at member-declaration depth only
// (nested braces — member function bodies, default initializers, nested
// classes — are skipped; nested classes get their own scan).
struct ClassBody {
  std::string name;
  std::vector<MutexMember> mutexes;
  std::vector<std::string> guarded_refs;  // Lock names cited by annotations.
  std::vector<LockedField> locked_fields;
};

// Finds the '{' opening the body of the class-head starting at `i` (the
// `class`/`struct` keyword). Returns kNpos for forward declarations,
// template parameters, and anything else that is not a definition.
size_t ClassBodyOpen(const Tokens& toks, size_t i) {
  if (i + 2 >= toks.size() || toks[i + 1].kind != TokenKind::kIdentifier) {
    return kNpos;  // Anonymous structs carry no contract to name.
  }
  if (i > 0 && toks[i - 1].IsIdent("enum")) {
    return kNpos;  // `enum class`.
  }
  for (size_t j = i + 2; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.IsPunct("{")) {
      return j;
    }
    // `;` → forward declaration; `,`/`>`/`(`/`)`/`=` → template parameter
    // (`template <class T>`), default argument, or cast-like context.
    if (t.IsPunct(";") || t.IsPunct(",") || t.IsPunct(">") || t.IsPunct("(") || t.IsPunct(")") ||
        t.IsPunct("=")) {
      return kNpos;
    }
  }
  return kNpos;
}

// True when the member declaration containing token `at` (depth-1 tokens
// [lo, hi] of the class body) carries a guard annotation. The statement
// spans from the previous `;` / `{` / access-specifier `:` to the next `;`.
bool StatementHasGuard(const Tokens& toks, size_t at, size_t lo, size_t hi) {
  size_t begin = lo;
  for (size_t j = at; j > lo; --j) {
    const Token& t = toks[j - 1];
    if (t.IsPunct(";") || t.IsPunct("{") || t.IsPunct("}") || t.IsPunct(":")) {
      begin = j;
      break;
    }
  }
  for (size_t j = begin; j <= hi; ++j) {
    if (IsGuardAnnotation(toks[j])) {
      return true;
    }
    if (j > at && toks[j].IsPunct(";")) {
      break;
    }
  }
  return false;
}

class MutexAnnotationRule : public Rule {
 public:
  std::string_view name() const override { return "mutex-annotation"; }
  std::string_view description() const override {
    return "every mutex member must be cited by a COMMA_GUARDED_BY; *_locked_ fields must be "
           "annotated";
  }

  void Check(const Project& project, Diagnostics* out) const override {
    for (const LintFile& f : project.files) {
      if (!PathUnder(f.path, "src/") && !PathUnder(f.path, "tools/")) {
        continue;
      }
      if (f.path == "src/util/thread_annotations.h") {
        continue;  // The macro definitions themselves.
      }
      const Tokens& toks = f.tokens;
      for (size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].IsIdent("class") && !toks[i].IsIdent("struct")) {
          continue;
        }
        const size_t open = ClassBodyOpen(toks, i);
        if (open == kNpos) {
          continue;
        }
        const size_t close = MatchingBrace(toks, open);
        if (close == kNpos) {
          continue;
        }
        ClassBody body;
        body.name = toks[i + 1].text;
        ScanBody(toks, open, close, &body);
        Report(f, body, out);
      }
    }
  }

 private:
  // Collects mutex members, annotation references, and *_locked_ fields at
  // declaration depth of the body (open, close).
  static void ScanBody(const Tokens& toks, size_t open, size_t close, ClassBody* body) {
    int depth = 0;
    for (size_t j = open; j < close; ++j) {
      const Token& t = toks[j];
      if (t.IsPunct("{")) {
        ++depth;
        continue;
      }
      if (t.IsPunct("}")) {
        --depth;
        continue;
      }
      if (depth != 1) {
        continue;
      }
      // `std :: <mutex-type> <name>` — a mutex member declaration.
      if (t.IsIdent("std") && j + 3 < close && toks[j + 1].IsPunct("::") &&
          IsMutexType(toks[j + 2]) && toks[j + 3].kind == TokenKind::kIdentifier) {
        body->mutexes.push_back({toks[j + 3].text, toks[j + 3].line, toks[j + 3].col});
        j += 3;
        continue;
      }
      if (IsGuardAnnotation(t) && j + 1 < close && toks[j + 1].IsPunct("(")) {
        const size_t end = MatchingParen(toks, j + 1);
        if (end == kNpos || end > close) {
          continue;
        }
        for (size_t k = j + 2; k < end; ++k) {
          if (toks[k].kind == TokenKind::kIdentifier) {
            body->guarded_refs.push_back(toks[k].text);
          }
        }
        j = end;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && t.text.size() > 8 &&
          t.text.compare(t.text.size() - 8, 8, "_locked_") == 0 &&
          !(j + 1 < close && toks[j + 1].IsPunct("("))) {
        LockedField field{t.text, t.line, t.col, false};
        field.annotated = StatementHasGuard(toks, j, open + 1, close - 1);
        body->locked_fields.push_back(std::move(field));
      }
    }
  }

  static void Report(const LintFile& f, const ClassBody& body, Diagnostics* out) {
    for (const MutexMember& m : body.mutexes) {
      bool cited = false;
      for (const std::string& ref : body.guarded_refs) {
        if (ref == m.name) {
          cited = true;
          break;
        }
      }
      if (cited) {
        continue;
      }
      Diagnostic d;
      d.file = f.path;
      d.line = m.line;
      d.col = m.col;
      d.rule = "mutex-annotation";
      d.message = "mutex '" + m.name + "' in class '" + body.name +
                  "' guards nothing; annotate the members it protects with COMMA_GUARDED_BY(" +
                  m.name + ") (src/util/thread_annotations.h)";
      if (!f.IsSuppressed(d.rule, d.line)) {
        out->push_back(std::move(d));
      }
    }
    for (const LockedField& field : body.locked_fields) {
      if (field.annotated) {
        continue;
      }
      Diagnostic d;
      d.file = f.path;
      d.line = field.line;
      d.col = field.col;
      d.rule = "mutex-annotation";
      d.message = "field '" + field.name + "' in class '" + body.name +
                  "' claims lock-protected state by its *_locked_ name but carries no "
                  "COMMA_GUARDED_BY annotation";
      if (!f.IsSuppressed(d.rule, d.line)) {
        out->push_back(std::move(d));
      }
    }
  }
};

}  // namespace

RulePtr MakeMutexAnnotationRule() { return std::make_unique<MutexAnnotationRule>(); }

}  // namespace comma::lint

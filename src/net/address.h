// IPv4 addresses and prefixes.
#ifndef COMMA_NET_ADDRESS_H_
#define COMMA_NET_ADDRESS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace comma::net {

// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(uint32_t value) : value_(value) {}
  constexpr Ipv4Address(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value_(static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
               static_cast<uint32_t>(c) << 8 | d) {}

  // Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  constexpr uint32_t value() const { return value_; }
  constexpr bool IsUnspecified() const { return value_ == 0; }

  std::string ToString() const;

  friend constexpr bool operator==(Ipv4Address a, Ipv4Address b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Ipv4Address a, Ipv4Address b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Ipv4Address a, Ipv4Address b) { return a.value_ < b.value_; }

 private:
  uint32_t value_ = 0;
};

inline constexpr Ipv4Address kAnyAddress{};

// An IPv4 prefix (network address + length) for routing.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Address base, uint8_t length);

  // Parses "10.0.0.0/8"; returns nullopt on malformed input.
  static std::optional<Ipv4Prefix> Parse(std::string_view text);

  bool Contains(Ipv4Address addr) const;
  constexpr uint8_t length() const { return length_; }
  constexpr Ipv4Address base() const { return base_; }
  std::string ToString() const;

  friend bool operator==(const Ipv4Prefix& a, const Ipv4Prefix& b) {
    return a.base_ == b.base_ && a.length_ == b.length_;
  }

 private:
  Ipv4Address base_;
  uint8_t length_ = 0;
};

}  // namespace comma::net

template <>
struct std::hash<comma::net::Ipv4Address> {
  size_t operator()(comma::net::Ipv4Address a) const noexcept {
    return std::hash<uint32_t>()(a.value());
  }
};

#endif  // COMMA_NET_ADDRESS_H_

#include "src/net/node.h"

#include <algorithm>

namespace comma::net {

Node::Node(sim::Simulator* sim, std::string name)
    : sim_(sim), name_(std::move(name)), tracer_(sim) {}

uint32_t Node::AddInterface(Ipv4Address addr) {
  Interface iface;
  iface.addr = addr;
  interfaces_.push_back(iface);
  return static_cast<uint32_t>(interfaces_.size() - 1);
}

void Node::AttachLink(uint32_t iface, Link* link, int side) {
  interfaces_.at(iface).link = link;
  interfaces_.at(iface).side = side;
  link->Attach(side, this, iface);
}

void Node::AddRoute(Ipv4Prefix prefix, uint32_t iface) {
  // Replace an existing identical prefix rather than shadowing it.
  for (Route& r : routes_) {
    if (r.prefix == prefix) {
      r.iface = iface;
      return;
    }
  }
  routes_.push_back({prefix, iface});
}

void Node::AddHostRoute(Ipv4Address addr, uint32_t iface) {
  AddRoute(Ipv4Prefix(addr, 32), iface);
}

void Node::RemoveHostRoute(Ipv4Address addr) {
  Ipv4Prefix target(addr, 32);
  routes_.erase(std::remove_if(routes_.begin(), routes_.end(),
                               [&](const Route& r) { return r.prefix == target; }),
                routes_.end());
}

void Node::RegisterProtocol(IpProtocol protocol, ProtocolHandler handler) {
  protocol_handlers_[static_cast<uint8_t>(protocol)] = std::move(handler);
}

void Node::AddTap(PacketTap* tap) { taps_.push_back(tap); }

void Node::RemoveTap(PacketTap* tap) {
  taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
}

bool Node::IsLocalAddress(Ipv4Address addr) const {
  return std::any_of(interfaces_.begin(), interfaces_.end(),
                     [&](const Interface& i) { return i.addr == addr; });
}

Ipv4Address Node::PrimaryAddress() const {
  return interfaces_.empty() ? Ipv4Address() : interfaces_[0].addr;
}

Ipv4Address Node::InterfaceAddress(uint32_t iface) const { return interfaces_.at(iface).addr; }

const InterfaceStats& Node::interface_stats(uint32_t iface) const {
  return interfaces_.at(iface).stats;
}

Link* Node::InterfaceLink(uint32_t iface) const { return interfaces_.at(iface).link; }

bool Node::RunTaps(PacketPtr& packet, uint32_t iface, bool outbound) {
  TapContext ctx{this, iface, outbound};
  // Copy: a tap may remove itself while running.
  std::vector<PacketTap*> taps = taps_;
  for (PacketTap* tap : taps) {
    switch (tap->OnPacket(packet, ctx)) {
      case TapVerdict::kPass:
        break;
      case TapVerdict::kDrop:
        ++stats_.ip_in_discards;
        packet.reset();
        return false;
      case TapVerdict::kConsume:
        packet.reset();
        return false;
    }
  }
  return true;
}

void Node::ReceiveFromLink(uint32_t iface, PacketPtr packet) {
  Interface& in = interfaces_.at(iface);
  ++in.stats.in_packets;
  in.stats.in_bytes += packet->SizeBytes();
  ++stats_.ip_in_receives;

  if (tracer_.Enabled(sim::TraceLevel::kDebug)) {
    tracer_.Logf(sim::TraceLevel::kDebug, name_, "rx if%u %s", iface, packet->Describe().c_str());
  }

  if (!RunTaps(packet, iface)) {
    return;
  }

  if (IsLocalAddress(packet->ip().dst)) {
    DeliverLocally(std::move(packet));
  } else {
    Forward(std::move(packet));
  }
}

void Node::DeliverLocally(PacketPtr packet) {
  ++stats_.ip_in_delivers;
  auto it = protocol_handlers_.find(packet->ip().protocol);
  if (it != protocol_handlers_.end()) {
    it->second(std::move(packet));
  } else {
    OnUnhandledPacket(std::move(packet));
  }
}

void Node::OnUnhandledPacket(PacketPtr packet) {
  tracer_.Logf(sim::TraceLevel::kDebug, name_, "no handler for %s", packet->Describe().c_str());
}

void Node::Forward(PacketPtr packet) {
  if (packet->ip().ttl <= 1) {
    ++stats_.ip_in_hdr_errors;
    return;
  }
  --packet->ip().ttl;
  packet->UpdateIpChecksum();  // Routers never touch transport checksums.
  ++stats_.ip_forw_datagrams;
  RouteAndSend(std::move(packet));
}

void Node::SendPacket(PacketPtr packet) {
  ++stats_.ip_out_requests;
  if (!RunTaps(packet, UINT32_MAX, /*outbound=*/true)) {
    return;
  }
  RouteAndSend(std::move(packet));
}

void Node::InjectPacket(PacketPtr packet) {
  ++stats_.ip_out_requests;
  RouteAndSend(std::move(packet));
}

void Node::ReinjectPacket(PacketPtr packet) {
  if (!RunTaps(packet, UINT32_MAX, /*outbound=*/false)) {
    return;
  }
  if (IsLocalAddress(packet->ip().dst)) {
    DeliverLocally(std::move(packet));
  } else {
    RouteAndSend(std::move(packet));
  }
}

int Node::Lookup(Ipv4Address dst) const {
  int best = -1;
  int best_len = -1;
  for (const Route& r : routes_) {
    if (r.prefix.Contains(dst) && r.prefix.length() > best_len) {
      best = static_cast<int>(r.iface);
      best_len = r.prefix.length();
    }
  }
  return best;
}

bool Node::RouteAndSend(PacketPtr packet) {
  // Local destination: short-circuit delivery (loopback).
  if (IsLocalAddress(packet->ip().dst)) {
    DeliverLocally(std::move(packet));
    return true;
  }
  const int iface = Lookup(packet->ip().dst);
  if (iface < 0) {
    ++stats_.ip_out_no_routes;
    tracer_.Logf(sim::TraceLevel::kWarn, name_, "no route to %s",
                 packet->ip().dst.ToString().c_str());
    return false;
  }
  Interface& out = interfaces_.at(static_cast<uint32_t>(iface));
  if (out.link == nullptr) {
    ++stats_.ip_out_no_routes;
    return false;
  }
  ++out.stats.out_packets;
  out.stats.out_bytes += packet->SizeBytes();
  if (tracer_.Enabled(sim::TraceLevel::kDebug)) {
    tracer_.Logf(sim::TraceLevel::kDebug, name_, "tx if%d %s", iface, packet->Describe().c_str());
  }
  out.link->Send(out.side, std::move(packet));
  return true;
}

}  // namespace comma::net

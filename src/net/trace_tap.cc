#include "src/net/trace_tap.h"

#include <cstdio>

#include "src/obs/counter.h"
#include "src/util/strings.h"

namespace comma::net {

std::string CaptureRecord::Summary() const {
  std::string line;
  if (!raw_summary.empty()) {
    line = raw_summary;
  } else if (protocol == static_cast<uint8_t>(IpProtocol::kTcp)) {
    line = util::Format("tcp %s:%u -> %s:%u seq=%u ack=%u len=%zu win=%u %s",
                        src.ToString().c_str(), src_port, dst.ToString().c_str(), dst_port, seq,
                        ack, payload_bytes, window, TcpFlagsToString(tcp_flags).c_str());
  } else {
    line = util::Format("udp %s:%u -> %s:%u len=%zu", src.ToString().c_str(), src_port,
                        dst.ToString().c_str(), dst_port, payload_bytes);
  }
  return util::Format("%s %s %s", sim::FormatTime(when).c_str(), outbound ? "out" : "in ",
                      line.c_str());
}

TraceTap::TraceTap(Node* node, Filter filter) : node_(node), filter_(std::move(filter)) {
  node_->AddTap(this);
}

TraceTap::~TraceTap() { node_->RemoveTap(this); }

TapVerdict TraceTap::OnPacket(PacketPtr& packet, const TapContext& ctx) {
  if (filter_ && !filter_(*packet)) {
    return TapVerdict::kPass;
  }
  CaptureRecord rec;
  rec.when = node_->simulator()->Now();
  rec.outbound = ctx.outbound;
  rec.src = packet->ip().src;
  rec.dst = packet->ip().dst;
  rec.protocol = packet->ip().protocol;
  if (packet->has_tcp()) {
    rec.src_port = packet->tcp().src_port;
    rec.dst_port = packet->tcp().dst_port;
    rec.seq = packet->tcp().seq;
    rec.ack = packet->tcp().ack;
    rec.tcp_flags = packet->tcp().flags;
    rec.window = packet->tcp().window;
  } else if (packet->has_udp()) {
    rec.src_port = packet->udp().src_port;
    rec.dst_port = packet->udp().dst_port;
  } else {
    // Only tunnels and raw IP pay for eager formatting; tcp/udp lines are
    // rebuilt on demand from the parsed fields.
    rec.raw_summary = packet->Describe();
  }
  rec.payload_bytes = packet->payload().size();
  if (captured_packets_ != nullptr) {
    captured_packets_->Inc();
    captured_bytes_->Inc(rec.payload_bytes);
  }
  if (live_) {
    std::fprintf(stderr, "%s\n", rec.Summary().c_str());
  }
  records_.push_back(std::move(rec));
  return TapVerdict::kPass;
}

size_t TraceTap::CountIf(const std::function<bool(const CaptureRecord&)>& pred) const {
  size_t count = 0;
  for (const CaptureRecord& rec : records_) {
    if (pred(rec)) {
      ++count;
    }
  }
  return count;
}

std::string TraceTap::Dump() const {
  std::string out;
  for (const CaptureRecord& rec : records_) {
    out += rec.Summary() + "\n";
  }
  return out;
}

TraceTap::Filter TcpPort(uint16_t port) {
  return [port](const Packet& p) {
    return p.has_tcp() && (p.tcp().src_port == port || p.tcp().dst_port == port);
  };
}

TraceTap::Filter BetweenHosts(Ipv4Address a, Ipv4Address b) {
  return [a, b](const Packet& p) {
    return (p.ip().src == a && p.ip().dst == b) || (p.ip().src == b && p.ip().dst == a);
  };
}

}  // namespace comma::net

#include "src/net/trace_tap.h"

#include <cstdio>

#include "src/util/strings.h"

namespace comma::net {

TraceTap::TraceTap(Node* node, Filter filter) : node_(node), filter_(std::move(filter)) {
  node_->AddTap(this);
}

TraceTap::~TraceTap() { node_->RemoveTap(this); }

TapVerdict TraceTap::OnPacket(PacketPtr& packet, const TapContext& ctx) {
  if (filter_ && !filter_(*packet)) {
    return TapVerdict::kPass;
  }
  CaptureRecord rec;
  rec.when = node_->simulator()->Now();
  rec.outbound = ctx.outbound;
  rec.src = packet->ip().src;
  rec.dst = packet->ip().dst;
  rec.protocol = packet->ip().protocol;
  if (packet->has_tcp()) {
    rec.src_port = packet->tcp().src_port;
    rec.dst_port = packet->tcp().dst_port;
    rec.seq = packet->tcp().seq;
    rec.ack = packet->tcp().ack;
    rec.tcp_flags = packet->tcp().flags;
  } else if (packet->has_udp()) {
    rec.src_port = packet->udp().src_port;
    rec.dst_port = packet->udp().dst_port;
  }
  rec.payload_bytes = packet->payload().size();
  rec.summary = util::Format("%s %s %s", sim::FormatTime(rec.when).c_str(),
                             rec.outbound ? "out" : "in ", packet->Describe().c_str());
  if (live_) {
    std::fprintf(stderr, "%s\n", rec.summary.c_str());
  }
  records_.push_back(std::move(rec));
  return TapVerdict::kPass;
}

size_t TraceTap::CountIf(const std::function<bool(const CaptureRecord&)>& pred) const {
  size_t count = 0;
  for (const CaptureRecord& rec : records_) {
    if (pred(rec)) {
      ++count;
    }
  }
  return count;
}

std::string TraceTap::Dump() const {
  std::string out;
  for (const CaptureRecord& rec : records_) {
    out += rec.summary + "\n";
  }
  return out;
}

TraceTap::Filter TcpPort(uint16_t port) {
  return [port](const Packet& p) {
    return p.has_tcp() && (p.tcp().src_port == port || p.tcp().dst_port == port);
  };
}

TraceTap::Filter BetweenHosts(Ipv4Address a, Ipv4Address b) {
  return [a, b](const Packet& p) {
    return (p.ip().src == a && p.ip().dst == b) || (p.ip().src == b && p.ip().dst == a);
  };
}

}  // namespace comma::net

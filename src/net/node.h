// Network nodes: interfaces, static routing with longest-prefix match,
// protocol demultiplexing, and packet taps.
//
// Taps are the hook the Comma Service Proxy's Packet Interception Module
// attaches to (thesis §5.2): every packet arriving at a node passes through
// the node's taps before being delivered locally or forwarded, and a tap may
// inspect, mutate, or drop it. Packets the node *originates* do not pass
// through taps — in the thesis, the proxy is a distinct router on the path
// and only ever sees transit traffic.
#ifndef COMMA_NET_NODE_H_
#define COMMA_NET_NODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/net/address.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace comma::net {

enum class TapVerdict {
  kPass,     // Continue normal processing (possibly with a mutated packet).
  kDrop,     // Discard the packet.
  kConsume,  // The tap took ownership (e.g. buffered it for later).
};

struct TapContext {
  Node* node = nullptr;
  uint32_t iface = 0;      // Receiving interface; undefined when outbound.
  bool outbound = false;   // True for packets this node originated.
};

// Interface implemented by packet interceptors (the Service Proxy).
class PacketTap {
 public:
  virtual ~PacketTap() = default;
  // `packet` may be mutated in place; on kConsume the tap must take the
  // packet out of `packet` (it is destroyed otherwise).
  virtual TapVerdict OnPacket(PacketPtr& packet, const TapContext& ctx) = 0;
};

struct InterfaceStats {
  uint64_t in_packets = 0;
  uint64_t in_bytes = 0;
  uint64_t out_packets = 0;
  uint64_t out_bytes = 0;
};

struct NodeStats {
  uint64_t ip_in_receives = 0;
  uint64_t ip_in_delivers = 0;
  uint64_t ip_forw_datagrams = 0;
  uint64_t ip_out_requests = 0;
  uint64_t ip_out_no_routes = 0;
  uint64_t ip_in_hdr_errors = 0;   // TTL expiry, bad checksum.
  uint64_t ip_in_discards = 0;     // Dropped by taps.
};

class Node {
 public:
  Node(sim::Simulator* sim, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // --- Topology construction ---
  // Adds an interface with the given address; returns its index.
  uint32_t AddInterface(Ipv4Address addr);
  void AttachLink(uint32_t iface, Link* link, int side);
  void AddRoute(Ipv4Prefix prefix, uint32_t iface);
  void SetDefaultRoute(uint32_t iface) { AddRoute(Ipv4Prefix(Ipv4Address(0), 0), iface); }
  // Adds or replaces a host route (a /32) — used by Mobile IP agents.
  void AddHostRoute(Ipv4Address addr, uint32_t iface);
  void RemoveHostRoute(Ipv4Address addr);

  // --- Protocol handlers (local delivery demux) ---
  using ProtocolHandler = std::function<void(PacketPtr)>;
  void RegisterProtocol(IpProtocol protocol, ProtocolHandler handler);

  // --- Taps ---
  void AddTap(PacketTap* tap);
  void RemoveTap(PacketTap* tap);

  // --- Data path ---
  // Entry point used by links. Arriving packets pass the taps (inbound).
  void ReceiveFromLink(uint32_t iface, PacketPtr packet);
  // Originates a packet from this node. Locally-generated packets also pass
  // the taps (outbound) — this is how a proxy running *on* an endpoint (the
  // mobile-side half of a double-proxy arrangement, §10.2.4) intercepts the
  // host's own traffic. Transit packets are not re-tapped on the way out.
  void SendPacket(PacketPtr packet);
  // Emits a packet into the forwarding path without tap processing. Used by
  // the Service Proxy for packets it manufactured (§8.2.2 ZWSMs), which must
  // not re-enter the filter queues.
  void InjectPacket(PacketPtr packet);
  // Re-enters a packet into the node as if it had just arrived: taps run,
  // then normal delivery/forwarding. Used by tunnel endpoints (Mobile IP
  // FAs) so a co-located proxy services the *decapsulated* stream — the
  // §5.1.1/§10.2.3 merge of interception point and foreign agent.
  void ReinjectPacket(PacketPtr packet);

  // --- Introspection ---
  bool IsLocalAddress(Ipv4Address addr) const;
  Ipv4Address PrimaryAddress() const;
  Ipv4Address InterfaceAddress(uint32_t iface) const;
  size_t InterfaceCount() const { return interfaces_.size(); }
  const InterfaceStats& interface_stats(uint32_t iface) const;
  Link* InterfaceLink(uint32_t iface) const;
  const NodeStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  sim::Simulator* simulator() const { return sim_; }
  sim::Tracer& tracer() { return tracer_; }

  // Called on local delivery when no protocol handler matches. Subclasses
  // (e.g. agents) may override; the default counts and drops.
  virtual void OnUnhandledPacket(PacketPtr packet);

 protected:
  // Routes and transmits; returns false if no route existed.
  bool RouteAndSend(PacketPtr packet);

 private:
  struct Interface {
    Ipv4Address addr;
    Link* link = nullptr;
    int side = 0;
    InterfaceStats stats;
  };

  struct Route {
    Ipv4Prefix prefix;
    uint32_t iface = 0;
  };

  // Runs taps; returns true if the packet survives (still in `packet`).
  bool RunTaps(PacketPtr& packet, uint32_t iface, bool outbound = false);
  void DeliverLocally(PacketPtr packet);
  void Forward(PacketPtr packet);
  // Longest-prefix-match lookup; returns interface index or -1.
  int Lookup(Ipv4Address dst) const;

  sim::Simulator* sim_;
  std::string name_;
  sim::Tracer tracer_;
  std::vector<Interface> interfaces_;
  std::vector<Route> routes_;
  std::map<uint8_t, ProtocolHandler> protocol_handlers_;
  std::vector<PacketTap*> taps_;
  NodeStats stats_;
};

}  // namespace comma::net

#endif  // COMMA_NET_NODE_H_

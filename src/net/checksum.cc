#include "src/net/checksum.h"

namespace comma::net {

void ChecksumAccumulator::Add(const uint8_t* data, size_t len) {
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum_ += static_cast<uint16_t>(static_cast<uint16_t>(data[i]) << 8 | data[i + 1]);
  }
  if (i < len) {
    sum_ += static_cast<uint16_t>(static_cast<uint16_t>(data[i]) << 8);
  }
}

void ChecksumAccumulator::AddU16(uint16_t v) { sum_ += v; }

void ChecksumAccumulator::AddU32(uint32_t v) {
  AddU16(static_cast<uint16_t>(v >> 16));
  AddU16(static_cast<uint16_t>(v));
}

uint16_t ChecksumAccumulator::Finish() const {
  uint64_t s = sum_;
  while (s >> 16) {
    s = (s & 0xffff) + (s >> 16);
  }
  return static_cast<uint16_t>(~s);
}

uint16_t InternetChecksum(const uint8_t* data, size_t len) {
  ChecksumAccumulator acc;
  acc.Add(data, len);
  return acc.Finish();
}

}  // namespace comma::net

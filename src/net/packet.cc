#include "src/net/packet.h"

#include "src/net/checksum.h"
#include "src/util/strings.h"

namespace comma::net {

uint64_t Packet::next_uid_ = 1;

Packet::Packet() : uid_(next_uid_++) {}

PacketPtr Packet::MakeTcp(Ipv4Address src, Ipv4Address dst, const TcpHeader& tcp,
                          util::Bytes payload) {
  auto p = std::make_unique<Packet>();
  p->ip_.protocol = static_cast<uint8_t>(IpProtocol::kTcp);
  p->ip_.src = src;
  p->ip_.dst = dst;
  p->tcp_ = tcp;
  p->payload_ = std::move(payload);
  p->UpdateChecksums();
  return p;
}

PacketPtr Packet::MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port, uint16_t dst_port,
                          util::Bytes payload) {
  auto p = std::make_unique<Packet>();
  p->ip_.protocol = static_cast<uint8_t>(IpProtocol::kUdp);
  p->ip_.src = src;
  p->ip_.dst = dst;
  p->udp_.src_port = src_port;
  p->udp_.dst_port = dst_port;
  p->payload_ = std::move(payload);
  p->UpdateChecksums();
  return p;
}

PacketPtr Packet::MakeRaw(Ipv4Address src, Ipv4Address dst, IpProtocol protocol,
                          util::Bytes payload) {
  auto p = std::make_unique<Packet>();
  p->ip_.protocol = static_cast<uint8_t>(protocol);
  p->ip_.src = src;
  p->ip_.dst = dst;
  p->payload_ = std::move(payload);
  p->UpdateChecksums();
  return p;
}

PacketPtr Packet::Encapsulate(PacketPtr inner, Ipv4Address tunnel_src, Ipv4Address tunnel_dst,
                              IpProtocol protocol) {
  auto p = std::make_unique<Packet>();
  p->ip_.protocol = static_cast<uint8_t>(protocol);
  p->ip_.src = tunnel_src;
  p->ip_.dst = tunnel_dst;
  p->inner_ = std::move(inner);
  p->UpdateChecksums();
  return p;
}

PacketPtr Packet::Decapsulate() { return std::move(inner_); }

size_t Packet::SizeBytes() const {
  size_t size = kIpv4HeaderSize;
  if (has_tcp()) {
    size += kTcpHeaderSize;
  } else if (has_udp()) {
    size += kUdpHeaderSize;
  }
  size += payload_.size();
  if (inner_) {
    size += inner_->SizeBytes();
  }
  return size;
}

void SerializeTcpHeader(const TcpHeader& h, size_t /*segment_len*/, util::ByteWriter& w) {
  w.WriteU16(h.src_port);
  w.WriteU16(h.dst_port);
  w.WriteU32(h.seq);
  w.WriteU32(h.ack);
  w.WriteU8(5 << 4);  // Data offset 5 words, no options.
  w.WriteU8(h.flags);
  w.WriteU16(h.window);
  w.WriteU16(h.checksum);
  w.WriteU16(h.urgent);
}

namespace {

void SerializeUdpHeader(const UdpHeader& h, size_t datagram_len, util::ByteWriter& w) {
  w.WriteU16(h.src_port);
  w.WriteU16(h.dst_port);
  w.WriteU16(static_cast<uint16_t>(datagram_len));
  w.WriteU16(h.checksum);
}

void SerializeIpHeader(const Ipv4Header& h, size_t total_len, util::ByteWriter& w) {
  w.WriteU8(4 << 4 | 5);  // Version 4, IHL 5.
  w.WriteU8(h.tos);
  w.WriteU16(static_cast<uint16_t>(total_len));
  w.WriteU16(h.id);
  w.WriteU16(0x4000);  // Flags: DF set, no fragmentation modelled.
  w.WriteU8(h.ttl);
  w.WriteU8(h.protocol);
  w.WriteU16(h.checksum);
  w.WriteU32(h.src.value());
  w.WriteU32(h.dst.value());
}

uint16_t IpHeaderChecksum(const Ipv4Header& h, size_t total_len) {
  util::Bytes buf;
  util::ByteWriter w(&buf);
  Ipv4Header copy = h;
  copy.checksum = 0;
  SerializeIpHeader(copy, total_len, w);
  return InternetChecksum(buf.data(), buf.size());
}

}  // namespace

util::Bytes Packet::Serialize() const {
  util::Bytes out;
  util::ByteWriter w(&out);
  SerializeIpHeader(ip_, SizeBytes(), w);
  if (has_tcp()) {
    SerializeTcpHeader(tcp_, payload_.size(), w);
  } else if (has_udp()) {
    SerializeUdpHeader(udp_, kUdpHeaderSize + payload_.size(), w);
  }
  if (inner_) {
    util::Bytes inner_bytes = inner_->Serialize();
    w.WriteBytes(inner_bytes);
  }
  w.WriteBytes(payload_);
  return out;
}

uint16_t Packet::TransportChecksum() const {
  // TCP/UDP pseudo-header: src, dst, zero, protocol, transport length.
  ChecksumAccumulator acc;
  acc.AddU32(ip_.src.value());
  acc.AddU32(ip_.dst.value());
  acc.AddU16(ip_.protocol);
  util::Bytes seg;
  util::ByteWriter w(&seg);
  if (has_tcp()) {
    TcpHeader copy = tcp_;
    copy.checksum = 0;
    SerializeTcpHeader(copy, payload_.size(), w);
  } else {
    UdpHeader copy = udp_;
    copy.checksum = 0;
    SerializeUdpHeader(copy, kUdpHeaderSize + payload_.size(), w);
  }
  w.WriteBytes(payload_);
  acc.AddU16(static_cast<uint16_t>(seg.size()));
  acc.Add(seg.data(), seg.size());
  return acc.Finish();
}

void Packet::UpdateIpChecksum() { ip_.checksum = IpHeaderChecksum(ip_, SizeBytes()); }

void Packet::UpdateChecksums() {
  if (inner_) {
    inner_->UpdateChecksums();
  }
  if (has_tcp()) {
    tcp_.checksum = TransportChecksum();
  } else if (has_udp()) {
    udp_.checksum = TransportChecksum();
  }
  ip_.checksum = IpHeaderChecksum(ip_, SizeBytes());
}

bool Packet::VerifyChecksums() const {
  if (ip_.checksum != IpHeaderChecksum(ip_, SizeBytes())) {
    return false;
  }
  if (has_tcp() && tcp_.checksum != TransportChecksum()) {
    return false;
  }
  if (has_udp() && udp_.checksum != TransportChecksum()) {
    return false;
  }
  if (inner_ && !inner_->VerifyChecksums()) {
    return false;
  }
  return true;
}

PacketPtr Packet::Clone() const {
  auto p = std::make_unique<Packet>();
  p->uid_ = uid_;
  p->ip_ = ip_;
  p->tcp_ = tcp_;
  p->udp_ = udp_;
  p->payload_ = payload_;
  if (inner_) {
    p->inner_ = inner_->Clone();
  }
  return p;
}

std::string TcpFlagsToString(uint8_t flags) {
  std::vector<std::string> names;
  if (flags & kTcpSyn) {
    names.push_back("SYN");
  }
  if (flags & kTcpFin) {
    names.push_back("FIN");
  }
  if (flags & kTcpRst) {
    names.push_back("RST");
  }
  if (flags & kTcpPsh) {
    names.push_back("PSH");
  }
  if (flags & kTcpAck) {
    names.push_back("ACK");
  }
  if (flags & kTcpUrg) {
    names.push_back("URG");
  }
  return "[" + util::Join(names, ",") + "]";
}

std::string Packet::Describe() const {
  if (has_tcp()) {
    return util::Format("tcp %s:%u -> %s:%u seq=%u ack=%u len=%zu win=%u %s",
                        ip_.src.ToString().c_str(), tcp_.src_port, ip_.dst.ToString().c_str(),
                        tcp_.dst_port, tcp_.seq, tcp_.ack, payload_.size(), tcp_.window,
                        TcpFlagsToString(tcp_.flags).c_str());
  }
  if (has_udp()) {
    return util::Format("udp %s:%u -> %s:%u len=%zu", ip_.src.ToString().c_str(), udp_.src_port,
                        ip_.dst.ToString().c_str(), udp_.dst_port, payload_.size());
  }
  if (inner_) {
    return util::Format("ipip %s -> %s (%s)", ip_.src.ToString().c_str(),
                        ip_.dst.ToString().c_str(), inner_->Describe().c_str());
  }
  return util::Format("ip proto=%u %s -> %s len=%zu", ip_.protocol, ip_.src.ToString().c_str(),
                      ip_.dst.ToString().c_str(), payload_.size());
}

uint32_t TcpSegmentLength(const Packet& p) {
  uint32_t len = static_cast<uint32_t>(p.payload().size());
  if (p.tcp().flags & kTcpSyn) {
    ++len;
  }
  if (p.tcp().flags & kTcpFin) {
    ++len;
  }
  return len;
}

}  // namespace comma::net

#include "src/net/link.h"

#include <algorithm>
#include <cmath>

#include "src/net/node.h"
#include "src/util/check.h"

namespace comma::net {

LinkConfig WiredLinkConfig() {
  LinkConfig c;
  c.bandwidth_bps = 10'000'000;  // 10 Mbit/s Ethernet-class.
  c.propagation_delay = sim::kMillisecond;
  c.queue_limit_packets = 64;
  return c;
}

LinkConfig WirelessLinkConfig() {
  LinkConfig c;
  c.bandwidth_bps = 1'000'000;  // 1 Mbit/s WaveLAN-class.
  c.propagation_delay = 5 * sim::kMillisecond;
  c.queue_limit_packets = 32;
  c.loss_probability = 0.01;
  return c;
}

LinkConfig BackboneLinkConfig() {
  LinkConfig c;
  c.bandwidth_bps = 100'000'000;  // 100 Mbit/s backhaul.
  c.propagation_delay = 5 * sim::kMillisecond;
  c.queue_limit_packets = 128;
  return c;
}

Link::Link(sim::Simulator* sim, sim::Random rng, const LinkConfig& config, std::string name)
    : sim_(sim), name_(std::move(name)), rng_(rng) {
  for (int side = 0; side < 2; ++side) {
    sides_[side].config = config;
  }
}

void Link::Attach(int side, Node* node, uint32_t iface) {
  sides_[side].node = node;
  sides_[side].iface = iface;
}

void Link::SetRegions(sim::RegionId side0, sim::RegionId side1) {
  sides_[0].region = side0;
  sides_[1].region = side1;
  if (side0 != side1) {
    const sim::Duration lookahead =
        std::min(sides_[0].config.propagation_delay, sides_[1].config.propagation_delay);
    sim_->RegisterCrossRegionEdge(side0, side1, lookahead);
    // Stream-derived so each side's loss/corruption sequence depends only
    // on the link's seed and the side index — never on the other side's
    // draws or thread interleaving.
    for (int side = 0; side < 2; ++side) {
      sides_[side].rng = rng_.ForkStream(static_cast<uint64_t>(side));
    }
  }
}

sim::Random& Link::RngFor(int side) { return cross_region() ? sides_[side].rng : rng_; }

sim::Duration Link::TransmitTimeFor(int side, size_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double seconds = bits / static_cast<double>(sides_[side].config.bandwidth_bps);
  return sim::SecondsToDuration(seconds);
}

sim::Duration Link::TransmitTime(size_t bytes) const { return TransmitTimeFor(0, bytes); }

bool Link::LossModelDrops(int side, size_t bytes) {
  Side& s = sides_[side];
  sim::Random& rng = RngFor(side);
  if (s.config.loss_probability > 0.0 && rng.Bernoulli(s.config.loss_probability)) {
    return true;
  }
  if (s.config.bit_error_rate > 0.0) {
    const double bits = static_cast<double>(bytes) * 8.0;
    const double p_ok = std::pow(1.0 - s.config.bit_error_rate, bits);
    if (rng.Bernoulli(1.0 - p_ok)) {
      return true;
    }
  }
  return false;
}

void Link::ApplyPerSide(const std::function<void(int)>& mutate) {
  if (!cross_region() || !sim_->InEvent()) {
    // Same-region link, or the main thread between runs: both sides are
    // owned by the caller, so the mutation is instantaneous — exactly the
    // original single-owner link semantics.
    mutate(0);
    mutate(1);
    return;
  }
  const sim::RegionId caller = sim_->CurrentRegion();
  int local;
  if (caller == sides_[0].region) {
    local = 0;
  } else {
    COMMA_CHECK(caller == sides_[1].region)
        << "cross-region link " << name_ << " mutated from foreign region " << caller;
    local = 1;
  }
  mutate(local);
  const int remote = 1 - local;
  const sim::Duration lookahead = sim_->EdgeLookahead(caller, sides_[remote].region);
  sim_->ScheduleInRegion(sides_[remote].region, lookahead,
                         [mutate, remote] { mutate(remote); });
}

void Link::SetBandwidth(uint64_t bps) {
  ApplyPerSide([this, bps](int side) { sides_[side].config.bandwidth_bps = bps ? bps : 1; });
}

void Link::SetPropagationDelay(sim::Duration d) {
  if (cross_region()) {
    // The registered edge lookahead is a standing safety promise; the delay
    // may grow but never sink below it.
    COMMA_CHECK(d >= sim_->EdgeLookahead(sides_[0].region, sides_[1].region))
        << "propagation delay " << d << " below registered lookahead on " << name_;
  }
  ApplyPerSide([this, d](int side) { sides_[side].config.propagation_delay = d; });
}

void Link::SetLossProbability(double p) {
  ApplyPerSide([this, p](int side) { sides_[side].config.loss_probability = p; });
}

void Link::SetBitErrorRate(double ber) {
  ApplyPerSide([this, ber](int side) { sides_[side].config.bit_error_rate = ber; });
}

void Link::SetCorruptProbability(double p) {
  ApplyPerSide([this, p](int side) { sides_[side].config.corrupt_probability = p; });
}

void Link::SetQueueLimit(size_t packets) {
  ApplyPerSide([this, packets](int side) { sides_[side].config.queue_limit_packets = packets; });
}

void Link::SetUp(bool up) {
  ApplyPerSide([this, up](int side) {
    Side& s = sides_[side];
    if (s.up == up) {
      return;
    }
    s.up = up;
    if (!up) {
      // In-flight packets are lost and queued packets are discarded.
      ++s.epoch;
      s.stats.drops_down += s.queue.size();
      s.queue.clear();
      s.transmitting = false;
    } else if (!s.queue.empty()) {
      StartTransmit(side);
    }
  });
}

void Link::Send(int side, PacketPtr packet) {
  Side& s = sides_[side];
  if (!s.up) {
    ++s.stats.drops_down;
    return;
  }
  if (s.queue.size() >= s.config.queue_limit_packets) {
    ++s.stats.drops_queue;
    return;
  }
  s.queue.push_back(std::move(packet));
  if (!s.transmitting) {
    StartTransmit(side);
  }
}

void Link::Deliver(int side, PacketPtr packet, uint64_t expected_epoch, bool check_epoch) {
  Side& dst = sides_[side];
  if (!dst.up || (check_epoch && dst.epoch != expected_epoch)) {
    ++dst.stats.drops_down;
    return;
  }
  ++dst.stats.rx_packets;
  dst.stats.rx_bytes += packet->SizeBytes();
  if (dst.node != nullptr) {
    dst.node->ReceiveFromLink(dst.iface, std::move(packet));
  }
}

void Link::StartTransmit(int side) {
  Side& s = sides_[side];
  if (s.queue.empty() || s.transmitting || !s.up) {
    return;
  }
  s.transmitting = true;
  const size_t bytes = s.queue.front()->SizeBytes();
  const uint64_t epoch_at_start = s.epoch;
  sim_->Schedule(TransmitTimeFor(side, bytes), [this, side, epoch_at_start] {
    Side& sd = sides_[side];
    if (epoch_at_start != sd.epoch || sd.queue.empty()) {
      return;  // Link went down while serializing.
    }
    sd.transmitting = false;
    PacketPtr p = std::move(sd.queue.front());
    sd.queue.pop_front();
    const size_t sz = p->SizeBytes();
    ++sd.stats.tx_packets;
    sd.stats.tx_bytes += sz;

    const int other = 1 - side;
    if (LossModelDrops(side, sz)) {
      ++sd.stats.drops_error;
    } else {
      // Corruption model: damage payload bytes but deliver the packet. The
      // stale checksum is the receiver's evidence; its stack drops it there.
      sim::Random& rng = RngFor(side);
      if (sd.config.corrupt_probability > 0.0 && !p->payload().empty() &&
          rng.Bernoulli(sd.config.corrupt_probability)) {
        const size_t at = rng.NextBelow(p->payload().size());
        p->payload()[at] ^= 0xff;
        ++sd.stats.corrupted;
      }
      // A shared_ptr holder keeps the packet owned even if the event is
      // destroyed unfired (e.g. the simulation ends mid-propagation).
      auto holder = std::make_shared<PacketPtr>(std::move(p));
      const Side& dst = sides_[other];
      if (dst.region == sd.region) {
        // Same region: a flap during propagation (epoch bump) kills the
        // delivery, as the original link always did.
        const uint64_t dst_epoch = dst.epoch;
        sim_->Schedule(sd.config.propagation_delay, [this, other, holder, dst_epoch] {
          Deliver(other, std::move(*holder), dst_epoch, true);
        });
      } else {
        // Cross region: the arrival rides the edge channel and the only
        // honest question is whether the destination side is up when the
        // packet lands (docs/parallel-sim.md, "Cross-region link
        // semantics").
        sim_->ScheduleInRegion(dst.region, sd.config.propagation_delay,
                               [this, other, holder] {
                                 Deliver(other, std::move(*holder), 0, false);
                               });
      }
    }
    StartTransmit(side);
  });
}

}  // namespace comma::net

#include "src/net/link.h"

#include <cmath>

#include "src/net/node.h"

namespace comma::net {

LinkConfig WiredLinkConfig() {
  LinkConfig c;
  c.bandwidth_bps = 10'000'000;  // 10 Mbit/s Ethernet-class.
  c.propagation_delay = sim::kMillisecond;
  c.queue_limit_packets = 64;
  return c;
}

LinkConfig WirelessLinkConfig() {
  LinkConfig c;
  c.bandwidth_bps = 1'000'000;  // 1 Mbit/s WaveLAN-class.
  c.propagation_delay = 5 * sim::kMillisecond;
  c.queue_limit_packets = 32;
  c.loss_probability = 0.01;
  return c;
}

Link::Link(sim::Simulator* sim, sim::Random rng, const LinkConfig& config, std::string name)
    : sim_(sim), rng_(rng), config_(config), name_(std::move(name)) {}

void Link::Attach(int side, Node* node, uint32_t iface) {
  sides_[side].node = node;
  sides_[side].iface = iface;
}

sim::Duration Link::TransmitTime(size_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double seconds = bits / static_cast<double>(config_.bandwidth_bps);
  return sim::SecondsToDuration(seconds);
}

bool Link::LossModelDrops(size_t bytes) {
  if (config_.loss_probability > 0.0 && rng_.Bernoulli(config_.loss_probability)) {
    return true;
  }
  if (config_.bit_error_rate > 0.0) {
    const double bits = static_cast<double>(bytes) * 8.0;
    const double p_ok = std::pow(1.0 - config_.bit_error_rate, bits);
    if (rng_.Bernoulli(1.0 - p_ok)) {
      return true;
    }
  }
  return false;
}

void Link::SetUp(bool up) {
  if (up_ == up) {
    return;
  }
  up_ = up;
  if (!up) {
    // In-flight packets are lost and queued packets are discarded.
    ++epoch_;
    for (Side& side : sides_) {
      side.stats.drops_down += side.queue.size();
      side.queue.clear();
      side.transmitting = false;
    }
  } else {
    for (int s = 0; s < 2; ++s) {
      if (!sides_[s].queue.empty()) {
        StartTransmit(s);
      }
    }
  }
}

void Link::Send(int side, PacketPtr packet) {
  Side& s = sides_[side];
  if (!up_) {
    ++s.stats.drops_down;
    return;
  }
  if (s.queue.size() >= config_.queue_limit_packets) {
    ++s.stats.drops_queue;
    return;
  }
  s.queue.push_back(std::move(packet));
  if (!s.transmitting) {
    StartTransmit(side);
  }
}

void Link::StartTransmit(int side) {
  Side& s = sides_[side];
  if (s.queue.empty() || s.transmitting || !up_) {
    return;
  }
  s.transmitting = true;
  const size_t bytes = s.queue.front()->SizeBytes();
  const uint64_t epoch_at_start = epoch_;
  sim_->Schedule(TransmitTime(bytes), [this, side, epoch_at_start] {
    Side& sd = sides_[side];
    if (epoch_at_start != epoch_ || sd.queue.empty()) {
      return;  // Link went down while serializing.
    }
    sd.transmitting = false;
    PacketPtr p = std::move(sd.queue.front());
    sd.queue.pop_front();
    const size_t sz = p->SizeBytes();
    ++sd.stats.tx_packets;
    sd.stats.tx_bytes += sz;

    const int other = 1 - side;
    if (LossModelDrops(sz)) {
      ++sd.stats.drops_error;
    } else {
      // Corruption model: damage payload bytes but deliver the packet. The
      // stale checksum is the receiver's evidence; its stack drops it there.
      if (config_.corrupt_probability > 0.0 && !p->payload().empty() &&
          rng_.Bernoulli(config_.corrupt_probability)) {
        const size_t at = rng_.NextBelow(p->payload().size());
        p->payload()[at] ^= 0xff;
        ++sd.stats.corrupted;
      }
      // A shared_ptr holder keeps the packet owned even if the event is
      // destroyed unfired (e.g. the simulation ends mid-propagation).
      auto holder = std::make_shared<PacketPtr>(std::move(p));
      sim_->Schedule(config_.propagation_delay, [this, other, holder, epoch_at_start] {
        PacketPtr arrived = std::move(*holder);
        if (epoch_at_start != epoch_ || !up_) {
          ++sides_[other].stats.drops_down;
          return;
        }
        Side& dst = sides_[other];
        ++dst.stats.rx_packets;
        dst.stats.rx_bytes += arrived->SizeBytes();
        if (dst.node != nullptr) {
          dst.node->ReceiveFromLink(dst.iface, std::move(arrived));
        }
      });
    }
    StartTransmit(side);
  });
}

}  // namespace comma::net

#include "src/net/address.h"

#include "src/util/strings.h"

namespace comma::net {

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  auto parts = util::Split(text, '.');
  if (parts.size() != 4) {
    return std::nullopt;
  }
  uint32_t value = 0;
  for (const auto& part : parts) {
    uint32_t octet = 0;
    if (!util::ParseU32(part, &octet) || octet > 255) {
      return std::nullopt;
    }
    value = value << 8 | octet;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::ToString() const {
  return util::Format("%u.%u.%u.%u", value_ >> 24 & 0xff, value_ >> 16 & 0xff, value_ >> 8 & 0xff,
                      value_ & 0xff);
}

namespace {
uint32_t MaskFor(uint8_t length) {
  if (length == 0) {
    return 0;
  }
  return ~uint32_t{0} << (32 - length);
}
}  // namespace

Ipv4Prefix::Ipv4Prefix(Ipv4Address base, uint8_t length)
    : base_(Ipv4Address(base.value() & MaskFor(length))), length_(length > 32 ? 32 : length) {}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto addr = Ipv4Address::Parse(text);
    if (!addr) {
      return std::nullopt;
    }
    return Ipv4Prefix(*addr, 32);
  }
  auto addr = Ipv4Address::Parse(text.substr(0, slash));
  uint32_t length = 0;
  if (!addr || !util::ParseU32(text.substr(slash + 1), &length) || length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*addr, static_cast<uint8_t>(length));
}

bool Ipv4Prefix::Contains(Ipv4Address addr) const {
  return (addr.value() & MaskFor(length_)) == base_.value();
}

std::string Ipv4Prefix::ToString() const {
  return util::Format("%s/%u", base_.ToString().c_str(), length_);
}

}  // namespace comma::net

// A tcpdump-style capture tap: attach to any node, record (and optionally
// print) one summary line per packet. Used for debugging filter pipelines
// and by tests that assert on observed traffic.
#ifndef COMMA_NET_TRACE_TAP_H_
#define COMMA_NET_TRACE_TAP_H_

#include <functional>
#include <string>
#include <vector>

#include "src/net/node.h"

namespace comma::obs {
class Counter;
}

namespace comma::net {

struct CaptureRecord {
  sim::TimePoint when = 0;
  bool outbound = false;
  // Parsed summary fields for programmatic matching.
  Ipv4Address src;
  Ipv4Address dst;
  uint8_t protocol = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t tcp_flags = 0;
  uint16_t window = 0;
  size_t payload_bytes = 0;
  // Eagerly-captured line for packets the parsed fields cannot reproduce
  // (ipip tunnels, raw IP); empty for tcp/udp, whose line Summary() renders
  // on demand — capture stays cheap on the per-packet path.
  std::string raw_summary;

  // "0.123456s out tcp 10.0.0.99:80 -> ... [ACK]", built from the fields.
  std::string Summary() const;
};

class TraceTap : public PacketTap {
 public:
  using Filter = std::function<bool(const Packet&)>;

  // Captures packets passing `node` (all of them unless `filter` is set).
  explicit TraceTap(Node* node, Filter filter = nullptr);
  ~TraceTap() override;
  TraceTap(const TraceTap&) = delete;
  TraceTap& operator=(const TraceTap&) = delete;

  TapVerdict OnPacket(PacketPtr& packet, const TapContext& ctx) override;

  const std::vector<CaptureRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }
  size_t Count() const { return records_.size(); }

  // Number of captured packets satisfying `pred`.
  size_t CountIf(const std::function<bool(const CaptureRecord&)>& pred) const;

  // Renders the whole capture, one line per packet.
  std::string Dump() const;

  // Mirror every capture line to stderr as it happens.
  void set_live(bool live) { live_ = live; }

  // Optional registry handles ("trace.captured_packets" / ".captured_bytes",
  // docs/observability.md). Raw counter pointers, not a registry: the net
  // layer sits below comma_obs in the layer DAG, and src/obs/counter.h is
  // the one obs header net may include. Pass null to unbind.
  void BindMetrics(obs::Counter* packets, obs::Counter* bytes) {
    captured_packets_ = packets;
    captured_bytes_ = bytes;
  }

 private:
  Node* node_;
  Filter filter_;
  std::vector<CaptureRecord> records_;
  bool live_ = false;
  obs::Counter* captured_packets_ = nullptr;
  obs::Counter* captured_bytes_ = nullptr;
};

// Convenience filters.
TraceTap::Filter TcpPort(uint16_t port);
TraceTap::Filter BetweenHosts(Ipv4Address a, Ipv4Address b);

}  // namespace comma::net

#endif  // COMMA_NET_TRACE_TAP_H_

// The Internet checksum (RFC 1071), used by the IP, TCP, and UDP headers.
#ifndef COMMA_NET_CHECKSUM_H_
#define COMMA_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace comma::net {

// Accumulates 16-bit one's-complement sums over possibly discontiguous
// regions (header, pseudo-header, payload).
class ChecksumAccumulator {
 public:
  // Adds a byte region. An odd-length region is padded with a zero byte, so
  // callers must add odd-length regions last or pad explicitly.
  void Add(const uint8_t* data, size_t len);
  void AddU16(uint16_t v);
  void AddU32(uint32_t v);

  // Finalizes to the one's-complement checksum field value.
  uint16_t Finish() const;

 private:
  uint64_t sum_ = 0;
};

// One-shot checksum of a contiguous buffer.
uint16_t InternetChecksum(const uint8_t* data, size_t len);

}  // namespace comma::net

#endif  // COMMA_NET_CHECKSUM_H_

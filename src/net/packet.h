// Packets: IPv4 with TCP, UDP, or an encapsulated inner packet (IP-in-IP,
// RFC 2003, as used by Mobile IP tunnels).
//
// Packets carry structured headers for convenient filter access, but
// Serialize() produces real wire bytes and the checksum fields hold real
// Internet checksums over those bytes. The thesis's `tcp` filter exists to
// recompute checksums after other filters mutate a packet; that contract is
// honoured here: mutating a header or payload leaves checksums stale until
// UpdateChecksums() runs.
#ifndef COMMA_NET_PACKET_H_
#define COMMA_NET_PACKET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/net/address.h"
#include "src/util/bytes.h"

namespace comma::net {

enum class IpProtocol : uint8_t {
  kIcmp = 1,
  kIpInIp = 4,  // Encapsulated IPv4 (Mobile IP tunnels).
  kTcp = 6,
  kUdp = 17,
  kArq = 200,   // Link-layer ARQ framing (AIRMAIL baseline); carries an
                // encapsulated packet plus an ARQ header in the payload.
};

inline constexpr size_t kIpv4HeaderSize = 20;
inline constexpr size_t kTcpHeaderSize = 20;
inline constexpr size_t kUdpHeaderSize = 8;

struct Ipv4Header {
  uint8_t tos = 0;
  uint16_t id = 0;
  uint8_t ttl = 64;
  uint8_t protocol = 0;
  uint16_t checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;
};

// TCP flag bits (RFC 793 order within the flags octet).
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;
inline constexpr uint8_t kTcpUrg = 0x20;

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0;
  uint16_t checksum = 0;
  uint16_t urgent = 0;
};

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t checksum = 0;
};

class Packet;
using PacketPtr = std::unique_ptr<Packet>;

class Packet {
 public:
  Packet();
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  // --- Constructors for the three packet shapes ---
  static PacketPtr MakeTcp(Ipv4Address src, Ipv4Address dst, const TcpHeader& tcp,
                           util::Bytes payload);
  static PacketPtr MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port, uint16_t dst_port,
                           util::Bytes payload);
  static PacketPtr MakeRaw(Ipv4Address src, Ipv4Address dst, IpProtocol protocol,
                           util::Bytes payload);
  // Wraps `inner` in an outer IP header (protocol 4 by default; kArq framing
  // passes its own protocol). Takes ownership.
  static PacketPtr Encapsulate(PacketPtr inner, Ipv4Address tunnel_src, Ipv4Address tunnel_dst,
                               IpProtocol protocol = IpProtocol::kIpInIp);

  // --- Header access ---
  Ipv4Header& ip() { return ip_; }
  const Ipv4Header& ip() const { return ip_; }

  bool has_tcp() const { return ip_.protocol == static_cast<uint8_t>(IpProtocol::kTcp); }
  TcpHeader& tcp() { return tcp_; }
  const TcpHeader& tcp() const { return tcp_; }

  bool has_udp() const { return ip_.protocol == static_cast<uint8_t>(IpProtocol::kUdp); }
  UdpHeader& udp() { return udp_; }
  const UdpHeader& udp() const { return udp_; }

  bool has_inner() const { return inner_ != nullptr; }
  Packet* inner() { return inner_.get(); }
  const Packet* inner() const { return inner_.get(); }
  // Removes and returns the encapsulated packet (tunnel exit).
  PacketPtr Decapsulate();

  util::Bytes& payload() { return payload_; }
  const util::Bytes& payload() const { return payload_; }
  void set_payload(util::Bytes payload) { payload_ = std::move(payload); }

  // --- Wire representation ---
  // Total on-the-wire size including all headers and any inner packet.
  size_t SizeBytes() const;
  // Serializes to wire bytes using the checksum values currently stored.
  util::Bytes Serialize() const;
  // Recomputes IP and transport checksums (recursively for inner packets).
  void UpdateChecksums();
  // Recomputes only the IP header checksum — what a router does when it
  // rewrites the TTL. Transport checksums stay end-to-end.
  void UpdateIpChecksum();
  // True when all stored checksums match the current contents.
  bool VerifyChecksums() const;

  PacketPtr Clone() const;

  // Unique id assigned at construction, preserved by Clone(), for tracing.
  uint64_t uid() const { return uid_; }

  // One-line human-readable description, e.g.
  // "tcp 10.0.0.1:80 -> 11.11.10.10:1169 seq=100 ack=5 len=512 [ACK]".
  std::string Describe() const;

 private:
  uint16_t TransportChecksum() const;

  static uint64_t next_uid_;

  uint64_t uid_;
  Ipv4Header ip_;
  TcpHeader tcp_;
  UdpHeader udp_;
  util::Bytes payload_;
  PacketPtr inner_;
};

// Sequence space consumed by a TCP segment: payload length plus one for each
// of SYN and FIN.
uint32_t TcpSegmentLength(const Packet& p);

// Serializes just the TCP header into `w` (checksum field as stored).
void SerializeTcpHeader(const TcpHeader& h, size_t segment_len, util::ByteWriter& w);

// Renders TCP flags as "[SYN,ACK]".
std::string TcpFlagsToString(uint8_t flags);

}  // namespace comma::net

#endif  // COMMA_NET_PACKET_H_

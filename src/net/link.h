// Point-to-point links with bandwidth, propagation delay, bounded drop-tail
// queues, loss models, and runtime-variable QoS.
//
// The wireless variability the thesis is about (§2.3) is modelled here: a
// link's bandwidth, delay, loss probability, bit-error rate, and up/down
// state can all change while the simulation runs, and the EEM reads the
// per-side counters this class maintains.
//
// Concurrency (DESIGN.md §7, docs/parallel-sim.md): link state is held
// per side, and each side belongs to the region of its attached node
// (SetRegions; both default to region 0). Same-region links behave exactly
// like the original single-owner link. A *cross-region* link is the PDES
// partition boundary: its propagation delay registers as the edge's
// conservative lookahead, deliveries are scheduled into the destination
// side's region through the simulator's cross-region channels, and QoS/up
// mutations apply to the caller's side immediately and to the remote side
// one lookahead later (ApplyPerSide). Consequently a cross link delivers a
// packet iff the destination side is up at *arrival* time, whereas a
// same-region link keeps the original in-flight epoch-capture semantics.
#ifndef COMMA_NET_LINK_H_
#define COMMA_NET_LINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace comma::net {

class Node;

struct LinkConfig {
  uint64_t bandwidth_bps = 10'000'000;                    // 10 Mbit/s wired default.
  sim::Duration propagation_delay = sim::kMillisecond;    // 1 ms.
  size_t queue_limit_packets = 64;                        // Drop-tail bound.
  double loss_probability = 0.0;                          // Per-packet Bernoulli loss.
  double bit_error_rate = 0.0;                            // Independent per-bit errors.
  // Per-packet probability that payload bytes are flipped in flight instead
  // of the packet being dropped. Checksums are left stale, so the receiving
  // stack's verification is what catches (and drops) the damage.
  double corrupt_probability = 0.0;
};

// Canonical configurations for the two environments in the thesis's network
// model (Fig. 1.1): a fast stable wired segment and a slow lossy wireless one.
LinkConfig WiredLinkConfig();
LinkConfig WirelessLinkConfig();
// A fat, longer-haul segment for gateway backhaul in multi-gateway
// topologies; its 5 ms propagation delay is the usual PDES lookahead.
LinkConfig BackboneLinkConfig();

struct LinkSideStats {
  uint64_t tx_packets = 0;    // Packets fully serialized onto the wire.
  uint64_t tx_bytes = 0;
  uint64_t rx_packets = 0;    // Packets delivered to this side's node.
  uint64_t rx_bytes = 0;
  uint64_t drops_queue = 0;   // Drop-tail overflow.
  uint64_t drops_error = 0;   // Loss model.
  uint64_t drops_down = 0;    // Link was down.
  uint64_t corrupted = 0;     // Payload bytes flipped in flight (delivered).
};

class Link {
 public:
  Link(sim::Simulator* sim, sim::Random rng, const LinkConfig& config, std::string name);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Attaches one end. `side` is 0 or 1; `iface` is the node's interface index.
  void Attach(int side, Node* node, uint32_t iface);

  // Declares the regions the two sides live in (before the first Run).
  // Differing regions make this a cross-region link: the smaller of the two
  // sides' propagation delays is registered as the edge lookahead.
  void SetRegions(sim::RegionId side0, sim::RegionId side1);
  sim::RegionId region(int side) const { return sides_[side].region; }
  bool cross_region() const { return sides_[0].region != sides_[1].region; }

  // Enqueues a packet for transmission from `side` toward the other side.
  void Send(int side, PacketPtr packet);

  // --- Runtime QoS control (the "wireless variability" knobs) ---
  // Mutations apply to both sides: instantly on a same-region link; on a
  // cross-region link the caller's side changes now and the remote side one
  // edge-lookahead later (the partition is honest about propagation).
  void SetBandwidth(uint64_t bps);
  void SetPropagationDelay(sim::Duration d);
  void SetLossProbability(double p);
  void SetBitErrorRate(double ber);
  void SetCorruptProbability(double p);
  void SetQueueLimit(size_t packets);
  // Taking a link down drops everything in flight (a mobile moving out of
  // range loses whatever was in the air).
  void SetUp(bool up);

  bool IsUp() const { return sides_[0].up && sides_[1].up; }
  const LinkConfig& config() const { return sides_[0].config; }
  const LinkSideStats& stats(int side) const { return sides_[side].stats; }
  // The node and interface attached at `side` (nullptr before Attach).
  Node* attached_node(int side) const { return sides_[side].node; }
  uint32_t attached_iface(int side) const { return sides_[side].iface; }
  const std::string& name() const { return name_; }
  size_t QueueDepth(int side) const { return sides_[side].queue.size(); }

  // Serialization time for `bytes` at side 0's current bandwidth.
  sim::Duration TransmitTime(size_t bytes) const;

 private:
  struct Side {
    Node* node = nullptr;
    uint32_t iface = 0;
    sim::RegionId region = sim::kMainRegion;
    // Every QoS knob and the up/down state live per side so that the two
    // regions of a cross link never touch shared mutable state.
    LinkConfig config;
    bool up = true;
    // Generation counter: bumped when this side goes down so in-flight
    // same-region delivery events from before the outage cancel themselves.
    uint64_t epoch = 0;
    sim::Random rng;
    std::deque<PacketPtr> queue;
    bool transmitting = false;
    LinkSideStats stats;
  };

  void StartTransmit(int side);
  void Deliver(int side, PacketPtr packet, uint64_t expected_epoch, bool check_epoch);
  bool LossModelDrops(int side, size_t bytes);
  // Same-region links draw loss/corruption from the shared rng_ (the
  // original single-owner sequence, bit-identical for a given seed);
  // cross-region links use per-side streams forked at SetRegions so the
  // two regions never share mutable RNG state.
  sim::Random& RngFor(int side);
  // Runs `mutate(side)` on both sides: both immediately when same-region or
  // not inside an event; caller's side now + remote side at +lookahead when
  // invoked from a cross link's endpoint region.
  void ApplyPerSide(const std::function<void(int)>& mutate);
  sim::Duration TransmitTimeFor(int side, size_t bytes) const;

  sim::Simulator* sim_;
  std::string name_;
  sim::Random rng_;  // Shared draw sequence for same-region links.
  Side sides_[2];
};

}  // namespace comma::net

#endif  // COMMA_NET_LINK_H_

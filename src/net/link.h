// Point-to-point links with bandwidth, propagation delay, bounded drop-tail
// queues, loss models, and runtime-variable QoS.
//
// The wireless variability the thesis is about (§2.3) is modelled here: a
// link's bandwidth, delay, loss probability, bit-error rate, and up/down
// state can all change while the simulation runs, and the EEM reads the
// per-side counters this class maintains.
//
// Concurrency (DESIGN.md §7): a Link is owned by the simulation thread.
// Its queues, counters, and QoS state are mutated only from simulator
// callbacks; cross-thread access stays banned until the PDES partitioning
// assigns links to logical processes with explicit synchronization.
#ifndef COMMA_NET_LINK_H_
#define COMMA_NET_LINK_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace comma::net {

class Node;

struct LinkConfig {
  uint64_t bandwidth_bps = 10'000'000;                    // 10 Mbit/s wired default.
  sim::Duration propagation_delay = sim::kMillisecond;    // 1 ms.
  size_t queue_limit_packets = 64;                        // Drop-tail bound.
  double loss_probability = 0.0;                          // Per-packet Bernoulli loss.
  double bit_error_rate = 0.0;                            // Independent per-bit errors.
  // Per-packet probability that payload bytes are flipped in flight instead
  // of the packet being dropped. Checksums are left stale, so the receiving
  // stack's verification is what catches (and drops) the damage.
  double corrupt_probability = 0.0;
};

// Canonical configurations for the two environments in the thesis's network
// model (Fig. 1.1): a fast stable wired segment and a slow lossy wireless one.
LinkConfig WiredLinkConfig();
LinkConfig WirelessLinkConfig();

struct LinkSideStats {
  uint64_t tx_packets = 0;    // Packets fully serialized onto the wire.
  uint64_t tx_bytes = 0;
  uint64_t rx_packets = 0;    // Packets delivered to this side's node.
  uint64_t rx_bytes = 0;
  uint64_t drops_queue = 0;   // Drop-tail overflow.
  uint64_t drops_error = 0;   // Loss model.
  uint64_t drops_down = 0;    // Link was down.
  uint64_t corrupted = 0;     // Payload bytes flipped in flight (delivered).
};

class Link {
 public:
  Link(sim::Simulator* sim, sim::Random rng, const LinkConfig& config, std::string name);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Attaches one end. `side` is 0 or 1; `iface` is the node's interface index.
  void Attach(int side, Node* node, uint32_t iface);

  // Enqueues a packet for transmission from `side` toward the other side.
  void Send(int side, PacketPtr packet);

  // --- Runtime QoS control (the "wireless variability" knobs) ---
  void SetBandwidth(uint64_t bps) { config_.bandwidth_bps = bps ? bps : 1; }
  void SetPropagationDelay(sim::Duration d) { config_.propagation_delay = d; }
  void SetLossProbability(double p) { config_.loss_probability = p; }
  void SetBitErrorRate(double ber) { config_.bit_error_rate = ber; }
  void SetCorruptProbability(double p) { config_.corrupt_probability = p; }
  void SetQueueLimit(size_t packets) { config_.queue_limit_packets = packets; }
  // Taking a link down drops everything in flight (a mobile moving out of
  // range loses whatever was in the air).
  void SetUp(bool up);

  bool IsUp() const { return up_; }
  const LinkConfig& config() const { return config_; }
  const LinkSideStats& stats(int side) const { return sides_[side].stats; }
  // The node and interface attached at `side` (nullptr before Attach).
  Node* attached_node(int side) const { return sides_[side].node; }
  uint32_t attached_iface(int side) const { return sides_[side].iface; }
  const std::string& name() const { return name_; }
  size_t QueueDepth(int side) const { return sides_[side].queue.size(); }

  // Serialization time for `bytes` at the current bandwidth.
  sim::Duration TransmitTime(size_t bytes) const;

 private:
  struct Side {
    Node* node = nullptr;
    uint32_t iface = 0;
    std::deque<PacketPtr> queue;
    bool transmitting = false;
    LinkSideStats stats;
  };

  void StartTransmit(int side);
  bool LossModelDrops(size_t bytes);

  sim::Simulator* sim_;
  sim::Random rng_;
  LinkConfig config_;
  std::string name_;
  bool up_ = true;
  // Generation counter: bumped when the link goes down so in-flight delivery
  // events from before the outage cancel themselves.
  uint64_t epoch_ = 0;
  Side sides_[2];
};

}  // namespace comma::net

#endif  // COMMA_NET_LINK_H_

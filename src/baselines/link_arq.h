// AIRMAIL-style link-layer ARQ baseline (thesis §3.2).
//
// A pair of ArqEndpoints straddling the wireless hop gives it reliable
// delivery below IP: the sending side frames each packet with a sequence
// number, buffers it, and retransmits on a short link timer until the peer
// acknowledges. Duplicates are suppressed at the receiver, but delivery is
// *not* reordered — exactly the property Snoop (§8.2.1) criticizes: a
// transport above may see out-of-order arrivals after link recovery and
// fire duplicate acks.
//
// Framing: IP protocol kArq; the original packet rides encapsulated; the
// outer payload is [type(0=data,1=ack), u32 seq].
#ifndef COMMA_BASELINES_LINK_ARQ_H_
#define COMMA_BASELINES_LINK_ARQ_H_

#include <map>
#include <set>

#include "src/core/host.h"

namespace comma::baselines {

struct ArqStats {
  uint64_t frames_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t retransmissions = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t acks_sent = 0;
  uint64_t frames_abandoned = 0;  // Retry limit exceeded.
};

struct ArqConfig {
  sim::Duration retransmit_timeout = 60 * sim::kMillisecond;
  int max_retries = 10;
  size_t window = 64;  // Max unacknowledged frames.
};

class ArqEndpoint : public net::PacketTap {
 public:
  enum class WrapMode {
    kTowardPeerAddress,  // Wrap transit packets destined exactly for the peer
                         // (gateway side: only mobile-bound traffic).
    kEverything,         // Wrap all locally-originated packets (mobile side:
                         // its only path is the wireless link).
  };

  ArqEndpoint(core::Host* host, net::Ipv4Address peer, WrapMode mode,
              const ArqConfig& config = {});
  ~ArqEndpoint() override;

  const ArqStats& stats() const { return stats_; }

  net::TapVerdict OnPacket(net::PacketPtr& packet, const net::TapContext& ctx) override;

 private:
  struct PendingFrame {
    net::PacketPtr frame;  // The full ARQ-framed packet, ready to resend.
    int retries = 0;
    sim::TimePoint sent_at = 0;
  };

  void WrapAndSend(net::PacketPtr packet);
  void OnArqPacket(net::PacketPtr packet);
  void SendAck(uint32_t seq);
  void ArmTimer();
  void OnTimer();

  core::Host* host_;
  net::Ipv4Address peer_;
  WrapMode mode_;
  ArqConfig config_;
  uint32_t next_seq_ = 1;
  std::map<uint32_t, PendingFrame> unacked_;
  std::set<uint32_t> seen_;  // Receiver-side dedupe (bounded).
  sim::TimerId timer_ = sim::kInvalidTimerId;
  ArqStats stats_;
};

}  // namespace comma::baselines

#endif  // COMMA_BASELINES_LINK_ARQ_H_

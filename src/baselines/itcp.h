// I-TCP baseline (thesis §3.2, after Bakre & Badrinath).
//
// A split-connection relay at the Mobility Support Router: the wired-side
// TCP connection terminates at the relay, which opens a second, separately
// tuned connection across the wireless hop and splices bytes between them.
//
// This is the approach the thesis argues *against*: it acknowledges data to
// the wired sender before the mobile has it, breaking end-to-end semantics
// (§5.1.2). The relay tracks the exposure explicitly — bytes acked to the
// sender that were never delivered to the mobile — so experiment E13 can
// quantify the violation.
//
// Transparent interception is simulated by connecting the client to the
// relay's port rather than the server's (the thesis's MSR redirects with
// routing tricks; the splice semantics are identical).
#ifndef COMMA_BASELINES_ITCP_H_
#define COMMA_BASELINES_ITCP_H_

#include <map>
#include <memory>

#include "src/core/host.h"

namespace comma::baselines {

struct ItcpStats {
  uint64_t connections_spliced = 0;
  uint64_t bytes_wired_in = 0;       // Received (and acked) from the sender.
  uint64_t bytes_wireless_out = 0;   // Accepted by the wireless-side socket.
  uint64_t bytes_wireless_acked = 0; // Actually delivered to the mobile.
  // The end-to-end violation: data the sender believes delivered that the
  // mobile never received when the wireless side died.
  uint64_t bytes_orphaned = 0;
};

class ItcpRelay {
 public:
  // Splices connections arriving on `listen_port` of `msr` to
  // `target`:`target_port`, using `wireless_config` for the second leg
  // (I-TCP's wireless-specific protocol, here a tuned TCP).
  ItcpRelay(core::Host* msr, uint16_t listen_port, net::Ipv4Address target, uint16_t target_port,
            const tcp::TcpConfig& wireless_config = WirelessTuned());

  // An aggressive profile for the wireless leg: short RTO floor, small
  // initial timeout — loss is assumed transient, not congestive.
  static tcp::TcpConfig WirelessTuned();

  const ItcpStats& stats() const { return stats_; }

 private:
  struct Splice {
    tcp::TcpConnection* wired = nullptr;
    tcp::TcpConnection* wireless = nullptr;
    util::Bytes pending;          // Received from wired, not yet accepted by wireless.
    bool wired_closed = false;
  };

  void OnAccept(tcp::TcpConnection* wired);
  void PumpToWireless(const std::shared_ptr<Splice>& splice);

  core::Host* msr_;
  net::Ipv4Address target_;
  uint16_t target_port_;
  tcp::TcpConfig wireless_config_;
  ItcpStats stats_;
};

}  // namespace comma::baselines

#endif  // COMMA_BASELINES_ITCP_H_

#include "src/baselines/itcp.h"

namespace comma::baselines {

tcp::TcpConfig ItcpRelay::WirelessTuned() {
  tcp::TcpConfig cfg;
  cfg.rto_min = 200 * sim::kMillisecond;  // Retransmit lost packets sooner.
  cfg.rto_initial = sim::kSecond;
  cfg.initial_cwnd_segments = 2;
  return cfg;
}

ItcpRelay::ItcpRelay(core::Host* msr, uint16_t listen_port, net::Ipv4Address target,
                     uint16_t target_port, const tcp::TcpConfig& wireless_config)
    : msr_(msr), target_(target), target_port_(target_port), wireless_config_(wireless_config) {
  msr_->tcp().Listen(listen_port, [this](tcp::TcpConnection* wired) { OnAccept(wired); });
}

void ItcpRelay::OnAccept(tcp::TcpConnection* wired) {
  ++stats_.connections_spliced;
  auto splice = std::make_shared<Splice>();
  splice->wired = wired;
  splice->wireless = msr_->tcp().Connect(target_, target_port_, wireless_config_);

  // Wired -> relay: data is acknowledged to the sender by the relay's own
  // TCP the moment it arrives — the end-to-end break (§5.1.2).
  wired->set_on_data([this, splice](const util::Bytes& data) {
    stats_.bytes_wired_in += data.size();
    splice->pending.insert(splice->pending.end(), data.begin(), data.end());
    PumpToWireless(splice);
  });
  wired->set_on_remote_close([this, splice] {
    splice->wired_closed = true;
    splice->wired->Close();
    PumpToWireless(splice);
  });

  splice->wireless->set_on_connected([this, splice] { PumpToWireless(splice); });
  splice->wireless->set_on_writable([this, splice] { PumpToWireless(splice); });
  // Relay -> wired (reverse data path).
  splice->wireless->set_on_data([splice](const util::Bytes& data) {
    splice->wired->Send(data);
  });
  splice->wireless->set_on_error([this, splice](const std::string&) {
    // The wireless leg died. Everything the sender was told is delivered
    // but the mobile never received is orphaned: bytes still queued at the
    // relay plus bytes stuck unacknowledged in the wireless send buffer
    // ("the possibly catastrophic position where the sender has received
    // acknowledgment of data which has not yet reached the mobile").
    stats_.bytes_orphaned +=
        splice->pending.size() + splice->wireless->BufferedSendBytes();
    splice->wired->Abort();
  });
  splice->wireless->set_on_remote_close([splice] {
    splice->wireless->Close();
    splice->wired->Close();
  });
}

void ItcpRelay::PumpToWireless(const std::shared_ptr<Splice>& splice) {
  while (!splice->pending.empty()) {
    const size_t n = splice->wireless->Send(splice->pending.data(), splice->pending.size());
    if (n == 0) {
      break;
    }
    stats_.bytes_wireless_out += n;
    splice->pending.erase(splice->pending.begin(), splice->pending.begin() + static_cast<long>(n));
  }
  // What actually reached the mobile: accepted bytes minus those still
  // sitting (unsent or unacknowledged) in the wireless send buffer.
  const size_t buffered = splice->wireless->BufferedSendBytes();
  stats_.bytes_wireless_acked =
      stats_.bytes_wireless_out > buffered ? stats_.bytes_wireless_out - buffered : 0;
  if (splice->pending.empty() && splice->wired_closed) {
    splice->wireless->Close();
  }
}

}  // namespace comma::baselines

#include "src/baselines/link_arq.h"

namespace comma::baselines {

namespace {
constexpr uint8_t kFrameData = 0;
constexpr uint8_t kFrameAck = 1;
}  // namespace

ArqEndpoint::ArqEndpoint(core::Host* host, net::Ipv4Address peer, WrapMode mode,
                         const ArqConfig& config)
    : host_(host), peer_(peer), mode_(mode), config_(config) {
  host_->RegisterProtocol(net::IpProtocol::kArq,
                          [this](net::PacketPtr p) { OnArqPacket(std::move(p)); });
  host_->AddTap(this);
  ArmTimer();
}

ArqEndpoint::~ArqEndpoint() {
  host_->RemoveTap(this);
  if (timer_ != sim::kInvalidTimerId) {
    host_->simulator()->Cancel(timer_);
  }
}

net::TapVerdict ArqEndpoint::OnPacket(net::PacketPtr& packet, const net::TapContext& ctx) {
  if (packet->ip().protocol == static_cast<uint8_t>(net::IpProtocol::kArq)) {
    return net::TapVerdict::kPass;  // Never wrap ARQ frames.
  }
  const bool should_wrap = mode_ == WrapMode::kTowardPeerAddress
                               ? !ctx.outbound && packet->ip().dst == peer_
                               : ctx.outbound;
  if (!should_wrap) {
    return net::TapVerdict::kPass;
  }
  if (unacked_.size() >= config_.window) {
    // Window full: let the packet take its chances unprotected rather than
    // head-of-line-block everything behind it.
    return net::TapVerdict::kPass;
  }
  WrapAndSend(std::move(packet));
  return net::TapVerdict::kConsume;
}

void ArqEndpoint::WrapAndSend(net::PacketPtr packet) {
  const uint32_t seq = next_seq_++;
  net::PacketPtr frame = net::Packet::Encapsulate(std::move(packet), host_->PrimaryAddress(),
                                                  peer_, net::IpProtocol::kArq);
  util::ByteWriter w(&frame->payload());
  w.WriteU8(kFrameData);
  w.WriteU32(seq);
  frame->UpdateChecksums();
  ++stats_.frames_sent;
  unacked_[seq] = PendingFrame{frame->Clone(), 0, host_->simulator()->Now()};
  host_->InjectPacket(std::move(frame));
}

void ArqEndpoint::OnArqPacket(net::PacketPtr packet) {
  util::ByteReader r(packet->payload());
  const uint8_t type = r.ReadU8();
  const uint32_t seq = r.ReadU32();
  if (r.failed()) {
    return;
  }
  if (type == kFrameAck) {
    unacked_.erase(seq);
    return;
  }
  // Data frame: always (re-)acknowledge, deliver once.
  SendAck(seq);
  if (!seen_.insert(seq).second) {
    ++stats_.duplicates_suppressed;
    return;
  }
  if (seen_.size() > 4096) {
    seen_.erase(seen_.begin());
  }
  net::PacketPtr inner = packet->Decapsulate();
  if (inner != nullptr) {
    ++stats_.frames_delivered;
    host_->InjectPacket(std::move(inner));
  }
}

void ArqEndpoint::SendAck(uint32_t seq) {
  util::Bytes payload;
  util::ByteWriter w(&payload);
  w.WriteU8(kFrameAck);
  w.WriteU32(seq);
  ++stats_.acks_sent;
  host_->InjectPacket(net::Packet::MakeRaw(host_->PrimaryAddress(), peer_,
                                           net::IpProtocol::kArq, std::move(payload)));
}

void ArqEndpoint::ArmTimer() {
  timer_ = host_->simulator()->ScheduleTimer(config_.retransmit_timeout, [this] { OnTimer(); });
}

void ArqEndpoint::OnTimer() {
  timer_ = sim::kInvalidTimerId;
  const sim::TimePoint now = host_->simulator()->Now();
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    PendingFrame& pending = it->second;
    if (now - pending.sent_at < config_.retransmit_timeout) {
      ++it;
      continue;  // Still waiting on the first (or latest) transmission.
    }
    if (pending.retries >= config_.max_retries) {
      ++stats_.frames_abandoned;
      it = unacked_.erase(it);
      continue;
    }
    ++pending.retries;
    ++stats_.retransmissions;
    pending.sent_at = now;
    host_->InjectPacket(pending.frame->Clone());
    ++it;
  }
  ArmTimer();
}

}  // namespace comma::baselines

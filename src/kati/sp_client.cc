#include "src/kati/sp_client.h"

namespace comma::kati {

SpClient::SpClient(core::Host* host, net::Ipv4Address sp_addr, uint16_t port) {
  conn_ = host->tcp().Connect(sp_addr, port);
  conn_->set_on_connected([this] {
    connected_ = true;
    Flush();
  });
  conn_->set_on_data([this](const util::Bytes& data) { OnData(data); });
  conn_->set_on_closed([this] { closed_ = true; });
  conn_->set_on_error([this](const std::string&) { closed_ = true; });
}

void SpClient::Send(const std::string& command, ResponseCallback cb) {
  queue_.emplace_back(command, std::move(cb));
  if (connected_) {
    Flush();
  }
}

void SpClient::Flush() {
  while (!queue_.empty()) {
    auto [command, cb] = std::move(queue_.front());
    queue_.pop_front();
    std::string line = command + "\n";
    conn_->Send(util::AsBytePtr(line.data()), line.size());
    awaiting_.push_back(std::move(cb));
  }
}

void SpClient::OnData(const util::Bytes& data) {
  util::AppendTo(&inbuf_, data);
  size_t newline;
  while ((newline = inbuf_.find('\n')) != std::string::npos) {
    std::string line = inbuf_.substr(0, newline);
    inbuf_.erase(0, newline + 1);
    if (line == ".") {
      if (!awaiting_.empty()) {
        ResponseCallback cb = std::move(awaiting_.front());
        awaiting_.pop_front();
        if (cb) {
          cb(current_response_);
        }
      }
      current_response_.clear();
    } else {
      current_response_ += line + "\n";
    }
  }
}

void SpClient::Close() {
  if (!closed_) {
    conn_->Close();
  }
}

}  // namespace comma::kati

#include "src/kati/shell.h"

#include "src/util/strings.h"

namespace comma::kati {

namespace {
const char kHelp[] =
    "SP control (forwarded to the proxy, thesis 5.3):\n"
    "  load <file> | remove <file>\n"
    "  add <filter> <srcip> <srcport> <dstip> <dstport> [args]\n"
    "  delete <filter> <srcip> <srcport> <dstip> <dstport>\n"
    "  report [filter] | streams\n"
    "  stats [-json] [pattern]                          (metric registry)\n"
    "  service list | service add|delete <name> <key>   (named recipes)\n"
    "Monitoring (EEM, thesis ch. 6):\n"
    "  watch <var> [index] [server-ip] [<op> <bound>]\n"
    "    op: gt|ge|lt|le|eq|ne  -> interrupt notification when in range\n"
    "  unwatch <var> [index] [server-ip]\n"
    "  poll <var> [index] [server-ip]\n"
    "  vars\n"
    "  netload [server-ip]\n";

std::optional<monitor::Op> ParseOp(const std::string& word) {
  if (word == "gt") return monitor::Op::kGt;
  if (word == "ge") return monitor::Op::kGte;
  if (word == "lt") return monitor::Op::kLt;
  if (word == "le") return monitor::Op::kLte;
  if (word == "eq") return monitor::Op::kEq;
  if (word == "ne") return monitor::Op::kNeq;
  return std::nullopt;
}
}  // namespace

Shell::Shell(core::Host* host, net::Ipv4Address sp_addr, OutputSink sink)
    : host_(host), sp_addr_(sp_addr), sink_(std::move(sink)), sp_(host, sp_addr), eem_(host) {
  // Interrupt-mode notifications surface as shell output, then the hook —
  // print first so a hook that Execute()s more commands reads naturally.
  eem_.SetCallback([this](const monitor::VariableId& id, const monitor::Value& value) {
    ++notifies_printed_;
    Print("notify: " + id.ToString() + " = " + monitor::ValueToString(value) + "\n");
    if (on_notify_) {
      on_notify_(id, value);
    }
  });
}

void Shell::Execute(const std::string& line) {
  auto tokens = util::SplitWhitespace(line);
  if (tokens.empty()) {
    return;
  }
  const std::string& cmd = tokens[0];
  if (cmd == "help") {
    Print(kHelp);
    ++responses_received_;
    return;
  }
  if (cmd == "watch") {
    CmdWatch(tokens);
    return;
  }
  if (cmd == "unwatch") {
    CmdUnwatch(tokens);
    return;
  }
  if (cmd == "poll") {
    CmdPoll(tokens);
    return;
  }
  if (cmd == "vars") {
    CmdVars();
    return;
  }
  if (cmd == "netload") {
    CmdNetload(tokens);
    return;
  }
  if (cmd == "load" || cmd == "remove" || cmd == "add" || cmd == "delete" || cmd == "report" ||
      cmd == "streams" || cmd == "stats" || cmd == "service") {
    sp_.Send(line, [this](const std::string& response) {
      ++responses_received_;
      if (!response.empty()) {
        Print(response);
      }
    });
    return;
  }
  Print("kati: unknown command: " + cmd + " (try help)\n");
  ++responses_received_;
}

monitor::VariableId Shell::ParseId(const std::vector<std::string>& args, size_t first) {
  monitor::VariableId id;
  if (args.size() > first) {
    id.name = args[first];
  }
  if (args.size() > first + 1) {
    uint32_t index = 0;
    util::ParseU32(args[first + 1], &index);
    id.index = index;
  }
  // Default to the proxy host's EEM server — the gateway is where the
  // interesting wireless-side metrics live.
  id.server = sp_addr_;
  if (args.size() > first + 2) {
    auto addr = net::Ipv4Address::Parse(args[first + 2]);
    if (addr.has_value()) {
      id.server = *addr;
    }
  }
  return id;
}

void Shell::CmdWatch(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    Print("usage: watch <var> [index] [server-ip] [<op> <bound>]\n");
    ++responses_received_;
    return;
  }
  // Split a trailing "<op> <bound>" pair off the positional arguments so
  // `watch ttsf.bytes_dropped gt 5000` works with or without index/ip.
  std::vector<std::string> positional = args;
  monitor::Attr attr = monitor::Attr::Always(monitor::NotifyMode::kPeriodic);
  bool threshold = false;
  if (positional.size() >= 4) {
    if (auto op = ParseOp(positional[positional.size() - 2]); op.has_value()) {
      double bound = 0.0;
      if (!util::ParseDouble(positional.back(), &bound)) {
        Print("watch: bound must be numeric: " + positional.back() + "\n");
        ++responses_received_;
        return;
      }
      // Integral bounds are sent as LONG so they compare against counter
      // variables (the bridge publishes counters as LONG); anything with a
      // fraction goes as DOUBLE.
      monitor::Value v = bound == static_cast<double>(static_cast<int64_t>(bound))
                             ? monitor::Value(static_cast<int64_t>(bound))
                             : monitor::Value(bound);
      attr = monitor::Attr::Unary(*op, v, monitor::NotifyMode::kInterrupt);
      threshold = true;
      positional.resize(positional.size() - 2);
    }
  }
  monitor::VariableId id = ParseId(positional, 1);
  eem_.Register(id, attr);
  watched_[id] = true;
  Print(std::string("watching ") + id.ToString() + (threshold ? " (interrupt)" : "") + "\n");
  ++responses_received_;
}

void Shell::CmdUnwatch(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    Print("usage: unwatch <var> [index] [server-ip]\n");
    ++responses_received_;
    return;
  }
  monitor::VariableId id = ParseId(args, 1);
  eem_.Deregister(id);
  watched_.erase(id);
  Print("stopped watching " + id.ToString() + "\n");
  ++responses_received_;
}

void Shell::CmdPoll(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    Print("usage: poll <var> [index] [server-ip]\n");
    ++responses_received_;
    return;
  }
  monitor::VariableId id = ParseId(args, 1);
  eem_.GetValueOnce(id, [this](const monitor::VariableId& vid, const monitor::Value& value) {
    Print(vid.ToString() + " = " + monitor::ValueToString(value) + "\n");
    ++responses_received_;
  });
}

void Shell::CmdVars() {
  std::string out;
  for (const auto& [id, unused] : watched_) {
    auto value = eem_.GetValue(id);
    out += util::Format("%-32s %s%s\n", id.ToString().c_str(),
                        value.has_value() ? monitor::ValueToString(*value).c_str() : "(no data)",
                        eem_.IsInRange(id) ? "" : " [out of range]");
  }
  if (out.empty()) {
    out = "(nothing watched; use: watch <var>)\n";
  }
  Print(out);
  ++responses_received_;
}

void Shell::CmdNetload(const std::vector<std::string>& args) {
  // The Xnetload view (Fig. 7.2): instantaneous in/out packet rates of the
  // monitored host, rendered as bars.
  monitor::VariableId in_id;
  in_id.name = "ethInAvg";
  in_id.server = sp_addr_;
  monitor::VariableId out_id;
  out_id.name = "ethOutAvg";
  out_id.server = sp_addr_;
  if (args.size() > 1) {
    auto addr = net::Ipv4Address::Parse(args[1]);
    if (addr.has_value()) {
      in_id.server = *addr;
      out_id.server = *addr;
    }
  }
  auto pending = std::make_shared<int>(2);
  auto values = std::make_shared<std::map<std::string, double>>();
  auto finish = [this, pending, values] {
    if (--*pending > 0) {
      return;
    }
    std::string out = "netload (packets/second):\n";
    for (const auto& [name, rate] : *values) {
      const size_t bar = std::min<size_t>(static_cast<size_t>(rate / 10.0), 50);
      out += util::Format("  %-10s %8.1f |%s\n", name.c_str(), rate,
                          std::string(bar, '#').c_str());
    }
    Print(out);
    ++responses_received_;
  };
  auto handler = [values, finish](const monitor::VariableId& vid, const monitor::Value& value) {
    double rate = 0.0;
    if (std::holds_alternative<double>(value)) {
      rate = std::get<double>(value);
    } else if (std::holds_alternative<int64_t>(value)) {
      rate = static_cast<double>(std::get<int64_t>(value));
    }
    (*values)[vid.name] = rate;
    finish();
  };
  eem_.GetValueOnce(in_id, handler);
  eem_.GetValueOnce(out_id, handler);
}

}  // namespace comma::kati

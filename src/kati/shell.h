// Kati — the user shell for third-party service control (thesis Ch. 7).
//
// Kati's three roles (§4.1):
//  1. Monitoring: stream/filter state from the SP, network metrics from EEM
//     servers (the GUI's main window and Xnetload view, Figs. 7.1-7.2,
//     rendered as text here).
//  2. Debugging: live filter status and stream accounting.
//  3. Interactive control: add and remove services on individual streams
//     (Figs. 7.3-7.4) — the mechanism that makes *transparent* services
//     controllable by someone other than the application.
//
// The shell is line-oriented; output is delivered to a sink callback so it
// embeds in tests, examples, and an interactive stdin loop alike. SP
// commands are forwarded verbatim over the simulated network to port 12000;
// monitor commands drive a local EEM client.
#ifndef COMMA_KATI_SHELL_H_
#define COMMA_KATI_SHELL_H_

#include <functional>
#include <map>
#include <string>

#include "src/kati/sp_client.h"
#include "src/monitor/eem_client.h"

namespace comma::kati {

class Shell {
 public:
  using OutputSink = std::function<void(const std::string&)>;

  // `host` is where Kati runs (typically the mobile); `sp_addr` the proxy.
  Shell(core::Host* host, net::Ipv4Address sp_addr, OutputSink sink);

  // Executes one command line. SP commands complete asynchronously (run the
  // simulator to see their output). Supported:
  //   load/remove/add/delete/report/streams/stats - forwarded to the SP (§5.3)
  //   watch <var> [index] [server-ip] [<op> <bound>]
  //     - register EEM interest. Without op/bound: periodic silent updates.
  //       With op (gt|ge|lt|le|eq|ne) and a numeric bound: interrupt mode —
  //       the shell prints "notify: <var> = <value>" (and fires the
  //       on_notify hook) the moment the value enters the range. Combined
  //       with the EemMetricsBridge this closes the control loop: watch a
  //       proxy metric, react by issuing SP commands.
  //   unwatch <var> [index] [server-ip]       - deregister
  //   poll <var> [index] [server-ip]          - one-shot EEM query
  //   vars                                    - show watched values (the PDA)
  //   netload [server-ip]                     - xnetload-style traffic view
  //   help
  void Execute(const std::string& line);

  // Total commands whose responses have arrived (for test synchronization).
  uint64_t responses_received() const { return responses_received_; }
  monitor::EemClient& eem() { return eem_; }

  // Hook fired (after the "notify:" line is printed) on every interrupt-mode
  // notification — the programmatic half of the control loop; scripts and
  // tests react here, e.g. by Execute()ing an `add`.
  using NotifyHook = std::function<void(const monitor::VariableId&, const monitor::Value&)>;
  void set_on_notify(NotifyHook hook) { on_notify_ = std::move(hook); }
  uint64_t notifies_printed() const { return notifies_printed_; }

 private:
  void Print(const std::string& text) { sink_(text); }
  monitor::VariableId ParseId(const std::vector<std::string>& args, size_t first);
  void CmdWatch(const std::vector<std::string>& args);
  void CmdUnwatch(const std::vector<std::string>& args);
  void CmdPoll(const std::vector<std::string>& args);
  void CmdVars();
  void CmdNetload(const std::vector<std::string>& args);

  core::Host* host_;
  net::Ipv4Address sp_addr_;
  OutputSink sink_;
  SpClient sp_;
  monitor::EemClient eem_;
  std::map<monitor::VariableId, bool> watched_;
  uint64_t responses_received_ = 0;
  NotifyHook on_notify_;
  uint64_t notifies_printed_ = 0;
};

}  // namespace comma::kati

#endif  // COMMA_KATI_SHELL_H_

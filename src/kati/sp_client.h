// Client for the Service-Proxy control port (thesis §5.3): the programmatic
// equivalent of `telnet eramosa 12000`, used by Kati.
//
// Commands queue until the connection establishes; responses are matched to
// commands in FIFO order using the server's "." end-of-response marker.
#ifndef COMMA_KATI_SP_CLIENT_H_
#define COMMA_KATI_SP_CLIENT_H_

#include <deque>
#include <functional>
#include <string>

#include "src/core/host.h"

namespace comma::kati {

class SpClient {
 public:
  using ResponseCallback = std::function<void(const std::string&)>;

  // Connects from `host` to the SP command server at `sp_addr`:`port`.
  SpClient(core::Host* host, net::Ipv4Address sp_addr, uint16_t port = 12000);

  // Sends one command line; `cb` fires with the full response text (without
  // the "." marker). Commands may be issued before the connection is up.
  void Send(const std::string& command, ResponseCallback cb);

  bool connected() const { return connected_; }
  bool closed() const { return closed_; }
  void Close();

 private:
  void Flush();
  void OnData(const util::Bytes& data);

  tcp::TcpConnection* conn_;
  bool connected_ = false;
  bool closed_ = false;
  std::deque<std::pair<std::string, ResponseCallback>> queue_;  // Unsent.
  std::deque<ResponseCallback> awaiting_;                       // Sent, no reply yet.
  std::string inbuf_;
  std::string current_response_;
};

}  // namespace comma::kati

#endif  // COMMA_KATI_SP_CLIENT_H_

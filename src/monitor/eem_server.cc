#include "src/monitor/eem_server.h"

namespace comma::monitor {

EemServer::EemServer(core::Host* host, const EemServerConfig& config)
    : host_(host), config_(config) {
  socket_ = host_->udp().Bind(config_.port);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint& from) {
    OnDatagram(data, from);
  });
  auto snmp = std::make_unique<SnmpProvider>(host_);
  auto host_provider = std::make_unique<HostProvider>(host_);
  host_provider_ = host_provider.get();
  providers_.push_back(std::move(snmp));
  providers_.push_back(std::move(host_provider));

  auto* sim = host_->simulator();
  check_timer_ = sim->ScheduleTimer(config_.check_interval, [this] { CheckTick(); });
  update_timer_ = sim->ScheduleTimer(config_.update_interval, [this] { UpdateTick(); });
}

EemServer::~EemServer() {
  host_->simulator()->Cancel(check_timer_);
  host_->simulator()->Cancel(update_timer_);
}

void EemServer::AddProvider(std::unique_ptr<MetricProvider> provider) {
  providers_.push_back(std::move(provider));
}

std::optional<Value> EemServer::ReadVariable(const std::string& name, uint32_t index) {
  for (const auto& provider : providers_) {
    auto v = provider->Get(name, index);
    if (v.has_value()) {
      return v;
    }
  }
  return std::nullopt;
}

void EemServer::OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from) {
  auto type = PeekType(data);
  if (!type.has_value()) {
    return;
  }
  switch (*type) {
    case MsgType::kRegister: {
      auto msg = DecodeRegister(data);
      if (!msg.has_value()) {
        return;
      }
      if (msg->attr.mode == NotifyMode::kOnce) {
        // Polling: answer immediately, do not store (§6.2 "temporary
        // registrations which are immediately removed").
        auto value = ReadVariable(msg->name, msg->index);
        UpdateMsg reply;
        if (value.has_value()) {
          reply.items.push_back({msg->reg_id, *value, InRange(*value, msg->attr)});
        } else {
          reply.items.push_back({msg->reg_id, Value(std::string("")), false});
        }
        ++updates_sent_;
        socket_->SendTo(from.addr, from.port, EncodeUpdate(reply));
        return;
      }
      Registration reg;
      reg.client = from;
      reg.reg_id = msg->reg_id;
      reg.name = msg->name;
      reg.index = msg->index;
      reg.attr = msg->attr;
      if (config_.lease > 0) {
        reg.expires_at = host_->simulator()->Now() + config_.lease;
      }
      // A refresh (same client, same reg id) must not lose notification
      // bookkeeping, or every lease renewal would re-fire interrupt
      // notifications for an unchanged value.
      auto existing = registrations_.find({ClientKey(from), msg->reg_id});
      if (existing != registrations_.end() && existing->second.name == reg.name &&
          existing->second.index == reg.index) {
        reg.was_in_range = existing->second.was_in_range;
        reg.last_sent = existing->second.last_sent;
      }
      registrations_[{ClientKey(from), msg->reg_id}] = std::move(reg);
      ++acks_sent_;
      socket_->SendTo(from.addr, from.port,
                      EncodeRegisterAck({msg->reg_id, static_cast<uint64_t>(config_.lease)}));
      return;
    }
    case MsgType::kDeregister: {
      auto msg = DecodeDeregister(data);
      if (msg.has_value()) {
        registrations_.erase({ClientKey(from), msg->reg_id});
      }
      return;
    }
    case MsgType::kDeregisterAll: {
      for (auto it = registrations_.begin(); it != registrations_.end();) {
        if (it->first.first == ClientKey(from)) {
          it = registrations_.erase(it);
        } else {
          ++it;
        }
      }
      return;
    }
    default:
      return;  // Server ignores Notify/Update.
  }
}

void EemServer::ExpireLeases() {
  if (config_.lease <= 0) {
    return;
  }
  const sim::TimePoint now = host_->simulator()->Now();
  for (auto it = registrations_.begin(); it != registrations_.end();) {
    if (it->second.expires_at != 0 && it->second.expires_at < now) {
      ++leases_expired_;
      it = registrations_.erase(it);
    } else {
      ++it;
    }
  }
}

void EemServer::CheckTick() {
  host_provider_->Poll(host_->simulator()->Now());
  ExpireLeases();
  for (auto& [key, reg] : registrations_) {
    auto value = ReadVariable(reg.name, reg.index);
    if (!value.has_value()) {
      continue;
    }
    const bool in_range = InRange(*value, reg.attr);
    // Interrupt-style notification fires when the variable *enters* its
    // range, or changes value while inside it (so Op::kAny registrations
    // behave as change notifications).
    const bool changed = !reg.last_sent.has_value() || *reg.last_sent != *value;
    if (reg.attr.mode == NotifyMode::kInterrupt && in_range &&
        (!reg.was_in_range || changed)) {
      ++notifies_sent_;
      socket_->SendTo(reg.client.addr, reg.client.port, EncodeNotify({reg.reg_id, *value}));
      reg.last_sent = *value;
    }
    reg.was_in_range = in_range;
  }
  check_timer_ =
      host_->simulator()->ScheduleTimer(config_.check_interval, [this] { CheckTick(); });
}

void EemServer::UpdateTick() {
  // One batched update per client: in-range variables whose value changed
  // since the last transmission (§6.1.3: updates include only variables that
  // have changed).
  std::map<uint64_t, std::pair<udp::UdpEndpoint, UpdateMsg>> per_client;
  for (auto& [key, reg] : registrations_) {
    auto value = ReadVariable(reg.name, reg.index);
    if (!value.has_value()) {
      continue;
    }
    const bool in_range = InRange(*value, reg.attr);
    reg.was_in_range = in_range;
    if (!in_range) {
      continue;
    }
    if (reg.last_sent.has_value() && *reg.last_sent == *value) {
      continue;  // Unchanged.
    }
    auto& entry = per_client[key.first];
    entry.first = reg.client;
    entry.second.items.push_back({reg.reg_id, *value, true});
    reg.last_sent = *value;
  }
  for (auto& [client_key, entry] : per_client) {
    ++updates_sent_;
    socket_->SendTo(entry.first.addr, entry.first.port, EncodeUpdate(entry.second));
  }
  update_timer_ =
      host_->simulator()->ScheduleTimer(config_.update_interval, [this] { UpdateTick(); });
}

}  // namespace comma::monitor

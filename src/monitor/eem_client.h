// The EEM client library (thesis §6.3, Tables 6.3–6.7).
//
// Mirrors the thesis's comma_* interface in C++:
//   comma_init/comma_term            -> construction/destruction
//   comma_setcallback                -> SetCallback
//   comma_id_* / comma_attr_*        -> VariableId / Attr value types
//   comma_var_register/deregister[all] -> Register/Deregister/DeregisterAll
//   comma_query_getvalue             -> GetValue        (protected data area)
//   comma_query_isinrange            -> IsInRange
//   comma_query_haschanged           -> HasChanged
//   comma_query_getvalue_once        -> GetValueOnce    (async poll)
//
// Updates arrive silently into the protected data area; interrupt-mode
// registrations additionally fire the callback.
#ifndef COMMA_MONITOR_EEM_CLIENT_H_
#define COMMA_MONITOR_EEM_CLIENT_H_

#include <functional>
#include <map>

#include "src/core/host.h"
#include "src/monitor/protocol.h"

namespace comma::monitor {

class EemClient {
 public:
  using Callback = std::function<void(const VariableId&, const Value&)>;

  explicit EemClient(core::Host* host);
  ~EemClient();
  EemClient(const EemClient&) = delete;
  EemClient& operator=(const EemClient&) = delete;

  // Default callback for interrupt-style notifications (comma_setcallback).
  void SetCallback(Callback cb) { callback_ = std::move(cb); }

  // Registers (id, attr) with the appropriate server. Re-registering the
  // same id replaces the registration.
  bool Register(const VariableId& id, const Attr& attr);
  void Deregister(const VariableId& id);
  void DeregisterAll();

  // --- Protected data area queries (Table 6.7) ---
  // Most recent value, or nullopt if none has arrived yet.
  std::optional<Value> GetValue(const VariableId& id);
  // True if the most recent value was in the requested range.
  bool IsInRange(const VariableId& id) const;
  // True if the value changed since it was last retrieved with GetValue.
  bool HasChanged(const VariableId& id) const;

  // One-shot poll: `cb` fires when the server replies (comma_query_
  // getvalue_once; the thesis blocks, an event-driven client cannot).
  void GetValueOnce(const VariableId& id, Callback cb);

  // --- Traffic accounting (experiment E12) ---
  uint64_t bytes_sent() const { return socket_->bytes_sent(); }
  uint64_t bytes_received() const { return socket_->bytes_received(); }
  uint64_t notifies_received() const { return notifies_received_; }
  uint64_t updates_received() const { return updates_received_; }

 private:
  struct PdaEntry {
    Value value;
    bool in_range = false;
    bool changed = false;
    bool has_value = false;
  };

  struct RegState {
    VariableId id;
    Attr attr;
  };

  void OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from);
  net::Ipv4Address ResolveServer(const VariableId& id) const;

  core::Host* host_;
  std::unique_ptr<udp::UdpSocket> socket_;
  Callback callback_;
  uint32_t next_reg_id_ = 1;
  std::map<uint32_t, RegState> by_reg_id_;
  std::map<VariableId, uint32_t> reg_ids_;
  std::map<VariableId, PdaEntry> pda_;
  std::map<uint32_t, Callback> pending_once_;
  uint64_t notifies_received_ = 0;
  uint64_t updates_received_ = 0;
};

}  // namespace comma::monitor

#endif  // COMMA_MONITOR_EEM_CLIENT_H_

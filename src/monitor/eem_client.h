// The EEM client library (thesis §6.3, Tables 6.3–6.7).
//
// Mirrors the thesis's comma_* interface in C++:
//   comma_init/comma_term            -> construction/destruction
//   comma_setcallback                -> SetCallback
//   comma_id_* / comma_attr_*        -> VariableId / Attr value types
//   comma_var_register/deregister[all] -> Register/Deregister/DeregisterAll
//   comma_query_getvalue             -> GetValue        (protected data area)
//   comma_query_isinrange            -> IsInRange
//   comma_query_haschanged           -> HasChanged
//   comma_query_getvalue_once        -> GetValueOnce    (async poll)
//
// Updates arrive silently into the protected data area; interrupt-mode
// registrations additionally fire the callback.
//
// Registrations are reliable despite riding UDP: every Register is
// retransmitted with exponential backoff until the server acks it, then
// refreshed on the granted lease so a restarted (state-less) server is
// transparently re-populated. GetValue consumers can ask how stale a value
// is (ValueAge) to distinguish "no news" from "server unreachable".
#ifndef COMMA_MONITOR_EEM_CLIENT_H_
#define COMMA_MONITOR_EEM_CLIENT_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/host.h"
#include "src/monitor/protocol.h"

namespace comma::monitor {

class EemClient {
 public:
  using Callback = std::function<void(const VariableId&, const Value&)>;

  // Registration reliability knobs (defaults follow the check-interval
  // timescale: first retry after half a second, backed off to eight).
  static constexpr sim::Duration kInitialRetransmit = 500 * sim::kMillisecond;
  static constexpr sim::Duration kMaxRetransmit = 8 * sim::kSecond;
  static constexpr uint32_t kMaxRetransmitBurst = 6;  // Sends before slowing down.
  static constexpr sim::Duration kProbeInterval = 10 * sim::kSecond;

  explicit EemClient(core::Host* host);
  ~EemClient();
  EemClient(const EemClient&) = delete;
  EemClient& operator=(const EemClient&) = delete;

  // Default callback for interrupt-style notifications (comma_setcallback).
  void SetCallback(Callback cb) { callback_ = std::move(cb); }

  // Registers (id, attr) with the appropriate server. Re-registering the
  // same id replaces the registration. The datagram is retransmitted with
  // exponential backoff until acked, then refreshed every lease/2.
  bool Register(const VariableId& id, const Attr& attr);
  void Deregister(const VariableId& id);
  void DeregisterAll();

  // --- Protected data area queries (Table 6.7) ---
  // Most recent value, or nullopt if none has arrived yet.
  std::optional<Value> GetValue(const VariableId& id);
  // True if the most recent value was in the requested range.
  bool IsInRange(const VariableId& id) const;
  // True if the value changed since it was last retrieved with GetValue.
  bool HasChanged(const VariableId& id) const;
  // How long ago the most recent value arrived, or nullopt if none has.
  // A registered variable whose age keeps growing past the server's update
  // interval means the server (or the path to it) is gone — consumers
  // should fail open rather than act on the stale number.
  std::optional<sim::Duration> ValueAge(const VariableId& id) const;

  // One-shot poll: `cb` fires when the server replies (comma_query_
  // getvalue_once; the thesis blocks, an event-driven client cannot).
  void GetValueOnce(const VariableId& id, Callback cb);

  // --- Introspection ---
  struct RegistrationInfo {
    VariableId id;
    Attr attr;
    bool acked = false;      // Server confirmed since the last (re)send burst.
    uint32_t attempts = 0;   // Datagrams sent since the last ack.
    uint64_t lease_us = 0;   // Lease granted by the server (0 = none yet).
  };
  // Durable registrations (one-shot polls excluded), in VariableId order.
  std::vector<RegistrationInfo> registrations() const;

  // --- Traffic accounting (experiment E12) ---
  uint64_t bytes_sent() const { return socket_->bytes_sent(); }
  uint64_t bytes_received() const { return socket_->bytes_received(); }
  uint64_t notifies_received() const { return notifies_received_; }
  uint64_t updates_received() const { return updates_received_; }
  uint64_t registers_sent() const { return registers_sent_; }
  uint64_t acks_received() const { return acks_received_; }
  // Register datagrams re-sent because the previous one went unacked —
  // distinct from lease refreshes, which re-send an *acked* registration.
  uint64_t retransmits() const { return retransmits_; }
  uint64_t lease_refreshes() const { return lease_refreshes_; }
  // GetValue calls that returned a value older than kStaleAge: the consumer
  // acted on data the server may no longer stand behind.
  static constexpr sim::Duration kStaleAge = 30 * sim::kSecond;
  uint64_t stale_reads() const { return stale_reads_; }

 private:
  struct PdaEntry {
    Value value;
    bool in_range = false;
    bool changed = false;
    bool has_value = false;
    sim::TimePoint updated_at = 0;
  };

  struct RegState {
    VariableId id;
    Attr attr;
    bool acked = false;
    uint32_t attempts = 0;                    // Sends since the last ack.
    sim::Duration backoff = 0;                // Current retransmit delay.
    sim::TimerId timer = sim::kInvalidTimerId;
    uint64_t lease_us = 0;
  };

  void OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from);
  net::Ipv4Address ResolveServer(const VariableId& id) const;
  // (Re)sends the Register datagram for `reg_id` and arms the next timer:
  // exponential backoff while unacked, a slow probe once the burst is spent.
  void SendRegister(uint32_t reg_id);
  void CancelTimer(RegState& st);

  core::Host* host_;
  std::unique_ptr<udp::UdpSocket> socket_;
  Callback callback_;
  uint32_t next_reg_id_ = 1;
  std::map<uint32_t, RegState> by_reg_id_;
  std::map<VariableId, uint32_t> reg_ids_;
  std::map<VariableId, PdaEntry> pda_;
  std::map<uint32_t, Callback> pending_once_;
  uint64_t notifies_received_ = 0;
  uint64_t updates_received_ = 0;
  uint64_t registers_sent_ = 0;
  uint64_t acks_received_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t lease_refreshes_ = 0;
  uint64_t stale_reads_ = 0;
};

}  // namespace comma::monitor

#endif  // COMMA_MONITOR_EEM_CLIENT_H_

#include "src/monitor/protocol.h"

namespace comma::monitor {

namespace {

void WriteAttr(util::ByteWriter& w, const Attr& attr) {
  w.WriteU8(static_cast<uint8_t>(attr.op));
  w.WriteU8(static_cast<uint8_t>(attr.mode));
  WriteValue(w, attr.lbound);
  WriteValue(w, attr.ubound);
}

std::optional<Attr> ReadAttr(util::ByteReader& r) {
  Attr attr;
  const uint8_t op = r.ReadU8();
  const uint8_t mode = r.ReadU8();
  if (op > static_cast<uint8_t>(Op::kOut) || mode > static_cast<uint8_t>(NotifyMode::kOnce)) {
    return std::nullopt;
  }
  attr.op = static_cast<Op>(op);
  attr.mode = static_cast<NotifyMode>(mode);
  auto lo = ReadValue(r);
  auto hi = ReadValue(r);
  if (!lo || !hi || r.failed()) {
    return std::nullopt;
  }
  attr.lbound = std::move(*lo);
  attr.ubound = std::move(*hi);
  return attr;
}

}  // namespace

util::Bytes EncodeRegister(const RegisterMsg& msg) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(static_cast<uint8_t>(MsgType::kRegister));
  w.WriteU32(msg.reg_id);
  w.WriteString(msg.name);
  w.WriteU32(msg.index);
  WriteAttr(w, msg.attr);
  return out;
}

util::Bytes EncodeDeregister(const DeregisterMsg& msg) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(static_cast<uint8_t>(MsgType::kDeregister));
  w.WriteU32(msg.reg_id);
  return out;
}

util::Bytes EncodeDeregisterAll() {
  return {static_cast<uint8_t>(MsgType::kDeregisterAll)};
}

util::Bytes EncodeNotify(const NotifyMsg& msg) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(static_cast<uint8_t>(MsgType::kNotify));
  w.WriteU32(msg.reg_id);
  WriteValue(w, msg.value);
  return out;
}

util::Bytes EncodeUpdate(const UpdateMsg& msg) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(static_cast<uint8_t>(MsgType::kUpdate));
  w.WriteU16(static_cast<uint16_t>(msg.items.size()));
  for (const UpdateItem& item : msg.items) {
    w.WriteU32(item.reg_id);
    WriteValue(w, item.value);
    w.WriteU8(item.in_range ? 1 : 0);
  }
  return out;
}

util::Bytes EncodeRegisterAck(const RegisterAckMsg& msg) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(static_cast<uint8_t>(MsgType::kRegisterAck));
  w.WriteU32(msg.reg_id);
  w.WriteU64(msg.lease_us);
  return out;
}

std::optional<MsgType> PeekType(const util::Bytes& data) {
  if (data.empty() || data[0] < 1 || data[0] > 6) {
    return std::nullopt;
  }
  return static_cast<MsgType>(data[0]);
}

std::optional<RegisterMsg> DecodeRegister(const util::Bytes& data) {
  util::ByteReader r(data);
  if (r.ReadU8() != static_cast<uint8_t>(MsgType::kRegister)) {
    return std::nullopt;
  }
  RegisterMsg msg;
  msg.reg_id = r.ReadU32();
  msg.name = r.ReadString();
  msg.index = r.ReadU32();
  auto attr = ReadAttr(r);
  if (!attr || r.failed()) {
    return std::nullopt;
  }
  msg.attr = std::move(*attr);
  return msg;
}

std::optional<DeregisterMsg> DecodeDeregister(const util::Bytes& data) {
  util::ByteReader r(data);
  if (r.ReadU8() != static_cast<uint8_t>(MsgType::kDeregister)) {
    return std::nullopt;
  }
  DeregisterMsg msg;
  msg.reg_id = r.ReadU32();
  return r.failed() ? std::nullopt : std::optional(msg);
}

std::optional<NotifyMsg> DecodeNotify(const util::Bytes& data) {
  util::ByteReader r(data);
  if (r.ReadU8() != static_cast<uint8_t>(MsgType::kNotify)) {
    return std::nullopt;
  }
  NotifyMsg msg;
  msg.reg_id = r.ReadU32();
  auto v = ReadValue(r);
  if (!v || r.failed()) {
    return std::nullopt;
  }
  msg.value = std::move(*v);
  return msg;
}

std::optional<UpdateMsg> DecodeUpdate(const util::Bytes& data) {
  util::ByteReader r(data);
  if (r.ReadU8() != static_cast<uint8_t>(MsgType::kUpdate)) {
    return std::nullopt;
  }
  UpdateMsg msg;
  const uint16_t count = r.ReadU16();
  for (uint16_t i = 0; i < count; ++i) {
    UpdateItem item;
    item.reg_id = r.ReadU32();
    auto v = ReadValue(r);
    if (!v) {
      return std::nullopt;
    }
    item.value = std::move(*v);
    item.in_range = r.ReadU8() != 0;
    msg.items.push_back(std::move(item));
  }
  return r.failed() ? std::nullopt : std::optional(msg);
}

std::optional<RegisterAckMsg> DecodeRegisterAck(const util::Bytes& data) {
  util::ByteReader r(data);
  if (r.ReadU8() != static_cast<uint8_t>(MsgType::kRegisterAck)) {
    return std::nullopt;
  }
  RegisterAckMsg msg;
  msg.reg_id = r.ReadU32();
  msg.lease_us = r.ReadU64();
  return r.failed() ? std::nullopt : std::optional(msg);
}

}  // namespace comma::monitor

// The Execution Environment Monitor server (thesis §6.2, Fig. 6.1).
//
// Runs on any host, gathers local metrics through its providers, and serves
// client registrations. Two timers drive it:
//  - the check interval: every registered variable is read; interrupt-mode
//    registrations whose value *enters* its range get an immediate Notify;
//  - the update interval (the thesis's "roughly ten seconds"): each client
//    receives one batched Update carrying its in-range variables that
//    changed since the last update.
// One-shot registrations are answered immediately and dropped (polling,
// §6.1.3).
#ifndef COMMA_MONITOR_EEM_SERVER_H_
#define COMMA_MONITOR_EEM_SERVER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/host.h"
#include "src/monitor/protocol.h"
#include "src/monitor/variables.h"

namespace comma::monitor {

struct EemServerConfig {
  uint16_t port = kEemPort;
  sim::Duration check_interval = sim::kSecond;
  sim::Duration update_interval = 10 * sim::kSecond;
  // Registrations are leased: a client that does not refresh (re-register)
  // within `lease` is dropped. The lease is granted in the RegisterAck, so
  // clients know the refresh cadence. Zero disables expiry.
  sim::Duration lease = 60 * sim::kSecond;
};

class EemServer {
 public:
  explicit EemServer(core::Host* host, const EemServerConfig& config = {});
  ~EemServer();
  EemServer(const EemServer&) = delete;
  EemServer& operator=(const EemServer&) = delete;

  // Extends the variable set (thesis: "application designers can extend the
  // EEM"). Providers are consulted in insertion order.
  void AddProvider(std::unique_ptr<MetricProvider> provider);

  // Reads a variable directly (used by providers' tests and by Kati when
  // co-located).
  std::optional<Value> ReadVariable(const std::string& name, uint32_t index);

  size_t RegistrationCount() const { return registrations_.size(); }
  uint64_t notifies_sent() const { return notifies_sent_; }
  uint64_t updates_sent() const { return updates_sent_; }
  uint64_t acks_sent() const { return acks_sent_; }
  uint64_t leases_expired() const { return leases_expired_; }
  uint64_t bytes_sent() const { return socket_->bytes_sent(); }
  uint64_t bytes_received() const { return socket_->bytes_received(); }

 private:
  struct Registration {
    udp::UdpEndpoint client;
    uint32_t reg_id = 0;
    std::string name;
    uint32_t index = 0;
    Attr attr;
    bool was_in_range = false;
    std::optional<Value> last_sent;
    sim::TimePoint expires_at = 0;  // Lease deadline; 0 = never expires.
  };

  void OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from);
  void CheckTick();
  void UpdateTick();
  void ExpireLeases();
  static uint64_t ClientKey(const udp::UdpEndpoint& ep) {
    return static_cast<uint64_t>(ep.addr.value()) << 16 | ep.port;
  }

  core::Host* host_;
  EemServerConfig config_;
  std::unique_ptr<udp::UdpSocket> socket_;
  std::vector<std::unique_ptr<MetricProvider>> providers_;
  HostProvider* host_provider_ = nullptr;  // Needs periodic polling.
  // Keyed by (client, reg_id) so re-registration replaces.
  std::map<std::pair<uint64_t, uint32_t>, Registration> registrations_;
  sim::TimerId check_timer_ = sim::kInvalidTimerId;
  sim::TimerId update_timer_ = sim::kInvalidTimerId;
  uint64_t notifies_sent_ = 0;
  uint64_t updates_sent_ = 0;
  uint64_t acks_sent_ = 0;
  uint64_t leases_expired_ = 0;
};

}  // namespace comma::monitor

#endif  // COMMA_MONITOR_EEM_SERVER_H_

#include "src/monitor/value.h"

#include <bit>
#include <tuple>

#include "src/util/strings.h"

namespace comma::monitor {

ValueType TypeOf(const Value& v) { return static_cast<ValueType>(v.index()); }

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kLong:
      return util::Format("%lld", static_cast<long long>(std::get<int64_t>(v)));
    case ValueType::kDouble:
      return util::Format("%g", std::get<double>(v));
    case ValueType::kString:
      return std::get<std::string>(v);
  }
  return "";
}

std::string VariableId::ToString() const {
  std::string where = server.IsUnspecified() ? "local" : server.ToString();
  if (index != 0) {
    return util::Format("%s[%u]@%s", name.c_str(), index, where.c_str());
  }
  return util::Format("%s@%s", name.c_str(), where.c_str());
}

bool operator<(const VariableId& a, const VariableId& b) {
  return std::tie(a.name, a.index, a.server, a.server_port) <
         std::tie(b.name, b.index, b.server, b.server_port);
}

Attr Attr::Always(NotifyMode mode) {
  Attr attr;
  attr.mode = mode;
  return attr;
}

Attr Attr::Unary(Op op, Value bound, NotifyMode mode) {
  Attr attr;
  attr.op = op;
  attr.lbound = std::move(bound);
  attr.mode = mode;
  return attr;
}

Attr Attr::Range(Op op, Value lo, Value hi, NotifyMode mode) {
  Attr attr;
  attr.op = op;
  attr.lbound = std::move(lo);
  attr.ubound = std::move(hi);
  attr.mode = mode;
  return attr;
}

namespace {

// Numeric comparison across LONG/DOUBLE. Returns nullopt for strings or
// mixed string/number comparisons.
std::optional<double> AsNumber(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kLong:
      return static_cast<double>(std::get<int64_t>(v));
    case ValueType::kDouble:
      return std::get<double>(v);
    case ValueType::kString:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

bool InRange(const Value& v, const Attr& attr) {
  if (attr.op == Op::kAny) {
    return true;
  }
  if (TypeOf(v) == ValueType::kString) {
    // Strings support only equality tests (§6.3.2).
    if (TypeOf(attr.lbound) != ValueType::kString) {
      return false;
    }
    const std::string& s = std::get<std::string>(v);
    const std::string& bound = std::get<std::string>(attr.lbound);
    if (attr.op == Op::kEq) {
      return s == bound;
    }
    if (attr.op == Op::kNeq) {
      return s != bound;
    }
    return false;
  }
  auto val = AsNumber(v);
  auto lo = AsNumber(attr.lbound);
  if (!val || !lo) {
    return false;
  }
  switch (attr.op) {
    case Op::kGt:
      return *val > *lo;
    case Op::kGte:
      return *val >= *lo;
    case Op::kLt:
      return *val < *lo;
    case Op::kLte:
      return *val <= *lo;
    case Op::kEq:
      return *val == *lo;
    case Op::kNeq:
      return *val != *lo;
    case Op::kIn:
    case Op::kOut: {
      auto hi = AsNumber(attr.ubound);
      if (!hi) {
        return false;
      }
      const bool inside = *val >= *lo && *val <= *hi;
      return attr.op == Op::kIn ? inside : !inside;
    }
    case Op::kAny:
      return true;
  }
  return false;
}

void WriteValue(util::ByteWriter& w, const Value& v) {
  w.WriteU8(static_cast<uint8_t>(TypeOf(v)));
  switch (TypeOf(v)) {
    case ValueType::kLong:
      w.WriteU64(static_cast<uint64_t>(std::get<int64_t>(v)));
      break;
    case ValueType::kDouble:
      w.WriteU64(std::bit_cast<uint64_t>(std::get<double>(v)));
      break;
    case ValueType::kString:
      w.WriteString(std::get<std::string>(v));
      break;
  }
}

std::optional<Value> ReadValue(util::ByteReader& r) {
  const uint8_t type = r.ReadU8();
  switch (static_cast<ValueType>(type)) {
    case ValueType::kLong:
      return Value(static_cast<int64_t>(r.ReadU64()));
    case ValueType::kDouble:
      return Value(std::bit_cast<double>(r.ReadU64()));
    case ValueType::kString:
      return Value(r.ReadString());
  }
  return std::nullopt;
}

}  // namespace comma::monitor

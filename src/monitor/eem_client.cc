#include "src/monitor/eem_client.h"

namespace comma::monitor {

EemClient::EemClient(core::Host* host) : host_(host) {
  socket_ = host_->udp().Bind(0);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint& from) {
    OnDatagram(data, from);
  });
}

EemClient::~EemClient() { DeregisterAll(); }

net::Ipv4Address EemClient::ResolveServer(const VariableId& id) const {
  return id.server.IsUnspecified() ? host_->PrimaryAddress() : id.server;
}

bool EemClient::Register(const VariableId& id, const Attr& attr) {
  uint32_t reg_id;
  auto existing = reg_ids_.find(id);
  if (existing != reg_ids_.end()) {
    reg_id = existing->second;
  } else {
    reg_id = next_reg_id_++;
    reg_ids_[id] = reg_id;
  }
  by_reg_id_[reg_id] = RegState{id, attr};
  RegisterMsg msg;
  msg.reg_id = reg_id;
  msg.name = id.name;
  msg.index = id.index;
  msg.attr = attr;
  socket_->SendTo(ResolveServer(id), id.server_port, EncodeRegister(msg));
  return true;
}

void EemClient::Deregister(const VariableId& id) {
  auto it = reg_ids_.find(id);
  if (it == reg_ids_.end()) {
    return;
  }
  socket_->SendTo(ResolveServer(id), id.server_port, EncodeDeregister({it->second}));
  by_reg_id_.erase(it->second);
  reg_ids_.erase(it);
}

void EemClient::DeregisterAll() {
  // One DeregisterAll per distinct server.
  std::map<uint64_t, VariableId> servers;
  for (const auto& [id, reg_id] : reg_ids_) {
    servers[static_cast<uint64_t>(ResolveServer(id).value()) << 16 | id.server_port] = id;
  }
  for (const auto& [key, id] : servers) {
    socket_->SendTo(ResolveServer(id), id.server_port, EncodeDeregisterAll());
  }
  reg_ids_.clear();
  by_reg_id_.clear();
}

std::optional<Value> EemClient::GetValue(const VariableId& id) {
  auto it = pda_.find(id);
  if (it == pda_.end() || !it->second.has_value) {
    return std::nullopt;
  }
  it->second.changed = false;  // Retrieval clears the changed flag.
  return it->second.value;
}

bool EemClient::IsInRange(const VariableId& id) const {
  auto it = pda_.find(id);
  return it != pda_.end() && it->second.in_range;
}

bool EemClient::HasChanged(const VariableId& id) const {
  auto it = pda_.find(id);
  return it != pda_.end() && it->second.changed;
}

void EemClient::GetValueOnce(const VariableId& id, Callback cb) {
  const uint32_t reg_id = next_reg_id_++;
  by_reg_id_[reg_id] = RegState{id, Attr::Always(NotifyMode::kOnce)};
  pending_once_[reg_id] = std::move(cb);
  RegisterMsg msg;
  msg.reg_id = reg_id;
  msg.name = id.name;
  msg.index = id.index;
  msg.attr = Attr::Always(NotifyMode::kOnce);
  socket_->SendTo(ResolveServer(id), id.server_port, EncodeRegister(msg));
}

void EemClient::OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& /*from*/) {
  auto type = PeekType(data);
  if (!type.has_value()) {
    return;
  }
  if (*type == MsgType::kNotify) {
    auto msg = DecodeNotify(data);
    if (!msg.has_value()) {
      return;
    }
    auto reg = by_reg_id_.find(msg->reg_id);
    if (reg == by_reg_id_.end()) {
      return;
    }
    ++notifies_received_;
    PdaEntry& entry = pda_[reg->second.id];
    entry.changed = !entry.has_value || entry.value != msg->value;
    entry.value = msg->value;
    entry.in_range = true;
    entry.has_value = true;
    if (callback_) {
      callback_(reg->second.id, msg->value);  // The exception handler path.
    }
    return;
  }
  if (*type == MsgType::kUpdate) {
    auto msg = DecodeUpdate(data);
    if (!msg.has_value()) {
      return;
    }
    ++updates_received_;
    for (const UpdateItem& item : msg->items) {
      auto reg = by_reg_id_.find(item.reg_id);
      if (reg == by_reg_id_.end()) {
        continue;
      }
      auto once = pending_once_.find(item.reg_id);
      if (once != pending_once_.end()) {
        Callback cb = std::move(once->second);
        VariableId id = reg->second.id;
        pending_once_.erase(once);
        by_reg_id_.erase(reg);
        if (cb) {
          cb(id, item.value);
        }
        continue;
      }
      PdaEntry& entry = pda_[reg->second.id];
      entry.changed = !entry.has_value || entry.value != item.value;
      entry.value = item.value;
      entry.in_range = item.in_range;
      entry.has_value = true;
    }
  }
}

}  // namespace comma::monitor

#include "src/monitor/eem_client.h"

#include <algorithm>

namespace comma::monitor {

EemClient::EemClient(core::Host* host) : host_(host) {
  socket_ = host_->udp().Bind(0);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint& from) {
    OnDatagram(data, from);
  });
}

EemClient::~EemClient() { DeregisterAll(); }

net::Ipv4Address EemClient::ResolveServer(const VariableId& id) const {
  return id.server.IsUnspecified() ? host_->PrimaryAddress() : id.server;
}

void EemClient::CancelTimer(RegState& st) {
  if (st.timer != sim::kInvalidTimerId) {
    host_->simulator()->Cancel(st.timer);
    st.timer = sim::kInvalidTimerId;
  }
}

void EemClient::SendRegister(uint32_t reg_id) {
  auto it = by_reg_id_.find(reg_id);
  if (it == by_reg_id_.end()) {
    return;
  }
  RegState& st = it->second;
  RegisterMsg msg;
  msg.reg_id = reg_id;
  msg.name = st.id.name;
  msg.index = st.id.index;
  msg.attr = st.attr;
  socket_->SendTo(ResolveServer(st.id), st.id.server_port, EncodeRegister(msg));
  ++registers_sent_;
  if (st.attempts > 0) {
    ++retransmits_;  // The previous send of this registration went unacked.
  } else if (st.acked) {
    ++lease_refreshes_;  // Scheduled refresh of a confirmed registration.
  }
  ++st.attempts;
  // Arm the next (re)send. Unacked registrations retransmit on an
  // exponential backoff; once the burst is spent (server gone for a while),
  // slow to a probe so a restarted server is still found eventually.
  sim::Duration delay;
  if (st.attempts > kMaxRetransmitBurst) {
    delay = kProbeInterval;
  } else {
    st.backoff = st.backoff == 0 ? kInitialRetransmit
                                 : std::min<sim::Duration>(st.backoff * 2, kMaxRetransmit);
    delay = st.backoff;
  }
  CancelTimer(st);
  st.timer = host_->simulator()->ScheduleTimer(delay, [this, reg_id] { SendRegister(reg_id); });
}

bool EemClient::Register(const VariableId& id, const Attr& attr) {
  uint32_t reg_id;
  auto existing = reg_ids_.find(id);
  if (existing != reg_ids_.end()) {
    reg_id = existing->second;
    CancelTimer(by_reg_id_[reg_id]);
  } else {
    reg_id = next_reg_id_++;
    reg_ids_[id] = reg_id;
  }
  RegState st;
  st.id = id;
  st.attr = attr;
  by_reg_id_[reg_id] = std::move(st);
  SendRegister(reg_id);
  return true;
}

void EemClient::Deregister(const VariableId& id) {
  auto it = reg_ids_.find(id);
  if (it == reg_ids_.end()) {
    return;
  }
  socket_->SendTo(ResolveServer(id), id.server_port, EncodeDeregister({it->second}));
  auto st = by_reg_id_.find(it->second);
  if (st != by_reg_id_.end()) {
    CancelTimer(st->second);
    by_reg_id_.erase(st);
  }
  reg_ids_.erase(it);
}

void EemClient::DeregisterAll() {
  // One DeregisterAll per distinct server.
  std::map<uint64_t, VariableId> servers;
  for (const auto& [id, reg_id] : reg_ids_) {
    servers[static_cast<uint64_t>(ResolveServer(id).value()) << 16 | id.server_port] = id;
  }
  for (const auto& [key, id] : servers) {
    socket_->SendTo(ResolveServer(id), id.server_port, EncodeDeregisterAll());
  }
  for (auto& [reg_id, st] : by_reg_id_) {
    CancelTimer(st);
  }
  reg_ids_.clear();
  by_reg_id_.clear();
}

std::optional<Value> EemClient::GetValue(const VariableId& id) {
  auto it = pda_.find(id);
  if (it == pda_.end() || !it->second.has_value) {
    return std::nullopt;
  }
  if (host_->simulator()->Now() - it->second.updated_at > kStaleAge) {
    ++stale_reads_;
  }
  it->second.changed = false;  // Retrieval clears the changed flag.
  return it->second.value;
}

bool EemClient::IsInRange(const VariableId& id) const {
  auto it = pda_.find(id);
  return it != pda_.end() && it->second.in_range;
}

bool EemClient::HasChanged(const VariableId& id) const {
  auto it = pda_.find(id);
  return it != pda_.end() && it->second.changed;
}

std::optional<sim::Duration> EemClient::ValueAge(const VariableId& id) const {
  auto it = pda_.find(id);
  if (it == pda_.end() || !it->second.has_value) {
    return std::nullopt;
  }
  return host_->simulator()->Now() - it->second.updated_at;
}

std::vector<EemClient::RegistrationInfo> EemClient::registrations() const {
  std::vector<RegistrationInfo> out;
  out.reserve(reg_ids_.size());
  for (const auto& [id, reg_id] : reg_ids_) {
    auto st = by_reg_id_.find(reg_id);
    if (st == by_reg_id_.end()) {
      continue;
    }
    out.push_back({id, st->second.attr, st->second.acked, st->second.attempts,
                   st->second.lease_us});
  }
  return out;
}

void EemClient::GetValueOnce(const VariableId& id, Callback cb) {
  const uint32_t reg_id = next_reg_id_++;
  RegState st;
  st.id = id;
  st.attr = Attr::Always(NotifyMode::kOnce);
  by_reg_id_[reg_id] = std::move(st);
  pending_once_[reg_id] = std::move(cb);
  RegisterMsg msg;
  msg.reg_id = reg_id;
  msg.name = id.name;
  msg.index = id.index;
  msg.attr = Attr::Always(NotifyMode::kOnce);
  socket_->SendTo(ResolveServer(id), id.server_port, EncodeRegister(msg));
}

void EemClient::OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& /*from*/) {
  auto type = PeekType(data);
  if (!type.has_value()) {
    return;
  }
  if (*type == MsgType::kRegisterAck) {
    auto msg = DecodeRegisterAck(data);
    if (!msg.has_value()) {
      return;
    }
    auto reg = by_reg_id_.find(msg->reg_id);
    if (reg == by_reg_id_.end()) {
      return;  // Deregistered while the ack was in flight.
    }
    ++acks_received_;
    RegState& st = reg->second;
    st.acked = true;
    st.attempts = 0;
    st.backoff = 0;
    st.lease_us = msg->lease_us;
    // Refresh at half the lease so one lost refresh datagram still leaves a
    // full backoff burst before the server-side lease runs out; a
    // lease-less server is probed so its restart is eventually noticed.
    const sim::Duration refresh =
        msg->lease_us > 0 ? static_cast<sim::Duration>(msg->lease_us) / 2 : kProbeInterval;
    CancelTimer(st);
    const uint32_t reg_id = msg->reg_id;
    st.timer = host_->simulator()->ScheduleTimer(refresh, [this, reg_id] { SendRegister(reg_id); });
    return;
  }
  if (*type == MsgType::kNotify) {
    auto msg = DecodeNotify(data);
    if (!msg.has_value()) {
      return;
    }
    auto reg = by_reg_id_.find(msg->reg_id);
    if (reg == by_reg_id_.end()) {
      return;
    }
    ++notifies_received_;
    PdaEntry& entry = pda_[reg->second.id];
    entry.changed = !entry.has_value || entry.value != msg->value;
    entry.value = msg->value;
    entry.in_range = true;
    entry.has_value = true;
    entry.updated_at = host_->simulator()->Now();
    if (callback_) {
      callback_(reg->second.id, msg->value);  // The exception handler path.
    }
    return;
  }
  if (*type == MsgType::kUpdate) {
    auto msg = DecodeUpdate(data);
    if (!msg.has_value()) {
      return;
    }
    ++updates_received_;
    for (const UpdateItem& item : msg->items) {
      auto reg = by_reg_id_.find(item.reg_id);
      if (reg == by_reg_id_.end()) {
        continue;
      }
      auto once = pending_once_.find(item.reg_id);
      if (once != pending_once_.end()) {
        Callback cb = std::move(once->second);
        VariableId id = reg->second.id;
        pending_once_.erase(once);
        by_reg_id_.erase(reg);
        if (cb) {
          cb(id, item.value);
        }
        continue;
      }
      PdaEntry& entry = pda_[reg->second.id];
      entry.changed = !entry.has_value || entry.value != item.value;
      entry.value = item.value;
      entry.in_range = item.in_range;
      entry.has_value = true;
      entry.updated_at = host_->simulator()->Now();
    }
  }
}

}  // namespace comma::monitor

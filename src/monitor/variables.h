// EEM metric providers (thesis §6.2: "modularized query mechanism").
//
// The server consults an ordered list of providers; the first that knows a
// variable answers. SnmpProvider implements the Table 6.1 variable set from
// node/link/stack counters; HostProvider implements the Table 6.2 extras.
// Application designers extend the EEM by adding providers.
#ifndef COMMA_MONITOR_VARIABLES_H_
#define COMMA_MONITOR_VARIABLES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/monitor/value.h"
#include "src/sim/time.h"

namespace comma::core {
class Host;
class Pinger;
}

namespace comma::monitor {

class MetricProvider {
 public:
  virtual ~MetricProvider() = default;
  // Returns the value of (name, index), or nullopt if unknown here.
  virtual std::optional<Value> Get(const std::string& name, uint32_t index) = 0;
  // Variables this provider serves (for discovery/diagnostics).
  virtual std::vector<std::string> Names() const = 0;
};

// Table 6.1: the SNMP variable set (system, ip, tcp, udp, interface groups),
// backed by the simulated host's real counters. Interface-group variables
// take the interface index (1-based, as SNMP does).
class SnmpProvider : public MetricProvider {
 public:
  explicit SnmpProvider(core::Host* host);
  std::optional<Value> Get(const std::string& name, uint32_t index) override;
  std::vector<std::string> Names() const override;

 private:
  core::Host* host_;
};

// Table 6.2: netLatency, cpuLoadAvg, eth*Avg rates, deviceList, bytes_rx/tx.
// Rates are computed from counter deltas sampled by Poll() (the server calls
// it on its check interval).
class HostProvider : public MetricProvider {
 public:
  explicit HostProvider(core::Host* host);
  std::optional<Value> Get(const std::string& name, uint32_t index) override;
  std::vector<std::string> Names() const override;

  // Samples counters; call periodically to keep rates fresh. Also issues a
  // ping to the interface-0 neighbour so netLatency is a *measured* RTT
  // (Table 6.2: "measure of the network latency from ping RTTs to the
  // default router").
  void Poll(sim::TimePoint now);

 private:
  core::Host* host_;
  std::unique_ptr<core::Pinger> pinger_;
  sim::TimePoint last_poll_ = 0;
  uint64_t last_in_pkts_ = 0;
  uint64_t last_out_pkts_ = 0;
  uint64_t last_ip_in_ = 0;
  double eth_in_avg_ = 0;
  double eth_out_avg_ = 0;
  double avg_in_ip_ = 0;
  double cpu_load_ = 0.05;
};

}  // namespace comma::monitor

#endif  // COMMA_MONITOR_VARIABLES_H_

// EEM wire protocol: a lean binary encoding over UDP (thesis §6.1.2 calls
// for minimal monitor traffic; updates batch several variables into one
// datagram and carry only values that changed).
#ifndef COMMA_MONITOR_PROTOCOL_H_
#define COMMA_MONITOR_PROTOCOL_H_

#include <optional>
#include <vector>

#include "src/monitor/value.h"

namespace comma::monitor {

enum class MsgType : uint8_t {
  kRegister = 1,
  kDeregister = 2,
  kDeregisterAll = 3,
  kNotify = 4,  // Interrupt-style, one variable, sent immediately.
  kUpdate = 5,  // Periodic batch of (reg_id, value, in_range).
  kRegisterAck = 6,  // Server confirms a registration and grants a lease.
};

struct RegisterMsg {
  uint32_t reg_id = 0;
  std::string name;
  uint32_t index = 0;
  Attr attr;
};

struct DeregisterMsg {
  uint32_t reg_id = 0;
};

struct NotifyMsg {
  uint32_t reg_id = 0;
  Value value;
};

struct UpdateItem {
  uint32_t reg_id = 0;
  Value value;
  bool in_range = false;
};

struct UpdateMsg {
  std::vector<UpdateItem> items;
};

// Registration acknowledgement. UDP registrations are otherwise
// fire-and-forget: without the ack a single lost datagram silently loses the
// registration forever. `lease_us` is how long the server will keep the
// registration without a refresh; clients re-register before it expires,
// which also transparently survives a server restart.
struct RegisterAckMsg {
  uint32_t reg_id = 0;
  uint64_t lease_us = 0;
};

util::Bytes EncodeRegister(const RegisterMsg& msg);
util::Bytes EncodeDeregister(const DeregisterMsg& msg);
util::Bytes EncodeDeregisterAll();
util::Bytes EncodeNotify(const NotifyMsg& msg);
util::Bytes EncodeUpdate(const UpdateMsg& msg);
util::Bytes EncodeRegisterAck(const RegisterAckMsg& msg);

std::optional<MsgType> PeekType(const util::Bytes& data);
std::optional<RegisterMsg> DecodeRegister(const util::Bytes& data);
std::optional<DeregisterMsg> DecodeDeregister(const util::Bytes& data);
std::optional<NotifyMsg> DecodeNotify(const util::Bytes& data);
std::optional<UpdateMsg> DecodeUpdate(const util::Bytes& data);
std::optional<RegisterAckMsg> DecodeRegisterAck(const util::Bytes& data);

}  // namespace comma::monitor

#endif  // COMMA_MONITOR_PROTOCOL_H_

#include "src/monitor/variables.h"

#include "src/core/host.h"
#include "src/core/ping.h"
#include "src/util/strings.h"

namespace comma::monitor {

namespace {

int64_t AsLong(uint64_t v) { return static_cast<int64_t>(v); }

}  // namespace

SnmpProvider::SnmpProvider(core::Host* host) : host_(host) {}

std::vector<std::string> SnmpProvider::Names() const {
  return {
      // System group.
      "sysDescr", "sysObjectID", "sysUpTime", "sysContact", "sysName", "sysLocation",
      "sysServices",
      // IP group.
      "ipInReceives", "ipInHdrErrors", "ipInAddrErrors", "ipForwDatagrams",
      "ipInUnknownProtos", "ipInDiscards", "ipInDelivers", "ipOutRequests", "ipOutDiscards",
      "ipOutNoRoutes", "ipRoutingDiscard",
      // UDP group.
      "udpInDatagrams", "udpNoPorts", "udpInErrors",
      // TCP group.
      "tcpRtoAlgorithm", "tcpRtoMin", "tcpRtoMax", "tcpMaxConn", "tcpActiveOpens",
      "tcpPassiveOpens", "tcpAttemptFails", "tcpEstabResets", "tcpCurrEstab", "tcpInSegs",
      "tcpOutSegs", "tcpRetransSegs",
      // Interface group (indexed).
      "ifNumbers", "ifIndex", "ifDescr", "ifType", "ifMtu", "ifSpeed", "ifInOctets",
      "ifInUcastPkts", "ifInNUcastPkts", "ifInDiscards", "ifInErrors", "ifInUnknownProtos",
      "ifOutOctets", "ifOutUcastPkts", "ifOutNUcastPkts", "ifOutDiscards", "ifOutErrors",
      "ifOutQLen", "ifOperStatus",
  };
}

std::optional<Value> SnmpProvider::Get(const std::string& name, uint32_t index) {
  const net::NodeStats& ip = host_->stats();

  // --- System group ---
  if (name == "sysDescr") {
    return Value("Comma EEM host " + host_->name());
  }
  if (name == "sysObjectID") {
    return Value(std::string("1.3.6.1.4.1.0"));
  }
  if (name == "sysUpTime") {
    // SNMP TimeTicks: hundredths of a second.
    return Value(AsLong(static_cast<uint64_t>(host_->simulator()->Now() / 10000)));
  }
  if (name == "sysContact") {
    return Value(std::string("shoshin@uwaterloo.ca"));
  }
  if (name == "sysName") {
    return Value(host_->name());
  }
  if (name == "sysLocation") {
    return Value(std::string("simulated"));
  }
  if (name == "sysServices") {
    return Value(int64_t{72});  // Internet + end-to-end.
  }

  // --- IP group ---
  if (name == "ipInReceives") {
    return Value(AsLong(ip.ip_in_receives));
  }
  if (name == "ipInHdrErrors") {
    return Value(AsLong(ip.ip_in_hdr_errors));
  }
  if (name == "ipInAddrErrors") {
    return Value(int64_t{0});
  }
  if (name == "ipForwDatagrams") {
    return Value(AsLong(ip.ip_forw_datagrams));
  }
  if (name == "ipInUnknownProtos") {
    return Value(int64_t{0});
  }
  if (name == "ipInDiscards") {
    return Value(AsLong(ip.ip_in_discards));
  }
  if (name == "ipInDelivers") {
    return Value(AsLong(ip.ip_in_delivers));
  }
  if (name == "ipOutRequests") {
    return Value(AsLong(ip.ip_out_requests));
  }
  if (name == "ipOutDiscards") {
    return Value(int64_t{0});
  }
  if (name == "ipOutNoRoutes") {
    return Value(AsLong(ip.ip_out_no_routes));
  }
  if (name == "ipRoutingDiscard") {
    return Value(int64_t{0});
  }

  // --- UDP group ---
  if (name == "udpInDatagrams") {
    return Value(AsLong(host_->udp().in_datagrams()));
  }
  if (name == "udpNoPorts") {
    return Value(AsLong(host_->udp().no_ports()));
  }
  if (name == "udpInErrors") {
    return Value(int64_t{0});
  }

  // --- TCP group ---
  if (name == "tcpRtoAlgorithm") {
    return Value(int64_t{4});  // Van Jacobson.
  }
  if (name == "tcpRtoMin") {
    return Value(int64_t{500});
  }
  if (name == "tcpRtoMax") {
    return Value(int64_t{64000});
  }
  if (name == "tcpMaxConn") {
    return Value(int64_t{-1});
  }
  if (name == "tcpCurrEstab") {
    return Value(AsLong(host_->tcp().ActiveConnections()));
  }
  if (name == "tcpActiveOpens" || name == "tcpPassiveOpens" || name == "tcpAttemptFails" ||
      name == "tcpEstabResets" || name == "tcpInSegs" || name == "tcpOutSegs" ||
      name == "tcpRetransSegs") {
    // Aggregate TCP counters are not tracked stack-wide; report zero rather
    // than guessing (per-connection stats are exposed via the API instead).
    return Value(int64_t{0});
  }

  // --- Interface group ---
  if (name == "ifNumbers") {
    return Value(AsLong(host_->InterfaceCount()));
  }
  const bool is_if_var = util::StartsWith(name, "if");
  if (is_if_var) {
    // SNMP indexes interfaces from 1.
    if (index == 0 || index > host_->InterfaceCount()) {
      return std::nullopt;
    }
    const uint32_t i = index - 1;
    const net::InterfaceStats& st = host_->interface_stats(i);
    net::Link* link = host_->InterfaceLink(i);
    if (name == "ifIndex") {
      return Value(AsLong(index));
    }
    if (name == "ifDescr") {
      return Value(link != nullptr ? link->name() : std::string("unattached"));
    }
    if (name == "ifType") {
      return Value(int64_t{6});  // ethernetCsmacd.
    }
    if (name == "ifMtu") {
      return Value(int64_t{1500});
    }
    if (name == "ifSpeed") {
      return Value(AsLong(link != nullptr ? link->config().bandwidth_bps : 0));
    }
    if (name == "ifInOctets") {
      return Value(AsLong(st.in_bytes));
    }
    if (name == "ifInUcastPkts") {
      return Value(AsLong(st.in_packets));
    }
    if (name == "ifOutOctets") {
      return Value(AsLong(st.out_bytes));
    }
    if (name == "ifOutUcastPkts") {
      return Value(AsLong(st.out_packets));
    }
    if (name == "ifInNUcastPkts" || name == "ifOutNUcastPkts" || name == "ifInUnknownProtos") {
      return Value(int64_t{0});
    }
    if (name == "ifInDiscards" || name == "ifInErrors") {
      // Error-model drops land on the receiving side of the link.
      if (link != nullptr) {
        const int side = link->stats(0).rx_packets >= st.in_packets ? 1 : 0;
        return Value(AsLong(link->stats(1 - side).drops_error));
      }
      return Value(int64_t{0});
    }
    if (name == "ifOutDiscards") {
      if (link != nullptr) {
        return Value(AsLong(link->stats(0).drops_queue + link->stats(1).drops_queue));
      }
      return Value(int64_t{0});
    }
    if (name == "ifOutErrors") {
      return Value(int64_t{0});
    }
    if (name == "ifOutQLen") {
      if (link != nullptr) {
        return Value(AsLong(link->QueueDepth(0) + link->QueueDepth(1)));
      }
      return Value(int64_t{0});
    }
    if (name == "ifOperStatus") {
      // 1 = up, 2 = down (RFC 1213).
      return Value(int64_t{link != nullptr && link->IsUp() ? 1 : 2});
    }
  }
  return std::nullopt;
}

// --- HostProvider ---

HostProvider::HostProvider(core::Host* host) : host_(host) {
  pinger_ = std::make_unique<core::Pinger>(host_, &host_->icmp_responder());
}

std::vector<std::string> HostProvider::Names() const {
  return {"netLatency", "avgInIPPkts", "cpuLoadAvg", "ethErrsAvg",
          "ethInAvg",   "ethOutAvg",   "deviceList", "bytes_rx",
          "bytes_tx"};
}

void HostProvider::Poll(sim::TimePoint now) {
  uint64_t in_pkts = 0;
  uint64_t out_pkts = 0;
  for (uint32_t i = 0; i < host_->InterfaceCount(); ++i) {
    in_pkts += host_->interface_stats(i).in_packets;
    out_pkts += host_->interface_stats(i).out_packets;
  }
  const uint64_t ip_in = host_->stats().ip_in_receives;
  // Keep a live latency sample flowing to the interface-0 neighbour.
  if (host_->InterfaceCount() > 0) {
    net::Link* link = host_->InterfaceLink(0);
    if (link != nullptr && link->IsUp()) {
      const int local_side = link->attached_node(0) == host_ ? 0 : 1;
      net::Node* peer = link->attached_node(1 - local_side);
      if (peer != nullptr) {
        pinger_->Ping(peer->InterfaceAddress(link->attached_iface(1 - local_side)), nullptr);
      }
    }
  }
  if (last_poll_ != 0 && now > last_poll_) {
    const double dt = sim::DurationToSeconds(now - last_poll_);
    // Exponentially weighted averages, like the shipping monitors of the era.
    const double alpha = 0.3;
    eth_in_avg_ += alpha * (static_cast<double>(in_pkts - last_in_pkts_) / dt - eth_in_avg_);
    eth_out_avg_ += alpha * (static_cast<double>(out_pkts - last_out_pkts_) / dt - eth_out_avg_);
    avg_in_ip_ += alpha * (static_cast<double>(ip_in - last_ip_in_) / dt - avg_in_ip_);
    // Synthetic CPU load loosely coupled to packet rate.
    cpu_load_ = 0.9 * cpu_load_ + 0.1 * std::min(1.0, eth_in_avg_ / 2000.0 + 0.05);
  }
  last_poll_ = now;
  last_in_pkts_ = in_pkts;
  last_out_pkts_ = out_pkts;
  last_ip_in_ = ip_in;
}

std::optional<Value> HostProvider::Get(const std::string& name, uint32_t /*index*/) {
  if (name == "netLatency") {
    // Measured ping RTT to the interface-0 neighbour (milliseconds). Before
    // the first reply lands, estimate from the link parameters.
    if (pinger_->replies_received() > 0) {
      return Value(sim::DurationToSeconds(pinger_->last_rtt()) * 1000.0);
    }
    net::Link* link = host_->InterfaceCount() > 0 ? host_->InterfaceLink(0) : nullptr;
    if (link == nullptr) {
      return Value(0.0);
    }
    const double rtt = 2.0 * (sim::DurationToSeconds(link->config().propagation_delay) +
                              sim::DurationToSeconds(link->TransmitTime(64)));
    return Value(rtt * 1000.0);  // Milliseconds.
  }
  if (name == "avgInIPPkts") {
    return Value(avg_in_ip_);
  }
  if (name == "cpuLoadAvg") {
    return Value(cpu_load_);
  }
  if (name == "ethErrsAvg") {
    return Value(0.0);
  }
  if (name == "ethInAvg") {
    return Value(eth_in_avg_);
  }
  if (name == "ethOutAvg") {
    return Value(eth_out_avg_);
  }
  if (name == "deviceList") {
    std::vector<std::string> devices;
    for (uint32_t i = 0; i < host_->InterfaceCount(); ++i) {
      net::Link* link = host_->InterfaceLink(i);
      devices.push_back(util::Format("if%u:%s", i, link ? link->name().c_str() : "down"));
    }
    return Value(util::Join(devices, ","));
  }
  if (name == "bytes_rx" || name == "bytes_tx") {
    uint64_t total = 0;
    for (uint32_t i = 0; i < host_->InterfaceCount(); ++i) {
      total += name == "bytes_rx" ? host_->interface_stats(i).in_bytes
                                  : host_->interface_stats(i).out_bytes;
    }
    return Value(AsLong(total));
  }
  return std::nullopt;
}

}  // namespace comma::monitor

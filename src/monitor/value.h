// EEM value and registration types (thesis §6.3).
//
// Variables are typed LONG / DOUBLE / STRING (the thesis's comma_type_t
// union); registrations pair a VariableId (what, where) with an Attr (when
// to notify). Operators follow Table 6.5's COMMA_GT .. COMMA_OUT set.
#ifndef COMMA_MONITOR_VALUE_H_
#define COMMA_MONITOR_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "src/net/address.h"
#include "src/util/bytes.h"

namespace comma::monitor {

inline constexpr uint16_t kEemPort = 7070;

// LONG / DOUBLE / STRING, in that variant order.
using Value = std::variant<int64_t, double, std::string>;

enum class ValueType : uint8_t {
  kLong = 0,
  kDouble = 1,
  kString = 2,
};

ValueType TypeOf(const Value& v);
std::string ValueToString(const Value& v);

// Comparison operators for notification ranges (Table 6.5).
enum class Op : uint8_t {
  kAny = 0,  // Always notify (no range restriction).
  kGt = 1,
  kGte = 2,
  kLt = 3,
  kLte = 4,
  kEq = 5,
  kNeq = 6,
  kIn = 7,   // lbound <= v <= ubound.
  kOut = 8,  // v < lbound or v > ubound.
};

// How the client wants to hear about the variable (§6.1.3).
enum class NotifyMode : uint8_t {
  kPeriodic = 0,   // Silent updates into the protected data area.
  kInterrupt = 1,  // Immediate callback when the value enters the range.
  kOnce = 2,       // One-shot poll; auto-deregisters after the reply.
};

// Identifies a variable on a (possibly remote) EEM server.
struct VariableId {
  std::string name;
  uint32_t index = 0;  // Interface index etc.; 0 when not applicable.
  net::Ipv4Address server;  // Unspecified = local host.
  uint16_t server_port = kEemPort;

  std::string ToString() const;
  friend bool operator==(const VariableId& a, const VariableId& b) {
    return a.name == b.name && a.index == b.index && a.server == b.server &&
           a.server_port == b.server_port;
  }
  friend bool operator<(const VariableId& a, const VariableId& b);
};

// Notification attributes: bounds + operator + mode (Tables 6.3/6.5).
struct Attr {
  Op op = Op::kAny;
  NotifyMode mode = NotifyMode::kPeriodic;
  Value lbound = int64_t{0};
  Value ubound = int64_t{0};

  static Attr Always(NotifyMode mode = NotifyMode::kPeriodic);
  static Attr Unary(Op op, Value bound, NotifyMode mode = NotifyMode::kPeriodic);
  static Attr Range(Op op, Value lo, Value hi, NotifyMode mode = NotifyMode::kPeriodic);
};

// Evaluates whether `v` satisfies the attribute's range. String values only
// support EQ/NEQ (type checking per §6.3.2); mismatched types return false.
bool InRange(const Value& v, const Attr& attr);

// Wire helpers.
void WriteValue(util::ByteWriter& w, const Value& v);
std::optional<Value> ReadValue(util::ByteReader& r);

}  // namespace comma::monitor

#endif  // COMMA_MONITOR_VALUE_H_

// Deterministic pseudo-random source for the simulator.
//
// A small xoshiro256** generator, seeded explicitly, so that every loss
// pattern and jitter schedule in tests and benches reproduces exactly.
#ifndef COMMA_SIM_RANDOM_H_
#define COMMA_SIM_RANDOM_H_

#include <cstdint>

namespace comma::sim {

class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform value in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (>= 0).
  double Exponential(double mean);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Derives an independent child generator (for per-link streams).
  Random Fork();

  // Derives an independent child generator for a *named* stream without
  // consuming any of this generator's sequence. Used for per-region RNG
  // streams in partitioned scenarios: each region's drop/corruption
  // sequence depends only on (scenario seed, stream index), never on how
  // many other regions exist or how their draws interleave.
  Random ForkStream(uint64_t stream) const;

  // Snapshots / reinstates the full generator state. Lets checkpointed
  // components (e.g. a tdrop filter migrating to a standby gateway) resume
  // the exact random sequence the source would have produced.
  void SaveState(uint64_t out[4]) const;
  void RestoreState(const uint64_t in[4]);

 private:
  uint64_t s_[4];
};

// Mixes a scenario seed and a stream index into a child seed. Stable across
// releases: the partition-independence of per-region random sequences
// (docs/parallel-sim.md) depends on this mapping alone.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

}  // namespace comma::sim

#endif  // COMMA_SIM_RANDOM_H_

#include "src/sim/witness.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace comma::sim {

WitnessLog::WitnessLog(const Simulator* sim) : sim_(sim), per_region_(sim->RegionCount()) {}

void WitnessLog::Append(TimePoint when, std::string line) {
  const RegionId region = sim_->CurrentRegion();
  COMMA_CHECK(region < per_region_.size()) << "witness region " << region << " out of range";
  per_region_[region].push_back({when, std::move(line)});
}

Tracer::Sink WitnessLog::MakeTraceSink() {
  return [this](const TraceRecord& rec) {
    Append(rec.when, util::Format("t=%lld [%s] %s: %s", static_cast<long long>(rec.when),
                                  TraceLevelName(rec.level), rec.component.c_str(),
                                  rec.message.c_str()));
  };
}

std::string WitnessLog::Render() const {
  // Each region buffer is already in execution order (monotone in `when`);
  // a k-way merge by (when, region) reproduces the canonical total order.
  std::vector<size_t> cursor(per_region_.size(), 0);
  std::string out;
  for (;;) {
    size_t best = per_region_.size();
    for (size_t r = 0; r < per_region_.size(); ++r) {
      if (cursor[r] >= per_region_[r].size()) {
        continue;
      }
      if (best == per_region_.size() ||
          per_region_[r][cursor[r]].when < per_region_[best][cursor[best]].when) {
        best = r;
      }
    }
    if (best == per_region_.size()) {
      break;
    }
    out += per_region_[best][cursor[best]].line;
    out += '\n';
    ++cursor[best];
  }
  return out;
}

size_t WitnessLog::EntryCount() const {
  size_t n = 0;
  for (const auto& entries : per_region_) {
    n += entries.size();
  }
  return n;
}

void WitnessLog::Clear() {
  for (auto& entries : per_region_) {
    entries.clear();
  }
}

uint64_t WitnessHash(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace comma::sim

// Deterministic, schedulable fault injection for the simulator.
//
// A FaultPlan is a declarative timeline of named fault actions: tests and
// benches append (time, label, action) entries — link flaps, BER bursts,
// server outages, connection resets — then Arm() the plan onto a Simulator.
// Events fire in (time, insertion-order) order exactly like every other
// simulator event, so the same plan on the same seed reproduces the same
// run bit-for-bit.
//
// Every fired fault is appended to an applied-fault log; AppliedLog()
// renders it as stable text so determinism tests can diff two runs
// byte-for-byte.
#ifndef COMMA_SIM_FAULT_PLAN_H_
#define COMMA_SIM_FAULT_PLAN_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace comma::sim {

class FaultPlan {
 public:
  using Action = std::function<void()>;

  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // Appends a fault at absolute simulated time `when`. `what` names the
  // fault in the applied log. Entries added after Arm() are scheduled
  // immediately (clamped to Now() like every simulator event).
  void At(TimePoint when, std::string what, Action action);

  // A paired fault: `enter` fires at `from`, `exit` at `until`. Sugar for
  // outage windows (link down/up, server kill/restart, QoS degrade/restore).
  void Window(TimePoint from, TimePoint until, const std::string& what, Action enter,
              Action exit);

  // Schedules every pending entry on `sim`. If `tracer` is non-null, each
  // fired fault is also logged at kWarn level under component "fault".
  void Arm(Simulator* sim, Tracer* tracer = nullptr);

  bool armed() const { return sim_ != nullptr; }
  size_t pending() const { return pending_.size(); }

  // --- Applied-fault log (the determinism witness) ---
  struct Applied {
    TimePoint at = 0;   // Time the action actually ran.
    std::string what;
  };
  const std::vector<Applied>& applied() const { return applied_; }
  // One "t=<usec> <what>" line per fired fault, in firing order.
  std::string AppliedLog() const;

 private:
  struct Entry {
    TimePoint when = 0;
    std::string what;
    Action action;
  };

  void Fire(Entry entry);
  void Schedule(Entry entry);

  Simulator* sim_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::vector<Entry> pending_;     // Entries added before Arm().
  std::vector<Applied> applied_;
};

}  // namespace comma::sim

#endif  // COMMA_SIM_FAULT_PLAN_H_

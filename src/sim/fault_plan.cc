#include "src/sim/fault_plan.h"

#include <memory>
#include <utility>

namespace comma::sim {

void FaultPlan::At(TimePoint when, std::string what, Action action) {
  Entry entry{when, std::move(what), std::move(action)};
  if (armed()) {
    Schedule(std::move(entry));
  } else {
    pending_.push_back(std::move(entry));
  }
}

void FaultPlan::Window(TimePoint from, TimePoint until, const std::string& what, Action enter,
                       Action exit) {
  At(from, what + " begin", std::move(enter));
  At(until, what + " end", std::move(exit));
}

void FaultPlan::Arm(Simulator* sim, Tracer* tracer) {
  sim_ = sim;
  tracer_ = tracer;
  std::vector<Entry> entries = std::move(pending_);
  pending_.clear();
  for (Entry& entry : entries) {
    Schedule(std::move(entry));
  }
}

void FaultPlan::Schedule(Entry entry) {
  // ScheduleAt clamps to Now(), so a late-armed plan still fires everything.
  auto holder = std::make_shared<Entry>(std::move(entry));
  sim_->ScheduleAt(holder->when, [this, holder] { Fire(std::move(*holder)); });
}

void FaultPlan::Fire(Entry entry) {
  if (tracer_ != nullptr) {
    tracer_->Logf(TraceLevel::kWarn, "fault", "%s", entry.what.c_str());
  }
  applied_.push_back({sim_->Now(), entry.what});
  if (entry.action) {
    entry.action();
  }
}

std::string FaultPlan::AppliedLog() const {
  std::string out;
  for (const Applied& a : applied_) {
    out += "t=" + std::to_string(a.at) + " " + a.what + "\n";
  }
  return out;
}

}  // namespace comma::sim

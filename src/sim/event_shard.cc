#include "src/sim/event_shard.h"

#include <algorithm>

namespace comma::sim {

void EventShard::Push(TimePoint when, uint64_t timer_id, std::function<void()> fn) {
  auto ev = std::make_unique<Event>();
  ev->when = std::max(when, now_);
  ev->seq = next_seq_++;
  ev->timer_id = timer_id;
  ev->fn = std::move(fn);
  queue_.push(std::move(ev));
}

bool EventShard::ErasePendingTimer(uint32_t counter) {
  auto it = std::find(pending_timers_.begin(), pending_timers_.end(), counter);
  if (it == pending_timers_.end()) {
    return false;
  }
  pending_timers_.erase(it);
  return true;
}

bool EventShard::IsTimerPending(uint32_t counter) const {
  return std::find(pending_timers_.begin(), pending_timers_.end(), counter) !=
         pending_timers_.end();
}

TimePoint EventShard::FrontTime() {
  while (!queue_.empty()) {
    const Event& top = *queue_.top();
    if (top.timer_id == 0 || IsTimerPending(static_cast<uint32_t>(top.timer_id))) {
      return top.when;
    }
    queue_.pop();  // Cancelled timer tombstone: discard without running.
  }
  return kNoEvent;
}

std::unique_ptr<EventShard::Event> EventShard::PopBefore(TimePoint horizon) {
  while (!queue_.empty() && queue_.top()->when < horizon) {
    // priority_queue has no non-const top-extraction; the const_cast is the
    // standard idiom for moving out of a unique_ptr-valued queue.
    auto ev = std::move(const_cast<std::unique_ptr<Event>&>(queue_.top()));
    queue_.pop();
    if (ev->timer_id != 0 && !ErasePendingTimer(static_cast<uint32_t>(ev->timer_id))) {
      continue;  // Cancelled timer: tombstone, skip without running.
    }
    now_ = ev->when;
    ++events_run_;
    return ev;
  }
  return nullptr;
}

void EventShard::Clear() {
  while (!queue_.empty()) {
    queue_.pop();
  }
  pending_timers_.clear();
  now_ = 0;
  next_seq_ = 0;
  next_timer_counter_ = 1;
  events_run_ = 0;
}

}  // namespace comma::sim

// Network regions for the partitioned (PDES) simulator core.
//
// A region is a set of components — hosts, link endpoints, proxies — whose
// events may only be scheduled from within the region itself. Regions map
// 1:1 onto EventShards; cross-region communication flows exclusively through
// CrossRegionChannels whose minimum latency (the link propagation delay)
// is the conservative lookahead horizon. See docs/parallel-sim.md.
#ifndef COMMA_SIM_REGION_H_
#define COMMA_SIM_REGION_H_

#include <cstdint>
#include <string>

namespace comma::sim {

// Dense region index. Region 0 always exists ("main"): single-region
// simulations run entirely inside it and never pay for partitioning.
using RegionId = uint16_t;
inline constexpr RegionId kMainRegion = 0;

struct Region {
  RegionId id = kMainRegion;
  std::string name;
};

// Knobs for Simulator::Run. num_workers == 1 keeps the serial event loop
// (the default, and bit-for-bit the reference behaviour); higher values
// shard execution across threads by region. Worker count never changes
// results — that is the determinism contract parallel_determinism_test
// enforces — only wall-clock time.
struct SimulatorOptions {
  int num_workers = 1;
};

}  // namespace comma::sim

#endif  // COMMA_SIM_REGION_H_

#include "src/sim/simulator.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/util/check.h"

namespace comma::sim {

namespace {

// The shard a worker (or the serial loop) is currently executing events
// for. Thread-local so region-internal Schedule()/Now() calls from inside
// an event resolve to the executing region without any locking.
struct ExecContext {
  Simulator* sim = nullptr;
  EventShard* shard = nullptr;
};
thread_local ExecContext tl_exec;

constexpr TimePoint SaturatingAdd(TimePoint a, Duration b) {
  return a > kNoEvent - b ? kNoEvent : a + b;
}

}  // namespace

std::string FormatTime(TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds", static_cast<long long>(t / kSecond),
                static_cast<long long>(t % kSecond));
  return buf;
}

void Simulator::AddShard(const std::string& name) {
  const RegionId id = static_cast<RegionId>(shards_.size());
  shards_.push_back(std::make_unique<EventShard>(id));
  regions_.push_back({id, name});
}

RegionId Simulator::AddRegion(const std::string& name) {
  COMMA_CHECK(!running_) << "AddRegion during Run";
  COMMA_CHECK(shards_.size() < 0xffff) << "too many regions";
  AddShard(name);
  shards_.back()->set_now(now_);
  return static_cast<RegionId>(shards_.size() - 1);
}

void Simulator::RegisterCrossRegionEdge(RegionId a, RegionId b, Duration latency) {
  COMMA_CHECK(a != b) << "cross-region edge must span two regions";
  COMMA_CHECK(a < shards_.size() && b < shards_.size()) << "unknown region";
  COMMA_CHECK(latency > 0) << "lookahead must be positive (got " << latency << ")";
  const auto update = [&](EdgeKey key) {
    auto it = edge_lookahead_.find(key);
    if (it == edge_lookahead_.end()) {
      edge_lookahead_[key] = latency;
      channels_[key] = std::make_unique<CrossRegionChannel>();
    } else {
      it->second = std::min(it->second, latency);
    }
  };
  update({b, a});
  update({a, b});
  min_lookahead_ = std::min(min_lookahead_, latency);
}

Duration Simulator::EdgeLookahead(RegionId from, RegionId to) const {
  const auto it = edge_lookahead_.find({to, from});
  return it == edge_lookahead_.end() ? kNoEvent : it->second;
}

const EventShard* Simulator::ExecutingShardHere() const {
  return tl_exec.sim == this ? tl_exec.shard : nullptr;
}

EventShard& Simulator::SchedulingShard() {
  if (tl_exec.sim == this) {
    return *tl_exec.shard;
  }
  return *shards_[ambient_region_];
}

RegionId Simulator::CurrentRegion() const {
  const EventShard* exec = ExecutingShardHere();
  return exec != nullptr ? exec->region() : ambient_region_;
}

TimePoint Simulator::Now() const {
  const EventShard* exec = ExecutingShardHere();
  return exec != nullptr ? exec->now() : now_;
}

void Simulator::Schedule(Duration delay, std::function<void()> fn) {
  EventShard& shard = SchedulingShard();
  shard.Push(shard.now() + std::max<Duration>(delay, 0), kInvalidTimerId, std::move(fn));
}

void Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  SchedulingShard().Push(when, kInvalidTimerId, std::move(fn));
}

void Simulator::ScheduleInRegion(RegionId region, Duration delay, std::function<void()> fn) {
  COMMA_CHECK(region < shards_.size()) << "unknown region " << region;
  delay = std::max<Duration>(delay, 0);
  const EventShard* exec = ExecutingShardHere();
  if (exec != nullptr && exec->region() != region) {
    // Cross-region send: route through the edge's channel so the arrival
    // becomes visible at the next barrier. The lookahead check is what
    // keeps the epoch horizon conservative.
    const Duration lookahead = EdgeLookahead(exec->region(), region);
    COMMA_CHECK(lookahead != kNoEvent)
        << "cross-region send " << exec->region() << "->" << region << " on unregistered edge";
    COMMA_CHECK(delay >= lookahead)
        << "cross-region delay " << delay << " below edge lookahead " << lookahead;
    channels_.find({region, exec->region()})->second->Push(exec->now() + delay, std::move(fn));
    return;
  }
  EventShard& dst = *shards_[region];
  const TimePoint base = exec != nullptr ? exec->now() : now_;
  dst.Push(base + delay, kInvalidTimerId, std::move(fn));
}

TimerId Simulator::ScheduleTimer(Duration delay, std::function<void()> fn) {
  EventShard& shard = SchedulingShard();
  const uint32_t counter = shard.NextTimerCounter();
  shard.AddPendingTimer(counter);
  const TimerId id = (static_cast<TimerId>(generation_) << 48) |
                     (static_cast<TimerId>(shard.region()) << 32) | counter;
  shard.Push(shard.now() + std::max<Duration>(delay, 0), id, std::move(fn));
  return id;
}

bool Simulator::Cancel(TimerId id) {
  if (id == kInvalidTimerId) {
    return false;
  }
  const uint16_t generation = static_cast<uint16_t>(id >> 48);
  const RegionId region = static_cast<RegionId>((id >> 32) & 0xffff);
  const uint32_t counter = static_cast<uint32_t>(id);
  if (generation != generation_) {
    return false;  // Stale id from before a Reset(): checked no-op.
  }
  COMMA_CHECK(region < shards_.size()) << "Cancel on timer id with unknown region " << region;
  const EventShard* exec = ExecutingShardHere();
  COMMA_DCHECK(!running_ || (exec != nullptr && exec->region() == region))
      << "cross-region timer cancel while running";
  return shards_[region]->ErasePendingTimer(counter);
}

bool Simulator::IsPending(TimerId id) const {
  if (id == kInvalidTimerId) {
    return false;
  }
  const uint16_t generation = static_cast<uint16_t>(id >> 48);
  const RegionId region = static_cast<RegionId>((id >> 32) & 0xffff);
  if (generation != generation_ || region >= shards_.size()) {
    return false;
  }
  return shards_[region]->IsTimerPending(static_cast<uint32_t>(id));
}

uint64_t Simulator::DrainShard(EventShard& shard, TimePoint horizon) {
  const ExecContext saved = tl_exec;
  tl_exec = {this, &shard};
  uint64_t executed = 0;
  while (auto ev = shard.PopBefore(horizon)) {
    ev->fn();
    ++executed;
  }
  tl_exec = saved;
  return executed;
}

void Simulator::DrainChannels() {
  for (auto& [key, channel] : channels_) {
    auto arrivals = channel->DrainAll();
    if (arrivals.empty()) {
      continue;
    }
    EventShard& dst = *shards_[key.dst];
    for (auto& arrival : arrivals) {
      // Lookahead guarantee: nothing produced during an epoch may land
      // before the horizon that epoch already executed up to.
      COMMA_DCHECK(arrival.when >= epoch_horizon_)
          << "cross-region arrival at " << arrival.when << " violates epoch horizon "
          << epoch_horizon_;
      dst.Push(arrival.when, kInvalidTimerId, std::move(arrival.fn));
      ++cross_region_events_;
    }
  }
}

bool Simulator::AdvanceEpoch(TimePoint clip) {
  DrainChannels();
  TimePoint t_min = kNoEvent;
  for (auto& shard : shards_) {
    t_min = std::min(t_min, shard->FrontTime());
  }
  if (t_min == kNoEvent || t_min >= clip) {
    return false;
  }
  TimePoint horizon = clip;
  if (min_lookahead_ != kNoEvent) {
    horizon = std::min(SaturatingAdd(t_min, min_lookahead_), clip);
  }
  epoch_horizon_ = horizon;
  ++epochs_;
  return true;
}

uint64_t Simulator::EpochLoopParallel(TimePoint clip, int workers) {
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> waited_us{0};
  bool done = false;  // Written only by the barrier completion step.
  // Per-shard events_run() at the start of the current epoch, so the
  // completion step can compute each epoch's critical path (the busiest
  // shard) exactly as the serial loop does.
  std::vector<uint64_t> epoch_start(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    epoch_start[i] = shards_[i]->events_run();
  }
  // The completion step runs exclusively between epochs (after every worker
  // arrives, before any is released), so it may touch shards and channels
  // without locks. It must not throw: a fired contract check here is fatal.
  auto completion = [this, clip, &done, &epoch_start]() noexcept {
    uint64_t epoch_max = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const uint64_t run = shards_[i]->events_run();
      epoch_max = std::max(epoch_max, run - epoch_start[i]);
      epoch_start[i] = run;
    }
    critical_path_events_ += epoch_max;
    if (!AdvanceEpoch(clip)) {
      done = true;
    }
  };
  std::barrier barrier(workers, completion);
  auto worker_loop = [&](int worker) {
    uint64_t local = 0;
    for (;;) {
      // Static region->worker assignment keeps a shard on one thread for
      // the whole run (no migration, no work stealing — determinism first).
      for (size_t i = static_cast<size_t>(worker); i < shards_.size();
           i += static_cast<size_t>(workers)) {
        local += DrainShard(*shards_[i], epoch_horizon_);
      }
      const auto wait_start = std::chrono::steady_clock::now();
      barrier.arrive_and_wait();
      waited_us += static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                             std::chrono::steady_clock::now() - wait_start)
                                             .count());
      if (done) {
        break;
      }
    }
    executed += local;
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (auto& t : threads) {
    t.join();
  }
  barrier_wait_us_ += waited_us.load();
  return executed.load();
}

uint64_t Simulator::EpochLoop(TimePoint clip) {
  COMMA_CHECK(!running_) << "re-entrant Simulator::Run";
  running_ = true;
  epoch_horizon_ = 0;
  const int workers =
      std::min<int>(std::max(options_.num_workers, 1), static_cast<int>(shards_.size()));
  uint64_t executed = 0;
  if (workers <= 1) {
    // The serial loop is the same epoch machine run on one thread, draining
    // shards in region order — which is exactly why its witnesses match the
    // parallel loop's bit for bit.
    while (AdvanceEpoch(clip)) {
      uint64_t epoch_max = 0;
      for (auto& shard : shards_) {
        const uint64_t n = DrainShard(*shard, epoch_horizon_);
        executed += n;
        epoch_max = std::max(epoch_max, n);
      }
      critical_path_events_ += epoch_max;
    }
  } else {
    if (AdvanceEpoch(clip)) {
      executed = EpochLoopParallel(clip, workers);
    }
  }
  // Epochs leave region clocks slightly apart; re-synchronize so Now() is
  // global again and relative scheduling between runs stays consistent.
  TimePoint final_now = now_;
  for (auto& shard : shards_) {
    final_now = std::max(final_now, shard->now());
  }
  now_ = final_now;
  for (auto& shard : shards_) {
    shard->set_now(final_now);
  }
  running_ = false;
  return executed;
}

bool Simulator::Step() {
  COMMA_CHECK(shards_.size() == 1) << "Step is single-region only; use Run/RunUntil";
  EventShard& shard = *shards_[0];
  const ExecContext saved = tl_exec;
  tl_exec = {this, &shard};
  auto ev = shard.PopBefore(kNoEvent);
  if (ev != nullptr) {
    ev->fn();
  }
  tl_exec = saved;
  now_ = std::max(now_, shard.now());
  shard.set_now(now_);
  return ev != nullptr;
}

uint64_t Simulator::Run(uint64_t limit) {
  if (limit != UINT64_MAX) {
    COMMA_CHECK(shards_.size() == 1) << "finite Run limit is single-region only";
    uint64_t n = 0;
    while (n < limit && Step()) {
      ++n;
    }
    return n;
  }
  return EpochLoop(kNoEvent);
}

uint64_t Simulator::RunUntil(TimePoint until) {
  const TimePoint clip = SaturatingAdd(until, 1);  // Events at `until` run.
  const uint64_t executed = EpochLoop(clip);
  if (until > now_) {
    now_ = until;
    for (auto& shard : shards_) {
      shard->set_now(until);
    }
  }
  return executed;
}

void Simulator::Reset() {
  COMMA_CHECK(!running_) << "Reset during Run";
  COMMA_CHECK(generation_ < 0xffff) << "Reset generation space exhausted";
  for (auto& shard : shards_) {
    shard->Clear();
  }
  for (auto& [key, channel] : channels_) {
    channel->Clear();
  }
  now_ = 0;
  epoch_horizon_ = 0;
  epochs_ = 0;
  cross_region_events_ = 0;
  barrier_wait_us_ = 0;
  critical_path_events_ = 0;
  ++generation_;
}

size_t Simulator::QueueSize() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->QueueSize();
  }
  return total;
}

uint64_t Simulator::EventsRun() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->events_run();
  }
  return total;
}

uint64_t Simulator::RegionEventsRun(RegionId id) const {
  COMMA_CHECK(id < shards_.size()) << "unknown region " << id;
  return shards_[id]->events_run();
}

}  // namespace comma::sim

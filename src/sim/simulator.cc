#include "src/sim/simulator.h"

#include <algorithm>
#include <cstdio>

namespace comma::sim {

std::string FormatTime(TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds", static_cast<long long>(t / kSecond),
                static_cast<long long>(t % kSecond));
  return buf;
}

void Simulator::Push(TimePoint when, TimerId timer_id, std::function<void()> fn) {
  auto ev = std::make_unique<Event>();
  ev->when = std::max(when, now_);
  ev->seq = next_seq_++;
  ev->timer_id = timer_id;
  ev->fn = std::move(fn);
  queue_.push(std::move(ev));
}

void Simulator::Schedule(Duration delay, std::function<void()> fn) {
  Push(now_ + std::max<Duration>(delay, 0), 0, std::move(fn));
}

void Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  Push(when, 0, std::move(fn));
}

TimerId Simulator::ScheduleTimer(Duration delay, std::function<void()> fn) {
  TimerId id = next_timer_id_++;
  pending_timers_.push_back(id);
  Push(now_ + std::max<Duration>(delay, 0), id, std::move(fn));
  return id;
}

bool Simulator::Cancel(TimerId id) {
  auto it = std::find(pending_timers_.begin(), pending_timers_.end(), id);
  if (it == pending_timers_.end()) {
    return false;
  }
  pending_timers_.erase(it);
  return true;
}

bool Simulator::IsPending(TimerId id) const {
  return std::find(pending_timers_.begin(), pending_timers_.end(), id) != pending_timers_.end();
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // priority_queue has no non-const top-extraction; the const_cast is the
    // standard idiom for moving out of a unique_ptr-valued queue.
    auto ev = std::move(const_cast<std::unique_ptr<Event>&>(queue_.top()));
    queue_.pop();
    if (ev->timer_id != kInvalidTimerId) {
      auto it = std::find(pending_timers_.begin(), pending_timers_.end(), ev->timer_id);
      if (it == pending_timers_.end()) {
        continue;  // Cancelled timer: tombstone, skip without running.
      }
      pending_timers_.erase(it);
    }
    now_ = ev->when;
    ++events_run_;
    ev->fn();
    return true;
  }
  return false;
}

uint64_t Simulator::Run(uint64_t limit) {
  uint64_t n = 0;
  while (n < limit && Step()) {
    ++n;
  }
  return n;
}

uint64_t Simulator::RunUntil(TimePoint until) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top()->when <= until) {
    if (Step()) {
      ++n;
    }
  }
  now_ = std::max(now_, until);
  return n;
}

}  // namespace comma::sim

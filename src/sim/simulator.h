// Discrete-event simulation core, shardable by network region.
//
// Single-region simulations (the default) behave exactly as the original
// serial core: one priority queue of (time, sequence, callback) events,
// drained in (time, insertion-order) order, fully deterministic for a given
// seed and schedule.
//
// Multi-region simulations partition the event queue into per-region
// EventShards and run a conservative epoch-barrier PDES loop (classic
// null-message lookahead; docs/parallel-sim.md):
//
//   epoch horizon = min(next event anywhere) + min cross-region link latency
//
// Every shard drains its events with when < horizon — serially in region
// order when SimulatorOptions::num_workers == 1, or concurrently on worker
// threads otherwise — then a barrier drains the cross-region channels in a
// fixed (dst, src) order and computes the next horizon. Cross-region sends
// must declare a delay >= the edge's registered lookahead (links register
// their propagation delay via RegisterCrossRegionEdge), which is what makes
// the horizon safe: nothing executed this epoch can create work before it.
//
// Determinism contract (parallel_determinism_test): the total event order is
// (when, region-id, per-region seq), and every seq depends only on region
// execution order plus the fixed channel-drain order — never on worker count
// or thread interleaving. Same seed ⇒ identical traces, metrics, fault logs,
// and stream bytes at 1, 2, 4, or 8 workers.
//
// Timers scheduled through ScheduleTimer() return a TimerId encoding
// (generation, region, counter); cancellation tombstones the queue entry.
// Reset() bumps the generation, so a stale id held across Reset() is a
// checked no-op instead of cancelling an unrelated new timer.
//
// Concurrency (DESIGN.md §7): all public methods are simulation-thread-only
// except the region-internal scheduling done by worker threads inside Run();
// the epoch barrier is the only synchronization point and cross-region
// channels the only shared mutable state (channel_mu_).
#ifndef COMMA_SIM_SIMULATOR_H_
#define COMMA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cross_region_channel.h"
#include "src/sim/event_shard.h"
#include "src/sim/region.h"
#include "src/sim/time.h"

namespace comma::sim {

// Opaque identifier for a cancellable timer. Zero is never a valid id.
// Layout: [generation:16][region:16][counter:32] — generation-0, region-0
// ids are bare counters, matching the original serial simulator's values.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

class Simulator {
 public:
  Simulator() { AddShard("main"); }
  explicit Simulator(const SimulatorOptions& options) : options_(options) { AddShard("main"); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Region topology (set up before the first Run) ---

  // Creates a new region and returns its id. Region 0 ("main") always
  // exists; scenarios typically keep backbone routing there and create one
  // region per gateway cluster.
  RegionId AddRegion(const std::string& name);
  size_t RegionCount() const { return shards_.size(); }
  const Region& region(RegionId id) const { return regions_[id]; }

  // Declares a cross-region communication edge with conservative lookahead
  // `latency` (> 0): any executing event in one region scheduling into the
  // other must use a delay >= the smallest latency registered for the edge.
  // Links call this with their propagation delay. Both directions are
  // registered; repeated calls keep the minimum.
  void RegisterCrossRegionEdge(RegionId a, RegionId b, Duration latency);
  // The smallest latency registered for (a, b); kNoEvent if unregistered.
  Duration EdgeLookahead(RegionId a, RegionId b) const;

  // The region the calling context schedules into: the executing region
  // from inside an event, the ambient (ScopedRegion) region otherwise.
  RegionId CurrentRegion() const;

  // True while the caller is inside an event of this simulator (on any
  // worker thread). Components that defer cross-region work only when an
  // immediate mutation would race (e.g. Link::ApplyPerSide) key off this.
  bool InEvent() const { return ExecutingShardHere() != nullptr; }

  const SimulatorOptions& options() const { return options_; }
  void set_options(const SimulatorOptions& options) { options_ = options; }

  // --- Clock & scheduling ---

  // Current simulated time: the executing region's clock from inside an
  // event, the global (synchronized) clock outside Run.
  TimePoint Now() const;

  // Schedules `fn` to run `delay` microseconds from now, in the current
  // region (the executing region inside an event; the ambient construction
  // region — see ScopedRegion — otherwise). Negative delays are clamped to
  // zero (the event runs "immediately", after already-queued events at the
  // current time).
  void Schedule(Duration delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `when` (clamped to Now()).
  void ScheduleAt(TimePoint when, std::function<void()> fn);

  // Schedules `fn` in `region`, `delay` from now. From inside an event of a
  // different region this is a cross-region send: the edge must have been
  // registered and `delay` must be >= its lookahead; the arrival is routed
  // through the edge's channel and becomes visible at the next barrier.
  void ScheduleInRegion(RegionId region, Duration delay, std::function<void()> fn);

  // Schedules a cancellable timer in the current region. The returned id
  // stays valid until the timer fires, is cancelled, or Reset() is called.
  TimerId ScheduleTimer(Duration delay, std::function<void()> fn);

  // Cancels a pending timer. Returns true if the timer was still pending.
  // Ids from before a Reset() (stale generation) are a checked no-op.
  bool Cancel(TimerId id);

  // True if the timer with this id has neither fired nor been cancelled.
  bool IsPending(TimerId id) const;

  // --- Running ---

  // Runs events until the queue is empty or `limit` events have run.
  // Returns the number of events executed. A finite limit is only
  // meaningful single-region (multi-region runs are epoch-granular).
  uint64_t Run(uint64_t limit = UINT64_MAX);

  // Runs events with time <= `until`. Afterwards Now() == max(Now(), until)
  // and every region's clock is re-synchronized to it.
  // Returns the number of events executed.
  uint64_t RunUntil(TimePoint until);

  // Runs events for `span` more microseconds of simulated time.
  uint64_t RunFor(Duration span) { return RunUntil(Now() + span); }

  // Executes the single earliest event. Returns false if the queue is
  // empty. Single-region only.
  bool Step();

  // Rewinds to a fresh simulation at t=0: every queued event, pending
  // timer, and in-flight channel arrival is dropped and counters restart.
  // Region topology and registered edges survive. Timer ids issued before
  // Reset() go stale (their generation no longer matches).
  void Reset();

  // --- Introspection ---

  // Number of events currently queued (including tombstoned timers).
  size_t QueueSize() const;

  // Total events executed since construction (or the last Reset).
  uint64_t EventsRun() const;

  // Events executed by one region's shard; the per-region breakdown of
  // EventsRun(). Deterministic, and the direct measure of shard balance.
  uint64_t RegionEventsRun(RegionId id) const;

  // Epoch-loop telemetry (sim.* metrics; docs/parallel-sim.md). epochs()
  // and cross_region_events() are deterministic; barrier_wait_us() is
  // wall-clock and excluded from determinism witnesses.
  uint64_t epochs() const { return epochs_; }
  uint64_t cross_region_events() const { return cross_region_events_; }
  uint64_t barrier_wait_us() const { return barrier_wait_us_; }

  // Sum over epochs of the busiest shard's event count: the serialized
  // critical path of the epoch loop. EventsRun() / critical_path_events()
  // is the available parallelism of the run — the hardware-independent
  // bound on epoch-loop speedup. Deterministic and identical at every
  // worker count (both loops account it the same way).
  uint64_t critical_path_events() const { return critical_path_events_; }

 private:
  friend class ScopedRegion;

  struct EdgeKey {
    RegionId dst;
    RegionId src;
    bool operator<(const EdgeKey& o) const {
      return dst != o.dst ? dst < o.dst : src < o.src;
    }
  };

  void AddShard(const std::string& name);
  EventShard& SchedulingShard();
  const EventShard* ExecutingShardHere() const;
  uint64_t DrainShard(EventShard& shard, TimePoint horizon);
  // Drains channels and computes the next epoch horizon below `clip`
  // (exclusive). Returns false when no runnable event remains. Runs
  // exclusively (serial loop body or barrier completion step).
  bool AdvanceEpoch(TimePoint clip);
  void DrainChannels();
  uint64_t EpochLoop(TimePoint clip);
  uint64_t EpochLoopParallel(TimePoint clip, int workers);

  SimulatorOptions options_;
  std::vector<std::unique_ptr<EventShard>> shards_;
  std::vector<Region> regions_;
  // Channels and lookaheads keyed (dst, src): barrier drain order.
  std::map<EdgeKey, std::unique_ptr<CrossRegionChannel>> channels_;
  std::map<EdgeKey, Duration> edge_lookahead_;
  Duration min_lookahead_ = kNoEvent;  // kNoEvent = no cross edges.

  TimePoint now_ = 0;            // Global clock (authoritative outside Run).
  RegionId ambient_region_ = kMainRegion;  // ScopedRegion target.
  uint16_t generation_ = 0;      // Bumped by Reset(); tags TimerIds.
  bool running_ = false;
  TimePoint epoch_horizon_ = 0;  // Horizon of the epoch just executed.
  uint64_t epochs_ = 0;
  uint64_t cross_region_events_ = 0;
  uint64_t barrier_wait_us_ = 0;
  uint64_t critical_path_events_ = 0;
};

// Sets the ambient region new components schedule into while being
// constructed (or while the main thread manipulates them between runs).
// Scenario builders wrap each host's construction in one of these so that
// every timer and event the component ever schedules stays region-local.
class ScopedRegion {
 public:
  ScopedRegion(Simulator* sim, RegionId region) : sim_(sim), prev_(sim->ambient_region_) {
    sim_->ambient_region_ = region;
  }
  ~ScopedRegion() { sim_->ambient_region_ = prev_; }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Simulator* sim_;
  RegionId prev_;
};

}  // namespace comma::sim

#endif  // COMMA_SIM_SIMULATOR_H_

// Discrete-event simulation core.
//
// The Simulator owns a priority queue of (time, sequence, callback) events.
// Components schedule callbacks at absolute or relative simulated times;
// Run() drains the queue in (time, insertion-order) order, which makes every
// simulation deterministic for a given seed and schedule.
//
// Timers scheduled through ScheduleTimer() return a TimerHandle that can be
// cancelled or rescheduled; cancellation is O(1) (the queue entry is
// tombstoned, not removed).
//
// Concurrency (DESIGN.md §7): the Simulator and its event queue are owned
// by the simulation thread. Nothing here is locked or atomic, and no other
// thread may call Schedule()/Run()/Now() until the PDES refactor introduces
// a partitioned, explicitly synchronized event loop.
#ifndef COMMA_SIM_SIMULATOR_H_
#define COMMA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace comma::sim {

// Opaque identifier for a cancellable timer. Zero is never a valid id.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  TimePoint Now() const { return now_; }

  // Schedules `fn` to run `delay` microseconds from now. Negative delays are
  // clamped to zero (the event runs "immediately", after already-queued
  // events at the current time).
  void Schedule(Duration delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `when` (clamped to Now()).
  void ScheduleAt(TimePoint when, std::function<void()> fn);

  // Schedules a cancellable timer. The returned id stays valid until the
  // timer fires or is cancelled.
  TimerId ScheduleTimer(Duration delay, std::function<void()> fn);

  // Cancels a pending timer. Returns true if the timer was still pending.
  bool Cancel(TimerId id);

  // True if the timer with this id has neither fired nor been cancelled.
  bool IsPending(TimerId id) const;

  // Runs events until the queue is empty or `limit` events have run.
  // Returns the number of events executed.
  uint64_t Run(uint64_t limit = UINT64_MAX);

  // Runs events with time <= `until`. Afterwards Now() == max(Now(), until).
  // Returns the number of events executed.
  uint64_t RunUntil(TimePoint until);

  // Runs events for `span` more microseconds of simulated time.
  uint64_t RunFor(Duration span) { return RunUntil(now_ + span); }

  // Executes the single earliest event. Returns false if the queue is empty.
  bool Step();

  // Number of events currently queued (including tombstoned timers).
  size_t QueueSize() const { return queue_.size(); }

  // Total events executed since construction.
  uint64_t EventsRun() const { return events_run_; }

 private:
  struct Event {
    TimePoint when = 0;
    uint64_t seq = 0;       // Tie-breaker: earlier-scheduled events run first.
    TimerId timer_id = 0;   // Non-zero for cancellable timers.
    std::function<void()> fn;
  };

  struct EventLater {
    bool operator()(const std::unique_ptr<Event>& a, const std::unique_ptr<Event>& b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      return a->seq > b->seq;
    }
  };

  void Push(TimePoint when, TimerId timer_id, std::function<void()> fn);

  TimePoint now_ = 0;
  uint64_t next_seq_ = 0;
  TimerId next_timer_id_ = 1;
  uint64_t events_run_ = 0;
  std::priority_queue<std::unique_ptr<Event>, std::vector<std::unique_ptr<Event>>, EventLater>
      queue_;
  // Pending (not cancelled, not fired) timer ids. Small; linear scan is fine.
  std::vector<TimerId> pending_timers_;
};

}  // namespace comma::sim

#endif  // COMMA_SIM_SIMULATOR_H_

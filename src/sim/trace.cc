#include "src/sim/trace.h"

#include <cstdio>
#include <vector>

#include "src/sim/simulator.h"

namespace comma::sim {

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kError:
      return "error";
    case TraceLevel::kWarn:
      return "warn";
    case TraceLevel::kInfo:
      return "info";
    case TraceLevel::kDebug:
      return "debug";
  }
  return "?";
}

Tracer::Sink Tracer::SetSink(Sink sink) {
  Sink prev = std::move(sink_);
  sink_ = std::move(sink);
  return prev;
}

void Tracer::Log(TraceLevel level, const std::string& component, const std::string& message) {
  if (!Enabled(level)) {
    return;
  }
  TraceRecord rec;
  rec.when = sim_ ? sim_->Now() : 0;
  rec.level = level;
  rec.component = component;
  rec.message = message;
  sink_(rec);
}

void Tracer::Logf(TraceLevel level, const std::string& component, const char* fmt, ...) {
  if (!Enabled(level)) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string msg;
  if (needed > 0) {
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    msg.assign(buf.data(), static_cast<size_t>(needed));
  }
  va_end(args_copy);
  Log(level, component, msg);
}

Tracer::Sink Tracer::StderrSink() {
  return [](const TraceRecord& rec) {
    std::fprintf(stderr, "t=%s [%s] %s: %s\n", FormatTime(rec.when).c_str(),
                 TraceLevelName(rec.level), rec.component.c_str(), rec.message.c_str());
  };
}

}  // namespace comma::sim

// Determinism witnesses for partitioned runs (docs/parallel-sim.md).
//
// A WitnessLog collects timestamped lines — trace records, fault events,
// application milestones — into per-region buffers (one writer per region;
// no locks) and renders them in the canonical (when, region, intra-region
// order) total order. Because that order is exactly the simulator's
// deterministic event order, a rendered witness is byte-identical for any
// worker count; the differential harness and bench_parallel compare runs
// through it.
#ifndef COMMA_SIM_WITNESS_H_
#define COMMA_SIM_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace comma::sim {

class WitnessLog {
 public:
  // Construct after the simulator's region topology is final: the log
  // pre-sizes one buffer per region so concurrent appends never reallocate
  // shared state.
  explicit WitnessLog(const Simulator* sim);
  WitnessLog(const WitnessLog&) = delete;
  WitnessLog& operator=(const WitnessLog&) = delete;

  // Appends `line` at `when` to the calling context's region buffer.
  void Append(TimePoint when, std::string line);

  // A Tracer sink that records "t=<usec> [level] component: message".
  Tracer::Sink MakeTraceSink();

  // The canonical merged witness: one line per entry, '\n'-terminated,
  // ordered by (when, region, append order).
  std::string Render() const;

  size_t EntryCount() const;
  void Clear();

 private:
  struct Entry {
    TimePoint when = 0;
    std::string line;
  };

  const Simulator* sim_;
  std::vector<std::vector<Entry>> per_region_;
};

// FNV-1a 64-bit over the bytes (witness fingerprints in bench output).
uint64_t WitnessHash(const std::string& bytes);

}  // namespace comma::sim

#endif  // COMMA_SIM_WITNESS_H_

#include "src/sim/random.h"

#include <cmath>

namespace comma::sim {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Random::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::NextBelow(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

double Random::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Random::Exponential(double mean) {
  if (mean <= 0.0) {
    return 0.0;
  }
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Random::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  if (hi <= lo) {
    return lo;
  }
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

Random Random::Fork() { return Random(NextU64()); }

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  // Feed both words through SplitMix64 so adjacent stream indices land far
  // apart in seed space (a raw XOR would correlate neighboring regions).
  uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  const uint64_t a = SplitMix64(x);
  return a ^ SplitMix64(x);
}

Random Random::ForkStream(uint64_t stream) const {
  // Only the base state word seeds the child; the sequence position of
  // *this is deliberately not consumed.
  return Random(DeriveStreamSeed(s_[0], stream));
}

void Random::SaveState(uint64_t out[4]) const {
  for (int i = 0; i < 4; ++i) {
    out[i] = s_[i];
  }
}

void Random::RestoreState(const uint64_t in[4]) {
  for (int i = 0; i < 4; ++i) {
    s_[i] = in[i];
  }
}

}  // namespace comma::sim

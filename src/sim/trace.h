// Lightweight component-scoped tracing for the simulator.
//
// Components log through a Tracer bound to the Simulator clock. Sinks are
// pluggable; the default sink discards everything so that benches pay no
// formatting cost unless tracing is enabled.
#ifndef COMMA_SIM_TRACE_H_
#define COMMA_SIM_TRACE_H_

#include <cstdarg>
#include <functional>
#include <string>

#include "src/sim/time.h"

namespace comma::sim {

class Simulator;

enum class TraceLevel {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

const char* TraceLevelName(TraceLevel level);

// A trace record delivered to a sink.
struct TraceRecord {
  TimePoint when = 0;
  TraceLevel level = TraceLevel::kInfo;
  std::string component;
  std::string message;
};

class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  explicit Tracer(const Simulator* sim) : sim_(sim) {}

  // Installs a sink; pass nullptr to disable. Returns the previous sink.
  Sink SetSink(Sink sink);

  void SetLevel(TraceLevel level) { level_ = level; }
  TraceLevel level() const { return level_; }
  bool Enabled(TraceLevel level) const { return sink_ && level <= level_; }

  void Log(TraceLevel level, const std::string& component, const std::string& message);

  // printf-style convenience.
  void Logf(TraceLevel level, const std::string& component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

  // A sink that writes "t=1.000000s [level] component: message" to stderr.
  static Sink StderrSink();

 private:
  const Simulator* sim_;
  Sink sink_;
  TraceLevel level_ = TraceLevel::kInfo;
};

}  // namespace comma::sim

#endif  // COMMA_SIM_TRACE_H_

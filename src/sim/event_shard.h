// Per-region event queue for the partitioned simulator.
//
// An EventShard is the classic (time, seq) priority queue, owned by exactly
// one region. During an epoch a shard is touched only by the worker thread
// the region is assigned to, so nothing here is locked; the epoch barrier
// (simulator.cc) is the only synchronization point. Determinism contract:
// events are totally ordered by (when, region-id, per-shard seq), and seq
// values depend only on the region's own execution order plus the fixed
// channel-drain order — never on worker count or thread interleaving.
#ifndef COMMA_SIM_EVENT_SHARD_H_
#define COMMA_SIM_EVENT_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/region.h"
#include "src/sim/time.h"

namespace comma::sim {

// Sentinel for "shard has no runnable event".
inline constexpr TimePoint kNoEvent = INT64_MAX;

class EventShard {
 public:
  struct Event {
    TimePoint when = 0;
    uint64_t seq = 0;        // Tie-breaker: earlier-scheduled events run first.
    uint64_t timer_id = 0;   // Non-zero for cancellable timers.
    std::function<void()> fn;
  };

  explicit EventShard(RegionId region) : region_(region) {}
  EventShard(const EventShard&) = delete;
  EventShard& operator=(const EventShard&) = delete;

  RegionId region() const { return region_; }

  // The shard-local clock. Within an epoch shards drift apart; the
  // simulator re-synchronizes them at the end of every Run call.
  TimePoint now() const { return now_; }
  void set_now(TimePoint t) { now_ = t; }

  // Enqueues an event at max(when, now()) with the next shard-local seq.
  void Push(TimePoint when, uint64_t timer_id, std::function<void()> fn);

  // Earliest queued time, or kNoEvent when (effectively) empty. Tombstoned
  // timers at the front are popped eagerly so the epoch horizon is never
  // held back by a cancelled timer.
  TimePoint FrontTime();

  // Pops and returns the earliest event with when < horizon, advancing the
  // shard clock to it; nullptr when none qualifies. Cancelled timers are
  // skipped (tombstones). The caller runs ev->fn.
  std::unique_ptr<Event> PopBefore(TimePoint horizon);

  // --- Timer bookkeeping (counters are the low 32 bits of a TimerId) ---
  uint32_t NextTimerCounter() { return next_timer_counter_++; }
  uint32_t PeekTimerCounter() const { return next_timer_counter_; }
  void AddPendingTimer(uint32_t counter) { pending_timers_.push_back(counter); }
  bool ErasePendingTimer(uint32_t counter);
  bool IsTimerPending(uint32_t counter) const;

  size_t QueueSize() const { return queue_.size(); }
  uint64_t events_run() const { return events_run_; }

  // Reset() support: drops all queued events and pending timers and rewinds
  // the clock and counters to a fresh simulation.
  void Clear();

 private:
  struct EventLater {
    bool operator()(const std::unique_ptr<Event>& a, const std::unique_ptr<Event>& b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      return a->seq > b->seq;
    }
  };

  const RegionId region_;
  TimePoint now_ = 0;
  uint64_t next_seq_ = 0;
  uint32_t next_timer_counter_ = 1;
  uint64_t events_run_ = 0;
  std::priority_queue<std::unique_ptr<Event>, std::vector<std::unique_ptr<Event>>, EventLater>
      queue_;
  // Pending (not cancelled, not fired) timer counters. Small; linear scan.
  std::vector<uint32_t> pending_timers_;
};

}  // namespace comma::sim

#endif  // COMMA_SIM_EVENT_SHARD_H_

// Timestamped event channel between two regions (one per directed edge).
//
// During an epoch, the single worker executing the source region appends
// arrivals here; at the epoch barrier the (exclusive) completion step drains
// every channel into its destination shard in a fixed (dst, src) order.
// Because exactly one region writes each channel and writes within a region
// are sequential, the drain order — and therefore every seq the destination
// shard assigns — is identical for any worker count.
//
// The mutex only arbitrates "source worker appends" vs "barrier drains";
// it never orders events (channel_mu_, DESIGN.md §7 lock hierarchy).
#ifndef COMMA_SIM_CROSS_REGION_CHANNEL_H_
#define COMMA_SIM_CROSS_REGION_CHANNEL_H_

#include <functional>
#include <mutex>
#include <vector>

#include "src/sim/time.h"
#include "src/util/thread_annotations.h"

namespace comma::sim {

class CrossRegionChannel {
 public:
  struct Arrival {
    TimePoint when = 0;
    std::function<void()> fn;
  };

  CrossRegionChannel() = default;
  CrossRegionChannel(const CrossRegionChannel&) = delete;
  CrossRegionChannel& operator=(const CrossRegionChannel&) = delete;

  // Appends an arrival (source-region execution order is preserved).
  void Push(TimePoint when, std::function<void()> fn) COMMA_EXCLUDES(channel_mu_);

  // Removes and returns every queued arrival, in push order.
  std::vector<Arrival> DrainAll() COMMA_EXCLUDES(channel_mu_);

  // Lifetime count of arrivals pushed (read at barriers, for sim.* metrics).
  uint64_t TotalPushed() const COMMA_EXCLUDES(channel_mu_);

  void Clear() COMMA_EXCLUDES(channel_mu_);

 private:
  mutable std::mutex channel_mu_;
  std::vector<Arrival> arrivals_ COMMA_GUARDED_BY(channel_mu_);
  uint64_t total_pushed_ COMMA_GUARDED_BY(channel_mu_) = 0;
};

}  // namespace comma::sim

#endif  // COMMA_SIM_CROSS_REGION_CHANNEL_H_

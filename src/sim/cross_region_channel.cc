#include "src/sim/cross_region_channel.h"

#include <utility>

namespace comma::sim {

void CrossRegionChannel::Push(TimePoint when, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(channel_mu_);
  arrivals_.push_back({when, std::move(fn)});
  ++total_pushed_;
}

std::vector<CrossRegionChannel::Arrival> CrossRegionChannel::DrainAll() {
  std::lock_guard<std::mutex> lock(channel_mu_);
  std::vector<Arrival> out;
  out.swap(arrivals_);
  return out;
}

uint64_t CrossRegionChannel::TotalPushed() const {
  std::lock_guard<std::mutex> lock(channel_mu_);
  return total_pushed_;
}

void CrossRegionChannel::Clear() {
  std::lock_guard<std::mutex> lock(channel_mu_);
  arrivals_.clear();
}

}  // namespace comma::sim

// Simulated-time types and helpers.
//
// All simulated time in Comma is an integer count of microseconds since the
// start of the simulation. Integer time keeps the discrete-event core exactly
// reproducible across platforms (no floating-point event reordering).
#ifndef COMMA_SIM_TIME_H_
#define COMMA_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace comma::sim {

// A point in simulated time, in microseconds since simulation start.
using TimePoint = int64_t;

// A span of simulated time, in microseconds.
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

// Converts a duration in (possibly fractional) seconds to microseconds,
// rounding to nearest.
constexpr Duration SecondsToDuration(double seconds) {
  return static_cast<Duration>(seconds * static_cast<double>(kSecond) + 0.5);
}

// Converts a duration to fractional seconds (for reporting only; never feed
// the result back into event scheduling).
constexpr double DurationToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// Renders a time point as "12.345678s" for traces and reports.
std::string FormatTime(TimePoint t);

}  // namespace comma::sim

#endif  // COMMA_SIM_TIME_H_

#include "src/proxy/filter_state.h"

namespace comma::proxy {

void WriteStateHeader(util::ByteWriter* w, const char* magic, uint8_t version) {
  for (int i = 0; i < 4; ++i) {
    w->WriteU8(static_cast<uint8_t>(magic[i]));
  }
  w->WriteU8(version);
}

std::optional<uint8_t> ReadStateHeader(util::ByteReader* r, const char* magic) {
  for (int i = 0; i < 4; ++i) {
    if (r->ReadU8() != static_cast<uint8_t>(magic[i])) {
      return std::nullopt;
    }
  }
  const uint8_t version = r->ReadU8();
  if (r->failed()) {
    return std::nullopt;
  }
  return version;
}

void WriteStreamKey(util::ByteWriter* w, const StreamKey& key) {
  w->WriteU32(key.src.value());
  w->WriteU16(key.src_port);
  w->WriteU32(key.dst.value());
  w->WriteU16(key.dst_port);
}

StreamKey ReadStreamKey(util::ByteReader* r) {
  StreamKey key;
  key.src = net::Ipv4Address(r->ReadU32());
  key.src_port = r->ReadU16();
  key.dst = net::Ipv4Address(r->ReadU32());
  key.dst_port = r->ReadU16();
  return key;
}

}  // namespace comma::proxy

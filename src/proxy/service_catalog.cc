#include "src/proxy/service_catalog.h"

#include "src/util/strings.h"

namespace comma::proxy {

void ServiceCatalog::Register(const std::string& name, Entry entry) {
  entries_[name] = std::move(entry);
}

const ServiceCatalog::Entry* ServiceCatalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> ServiceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;
}

std::string ServiceCatalog::Describe(const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return "";
  }
  std::vector<std::string> steps;
  steps.reserve(entry->steps.size());
  for (const Step& step : entry->steps) {
    steps.push_back(LauncherToken(step));
  }
  return entry->description + " [" + util::Join(steps, " ") + "]";
}

std::string ServiceCatalog::LauncherToken(const Step& step) {
  std::vector<std::string> parts = {step.filter};
  parts.insert(parts.end(), step.args.begin(), step.args.end());
  return util::Join(parts, ":");
}

bool ServiceCatalog::Apply(ServiceProxy& sp, const std::string& name, const StreamKey& key,
                           std::string* error) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    if (error != nullptr) {
      *error = "unknown service: " + name;
    }
    return false;
  }
  for (const Step& step : entry->steps) {
    sp.LoadFilter(step.filter);
  }
  if (key.IsWildcard()) {
    sp.LoadFilter("launcher");
    std::vector<std::string> tokens;
    tokens.reserve(entry->steps.size());
    for (const Step& step : entry->steps) {
      tokens.push_back(LauncherToken(step));
    }
    return sp.AddService("launcher", key, tokens, error);
  }
  // Concrete key: apply the steps directly, rolling back on failure.
  std::vector<size_t> applied;
  for (size_t i = 0; i < entry->steps.size(); ++i) {
    const Step& step = entry->steps[i];
    if (!sp.AddService(step.filter, key, step.args, error)) {
      for (size_t j : applied) {
        sp.DeleteService(entry->steps[j].filter, key);
      }
      return false;
    }
    applied.push_back(i);
  }
  return true;
}

bool ServiceCatalog::Remove(ServiceProxy& sp, const std::string& name,
                            const StreamKey& key) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return false;
  }
  if (key.IsWildcard()) {
    return sp.DeleteService("launcher", key);
  }
  bool any = false;
  // Reverse order: dependents before their support filters.
  for (auto it = entry->steps.rbegin(); it != entry->steps.rend(); ++it) {
    any = sp.DeleteService(it->filter, key) || any;
  }
  return any;
}

}  // namespace comma::proxy

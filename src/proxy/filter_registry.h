// The filter pool (thesis §5.2): factories for every filter type the proxy
// can instantiate.
//
// The thesis loads filters with dlopen ("load <FilterLibraryFile>"); here
// factories are compiled in and `load`/`remove` toggle their availability,
// preserving the interface contract (a filter must be loaded before `add`
// can instantiate it).
#ifndef COMMA_PROXY_FILTER_REGISTRY_H_
#define COMMA_PROXY_FILTER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/proxy/filter.h"

namespace comma::proxy {

class FilterRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Filter>()>;

  // Registers a factory under `name`. Replaces any existing registration.
  void Register(const std::string& name, std::string description, Factory factory);

  // "load <file>": accepts a bare name or a "lib<name>.so" path. Returns the
  // canonical filter name, or nullopt if no such factory exists.
  std::optional<std::string> Load(const std::string& file);
  // "remove <file>": marks the filter unavailable. Returns false if it was
  // not loaded.
  bool Unload(const std::string& file);

  bool IsLoaded(const std::string& name) const;
  std::unique_ptr<Filter> Create(const std::string& name) const;

  // Names of loaded filters, in load order (for `report`).
  const std::vector<std::string>& loaded() const { return loaded_; }
  // All registered factory names (the "repository", loaded or not).
  std::vector<std::string> known() const;
  std::string Description(const std::string& name) const;

 private:
  static std::string CanonicalName(const std::string& file);

  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> factories_;
  std::vector<std::string> loaded_;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_FILTER_REGISTRY_H_

#include "src/proxy/service_proxy.h"

#include <algorithm>
#include <exception>

#include "src/util/check.h"

namespace comma::proxy {

// --- FilterContext ---

sim::Simulator& FilterContext::simulator() { return *proxy_->node()->simulator(); }
sim::Tracer& FilterContext::tracer() { return proxy_->node()->tracer(); }
void FilterContext::InjectPacket(net::PacketPtr packet) {
  proxy_->InjectPacket(std::move(packet));
}
monitor::EemClient* FilterContext::eem() { return proxy_->eem(); }
obs::MetricRegistry* FilterContext::metrics() { return &proxy_->metrics(); }
Filter* FilterContext::FindFilterOnKey(const StreamKey& key, const std::string& name) {
  return proxy_->FindFilterOnKey(key, name);
}

// --- Filter default behaviour ---

bool Filter::OnInsert(FilterContext&, const StreamKey&, const std::vector<std::string>&,
                      std::string*) {
  // AddService already attached this instance to the requested key; filters
  // that need more keys (e.g. the reverse direction) override this.
  return true;
}

void Filter::In(FilterContext&, const StreamKey&, const net::Packet&) {}

FilterVerdict Filter::Out(FilterContext&, const StreamKey&, net::Packet&) {
  return FilterVerdict::kPass;
}

void Filter::OnNewStream(FilterContext&, const StreamKey&) {}

void Filter::OnDetach(FilterContext&, const StreamKey&) {}

FilterStateKind Filter::state_kind() const { return FilterStateKind::kStateless; }

bool Filter::ExportState(util::Bytes*) const { return false; }

bool Filter::ImportState(FilterContext&, const util::Bytes&, std::string* error) {
  if (error != nullptr) {
    *error = "filter '" + name_ + "' does not import state";
  }
  return false;
}

// --- ServiceProxy ---

ServiceProxy::ServiceProxy(net::Node* node, FilterRegistry registry)
    : node_(node), registry_(std::move(registry)), context_(this) {
  node_->AddTap(this);
  // Existing ProxyStats counters are exported as pull sources — no cost on
  // the packet path, read only when a snapshot is taken. `this` outlives the
  // registry (member declaration order), so the captures are safe.
  metrics_.RegisterCounterSource("sp.packets_inspected",
                                 [this] { return stats_.packets_inspected; });
  metrics_.RegisterCounterSource("sp.packets_modified",
                                 [this] { return stats_.packets_modified; });
  metrics_.RegisterCounterSource("sp.packets_dropped",
                                 [this] { return stats_.packets_dropped; });
  metrics_.RegisterCounterSource("sp.packets_injected",
                                 [this] { return stats_.packets_injected; });
  metrics_.RegisterCounterSource("sp.streams_seen", [this] { return stats_.streams_seen; });
  metrics_.RegisterCounterSource("sp.filters_quarantined",
                                 [this] { return stats_.filters_quarantined; });
  metrics_.RegisterGaugeSource("sp.streams",
                               [this] { return static_cast<double>(streams_.size()); });
  metrics_.RegisterGaugeSource("sp.attachments",
                               [this] { return static_cast<double>(attachments_.size()); });
  metrics_.RegisterGaugeSource("sp.queue_cache_entries",
                               [this] { return static_cast<double>(queue_cache_.size()); });
  metrics_.RegisterGaugeSource("sp.registry_size",
                               [this] { return static_cast<double>(metrics_.size()); });
  // Cost of resolving a stream's filter queue on a cache miss, in
  // attachments examined (the resolve is a linear scan over the attachment
  // set plus a sort). A deterministic work count, not wall time: wall-clock
  // reads are banned in src/proxy (comma-lint nondeterminism-ban) so metric
  // snapshots stay bit-for-bit reproducible for the fault-replay oracle.
  queue_resolve_work_ = metrics_.GetHistogram("sp.queue_resolve_work", 0.0, 1000.0, 50);
}

ServiceProxy::~ServiceProxy() {
  // Detach every attachment first: filters with armed timers (snoop's local
  // retransmit clock) cancel them in OnDetach, so tearing down a proxy
  // mid-run — a crashed gateway — leaves no timer aimed at freed state.
  while (!attachments_.empty()) {
    Attachment att = attachments_.back();
    Detach(att.filter, att.key);
  }
  node_->RemoveTap(this);
}

std::optional<std::string> ServiceProxy::LoadFilter(const std::string& file) {
  return registry_.Load(file);
}

bool ServiceProxy::RemoveFilter(const std::string& file) { return registry_.Unload(file); }

bool ServiceProxy::AddService(const std::string& filter_name, const StreamKey& key,
                              const std::vector<std::string>& args, std::string* error) {
  std::unique_ptr<Filter> instance = registry_.Create(filter_name);
  if (instance == nullptr) {
    if (error != nullptr) {
      *error = "unknown or unloaded filter: " + filter_name;
    }
    return false;
  }
  FilterPtr filter(std::move(instance));
  // The insertion method decides which keys to attach to; the default
  // implementation (below, via Attach) uses the requested key itself.
  Attach(filter, key);
  std::string local_error;
  bool inserted = false;
  // A throwing insertion method is a clean `add` failure, not a quarantine:
  // the instance never went live, so it is simply discarded.
  try {
    inserted = filter->OnInsert(context_, key, args, &local_error);
  } catch (const std::exception& e) {
    inserted = false;
    local_error = std::string("insertion method failed: ") + e.what();
  }
  if (!inserted) {
    Detach(filter, key);
    if (error != nullptr) {
      *error = local_error.empty() ? "insertion refused" : local_error;
    }
    return false;
  }
  services_.push_back({filter_name, key, args});
  return true;
}

bool ServiceProxy::DeleteService(const std::string& filter_name, const StreamKey& key) {
  std::vector<FilterPtr> victims;
  for (const Attachment& att : attachments_) {
    if (att.key == key && att.filter->name() == filter_name) {
      victims.push_back(att.filter);
    }
  }
  for (const FilterPtr& f : victims) {
    Detach(f, key);
  }
  services_.erase(std::remove_if(services_.begin(), services_.end(),
                                 [&](const ServiceRecord& r) {
                                   return r.filter == filter_name && r.key == key;
                                 }),
                  services_.end());
  return !victims.empty();
}

void ServiceProxy::Attach(const FilterPtr& filter, const StreamKey& key) {
  if (filter == nullptr) {
    return;
  }
  // No duplicate attachments of the same instance to the same key.
  for (const Attachment& att : attachments_) {
    if (att.filter == filter && att.key == key) {
      return;
    }
  }
  attachments_.push_back({filter, key});
  // Intern the per-filter telemetry now, not on first packet: an attached
  // filter's sp.filter.<name>.* counters must be visible to `stats` and the
  // EEM bridge even before (or without) traffic.
  TelemetryFor(filter.get());
  InvalidateQueues();
}

void ServiceProxy::Detach(const FilterPtr& filter, const StreamKey& key) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& att) {
    return att.filter == filter && att.key == key;
  });
  if (it == attachments_.end()) {
    return;
  }
  FilterPtr held = it->filter;  // Keep alive through the callback.
  attachments_.erase(it);
  RunContained(held.get(), "OnDetach", [&] { held->OnDetach(context_, key); });
  InvalidateQueues();
}

void ServiceProxy::RemoveStream(const StreamKey& key) {
  std::vector<std::pair<FilterPtr, StreamKey>> victims;
  for (const Attachment& att : attachments_) {
    if (att.key == key) {
      victims.emplace_back(att.filter, att.key);
    }
  }
  for (auto& [filter, k] : victims) {
    Detach(filter, k);
  }
  services_.erase(std::remove_if(services_.begin(), services_.end(),
                                 [&](const ServiceRecord& r) { return r.key == key; }),
                  services_.end());
  streams_.erase(key);
  queue_cache_.erase(key);
}

void ServiceProxy::AdoptStream(const StreamKey& key, const StreamInfo& info) {
  if (streams_.count(key) != 0) {
    return;
  }
  StreamInfo adopted = info;
  // A registered stream has by contract been seen at least once
  // (StreamRegistryAuditor); the checkpoint always carries a positive count,
  // but guard against hand-built states.
  if (adopted.packets == 0) {
    adopted.packets = 1;
  }
  if (adopted.last_seen < adopted.first_seen) {
    adopted.last_seen = adopted.first_seen;
  }
  streams_.emplace(key, adopted);
  // Counts as a stream this proxy has seen — but deliberately does NOT fire
  // NotifyNewStream: the stream's per-key services arrive via the restored
  // service records, and re-running wild-card launchers here would install
  // them twice.
  ++stats_.streams_seen;
}

void ServiceProxy::InjectPacket(net::PacketPtr packet) {
  ++stats_.packets_injected;
  packet->UpdateChecksums();
  node_->InjectPacket(std::move(packet));
}

Filter* ServiceProxy::FindFilterOnKey(const StreamKey& key, const std::string& name) {
  for (const Attachment& att : attachments_) {
    if (att.filter->name() == name && (att.key == key || att.key.Matches(key))) {
      return att.filter.get();
    }
  }
  return nullptr;
}

// --- Fault containment ---

bool ServiceProxy::IsQuarantined(const Filter* f) const {
  return std::find(quarantined_.begin(), quarantined_.end(), f) != quarantined_.end();
}

void ServiceProxy::QuarantineFilter(Filter* f, const std::string& reason) {
  RecordQuarantine(f, reason);
}

void ServiceProxy::RecordQuarantine(Filter* f, const std::string& reason) {
  if (f == nullptr || IsQuarantined(f)) {
    return;
  }
  quarantined_.push_back(f);
  quarantine_log_.push_back({f->name(), f, reason, node_->simulator()->Now()});
  ++stats_.filters_quarantined;
  node_->tracer().Logf(sim::TraceLevel::kWarn, "proxy", "quarantined filter %s: %s",
                       f->name().c_str(), reason.c_str());
  // Resolved queues must stop listing the instance — but a pass may be
  // iterating a cached queue right now, so flushing the cache here would
  // dangle its reference. OnPacket flushes after the pass instead.
  if (!in_filter_pass_) {
    InvalidateQueues();
  }
}

template <typename Fn>
bool ServiceProxy::RunContained(Filter* f, const char* where, Fn&& fn) {
  try {
    fn();
    return true;
  } catch (const std::exception& e) {
    RecordQuarantine(f, std::string(where) + ": " + e.what());
  } catch (...) {
    RecordQuarantine(f, std::string(where) + ": unknown exception");
  }
  return false;
}

std::vector<ServiceProxy::ReportEntry> ServiceProxy::Report(const std::string& only_filter) const {
  std::vector<ReportEntry> out;
  for (const std::string& name : registry_.loaded()) {
    if (!only_filter.empty() && name != only_filter) {
      continue;
    }
    ReportEntry entry;
    entry.filter = name;
    for (const Attachment& att : attachments_) {
      if (att.filter->name() == name) {
        entry.keys.push_back(att.key.ToString());
      }
    }
    for (const QuarantineRecord& rec : quarantine_log_) {
      if (rec.filter != name) {
        continue;
      }
      // The instance may still be attached (bypassed in place): list its keys.
      std::string keys;
      for (const Attachment& att : attachments_) {
        if (att.filter.get() == rec.instance) {
          keys += (keys.empty() ? "" : ", ") + att.key.ToString();
        }
      }
      entry.quarantined.push_back((keys.empty() ? "(detached)" : keys) + " -- " + rec.reason);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<Filter*> ServiceProxy::ResolveQueue(const StreamKey& key) const {
  std::vector<Filter*> queue;
  for (const Attachment& att : attachments_) {
    if (att.key == key || att.key.Matches(key)) {
      if (IsQuarantined(att.filter.get())) {
        continue;  // Bypassed fail-open; the stream runs without it.
      }
      if (std::find(queue.begin(), queue.end(), att.filter.get()) == queue.end()) {
        queue.push_back(att.filter.get());
      }
    }
  }
  // Stable sort: equal priorities keep attachment order.
  std::stable_sort(queue.begin(), queue.end(), [](const Filter* a, const Filter* b) {
    return static_cast<int>(a->priority()) > static_cast<int>(b->priority());
  });
  return queue;
}

const std::vector<Filter*>& ServiceProxy::QueueFor(const StreamKey& key) {
  auto it = queue_cache_.find(key);
  if (it != queue_cache_.end()) {
    return it->second;
  }
  auto& queue = queue_cache_.emplace(key, ResolveQueue(key)).first->second;
  queue_resolve_work_->Observe(static_cast<double>(attachments_.size()));
  return queue;
}

FilterTelemetry* ServiceProxy::TelemetryFor(Filter* f) {
  if (f->telemetry_ != nullptr) {
    return f->telemetry_;
  }
  auto it = filter_telemetry_.find(f->name());
  if (it == filter_telemetry_.end()) {
    const std::string prefix = "sp.filter." + f->name() + ".";
    auto t = std::make_unique<FilterTelemetry>();
    t->in_packets = metrics_.GetCounter(prefix + "in_packets");
    t->in_bytes = metrics_.GetCounter(prefix + "in_bytes");
    t->out_packets = metrics_.GetCounter(prefix + "out_packets");
    t->out_bytes = metrics_.GetCounter(prefix + "out_bytes");
    t->packets_dropped = metrics_.GetCounter(prefix + "packets_dropped");
    t->bytes_dropped = metrics_.GetCounter(prefix + "bytes_dropped");
    t->bytes_shrunk = metrics_.GetCounter(prefix + "bytes_shrunk");
    t->bytes_grown = metrics_.GetCounter(prefix + "bytes_grown");
    it = filter_telemetry_.emplace(f->name(), std::move(t)).first;
  }
  f->telemetry_ = it->second.get();
  return f->telemetry_;
}

void ServiceProxy::NotifyNewStream(const StreamKey& key) {
  ++stats_.streams_seen;
  // Wild-card-attached filters get a chance to launch services (launcher).
  std::vector<FilterPtr> interested;
  for (const Attachment& att : attachments_) {
    if (att.key.IsWildcard() && att.key.Matches(key)) {
      interested.push_back(att.filter);
    }
  }
  for (const FilterPtr& f : interested) {
    if (IsQuarantined(f.get())) {
      continue;
    }
    RunContained(f.get(), "OnNewStream", [&] { f->OnNewStream(context_, key); });
  }
}

net::TapVerdict ServiceProxy::OnPacket(net::PacketPtr& packet, const net::TapContext&) {
  // Guard against reentrancy (an injected packet looping back through the
  // same node would otherwise re-enter the queues).
  if (in_filter_pass_) {
    return net::TapVerdict::kPass;
  }

  const StreamKey key = StreamKey::FromPacket(*packet);
  ++stats_.packets_inspected;

  auto stream_it = streams_.find(key);
  if (stream_it == streams_.end()) {
    stream_it = streams_.emplace(key, StreamInfo{node_->simulator()->Now(), 0, 0, 0}).first;
    NotifyNewStream(key);
  }
  StreamInfo& info = stream_it->second;
  info.last_seen = node_->simulator()->Now();
  ++info.packets;
  info.bytes += packet->SizeBytes();

  const std::vector<Filter*>& queue = QueueFor(key);
  if (queue.empty()) {
    return net::TapVerdict::kPass;
  }

  const bool audit = util::DebugChecksEnabled();
  std::vector<int> visited_priorities;
  if (audit) {
    queue_auditor_.AuditQueue(*this, key, queue);
    registry_auditor_.AuditStream(*this, key);
    visited_priorities.reserve(queue.size());
  }

  // Quarantines during the pass must not flush the cache mid-iteration
  // (`queue` aliases the cached vector); compare the log length afterwards.
  const size_t quarantines_before = quarantine_log_.size();

  in_filter_pass_ = true;
  // In pass: top (highest priority) down — read-only.
  for (Filter* f : queue) {
    if (IsQuarantined(f)) {
      continue;  // Faulted earlier in this very pass.
    }
    if (audit) {
      visited_priorities.push_back(static_cast<int>(f->priority()));
    }
    FilterTelemetry* t = TelemetryFor(f);
    t->in_packets->Inc();
    t->in_bytes->Inc(packet->payload().size());
    RunContained(f, "In", [&] { f->In(context_, key, *packet); });
  }
  if (audit) {
    queue_auditor_.AuditInPassOrder(visited_priorities);
    visited_priorities.clear();
  }
  // Out pass: bottom (lowest priority) up — may modify or drop.
  const uint16_t checksum_before = packet->has_tcp() ? packet->tcp().checksum
                                   : packet->has_udp() ? packet->udp().checksum
                                                       : packet->ip().checksum;
  for (auto rit = queue.rbegin(); rit != queue.rend(); ++rit) {
    Filter* f = *rit;
    if (IsQuarantined(f)) {
      continue;
    }
    if (audit) {
      visited_priorities.push_back(static_cast<int>(f->priority()));
    }
    // A faulting Out quarantines the filter and passes the packet through
    // unmodified-by-it (fail-open): dropping on fault would stall the stream
    // the service was supposed to be transparent to.
    FilterVerdict verdict = FilterVerdict::kPass;
    FilterTelemetry* t = TelemetryFor(f);
    const size_t payload_before = packet->payload().size();
    RunContained(f, "Out", [&] { verdict = f->Out(context_, key, *packet); });
    if (verdict == FilterVerdict::kDrop) {
      t->packets_dropped->Inc();
      t->bytes_dropped->Inc(payload_before);
      ++stats_.packets_dropped;
      in_filter_pass_ = false;
      if (quarantine_log_.size() != quarantines_before) {
        InvalidateQueues();  // `queue` is dead past this point.
      }
      if (audit) {
        // A kDrop cuts the pass short; the visited prefix must still be
        // bottom-up.
        queue_auditor_.AuditOutPassOrder(visited_priorities);
      }
      return net::TapVerdict::kDrop;
    }
    const size_t payload_after = packet->payload().size();
    t->out_packets->Inc();
    t->out_bytes->Inc(payload_after);
    if (payload_after < payload_before) {
      t->bytes_shrunk->Inc(payload_before - payload_after);
    } else if (payload_after > payload_before) {
      t->bytes_grown->Inc(payload_after - payload_before);
    }
  }
  in_filter_pass_ = false;
  if (quarantine_log_.size() != quarantines_before) {
    InvalidateQueues();  // `queue` is dead past this point.
  }
  if (audit) {
    queue_auditor_.AuditOutPassOrder(visited_priorities);
  }
  const uint16_t checksum_after = packet->has_tcp() ? packet->tcp().checksum
                                  : packet->has_udp() ? packet->udp().checksum
                                                      : packet->ip().checksum;
  if (checksum_before != checksum_after) {
    ++stats_.packets_modified;
  }
  return net::TapVerdict::kPass;
}

}  // namespace comma::proxy

// Stream keys (thesis §5.2): the ordered quadruple
// (source IP, source port, destination IP, destination port) that uniquely
// identifies a directional communication stream. Fields left blank (zero)
// form a wild-card key that matches any value in that position.
#ifndef COMMA_PROXY_STREAM_KEY_H_
#define COMMA_PROXY_STREAM_KEY_H_

#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/net/packet.h"

namespace comma::proxy {

struct StreamKey {
  net::Ipv4Address src;
  uint16_t src_port = 0;
  net::Ipv4Address dst;
  uint16_t dst_port = 0;

  // Extracts the key from a TCP or UDP packet. Raw IP packets yield a key
  // with zero ports.
  static StreamKey FromPacket(const net::Packet& p);

  // Parses four whitespace-separated tokens: "11.11.10.99 7 11.11.10.10 1169".
  // Zero values ("0.0.0.0" / "0") denote wild-card positions.
  static std::optional<StreamKey> Parse(const std::vector<std::string>& tokens);

  // True if any field is blank (making this a wild-card key).
  bool IsWildcard() const;

  // Wild-card match: every non-blank field of *this must equal `concrete`.
  bool Matches(const StreamKey& concrete) const;

  // The same stream in the opposite direction.
  StreamKey Reversed() const { return {dst, dst_port, src, src_port}; }

  // Renders in the thesis's report format: "11.11.10.99 7 -> 11.11.10.10 1169".
  std::string ToString() const;

  friend bool operator==(const StreamKey& a, const StreamKey& b) {
    return a.src == b.src && a.src_port == b.src_port && a.dst == b.dst &&
           a.dst_port == b.dst_port;
  }
  friend bool operator<(const StreamKey& a, const StreamKey& b) {
    return std::tie(a.src, a.src_port, a.dst, a.dst_port) <
           std::tie(b.src, b.src_port, b.dst, b.dst_port);
  }
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_STREAM_KEY_H_

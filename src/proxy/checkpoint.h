// Warm-standby checkpoint replication for the Service Proxy
// (docs/robustness.md, "Checkpoint & failover").
//
// A CheckpointManager runs beside the *primary* gateway's proxy. On a fixed
// cadence it snapshots the proxy's service records, per-stream accounting,
// and every checkpointed filter's exported state blob, and streams the
// snapshot to the standby gateway over a plain TCP connection — through the
// same simulated links the data traffic uses, like the thesis's control
// traffic. Snapshots are incremental: a filter blob identical to the last
// one replicated is sent as a one-byte "unchanged" marker.
//
// A CheckpointReceiver runs beside the *standby* gateway's proxy. It decodes
// frames into the latest CheckpointState and arms a watchdog once the first
// frame arrives: when the inter-frame gap exceeds the timeout, the primary
// is presumed dead and on_primary_dead fires exactly once — the trigger for
// takeover (core::FailoverSystem).
//
// Wire format (all integers big-endian via util::bytes): a stream of
// [u32 payload length][payload] frames. Payload:
//   "CKPT" u8 version          (proxy::WriteStateHeader)
//   u64 seq, u64 taken_at
//   u32 n_services, then per service (creation order):
//     string filter, StreamKey key, u8 n_args, n_args strings,
//     u8 state_mode (0 = no state, 1 = unchanged since last frame,
//                    2 = inline blob), mode 2: u32 len + blob bytes
//   u32 n_streams, then per stream:
//     StreamKey key, u64 packets, u64 bytes, u64 first_seen
#ifndef COMMA_PROXY_CHECKPOINT_H_
#define COMMA_PROXY_CHECKPOINT_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/proxy/service_proxy.h"
#include "src/proxy/stream_key.h"
#include "src/tcp/tcp_stack.h"
#include "src/util/bytes.h"

namespace comma::proxy {

inline constexpr uint16_t kCheckpointPort = 12100;

// One service as checkpointed: how to re-issue it (filter/key/args) plus the
// filter instance's exported state, if it had any.
struct CheckpointedService {
  std::string filter;
  StreamKey key;
  std::vector<std::string> args;
  bool has_state = false;
  util::Bytes state;
};

struct CheckpointedStream {
  StreamKey key;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  sim::TimePoint first_seen = 0;
};

struct CheckpointState {
  uint64_t seq = 0;
  sim::TimePoint taken_at = 0;
  std::vector<CheckpointedService> services;  // Creation order.
  std::vector<CheckpointedStream> streams;
};

struct CheckpointStats {
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;        // Frame bytes handed to TCP.
  uint64_t blobs_sent = 0;        // Full state blobs replicated.
  uint64_t blobs_unchanged = 0;   // Elided as "unchanged" markers.
  uint64_t ticks_skipped = 0;     // Cadence ticks with no usable connection.
  uint64_t reconnects = 0;
};

struct CheckpointManagerConfig {
  net::Ipv4Address standby;       // The standby gateway's address.
  uint16_t port = kCheckpointPort;
  sim::Duration interval = 100 * sim::kMillisecond;
};

class CheckpointManager {
 public:
  // `sp` and `stack` must outlive the manager (or Stop() must run first).
  CheckpointManager(ServiceProxy* sp, tcp::TcpStack* stack,
                    const CheckpointManagerConfig& config);
  ~CheckpointManager();
  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  // Begins the replication cadence (connects lazily on the first tick).
  void Start();
  // Cancels the cadence and detaches from the connection. Safe to call twice.
  void Stop();

  // Builds a full snapshot of the proxy right now (also used by planned
  // handoffs and tests; does not touch the wire).
  CheckpointState Snapshot();

  // Snapshots and replicates immediately, off-cadence.
  void CheckpointNow();

  const CheckpointStats& stats() const { return stats_; }
  uint64_t seq() const { return seq_; }

 private:
  void Tick();
  void EnsureConnection();
  void EncodeFrame(const CheckpointState& state, util::Bytes* out);
  void PumpOutbox();

  ServiceProxy* sp_;
  tcp::TcpStack* stack_;
  CheckpointManagerConfig config_;
  sim::TimerId timer_ = sim::kInvalidTimerId;
  tcp::TcpConnection* conn_ = nullptr;
  bool connected_ = false;
  bool started_ = false;
  uint64_t seq_ = 0;
  // Last blob replicated per (filter name, key) on the current connection;
  // cleared on reconnect so a fresh receiver gets full blobs.
  std::map<std::pair<std::string, StreamKey>, util::Bytes> last_sent_;
  util::Bytes outbox_;  // Frame bytes TCP has not yet accepted.
  CheckpointStats stats_;
  // Push handles into the primary proxy's registry (sp.recovery.*).
  obs::Counter* frames_sent_metric_;
  obs::Counter* bytes_sent_metric_;
  obs::Counter* blobs_sent_metric_;
  obs::Counter* blobs_unchanged_metric_;
  obs::Gauge* seq_metric_;
};

struct CheckpointReceiverConfig {
  uint16_t port = kCheckpointPort;
  // Declared dead after this long without a frame. The watchdog arms on the
  // first frame received, so a standby that never hears from a primary does
  // not take over an empty gateway.
  sim::Duration watchdog = 500 * sim::kMillisecond;
};

class CheckpointReceiver {
 public:
  // `metrics` (the standby proxy's registry) may be null; counters are then
  // dropped. The registry must outlive the receiver.
  CheckpointReceiver(tcp::TcpStack* stack, const CheckpointReceiverConfig& config,
                     obs::MetricRegistry* metrics = nullptr);
  ~CheckpointReceiver();
  CheckpointReceiver(const CheckpointReceiver&) = delete;
  CheckpointReceiver& operator=(const CheckpointReceiver&) = delete;

  void Listen();
  // Fires once, from the watchdog, when checkpoints stop arriving.
  void set_on_primary_dead(std::function<void()> cb) { on_primary_dead_ = std::move(cb); }

  bool has_checkpoint() const { return frames_received_ > 0; }
  const CheckpointState& latest() const { return latest_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t parse_errors() const { return parse_errors_; }
  sim::TimePoint last_frame_at() const { return last_frame_at_; }

  // Stops the watchdog (takeover finished, or planned shutdown).
  void DisarmWatchdog();

 private:
  void OnAccept(tcp::TcpConnection* conn);
  void OnData();
  bool DecodeFrame(const util::Bytes& payload);
  void ArmWatchdog();
  void OnWatchdog();

  tcp::TcpStack* stack_;
  CheckpointReceiverConfig config_;
  std::function<void()> on_primary_dead_;
  tcp::TcpConnection* conn_ = nullptr;
  util::Bytes rx_;
  CheckpointState latest_;
  // Blob cache backing the "unchanged" marker, keyed like the sender's.
  std::map<std::pair<std::string, StreamKey>, util::Bytes> blob_cache_;
  uint64_t frames_received_ = 0;
  uint64_t parse_errors_ = 0;
  sim::TimePoint last_frame_at_ = 0;
  sim::TimerId watchdog_timer_ = sim::kInvalidTimerId;
  bool watchdog_fired_ = false;
  bool listening_ = false;
  obs::Counter* frames_metric_ = nullptr;
  obs::Counter* parse_errors_metric_ = nullptr;
  obs::Gauge* ckpt_streams_metric_ = nullptr;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_CHECKPOINT_H_

// The filter model of the Comma Service Proxy (thesis §5.2, Fig. 5.2).
//
// A filter is instantiated per service request and attached to one or more
// stream keys. Packets matching an attached key are presented twice:
//  - the *in* pass (read-only), highest priority first, so every filter sees
//    the unmodified packet;
//  - the *out* pass (mutating), lowest priority first, so higher-priority
//    filters may override the changes of lower-priority ones before the
//    packet is reinjected onto the network.
//
// Filters run inside the proxy's execution environment and touch the world
// only through their FilterContext (timers, packet injection, the EEM, the
// proxy itself) — mirroring the thesis's run-time containment (§5.1.3).
#ifndef COMMA_PROXY_FILTER_H_
#define COMMA_PROXY_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/proxy/stream_key.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/util/bytes.h"

namespace comma::monitor {
class EemClient;
}

namespace comma::obs {
class MetricRegistry;
}

namespace comma::proxy {

class ServiceProxy;
class Filter;
struct FilterTelemetry;

// Fixed priority levels (§5.3.2 assigns launcher HIGHEST, tcp HIGH,
// rdrop LOW, wsize LOWEST).
enum class FilterPriority : int {
  kLowest = 0,
  kLow = 1,
  kNormal = 2,
  kHigh = 3,
  kHighest = 4,
};

enum class FilterVerdict {
  kPass,
  kDrop,
};

// How a filter's per-stream state relates to gateway failover
// (docs/robustness.md, "Checkpoint & failover").
enum class FilterStateKind {
  // No state worth moving; a fresh instance behaves identically.
  kStateless,
  // Has state, but it is deliberately reconstructed from live traffic after
  // a handoff (the thesis-era escape: caches that re-warm, link conditions
  // that are local to the new gateway).
  kRebuildFromWire,
  // Exports a versioned blob that ImportState can resume from on another
  // gateway's filter instance.
  kCheckpointed,
};

// Services the proxy exposes to running filters.
class FilterContext {
 public:
  explicit FilterContext(ServiceProxy* proxy) : proxy_(proxy) {}

  ServiceProxy& proxy() { return *proxy_; }
  sim::Simulator& simulator();
  sim::Tracer& tracer();

  // Emits a filter-manufactured packet (e.g. a ZWSM, §8.2.2) into the
  // forwarding path of the proxy's node. The packet does not re-enter the
  // filter queues.
  void InjectPacket(net::PacketPtr packet);

  // The EEM client co-located with this proxy (thesis: filters can be EEM
  // clients). Null if the deployment has no monitor.
  monitor::EemClient* eem();

  // The proxy's metric registry (docs/observability.md). Never null; filters
  // bind counter/gauge handles at insertion time and bump them on the hot
  // path without further registry involvement.
  obs::MetricRegistry* metrics();

  // Finds another live filter instance attached to `key` by name — how
  // transformer filters locate their transparency-support filter (§8.1).
  Filter* FindFilterOnKey(const StreamKey& key, const std::string& name);

 private:
  ServiceProxy* proxy_;
};

class Filter : public std::enable_shared_from_this<Filter> {
 public:
  Filter(std::string name, FilterPriority priority)
      : name_(std::move(name)), priority_(priority) {}
  virtual ~Filter() = default;
  Filter(const Filter&) = delete;
  Filter& operator=(const Filter&) = delete;

  const std::string& name() const { return name_; }
  FilterPriority priority() const { return priority_; }

  // Insertion method: invoked once when the filter is instantiated for
  // `key`. The default attaches the filter to `key` itself; filters needing
  // both directions (tcp, ttsf, snoop) also attach to key.Reversed().
  // Returns false (with a message in *error) to refuse the insertion (bad
  // arguments).
  virtual bool OnInsert(FilterContext& ctx, const StreamKey& key,
                        const std::vector<std::string>& args, std::string* error);

  // Read-only inspection pass.
  virtual void In(FilterContext& ctx, const StreamKey& key, const net::Packet& packet);

  // Mutating pass. The packet may be modified in place; kDrop discards it.
  virtual FilterVerdict Out(FilterContext& ctx, const StreamKey& key, net::Packet& packet);

  // Fired on filters attached to wild-card keys when the first packet of a
  // new stream matching that key arrives (the launcher hook).
  virtual void OnNewStream(FilterContext& ctx, const StreamKey& stream);

  // The filter is being detached from `key` (service deleted or stream
  // closed). Per-key state should be released.
  virtual void OnDetach(FilterContext& ctx, const StreamKey& key);

  // One-line status used by `report`-style diagnostics; empty by default.
  virtual std::string Status() const { return ""; }

  // --- Failover state contract (docs/robustness.md) -----------------------
  // A checkpointed filter serializes its resumable per-stream state into a
  // versioned, length-prefixed byte blob (magic + u8 version header via
  // proxy::WriteStateHeader) so a warm-standby gateway can resume the stream
  // where the crashed one left off.

  virtual FilterStateKind state_kind() const;

  // Appends the state blob to *out. Returns false when there is nothing to
  // export (stateless filters, or no stream observed yet).
  virtual bool ExportState(util::Bytes* out) const;

  // Replaces this instance's state with a blob produced by ExportState on a
  // same-name filter. Invoked after OnInsert, before any traffic is seen.
  // Returns false (with a message in *error) on version/format mismatch; the
  // filter must then remain usable in its freshly-inserted state.
  virtual bool ImportState(FilterContext& ctx, const util::Bytes& in, std::string* error);

 private:
  std::string name_;
  FilterPriority priority_;
  // Per-filter-name metric handles, interned lazily by the proxy running
  // this instance (ServiceProxy::TelemetryFor). Instances of the same filter
  // name on one proxy share the handles; the counters aggregate across them.
  FilterTelemetry* telemetry_ = nullptr;
  friend class ServiceProxy;
};

using FilterPtr = std::shared_ptr<Filter>;

}  // namespace comma::proxy

#endif  // COMMA_PROXY_FILTER_H_

// The Comma Service Proxy (thesis Ch. 5).
//
// Attaches to a node as a packet tap (the Packet Interception Module),
// matches each packet's stream key against attached filters, and runs the
// in/out filter queues. Maintains:
//  - the filter pool (a FilterRegistry of loadable filter factories);
//  - attachments: (filter instance, key) pairs, where the key may be a
//    wild-card (launcher-style filters) or exact (per-stream services);
//  - the stream registry: every exact key seen, with accounting
//    (filter accounting, §5.2);
//  - resolved per-stream filter queues, cached and invalidated whenever the
//    attachment set changes.
//
// Concurrency (DESIGN.md §7): the proxy — including the stream registry
// (streams_) and the resolved-queue cache — is owned by the simulation
// thread. Only the embedded obs::MetricRegistry is thread-safe; everything
// else stays single-threaded until the PDES lands.
#ifndef COMMA_PROXY_SERVICE_PROXY_H_
#define COMMA_PROXY_SERVICE_PROXY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/node.h"
#include "src/obs/metric_registry.h"
#include "src/proxy/auditors.h"
#include "src/proxy/filter.h"
#include "src/proxy/filter_registry.h"
#include "src/proxy/stream_key.h"

namespace comma::monitor {
class EemClient;
}

namespace comma::proxy {

class ServiceCatalog;

struct StreamInfo {
  sim::TimePoint first_seen = 0;
  sim::TimePoint last_seen = 0;
  uint64_t packets = 0;
  uint64_t bytes = 0;
};

struct ProxyStats {
  uint64_t packets_inspected = 0;
  uint64_t packets_modified = 0;   // Serialized bytes changed across the queue.
  uint64_t packets_dropped = 0;    // A filter returned kDrop.
  uint64_t packets_injected = 0;   // Filter-manufactured packets.
  uint64_t streams_seen = 0;
  uint64_t filters_quarantined = 0;  // Instances bypassed after a fault.
};

// Hot-path metric handles shared by every instance of one filter name on one
// proxy ("sp.filter.<name>.*" in the registry). Interned once per name; the
// packet path only bumps pre-resolved counters.
struct FilterTelemetry {
  obs::Counter* in_packets;
  obs::Counter* in_bytes;       // Payload bytes presented to the in pass.
  obs::Counter* out_packets;    // Packets surviving this filter's out pass.
  obs::Counter* out_bytes;      // Payload bytes after this filter ran.
  obs::Counter* packets_dropped;
  obs::Counter* bytes_dropped;  // Payload bytes of kDrop'd packets.
  obs::Counter* bytes_shrunk;   // Payload bytes removed by in-place edits.
  obs::Counter* bytes_grown;    // Payload bytes added by in-place edits.
};

class ServiceProxy : public net::PacketTap {
 public:
  // Attaches to `node` as a tap. The registry defines the filter pool.
  ServiceProxy(net::Node* node, FilterRegistry registry);
  ~ServiceProxy() override;

  // --- Service management (backs the §5.3 command interface) ---
  // "load": returns the registered filter name, or nullopt.
  std::optional<std::string> LoadFilter(const std::string& file);
  // "remove": unloads the factory; live instances keep running.
  bool RemoveFilter(const std::string& file);
  // "add": instantiates `filter_name` and runs its insertion method on
  // `key` with `args`. Returns false with *error set on failure.
  bool AddService(const std::string& filter_name, const StreamKey& key,
                  const std::vector<std::string>& args, std::string* error);
  // "delete": detaches instances of `filter_name` attached to exactly `key`.
  bool DeleteService(const std::string& filter_name, const StreamKey& key);

  // --- Filter-facing interface (via FilterContext) ---
  // Attaches an existing instance to an additional key (insertion methods
  // adding methods to other keys, §5.2).
  void Attach(const FilterPtr& filter, const StreamKey& key);
  void Detach(const FilterPtr& filter, const StreamKey& key);
  // Removes a closed stream: detaches every filter on `key`, drops its
  // queue, and forgets the stream (the tcp filter calls this on close).
  void RemoveStream(const StreamKey& key);
  // Seeds the stream registry with a stream inherited from another gateway
  // (checkpoint restore / hand-off, §10.2.3): accounting continues where the
  // source proxy left off, and the launcher's OnNewStream does NOT fire
  // again when the stream's next packet arrives — its per-stream services
  // are reinstalled from the checkpointed service records instead. No-op if
  // the key is already registered.
  void AdoptStream(const StreamKey& key, const StreamInfo& info);
  void InjectPacket(net::PacketPtr packet);
  Filter* FindFilterOnKey(const StreamKey& key, const std::string& name);
  // Wires the co-located EEM client (optional).
  void set_eem(monitor::EemClient* eem) { eem_ = eem; }
  monitor::EemClient* eem() { return eem_; }
  // Wires the service catalog (optional; enables the `service` command).
  void set_catalog(const ServiceCatalog* catalog) { catalog_ = catalog; }
  const ServiceCatalog* catalog() const { return catalog_; }

  // --- Fault containment (graceful degradation) ---
  // A filter whose callback throws is *quarantined*: it is removed from
  // every resolved queue and never invoked again, so the stream it was
  // servicing degrades to plain pass-through instead of dying with the
  // filter (fail-open; the thesis's transparency contract means the end
  // hosts must still see a valid TCP stream when a service misbehaves).
  struct QuarantineRecord {
    std::string filter;      // Filter name.
    const Filter* instance;  // Identity only; may outlive detachment.
    std::string reason;      // what() of the escaping exception.
    sim::TimePoint when = 0;
  };
  bool IsQuarantined(const Filter* f) const;
  const std::vector<QuarantineRecord>& quarantine_log() const { return quarantine_log_; }
  // Manually quarantines a live instance (fault injection / operator action).
  void QuarantineFilter(Filter* f, const std::string& reason);

  // --- Introspection (backs `report` and Kati) ---
  // Filters in load order with their attached keys (Fig. 5.3 layout).
  struct ReportEntry {
    std::string filter;
    std::vector<std::string> keys;
    // One "<key> reason" line per quarantined instance of this filter.
    std::vector<std::string> quarantined;
  };
  std::vector<ReportEntry> Report(const std::string& only_filter = "") const;

  // How each live service was created (AddService name/key/args). This is
  // what a proxy hand-off transfers to the next gateway (§10.2.3).
  struct ServiceRecord {
    std::string filter;
    StreamKey key;
    std::vector<std::string> args;
  };
  const std::vector<ServiceRecord>& services() const { return services_; }
  const std::map<StreamKey, StreamInfo>& streams() const { return streams_; }
  const ProxyStats& stats() const { return stats_; }
  const FilterRegistry& registry() const { return registry_; }
  net::Node* node() const { return node_; }
  FilterContext& context() { return context_; }

  // --- Observability (docs/observability.md) ---
  // The proxy-owned metric registry. Always on: the proxy registers its own
  // counters ("sp.*", "sp.filter.<name>.*") at construction, other layers
  // (TCP, EEM, TTSF via FilterContext::metrics) hook theirs in, the `stats`
  // command and the EemMetricsBridge read it back out.
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }

  // --- Invariant auditing (active when util::DebugChecksEnabled()) ---
  // Resolves the filter queue for `key` from the attachment set without
  // touching the cache; the auditors diff this against cached state.
  std::vector<Filter*> ResolveQueue(const StreamKey& key) const;
  const std::map<StreamKey, std::vector<Filter*>>& queue_cache() const { return queue_cache_; }
  const FilterQueueAuditor& queue_auditor() const { return queue_auditor_; }
  const StreamRegistryAuditor& registry_auditor() const { return registry_auditor_; }
  // Full registry/cache sweep; fires a COMMA_CHECK on any violation.
  void AuditNow() { registry_auditor_.AuditRegistry(*this); }

  // --- PacketTap ---
  net::TapVerdict OnPacket(net::PacketPtr& packet, const net::TapContext& ctx) override;

 private:
  struct Attachment {
    FilterPtr filter;
    StreamKey key;
  };

  // Resolves the ordered filter list for a concrete key (cached).
  const std::vector<Filter*>& QueueFor(const StreamKey& key);
  void InvalidateQueues() { queue_cache_.clear(); }
  void NotifyNewStream(const StreamKey& key);
  // Runs `fn` (a filter callback) inside the containment boundary: an
  // escaping exception quarantines `f` and is swallowed. Returns false when
  // the filter faulted. Never invalidates the queue cache itself — callers
  // iterating a cached queue flush it after the pass.
  template <typename Fn>
  bool RunContained(Filter* f, const char* where, Fn&& fn);
  void RecordQuarantine(Filter* f, const std::string& reason);
  // Interns (once per filter name) and caches the per-filter metric handles
  // on `f`; subsequent packets use the cached pointer.
  FilterTelemetry* TelemetryFor(Filter* f);

  // Declared before everything that may hold handles into it, so the
  // registry outlives filters, sources, and telemetry users.
  obs::MetricRegistry metrics_;
  std::map<std::string, std::unique_ptr<FilterTelemetry>> filter_telemetry_;
  obs::HistogramMetric* queue_resolve_work_ = nullptr;

  net::Node* node_;
  FilterRegistry registry_;
  FilterContext context_;
  monitor::EemClient* eem_ = nullptr;
  const ServiceCatalog* catalog_ = nullptr;

  std::vector<Attachment> attachments_;
  std::vector<ServiceRecord> services_;
  std::map<StreamKey, StreamInfo> streams_;
  std::map<StreamKey, std::vector<Filter*>> queue_cache_;
  ProxyStats stats_;
  FilterQueueAuditor queue_auditor_;
  StreamRegistryAuditor registry_auditor_;
  bool in_filter_pass_ = false;
  // Quarantined instances: excluded by ResolveQueue, skipped mid-pass.
  std::vector<const Filter*> quarantined_;
  std::vector<QuarantineRecord> quarantine_log_;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_SERVICE_PROXY_H_

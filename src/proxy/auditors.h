// Runtime invariant auditors for the Service Proxy (correctness tooling).
//
// The thesis's filter-queue contract (§5.2) — read-only *in* pass top-down,
// mutating *out* pass bottom-up, queues ordered by priority — and the stream
// registry's quadruple/wild-card lookup rules are easy to break silently
// with a refactor: a mis-sorted queue only shows up as a filter seeing
// already-modified packets. These auditors re-derive the expected state from
// first principles on every packet traversal and COMMA_CHECK it against what
// the proxy actually holds.
//
// Both auditors are always compiled; ServiceProxy only invokes them when
// util::DebugChecksEnabled() (the CommaSystemConfig::debug_checks flag), so
// release benches pay one atomic load per packet.
#ifndef COMMA_PROXY_AUDITORS_H_
#define COMMA_PROXY_AUDITORS_H_

#include <cstdint>
#include <vector>

#include "src/proxy/filter.h"
#include "src/proxy/stream_key.h"

namespace comma::proxy {

class ServiceProxy;

// Verifies the resolved per-stream filter queue and the traversal order of
// the two passes.
class FilterQueueAuditor {
 public:
  // The queue for `key` must be duplicate-free, sorted by non-increasing
  // priority, and contain exactly the filters whose attachment keys equal or
  // wild-card-match `key`.
  void AuditQueue(const ServiceProxy& proxy, const StreamKey& key,
                  const std::vector<Filter*>& queue);

  // `priorities` is the priority of each filter in visit order. The in pass
  // must run top-down (non-increasing), the out pass bottom-up
  // (non-decreasing). A pass cut short by kDrop yields a prefix, which must
  // still be monotonic.
  void AuditInPassOrder(const std::vector<int>& priorities);
  void AuditOutPassOrder(const std::vector<int>& priorities);

  uint64_t audits() const { return audits_; }

 private:
  uint64_t audits_ = 0;
};

// Verifies stream-registry bookkeeping and queue-cache coherence: every
// cached queue must equal a fresh resolution against the current attachment
// set (stale cache entries are exactly the bug InvalidateQueues exists to
// prevent).
class StreamRegistryAuditor {
 public:
  // Per-packet audit of the stream the proxy just touched.
  void AuditStream(const ServiceProxy& proxy, const StreamKey& key);

  // Full sweep over every stream and cached queue (test teardown / on
  // demand; O(streams x attachments)).
  void AuditRegistry(const ServiceProxy& proxy);

  uint64_t audits() const { return audits_; }

 private:
  uint64_t audits_ = 0;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_AUDITORS_H_

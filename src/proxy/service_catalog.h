// Layered service abstraction (thesis §10.2.1 future work).
//
// The thesis notes that users should request *services* ("compress this
// stream", "keep this alive across disconnections") without knowing which
// filters, in which order, with which arguments realize them. A
// ServiceCatalog maps service names to filter recipes; applying an entry
// issues the underlying AddService calls (via the launcher for wild-card
// keys, so the recipe re-instantiates per matching stream).
#ifndef COMMA_PROXY_SERVICE_CATALOG_H_
#define COMMA_PROXY_SERVICE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "src/proxy/service_proxy.h"

namespace comma::proxy {

class ServiceCatalog {
 public:
  struct Step {
    std::string filter;
    std::vector<std::string> args;
  };

  struct Entry {
    std::string description;
    std::vector<Step> steps;  // Applied in order (dependencies first).
  };

  void Register(const std::string& name, Entry entry);
  const Entry* Find(const std::string& name) const;
  std::vector<std::string> names() const;
  std::string Describe(const std::string& name) const;

  // Applies the named recipe to `key` on `sp`. Wild-card keys go through a
  // launcher so every matching stream gets the recipe; concrete keys get
  // the filters directly. Loads any filter the recipe needs.
  bool Apply(ServiceProxy& sp, const std::string& name, const StreamKey& key,
             std::string* error) const;

  // Removes a previously applied recipe from `key`.
  bool Remove(ServiceProxy& sp, const std::string& name, const StreamKey& key) const;

 private:
  static std::string LauncherToken(const Step& step);

  std::map<std::string, Entry> entries_;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_SERVICE_CATALOG_H_

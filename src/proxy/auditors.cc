#include "src/proxy/auditors.h"

#include <algorithm>

#include "src/proxy/service_proxy.h"
#include "src/util/check.h"

namespace comma::proxy {

void FilterQueueAuditor::AuditQueue(const ServiceProxy& proxy, const StreamKey& key,
                                    const std::vector<Filter*>& queue) {
  ++audits_;
  for (size_t i = 0; i + 1 < queue.size(); ++i) {
    COMMA_CHECK_GE(static_cast<int>(queue[i]->priority()),
                   static_cast<int>(queue[i + 1]->priority()))
        << "filter queue for " << key.ToString() << " not sorted: " << queue[i]->name()
        << " before " << queue[i + 1]->name();
  }
  for (size_t i = 0; i < queue.size(); ++i) {
    COMMA_CHECK(queue[i] != nullptr) << "null filter in queue for " << key.ToString();
    for (size_t j = i + 1; j < queue.size(); ++j) {
      COMMA_CHECK(queue[i] != queue[j])
          << "duplicate filter '" << queue[i]->name() << "' in queue for " << key.ToString();
    }
  }
  // Set equality against a fresh resolution from the attachment list.
  std::vector<Filter*> expected = proxy.ResolveQueue(key);
  COMMA_CHECK_EQ(expected.size(), queue.size())
      << "cached queue for " << key.ToString() << " out of sync with attachments";
  for (Filter* f : queue) {
    COMMA_CHECK(std::find(expected.begin(), expected.end(), f) != expected.end())
        << "filter '" << f->name() << "' in queue for " << key.ToString()
        << " has no matching attachment";
  }
}

void FilterQueueAuditor::AuditInPassOrder(const std::vector<int>& priorities) {
  ++audits_;
  for (size_t i = 0; i + 1 < priorities.size(); ++i) {
    COMMA_CHECK_GE(priorities[i], priorities[i + 1])
        << "in pass must visit filters top-down (highest priority first)";
  }
}

void FilterQueueAuditor::AuditOutPassOrder(const std::vector<int>& priorities) {
  ++audits_;
  for (size_t i = 0; i + 1 < priorities.size(); ++i) {
    COMMA_CHECK_LE(priorities[i], priorities[i + 1])
        << "out pass must visit filters bottom-up (lowest priority first)";
  }
}

void StreamRegistryAuditor::AuditStream(const ServiceProxy& proxy, const StreamKey& key) {
  ++audits_;
  auto it = proxy.streams().find(key);
  COMMA_CHECK(it != proxy.streams().end())
      << "stream " << key.ToString() << " traversed but absent from the registry";
  const StreamInfo& info = it->second;
  COMMA_CHECK_GT(info.packets, 0u) << "registered stream " << key.ToString() << " has no packets";
  COMMA_CHECK_GT(info.bytes, 0u) << "registered stream " << key.ToString() << " has no bytes";
  COMMA_CHECK_LE(info.first_seen, info.last_seen)
      << "stream " << key.ToString() << " timestamps run backwards";
}

void StreamRegistryAuditor::AuditRegistry(const ServiceProxy& proxy) {
  ++audits_;
  for (const auto& [key, info] : proxy.streams()) {
    COMMA_CHECK_GT(info.packets, 0u) << "registered stream " << key.ToString() << " has no packets";
    COMMA_CHECK_LE(info.first_seen, info.last_seen)
        << "stream " << key.ToString() << " timestamps run backwards";
  }
  for (const auto& [key, queue] : proxy.queue_cache()) {
    std::vector<Filter*> expected = proxy.ResolveQueue(key);
    COMMA_CHECK_EQ(expected.size(), queue.size())
        << "stale cached queue for " << key.ToString();
    for (size_t i = 0; i < queue.size(); ++i) {
      COMMA_CHECK(queue[i] == expected[i])
          << "stale cached queue for " << key.ToString() << " at position " << i;
    }
  }
}

}  // namespace comma::proxy

// The SP control port (thesis §5.3): a line-based TCP service on port 12000
// of the proxy host. Kati (or a plain telnet-style client) connects over the
// simulated network, sends command lines, and reads responses.
//
// Framing: each command is one LF-terminated line; each response is zero or
// more lines followed by a lone "." line (responses may legitimately be
// empty — the interface is fail-silent).
#ifndef COMMA_PROXY_COMMAND_SERVER_H_
#define COMMA_PROXY_COMMAND_SERVER_H_

#include <map>
#include <memory>
#include <string>

#include "src/proxy/command.h"
#include "src/tcp/tcp_stack.h"

namespace comma::proxy {

inline constexpr uint16_t kCommandPort = 12000;

// A command line longer than this is rejected with an error response
// instead of buffering without bound — a wedged or hostile client must not
// grow gateway memory (the SP shares its process with live data filters).
inline constexpr size_t kMaxCommandLineBytes = 4096;

class CommandServer {
 public:
  // Listens on `port` of `stack`'s node, executing commands against `proxy`.
  CommandServer(tcp::TcpStack* stack, ServiceProxy* proxy, uint16_t port = kCommandPort);
  ~CommandServer();
  CommandServer(const CommandServer&) = delete;
  CommandServer& operator=(const CommandServer&) = delete;

  uint64_t commands_executed() const { return commands_executed_; }
  uint64_t lines_rejected() const { return lines_rejected_; }
  size_t session_count() const { return sessions_.size(); }

 private:
  struct Session {
    std::string inbuf;
    // An oversized line was rejected; swallow bytes until its newline so the
    // client's next line starts a clean command.
    bool discarding = false;
  };

  void OnAccept(tcp::TcpConnection* conn);
  void OnData(tcp::TcpConnection* conn, const util::Bytes& data);

  tcp::TcpStack* stack_;
  CommandProcessor processor_;
  uint16_t port_;
  std::map<tcp::TcpConnection*, Session> sessions_;
  uint64_t commands_executed_ = 0;
  uint64_t lines_rejected_ = 0;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_COMMAND_SERVER_H_

// The SP control port (thesis §5.3): a line-based TCP service on port 12000
// of the proxy host. Kati (or a plain telnet-style client) connects over the
// simulated network, sends command lines, and reads responses.
//
// Framing: each command is one LF-terminated line; each response is zero or
// more lines followed by a lone "." line (responses may legitimately be
// empty — the interface is fail-silent).
#ifndef COMMA_PROXY_COMMAND_SERVER_H_
#define COMMA_PROXY_COMMAND_SERVER_H_

#include <map>
#include <memory>
#include <string>

#include "src/proxy/command.h"
#include "src/tcp/tcp_stack.h"

namespace comma::proxy {

inline constexpr uint16_t kCommandPort = 12000;

class CommandServer {
 public:
  // Listens on `port` of `stack`'s node, executing commands against `proxy`.
  CommandServer(tcp::TcpStack* stack, ServiceProxy* proxy, uint16_t port = kCommandPort);
  ~CommandServer();
  CommandServer(const CommandServer&) = delete;
  CommandServer& operator=(const CommandServer&) = delete;

  uint64_t commands_executed() const { return commands_executed_; }

 private:
  struct Session {
    std::string inbuf;
  };

  void OnAccept(tcp::TcpConnection* conn);
  void OnData(tcp::TcpConnection* conn, const util::Bytes& data);

  tcp::TcpStack* stack_;
  CommandProcessor processor_;
  uint16_t port_;
  std::map<tcp::TcpConnection*, Session> sessions_;
  uint64_t commands_executed_ = 0;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_COMMAND_SERVER_H_

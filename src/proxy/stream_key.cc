#include "src/proxy/stream_key.h"

#include "src/util/strings.h"

namespace comma::proxy {

StreamKey StreamKey::FromPacket(const net::Packet& p) {
  StreamKey key;
  key.src = p.ip().src;
  key.dst = p.ip().dst;
  if (p.has_tcp()) {
    key.src_port = p.tcp().src_port;
    key.dst_port = p.tcp().dst_port;
  } else if (p.has_udp()) {
    key.src_port = p.udp().src_port;
    key.dst_port = p.udp().dst_port;
  }
  return key;
}

std::optional<StreamKey> StreamKey::Parse(const std::vector<std::string>& tokens) {
  if (tokens.size() != 4) {
    return std::nullopt;
  }
  auto src = net::Ipv4Address::Parse(tokens[0]);
  auto dst = net::Ipv4Address::Parse(tokens[2]);
  uint32_t src_port = 0;
  uint32_t dst_port = 0;
  if (!src || !dst || !util::ParseU32(tokens[1], &src_port) ||
      !util::ParseU32(tokens[3], &dst_port) || src_port > 65535 || dst_port > 65535) {
    return std::nullopt;
  }
  return StreamKey{*src, static_cast<uint16_t>(src_port), *dst, static_cast<uint16_t>(dst_port)};
}

bool StreamKey::IsWildcard() const {
  return src.IsUnspecified() || dst.IsUnspecified() || src_port == 0 || dst_port == 0;
}

bool StreamKey::Matches(const StreamKey& concrete) const {
  if (!src.IsUnspecified() && src != concrete.src) {
    return false;
  }
  if (src_port != 0 && src_port != concrete.src_port) {
    return false;
  }
  if (!dst.IsUnspecified() && dst != concrete.dst) {
    return false;
  }
  if (dst_port != 0 && dst_port != concrete.dst_port) {
    return false;
  }
  return true;
}

std::string StreamKey::ToString() const {
  return util::Format("%s %u -> %s %u", src.ToString().c_str(), src_port, dst.ToString().c_str(),
                      dst_port);
}

}  // namespace comma::proxy

// Shared serialization helpers for the filter failover-state contract
// (Filter::ExportState/ImportState, docs/robustness.md).
//
// Every exported blob starts with a 5-byte header: a 4-character magic
// identifying the filter's format plus a u8 version. Readers verify the
// magic and use the version to reject blobs from a future format instead of
// misparsing them — a standby gateway running older code must fail the
// import cleanly (the service then rebuilds from the wire).
#ifndef COMMA_PROXY_FILTER_STATE_H_
#define COMMA_PROXY_FILTER_STATE_H_

#include <optional>

#include "src/proxy/stream_key.h"
#include "src/util/bytes.h"

namespace comma::proxy {

// Appends the magic (exactly 4 characters) and version.
void WriteStateHeader(util::ByteWriter* w, const char* magic, uint8_t version);

// Verifies the magic and returns the version, or nullopt on mismatch or a
// short buffer (the reader is left in its sticky failed state).
std::optional<uint8_t> ReadStateHeader(util::ByteReader* r, const char* magic);

// Stream keys appear in both checkpoint frames and per-filter blobs:
// 2 × (u32 address + u16 port), 12 bytes.
void WriteStreamKey(util::ByteWriter* w, const StreamKey& key);
StreamKey ReadStreamKey(util::ByteReader* r);

}  // namespace comma::proxy

#endif  // COMMA_PROXY_FILTER_STATE_H_

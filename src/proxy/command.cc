#include "src/proxy/command.h"

#include "src/proxy/service_catalog.h"

#include "src/util/strings.h"

namespace comma::proxy {

std::string CommandProcessor::Execute(const std::string& line) {
  std::vector<std::string> tokens = util::SplitWhitespace(line);
  if (tokens.empty()) {
    return "";
  }
  const std::string cmd = tokens[0];
  std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "load") {
    return DoLoad(args);
  }
  if (cmd == "remove") {
    return DoRemove(args);
  }
  if (cmd == "add") {
    return DoAdd(args);
  }
  if (cmd == "delete") {
    return DoDelete(args);
  }
  if (cmd == "report") {
    return DoReport(args);
  }
  if (cmd == "streams") {
    return DoStreams();
  }
  if (cmd == "stats") {
    return DoStats(args);
  }
  if (cmd == "service") {
    return DoService(args);
  }
  if (cmd == "help") {
    return
        "load <FilterLibraryFile>\n"
        "remove <FilterLibraryFile>\n"
        "add <filtername> <srcip> <srcport> <dstip> <dstport> [args]\n"
        "delete <filtername> <srcip> <srcport> <dstip> <dstport>\n"
        "report [filtername]\n"
        "streams\n"
        "stats [-json] [pattern]\n"
        "service list | service add <name> <key> | service delete <name> <key>\n";
  }
  return "error: unknown command: " + cmd + "\n";
}

std::string CommandProcessor::DoLoad(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "error: usage: load <FilterLibraryFile>\n";
  }
  auto name = proxy_->LoadFilter(args[0]);
  // On success the thesis interface prints the name that was registered.
  return name.has_value() ? *name + "\n" : "";
}

std::string CommandProcessor::DoRemove(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "error: usage: remove <FilterLibraryFile>\n";
  }
  proxy_->RemoveFilter(args[0]);  // Fail-silent.
  return "";
}

std::string CommandProcessor::DoAdd(const std::vector<std::string>& args) {
  if (args.size() < 5) {
    return "error: usage: add <filtername> <srcip> <srcport> <dstip> <dstport> [args]\n";
  }
  auto key = StreamKey::Parse({args[1], args[2], args[3], args[4]});
  if (!key.has_value()) {
    return "error: malformed key\n";
  }
  std::vector<std::string> filter_args(args.begin() + 5, args.end());
  std::string error;
  if (!proxy_->AddService(args[0], *key, filter_args, &error)) {
    return "error: " + error + "\n";
  }
  return "";
}

std::string CommandProcessor::DoDelete(const std::vector<std::string>& args) {
  if (args.size() != 5) {
    return "error: usage: delete <filtername> <srcip> <srcport> <dstip> <dstport>\n";
  }
  auto key = StreamKey::Parse({args[1], args[2], args[3], args[4]});
  if (!key.has_value()) {
    return "error: malformed key\n";
  }
  proxy_->DeleteService(args[0], *key);  // Fail-silent.
  return "";
}

std::string CommandProcessor::DoReport(const std::vector<std::string>& args) {
  const std::string only = args.empty() ? "" : args[0];
  std::string out;
  for (const auto& entry : proxy_->Report(only)) {
    out += entry.filter + "\n";
    for (const std::string& key : entry.keys) {
      out += "\t" + key + "\n";
    }
    // Quarantined instances are appended after the key lines so existing
    // consumers of the Fig. 5.3 layout keep parsing.
    for (const std::string& q : entry.quarantined) {
      out += "\tquarantined: " + q + "\n";
    }
  }
  return out;
}

std::string CommandProcessor::DoStats(const std::vector<std::string>& args) {
  bool json = false;
  std::string pattern;
  for (const std::string& arg : args) {
    if (arg == "-json") {
      json = true;
    } else if (pattern.empty()) {
      pattern = arg;
    } else {
      return "error: usage: stats [-json] [pattern]\n";
    }
  }
  const obs::MetricRegistry& metrics = proxy_->metrics();
  if (json) {
    return metrics.RenderJson(pattern) + "\n";
  }
  return metrics.RenderText(pattern);
}

std::string CommandProcessor::DoService(const std::vector<std::string>& args) {
  const ServiceCatalog* catalog = proxy_->catalog();
  if (catalog == nullptr) {
    return "error: no service catalog configured\n";
  }
  if (args.size() == 1 && args[0] == "list") {
    std::string out;
    for (const std::string& name : catalog->names()) {
      out += util::Format("%-20s %s\n", name.c_str(), catalog->Describe(name).c_str());
    }
    return out;
  }
  if (args.size() == 6 && (args[0] == "add" || args[0] == "delete")) {
    auto key = StreamKey::Parse({args[2], args[3], args[4], args[5]});
    if (!key.has_value()) {
      return "error: malformed key\n";
    }
    if (args[0] == "add") {
      std::string error;
      if (!catalog->Apply(*proxy_, args[1], *key, &error)) {
        return "error: " + error + "\n";
      }
    } else {
      catalog->Remove(*proxy_, args[1], *key);  // Fail-silent, like delete.
    }
    return "";
  }
  return "error: usage: service list | service add|delete <name> <key>\n";
}

std::string CommandProcessor::DoStreams() {
  std::string out;
  for (const auto& [key, info] : proxy_->streams()) {
    out += util::Format("%s  packets=%llu bytes=%llu\n", key.ToString().c_str(),
                        static_cast<unsigned long long>(info.packets),
                        static_cast<unsigned long long>(info.bytes));
  }
  return out;
}

}  // namespace comma::proxy

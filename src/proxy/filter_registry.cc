#include "src/proxy/filter_registry.h"

#include <algorithm>

#include "src/util/strings.h"

namespace comma::proxy {

void FilterRegistry::Register(const std::string& name, std::string description, Factory factory) {
  factories_[name] = Entry{std::move(description), std::move(factory)};
}

std::string FilterRegistry::CanonicalName(const std::string& file) {
  // Accept "rdrop", "librdrop.so", or "path/to/librdrop.so".
  std::string name = file;
  auto slash = name.find_last_of('/');
  if (slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (util::StartsWith(name, "lib")) {
    name = name.substr(3);
  }
  auto dot = name.find('.');
  if (dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return name;
}

std::optional<std::string> FilterRegistry::Load(const std::string& file) {
  const std::string name = CanonicalName(file);
  if (factories_.count(name) == 0) {
    return std::nullopt;
  }
  if (!IsLoaded(name)) {
    loaded_.push_back(name);
  }
  return name;
}

bool FilterRegistry::Unload(const std::string& file) {
  const std::string name = CanonicalName(file);
  auto it = std::find(loaded_.begin(), loaded_.end(), name);
  if (it == loaded_.end()) {
    return false;
  }
  loaded_.erase(it);
  return true;
}

bool FilterRegistry::IsLoaded(const std::string& name) const {
  return std::find(loaded_.begin(), loaded_.end(), name) != loaded_.end();
}

std::unique_ptr<Filter> FilterRegistry::Create(const std::string& name) const {
  if (!IsLoaded(name)) {
    return nullptr;
  }
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return nullptr;
  }
  return it->second.factory();
}

std::vector<std::string> FilterRegistry::known() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, entry] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::string FilterRegistry::Description(const std::string& name) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? "" : it->second.description;
}

}  // namespace comma::proxy

// The Service-Proxy command interface (thesis §5.3): a line-oriented
// command language with load / remove / add / delete / report.
//
// Commands are "fail-silent" exactly as the thesis specifies: only `load`
// and `report` produce output on success. Parse errors produce a line
// starting with "error:" so interactive users are not left guessing.
#ifndef COMMA_PROXY_COMMAND_H_
#define COMMA_PROXY_COMMAND_H_

#include <string>

#include "src/proxy/service_proxy.h"

namespace comma::proxy {

class CommandProcessor {
 public:
  explicit CommandProcessor(ServiceProxy* proxy) : proxy_(proxy) {}

  // Executes one command line; returns the textual response ("" for silent
  // success). Supported commands:
  //   load <FilterLibraryFile>
  //   remove <FilterLibraryFile>
  //   add <filtername> <key: srcip srcport dstip dstport> [args...]
  //   delete <filtername> <key>
  //   report [filtername]
  //   streams                    (extension: stream-registry accounting)
  //   stats [-json] [pattern]    (extension: metric registry snapshot,
  //                               docs/observability.md)
  //   service list               (extension, §10.2.1: named service recipes)
  //   service add <name> <key>
  //   service delete <name> <key>
  //   help
  std::string Execute(const std::string& line);

 private:
  std::string DoLoad(const std::vector<std::string>& args);
  std::string DoRemove(const std::vector<std::string>& args);
  std::string DoAdd(const std::vector<std::string>& args);
  std::string DoDelete(const std::vector<std::string>& args);
  std::string DoReport(const std::vector<std::string>& args);
  std::string DoStreams();
  std::string DoStats(const std::vector<std::string>& args);
  std::string DoService(const std::vector<std::string>& args);

  ServiceProxy* proxy_;
};

}  // namespace comma::proxy

#endif  // COMMA_PROXY_COMMAND_H_

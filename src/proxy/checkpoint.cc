#include "src/proxy/checkpoint.h"

#include <algorithm>

#include "src/proxy/filter_state.h"

namespace comma::proxy {
namespace {

constexpr char kFrameMagic[] = "CKPT";
constexpr uint8_t kFrameVersion = 1;
// A parse error on anything larger than this aborts the frame stream instead
// of buffering without bound.
constexpr size_t kMaxFrameBytes = 4 * 1024 * 1024;
// Stop producing new frames while this much is still unaccepted by TCP
// (standby unreachable); framing stays intact, the next tick retries.
constexpr size_t kMaxOutboxBytes = 1024 * 1024;

enum StateMode : uint8_t {
  kStateNone = 0,
  kStateUnchanged = 1,
  kStateBlob = 2,
};

}  // namespace

// --- CheckpointManager ---

CheckpointManager::CheckpointManager(ServiceProxy* sp, tcp::TcpStack* stack,
                                     const CheckpointManagerConfig& config)
    : sp_(sp), stack_(stack), config_(config) {
  obs::MetricRegistry& reg = sp_->metrics();
  frames_sent_metric_ = reg.GetCounter("sp.recovery.checkpoints_sent");
  bytes_sent_metric_ = reg.GetCounter("sp.recovery.checkpoint_bytes");
  blobs_sent_metric_ = reg.GetCounter("sp.recovery.state_blobs_sent");
  blobs_unchanged_metric_ = reg.GetCounter("sp.recovery.state_blobs_unchanged");
  seq_metric_ = reg.GetGauge("sp.recovery.checkpoint_seq");
}

CheckpointManager::~CheckpointManager() { Stop(); }

void CheckpointManager::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  timer_ = stack_->simulator()->ScheduleTimer(config_.interval, [this] { Tick(); });
}

void CheckpointManager::Stop() {
  started_ = false;
  if (timer_ != sim::kInvalidTimerId) {
    stack_->simulator()->Cancel(timer_);
    timer_ = sim::kInvalidTimerId;
  }
  if (conn_ != nullptr) {
    // Detach every callback before abandoning the connection: the stack owns
    // the object and may still deliver events after we are gone.
    conn_->set_on_connected(nullptr);
    conn_->set_on_writable(nullptr);
    conn_->set_on_error(nullptr);
    conn_->set_on_closed(nullptr);
    conn_->set_on_remote_close(nullptr);
    conn_->Abort();
    conn_ = nullptr;
  }
  connected_ = false;
  last_sent_.clear();
  outbox_.clear();
}

CheckpointState CheckpointManager::Snapshot() {
  CheckpointState state;
  state.seq = seq_ + 1;
  state.taken_at = stack_->simulator()->Now();
  for (const ServiceProxy::ServiceRecord& record : sp_->services()) {
    CheckpointedService svc;
    svc.filter = record.filter;
    svc.key = record.key;
    svc.args = record.args;
    Filter* instance = sp_->FindFilterOnKey(record.key, record.filter);
    if (instance != nullptr && instance->state_kind() == FilterStateKind::kCheckpointed) {
      svc.has_state = instance->ExportState(&svc.state);
      if (!svc.has_state) {
        svc.state.clear();
      }
    }
    state.services.push_back(std::move(svc));
  }
  for (const auto& [key, info] : sp_->streams()) {
    state.streams.push_back({key, info.packets, info.bytes, info.first_seen});
  }
  return state;
}

void CheckpointManager::EnsureConnection() {
  if (conn_ != nullptr) {
    return;
  }
  conn_ = stack_->Connect(config_.standby, config_.port);
  if (conn_ == nullptr) {
    return;
  }
  ++stats_.reconnects;
  connected_ = false;
  // A fresh connection means a (possibly) fresh receiver: resend full blobs.
  last_sent_.clear();
  outbox_.clear();
  conn_->set_on_connected([this] {
    connected_ = true;
    PumpOutbox();
  });
  conn_->set_on_writable([this] { PumpOutbox(); });
  auto dead = [this] {
    // Drop the connection; the next tick dials again.
    if (conn_ != nullptr) {
      conn_->set_on_connected(nullptr);
      conn_->set_on_writable(nullptr);
      conn_->set_on_error(nullptr);
      conn_->set_on_closed(nullptr);
      conn_->set_on_remote_close(nullptr);
    }
    conn_ = nullptr;
    connected_ = false;
    outbox_.clear();
    last_sent_.clear();
  };
  conn_->set_on_error([dead](const std::string&) { dead(); });
  conn_->set_on_closed(dead);
}

void CheckpointManager::EncodeFrame(const CheckpointState& state, util::Bytes* out) {
  util::Bytes payload;
  util::ByteWriter w(&payload);
  WriteStateHeader(&w, kFrameMagic, kFrameVersion);
  w.WriteU64(state.seq);
  w.WriteU64(static_cast<uint64_t>(state.taken_at));
  w.WriteU32(static_cast<uint32_t>(state.services.size()));
  for (const CheckpointedService& svc : state.services) {
    w.WriteString(svc.filter);
    WriteStreamKey(&w, svc.key);
    w.WriteU8(static_cast<uint8_t>(std::min<size_t>(svc.args.size(), 255)));
    for (size_t i = 0; i < svc.args.size() && i < 255; ++i) {
      w.WriteString(svc.args[i]);
    }
    if (!svc.has_state) {
      w.WriteU8(kStateNone);
      last_sent_.erase({svc.filter, svc.key});
      continue;
    }
    auto cache_key = std::make_pair(svc.filter, svc.key);
    auto it = last_sent_.find(cache_key);
    if (it != last_sent_.end() && it->second == svc.state) {
      w.WriteU8(kStateUnchanged);
      ++stats_.blobs_unchanged;
      blobs_unchanged_metric_->Inc();
    } else {
      w.WriteU8(kStateBlob);
      w.WriteU32(static_cast<uint32_t>(svc.state.size()));
      w.WriteBytes(svc.state);
      last_sent_[cache_key] = svc.state;
      ++stats_.blobs_sent;
      blobs_sent_metric_->Inc();
    }
  }
  w.WriteU32(static_cast<uint32_t>(state.streams.size()));
  for (const CheckpointedStream& s : state.streams) {
    WriteStreamKey(&w, s.key);
    w.WriteU64(s.packets);
    w.WriteU64(s.bytes);
    w.WriteU64(static_cast<uint64_t>(s.first_seen));
  }
  util::ByteWriter framer(out);
  framer.WriteU32(static_cast<uint32_t>(payload.size()));
  framer.WriteBytes(payload);
}

void CheckpointManager::CheckpointNow() {
  EnsureConnection();
  if (conn_ == nullptr || outbox_.size() > kMaxOutboxBytes) {
    ++stats_.ticks_skipped;
    return;
  }
  CheckpointState state = Snapshot();
  seq_ = state.seq;
  const size_t before = outbox_.size();
  EncodeFrame(state, &outbox_);
  ++stats_.frames_sent;
  stats_.bytes_sent += outbox_.size() - before;
  frames_sent_metric_->Inc();
  bytes_sent_metric_->Inc(outbox_.size() - before);
  seq_metric_->Set(static_cast<double>(seq_));
  if (connected_) {
    PumpOutbox();
  }
}

void CheckpointManager::Tick() {
  timer_ = sim::kInvalidTimerId;
  CheckpointNow();
  if (started_) {
    timer_ = stack_->simulator()->ScheduleTimer(config_.interval, [this] { Tick(); });
  }
}

void CheckpointManager::PumpOutbox() {
  if (conn_ == nullptr || !connected_ || outbox_.empty()) {
    return;
  }
  const size_t accepted = conn_->Send(outbox_.data(), outbox_.size());
  if (accepted > 0) {
    outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<long>(accepted));
  }
}

// --- CheckpointReceiver ---

CheckpointReceiver::CheckpointReceiver(tcp::TcpStack* stack,
                                       const CheckpointReceiverConfig& config,
                                       obs::MetricRegistry* metrics)
    : stack_(stack), config_(config) {
  if (metrics != nullptr) {
    frames_metric_ = metrics->GetCounter("sp.recovery.checkpoints_received");
    parse_errors_metric_ = metrics->GetCounter("sp.recovery.checkpoint_parse_errors");
    ckpt_streams_metric_ = metrics->GetGauge("sp.recovery.checkpointed_streams");
  }
}

CheckpointReceiver::~CheckpointReceiver() {
  DisarmWatchdog();
  if (conn_ != nullptr) {
    conn_->set_on_data(nullptr);
    conn_->set_on_error(nullptr);
    conn_->set_on_closed(nullptr);
    conn_->set_on_remote_close(nullptr);
    conn_ = nullptr;
  }
  if (listening_) {
    stack_->CloseListener(config_.port);
  }
}

void CheckpointReceiver::Listen() {
  if (listening_) {
    return;
  }
  listening_ = true;
  stack_->Listen(config_.port, [this](tcp::TcpConnection* conn) { OnAccept(conn); });
}

void CheckpointReceiver::OnAccept(tcp::TcpConnection* conn) {
  if (conn_ != nullptr) {
    // A reconnecting primary supersedes the old connection.
    conn_->set_on_data(nullptr);
    conn_->set_on_error(nullptr);
    conn_->set_on_closed(nullptr);
    conn_->set_on_remote_close(nullptr);
  }
  conn_ = conn;
  rx_.clear();
  conn_->set_on_data([this](const util::Bytes& chunk) {
    rx_.insert(rx_.end(), chunk.begin(), chunk.end());
    OnData();
  });
  auto gone = [this] { conn_ = nullptr; };
  conn_->set_on_error([gone](const std::string&) { gone(); });
  conn_->set_on_closed(gone);
}

void CheckpointReceiver::OnData() {
  while (rx_.size() >= 4) {
    util::ByteReader header(rx_.data(), 4);
    const uint32_t len = header.ReadU32();
    if (len > kMaxFrameBytes) {
      ++parse_errors_;
      if (parse_errors_metric_ != nullptr) {
        parse_errors_metric_->Inc();
      }
      rx_.clear();
      return;
    }
    if (rx_.size() < 4 + static_cast<size_t>(len)) {
      return;  // Frame still in flight.
    }
    util::Bytes payload(rx_.begin() + 4, rx_.begin() + 4 + static_cast<long>(len));
    rx_.erase(rx_.begin(), rx_.begin() + 4 + static_cast<long>(len));
    if (DecodeFrame(payload)) {
      ++frames_received_;
      last_frame_at_ = stack_->simulator()->Now();
      if (frames_metric_ != nullptr) {
        frames_metric_->Inc();
      }
      if (ckpt_streams_metric_ != nullptr) {
        ckpt_streams_metric_->Set(static_cast<double>(latest_.streams.size()));
      }
      ArmWatchdog();
    } else {
      ++parse_errors_;
      if (parse_errors_metric_ != nullptr) {
        parse_errors_metric_->Inc();
      }
    }
  }
}

bool CheckpointReceiver::DecodeFrame(const util::Bytes& payload) {
  util::ByteReader r(payload);
  std::optional<uint8_t> version = ReadStateHeader(&r, kFrameMagic);
  if (!version.has_value() || *version != kFrameVersion) {
    return false;
  }
  CheckpointState state;
  state.seq = r.ReadU64();
  state.taken_at = static_cast<sim::TimePoint>(r.ReadU64());
  const uint32_t n_services = r.ReadU32();
  if (r.failed() || n_services > 65536) {
    return false;
  }
  for (uint32_t i = 0; i < n_services && !r.failed(); ++i) {
    CheckpointedService svc;
    svc.filter = r.ReadString();
    svc.key = ReadStreamKey(&r);
    const uint8_t n_args = r.ReadU8();
    for (uint8_t a = 0; a < n_args && !r.failed(); ++a) {
      svc.args.push_back(r.ReadString());
    }
    const uint8_t mode = r.ReadU8();
    auto cache_key = std::make_pair(svc.filter, svc.key);
    switch (mode) {
      case kStateNone:
        blob_cache_.erase(cache_key);
        break;
      case kStateUnchanged: {
        auto it = blob_cache_.find(cache_key);
        if (it == blob_cache_.end()) {
          // The sender clears its cache on reconnect, so this cannot happen
          // on a well-behaved peer; degrade to "no state".
          break;
        }
        svc.has_state = true;
        svc.state = it->second;
        break;
      }
      case kStateBlob: {
        const uint32_t blob_len = r.ReadU32();
        if (blob_len > kMaxFrameBytes) {
          return false;
        }
        svc.state = r.ReadBytes(blob_len);
        if (r.failed()) {
          return false;
        }
        svc.has_state = true;
        blob_cache_[cache_key] = svc.state;
        break;
      }
      default:
        return false;
    }
    state.services.push_back(std::move(svc));
  }
  const uint32_t n_streams = r.ReadU32();
  if (r.failed() || n_streams > 1u << 20) {
    return false;
  }
  for (uint32_t i = 0; i < n_streams && !r.failed(); ++i) {
    CheckpointedStream s;
    s.key = ReadStreamKey(&r);
    s.packets = r.ReadU64();
    s.bytes = r.ReadU64();
    s.first_seen = static_cast<sim::TimePoint>(r.ReadU64());
    state.streams.push_back(s);
  }
  if (r.failed()) {
    return false;
  }
  latest_ = std::move(state);
  return true;
}

void CheckpointReceiver::ArmWatchdog() {
  if (watchdog_fired_ || watchdog_timer_ != sim::kInvalidTimerId) {
    return;
  }
  const sim::Duration period = std::max<sim::Duration>(config_.watchdog / 4, 1);
  watchdog_timer_ = stack_->simulator()->ScheduleTimer(period, [this] { OnWatchdog(); });
}

void CheckpointReceiver::OnWatchdog() {
  watchdog_timer_ = sim::kInvalidTimerId;
  if (watchdog_fired_) {
    return;
  }
  if (stack_->simulator()->Now() - last_frame_at_ >= config_.watchdog) {
    watchdog_fired_ = true;
    if (on_primary_dead_) {
      on_primary_dead_();
    }
    return;
  }
  ArmWatchdog();
}

void CheckpointReceiver::DisarmWatchdog() {
  watchdog_fired_ = true;  // Blocks re-arming.
  if (watchdog_timer_ != sim::kInvalidTimerId) {
    stack_->simulator()->Cancel(watchdog_timer_);
    watchdog_timer_ = sim::kInvalidTimerId;
  }
}

}  // namespace comma::proxy

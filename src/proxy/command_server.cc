#include "src/proxy/command_server.h"

namespace comma::proxy {

CommandServer::CommandServer(tcp::TcpStack* stack, ServiceProxy* proxy, uint16_t port)
    : stack_(stack), processor_(proxy), port_(port) {
  stack_->Listen(port_, [this](tcp::TcpConnection* conn) { OnAccept(conn); });
}

CommandServer::~CommandServer() { stack_->CloseListener(port_); }

void CommandServer::OnAccept(tcp::TcpConnection* conn) {
  sessions_[conn] = Session{};
  conn->set_on_data([this, conn](const util::Bytes& data) { OnData(conn, data); });
  conn->set_on_remote_close([this, conn] {
    sessions_.erase(conn);
    conn->Close();
  });
  conn->set_on_closed([this, conn] { sessions_.erase(conn); });
  // A reset mid-command (client crash, fault injection) must drop the
  // session and its partial line, not leave it wedged in the map.
  conn->set_on_error([this, conn](const std::string&) { sessions_.erase(conn); });
}

void CommandServer::OnData(tcp::TcpConnection* conn, const util::Bytes& data) {
  auto it = sessions_.find(conn);
  if (it == sessions_.end()) {
    return;
  }
  Session& session = it->second;
  util::AppendTo(&session.inbuf, data);
  size_t newline;
  while ((newline = session.inbuf.find('\n')) != std::string::npos) {
    std::string line = session.inbuf.substr(0, newline);
    session.inbuf.erase(0, newline + 1);
    if (session.discarding) {
      // Tail of an already-rejected oversized line.
      session.discarding = false;
      continue;
    }
    if (line.size() > kMaxCommandLineBytes) {
      ++lines_rejected_;
      const std::string response = "error: line too long\n.\n";
      conn->Send(util::AsBytePtr(response.data()), response.size());
      continue;
    }
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    ++commands_executed_;
    std::string response = processor_.Execute(line);
    response += ".\n";  // End-of-response marker.
    conn->Send(util::AsBytePtr(response.data()), response.size());
  }
  // No newline yet: an over-limit partial line is rejected now and its
  // remainder discarded, bounding per-session memory.
  if (!session.discarding && session.inbuf.size() > kMaxCommandLineBytes) {
    ++lines_rejected_;
    session.inbuf.clear();
    session.discarding = true;
    const std::string response = "error: line too long\n.\n";
    conn->Send(util::AsBytePtr(response.data()), response.size());
  }
}

}  // namespace comma::proxy

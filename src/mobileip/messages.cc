#include "src/mobileip/messages.h"

namespace comma::mobileip {

namespace {

util::Bytes WithType(MessageType type) {
  return {static_cast<uint8_t>(type)};
}

bool CheckType(util::ByteReader& r, MessageType type) {
  return r.ReadU8() == static_cast<uint8_t>(type);
}

}  // namespace

util::Bytes Encode(const RouterSolicitation& m) {
  util::Bytes out = WithType(MessageType::kRouterSolicitation);
  util::ByteWriter w(&out);
  w.WriteU32(m.home_address.value());
  return out;
}

util::Bytes Encode(const RouterAdvertisement& m) {
  util::Bytes out = WithType(MessageType::kRouterAdvertisement);
  util::ByteWriter w(&out);
  w.WriteU32(m.agent_address.value());
  w.WriteU32(m.sequence);
  return out;
}

util::Bytes Encode(const RegistrationRequest& m) {
  util::Bytes out = WithType(MessageType::kRegistrationRequest);
  util::ByteWriter w(&out);
  w.WriteU32(m.home_address.value());
  w.WriteU32(m.home_agent.value());
  w.WriteU32(m.care_of_address.value());
  w.WriteU32(m.lifetime_seconds);
  w.WriteU64(m.id);
  return out;
}

util::Bytes Encode(const RegistrationReply& m) {
  util::Bytes out = WithType(MessageType::kRegistrationReply);
  util::ByteWriter w(&out);
  w.WriteU32(m.home_address.value());
  w.WriteU8(static_cast<uint8_t>(m.code));
  w.WriteU32(m.lifetime_seconds);
  w.WriteU64(m.id);
  return out;
}

util::Bytes Encode(const BindingUpdate& m) {
  util::Bytes out = WithType(MessageType::kBindingUpdate);
  util::ByteWriter w(&out);
  w.WriteU32(m.home_address.value());
  w.WriteU32(m.new_care_of.value());
  return out;
}

std::optional<MessageType> PeekType(const util::Bytes& data) {
  if (data.empty() || data[0] < 1 || data[0] > 5) {
    return std::nullopt;
  }
  return static_cast<MessageType>(data[0]);
}

std::optional<RouterSolicitation> DecodeRouterSolicitation(const util::Bytes& data) {
  util::ByteReader r(data);
  if (!CheckType(r, MessageType::kRouterSolicitation)) {
    return std::nullopt;
  }
  RouterSolicitation m;
  m.home_address = net::Ipv4Address(r.ReadU32());
  return r.failed() ? std::nullopt : std::optional(m);
}

std::optional<RouterAdvertisement> DecodeRouterAdvertisement(const util::Bytes& data) {
  util::ByteReader r(data);
  if (!CheckType(r, MessageType::kRouterAdvertisement)) {
    return std::nullopt;
  }
  RouterAdvertisement m;
  m.agent_address = net::Ipv4Address(r.ReadU32());
  m.sequence = r.ReadU32();
  return r.failed() ? std::nullopt : std::optional(m);
}

std::optional<RegistrationRequest> DecodeRegistrationRequest(const util::Bytes& data) {
  util::ByteReader r(data);
  if (!CheckType(r, MessageType::kRegistrationRequest)) {
    return std::nullopt;
  }
  RegistrationRequest m;
  m.home_address = net::Ipv4Address(r.ReadU32());
  m.home_agent = net::Ipv4Address(r.ReadU32());
  m.care_of_address = net::Ipv4Address(r.ReadU32());
  m.lifetime_seconds = r.ReadU32();
  m.id = r.ReadU64();
  return r.failed() ? std::nullopt : std::optional(m);
}

std::optional<RegistrationReply> DecodeRegistrationReply(const util::Bytes& data) {
  util::ByteReader r(data);
  if (!CheckType(r, MessageType::kRegistrationReply)) {
    return std::nullopt;
  }
  RegistrationReply m;
  m.home_address = net::Ipv4Address(r.ReadU32());
  const uint8_t code = r.ReadU8();
  if (code > static_cast<uint8_t>(ReplyCode::kDeniedUnknownHome)) {
    return std::nullopt;
  }
  m.code = static_cast<ReplyCode>(code);
  m.lifetime_seconds = r.ReadU32();
  m.id = r.ReadU64();
  return r.failed() ? std::nullopt : std::optional(m);
}

std::optional<BindingUpdate> DecodeBindingUpdate(const util::Bytes& data) {
  util::ByteReader r(data);
  if (!CheckType(r, MessageType::kBindingUpdate)) {
    return std::nullopt;
  }
  BindingUpdate m;
  m.home_address = net::Ipv4Address(r.ReadU32());
  m.new_care_of = net::Ipv4Address(r.ReadU32());
  return r.failed() ? std::nullopt : std::optional(m);
}

}  // namespace comma::mobileip

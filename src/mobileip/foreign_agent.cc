#include "src/mobileip/foreign_agent.h"

namespace comma::mobileip {

ForeignAgent::ForeignAgent(core::Host* router, uint32_t wireless_iface, HandoffPolicy policy)
    : router_(router), wireless_iface_(wireless_iface), policy_(policy) {
  socket_ = router_->udp().Bind(kRegistrationPort);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint& from) {
    OnDatagram(data, from);
  });
  router_->RegisterProtocol(net::IpProtocol::kIpInIp,
                            [this](net::PacketPtr p) { OnTunneledPacket(std::move(p)); });
}

void ForeignAgent::OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from) {
  auto type = PeekType(data);
  if (!type.has_value()) {
    return;
  }
  switch (*type) {
    case MessageType::kRouterSolicitation: {
      auto msg = DecodeRouterSolicitation(data);
      if (!msg.has_value()) {
        return;
      }
      // Learn where the mobile is reachable (its home address is routed via
      // our wireless interface from now on) and advertise ourselves.
      router_->AddHostRoute(msg->home_address, wireless_iface_);
      RouterAdvertisement ad;
      ad.agent_address = care_of_address();
      ad.sequence = ++advertisement_seq_;
      ++stats_.advertisements_sent;
      socket_->SendTo(from.addr, from.port, Encode(ad));
      return;
    }
    case MessageType::kRegistrationRequest: {
      auto msg = DecodeRegistrationRequest(data);
      if (!msg.has_value()) {
        return;
      }
      // Relay to the home agent with our address as the care-of address.
      pending_[msg->home_address] = PendingRegistration{from};
      RegistrationRequest relayed = *msg;
      relayed.care_of_address = care_of_address();
      ++stats_.registrations_relayed;
      socket_->SendTo(msg->home_agent, kRegistrationPort, Encode(relayed));
      return;
    }
    case MessageType::kRegistrationReply: {
      auto msg = DecodeRegistrationReply(data);
      if (!msg.has_value()) {
        return;
      }
      auto it = pending_.find(msg->home_address);
      if (it == pending_.end()) {
        return;
      }
      if (msg->code == ReplyCode::kAccepted && msg->lifetime_seconds > 0) {
        visitors_[msg->home_address] = it->second.mobile;
        departed_.erase(msg->home_address);
      }
      // Pass the verdict down to the mobile.
      socket_->SendTo(it->second.mobile.addr, it->second.mobile.port, Encode(*msg));
      pending_.erase(it);
      return;
    }
    case MessageType::kBindingUpdate: {
      auto msg = DecodeBindingUpdate(data);
      if (!msg.has_value()) {
        return;
      }
      // The mobile moved on: remember the new care-of address so in-flight
      // packets can be re-tunneled, and stop claiming the host route.
      visitors_.erase(msg->home_address);
      router_->RemoveHostRoute(msg->home_address);
      if (!msg->new_care_of.IsUnspecified()) {
        departed_[msg->home_address] = msg->new_care_of;
      } else {
        departed_.erase(msg->home_address);
      }
      // Flush anything we held while the mobile was unreachable.
      auto held = held_.find(msg->home_address);
      if (held != held_.end()) {
        for (net::PacketPtr& packet : held->second) {
          if (!msg->new_care_of.IsUnspecified() && policy_ == HandoffPolicy::kForward) {
            ++stats_.packets_forwarded;
            router_->InjectPacket(net::Packet::Encapsulate(std::move(packet), care_of_address(),
                                                           msg->new_care_of));
          } else {
            ++stats_.packets_dropped;
          }
        }
        held_.erase(held);
      }
      return;
    }
    default:
      return;
  }
}

void ForeignAgent::OnTunneledPacket(net::PacketPtr packet) {
  net::PacketPtr inner = packet->Decapsulate();
  if (inner == nullptr) {
    return;
  }
  const net::Ipv4Address mobile = inner->ip().dst;
  if (visitors_.count(mobile) != 0) {
    net::Link* wireless = router_->InterfaceLink(wireless_iface_);
    if (wireless != nullptr && !wireless->IsUp()) {
      // The visitor is out of range — it is mid-hand-off. Under the
      // forwarding policy, hold the packet until the home agent's binding
      // update tells us where it went (§2.1's forwarding option); otherwise
      // drop it now.
      if (policy_ == HandoffPolicy::kForward && held_[mobile].size() < 128) {
        ++stats_.packets_buffered;
        held_[mobile].push_back(std::move(inner));
      } else {
        ++stats_.packets_dropped;
      }
      return;
    }
    // Normal case: decapsulate and pass on to the mobile (§2.1). The inner
    // packet re-enters through the taps so a proxy merged into this FA
    // (§10.2.3) can service the real stream.
    ++stats_.packets_decapsulated;
    router_->ReinjectPacket(std::move(inner));
    return;
  }
  auto departed = departed_.find(mobile);
  if (departed != departed_.end() && policy_ == HandoffPolicy::kForward) {
    // Forwarding policy: re-tunnel to the mobile's new location.
    ++stats_.packets_forwarded;
    router_->InjectPacket(net::Packet::Encapsulate(std::move(inner), care_of_address(),
                                                   departed->second));
    return;
  }
  // Drop policy (or unknown mobile): rely on higher-level protocols (§2.1:
  // "packets may either be dropped by the FA ... relying on higher-level
  // communication protocols to handle the loss").
  ++stats_.packets_dropped;
}

}  // namespace comma::mobileip

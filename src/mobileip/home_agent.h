// The Mobile IP Home Agent (thesis §2.1).
//
// Runs on the home-network router. Intercepts packets addressed to
// registered mobiles (a packet tap on the router), encapsulates them with
// IP-in-IP, and tunnels them to the mobile's current care-of address —
// producing the triangular routing of Fig. 2.1. Handles registration
// requests relayed by foreign agents, and notifies the previous FA with a
// binding update so it can forward (or drop) in-flight packets after a
// hand-off (§2.1's two policies).
#ifndef COMMA_MOBILEIP_HOME_AGENT_H_
#define COMMA_MOBILEIP_HOME_AGENT_H_

#include <map>

#include "src/core/host.h"
#include "src/mobileip/messages.h"

namespace comma::mobileip {

struct HomeAgentStats {
  uint64_t packets_tunneled = 0;
  uint64_t packets_delivered_home = 0;  // Mobile at home: normal routing.
  uint64_t registrations_accepted = 0;
  uint64_t deregistrations = 0;
  uint64_t binding_updates_sent = 0;
};

class HomeAgent : public net::PacketTap {
 public:
  explicit HomeAgent(core::Host* router);
  ~HomeAgent() override;

  // Declares `home_address` as a mobile this HA is responsible for.
  void AddMobile(net::Ipv4Address home_address);

  // Current care-of address for a mobile (unspecified if at home).
  net::Ipv4Address CareOfAddress(net::Ipv4Address home_address) const;
  bool IsRegisteredAway(net::Ipv4Address home_address) const;

  const HomeAgentStats& stats() const { return stats_; }

  // PacketTap: intercept-and-tunnel.
  net::TapVerdict OnPacket(net::PacketPtr& packet, const net::TapContext& ctx) override;

 private:
  struct Binding {
    net::Ipv4Address care_of;  // Unspecified = at home.
    sim::TimePoint expires = 0;
  };

  void OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from);
  void HandleRegistration(const RegistrationRequest& request, const udp::UdpEndpoint& from);

  core::Host* router_;
  std::unique_ptr<udp::UdpSocket> socket_;
  std::map<net::Ipv4Address, Binding> bindings_;
  HomeAgentStats stats_;
};

}  // namespace comma::mobileip

#endif  // COMMA_MOBILEIP_HOME_AGENT_H_

// Mobile IP control messages (thesis §2.1, after RFC 2002).
//
// Carried over UDP port 434 (the registration port RFC 2002 assigns).
// Agent discovery (router solicitation / advertisement, §2.1's ICMP Router
// Discovery) is modelled with the same transport for simplicity — the
// semantics (who solicits, who advertises, what is learned) are preserved.
#ifndef COMMA_MOBILEIP_MESSAGES_H_
#define COMMA_MOBILEIP_MESSAGES_H_

#include <optional>

#include "src/net/address.h"
#include "src/util/bytes.h"

namespace comma::mobileip {

inline constexpr uint16_t kRegistrationPort = 434;

enum class MessageType : uint8_t {
  kRouterSolicitation = 1,   // Mobile -> FA: who serves this network?
  kRouterAdvertisement = 2,  // FA -> mobile: I do; here is my address.
  kRegistrationRequest = 3,  // Mobile -> FA -> HA.
  kRegistrationReply = 4,    // HA -> FA -> mobile.
  kBindingUpdate = 5,        // HA -> previous FA: mobile moved to new COA.
};

struct RouterSolicitation {
  net::Ipv4Address home_address;  // The soliciting mobile's home address.
};

struct RouterAdvertisement {
  net::Ipv4Address agent_address;  // The FA's care-of address.
  uint32_t sequence = 0;
};

enum class ReplyCode : uint8_t {
  kAccepted = 0,
  kDeniedBadRequest = 1,
  kDeniedUnknownHome = 2,
};

struct RegistrationRequest {
  net::Ipv4Address home_address;
  net::Ipv4Address home_agent;
  net::Ipv4Address care_of_address;
  uint32_t lifetime_seconds = 0;  // 0 = deregistration (mobile back home).
  uint64_t id = 0;                // Matches request to reply.
};

struct RegistrationReply {
  net::Ipv4Address home_address;
  ReplyCode code = ReplyCode::kAccepted;
  uint32_t lifetime_seconds = 0;
  uint64_t id = 0;
};

struct BindingUpdate {
  net::Ipv4Address home_address;
  net::Ipv4Address new_care_of;  // Unspecified: stop forwarding, just drop.
};

util::Bytes Encode(const RouterSolicitation& m);
util::Bytes Encode(const RouterAdvertisement& m);
util::Bytes Encode(const RegistrationRequest& m);
util::Bytes Encode(const RegistrationReply& m);
util::Bytes Encode(const BindingUpdate& m);

std::optional<MessageType> PeekType(const util::Bytes& data);
std::optional<RouterSolicitation> DecodeRouterSolicitation(const util::Bytes& data);
std::optional<RouterAdvertisement> DecodeRouterAdvertisement(const util::Bytes& data);
std::optional<RegistrationRequest> DecodeRegistrationRequest(const util::Bytes& data);
std::optional<RegistrationReply> DecodeRegistrationReply(const util::Bytes& data);
std::optional<BindingUpdate> DecodeBindingUpdate(const util::Bytes& data);

}  // namespace comma::mobileip

#endif  // COMMA_MOBILEIP_MESSAGES_H_

// Canonical Mobile IP topology (thesis Fig. 2.1):
//
//                      ┌── home link ──────────────┐
//   correspondent ── backbone ── HA router          mobile (home 10.1.0.50)
//                      │                            │        │
//                      ├── FA1 router ── wireless1 ─┘        │
//                      └── FA2 router ── wireless2 ──────────┘
//
// The mobile has three interfaces (home LAN, wireless1, wireless2), all
// bearing its permanent home address; "moving" brings one link up, the
// others down, and re-registers through the local agent.
#ifndef COMMA_MOBILEIP_SCENARIO_H_
#define COMMA_MOBILEIP_SCENARIO_H_

#include <memory>

#include "src/core/host.h"
#include "src/mobileip/foreign_agent.h"
#include "src/mobileip/home_agent.h"
#include "src/mobileip/mobile_client.h"

namespace comma::mobileip {

struct MobileIpConfig {
  net::LinkConfig wired = net::WiredLinkConfig();
  net::LinkConfig wireless = net::WirelessLinkConfig();
  HandoffPolicy handoff_policy = HandoffPolicy::kDrop;
  uint64_t seed = 42;
  // Simulator options (worker count for the epoch loop).
  sim::SimulatorOptions sim;
  // Split the topology: FA routers + mobile into an "fa" region, with the
  // correspondent/backbone/HA side staying in region 0. The FA backhauls
  // and the home LAN become the cross-region edges. Off by default.
  bool partition_regions = false;
};

class MobileIpScenario {
 public:
  explicit MobileIpScenario(const MobileIpConfig& config = {});
  MobileIpScenario(const MobileIpScenario&) = delete;
  MobileIpScenario& operator=(const MobileIpScenario&) = delete;

  // --- Movement (hand-off, §2.1) ---
  void MoveToForeign1();
  void MoveToForeign2();
  void MoveHome();

  sim::Simulator& sim() { return sim_; }
  core::Host& correspondent() { return *correspondent_; }
  core::Host& backbone() { return *backbone_; }
  core::Host& ha_router() { return *ha_router_; }
  core::Host& fa1_router() { return *fa1_router_; }
  core::Host& fa2_router() { return *fa2_router_; }
  core::Host& mobile() { return *mobile_; }
  HomeAgent& home_agent() { return *home_agent_; }
  ForeignAgent& fa1() { return *fa1_; }
  ForeignAgent& fa2() { return *fa2_; }
  MobileClient& client() { return *client_; }
  net::Link& wireless1() { return *wireless1_; }
  net::Link& wireless2() { return *wireless2_; }
  net::Link& home_link() { return *home_link_; }
  // Wired backhauls to the FA routers, exposed so failover scenarios can
  // sever a gateway (crash = backhaul + wireless down together).
  net::Link& backhaul1() { return *bb_fa1_; }
  net::Link& backhaul2() { return *bb_fa2_; }

  net::Ipv4Address correspondent_addr() const;
  net::Ipv4Address mobile_home_addr() const;
  net::Ipv4Address ha_addr() const;
  net::Ipv4Address fa1_addr() const;
  net::Ipv4Address fa2_addr() const;

  // kMainRegion unless config.partition_regions was set.
  sim::RegionId fa_region() const { return fa_region_; }

 private:
  sim::Simulator sim_;
  sim::Random rng_;
  sim::RegionId fa_region_ = sim::kMainRegion;
  std::unique_ptr<core::Host> correspondent_;
  std::unique_ptr<core::Host> backbone_;
  std::unique_ptr<core::Host> ha_router_;
  std::unique_ptr<core::Host> fa1_router_;
  std::unique_ptr<core::Host> fa2_router_;
  std::unique_ptr<core::Host> mobile_;
  std::unique_ptr<net::Link> ch_bb_;
  std::unique_ptr<net::Link> bb_ha_;
  std::unique_ptr<net::Link> bb_fa1_;
  std::unique_ptr<net::Link> bb_fa2_;
  std::unique_ptr<net::Link> home_link_;
  std::unique_ptr<net::Link> wireless1_;
  std::unique_ptr<net::Link> wireless2_;
  std::unique_ptr<HomeAgent> home_agent_;
  std::unique_ptr<ForeignAgent> fa1_;
  std::unique_ptr<ForeignAgent> fa2_;
  std::unique_ptr<MobileClient> client_;
  uint32_t mobile_home_if_ = 0;
  uint32_t mobile_w1_if_ = 0;
  uint32_t mobile_w2_if_ = 0;
};

}  // namespace comma::mobileip

#endif  // COMMA_MOBILEIP_SCENARIO_H_

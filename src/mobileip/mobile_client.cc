#include "src/mobileip/mobile_client.h"

namespace comma::mobileip {

MobileClient::MobileClient(core::Host* mobile, net::Ipv4Address home_address,
                           net::Ipv4Address home_agent)
    : mobile_(mobile), home_address_(home_address), home_agent_(home_agent) {
  socket_ = mobile_->udp().Bind(kRegistrationPort);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint& from) {
    OnDatagram(data, from);
  });
}

void MobileClient::AttachVia(uint32_t iface, net::Ipv4Address fa_hint,
                             uint32_t lifetime_seconds) {
  // Switch the default route to the new access network, then discover the
  // agent (§2.1: router solicitation, answered by an advertisement).
  mobile_->SetDefaultRoute(iface);
  registered_ = false;
  pending_lifetime_ = lifetime_seconds;
  handoff_started_ = mobile_->simulator()->Now();
  ++stats_.solicitations_sent;
  socket_->SendTo(fa_hint, kRegistrationPort, Encode(RouterSolicitation{home_address_}));
}

void MobileClient::ReturnHome() {
  registered_ = false;
  current_care_of_ = net::Ipv4Address();
  if (renew_timer_ != sim::kInvalidTimerId) {
    mobile_->simulator()->Cancel(renew_timer_);
    renew_timer_ = sim::kInvalidTimerId;
  }
  RegistrationRequest request;
  request.home_address = home_address_;
  request.home_agent = home_agent_;
  request.care_of_address = net::Ipv4Address();
  request.lifetime_seconds = 0;
  request.id = pending_id_ = next_id_++;
  ++stats_.registrations_sent;
  // Deregistration goes straight to the HA (the mobile is on its home net).
  socket_->SendTo(home_agent_, kRegistrationPort, Encode(request));
}

void MobileClient::SendRegistration(net::Ipv4Address fa, uint32_t lifetime_seconds) {
  RegistrationRequest request;
  request.home_address = home_address_;
  request.home_agent = home_agent_;
  request.care_of_address = fa;  // The FA overwrites with its own COA anyway.
  request.lifetime_seconds = lifetime_seconds;
  request.id = pending_id_ = next_id_++;
  ++stats_.registrations_sent;
  socket_->SendTo(fa, kRegistrationPort, Encode(request));
}

void MobileClient::OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from) {
  auto type = PeekType(data);
  if (!type.has_value()) {
    return;
  }
  if (*type == MessageType::kRouterAdvertisement) {
    auto ad = DecodeRouterAdvertisement(data);
    if (!ad.has_value()) {
      return;
    }
    SendRegistration(ad->agent_address, pending_lifetime_);
    return;
  }
  if (*type == MessageType::kRegistrationReply) {
    auto reply = DecodeRegistrationReply(data);
    if (!reply.has_value() || reply->id != pending_id_) {
      return;
    }
    const bool accepted = reply->code == ReplyCode::kAccepted;
    if (accepted && reply->lifetime_seconds > 0) {
      registered_ = true;
      current_care_of_ = from.addr;
      ++stats_.registrations_accepted;
      stats_.last_handoff_latency = mobile_->simulator()->Now() - handoff_started_;
      // Renew at 80% of the lifetime.
      if (renew_timer_ != sim::kInvalidTimerId) {
        mobile_->simulator()->Cancel(renew_timer_);
      }
      const sim::Duration renew_in =
          static_cast<sim::Duration>(reply->lifetime_seconds) * sim::kSecond * 4 / 5;
      const net::Ipv4Address fa = from.addr;
      const uint32_t lifetime = reply->lifetime_seconds;
      renew_timer_ = mobile_->simulator()->ScheduleTimer(renew_in, [this, fa, lifetime] {
        renew_timer_ = sim::kInvalidTimerId;
        if (registered_ && current_care_of_ == fa) {
          SendRegistration(fa, lifetime);
        }
      });
    } else if (!accepted) {
      ++stats_.registrations_denied;
    }
    if (on_registered_) {
      on_registered_(accepted);
    }
  }
}

}  // namespace comma::mobileip

// Proxy mobility (thesis §5.1.1 + §10.2.3 future work): "the interception
// point will eventually be merged with an implementation of Mobile IP and
// incorporated into the operation of the FA", and "methods to hand off
// [proxy] operations" are needed when the mobile moves between gateways.
//
// ProxyHandoffManager realizes that plan: each foreign-agent router hosts a
// Service Proxy; when the mobile registers through a new FA, the manager
// transfers every service whose stream key involves the mobile from the old
// FA's proxy to the new one, re-issuing the original AddService requests.
// Filter *code and configuration* move; transient per-stream filter state
// (caches, sequence maps) does not — exactly the state a thesis-era hand-off
// could rebuild from the stream itself. Services bound by wild-card to the
// mobile keep working because the wild-card re-matches at the new proxy.
#ifndef COMMA_MOBILEIP_PROXY_HANDOFF_H_
#define COMMA_MOBILEIP_PROXY_HANDOFF_H_

#include <map>

#include "src/net/address.h"
#include "src/proxy/service_proxy.h"

namespace comma::mobileip {

struct ProxyHandoffStats {
  uint64_t handoffs = 0;
  uint64_t services_transferred = 0;
  uint64_t services_failed = 0;
};

class ProxyHandoffManager {
 public:
  // Associates a care-of address with the Service Proxy running on that
  // foreign agent's router.
  void RegisterProxy(net::Ipv4Address care_of, proxy::ServiceProxy* sp);

  // Moves the mobile's services from the proxy at `old_coa` to the proxy at
  // `new_coa`. Returns the number of services transferred.
  int OnHandoff(net::Ipv4Address mobile, net::Ipv4Address old_coa, net::Ipv4Address new_coa);

  // Convenience: transfer directly between two proxies.
  static int TransferServices(proxy::ServiceProxy& from, proxy::ServiceProxy& to,
                              net::Ipv4Address mobile, ProxyHandoffStats* stats = nullptr);

  const ProxyHandoffStats& stats() const { return stats_; }

 private:
  std::map<net::Ipv4Address, proxy::ServiceProxy*> proxies_;
  ProxyHandoffStats stats_;
};

}  // namespace comma::mobileip

#endif  // COMMA_MOBILEIP_PROXY_HANDOFF_H_

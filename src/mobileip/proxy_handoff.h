// Proxy mobility (thesis §5.1.1 + §10.2.3 future work): "the interception
// point will eventually be merged with an implementation of Mobile IP and
// incorporated into the operation of the FA", and "methods to hand off
// [proxy] operations" are needed when the mobile moves between gateways.
//
// ProxyHandoffManager realizes that plan: each foreign-agent router hosts a
// Service Proxy; when the mobile registers through a new FA, the manager
// transfers every service whose stream key involves the mobile from the old
// FA's proxy to the new one, re-issuing the original AddService requests.
// Filter *code and configuration* move, and — since the failover work
// (docs/robustness.md) — so does per-stream filter state for filters that
// implement the ExportState/ImportState contract. Filters that declare
// kRebuildFromWire (or whose import fails) fall back to the thesis-era
// behaviour: the new instance rebuilds from the stream itself, counted in
// `state_rebuilt`. Services bound by wild-card to the mobile keep working
// because the wild-card re-matches at the new proxy.
//
// RestoreFromCheckpoint covers the *unplanned* path: the old proxy is gone
// (gateway crash) and the new one is rebuilt from the standby's last
// replicated CheckpointState instead of from a live peer.
#ifndef COMMA_MOBILEIP_PROXY_HANDOFF_H_
#define COMMA_MOBILEIP_PROXY_HANDOFF_H_

#include <map>

#include "src/net/address.h"
#include "src/proxy/checkpoint.h"
#include "src/proxy/service_proxy.h"

namespace comma::mobileip {

struct ProxyHandoffStats {
  uint64_t handoffs = 0;
  uint64_t services_transferred = 0;
  uint64_t services_failed = 0;
  // Per transferred service: did its filter state move with it?
  // Invariant: services_transferred == state_transferred + state_rebuilt.
  uint64_t state_transferred = 0;  // Export+import round-trip succeeded.
  uint64_t state_rebuilt = 0;      // Stateless, kRebuildFromWire, or import failed.
};

// Outcome of rebuilding a proxy from a replicated checkpoint (crash takeover).
struct RestoreResult {
  uint64_t services_restored = 0;  // Re-issued successfully at the standby.
  uint64_t services_failed = 0;    // AddService rejected (e.g. filter not loadable).
  uint64_t state_imported = 0;     // Checkpointed blob accepted by the new instance.
  uint64_t state_rebuilt = 0;      // No blob, or import failed: rebuild from wire.
  // Checkpointed streams classified by whether every service touching them
  // came back intact (restored) or some service failed or lost its state and
  // the stream must resync from live traffic (rebuilt). Invariant:
  // streams_restored + streams_rebuilt == checkpoint stream count.
  uint64_t streams_restored = 0;
  uint64_t streams_rebuilt = 0;
};

class ProxyHandoffManager {
 public:
  // Associates a care-of address with the Service Proxy running on that
  // foreign agent's router.
  void RegisterProxy(net::Ipv4Address care_of, proxy::ServiceProxy* sp);

  // Forgets a care-of address (the gateway crashed or was decommissioned);
  // later handoffs involving it become no-ops instead of touching a dead
  // proxy. No-op if the address was never registered.
  void UnregisterProxy(net::Ipv4Address care_of);

  // Moves the mobile's services from the proxy at `old_coa` to the proxy at
  // `new_coa`. Returns the number of services transferred.
  int OnHandoff(net::Ipv4Address mobile, net::Ipv4Address old_coa, net::Ipv4Address new_coa);

  // Convenience: transfer directly between two proxies, carrying exported
  // filter state across (planned handoff: both proxies are alive).
  static int TransferServices(proxy::ServiceProxy& from, proxy::ServiceProxy& to,
                              net::Ipv4Address mobile, ProxyHandoffStats* stats = nullptr);

  // Rebuilds `to` from a replicated checkpoint after the primary gateway
  // died (docs/robustness.md "Recovery state machine"). Adopts the
  // checkpointed streams first — so the launcher does not re-fire on their
  // next packet — then re-issues every checkpointed service in creation
  // order, importing state blobs where present.
  static RestoreResult RestoreFromCheckpoint(const proxy::CheckpointState& ckpt,
                                             proxy::ServiceProxy& to);

  const ProxyHandoffStats& stats() const { return stats_; }

 private:
  std::map<net::Ipv4Address, proxy::ServiceProxy*> proxies_;
  ProxyHandoffStats stats_;
};

}  // namespace comma::mobileip

#endif  // COMMA_MOBILEIP_PROXY_HANDOFF_H_

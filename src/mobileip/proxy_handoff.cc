#include "src/mobileip/proxy_handoff.h"

namespace comma::mobileip {

namespace {

// A service concerns the mobile if either key endpoint names it (or is a
// wild-card position that could match it, in which case the wild-card also
// matches at the new proxy and must move too).
bool ServiceConcernsMobile(const proxy::ServiceProxy::ServiceRecord& record,
                           net::Ipv4Address mobile) {
  return record.key.src == mobile || record.key.dst == mobile ||
         record.key.src.IsUnspecified() || record.key.dst.IsUnspecified();
}

}  // namespace

void ProxyHandoffManager::RegisterProxy(net::Ipv4Address care_of, proxy::ServiceProxy* sp) {
  proxies_[care_of] = sp;
}

int ProxyHandoffManager::OnHandoff(net::Ipv4Address mobile, net::Ipv4Address old_coa,
                                   net::Ipv4Address new_coa) {
  auto from = proxies_.find(old_coa);
  auto to = proxies_.find(new_coa);
  if (from == proxies_.end() || to == proxies_.end() || from->second == to->second) {
    return 0;
  }
  ++stats_.handoffs;
  return TransferServices(*from->second, *to->second, mobile, &stats_);
}

int ProxyHandoffManager::TransferServices(proxy::ServiceProxy& from, proxy::ServiceProxy& to,
                                          net::Ipv4Address mobile, ProxyHandoffStats* stats) {
  // Snapshot first: DeleteService mutates the record list.
  std::vector<proxy::ServiceProxy::ServiceRecord> moving;
  for (const auto& record : from.services()) {
    if (ServiceConcernsMobile(record, mobile)) {
      moving.push_back(record);
    }
  }
  int transferred = 0;
  for (const auto& record : moving) {
    // The new proxy needs the filter loaded; mirror the source's load state.
    to.LoadFilter(record.filter);
    std::string error;
    if (to.AddService(record.filter, record.key, record.args, &error)) {
      from.DeleteService(record.filter, record.key);
      ++transferred;
      if (stats != nullptr) {
        ++stats->services_transferred;
      }
    } else if (stats != nullptr) {
      ++stats->services_failed;
    }
  }
  return transferred;
}

}  // namespace comma::mobileip

#include "src/mobileip/proxy_handoff.h"

#include <set>

namespace comma::mobileip {

namespace {

// A service concerns the mobile if either key endpoint names it (or is a
// wild-card position that could match it, in which case the wild-card also
// matches at the new proxy and must move too).
bool ServiceConcernsMobile(const proxy::ServiceProxy::ServiceRecord& record,
                           net::Ipv4Address mobile) {
  return record.key.src == mobile || record.key.dst == mobile ||
         record.key.src.IsUnspecified() || record.key.dst.IsUnspecified();
}

// A service touches a stream when its (possibly wild-card) key matches the
// stream in either direction — filters attach by directional key, but their
// state concerns the whole conversation.
bool ServiceTouchesStream(const proxy::StreamKey& service_key, const proxy::StreamKey& stream) {
  return service_key.Matches(stream) || service_key.Matches(stream.Reversed());
}

}  // namespace

void ProxyHandoffManager::RegisterProxy(net::Ipv4Address care_of, proxy::ServiceProxy* sp) {
  proxies_[care_of] = sp;
}

void ProxyHandoffManager::UnregisterProxy(net::Ipv4Address care_of) { proxies_.erase(care_of); }

int ProxyHandoffManager::OnHandoff(net::Ipv4Address mobile, net::Ipv4Address old_coa,
                                   net::Ipv4Address new_coa) {
  auto from = proxies_.find(old_coa);
  auto to = proxies_.find(new_coa);
  if (from == proxies_.end() || to == proxies_.end() || from->second == to->second) {
    return 0;
  }
  ++stats_.handoffs;
  return TransferServices(*from->second, *to->second, mobile, &stats_);
}

int ProxyHandoffManager::TransferServices(proxy::ServiceProxy& from, proxy::ServiceProxy& to,
                                          net::Ipv4Address mobile, ProxyHandoffStats* stats) {
  // Snapshot first: DeleteService mutates the record list.
  std::vector<proxy::ServiceProxy::ServiceRecord> moving;
  for (const auto& record : from.services()) {
    if (ServiceConcernsMobile(record, mobile)) {
      moving.push_back(record);
    }
  }
  int transferred = 0;
  for (const auto& record : moving) {
    // Export the source instance's state *before* anything moves: the
    // instance is destroyed when the service is deleted from `from`.
    util::Bytes state;
    bool has_state = false;
    proxy::Filter* source = from.FindFilterOnKey(record.key, record.filter);
    if (source != nullptr && source->state_kind() == proxy::FilterStateKind::kCheckpointed) {
      has_state = source->ExportState(&state);
    }
    // The new proxy needs the filter loaded; mirror the source's load state.
    to.LoadFilter(record.filter);
    std::string error;
    if (!to.AddService(record.filter, record.key, record.args, &error)) {
      if (stats != nullptr) {
        ++stats->services_failed;
      }
      continue;  // The source keeps the service; better degraded than gone.
    }
    bool imported = false;
    if (has_state) {
      proxy::Filter* target = to.FindFilterOnKey(record.key, record.filter);
      std::string import_error;
      imported = target != nullptr && target->ImportState(to.context(), state, &import_error);
    }
    from.DeleteService(record.filter, record.key);
    ++transferred;
    if (stats != nullptr) {
      ++stats->services_transferred;
      if (imported) {
        ++stats->state_transferred;
      } else {
        ++stats->state_rebuilt;
      }
    }
  }
  return transferred;
}

RestoreResult ProxyHandoffManager::RestoreFromCheckpoint(const proxy::CheckpointState& ckpt,
                                                         proxy::ServiceProxy& to) {
  RestoreResult result;
  // Streams first: once a key is in the registry, the launcher's OnNewStream
  // does not fire for it, so re-issued per-stream services are not doubled
  // by a wild-card launcher re-installing them on the next packet.
  for (const auto& stream : ckpt.streams) {
    proxy::StreamInfo info;
    info.first_seen = stream.first_seen;
    info.last_seen = stream.first_seen;
    info.packets = stream.packets;
    info.bytes = stream.bytes;
    to.AdoptStream(stream.key, info);
  }
  // Services in creation order (launchers before the per-stream services
  // they spawned; transform filters after the ttsf they require).
  std::set<proxy::StreamKey> damaged;  // Streams that lost a service or its state.
  for (const auto& svc : ckpt.services) {
    auto mark_damaged = [&] {
      for (const auto& stream : ckpt.streams) {
        if (ServiceTouchesStream(svc.key, stream.key)) {
          damaged.insert(stream.key);
        }
      }
    };
    to.LoadFilter(svc.filter);
    std::string error;
    if (!to.AddService(svc.filter, svc.key, svc.args, &error)) {
      ++result.services_failed;
      mark_damaged();  // Stream degrades to pass-through for this service.
      continue;
    }
    ++result.services_restored;
    if (!svc.has_state) {
      continue;  // Stateless or rebuild-from-wire by design: not damage.
    }
    proxy::Filter* target = to.FindFilterOnKey(svc.key, svc.filter);
    std::string import_error;
    if (target != nullptr && target->ImportState(to.context(), svc.state, &import_error)) {
      ++result.state_imported;
    } else {
      ++result.state_rebuilt;
      mark_damaged();  // Had state, lost it: the stream must resync.
    }
  }
  for (const auto& stream : ckpt.streams) {
    if (damaged.count(stream.key) > 0) {
      ++result.streams_rebuilt;
    } else {
      ++result.streams_restored;
    }
  }
  return result;
}

}  // namespace comma::mobileip

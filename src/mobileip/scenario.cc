#include "src/mobileip/scenario.h"

namespace comma::mobileip {

namespace {
const net::Ipv4Address kCorrespondentAddr(10, 0, 0, 99);
const net::Ipv4Address kBbCorrespondentSide(10, 0, 0, 1);
const net::Ipv4Address kBbHaSide(10, 1, 0, 2);
const net::Ipv4Address kBbFa1Side(10, 2, 0, 2);
const net::Ipv4Address kBbFa2Side(10, 3, 0, 2);
const net::Ipv4Address kHaAddr(10, 1, 0, 1);
const net::Ipv4Address kFa1Addr(10, 2, 0, 1);
const net::Ipv4Address kFa2Addr(10, 3, 0, 1);
const net::Ipv4Address kFa1WirelessAddr(192, 168, 1, 1);
const net::Ipv4Address kFa2WirelessAddr(192, 168, 2, 1);
const net::Ipv4Address kMobileHomeAddr(10, 1, 0, 50);
}  // namespace

MobileIpScenario::MobileIpScenario(const MobileIpConfig& config)
    : sim_(config.sim), rng_(config.seed) {
  if (config.partition_regions) {
    fa_region_ = sim_.AddRegion("fa");
  }
  correspondent_ = std::make_unique<core::Host>(&sim_, "correspondent", rng_.Fork());
  backbone_ = std::make_unique<core::Host>(&sim_, "backbone", rng_.Fork());
  ha_router_ = std::make_unique<core::Host>(&sim_, "ha-router", rng_.Fork());
  {
    sim::ScopedRegion in_fa(&sim_, fa_region_);
    fa1_router_ = std::make_unique<core::Host>(&sim_, "fa1-router", rng_.Fork());
    fa2_router_ = std::make_unique<core::Host>(&sim_, "fa2-router", rng_.Fork());
    mobile_ = std::make_unique<core::Host>(&sim_, "mobile", rng_.Fork());
  }

  auto wired = [&](const char* name) {
    return std::make_unique<net::Link>(&sim_, rng_.Fork(), config.wired, name);
  };
  ch_bb_ = wired("ch-bb");
  bb_ha_ = wired("bb-ha");
  bb_fa1_ = wired("bb-fa1");
  bb_fa2_ = wired("bb-fa2");
  home_link_ = wired("home-lan");
  wireless1_ = std::make_unique<net::Link>(&sim_, rng_.Fork(), config.wireless, "wireless1");
  wireless2_ = std::make_unique<net::Link>(&sim_, rng_.Fork(), config.wireless, "wireless2");
  // Side order mirrors the Attach calls below: the backbone/HA ends stay in
  // region 0; the FA-router and mobile ends join the fa region, making the
  // two backhauls and the home LAN the cross-region edges.
  bb_fa1_->SetRegions(sim::kMainRegion, fa_region_);
  bb_fa2_->SetRegions(sim::kMainRegion, fa_region_);
  home_link_->SetRegions(sim::kMainRegion, fa_region_);
  wireless1_->SetRegions(fa_region_, fa_region_);
  wireless2_->SetRegions(fa_region_, fa_region_);

  // Correspondent.
  const uint32_t ch_if = correspondent_->AddInterface(kCorrespondentAddr);
  correspondent_->AttachLink(ch_if, ch_bb_.get(), 0);
  correspondent_->SetDefaultRoute(ch_if);

  // Backbone.
  const uint32_t bb_ch = backbone_->AddInterface(kBbCorrespondentSide);
  const uint32_t bb_ha = backbone_->AddInterface(kBbHaSide);
  const uint32_t bb_fa1 = backbone_->AddInterface(kBbFa1Side);
  const uint32_t bb_fa2 = backbone_->AddInterface(kBbFa2Side);
  backbone_->AttachLink(bb_ch, ch_bb_.get(), 1);
  backbone_->AttachLink(bb_ha, bb_ha_.get(), 0);
  backbone_->AttachLink(bb_fa1, bb_fa1_.get(), 0);
  backbone_->AttachLink(bb_fa2, bb_fa2_.get(), 0);
  backbone_->AddRoute(*net::Ipv4Prefix::Parse("10.0.0.0/24"), bb_ch);
  backbone_->AddRoute(*net::Ipv4Prefix::Parse("10.1.0.0/24"), bb_ha);
  backbone_->AddRoute(*net::Ipv4Prefix::Parse("10.2.0.0/24"), bb_fa1);
  backbone_->AddRoute(*net::Ipv4Prefix::Parse("10.3.0.0/24"), bb_fa2);

  // Home-agent router: backbone side + home LAN side.
  const uint32_t ha_bb = ha_router_->AddInterface(kHaAddr);
  const uint32_t ha_lan = ha_router_->AddInterface(net::Ipv4Address(10, 1, 0, 3));
  ha_router_->AttachLink(ha_bb, bb_ha_.get(), 1);
  ha_router_->AttachLink(ha_lan, home_link_.get(), 0);
  ha_router_->SetDefaultRoute(ha_bb);
  ha_router_->AddHostRoute(kMobileHomeAddr, ha_lan);

  // Foreign-agent routers.
  const uint32_t fa1_bb = fa1_router_->AddInterface(kFa1Addr);
  const uint32_t fa1_w = fa1_router_->AddInterface(kFa1WirelessAddr);
  fa1_router_->AttachLink(fa1_bb, bb_fa1_.get(), 1);
  fa1_router_->AttachLink(fa1_w, wireless1_.get(), 0);
  fa1_router_->SetDefaultRoute(fa1_bb);

  const uint32_t fa2_bb = fa2_router_->AddInterface(kFa2Addr);
  const uint32_t fa2_w = fa2_router_->AddInterface(kFa2WirelessAddr);
  fa2_router_->AttachLink(fa2_bb, bb_fa2_.get(), 1);
  fa2_router_->AttachLink(fa2_w, wireless2_.get(), 0);
  fa2_router_->SetDefaultRoute(fa2_bb);

  // The mobile: one address, three attachment points.
  mobile_home_if_ = mobile_->AddInterface(kMobileHomeAddr);
  mobile_w1_if_ = mobile_->AddInterface(kMobileHomeAddr);
  mobile_w2_if_ = mobile_->AddInterface(kMobileHomeAddr);
  mobile_->AttachLink(mobile_home_if_, home_link_.get(), 1);
  mobile_->AttachLink(mobile_w1_if_, wireless1_.get(), 1);
  mobile_->AttachLink(mobile_w2_if_, wireless2_.get(), 1);
  mobile_->SetDefaultRoute(mobile_home_if_);

  // Agents and client.
  home_agent_ = std::make_unique<HomeAgent>(ha_router_.get());
  home_agent_->AddMobile(kMobileHomeAddr);
  {
    sim::ScopedRegion in_fa(&sim_, fa_region_);
    fa1_ = std::make_unique<ForeignAgent>(fa1_router_.get(), fa1_w, config.handoff_policy);
    fa2_ = std::make_unique<ForeignAgent>(fa2_router_.get(), fa2_w, config.handoff_policy);
    client_ = std::make_unique<MobileClient>(mobile_.get(), kMobileHomeAddr, kHaAddr);
  }

  // Start at home: only the home link is up.
  wireless1_->SetUp(false);
  wireless2_->SetUp(false);
}

void MobileIpScenario::MoveToForeign1() {
  home_link_->SetUp(false);
  wireless2_->SetUp(false);
  wireless1_->SetUp(true);
  client_->AttachVia(mobile_w1_if_, kFa1WirelessAddr);
}

void MobileIpScenario::MoveToForeign2() {
  home_link_->SetUp(false);
  wireless1_->SetUp(false);
  wireless2_->SetUp(true);
  client_->AttachVia(mobile_w2_if_, kFa2WirelessAddr);
}

void MobileIpScenario::MoveHome() {
  wireless1_->SetUp(false);
  wireless2_->SetUp(false);
  home_link_->SetUp(true);
  mobile_->SetDefaultRoute(mobile_home_if_);
  client_->ReturnHome();
}

net::Ipv4Address MobileIpScenario::correspondent_addr() const { return kCorrespondentAddr; }
net::Ipv4Address MobileIpScenario::mobile_home_addr() const { return kMobileHomeAddr; }
net::Ipv4Address MobileIpScenario::ha_addr() const { return kHaAddr; }
net::Ipv4Address MobileIpScenario::fa1_addr() const { return kFa1Addr; }
net::Ipv4Address MobileIpScenario::fa2_addr() const { return kFa2Addr; }

}  // namespace comma::mobileip

// The Mobile IP Foreign Agent (thesis §2.1).
//
// Runs on a foreign-network router with one mobile-facing (wireless)
// interface. Answers router solicitations with advertisements, relays
// registration requests to the home agent, decapsulates tunneled packets
// for visiting mobiles, and — when the forwarding policy is enabled —
// re-tunnels packets that arrive for a mobile that has since moved to a new
// care-of address (§2.1's forwarding option for hand-off packet loss).
#ifndef COMMA_MOBILEIP_FOREIGN_AGENT_H_
#define COMMA_MOBILEIP_FOREIGN_AGENT_H_

#include <map>

#include "src/core/host.h"
#include "src/mobileip/messages.h"

namespace comma::mobileip {

enum class HandoffPolicy {
  kDrop,     // Packets for departed mobiles are discarded.
  kForward,  // Re-tunneled to the mobile's new care-of address.
};

struct ForeignAgentStats {
  uint64_t advertisements_sent = 0;
  uint64_t registrations_relayed = 0;
  uint64_t packets_decapsulated = 0;
  uint64_t packets_forwarded = 0;  // Re-tunneled after hand-off.
  uint64_t packets_dropped = 0;    // Departed/unreachable mobile, kDrop policy.
  uint64_t packets_buffered = 0;   // Held while awaiting a binding update.
};

class ForeignAgent {
 public:
  // `wireless_iface` is the router interface facing visiting mobiles.
  ForeignAgent(core::Host* router, uint32_t wireless_iface,
               HandoffPolicy policy = HandoffPolicy::kDrop);

  void set_policy(HandoffPolicy policy) { policy_ = policy; }
  net::Ipv4Address care_of_address() const { return router_->PrimaryAddress(); }
  bool IsVisiting(net::Ipv4Address home_address) const {
    return visitors_.count(home_address) != 0;
  }
  const ForeignAgentStats& stats() const { return stats_; }

 private:
  struct PendingRegistration {
    udp::UdpEndpoint mobile;
  };

  void OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from);
  void OnTunneledPacket(net::PacketPtr packet);

  core::Host* router_;
  uint32_t wireless_iface_;
  HandoffPolicy policy_;
  std::unique_ptr<udp::UdpSocket> socket_;
  uint32_t advertisement_seq_ = 0;
  std::map<net::Ipv4Address, PendingRegistration> pending_;  // By home address.
  std::map<net::Ipv4Address, udp::UdpEndpoint> visitors_;    // Registered here.
  std::map<net::Ipv4Address, net::Ipv4Address> departed_;    // Home -> new COA.
  // kForward policy: packets for a visitor whose wireless link is down are
  // held here until a binding update reveals the new care-of address.
  std::map<net::Ipv4Address, std::vector<net::PacketPtr>> held_;
  ForeignAgentStats stats_;
};

}  // namespace comma::mobileip

#endif  // COMMA_MOBILEIP_FOREIGN_AGENT_H_

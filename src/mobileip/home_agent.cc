#include "src/mobileip/home_agent.h"

namespace comma::mobileip {

HomeAgent::HomeAgent(core::Host* router) : router_(router) {
  socket_ = router_->udp().Bind(kRegistrationPort);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint& from) {
    OnDatagram(data, from);
  });
  router_->AddTap(this);
}

HomeAgent::~HomeAgent() { router_->RemoveTap(this); }

void HomeAgent::AddMobile(net::Ipv4Address home_address) {
  bindings_.emplace(home_address, Binding{});
}

net::Ipv4Address HomeAgent::CareOfAddress(net::Ipv4Address home_address) const {
  auto it = bindings_.find(home_address);
  return it == bindings_.end() ? net::Ipv4Address() : it->second.care_of;
}

bool HomeAgent::IsRegisteredAway(net::Ipv4Address home_address) const {
  auto it = bindings_.find(home_address);
  if (it == bindings_.end() || it->second.care_of.IsUnspecified()) {
    return false;
  }
  return it->second.expires == 0 || router_->simulator()->Now() < it->second.expires;
}

net::TapVerdict HomeAgent::OnPacket(net::PacketPtr& packet, const net::TapContext& ctx) {
  if (ctx.outbound) {
    return net::TapVerdict::kPass;  // Never re-intercept our own tunnels.
  }
  const net::Ipv4Address dst = packet->ip().dst;
  auto it = bindings_.find(dst);
  if (it == bindings_.end()) {
    return net::TapVerdict::kPass;  // Not one of our mobiles.
  }
  if (it->second.care_of.IsUnspecified()) {
    ++stats_.packets_delivered_home;
    return net::TapVerdict::kPass;  // Mobile is home: normal routing.
  }
  // Encapsulate and tunnel to the care-of address (§2.1: "packets are
  // encapsulated using IP tunneling and sent to the currently-registered
  // location of the mobile").
  ++stats_.packets_tunneled;
  net::PacketPtr inner = std::move(packet);
  net::PacketPtr outer = net::Packet::Encapsulate(std::move(inner), router_->PrimaryAddress(),
                                                  it->second.care_of);
  router_->InjectPacket(std::move(outer));
  return net::TapVerdict::kConsume;
}

void HomeAgent::OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from) {
  auto type = PeekType(data);
  if (type != MessageType::kRegistrationRequest) {
    return;
  }
  auto request = DecodeRegistrationRequest(data);
  if (request.has_value()) {
    HandleRegistration(*request, from);
  }
}

void HomeAgent::HandleRegistration(const RegistrationRequest& request,
                                   const udp::UdpEndpoint& from) {
  RegistrationReply reply;
  reply.home_address = request.home_address;
  reply.id = request.id;
  reply.lifetime_seconds = request.lifetime_seconds;

  auto it = bindings_.find(request.home_address);
  if (it == bindings_.end()) {
    reply.code = ReplyCode::kDeniedUnknownHome;
    socket_->SendTo(from.addr, from.port, Encode(reply));
    return;
  }

  const net::Ipv4Address previous_coa = it->second.care_of;
  if (request.lifetime_seconds == 0) {
    // Deregistration: the mobile is home again.
    it->second.care_of = net::Ipv4Address();
    it->second.expires = 0;
    ++stats_.deregistrations;
  } else {
    it->second.care_of = request.care_of_address;
    it->second.expires = router_->simulator()->Now() +
                         static_cast<sim::Duration>(request.lifetime_seconds) * sim::kSecond;
    ++stats_.registrations_accepted;
  }
  reply.code = ReplyCode::kAccepted;
  socket_->SendTo(from.addr, from.port, Encode(reply));

  // Tell the previous FA where the mobile went, so packets in flight to the
  // old care-of address can be forwarded rather than lost (§2.1).
  if (!previous_coa.IsUnspecified() && previous_coa != request.care_of_address) {
    BindingUpdate update;
    update.home_address = request.home_address;
    update.new_care_of = request.lifetime_seconds == 0 ? net::Ipv4Address()
                                                       : request.care_of_address;
    ++stats_.binding_updates_sent;
    socket_->SendTo(previous_coa, kRegistrationPort, Encode(update));
  }
}

}  // namespace comma::mobileip

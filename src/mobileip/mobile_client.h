// The mobile-side Mobile IP client (thesis §2.1).
//
// Drives agent discovery and registration when the mobile changes access
// points: solicit the local FA, receive its advertisement, register through
// it with the home agent, and report completion. Registrations renew
// automatically before the lifetime expires.
#ifndef COMMA_MOBILEIP_MOBILE_CLIENT_H_
#define COMMA_MOBILEIP_MOBILE_CLIENT_H_

#include <functional>

#include "src/core/host.h"
#include "src/mobileip/messages.h"

namespace comma::mobileip {

struct MobileClientStats {
  uint64_t solicitations_sent = 0;
  uint64_t registrations_sent = 0;
  uint64_t registrations_accepted = 0;
  uint64_t registrations_denied = 0;
  sim::Duration last_handoff_latency = 0;  // Solicit -> accepted.
};

class MobileClient {
 public:
  // `home_address` is the mobile's permanent address; `home_agent` the HA's.
  MobileClient(core::Host* mobile, net::Ipv4Address home_address, net::Ipv4Address home_agent);

  // Begins a hand-off to the network served by the FA reachable through
  // `iface` at `fa_hint`. The client solicits first (agent discovery); the
  // advertisement's care-of address is what gets registered.
  void AttachVia(uint32_t iface, net::Ipv4Address fa_hint,
                 uint32_t lifetime_seconds = 60);

  // Deregisters (the mobile returned home).
  void ReturnHome();

  // Fires when a registration round-trip completes (true = accepted).
  void set_on_registered(std::function<void(bool)> cb) { on_registered_ = std::move(cb); }

  bool registered() const { return registered_; }
  net::Ipv4Address current_care_of() const { return current_care_of_; }
  const MobileClientStats& stats() const { return stats_; }

 private:
  void OnDatagram(const util::Bytes& data, const udp::UdpEndpoint& from);
  void SendRegistration(net::Ipv4Address fa, uint32_t lifetime_seconds);

  core::Host* mobile_;
  net::Ipv4Address home_address_;
  net::Ipv4Address home_agent_;
  std::unique_ptr<udp::UdpSocket> socket_;
  std::function<void(bool)> on_registered_;

  bool registered_ = false;
  net::Ipv4Address current_care_of_;
  uint32_t pending_lifetime_ = 0;
  uint64_t next_id_ = 1;
  uint64_t pending_id_ = 0;
  sim::TimePoint handoff_started_ = 0;
  sim::TimerId renew_timer_ = sim::kInvalidTimerId;
  MobileClientStats stats_;
};

}  // namespace comma::mobileip

#endif  // COMMA_MOBILEIP_MOBILE_CLIENT_H_

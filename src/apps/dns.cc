#include "src/apps/dns.h"

namespace comma::apps {

net::Ipv4Address DnsAddressFor(const std::string& name) {
  // FNV-1a, folded into 10.x.y.z so answers are stable across runs.
  uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return net::Ipv4Address(10, static_cast<uint8_t>(h >> 16), static_cast<uint8_t>(h >> 8),
                          static_cast<uint8_t>(h));
}

DnsServer::DnsServer(core::Host* host, uint32_t ttl, uint16_t port) : ttl_(ttl) {
  socket_ = host->udp().Bind(port);
  socket_->set_on_receive([this](const util::Bytes& payload, const udp::UdpEndpoint& from) {
    reassembly::DnsMessage query;
    if (!reassembly::DecodeDnsMessage(payload, &query) || query.is_response() ||
        query.questions.empty()) {
      return;
    }
    reassembly::DnsMessage response;
    response.id = query.id;
    response.flags = reassembly::kDnsFlagResponse |
                     (query.flags & reassembly::kDnsFlagRecursionDesired);
    response.questions = query.questions;
    for (const auto& q : query.questions) {
      if (q.qtype != reassembly::kDnsTypeA) {
        continue;
      }
      reassembly::DnsRecord rec;
      rec.name = q.name;
      rec.rtype = reassembly::kDnsTypeA;
      rec.rclass = reassembly::kDnsClassIn;
      rec.ttl = ttl_;
      const uint32_t addr = DnsAddressFor(q.name).value();
      rec.rdata = {static_cast<uint8_t>(addr >> 24), static_cast<uint8_t>(addr >> 16),
                   static_cast<uint8_t>(addr >> 8), static_cast<uint8_t>(addr)};
      response.answers.push_back(std::move(rec));
    }
    if (response.answers.empty()) {
      response.flags |= reassembly::kDnsRcodeNameError;
    }
    ++queries_answered_;
    socket_->SendTo(from.addr, from.port, reassembly::EncodeDnsMessage(response));
  });
}

DnsClient::DnsClient(core::Host* host, net::Ipv4Address resolver, uint16_t port)
    : host_(host), resolver_(resolver), resolver_port_(port) {
  socket_ = host_->udp().Bind(0);
  socket_->set_on_receive([this](const util::Bytes& payload, const udp::UdpEndpoint&) {
    reassembly::DnsMessage response;
    if (!reassembly::DecodeDnsMessage(payload, &response) || !response.is_response()) {
      return;
    }
    auto it = pending_.find(response.id);
    if (it == pending_.end()) {
      return;  // Duplicate or stale.
    }
    ++responses_received_;
    ResolveCallback cb = std::move(it->second);
    pending_.erase(it);
    if (cb) {
      cb(response);
    }
  });
}

void DnsClient::Resolve(const std::string& name, ResolveCallback cb) {
  reassembly::DnsMessage query;
  query.id = next_id_++;
  query.flags = reassembly::kDnsFlagRecursionDesired;
  query.questions.push_back(reassembly::DnsQuestion{name, reassembly::kDnsTypeA,
                                                    reassembly::kDnsClassIn});
  pending_[query.id] = std::move(cb);
  ++queries_sent_;
  socket_->SendTo(resolver_, resolver_port_, reassembly::EncodeDnsMessage(query));
}

}  // namespace comma::apps

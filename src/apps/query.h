// A small UDP query/response application (DNS-shaped), the workload for the
// application-partitioning service class (thesis Ch. 1 "Support for
// Partitioned Applications", §5.2's first class of wireless services): part
// of the application's answering logic migrates to the proxy, where the
// qcache filter serves repeated queries — even while the mobile's upstream
// is disconnected.
//
#ifndef COMMA_APPS_QUERY_H_
#define COMMA_APPS_QUERY_H_

#include <functional>
#include <map>

#include "src/core/host.h"
#include "src/filters/query_protocol.h"
#include "src/util/stats.h"

namespace comma::apps {

using filters::DecodeQueryRequest;
using filters::DecodeQueryResponse;
using filters::EncodeQueryRequest;
using filters::EncodeQueryResponse;
using filters::kQueryPort;
using filters::QueryRequest;
using filters::QueryResponse;

// Answers queries with a deterministic value derived from the key (so any
// cache can be validated for correctness).
class QueryServer {
 public:
  QueryServer(core::Host* host, uint16_t port = kQueryPort);

  static util::Bytes ValueFor(const std::string& key);
  uint64_t queries_answered() const { return queries_answered_; }

 private:
  std::unique_ptr<udp::UdpSocket> socket_;
  uint64_t queries_answered_ = 0;
};

// Issues queries with retry; records latency and outcome per query.
class QueryClient {
 public:
  QueryClient(core::Host* host, net::Ipv4Address server, uint16_t port = kQueryPort,
              sim::Duration timeout = sim::kSecond, int max_retries = 3);

  using Callback = std::function<void(bool ok, const util::Bytes& value)>;
  void Query(const std::string& key, Callback cb);

  uint64_t queries_sent() const { return queries_sent_; }
  uint64_t responses_received() const { return responses_received_; }
  uint64_t failures() const { return failures_; }
  const util::Percentiles& latencies_ms() const { return latencies_ms_; }

 private:
  struct Pending {
    std::string key;
    Callback cb;
    sim::TimePoint started = 0;
    int retries_left = 0;
    sim::TimerId timer = sim::kInvalidTimerId;
  };

  void SendRequest(uint32_t id);
  void OnTimeout(uint32_t id);

  core::Host* host_;
  net::Ipv4Address server_;
  uint16_t port_;
  sim::Duration timeout_;
  int max_retries_;
  std::unique_ptr<udp::UdpSocket> socket_;
  uint32_t next_id_ = 1;
  std::map<uint32_t, Pending> pending_;
  uint64_t queries_sent_ = 0;
  uint64_t responses_received_ = 0;
  uint64_t failures_ = 0;
  util::Percentiles latencies_ms_;
};

}  // namespace comma::apps

#endif  // COMMA_APPS_QUERY_H_

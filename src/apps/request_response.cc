#include "src/apps/request_response.h"

namespace comma::apps {

RequestResponseServer::RequestResponseServer(core::Host* host, uint16_t port, size_t request_size,
                                             size_t response_size)
    : host_(host), request_size_(request_size), response_size_(response_size) {
  host_->tcp().Listen(port, [this](tcp::TcpConnection* conn) {
    auto buffered = std::make_shared<size_t>(0);
    conn->set_on_data([this, conn, buffered](const util::Bytes& data) {
      *buffered += data.size();
      while (*buffered >= request_size_) {
        *buffered -= request_size_;
        ++requests_served_;
        util::Bytes response(response_size_, 0x52);
        conn->Send(response);
      }
    });
    conn->set_on_remote_close([conn] { conn->Close(); });
  });
}

RequestResponseClient::RequestResponseClient(core::Host* host, net::Ipv4Address server,
                                             uint16_t port, size_t request_size,
                                             size_t response_size, int count)
    : host_(host),
      request_size_(request_size),
      response_size_(response_size),
      remaining_(count) {
  conn_ = host_->tcp().Connect(server, port);
  conn_->set_on_connected([this] { SendRequest(); });
  conn_->set_on_data([this](const util::Bytes& data) {
    if (response_pending_ == 0) {
      return;
    }
    if (data.size() >= response_pending_) {
      response_pending_ = 0;
      ++completed_;
      latencies_ms_.Add(
          sim::DurationToSeconds(host_->simulator()->Now() - request_sent_at_) * 1000.0);
      if (remaining_ > 0) {
        SendRequest();
      } else {
        finished_ = true;
        conn_->Close();
        if (on_finished_) {
          on_finished_();
        }
      }
    } else {
      response_pending_ -= data.size();
    }
  });
}

void RequestResponseClient::SendRequest() {
  if (remaining_ <= 0) {
    return;
  }
  --remaining_;
  response_pending_ = response_size_;
  request_sent_at_ = host_->simulator()->Now();
  util::Bytes request(request_size_, 0x51);
  conn_->Send(request);
}

}  // namespace comma::apps

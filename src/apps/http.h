// HTTP/1.1 workload pair (ROADMAP item 5): a deterministic origin server
// and a pipelining client, driving GET/POST traffic with mixed content
// types through the proxy so the content-aware filter family (hrewrite,
// htype) has realistic messages to act on.
//
// Server routes (all bodies deterministic functions of the target):
//   GET  /text/<n>             text/plain, TextPayload(n) (compressible)
//   GET  /image/<n>            application/octet-stream, PatternPayload(n)
//   GET  /media/<L>/<F>/<B>    application/x-comma-media: F frame groups of
//                              layers 0..L-1, B payload bytes per frame
//                              ([layer, type, u16 len, payload] frames)
//   POST <anything>            echoes a short text/plain acknowledgement
//   anything else              404 with a short text/plain body
//
// The client counts *useful bytes* per response — the application-level
// measure bench_http compares services on: decoded original bytes for
// compressed-frame bodies (htype's X-Comma-Encoding), complete-frame payload
// bytes for media bodies, raw body bytes otherwise. A response that fails to
// parse contributes nothing, which is exactly how byte-oriented dropping
// loses to content-aware dropping.
#ifndef COMMA_APPS_HTTP_H_
#define COMMA_APPS_HTTP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/host.h"
#include "src/reassembly/http_parser.h"

namespace comma::apps {

// Media body layout shared by the server, the client's accounting, and the
// filter tests.
util::Bytes MediaBody(int layers, int frame_groups, size_t frame_bytes);
// Sums payload bytes of complete frames, optionally restricted to
// layer <= max_layer (-1 = all layers).
size_t MediaUsefulBytes(const util::Bytes& body, int max_layer = -1);

class HttpServer {
 public:
  HttpServer(core::Host* host, uint16_t port, const tcp::TcpConfig& config = {});

  uint64_t requests_served() const { return requests_served_; }
  uint64_t parse_failures() const { return parse_failures_; }

 private:
  struct ConnState {
    reassembly::HttpParser parser{reassembly::HttpParser::Mode::kRequest};
    util::Bytes outbox;
    size_t sent = 0;
  };

  void HandleRequest(const reassembly::HttpMessage& req, ConnState* st);
  static void Pump(tcp::TcpConnection* conn, ConnState* st);

  core::Host* host_;
  std::vector<std::unique_ptr<ConnState>> conns_;
  uint64_t requests_served_ = 0;
  uint64_t parse_failures_ = 0;
};

struct HttpRequestSpec {
  std::string method = "GET";
  std::string target;
  util::Bytes body;  // POST payload (Content-Length framed).
};

class HttpClient {
 public:
  HttpClient(core::Host* host, net::Ipv4Address server, uint16_t port,
             std::vector<HttpRequestSpec> requests, size_t pipeline_depth = 4,
             const tcp::TcpConfig& config = {});

  bool finished() const { return finished_; }
  // The response stream became unparseable (or the server closed early).
  bool failed() const { return failed_; }
  tcp::TcpConnection* connection() { return conn_; }
  size_t responses_received() const { return responses_.size(); }
  const std::vector<reassembly::HttpMessage>& responses() const { return responses_; }
  uint64_t useful_bytes() const { return useful_bytes_; }
  uint64_t body_bytes() const { return body_bytes_; }
  sim::TimePoint started_at() const { return started_at_; }
  sim::TimePoint finished_at() const { return finished_at_; }
  // Useful application bytes per second over the connection lifetime; counts
  // a failed run's partial progress against the full elapsed time.
  double UsefulGoodputBps(sim::TimePoint now) const;

  void set_on_finished(std::function<void()> cb) { on_finished_ = std::move(cb); }

 private:
  void SendNext();
  void Pump();
  void HandleResponse(const reassembly::HttpMessage& resp);
  void Finish(bool failed);

  core::Host* host_;
  tcp::TcpConnection* conn_;
  std::vector<HttpRequestSpec> requests_;
  size_t next_request_ = 0;  // Next spec to put on the wire.
  size_t pipeline_depth_;
  reassembly::HttpParser parser_{reassembly::HttpParser::Mode::kResponse};
  std::vector<reassembly::HttpMessage> responses_;
  util::Bytes outbox_;
  size_t sent_ = 0;
  uint64_t useful_bytes_ = 0;
  uint64_t body_bytes_ = 0;
  bool finished_ = false;
  bool failed_ = false;
  sim::TimePoint started_at_;
  sim::TimePoint finished_at_ = 0;
  std::function<void()> on_finished_;
};

}  // namespace comma::apps

#endif  // COMMA_APPS_HTTP_H_

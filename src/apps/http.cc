#include "src/apps/http.h"

#include <algorithm>

#include "src/apps/bulk.h"
#include "src/filters/http_filters.h"
#include "src/filters/media_filters.h"
#include "src/filters/transform_filters.h"
#include "src/util/strings.h"

namespace comma::apps {

namespace {

// Parses the decimal component after `prefix` in targets like "/text/4096".
bool TargetNumber(const std::string& target, const std::string& prefix, size_t* out) {
  if (target.rfind(prefix, 0) != 0) {
    return false;
  }
  const std::string rest = target.substr(prefix.size());
  if (rest.empty()) {
    return false;
  }
  size_t n = 0;
  for (char c : rest) {
    if (c < '0' || c > '9') {
      return false;
    }
    n = n * 10 + static_cast<size_t>(c - '0');
    if (n > (1u << 26)) {
      return false;
    }
  }
  *out = n;
  return true;
}

util::Bytes BuildResponse(int status, const std::string& reason, const std::string& content_type,
                          const util::Bytes& body) {
  std::string head = util::Format("HTTP/1.1 %d %s\r\n", status, reason.c_str());
  head += "Content-Type: " + content_type + "\r\n";
  head += util::Format("Content-Length: %zu\r\n", body.size());
  head += "\r\n";
  util::Bytes out = util::ToBytes(head);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

util::Bytes MediaBody(int layers, int frame_groups, size_t frame_bytes) {
  util::Bytes body;
  util::ByteWriter w(&body);
  for (int g = 0; g < frame_groups; ++g) {
    for (int layer = 0; layer < layers; ++layer) {
      w.WriteU8(static_cast<uint8_t>(layer));
      w.WriteU8(filters::kMediaTypeColorImage);
      w.WriteU16(static_cast<uint16_t>(frame_bytes));
      for (size_t i = 0; i < frame_bytes; ++i) {
        w.WriteU8(static_cast<uint8_t>(g * 131 + layer * 17 + i));
      }
    }
  }
  return body;
}

size_t MediaUsefulBytes(const util::Bytes& body, int max_layer) {
  size_t useful = 0;
  size_t pos = 0;
  while (body.size() - pos >= 4) {
    const uint8_t layer = body[pos];
    const size_t len = (static_cast<size_t>(body[pos + 2]) << 8) | body[pos + 3];
    if (body.size() - pos < 4 + len) {
      break;  // Truncated trailing frame: not useful.
    }
    if (max_layer < 0 || layer <= static_cast<uint8_t>(max_layer)) {
      useful += len;
    }
    pos += 4 + len;
  }
  return useful;
}

// --- HttpServer ---

HttpServer::HttpServer(core::Host* host, uint16_t port, const tcp::TcpConfig& config)
    : host_(host) {
  host_->tcp().Listen(
      port,
      [this](tcp::TcpConnection* conn) {
        conns_.push_back(std::make_unique<ConnState>());
        ConnState* st = conns_.back().get();
        conn->set_on_data([this, conn, st](const util::Bytes& data) {
          if (!st->parser.Feed(data)) {
            ++parse_failures_;
            return;
          }
          while (st->parser.HasMessage()) {
            HandleRequest(st->parser.PopMessage(), st);
          }
          Pump(conn, st);
        });
        conn->set_on_writable([conn, st] { Pump(conn, st); });
        conn->set_on_remote_close([conn, st] {
          if (st->sent >= st->outbox.size()) {
            conn->Close();
          }
        });
      },
      config);
}

void HttpServer::HandleRequest(const reassembly::HttpMessage& req, ConnState* st) {
  ++requests_served_;
  util::Bytes response;
  size_t n = 0;
  if (req.method == "POST") {
    const util::Bytes ack = util::ToBytes(util::Format("accepted %zu bytes\n", req.body.size()));
    response = BuildResponse(200, "OK", "text/plain", ack);
  } else if (req.method != "GET") {
    response = BuildResponse(405, "Method Not Allowed", "text/plain", util::ToBytes("nope\n"));
  } else if (TargetNumber(req.target, "/text/", &n)) {
    response = BuildResponse(200, "OK", "text/plain", TextPayload(n));
  } else if (TargetNumber(req.target, "/image/", &n)) {
    response = BuildResponse(200, "OK", "application/octet-stream", PatternPayload(n));
  } else if (req.target.rfind("/media/", 0) == 0) {
    // /media/<layers>/<groups>/<frame_bytes>
    int layers = 0;
    int groups = 0;
    size_t frame_bytes = 0;
    size_t a = 0;
    size_t b = 0;
    const size_t slash1 = req.target.find('/', 7);
    const size_t slash2 = slash1 == std::string::npos ? std::string::npos
                                                      : req.target.find('/', slash1 + 1);
    if (slash2 != std::string::npos &&
        TargetNumber(req.target.substr(0, slash1), "/media/", &a) &&
        TargetNumber(req.target.substr(slash1, slash2 - slash1), "/", &b) &&
        TargetNumber(req.target.substr(slash2), "/", &frame_bytes) && a > 0 && a <= 8 &&
        frame_bytes <= 0xFFFF) {
      layers = static_cast<int>(a);
      groups = static_cast<int>(b);
      response = BuildResponse(200, "OK", filters::HtypeFilter::kMediaContentType,
                               MediaBody(layers, groups, frame_bytes));
    } else {
      response = BuildResponse(404, "Not Found", "text/plain", util::ToBytes("bad media target\n"));
    }
  } else {
    response = BuildResponse(404, "Not Found", "text/plain", util::ToBytes("no such resource\n"));
  }
  st->outbox.insert(st->outbox.end(), response.begin(), response.end());
}

void HttpServer::Pump(tcp::TcpConnection* conn, ConnState* st) {
  while (st->sent < st->outbox.size()) {
    const size_t n = conn->Send(st->outbox.data() + st->sent, st->outbox.size() - st->sent);
    if (n == 0) {
      return;
    }
    st->sent += n;
  }
}

// --- HttpClient ---

HttpClient::HttpClient(core::Host* host, net::Ipv4Address server, uint16_t port,
                       std::vector<HttpRequestSpec> requests, size_t pipeline_depth,
                       const tcp::TcpConfig& config)
    : host_(host),
      requests_(std::move(requests)),
      pipeline_depth_(std::max<size_t>(pipeline_depth, 1)),
      started_at_(host->simulator()->Now()) {
  conn_ = host_->tcp().Connect(server, port, config);
  conn_->set_on_connected([this] { SendNext(); });
  conn_->set_on_writable([this] { Pump(); });
  conn_->set_on_data([this](const util::Bytes& data) {
    if (finished_) {
      return;
    }
    if (!parser_.Feed(data)) {
      Finish(/*failed=*/true);
      return;
    }
    while (!finished_ && parser_.HasMessage()) {
      HandleResponse(parser_.PopMessage());
    }
  });
  conn_->set_on_remote_close([this] {
    if (!finished_) {
      Finish(/*failed=*/responses_.size() < requests_.size());
    }
    conn_->Close();
  });
}

void HttpClient::SendNext() {
  // Keep up to pipeline_depth_ requests outstanding.
  while (next_request_ < requests_.size() &&
         next_request_ - responses_.size() < pipeline_depth_) {
    const HttpRequestSpec& spec = requests_[next_request_];
    std::string head = spec.method + " " + spec.target + " HTTP/1.1\r\n";
    head += "Host: origin\r\n";
    if (!spec.body.empty() || spec.method == "POST") {
      head += util::Format("Content-Length: %zu\r\n", spec.body.size());
    }
    head += "\r\n";
    util::Bytes wire = util::ToBytes(head);
    wire.insert(wire.end(), spec.body.begin(), spec.body.end());
    outbox_.insert(outbox_.end(), wire.begin(), wire.end());
    ++next_request_;
  }
  Pump();
}

void HttpClient::Pump() {
  while (sent_ < outbox_.size()) {
    const size_t n = conn_->Send(outbox_.data() + sent_, outbox_.size() - sent_);
    if (n == 0) {
      return;
    }
    sent_ += n;
  }
}

void HttpClient::HandleResponse(const reassembly::HttpMessage& resp) {
  body_bytes_ += resp.body.size();
  const std::string* encoding = resp.FindHeader(filters::HtypeFilter::kEncodingHeader);
  const std::string* content_type = resp.FindHeader("Content-Type");
  if (encoding != nullptr && *encoding == filters::HtypeFilter::kEncodingFrames) {
    // htype-compressed body: useful bytes are the decoded original bytes.
    auto decoded = filters::DecodeCompressedFrames(resp.body, nullptr);
    if (decoded.has_value()) {
      useful_bytes_ += decoded->size();
    }
  } else if (content_type != nullptr &&
             reassembly::ValueHasPrefix(*content_type,
                                        filters::HtypeFilter::kMediaContentType)) {
    useful_bytes_ += MediaUsefulBytes(resp.body);
  } else {
    useful_bytes_ += resp.body.size();
  }
  responses_.push_back(resp);
  if (responses_.size() == requests_.size()) {
    Finish(/*failed=*/false);
    return;
  }
  SendNext();
}

void HttpClient::Finish(bool failed) {
  if (finished_) {
    return;
  }
  finished_ = true;
  failed_ = failed;
  finished_at_ = host_->simulator()->Now();
  conn_->Close();
  if (on_finished_) {
    on_finished_();
  }
}

double HttpClient::UsefulGoodputBps(sim::TimePoint now) const {
  const sim::TimePoint end = finished_ ? finished_at_ : now;
  if (end <= started_at_) {
    return 0.0;
  }
  return static_cast<double>(useful_bytes_) * 8.0 / sim::DurationToSeconds(end - started_at_);
}

}  // namespace comma::apps

// Real-time layered media workload over UDP (thesis §1 "Data Reduction",
// §8.3 data manipulation).
//
// Frames carry the two-byte header the media filters understand:
// [layer, type]. A source emits frames at a constant rate, cycling through
// layers (0 = base, 1..n = enhancements); the sink tracks per-layer
// delivery, latency, and late frames.
#ifndef COMMA_APPS_MEDIA_H_
#define COMMA_APPS_MEDIA_H_

#include <array>
#include <functional>

#include "src/core/host.h"
#include "src/filters/media_filters.h"
#include "src/util/stats.h"

namespace comma::apps {

struct MediaSourceConfig {
  uint16_t port = 5004;
  sim::Duration frame_interval = 20 * sim::kMillisecond;  // 50 fps aggregate.
  size_t frame_body = 400;                                 // Bytes per frame.
  int layers = 3;
  uint8_t type = filters::kMediaTypeMonoImage;
};

class LayeredMediaSource {
 public:
  LayeredMediaSource(core::Host* host, net::Ipv4Address sink, const MediaSourceConfig& config);
  ~LayeredMediaSource();

  void Start();
  void Stop();
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return socket_->bytes_sent(); }

 private:
  void Tick();

  core::Host* host_;
  net::Ipv4Address sink_;
  MediaSourceConfig config_;
  std::unique_ptr<udp::UdpSocket> socket_;
  sim::TimerId timer_ = sim::kInvalidTimerId;
  uint64_t frames_sent_ = 0;
  uint32_t frame_index_ = 0;
};

class MediaSink {
 public:
  MediaSink(core::Host* host, uint16_t port, sim::Duration deadline = 200 * sim::kMillisecond);

  uint64_t frames_received() const { return frames_received_; }
  uint64_t frames_per_layer(int layer) const {
    return layer >= 0 && layer < 16 ? per_layer_[static_cast<size_t>(layer)] : 0;
  }
  uint64_t bytes_received() const { return socket_->bytes_received(); }
  // Frames whose in-network latency exceeded the deadline ("out of date by
  // the time they reach the proxy", §1).
  uint64_t late_frames() const { return late_frames_; }
  const util::Percentiles& latencies_ms() const { return latencies_ms_; }

 private:
  core::Host* host_;
  sim::Duration deadline_;
  std::unique_ptr<udp::UdpSocket> socket_;
  uint64_t frames_received_ = 0;
  uint64_t late_frames_ = 0;
  std::array<uint64_t, 16> per_layer_{};
  util::Percentiles latencies_ms_;
};

}  // namespace comma::apps

#endif  // COMMA_APPS_MEDIA_H_

// Bulk-transfer workload (FTP-style), the canonical TCP workload for the
// protocol experiments (E4, E5, E8...).
#ifndef COMMA_APPS_BULK_H_
#define COMMA_APPS_BULK_H_

#include <functional>
#include <memory>

#include "src/core/host.h"

namespace comma::apps {

// Payload generators.
util::Bytes PatternPayload(size_t n);   // High-entropy, incompressible.
util::Bytes TextPayload(size_t n);      // Repetitive text, compresses well.

// Accepts connections on a port and accumulates received bytes.
class BulkSink {
 public:
  BulkSink(core::Host* host, uint16_t port, const tcp::TcpConfig& config = {});

  const util::Bytes& received() const { return received_; }
  size_t bytes_received() const { return received_.size(); }
  bool closed() const { return closed_; }
  tcp::TcpConnection* connection() const { return conn_; }
  sim::TimePoint first_byte_at() const { return first_byte_at_; }
  sim::TimePoint last_byte_at() const { return last_byte_at_; }

  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

 private:
  core::Host* host_;
  tcp::TcpConnection* conn_ = nullptr;
  util::Bytes received_;
  bool closed_ = false;
  sim::TimePoint first_byte_at_ = 0;
  sim::TimePoint last_byte_at_ = 0;
  std::function<void()> on_complete_;
};

// Connects and pushes `payload` as fast as the send buffer allows, then
// closes. Tracks completion time.
class BulkSender {
 public:
  BulkSender(core::Host* host, net::Ipv4Address server, uint16_t port, util::Bytes payload,
             const tcp::TcpConfig& config = {});

  tcp::TcpConnection* connection() const { return conn_; }
  bool finished() const { return finished_; }
  sim::TimePoint started_at() const { return started_at_; }
  sim::TimePoint finished_at() const { return finished_at_; }
  // Goodput over the connection lifetime, bits/second (0 until finished).
  double GoodputBps() const;
  size_t payload_size() const { return payload_size_; }

  void set_on_finished(std::function<void()> cb) { on_finished_ = std::move(cb); }

 private:
  void Pump();

  core::Host* host_;
  tcp::TcpConnection* conn_;
  std::shared_ptr<util::Bytes> payload_;
  size_t offset_ = 0;  // Bytes of payload_ already accepted by the stack.
  size_t payload_size_;
  bool finished_ = false;
  sim::TimePoint started_at_;
  sim::TimePoint finished_at_ = 0;
  std::function<void()> on_finished_;
};

}  // namespace comma::apps

#endif  // COMMA_APPS_BULK_H_

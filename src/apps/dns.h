// DNS-over-UDP workload pair: a deterministic authoritative resolver and a
// repeating query client, exercising the dnscache filter (ROADMAP item 5).
#ifndef COMMA_APPS_DNS_H_
#define COMMA_APPS_DNS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/host.h"
#include "src/reassembly/dns_codec.h"

namespace comma::apps {

// The resolver fabricates A records deterministically from the name, so any
// component (client, cache, test) can predict the answer.
net::Ipv4Address DnsAddressFor(const std::string& name);

class DnsServer {
 public:
  static constexpr uint16_t kDnsPort = 53;

  // `ttl` is the TTL (seconds) stamped on every answer.
  DnsServer(core::Host* host, uint32_t ttl = 300, uint16_t port = kDnsPort);

  uint64_t queries_answered() const { return queries_answered_; }

 private:
  std::unique_ptr<udp::UdpSocket> socket_;
  uint32_t ttl_;
  uint64_t queries_answered_ = 0;
};

class DnsClient {
 public:
  using ResolveCallback = std::function<void(const reassembly::DnsMessage&)>;

  DnsClient(core::Host* host, net::Ipv4Address resolver, uint16_t port = DnsServer::kDnsPort);

  // Sends one A query. The callback fires when the matching response
  // arrives (from the resolver or a dnscache proxy — indistinguishable).
  void Resolve(const std::string& name, ResolveCallback cb);

  uint64_t queries_sent() const { return queries_sent_; }
  uint64_t responses_received() const { return responses_received_; }

 private:
  core::Host* host_;
  net::Ipv4Address resolver_;
  uint16_t resolver_port_;
  std::unique_ptr<udp::UdpSocket> socket_;
  uint16_t next_id_ = 1;
  std::map<uint16_t, ResolveCallback> pending_;
  uint64_t queries_sent_ = 0;
  uint64_t responses_received_ = 0;
};

}  // namespace comma::apps

#endif  // COMMA_APPS_DNS_H_

#include "src/apps/query.h"

namespace comma::apps {

QueryServer::QueryServer(core::Host* host, uint16_t port) {
  socket_ = host->udp().Bind(port);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint& from) {
    auto request = DecodeQueryRequest(data);
    if (!request.has_value()) {
      return;
    }
    ++queries_answered_;
    QueryResponse response;
    response.id = request->id;
    response.key = request->key;
    response.value = ValueFor(request->key);
    socket_->SendTo(from.addr, from.port, EncodeQueryResponse(response));
  });
}

util::Bytes QueryServer::ValueFor(const std::string& key) {
  // Deterministic 64-byte value: a simple keyed generator.
  util::Bytes value(64);
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  for (size_t i = 0; i < value.size(); ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    value[i] = static_cast<uint8_t>(h >> 56);
  }
  return value;
}

QueryClient::QueryClient(core::Host* host, net::Ipv4Address server, uint16_t port,
                         sim::Duration timeout, int max_retries)
    : host_(host), server_(server), port_(port), timeout_(timeout), max_retries_(max_retries) {
  socket_ = host_->udp().Bind(0);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint&) {
    auto response = DecodeQueryResponse(data);
    if (!response.has_value()) {
      return;
    }
    auto it = pending_.find(response->id);
    if (it == pending_.end()) {
      return;  // Late duplicate.
    }
    host_->simulator()->Cancel(it->second.timer);
    Callback cb = std::move(it->second.cb);
    latencies_ms_.Add(
        sim::DurationToSeconds(host_->simulator()->Now() - it->second.started) * 1000.0);
    pending_.erase(it);
    ++responses_received_;
    if (cb) {
      cb(true, response->value);
    }
  });
}

void QueryClient::Query(const std::string& key, Callback cb) {
  const uint32_t id = next_id_++;
  Pending pending;
  pending.key = key;
  pending.cb = std::move(cb);
  pending.started = host_->simulator()->Now();
  pending.retries_left = max_retries_;
  pending_[id] = std::move(pending);
  SendRequest(id);
}

void QueryClient::SendRequest(uint32_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  ++queries_sent_;
  socket_->SendTo(server_, port_, EncodeQueryRequest({id, it->second.key}));
  it->second.timer =
      host_->simulator()->ScheduleTimer(timeout_, [this, id] { OnTimeout(id); });
}

void QueryClient::OnTimeout(uint32_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  if (it->second.retries_left-- > 0) {
    SendRequest(id);
    return;
  }
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  ++failures_;
  if (cb) {
    cb(false, {});
  }
}

}  // namespace comma::apps

#include "src/apps/bulk.h"

#include <cstring>

namespace comma::apps {

util::Bytes PatternPayload(size_t n) {
  util::Bytes out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(i * 131 + (i >> 7) + (i >> 13));
  }
  return out;
}

util::Bytes TextPayload(size_t n) {
  static const char kPhrase[] =
      "Wireless networks are characterized by the generally low quality of service that they "
      "provide. In the face of user mobility between heterogeneous networks, distributed "
      "applications designed for wired networks have difficulty operating. ";
  util::Bytes out;
  out.reserve(n + sizeof(kPhrase));
  while (out.size() < n) {
    out.insert(out.end(), kPhrase, kPhrase + sizeof(kPhrase) - 1);
  }
  out.resize(n);
  return out;
}

BulkSink::BulkSink(core::Host* host, uint16_t port, const tcp::TcpConfig& config) : host_(host) {
  host_->tcp().Listen(
      port,
      [this](tcp::TcpConnection* conn) {
        conn_ = conn;
        conn->set_on_data([this](const util::Bytes& data) {
          if (received_.empty()) {
            first_byte_at_ = host_->simulator()->Now();
          }
          last_byte_at_ = host_->simulator()->Now();
          received_.insert(received_.end(), data.begin(), data.end());
        });
        conn->set_on_remote_close([this, conn] {
          conn->Close();
          closed_ = true;
          if (on_complete_) {
            on_complete_();
          }
        });
      },
      config);
}

BulkSender::BulkSender(core::Host* host, net::Ipv4Address server, uint16_t port,
                       util::Bytes payload, const tcp::TcpConfig& config)
    : host_(host),
      payload_(std::make_shared<util::Bytes>(std::move(payload))),
      payload_size_(payload_->size()),
      started_at_(host->simulator()->Now()) {
  conn_ = host_->tcp().Connect(server, port, config);
  conn_->set_on_connected([this] { Pump(); });
  conn_->set_on_writable([this] { Pump(); });
  conn_->set_on_closed([this] {
    if (!finished_) {
      finished_ = true;
      finished_at_ = host_->simulator()->Now();
      if (on_finished_) {
        on_finished_();
      }
    }
  });
}

void BulkSender::Pump() {
  // Advance an offset instead of erasing the front: erase memmoves the
  // whole remainder on every pump, turning an N-byte transfer into O(N^2)
  // copying on multi-megabyte payloads.
  while (offset_ < payload_->size()) {
    const size_t n = conn_->Send(payload_->data() + offset_, payload_->size() - offset_);
    if (n == 0) {
      return;
    }
    offset_ += n;
  }
  conn_->Close();
}

double BulkSender::GoodputBps() const {
  if (!finished_ || finished_at_ <= started_at_) {
    return 0.0;
  }
  return static_cast<double>(payload_size_) * 8.0 /
         sim::DurationToSeconds(finished_at_ - started_at_);
}

}  // namespace comma::apps

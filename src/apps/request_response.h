// Interactive request/response workload (telnet/RPC-style): measures
// per-exchange latency, the metric prioritization services improve (§8.2.2).
#ifndef COMMA_APPS_REQUEST_RESPONSE_H_
#define COMMA_APPS_REQUEST_RESPONSE_H_

#include <functional>

#include "src/core/host.h"
#include "src/util/stats.h"

namespace comma::apps {

// Echo-style server: replies to each `request_size`-byte request with a
// `response_size`-byte response.
class RequestResponseServer {
 public:
  RequestResponseServer(core::Host* host, uint16_t port, size_t request_size,
                        size_t response_size);

  uint64_t requests_served() const { return requests_served_; }

 private:
  core::Host* host_;
  size_t request_size_;
  size_t response_size_;
  uint64_t requests_served_ = 0;
};

// Sends `count` requests back-to-back (next sent when the full response
// arrives); records latency per exchange.
class RequestResponseClient {
 public:
  RequestResponseClient(core::Host* host, net::Ipv4Address server, uint16_t port,
                        size_t request_size, size_t response_size, int count);

  bool finished() const { return finished_; }
  int completed() const { return completed_; }
  const util::Percentiles& latencies_ms() const { return latencies_ms_; }
  void set_on_finished(std::function<void()> cb) { on_finished_ = std::move(cb); }

 private:
  void SendRequest();

  core::Host* host_;
  tcp::TcpConnection* conn_;
  size_t request_size_;
  size_t response_size_;
  int remaining_;
  int completed_ = 0;
  bool finished_ = false;
  size_t response_pending_ = 0;
  sim::TimePoint request_sent_at_ = 0;
  util::Percentiles latencies_ms_;
  std::function<void()> on_finished_;
};

}  // namespace comma::apps

#endif  // COMMA_APPS_REQUEST_RESPONSE_H_

#include "src/apps/media.h"

namespace comma::apps {

LayeredMediaSource::LayeredMediaSource(core::Host* host, net::Ipv4Address sink,
                                       const MediaSourceConfig& config)
    : host_(host), sink_(sink), config_(config) {
  socket_ = host_->udp().Bind(0);
}

LayeredMediaSource::~LayeredMediaSource() { Stop(); }

void LayeredMediaSource::Start() {
  if (timer_ == sim::kInvalidTimerId) {
    timer_ = host_->simulator()->ScheduleTimer(config_.frame_interval, [this] { Tick(); });
  }
}

void LayeredMediaSource::Stop() {
  if (timer_ != sim::kInvalidTimerId) {
    host_->simulator()->Cancel(timer_);
    timer_ = sim::kInvalidTimerId;
  }
}

void LayeredMediaSource::Tick() {
  timer_ = sim::kInvalidTimerId;
  // Frame layout: [layer, type, u64 send-time, body]. The timestamp lets the
  // sink measure in-network latency; filters only interpret the first two
  // bytes (data-type translation garbles the timestamp by design — it
  // rewrites the body).
  util::Bytes frame;
  frame.reserve(2 + 8 + config_.frame_body);
  frame.push_back(static_cast<uint8_t>(frame_index_ % static_cast<uint32_t>(config_.layers)));
  frame.push_back(config_.type);
  util::ByteWriter w(&frame);
  w.WriteU64(static_cast<uint64_t>(host_->simulator()->Now()));
  frame.insert(frame.end(), config_.frame_body, static_cast<uint8_t>(frame_index_));
  socket_->SendTo(sink_, config_.port, std::move(frame));
  ++frames_sent_;
  ++frame_index_;
  timer_ = host_->simulator()->ScheduleTimer(config_.frame_interval, [this] { Tick(); });
}

MediaSink::MediaSink(core::Host* host, uint16_t port, sim::Duration deadline)
    : host_(host), deadline_(deadline) {
  socket_ = host_->udp().Bind(port);
  socket_->set_on_receive([this](const util::Bytes& data, const udp::UdpEndpoint&) {
    if (data.size() < filters::kMediaHeaderSize) {
      return;
    }
    ++frames_received_;
    const uint8_t layer = data[0];
    if (layer < per_layer_.size()) {
      ++per_layer_[layer];
    }
    if (data.size() >= filters::kMediaHeaderSize + 8) {
      util::ByteReader r(data.data() + filters::kMediaHeaderSize, 8);
      const auto sent_at = static_cast<sim::TimePoint>(r.ReadU64());
      const sim::TimePoint now = host_->simulator()->Now();
      if (sent_at >= 0 && sent_at <= now) {
        const sim::Duration latency = now - sent_at;
        latencies_ms_.Add(sim::DurationToSeconds(latency) * 1000.0);
        if (latency > deadline_) {
          ++late_frames_;
        }
      }
    }
  });
}

}  // namespace comma::apps

// Per-node TCP stack: connection demultiplexing, listeners, port allocation.
#ifndef COMMA_TCP_TCP_STACK_H_
#define COMMA_TCP_TCP_STACK_H_

#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/net/node.h"
#include "src/tcp/tcp_connection.h"

namespace comma::tcp {

class TcpStack {
 public:
  using AcceptCallback = std::function<void(TcpConnection*)>;

  TcpStack(net::Node* node, sim::Random rng);
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // Active open from this node's primary address and an ephemeral port.
  TcpConnection* Connect(net::Ipv4Address remote, uint16_t remote_port,
                         const TcpConfig& config = {});
  // Active open with an explicit local port.
  TcpConnection* ConnectFrom(uint16_t local_port, net::Ipv4Address remote, uint16_t remote_port,
                             const TcpConfig& config = {});

  // Passive open: `on_accept` fires when a connection reaches ESTABLISHED.
  void Listen(uint16_t port, AcceptCallback on_accept, const TcpConfig& config = {});
  void CloseListener(uint16_t port);

  net::Node* node() const { return node_; }
  sim::Simulator* simulator() const { return node_->simulator(); }

  // --- Connection interface ---
  void SendPacket(net::PacketPtr packet) { node_->SendPacket(std::move(packet)); }
  uint32_t GenerateIss() { return static_cast<uint32_t>(rng_.NextU64()); }
  // Removes a fully closed connection from the demux map. The object stays
  // alive (owned by the stack) so applications can read final stats.
  void Retire(TcpConnection* conn);

  // Number of live (demuxable) connections.
  size_t ActiveConnections() const { return connections_.size(); }

  // Aggregate TcpStats over every connection this stack ever owned (live and
  // retired) — the per-node totals the metric registry exports as "tcp.*".
  TcpStats Totals() const;

  // Segments arriving with a bad TCP checksum are dropped (and counted), as
  // a real stack would; retransmission recovers them. Mutating proxy filters
  // must therefore leave checksums consistent — the `tcp` filter's job.
  uint64_t checksum_failures() const { return checksum_failures_; }

 private:
  using ConnKey = std::tuple<uint16_t, uint32_t, uint16_t>;  // local port, remote addr, remote port.

  void OnTcpPacket(net::PacketPtr packet);
  uint16_t AllocateEphemeralPort();
  static ConnKey KeyFor(uint16_t local_port, net::Ipv4Address remote, uint16_t remote_port) {
    return {local_port, remote.value(), remote_port};
  }

  struct Listener {
    AcceptCallback on_accept;
    TcpConfig config;
  };

  net::Node* node_;
  sim::Random rng_;
  std::map<ConnKey, TcpConnection*> connections_;
  std::vector<std::unique_ptr<TcpConnection>> owned_;
  std::map<uint16_t, Listener> listeners_;
  uint16_t next_ephemeral_ = 1024;
  uint64_t checksum_failures_ = 0;
};

}  // namespace comma::tcp

#endif  // COMMA_TCP_TCP_STACK_H_

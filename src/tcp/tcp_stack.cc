#include "src/tcp/tcp_stack.h"

#include <algorithm>

namespace comma::tcp {

TcpStack::TcpStack(net::Node* node, sim::Random rng) : node_(node), rng_(rng) {
  node_->RegisterProtocol(net::IpProtocol::kTcp,
                          [this](net::PacketPtr p) { OnTcpPacket(std::move(p)); });
}

uint16_t TcpStack::AllocateEphemeralPort() {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    uint16_t port = next_ephemeral_++;
    if (next_ephemeral_ == 0) {
      next_ephemeral_ = 1024;
    }
    if (port < 1024) {
      continue;
    }
    const bool in_use =
        listeners_.count(port) != 0 ||
        std::any_of(connections_.begin(), connections_.end(),
                    [port](const auto& kv) { return std::get<0>(kv.first) == port; });
    if (!in_use) {
      return port;
    }
  }
  return 0;
}

TcpConnection* TcpStack::Connect(net::Ipv4Address remote, uint16_t remote_port,
                                 const TcpConfig& config) {
  return ConnectFrom(AllocateEphemeralPort(), remote, remote_port, config);
}

TcpConnection* TcpStack::ConnectFrom(uint16_t local_port, net::Ipv4Address remote,
                                     uint16_t remote_port, const TcpConfig& config) {
  auto conn = std::make_unique<TcpConnection>(this, node_->PrimaryAddress(), local_port, remote,
                                              remote_port, config, GenerateIss());
  TcpConnection* raw = conn.get();
  connections_[KeyFor(local_port, remote, remote_port)] = raw;
  owned_.push_back(std::move(conn));
  raw->StartActiveOpen();
  return raw;
}

void TcpStack::Listen(uint16_t port, AcceptCallback on_accept, const TcpConfig& config) {
  listeners_[port] = Listener{std::move(on_accept), config};
}

void TcpStack::CloseListener(uint16_t port) { listeners_.erase(port); }

TcpStats TcpStack::Totals() const {
  TcpStats total;
  for (const auto& conn : owned_) {
    const TcpStats& s = conn->stats();
    total.bytes_sent += s.bytes_sent;
    total.bytes_retransmitted += s.bytes_retransmitted;
    total.bytes_received += s.bytes_received;
    total.segments_sent += s.segments_sent;
    total.segments_received += s.segments_received;
    total.retransmit_timeouts += s.retransmit_timeouts;
    total.fast_retransmits += s.fast_retransmits;
    total.dupacks_received += s.dupacks_received;
    total.dupacks_sent += s.dupacks_sent;
    total.out_of_order_segments += s.out_of_order_segments;
    total.zero_window_acks_received += s.zero_window_acks_received;
    total.persist_probes_sent += s.persist_probes_sent;
  }
  return total;
}

void TcpStack::Retire(TcpConnection* conn) {
  const ConnKey key = KeyFor(conn->local_port(), conn->remote_addr(), conn->remote_port());
  auto it = connections_.find(key);
  if (it != connections_.end() && it->second == conn) {
    connections_.erase(it);
  }
}

void TcpStack::OnTcpPacket(net::PacketPtr packet) {
  if (!packet->has_tcp()) {
    return;
  }
  if (!packet->VerifyChecksums()) {
    ++checksum_failures_;
    return;  // Corrupted in flight; the sender will retransmit.
  }
  const auto& h = packet->tcp();
  const ConnKey key = KeyFor(h.dst_port, packet->ip().src, h.src_port);

  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->HandleSegment(*packet);
    return;
  }

  // No connection: a SYN may match a listener.
  if ((h.flags & net::kTcpSyn) && !(h.flags & net::kTcpAck)) {
    auto lit = listeners_.find(h.dst_port);
    if (lit != listeners_.end()) {
      auto conn = std::make_unique<TcpConnection>(this, packet->ip().dst, h.dst_port,
                                                  packet->ip().src, h.src_port,
                                                  lit->second.config, GenerateIss());
      TcpConnection* raw = conn.get();
      connections_[key] = raw;
      owned_.push_back(std::move(conn));
      // Fire the accept callback once the three-way handshake completes.
      AcceptCallback on_accept = lit->second.on_accept;
      raw->set_on_connected([on_accept, raw] {
        if (on_accept) {
          on_accept(raw);
        }
      });
      raw->StartPassiveOpen(*packet);
      return;
    }
  }

  // No listener and no connection: refuse with RST (unless it was a RST).
  if (!(h.flags & net::kTcpRst)) {
    net::TcpHeader rst;
    rst.src_port = h.dst_port;
    rst.dst_port = h.src_port;
    rst.flags = net::kTcpRst | net::kTcpAck;
    rst.seq = h.ack;
    rst.ack = h.seq + TcpSegmentLength(*packet);
    node_->SendPacket(net::Packet::MakeTcp(packet->ip().dst, packet->ip().src, rst, {}));
  }
}

}  // namespace comma::tcp

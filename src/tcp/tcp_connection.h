// A TCP Reno connection endpoint (RFC 793 + RFC 2581 congestion control).
//
// Implements everything the thesis's transparent services interact with:
//  - sliding-window transfer with cumulative ACKs;
//  - Jacobson/Karn RTT estimation, exponential RTO backoff (§2.2);
//  - slow start, congestion avoidance, fast retransmit, fast recovery;
//  - zero-window stall + persist-timer probing (the mechanism BSSP-style
//    ZWSM services exploit, §8.2.2);
//  - out-of-order reassembly and immediate dupack generation (what Snoop
//    suppresses, §8.2.1);
//  - FIN/close handshake and TIME_WAIT.
//
// Connections are owned by a TcpStack; applications hold non-owning pointers
// and observe the connection through callbacks.
#ifndef COMMA_TCP_TCP_CONNECTION_H_
#define COMMA_TCP_TCP_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/net/node.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/tcp/seq.h"

namespace comma::tcp {

class TcpStack;

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

struct TcpConfig {
  uint32_t mss = 1000;                  // Payload bytes per segment.
  uint32_t recv_buffer = 32 * 1024;     // Advertised-window ceiling (<= 65535).
  uint32_t send_buffer = 64 * 1024;     // Send-side buffering cap.
  sim::Duration rto_min = 500 * sim::kMillisecond;   // 4.4BSD-era floor.
  sim::Duration rto_max = 64 * sim::kSecond;
  sim::Duration rto_initial = 3 * sim::kSecond;
  sim::Duration persist_min = 500 * sim::kMillisecond;
  sim::Duration persist_max = 60 * sim::kSecond;
  sim::Duration time_wait = 2 * sim::kSecond;        // 2*MSL, compressed for sim.
  uint32_t initial_cwnd_segments = 1;
  uint32_t max_syn_retries = 8;
  uint32_t max_data_retries = 12;
  // When true (default) received data is handed to on_data and the advertised
  // window never closes. When false, data accumulates in a receive queue the
  // application drains with Read(); the advertised window shrinks as the
  // queue fills (needed to exercise flow control / ZWSM behaviour).
  bool auto_consume = true;
};

struct TcpStats {
  uint64_t bytes_sent = 0;        // First transmissions only.
  uint64_t bytes_retransmitted = 0;
  uint64_t bytes_received = 0;    // In-order payload delivered.
  uint64_t segments_sent = 0;
  uint64_t segments_received = 0;
  uint64_t retransmit_timeouts = 0;
  uint64_t fast_retransmits = 0;
  uint64_t dupacks_received = 0;
  uint64_t dupacks_sent = 0;
  uint64_t out_of_order_segments = 0;
  uint64_t zero_window_acks_received = 0;
  uint64_t persist_probes_sent = 0;
};

class TcpConnection {
 public:
  using DataCallback = std::function<void(const util::Bytes&)>;
  using EventCallback = std::function<void()>;
  using ErrorCallback = std::function<void(const std::string&)>;

  TcpConnection(TcpStack* stack, net::Ipv4Address local_addr, uint16_t local_port,
                net::Ipv4Address remote_addr, uint16_t remote_port, const TcpConfig& config,
                uint32_t iss);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- Application interface ---
  // Queues bytes for transmission; returns the number accepted (bounded by
  // the send-buffer cap).
  size_t Send(const util::Bytes& data);
  size_t Send(const uint8_t* data, size_t len);
  // Drains up to `max` bytes of received data (auto_consume == false mode).
  util::Bytes Read(size_t max);
  // Graceful close: FIN after pending data drains.
  void Close();
  // Hard reset: sends RST and drops the connection.
  void Abort();

  void set_on_connected(EventCallback cb) { on_connected_ = std::move(cb); }
  void set_on_data(DataCallback cb) { on_data_ = std::move(cb); }
  void set_on_remote_close(EventCallback cb) { on_remote_close_ = std::move(cb); }
  void set_on_closed(EventCallback cb) { on_closed_ = std::move(cb); }
  void set_on_error(ErrorCallback cb) { on_error_ = std::move(cb); }
  void set_on_writable(EventCallback cb) { on_writable_ = std::move(cb); }

  // --- Introspection ---
  TcpState state() const { return state_; }
  const TcpStats& stats() const { return stats_; }
  net::Ipv4Address local_addr() const { return local_addr_; }
  uint16_t local_port() const { return local_port_; }
  net::Ipv4Address remote_addr() const { return remote_addr_; }
  uint16_t remote_port() const { return remote_port_; }
  uint32_t cwnd() const { return cwnd_; }
  uint32_t ssthresh() const { return ssthresh_; }
  sim::Duration current_rto() const { return rto_; }
  sim::Duration smoothed_rtt() const { return srtt_; }
  uint32_t peer_window() const { return snd_wnd_; }
  size_t BufferedSendBytes() const;
  size_t UnreadBytes() const { return recv_queue_.size(); }
  bool InPersistMode() const { return persist_timer_ != sim::kInvalidTimerId; }
  std::string Describe() const;

  // --- Stack interface (not for applications) ---
  void StartActiveOpen();
  void StartPassiveOpen(const net::Packet& syn);
  void HandleSegment(const net::Packet& p);

 private:
  friend class TcpStack;

  // Segment processing.
  void HandleSynSent(const net::Packet& p);
  void HandleListenStates(const net::Packet& p);
  void ProcessAck(const net::Packet& p);
  void ProcessPayload(const net::Packet& p);
  void ProcessFin(const net::Packet& p);

  // Transmission machinery.
  void TrySend();
  void SendSegment(uint32_t seq, size_t len, uint8_t flags);
  void SendAck();
  void SendSyn(bool with_ack);
  void SendFinIfNeeded();
  void SendReset();
  // Retransmits the oldest outstanding segment (data or FIN). Returns true
  // if anything was sent.
  bool RetransmitAtSndUna();
  void EmitSegment(uint32_t seq, uint8_t flags, util::Bytes payload);

  // Congestion control.
  void OnNewAckReno(uint32_t acked_bytes);
  void EnterFastRetransmit();
  void OnRetransmitTimeout();

  // Timers.
  void ArmRetransmitTimer();
  void CancelRetransmitTimer();
  void ArmPersistTimer();
  void CancelPersistTimer();
  void OnPersistTimeout();
  void EnterTimeWait();
  void BecomeClosed(const std::string& reason);

  // RTT sampling (Karn's rule: never sample retransmitted data).
  void MaybeStartRttSample(uint32_t seq, size_t len);
  void MaybeCompleteRttSample(uint32_t ack);
  void UpdateRtt(sim::Duration sample);

  uint16_t AdvertisedWindow() const;
  uint32_t FlightSize() const { return static_cast<uint32_t>(SeqDiff(snd_nxt_, snd_una_)); }
  // Bytes of send-buffer data at or after snd_una_.
  size_t SendableBacklog() const;
  void DeliverInOrderData();

  TcpStack* stack_;
  net::Ipv4Address local_addr_;
  uint16_t local_port_;
  net::Ipv4Address remote_addr_;
  uint16_t remote_port_;
  TcpConfig config_;

  TcpState state_ = TcpState::kClosed;

  // --- Send state (RFC 793 names) ---
  uint32_t iss_;        // Initial send sequence.
  uint32_t snd_una_;    // Oldest unacknowledged.
  uint32_t snd_nxt_;    // Next sequence to send.
  uint32_t snd_wnd_ = 0;  // Peer-advertised window.
  // Bytes the application queued; front() corresponds to sequence snd_buf_seq_.
  std::deque<uint8_t> send_buffer_;
  uint32_t snd_buf_seq_ = 0;  // Sequence number of send_buffer_.front().
  bool fin_pending_ = false;  // App closed; FIN goes out after data.
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;

  // --- Congestion control ---
  uint32_t cwnd_;
  uint32_t ssthresh_ = 65535;
  uint32_t dupack_count_ = 0;
  bool in_fast_recovery_ = false;
  uint32_t recover_ = 0;  // Highest seq outstanding when loss was detected.
  uint32_t bytes_acked_partial_ = 0;  // Congestion-avoidance accumulator.

  // --- RTT estimation ---
  bool rtt_sampling_ = false;
  uint32_t rtt_seq_ = 0;
  sim::TimePoint rtt_start_ = 0;
  sim::Duration srtt_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_;
  uint32_t backoff_shift_ = 0;
  uint32_t retries_ = 0;

  // --- Receive state ---
  uint32_t irs_ = 0;     // Initial receive sequence.
  uint32_t rcv_nxt_ = 0;
  std::map<uint32_t, util::Bytes> reassembly_;  // Out-of-order segments by seq.
  std::deque<uint8_t> recv_queue_;              // Unread in-order data.
  bool fin_received_ = false;
  uint32_t fin_rcv_seq_ = 0;

  // --- Timers ---
  sim::TimerId retransmit_timer_ = sim::kInvalidTimerId;
  sim::TimerId persist_timer_ = sim::kInvalidTimerId;
  sim::TimerId time_wait_timer_ = sim::kInvalidTimerId;
  uint32_t persist_backoff_shift_ = 0;

  TcpStats stats_;

  DataCallback on_data_;
  EventCallback on_connected_;
  EventCallback on_remote_close_;
  EventCallback on_closed_;
  EventCallback on_writable_;
  ErrorCallback on_error_;
};

}  // namespace comma::tcp

#endif  // COMMA_TCP_TCP_CONNECTION_H_

#include "src/tcp/tcp_connection.h"

#include <algorithm>

#include "src/tcp/tcp_stack.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace comma::tcp {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(TcpStack* stack, net::Ipv4Address local_addr, uint16_t local_port,
                             net::Ipv4Address remote_addr, uint16_t remote_port,
                             const TcpConfig& config, uint32_t iss)
    : stack_(stack),
      local_addr_(local_addr),
      local_port_(local_port),
      remote_addr_(remote_addr),
      remote_port_(remote_port),
      config_(config),
      iss_(iss),
      snd_una_(iss),
      snd_nxt_(iss),
      snd_buf_seq_(iss + 1),
      cwnd_(config.initial_cwnd_segments * config.mss),
      rto_(config.rto_initial) {
  config_.recv_buffer = std::min<uint32_t>(config_.recv_buffer, 65535);
}

TcpConnection::~TcpConnection() {
  CancelRetransmitTimer();
  CancelPersistTimer();
  if (time_wait_timer_ != sim::kInvalidTimerId) {
    stack_->simulator()->Cancel(time_wait_timer_);
  }
}

// ---------------------------------------------------------------------------
// Application interface
// ---------------------------------------------------------------------------

size_t TcpConnection::Send(const util::Bytes& data) { return Send(data.data(), data.size()); }

size_t TcpConnection::Send(const uint8_t* data, size_t len) {
  if (fin_pending_ || fin_sent_ || state_ == TcpState::kClosed ||
      state_ == TcpState::kTimeWait || state_ == TcpState::kLastAck) {
    return 0;
  }
  const size_t space =
      config_.send_buffer > send_buffer_.size() ? config_.send_buffer - send_buffer_.size() : 0;
  const size_t accepted = std::min(len, space);
  send_buffer_.insert(send_buffer_.end(), data, data + accepted);
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    TrySend();
  }
  return accepted;
}

util::Bytes TcpConnection::Read(size_t max) {
  const size_t n = std::min(max, recv_queue_.size());
  util::Bytes out(recv_queue_.begin(), recv_queue_.begin() + static_cast<long>(n));
  recv_queue_.erase(recv_queue_.begin(), recv_queue_.begin() + static_cast<long>(n));
  if (n > 0 && state_ != TcpState::kClosed) {
    // Window may have re-opened; let the peer know.
    SendAck();
  }
  return out;
}

void TcpConnection::Close() {
  switch (state_) {
    case TcpState::kSynSent:
      BecomeClosed("closed before establishment");
      return;
    case TcpState::kEstablished:
    case TcpState::kSynReceived:
    case TcpState::kCloseWait:
      fin_pending_ = true;
      TrySend();
      return;
    default:
      return;  // Already closing or closed.
  }
}

void TcpConnection::Abort() {
  if (state_ != TcpState::kClosed) {
    SendReset();
    BecomeClosed("aborted");
  }
}

size_t TcpConnection::BufferedSendBytes() const { return send_buffer_.size(); }

std::string TcpConnection::Describe() const {
  return util::Format("%s:%u -> %s:%u %s", local_addr_.ToString().c_str(), local_port_,
                      remote_addr_.ToString().c_str(), remote_port_, TcpStateName(state_));
}

// ---------------------------------------------------------------------------
// Open handshakes
// ---------------------------------------------------------------------------

void TcpConnection::StartActiveOpen() {
  state_ = TcpState::kSynSent;
  SendSyn(/*with_ack=*/false);
  snd_nxt_ = iss_ + 1;
  ArmRetransmitTimer();
}

void TcpConnection::StartPassiveOpen(const net::Packet& syn) {
  irs_ = syn.tcp().seq;
  rcv_nxt_ = irs_ + 1;
  snd_wnd_ = syn.tcp().window;
  state_ = TcpState::kSynReceived;
  SendSyn(/*with_ack=*/true);
  snd_nxt_ = iss_ + 1;
  ArmRetransmitTimer();
}

void TcpConnection::SendSyn(bool with_ack) {
  uint8_t flags = net::kTcpSyn;
  if (with_ack) {
    flags |= net::kTcpAck;
  }
  EmitSegment(iss_, flags, {});
}

// ---------------------------------------------------------------------------
// Segment arrival
// ---------------------------------------------------------------------------

void TcpConnection::HandleSegment(const net::Packet& p) {
  ++stats_.segments_received;

  if (p.tcp().flags & net::kTcpRst) {
    if (state_ != TcpState::kClosed) {
      BecomeClosed("connection reset by peer");
      if (on_error_) {
        on_error_("connection reset by peer");
      }
    }
    return;
  }

  switch (state_) {
    case TcpState::kClosed:
      return;
    case TcpState::kSynSent:
      HandleSynSent(p);
      return;
    case TcpState::kSynReceived: {
      if (p.tcp().flags & net::kTcpSyn) {
        // Retransmitted SYN: our SYN+ACK was lost.
        SendSyn(/*with_ack=*/true);
        return;
      }
      if ((p.tcp().flags & net::kTcpAck) && SeqGeq(p.tcp().ack, iss_ + 1)) {
        state_ = TcpState::kEstablished;
        snd_una_ = SeqMax(snd_una_, iss_ + 1);
        CancelRetransmitTimer();
        retries_ = 0;
        if (on_connected_) {
          on_connected_();
        }
        // Fall through to normal processing: the ACK may carry data.
        ProcessAck(p);
        ProcessPayload(p);
        ProcessFin(p);
        TrySend();
      }
      return;
    }
    case TcpState::kTimeWait:
      // Retransmitted FIN: re-ack it.
      if (p.tcp().flags & net::kTcpFin) {
        SendAck();
      }
      return;
    default:
      ProcessAck(p);
      ProcessPayload(p);
      ProcessFin(p);
      if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait ||
          state_ == TcpState::kFinWait1 || state_ == TcpState::kLastAck ||
          state_ == TcpState::kClosing) {
        TrySend();
      }
      return;
  }
}

void TcpConnection::HandleSynSent(const net::Packet& p) {
  const auto& h = p.tcp();
  if (!(h.flags & net::kTcpSyn)) {
    return;
  }
  if ((h.flags & net::kTcpAck) && !SeqGeq(h.ack, iss_ + 1)) {
    return;  // Stale ack.
  }
  irs_ = h.seq;
  rcv_nxt_ = h.seq + 1;
  snd_wnd_ = h.window;
  if (h.flags & net::kTcpAck) {
    snd_una_ = h.ack;
    state_ = TcpState::kEstablished;
    CancelRetransmitTimer();
    retries_ = 0;
    backoff_shift_ = 0;
    SendAck();
    if (on_connected_) {
      on_connected_();
    }
    TrySend();
  } else {
    // Simultaneous open.
    state_ = TcpState::kSynReceived;
    SendSyn(/*with_ack=*/true);
  }
}

void TcpConnection::ProcessAck(const net::Packet& p) {
  const auto& h = p.tcp();
  if (!(h.flags & net::kTcpAck)) {
    return;
  }
  const uint32_t ack = h.ack;
  if (SeqGt(ack, snd_nxt_)) {
    SendAck();  // Acks data we never sent.
    return;
  }
  if (SeqLt(ack, snd_una_)) {
    return;  // Old ack.
  }

  const bool window_was_zero = (snd_wnd_ == 0);
  snd_wnd_ = h.window;
  if (snd_wnd_ == 0) {
    ++stats_.zero_window_acks_received;
  }

  if (SeqGt(ack, snd_una_)) {
    const uint32_t acked = static_cast<uint32_t>(SeqDiff(ack, snd_una_));
    // Trim acknowledged bytes from the send buffer (FIN/SYN occupy sequence
    // space but no buffer bytes, hence the min()).
    if (SeqGt(ack, snd_buf_seq_)) {
      const size_t trim =
          std::min<size_t>(static_cast<uint32_t>(SeqDiff(ack, snd_buf_seq_)), send_buffer_.size());
      send_buffer_.erase(send_buffer_.begin(), send_buffer_.begin() + static_cast<long>(trim));
      snd_buf_seq_ += static_cast<uint32_t>(trim);
    }
    snd_una_ = ack;
    COMMA_DCHECK(SeqLeq(snd_una_, snd_nxt_)) << "snd_una overran snd_nxt";
    retries_ = 0;
    backoff_shift_ = 0;
    MaybeCompleteRttSample(ack);

    if (in_fast_recovery_) {
      if (SeqGeq(ack, recover_)) {
        // Full recovery (NewReno): deflate and resume congestion avoidance.
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;
        dupack_count_ = 0;
      } else {
        // Partial ack: the next hole is lost too; retransmit it immediately.
        if (RetransmitAtSndUna()) {
          ++stats_.fast_retransmits;
        }
        cwnd_ = (cwnd_ > acked ? cwnd_ - acked : config_.mss) + config_.mss;
        ArmRetransmitTimer();
      }
    } else {
      dupack_count_ = 0;
      OnNewAckReno(acked);
    }

    if (fin_sent_ && SeqGt(ack, fin_seq_)) {
      // Our FIN is acknowledged.
      switch (state_) {
        case TcpState::kFinWait1:
          state_ = fin_received_ ? TcpState::kTimeWait : TcpState::kFinWait2;
          if (state_ == TcpState::kTimeWait) {
            EnterTimeWait();
          }
          break;
        case TcpState::kClosing:
          EnterTimeWait();
          break;
        case TcpState::kLastAck:
          BecomeClosed("closed");
          return;
        default:
          break;
      }
    }

    if (snd_una_ == snd_nxt_) {
      CancelRetransmitTimer();
    } else {
      ArmRetransmitTimer();
    }
    if (on_writable_ && send_buffer_.size() < config_.send_buffer) {
      on_writable_();
    }
  } else if (ack == snd_una_) {
    // Potential duplicate ack (RFC 5681: no data, no window change, data
    // outstanding). Window updates are processed but don't count as dupacks.
    const bool is_dupack = p.payload().empty() && !(h.flags & (net::kTcpSyn | net::kTcpFin)) &&
                           FlightSize() > 0 && !window_was_zero && snd_wnd_ != 0;
    if (is_dupack) {
      ++stats_.dupacks_received;
      if (in_fast_recovery_) {
        cwnd_ += config_.mss;  // Inflate.
      } else if (++dupack_count_ == 3) {
        EnterFastRetransmit();
      }
    }
  }

  // Zero-window handling (thesis §8.2.2): a zero window stalls transmission;
  // the persist timer keeps probing so the connection stays alive
  // indefinitely. When the window re-opens, restart from snd_una_ at once —
  // this is the "restart faster" property ZWSM services rely on.
  if (snd_wnd_ == 0) {
    if (SendableBacklog() > 0 || FlightSize() > 0) {
      CancelRetransmitTimer();
      ArmPersistTimer();
    }
  } else {
    if (window_was_zero) {
      CancelPersistTimer();
      persist_backoff_shift_ = 0;
      if (FlightSize() > 0) {
        snd_nxt_ = snd_una_;  // Go-back-N restart after the stall.
      }
    }
  }
}

void TcpConnection::ProcessPayload(const net::Packet& p) {
  if (p.payload().empty()) {
    return;
  }
  const uint32_t seg_seq = p.tcp().seq;
  const util::Bytes& data = p.payload();
  const uint32_t seg_end = seg_seq + static_cast<uint32_t>(data.size());

  if (SeqLeq(seg_end, rcv_nxt_)) {
    // Entirely old data (retransmission already delivered): re-ack.
    SendAck();
    return;
  }
  if (SeqGt(seg_seq, rcv_nxt_)) {
    // Out of order: stash for reassembly and emit a duplicate ack.
    ++stats_.out_of_order_segments;
    const size_t window = AdvertisedWindow();
    if (window > 0 && SeqLt(seg_seq, rcv_nxt_ + static_cast<uint32_t>(window))) {
      auto [it, inserted] = reassembly_.try_emplace(seg_seq, data);
      if (!inserted && it->second.size() < data.size()) {
        it->second = data;
      }
    }
    ++stats_.dupacks_sent;
    SendAck();
    return;
  }

  // In-order (possibly with stale prefix): trim and accept up to our window.
  const size_t skip = static_cast<uint32_t>(SeqDiff(rcv_nxt_, seg_seq));
  size_t take = data.size() - skip;
  take = std::min<size_t>(take, AdvertisedWindow());
  if (take == 0) {
    SendAck();  // Window full: discard, re-advertise.
    return;
  }
  recv_queue_.insert(recv_queue_.end(), data.begin() + static_cast<long>(skip),
                     data.begin() + static_cast<long>(skip + take));
  rcv_nxt_ += static_cast<uint32_t>(take);
  stats_.bytes_received += take;
  DeliverInOrderData();
  SendAck();
}

void TcpConnection::DeliverInOrderData() {
  // Pull any now-contiguous reassembly segments.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = reassembly_.begin(); it != reassembly_.end();) {
      const uint32_t seq = it->first;
      const util::Bytes& seg = it->second;
      const uint32_t end = seq + static_cast<uint32_t>(seg.size());
      if (SeqLeq(end, rcv_nxt_)) {
        it = reassembly_.erase(it);  // Fully stale.
        continue;
      }
      if (SeqLeq(seq, rcv_nxt_)) {
        const size_t skip = static_cast<uint32_t>(SeqDiff(rcv_nxt_, seq));
        size_t take = seg.size() - skip;
        take = std::min<size_t>(take, AdvertisedWindow());
        if (take > 0) {
          recv_queue_.insert(recv_queue_.end(), seg.begin() + static_cast<long>(skip),
                             seg.begin() + static_cast<long>(skip + take));
          rcv_nxt_ += static_cast<uint32_t>(take);
          stats_.bytes_received += take;
          progressed = true;
        }
        it = reassembly_.erase(it);
        continue;
      }
      ++it;
    }
  }
  if (config_.auto_consume && !recv_queue_.empty() && on_data_) {
    util::Bytes chunk(recv_queue_.begin(), recv_queue_.end());
    recv_queue_.clear();
    on_data_(chunk);
  }
}

void TcpConnection::ProcessFin(const net::Packet& p) {
  if (!(p.tcp().flags & net::kTcpFin)) {
    return;
  }
  const uint32_t fin_seq = p.tcp().seq + static_cast<uint32_t>(p.payload().size());
  if (SeqGt(fin_seq, rcv_nxt_)) {
    // FIN beyond in-order data (data before it was lost): dupack, wait.
    SendAck();
    return;
  }
  if (fin_received_) {
    SendAck();  // Retransmitted FIN.
    return;
  }
  fin_received_ = true;
  fin_rcv_seq_ = fin_seq;
  rcv_nxt_ = fin_seq + 1;
  SendAck();
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      // Our FIN not yet acked: simultaneous close.
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      EnterTimeWait();
      break;
    default:
      break;
  }
  if (on_remote_close_) {
    on_remote_close_();
  }
}

// ---------------------------------------------------------------------------
// Transmission
// ---------------------------------------------------------------------------

bool TcpConnection::RetransmitAtSndUna() {
  // Retransmit the oldest unacknowledged segment: real buffer bytes if any
  // remain at snd_una_, otherwise a bare FIN if that is what is outstanding.
  const uint32_t buf_end = snd_buf_seq_ + static_cast<uint32_t>(send_buffer_.size());
  const size_t data_avail =
      SeqLt(snd_una_, buf_end) ? static_cast<uint32_t>(SeqDiff(buf_end, snd_una_)) : 0;
  const size_t len = std::min<size_t>(config_.mss, data_avail);
  if (len > 0) {
    SendSegment(snd_una_, len, net::kTcpAck);
    stats_.bytes_retransmitted += len;
    return true;
  }
  if (fin_sent_ && SeqLeq(snd_una_, fin_seq_)) {
    EmitSegment(fin_seq_, net::kTcpFin | net::kTcpAck, {});
    return true;
  }
  return false;
}

size_t TcpConnection::SendableBacklog() const {
  const uint32_t buf_end = snd_buf_seq_ + static_cast<uint32_t>(send_buffer_.size());
  if (SeqGeq(snd_nxt_, buf_end)) {
    return 0;
  }
  return static_cast<uint32_t>(SeqDiff(buf_end, snd_nxt_));
}

void TcpConnection::TrySend() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck &&
      state_ != TcpState::kClosing) {
    return;
  }

  while (true) {
    const uint32_t window = std::min(cwnd_, snd_wnd_);
    const uint32_t flight = FlightSize();
    if (window <= flight) {
      break;
    }
    const size_t usable = window - flight;
    const size_t backlog = SendableBacklog();
    const size_t len = std::min({static_cast<size_t>(config_.mss), backlog, usable});
    if (len == 0) {
      break;
    }
    SendSegment(snd_nxt_, len, net::kTcpAck);
    stats_.bytes_sent += len;
    MaybeStartRttSample(snd_nxt_, len);
    snd_nxt_ += static_cast<uint32_t>(len);
  }

  SendFinIfNeeded();

  if (FlightSize() > 0 && retransmit_timer_ == sim::kInvalidTimerId &&
      persist_timer_ == sim::kInvalidTimerId) {
    ArmRetransmitTimer();
  }
  if (snd_wnd_ == 0 && (SendableBacklog() > 0 || fin_pending_) &&
      persist_timer_ == sim::kInvalidTimerId) {
    CancelRetransmitTimer();
    ArmPersistTimer();
  }
}

void TcpConnection::SendFinIfNeeded() {
  if (!fin_pending_ || fin_sent_ || SendableBacklog() > 0) {
    return;
  }
  // All data is out; send FIN (it rides the next sequence number).
  fin_seq_ = snd_nxt_;
  EmitSegment(snd_nxt_, net::kTcpFin | net::kTcpAck, {});
  snd_nxt_ += 1;
  fin_sent_ = true;
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      break;
    default:
      break;
  }
  ArmRetransmitTimer();
}

void TcpConnection::SendSegment(uint32_t seq, size_t len, uint8_t flags) {
  // Extract payload bytes [seq, seq+len) from the send buffer.
  COMMA_DCHECK(SeqLeq(snd_buf_seq_, seq)) << "segment seq precedes the send buffer base";
  util::Bytes payload;
  if (len > 0) {
    const size_t offset = static_cast<uint32_t>(SeqDiff(seq, snd_buf_seq_));
    const size_t avail = send_buffer_.size() > offset ? send_buffer_.size() - offset : 0;
    const size_t n = std::min(len, avail);
    payload.assign(send_buffer_.begin() + static_cast<long>(offset),
                   send_buffer_.begin() + static_cast<long>(offset + n));
  }
  if (fin_sent_ && seq + static_cast<uint32_t>(payload.size()) == fin_seq_) {
    flags |= net::kTcpFin;  // The segment ends exactly where the FIN sits.
  }
  EmitSegment(seq, flags, std::move(payload));
}

void TcpConnection::SendAck() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kListen ||
      state_ == TcpState::kSynSent) {
    return;
  }
  EmitSegment(snd_nxt_, net::kTcpAck, {});
}

void TcpConnection::SendReset() {
  net::TcpHeader h;
  h.src_port = local_port_;
  h.dst_port = remote_port_;
  h.seq = snd_nxt_;
  h.ack = rcv_nxt_;
  h.flags = net::kTcpRst | net::kTcpAck;
  h.window = 0;
  stack_->SendPacket(net::Packet::MakeTcp(local_addr_, remote_addr_, h, {}));
}

void TcpConnection::EmitSegment(uint32_t seq, uint8_t flags, util::Bytes payload) {
  net::TcpHeader h;
  h.src_port = local_port_;
  h.dst_port = remote_port_;
  h.seq = seq;
  h.ack = (flags & net::kTcpAck) ? rcv_nxt_ : 0;
  h.flags = flags;
  h.window = AdvertisedWindow();
  ++stats_.segments_sent;
  stack_->SendPacket(net::Packet::MakeTcp(local_addr_, remote_addr_, h, std::move(payload)));
}

uint16_t TcpConnection::AdvertisedWindow() const {
  size_t pending = recv_queue_.size();
  if (pending >= config_.recv_buffer) {
    return 0;
  }
  return static_cast<uint16_t>(
      std::min<size_t>(config_.recv_buffer - pending, 65535));
}

// ---------------------------------------------------------------------------
// Congestion control
// ---------------------------------------------------------------------------

void TcpConnection::OnNewAckReno(uint32_t acked_bytes) {
  if (cwnd_ < ssthresh_) {
    // Slow start: exponential growth.
    cwnd_ += std::min(acked_bytes, config_.mss);
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    bytes_acked_partial_ += acked_bytes;
    if (bytes_acked_partial_ >= cwnd_) {
      bytes_acked_partial_ -= cwnd_;
      cwnd_ += config_.mss;
    }
  }
  cwnd_ = std::min<uint32_t>(cwnd_, 10 * 1024 * 1024);
}

void TcpConnection::EnterFastRetransmit() {
  ++stats_.fast_retransmits;
  ssthresh_ = std::max(FlightSize() / 2, 2 * config_.mss);
  recover_ = snd_nxt_;
  in_fast_recovery_ = true;
  RetransmitAtSndUna();  // Retransmit the missing segment.
  cwnd_ = ssthresh_ + 3 * config_.mss;
  rtt_sampling_ = false;  // Karn: invalidate the sample.
  ArmRetransmitTimer();
}

void TcpConnection::OnRetransmitTimeout() {
  retransmit_timer_ = sim::kInvalidTimerId;
  ++stats_.retransmit_timeouts;
  ++retries_;

  const uint32_t max_retries =
      (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived)
          ? config_.max_syn_retries
          : config_.max_data_retries;
  if (retries_ > max_retries) {
    BecomeClosed("retransmission limit exceeded");
    if (on_error_) {
      on_error_("retransmission limit exceeded");
    }
    return;
  }

  rtt_sampling_ = false;  // Karn's rule.
  backoff_shift_ = std::min<uint32_t>(backoff_shift_ + 1, 12);

  if (state_ == TcpState::kSynSent) {
    SendSyn(/*with_ack=*/false);
    ArmRetransmitTimer();
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    SendSyn(/*with_ack=*/true);
    ArmRetransmitTimer();
    return;
  }

  // A zero peer window means this is a stall, not congestion: hand off to the
  // persist machinery instead of retransmitting into a closed window.
  if (snd_wnd_ == 0) {
    ArmPersistTimer();
    return;
  }

  // Congestion response: collapse to one segment, back off, go-back-N.
  ssthresh_ = std::max(FlightSize() / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  in_fast_recovery_ = false;
  dupack_count_ = 0;
  bytes_acked_partial_ = 0;

  if (FlightSize() > 0) {
    RetransmitAtSndUna();
  }
  ArmRetransmitTimer();
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void TcpConnection::ArmRetransmitTimer() {
  CancelRetransmitTimer();
  sim::Duration timeout = std::min<sim::Duration>(rto_ << backoff_shift_, config_.rto_max);
  retransmit_timer_ =
      stack_->simulator()->ScheduleTimer(timeout, [this] { OnRetransmitTimeout(); });
}

void TcpConnection::CancelRetransmitTimer() {
  if (retransmit_timer_ != sim::kInvalidTimerId) {
    stack_->simulator()->Cancel(retransmit_timer_);
    retransmit_timer_ = sim::kInvalidTimerId;
  }
}

void TcpConnection::ArmPersistTimer() {
  if (persist_timer_ != sim::kInvalidTimerId) {
    return;
  }
  sim::Duration timeout = std::min<sim::Duration>(
      config_.persist_min << persist_backoff_shift_, config_.persist_max);
  persist_timer_ = stack_->simulator()->ScheduleTimer(timeout, [this] { OnPersistTimeout(); });
}

void TcpConnection::CancelPersistTimer() {
  if (persist_timer_ != sim::kInvalidTimerId) {
    stack_->simulator()->Cancel(persist_timer_);
    persist_timer_ = sim::kInvalidTimerId;
  }
}

void TcpConnection::OnPersistTimeout() {
  persist_timer_ = sim::kInvalidTimerId;
  if (snd_wnd_ != 0) {
    TrySend();  // Window opened while the timer was pending.
    return;
  }
  // Send a one-byte window probe from the front of the unacknowledged data.
  const uint32_t buf_end = snd_buf_seq_ + static_cast<uint32_t>(send_buffer_.size());
  if (SeqLt(snd_una_, buf_end)) {
    ++stats_.persist_probes_sent;
    SendSegment(snd_una_, 1, net::kTcpAck);
    snd_nxt_ = SeqMax(snd_nxt_, snd_una_ + 1);
  } else if (fin_pending_ && !fin_sent_) {
    ++stats_.persist_probes_sent;
    SendFinIfNeeded();
  }
  persist_backoff_shift_ = std::min<uint32_t>(persist_backoff_shift_ + 1, 7);
  ArmPersistTimer();
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  CancelRetransmitTimer();
  CancelPersistTimer();
  time_wait_timer_ = stack_->simulator()->ScheduleTimer(config_.time_wait, [this] {
    time_wait_timer_ = sim::kInvalidTimerId;
    BecomeClosed("closed");
  });
}

void TcpConnection::BecomeClosed(const std::string& reason) {
  if (state_ == TcpState::kClosed) {
    return;
  }
  state_ = TcpState::kClosed;
  CancelRetransmitTimer();
  CancelPersistTimer();
  if (time_wait_timer_ != sim::kInvalidTimerId) {
    stack_->simulator()->Cancel(time_wait_timer_);
    time_wait_timer_ = sim::kInvalidTimerId;
  }
  stack_->node()->tracer().Logf(sim::TraceLevel::kDebug, "tcp", "%s: %s", Describe().c_str(),
                                reason.c_str());
  stack_->Retire(this);
  if (on_closed_) {
    on_closed_();
  }
}

// ---------------------------------------------------------------------------
// RTT estimation (Jacobson/Karels; Karn's rule via rtt_sampling_ flag)
// ---------------------------------------------------------------------------

void TcpConnection::MaybeStartRttSample(uint32_t seq, size_t len) {
  if (rtt_sampling_) {
    return;
  }
  rtt_sampling_ = true;
  rtt_seq_ = seq + static_cast<uint32_t>(len);
  rtt_start_ = stack_->simulator()->Now();
}

void TcpConnection::MaybeCompleteRttSample(uint32_t ack) {
  if (!rtt_sampling_ || SeqLt(ack, rtt_seq_)) {
    return;
  }
  rtt_sampling_ = false;
  UpdateRtt(stack_->simulator()->Now() - rtt_start_);
}

void TcpConnection::UpdateRtt(sim::Duration sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const sim::Duration err = sample - srtt_;
    srtt_ += err / 8;
    rttvar_ += ((err < 0 ? -err : err) - rttvar_) / 4;
  }
  rto_ = srtt_ + std::max<sim::Duration>(4 * rttvar_, 10 * sim::kMillisecond);
  rto_ = std::clamp(rto_, config_.rto_min, config_.rto_max);
}

}  // namespace comma::tcp

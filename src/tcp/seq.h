// Modular 32-bit sequence-number arithmetic (RFC 793 §3.3).
#ifndef COMMA_TCP_SEQ_H_
#define COMMA_TCP_SEQ_H_

#include <cstdint>

namespace comma::tcp {

// Signed distance from `a` to `b` in sequence space.
constexpr int32_t SeqDiff(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b); }

constexpr bool SeqLt(uint32_t a, uint32_t b) { return SeqDiff(a, b) < 0; }
constexpr bool SeqLeq(uint32_t a, uint32_t b) { return SeqDiff(a, b) <= 0; }
constexpr bool SeqGt(uint32_t a, uint32_t b) { return SeqDiff(a, b) > 0; }
constexpr bool SeqGeq(uint32_t a, uint32_t b) { return SeqDiff(a, b) >= 0; }

constexpr uint32_t SeqMax(uint32_t a, uint32_t b) { return SeqGt(a, b) ? a : b; }
constexpr uint32_t SeqMin(uint32_t a, uint32_t b) { return SeqLt(a, b) ? a : b; }

}  // namespace comma::tcp

#endif  // COMMA_TCP_SEQ_H_

#include "src/obs/metric_registry.h"

#include <algorithm>

#include "src/util/strings.h"

namespace comma::obs {

namespace {

// Formats a double the way both the text and JSON renderings want it:
// integers without a fraction, everything else with enough precision to
// round-trip typical metric magnitudes.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::abs(v) < 1e15) {
    return util::Format("%lld", static_cast<long long>(v));
  }
  return util::Format("%.6g", v);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGaugeLocked(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return GetGaugeLocked(name);
}

HistogramMetric* MetricRegistry::GetHistogram(const std::string& name, double lo, double hi,
                                              size_t buckets) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<HistogramMetric>(lo, hi, buckets)).first;
  }
  return it->second.get();
}

void MetricRegistry::RegisterCounterSource(const std::string& name, CounterSource source) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  counter_sources_[name] = std::move(source);
}

void MetricRegistry::RegisterGaugeSource(const std::string& name, Gauge::Source source) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  GetGaugeLocked(name)->set_source(std::move(source));
}

bool MetricRegistry::Matches(const std::string& pattern, const std::string& name) {
  if (pattern.empty()) {
    return true;
  }
  if (pattern.find('*') == std::string::npos && pattern.find('?') == std::string::npos) {
    // Wildcard-free patterns match exactly or as a dotted prefix, so
    // `stats sp` shows the whole subsystem.
    return name == pattern ||
           (name.size() > pattern.size() && name[pattern.size()] == '.' &&
            name.compare(0, pattern.size(), pattern) == 0);
  }
  // Iterative glob with single-star backtracking.
  size_t n = 0;
  size_t p = 0;
  size_t star = std::string::npos;
  size_t star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::vector<MetricSample> MetricRegistry::Snapshot(const std::string& pattern) const {
  // Phase 1, under the map lock: resolve matching names to stable handles
  // (and copies of the pull closures). Phase 2, lock released: evaluate.
  // Sources and histogram accessors must run *outside* metrics_mu_ — a pull
  // source may re-enter the registry (sp.registry_size reads size()), and
  // handle evaluation must never hold the map lock on another thread's
  // behalf longer than the lookup itself.
  struct Pending {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    const Counter* counter = nullptr;
    CounterSource source;  // Copied: the map entry may be replaced after unlock.
    const Gauge* gauge = nullptr;
    const HistogramMetric* histogram = nullptr;
  };
  std::vector<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    for (const auto& [name, counter] : counters_) {
      if (Matches(pattern, name)) {
        pending.push_back({name, MetricKind::kCounter, counter.get(), {}, nullptr, nullptr});
      }
    }
    for (const auto& [name, source] : counter_sources_) {
      if (Matches(pattern, name)) {
        pending.push_back({name, MetricKind::kCounter, nullptr, source, nullptr, nullptr});
      }
    }
    for (const auto& [name, gauge] : gauges_) {
      if (Matches(pattern, name)) {
        pending.push_back({name, MetricKind::kGauge, nullptr, {}, gauge.get(), nullptr});
      }
    }
    for (const auto& [name, hist] : histograms_) {
      if (Matches(pattern, name)) {
        pending.push_back({name, MetricKind::kHistogram, nullptr, {}, nullptr, hist.get()});
      }
    }
  }
  std::vector<MetricSample> out;
  out.reserve(pending.size());
  for (const Pending& p : pending) {
    MetricSample s;
    s.name = p.name;
    s.kind = p.kind;
    s.histogram = p.histogram;
    if (p.counter != nullptr) {
      s.value = static_cast<double>(p.counter->value());
    } else if (p.source) {
      s.value = static_cast<double>(p.source());
    } else if (p.gauge != nullptr) {
      s.value = p.gauge->Read();
    } else if (p.histogram != nullptr) {
      s.value = static_cast<double>(p.histogram->count());
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

bool MetricRegistry::IsHistogramField(const std::string& field) {
  return field == "count" || field == "mean" || field == "min" || field == "max" ||
         field == "p50" || field == "p90" || field == "p95" || field == "p99";
}

MetricRegistry::Resolved MetricRegistry::ResolveLocked(const std::string& name) const {
  Resolved r;
  auto counter = counters_.find(name);
  if (counter != counters_.end()) {
    r.counter = counter->second.get();
    return r;
  }
  auto source = counter_sources_.find(name);
  if (source != counter_sources_.end()) {
    r.source = source->second;
    return r;
  }
  auto gauge = gauges_.find(name);
  if (gauge != gauges_.end()) {
    r.gauge = gauge->second.get();
    return r;
  }
  auto hist = histograms_.find(name);
  if (hist != histograms_.end()) {
    r.histogram = hist->second.get();
    r.field = "count";
    return r;
  }
  // Histogram sub-fields: "<name>.count" .. "<name>.p99".
  const size_t dot = name.rfind('.');
  if (dot == std::string::npos) {
    return r;
  }
  hist = histograms_.find(name.substr(0, dot));
  if (hist == histograms_.end()) {
    return r;
  }
  const std::string field = name.substr(dot + 1);
  if (!IsHistogramField(field)) {
    return r;
  }
  r.histogram = hist->second.get();
  r.field = field;
  r.is_subfield = true;
  return r;
}

std::optional<double> MetricRegistry::Read(const std::string& name) const {
  // Resolve under the map lock, evaluate outside it: pull sources may
  // re-enter the registry and histogram accessors take histogram_mu_.
  Resolved r;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    r = ResolveLocked(name);
  }
  if (r.counter != nullptr) {
    return static_cast<double>(r.counter->value());
  }
  if (r.source) {
    return static_cast<double>(r.source());
  }
  if (r.gauge != nullptr) {
    return r.gauge->Read();
  }
  if (r.histogram != nullptr) {
    const HistogramMetric& h = *r.histogram;
    if (r.field == "count") return static_cast<double>(h.count());
    if (r.field == "mean") return h.mean();
    if (r.field == "min") return h.min();
    if (r.field == "max") return h.max();
    if (r.field == "p50") return h.Percentile(50);
    if (r.field == "p90") return h.Percentile(90);
    if (r.field == "p95") return h.Percentile(95);
    if (r.field == "p99") return h.Percentile(99);
  }
  return std::nullopt;
}

std::optional<MetricKind> MetricRegistry::KindOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  if (counters_.count(name) != 0 || counter_sources_.count(name) != 0) {
    return MetricKind::kCounter;
  }
  if (gauges_.count(name) != 0) {
    return MetricKind::kGauge;
  }
  if (histograms_.count(name) != 0) {
    return MetricKind::kHistogram;
  }
  const Resolved r = ResolveLocked(name);
  if (r.is_subfield) {
    return MetricKind::kGauge;  // A histogram sub-field; reads as a double.
  }
  return std::nullopt;
}

std::string MetricRegistry::RenderText(const std::string& pattern) const {
  std::string out;
  for (const MetricSample& s : Snapshot(pattern)) {
    if (s.kind == MetricKind::kHistogram) {
      out += util::Format("%s count=%llu mean=%s min=%s max=%s p50=%s p95=%s p99=%s\n",
                          s.name.c_str(),
                          static_cast<unsigned long long>(s.histogram->count()),
                          FormatValue(s.histogram->mean()).c_str(),
                          FormatValue(s.histogram->min()).c_str(),
                          FormatValue(s.histogram->max()).c_str(),
                          FormatValue(s.histogram->Percentile(50)).c_str(),
                          FormatValue(s.histogram->Percentile(95)).c_str(),
                          FormatValue(s.histogram->Percentile(99)).c_str());
    } else {
      out += s.name + " " + FormatValue(s.value) + "\n";
    }
  }
  return out;
}

std::string MetricRegistry::RenderJson(const std::string& pattern) const {
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const MetricSample& s : Snapshot(pattern)) {
    switch (s.kind) {
      case MetricKind::kCounter:
        counters += (counters.empty() ? "" : ",");
        counters += "\"" + JsonEscape(s.name) + "\":" + FormatValue(s.value);
        break;
      case MetricKind::kGauge:
        gauges += (gauges.empty() ? "" : ",");
        gauges += "\"" + JsonEscape(s.name) + "\":" + FormatValue(s.value);
        break;
      case MetricKind::kHistogram:
        histograms += (histograms.empty() ? "" : ",");
        histograms += util::Format(
            "\"%s\":{\"count\":%llu,\"mean\":%s,\"min\":%s,\"max\":%s,"
            "\"p50\":%s,\"p95\":%s,\"p99\":%s}",
            JsonEscape(s.name).c_str(), static_cast<unsigned long long>(s.histogram->count()),
            FormatValue(s.histogram->mean()).c_str(), FormatValue(s.histogram->min()).c_str(),
            FormatValue(s.histogram->max()).c_str(),
            FormatValue(s.histogram->Percentile(50)).c_str(),
            FormatValue(s.histogram->Percentile(95)).c_str(),
            FormatValue(s.histogram->Percentile(99)).c_str());
        break;
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges + "},\"histograms\":{" +
         histograms + "}}";
}

Counter* MetricRegistry::NullCounter() {
  static Counter sink;
  return &sink;
}

Gauge* MetricRegistry::NullGauge() {
  static Gauge sink;
  return &sink;
}

}  // namespace comma::obs

#include "src/obs/metric_registry.h"

#include <algorithm>

#include "src/util/strings.h"

namespace comma::obs {

namespace {

// Formats a double the way both the text and JSON renderings want it:
// integers without a fraction, everything else with enough precision to
// round-trip typical metric magnitudes.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::abs(v) < 1e15) {
    return util::Format("%lld", static_cast<long long>(v));
  }
  return util::Format("%.6g", v);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

Counter* MetricRegistry::GetCounter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

HistogramMetric* MetricRegistry::GetHistogram(const std::string& name, double lo, double hi,
                                              size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<HistogramMetric>(lo, hi, buckets)).first;
  }
  return it->second.get();
}

void MetricRegistry::RegisterCounterSource(const std::string& name, CounterSource source) {
  counter_sources_[name] = std::move(source);
}

void MetricRegistry::RegisterGaugeSource(const std::string& name, Gauge::Source source) {
  GetGauge(name)->set_source(std::move(source));
}

bool MetricRegistry::Matches(const std::string& pattern, const std::string& name) {
  if (pattern.empty()) {
    return true;
  }
  if (pattern.find('*') == std::string::npos && pattern.find('?') == std::string::npos) {
    // Wildcard-free patterns match exactly or as a dotted prefix, so
    // `stats sp` shows the whole subsystem.
    return name == pattern ||
           (name.size() > pattern.size() && name[pattern.size()] == '.' &&
            name.compare(0, pattern.size(), pattern) == 0);
  }
  // Iterative glob with single-star backtracking.
  size_t n = 0;
  size_t p = 0;
  size_t star = std::string::npos;
  size_t star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::vector<MetricSample> MetricRegistry::Snapshot(const std::string& pattern) const {
  std::vector<MetricSample> out;
  for (const auto& [name, counter] : counters_) {
    if (Matches(pattern, name)) {
      out.push_back({name, MetricKind::kCounter, static_cast<double>(counter->value()), nullptr});
    }
  }
  for (const auto& [name, source] : counter_sources_) {
    if (Matches(pattern, name)) {
      out.push_back({name, MetricKind::kCounter, static_cast<double>(source()), nullptr});
    }
  }
  for (const auto& [name, gauge] : gauges_) {
    if (Matches(pattern, name)) {
      out.push_back({name, MetricKind::kGauge, gauge->Read(), nullptr});
    }
  }
  for (const auto& [name, hist] : histograms_) {
    if (Matches(pattern, name)) {
      out.push_back({name, MetricKind::kHistogram, static_cast<double>(hist->count()),
                     hist.get()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

std::optional<double> MetricRegistry::Read(const std::string& name) const {
  auto counter = counters_.find(name);
  if (counter != counters_.end()) {
    return static_cast<double>(counter->second->value());
  }
  auto source = counter_sources_.find(name);
  if (source != counter_sources_.end()) {
    return static_cast<double>(source->second());
  }
  auto gauge = gauges_.find(name);
  if (gauge != gauges_.end()) {
    return gauge->second->Read();
  }
  auto hist = histograms_.find(name);
  if (hist != histograms_.end()) {
    return static_cast<double>(hist->second->count());
  }
  // Histogram sub-fields: "<name>.count" .. "<name>.p99".
  const size_t dot = name.rfind('.');
  if (dot == std::string::npos) {
    return std::nullopt;
  }
  hist = histograms_.find(name.substr(0, dot));
  if (hist == histograms_.end()) {
    return std::nullopt;
  }
  const HistogramMetric& h = *hist->second;
  const std::string field = name.substr(dot + 1);
  if (field == "count") return static_cast<double>(h.count());
  if (field == "mean") return h.mean();
  if (field == "min") return h.min();
  if (field == "max") return h.max();
  if (field == "p50") return h.Percentile(50);
  if (field == "p90") return h.Percentile(90);
  if (field == "p95") return h.Percentile(95);
  if (field == "p99") return h.Percentile(99);
  return std::nullopt;
}

std::optional<MetricKind> MetricRegistry::KindOf(const std::string& name) const {
  if (counters_.count(name) != 0 || counter_sources_.count(name) != 0) {
    return MetricKind::kCounter;
  }
  if (gauges_.count(name) != 0) {
    return MetricKind::kGauge;
  }
  if (histograms_.count(name) != 0) {
    return MetricKind::kHistogram;
  }
  if (Read(name).has_value()) {
    return MetricKind::kGauge;  // A histogram sub-field.
  }
  return std::nullopt;
}

std::string MetricRegistry::RenderText(const std::string& pattern) const {
  std::string out;
  for (const MetricSample& s : Snapshot(pattern)) {
    if (s.kind == MetricKind::kHistogram) {
      out += util::Format("%s count=%llu mean=%s min=%s max=%s p50=%s p95=%s p99=%s\n",
                          s.name.c_str(),
                          static_cast<unsigned long long>(s.histogram->count()),
                          FormatValue(s.histogram->mean()).c_str(),
                          FormatValue(s.histogram->min()).c_str(),
                          FormatValue(s.histogram->max()).c_str(),
                          FormatValue(s.histogram->Percentile(50)).c_str(),
                          FormatValue(s.histogram->Percentile(95)).c_str(),
                          FormatValue(s.histogram->Percentile(99)).c_str());
    } else {
      out += s.name + " " + FormatValue(s.value) + "\n";
    }
  }
  return out;
}

std::string MetricRegistry::RenderJson(const std::string& pattern) const {
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const MetricSample& s : Snapshot(pattern)) {
    switch (s.kind) {
      case MetricKind::kCounter:
        counters += (counters.empty() ? "" : ",");
        counters += "\"" + JsonEscape(s.name) + "\":" + FormatValue(s.value);
        break;
      case MetricKind::kGauge:
        gauges += (gauges.empty() ? "" : ",");
        gauges += "\"" + JsonEscape(s.name) + "\":" + FormatValue(s.value);
        break;
      case MetricKind::kHistogram:
        histograms += (histograms.empty() ? "" : ",");
        histograms += util::Format(
            "\"%s\":{\"count\":%llu,\"mean\":%s,\"min\":%s,\"max\":%s,"
            "\"p50\":%s,\"p95\":%s,\"p99\":%s}",
            JsonEscape(s.name).c_str(), static_cast<unsigned long long>(s.histogram->count()),
            FormatValue(s.histogram->mean()).c_str(), FormatValue(s.histogram->min()).c_str(),
            FormatValue(s.histogram->max()).c_str(),
            FormatValue(s.histogram->Percentile(50)).c_str(),
            FormatValue(s.histogram->Percentile(95)).c_str(),
            FormatValue(s.histogram->Percentile(99)).c_str());
        break;
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges + "},\"histograms\":{" +
         histograms + "}}";
}

Counter* MetricRegistry::NullCounter() {
  static Counter sink;
  return &sink;
}

Gauge* MetricRegistry::NullGauge() {
  static Gauge sink;
  return &sink;
}

}  // namespace comma::obs

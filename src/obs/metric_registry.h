// The Comma observability substrate: a process-local registry of named
// counters, gauges, and fixed-bucket histograms.
//
// The thesis's control loop (Kati watches stream/host state through the EEM
// and reconfigures the Service Proxy in response, Ch. 4/6/7) needs the proxy
// to *expose* quantitative state. The registry is that exposure point: every
// layer (SP, TTSF, TCP, EEM) registers its metrics here; the port-12000
// `stats` command and the EemMetricsBridge read them back out.
//
// Design constraints (see docs/observability.md):
//  - Hot path is a plain uint64/double store through a pre-resolved handle.
//    Name interning happens once, at registration time; per-packet code never
//    touches a string or a map.
//  - Two publication models:
//      * push: GetCounter()/GetGauge() hand out stable pointers that the
//        instrumented code bumps directly (new hot-path metrics);
//      * pull: RegisterCounterSource()/RegisterGaugeSource() wrap an existing
//        counter (ProxyStats, TcpStats, EEM accounting) in a closure read at
//        snapshot time — zero added cost on the instrumented path.
//  - Unbound handles: code instrumented before (or without) a registry binds
//    to NullCounter()/NullGauge() sinks, so the hot path is unconditional.
//
// Metric names are dot-separated lowercase paths: "<subsystem>.<metric>" or
// "<subsystem>.<qualifier>.<metric>" (e.g. "sp.packets_inspected",
// "sp.filter.ttsf.out_packets", "eem.client.retransmits").
#ifndef COMMA_OBS_METRIC_REGISTRY_H_
#define COMMA_OBS_METRIC_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/counter.h"
#include "src/util/stats.h"

namespace comma::obs {

// Point-in-time level. Push (Set) or pull (a source closure sampled at
// snapshot time); setting a source wins over any pushed value.
class Gauge {
 public:
  using Source = std::function<double()>;

  void Set(double v) { value_ = v; }
  void set_source(Source source) { source_ = std::move(source); }
  double Read() const { return source_ ? source_() : value_; }

 private:
  double value_ = 0.0;
  Source source_;
};

// Fixed-bucket histogram plus running moments and a bounded percentile
// reservoir, built on util::Histogram / util::RunningStats / a reservoir-mode
// util::Percentiles so long-running benches cannot grow it without bound.
class HistogramMetric {
 public:
  static constexpr size_t kReservoirSamples = 1024;

  HistogramMetric(double lo, double hi, size_t buckets)
      : histogram_(lo, hi, buckets), percentiles_(kReservoirSamples) {}

  void Observe(double x) {
    histogram_.Add(x);
    running_.Add(x);
    percentiles_.Add(x);
  }

  uint64_t count() const { return running_.count(); }
  double mean() const { return running_.mean(); }
  double min() const { return running_.min(); }
  double max() const { return running_.max(); }
  double Percentile(double p) const { return percentiles_.Percentile(p); }
  const util::Histogram& histogram() const { return histogram_; }

 private:
  util::Histogram histogram_;
  util::RunningStats running_;
  util::Percentiles percentiles_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One metric read at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // Counter value or gauge reading; for histograms, the observation count.
  double value = 0.0;
  const HistogramMetric* histogram = nullptr;  // Set for kHistogram only.
};

class MetricRegistry {
 public:
  using CounterSource = std::function<uint64_t()>;

  // --- Registration (name interning happens here, once) ---
  // Get-or-create; returned pointers are stable for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name, double lo, double hi, size_t buckets);
  // Pull-model wrappers over counters that already exist elsewhere. The
  // closure must outlive the registry or the metric must be re-registered
  // (re-registering a name replaces the source).
  void RegisterCounterSource(const std::string& name, CounterSource source);
  void RegisterGaugeSource(const std::string& name, Gauge::Source source);

  // --- Reading ---
  // All metrics whose name matches `pattern` (see Matches), name-sorted.
  std::vector<MetricSample> Snapshot(const std::string& pattern = "") const;
  // Reads one metric by exact name (counters and gauges; histograms answer
  // the dotted sub-fields count/mean/min/max/p50/p90/p95/p99).
  std::optional<double> Read(const std::string& name) const;
  // The kind of the metric registered under exact name `name`; histogram
  // sub-fields report kGauge (they read as doubles).
  std::optional<MetricKind> KindOf(const std::string& name) const;
  // Line-oriented rendering: "<name> <value>" per metric, histograms as
  // "<name> count=N mean=M p50=... p95=... p99=...".
  std::string RenderText(const std::string& pattern = "") const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string RenderJson(const std::string& pattern = "") const;

  size_t size() const {
    return counters_.size() + counter_sources_.size() + gauges_.size() + histograms_.size();
  }

  // Glob match: '*' spans any run of characters, '?' one character; an empty
  // pattern, or a pattern with no wildcard that is a dotted prefix of the
  // name ("sp" matches "sp.packets_inspected"), also matches.
  static bool Matches(const std::string& pattern, const std::string& name);

  // Process-wide sinks for handles that were never bound to a registry.
  static Counter* NullCounter();
  static Gauge* NullGauge();

 private:
  // std::map keeps snapshots name-sorted; unique_ptr keeps handles stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, CounterSource> counter_sources_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace comma::obs

#endif  // COMMA_OBS_METRIC_REGISTRY_H_

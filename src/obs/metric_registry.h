// The Comma observability substrate: a process-local registry of named
// counters, gauges, and fixed-bucket histograms.
//
// The thesis's control loop (Kati watches stream/host state through the EEM
// and reconfigures the Service Proxy in response, Ch. 4/6/7) needs the proxy
// to *expose* quantitative state. The registry is that exposure point: every
// layer (SP, TTSF, TCP, EEM) registers its metrics here; the port-12000
// `stats` command and the EemMetricsBridge read them back out.
//
// Design constraints (see docs/observability.md):
//  - Hot path is a plain uint64/double store through a pre-resolved handle.
//    Name interning happens once, at registration time; per-packet code never
//    touches a string or a map.
//  - Two publication models:
//      * push: GetCounter()/GetGauge() hand out stable pointers that the
//        instrumented code bumps directly (new hot-path metrics);
//      * pull: RegisterCounterSource()/RegisterGaugeSource() wrap an existing
//        counter (ProxyStats, TcpStats, EEM accounting) in a closure read at
//        snapshot time — zero added cost on the instrumented path.
//  - Unbound handles: code instrumented before (or without) a registry binds
//    to NullCounter()/NullGauge() sinks, so the hot path is unconditional.
//
// Metric names are dot-separated lowercase paths: "<subsystem>.<metric>" or
// "<subsystem>.<qualifier>.<metric>" (e.g. "sp.packets_inspected",
// "sp.filter.ttsf.out_packets", "eem.client.retransmits").
#ifndef COMMA_OBS_METRIC_REGISTRY_H_
#define COMMA_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/counter.h"
#include "src/util/stats.h"
#include "src/util/thread_annotations.h"

namespace comma::obs {

// Point-in-time level. Push (Set) or pull (a source closure sampled at
// snapshot time); setting a source wins over any pushed value.
//
// Thread safety: Set/Read on the pushed value are lock-free (relaxed
// atomic — gauges are independent levels, readers only need *a* recent
// value). set_source is registration-time wiring: it must happen-before any
// concurrent Read, which the registry guarantees by only calling it under
// its lock during RegisterGaugeSource. Pull sources themselves are sampled
// at snapshot time from whichever thread snapshots; a source closure must
// therefore read only state that is safe from that thread (DESIGN.md §7).
class Gauge {
 public:
  using Source = std::function<double()>;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void set_source(Source source) { source_ = std::move(source); }
  double Read() const {
    return source_ ? source_() : value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  Source source_;
};

// Fixed-bucket histogram plus running moments and a bounded percentile
// reservoir, built on util::Histogram / util::RunningStats / a reservoir-mode
// util::Percentiles so long-running benches cannot grow it without bound.
//
// Thread safety: the three aggregates must mutate together, so Observe and
// the readers serialize on histogram_mu_. Histograms sit off the per-packet
// fast path (they time coarse events like queue resolution), so an
// uncontended lock here is acceptable where an atomic per bucket would not
// keep count/mean/reservoir mutually consistent.
class HistogramMetric {
 public:
  static constexpr size_t kReservoirSamples = 1024;

  HistogramMetric(double lo, double hi, size_t buckets)
      : histogram_(lo, hi, buckets), percentiles_(kReservoirSamples) {}

  void Observe(double x) COMMA_EXCLUDES(histogram_mu_) {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    histogram_.Add(x);
    running_.Add(x);
    percentiles_.Add(x);
  }

  uint64_t count() const COMMA_EXCLUDES(histogram_mu_) {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    return running_.count();
  }
  double mean() const COMMA_EXCLUDES(histogram_mu_) {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    return running_.mean();
  }
  double min() const COMMA_EXCLUDES(histogram_mu_) {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    return running_.min();
  }
  double max() const COMMA_EXCLUDES(histogram_mu_) {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    return running_.max();
  }
  double Percentile(double p) const COMMA_EXCLUDES(histogram_mu_) {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    return percentiles_.Percentile(p);
  }
  // Direct bucket access for single-threaded render paths (bench summaries).
  // Returns a reference into guarded state: callers must have quiesced
  // writers, which the analysis cannot see — hence the escape hatch.
  const util::Histogram& histogram() const COMMA_NO_THREAD_SAFETY_ANALYSIS {
    return histogram_;
  }

 private:
  // Rank 30 in the DESIGN.md §7 lock hierarchy: ordered after the registry's
  // metrics_mu_ (rank 20). The registry currently evaluates histogram reads
  // with its lock already released, but the declared order is what any
  // future nesting must follow.
  mutable std::mutex histogram_mu_;
  util::Histogram histogram_ COMMA_GUARDED_BY(histogram_mu_);
  util::RunningStats running_ COMMA_GUARDED_BY(histogram_mu_);
  util::Percentiles percentiles_ COMMA_GUARDED_BY(histogram_mu_);
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One metric read at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // Counter value or gauge reading; for histograms, the observation count.
  double value = 0.0;
  const HistogramMetric* histogram = nullptr;  // Set for kHistogram only.
};

// Thread safety (DESIGN.md §7): the registry is the first object the
// parallel simulator shares across threads — instrumented worker threads
// intern handles while `stats`, the EEM bridge, and bench snapshots read.
// All name->metric maps are guarded by metrics_mu_; handle *use* after
// registration is lock-free (atomic counters/gauges, self-locking
// histograms), so the per-packet path still never takes this lock.
class MetricRegistry {
 public:
  using CounterSource = std::function<uint64_t()>;

  // --- Registration (name interning happens here, once) ---
  // Get-or-create; returned pointers are stable for the registry's lifetime.
  Counter* GetCounter(const std::string& name) COMMA_EXCLUDES(metrics_mu_);
  Gauge* GetGauge(const std::string& name) COMMA_EXCLUDES(metrics_mu_);
  HistogramMetric* GetHistogram(const std::string& name, double lo, double hi, size_t buckets)
      COMMA_EXCLUDES(metrics_mu_);
  // Pull-model wrappers over counters that already exist elsewhere. The
  // closure must outlive the registry or the metric must be re-registered
  // (re-registering a name replaces the source). Sources are sampled with
  // metrics_mu_ held, from whichever thread snapshots.
  void RegisterCounterSource(const std::string& name, CounterSource source)
      COMMA_EXCLUDES(metrics_mu_);
  void RegisterGaugeSource(const std::string& name, Gauge::Source source)
      COMMA_EXCLUDES(metrics_mu_);

  // --- Reading ---
  // All metrics whose name matches `pattern` (see Matches), name-sorted.
  std::vector<MetricSample> Snapshot(const std::string& pattern = "") const
      COMMA_EXCLUDES(metrics_mu_);
  // Reads one metric by exact name (counters and gauges; histograms answer
  // the dotted sub-fields count/mean/min/max/p50/p90/p95/p99).
  std::optional<double> Read(const std::string& name) const COMMA_EXCLUDES(metrics_mu_);
  // The kind of the metric registered under exact name `name`; histogram
  // sub-fields report kGauge (they read as doubles).
  std::optional<MetricKind> KindOf(const std::string& name) const COMMA_EXCLUDES(metrics_mu_);
  // Line-oriented rendering: "<name> <value>" per metric, histograms as
  // "<name> count=N mean=M p50=... p95=... p99=...".
  std::string RenderText(const std::string& pattern = "") const COMMA_EXCLUDES(metrics_mu_);
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string RenderJson(const std::string& pattern = "") const COMMA_EXCLUDES(metrics_mu_);

  size_t size() const COMMA_EXCLUDES(metrics_mu_) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    return counters_.size() + counter_sources_.size() + gauges_.size() + histograms_.size();
  }

  // Glob match: '*' spans any run of characters, '?' one character; an empty
  // pattern, or a pattern with no wildcard that is a dotted prefix of the
  // name ("sp" matches "sp.packets_inspected"), also matches.
  static bool Matches(const std::string& pattern, const std::string& name);

  // Process-wide sinks for handles that were never bound to a registry.
  static Counter* NullCounter();
  static Gauge* NullGauge();

 private:
  // A name resolved to its stable handle (or a copy of its pull closure)
  // under metrics_mu_, evaluated after the lock is released — pull sources
  // may re-enter the registry (e.g. sp.registry_size reads size()).
  struct Resolved {
    const Counter* counter = nullptr;
    CounterSource source;
    const Gauge* gauge = nullptr;
    const HistogramMetric* histogram = nullptr;
    std::string field;       // Histogram field to read ("count", "p99", ...).
    bool is_subfield = false;  // True when `name` was "<histogram>.<field>".
  };
  Resolved ResolveLocked(const std::string& name) const COMMA_REQUIRES(metrics_mu_);
  Gauge* GetGaugeLocked(const std::string& name) COMMA_REQUIRES(metrics_mu_);
  static bool IsHistogramField(const std::string& field);

  // Rank 20 in the DESIGN.md §7 lock hierarchy: ordered before histogram_mu_
  // (rank 30), never acquired from inside a HistogramMetric accessor. Pull
  // closures and histogram reads are evaluated with this lock released.
  mutable std::mutex metrics_mu_;
  // std::map keeps snapshots name-sorted; unique_ptr keeps handles stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_ COMMA_GUARDED_BY(metrics_mu_);
  std::map<std::string, CounterSource> counter_sources_ COMMA_GUARDED_BY(metrics_mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ COMMA_GUARDED_BY(metrics_mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_
      COMMA_GUARDED_BY(metrics_mu_);
};

}  // namespace comma::obs

#endif  // COMMA_OBS_METRIC_REGISTRY_H_

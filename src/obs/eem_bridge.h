// EemMetricsBridge — closes the thesis's transparent-control loop.
//
// The EEM's "modularized query mechanism" (§6.2) lets application designers
// extend the variable set with new providers. The bridge is exactly such a
// provider: it answers EEM variable reads straight out of a MetricRegistry,
// so every proxy metric ("ttsf.bytes_dropped", "sp.packets_inspected", ...)
// becomes a first-class EEM variable that Kati can register (id, attr)
// watches on. The EEM server's own check/update timers then publish the
// bridged values periodically — threshold crossings fire interrupt-mode
// notifications, and Kati's callback can load or remove Service-Proxy
// filters in response, all without application cooperation.
//
// Variable names are the metric names verbatim; the index is ignored (proxy
// metrics are host-scoped). Histograms additionally answer their dotted
// sub-fields (".count", ".mean", ".min", ".max", ".p50", ".p90", ".p95",
// ".p99"). Counters surface as LONG, gauges and histogram fields as DOUBLE.
#ifndef COMMA_OBS_EEM_BRIDGE_H_
#define COMMA_OBS_EEM_BRIDGE_H_

#include <string>
#include <vector>

#include "src/monitor/variables.h"
#include "src/obs/metric_registry.h"

namespace comma::obs {

class EemMetricsBridge : public monitor::MetricProvider {
 public:
  // Exports the metrics of `registry` whose names match `pattern`
  // (MetricRegistry::Matches semantics; empty = everything). The registry
  // must outlive the bridge.
  explicit EemMetricsBridge(const MetricRegistry* registry, std::string pattern = "");

  std::optional<monitor::Value> Get(const std::string& name, uint32_t index) override;
  std::vector<std::string> Names() const override;

 private:
  const MetricRegistry* registry_;
  std::string pattern_;
};

}  // namespace comma::obs

#endif  // COMMA_OBS_EEM_BRIDGE_H_

#include "src/obs/eem_bridge.h"

namespace comma::obs {

EemMetricsBridge::EemMetricsBridge(const MetricRegistry* registry, std::string pattern)
    : registry_(registry), pattern_(std::move(pattern)) {}

std::optional<monitor::Value> EemMetricsBridge::Get(const std::string& name, uint32_t /*index*/) {
  // Sub-fields of an exported histogram pass the pattern check through their
  // parent name, so "ttsf.*" also exports "ttsf.queue_us.p99".
  std::string base = name;
  if (!MetricRegistry::Matches(pattern_, base)) {
    const size_t dot = base.rfind('.');
    if (dot == std::string::npos ||
        !MetricRegistry::Matches(pattern_, base.substr(0, dot))) {
      return std::nullopt;
    }
  }
  auto kind = registry_->KindOf(name);
  if (!kind.has_value()) {
    return std::nullopt;
  }
  auto value = registry_->Read(name);
  if (!value.has_value()) {
    return std::nullopt;
  }
  switch (*kind) {
    case MetricKind::kCounter:
    case MetricKind::kHistogram:  // Bare histogram name reads as its count.
      return monitor::Value(static_cast<int64_t>(*value));
    case MetricKind::kGauge:
      return monitor::Value(*value);
  }
  return std::nullopt;
}

std::vector<std::string> EemMetricsBridge::Names() const {
  std::vector<std::string> names;
  for (const MetricSample& s : registry_->Snapshot(pattern_)) {
    names.push_back(s.name);
  }
  return names;
}

}  // namespace comma::obs

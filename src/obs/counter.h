// obs::Counter, split out of metric_registry.h so layers *below* the
// registry can bump a pre-bound handle without seeing the registry.
//
// This is the one obs header the DESIGN.md layer DAG lets src/net include
// (enforced by comma-lint include-layering): the TraceTap sits in the net
// layer but reports capture volume through raw counter handles bound by
// whoever owns a registry. Keep this header dependency-free and the type
// header-only; anything that needs names, snapshots, or gauges belongs in
// metric_registry.h.
#ifndef COMMA_OBS_COUNTER_H_
#define COMMA_OBS_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace comma::obs {

// Monotonic event count. A relaxed atomic: handles are bumped straight from
// the packet path, and with the parallel simulator (DESIGN.md §7) those
// paths run on worker threads while `stats`/the EEM bridge snapshot from
// another. Relaxed ordering is enough — each counter is an independent
// monotone value, readers only need *a* recent value, and on the
// architectures we build for a relaxed fetch_add is a single locked add
// (~1ns), so benches can still leave metrics on.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace comma::obs

#endif  // COMMA_OBS_COUNTER_H_

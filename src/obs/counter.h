// obs::Counter, split out of metric_registry.h so layers *below* the
// registry can bump a pre-bound handle without seeing the registry.
//
// This is the one obs header the DESIGN.md layer DAG lets src/net include
// (enforced by comma-lint include-layering): the TraceTap sits in the net
// layer but reports capture volume through raw counter handles bound by
// whoever owns a registry. Keep this header dependency-free and the type
// header-only; anything that needs names, snapshots, or gauges belongs in
// metric_registry.h.
#ifndef COMMA_OBS_COUNTER_H_
#define COMMA_OBS_COUNTER_H_

#include <cstdint>

namespace comma::obs {

// Monotonic event count. Plain non-atomic uint64: the simulator is
// single-threaded, and benches must be able to leave metrics on.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

}  // namespace comma::obs

#endif  // COMMA_OBS_COUNTER_H_

// SeqSpaceAuditor: runtime verification of the TTSF's wired<->wireless
// sequence-space mapping (thesis §8.1, Fig. 8.2).
//
// The whole transparency argument rests on the record list being a
// contiguous, monotonic bijection fragment between original and output
// sequence space, ending exactly at the direction's frontiers. If any
// drop/shrink/grow step breaks that — an off-by-one in a frontier update, a
// record appended out of order, a prune past the receiver's ack — the filter
// starts acknowledging bytes the receiver never saw, which is precisely the
// end-to-end violation the TTSF exists to avoid (§5.1.2). The auditor
// re-checks the full invariant set after every packet the TTSF processes.
//
// Always compiled; the TTSF only invokes it when util::DebugChecksEnabled().
#ifndef COMMA_FILTERS_TTSF_AUDIT_H_
#define COMMA_FILTERS_TTSF_AUDIT_H_

#include <cstdint>

#include "src/filters/ttsf_filter.h"

namespace comma::filters {

class SeqSpaceAuditor {
 public:
  // Verifies one direction's state:
  //  - records are contiguous in *both* sequence spaces (no gaps, no
  //    overlap): rec[i].end == rec[i+1].start for orig and out;
  //  - the record list ends exactly at (orig_frontier, out_frontier);
  //  - each record is internally consistent (cached replay payload matches
  //    out_len; identity records preserve length; FIN markers span one
  //    sequence unit in both spaces);
  //  - held out-of-order packets all lie strictly beyond the frontier and
  //    are indexed by their own sequence number;
  //  - the receiver's highest ack never outruns what was emitted
  //    (max_acked_out <= out_frontier).
  void AuditDirection(const proxy::StreamKey& key, const TtsfFilter::DirState& st);

  uint64_t audits() const { return audits_; }
  uint64_t records_checked() const { return records_checked_; }

 private:
  uint64_t audits_ = 0;
  uint64_t records_checked_ = 0;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_TTSF_AUDIT_H_

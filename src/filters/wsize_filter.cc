#include "src/filters/wsize_filter.h"

#include "src/proxy/service_proxy.h"

#include "src/monitor/eem_client.h"
#include "src/proxy/filter_state.h"
#include "src/util/strings.h"

namespace comma::filters {

bool WsizeFilter::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           const std::vector<std::string>& args, std::string* error) {
  ack_key_ = key;
  ctx_ = &ctx.proxy().context();
  if (args.empty()) {
    // Bare `add wsize <key>`: a no-op window watcher, matching the thesis
    // transcript where wsize is applied without arguments.
    mode_ = Mode::kClamp;
    clamp_window_ = 65535;
    return true;
  }
  if (args[0] == "clamp") {
    uint32_t window = 0;
    if (args.size() < 2 || !util::ParseU32(args[1], &window) || window > 65535) {
      if (error != nullptr) {
        *error = "wsize: usage: clamp <bytes 0-65535>";
      }
      return false;
    }
    mode_ = Mode::kClamp;
    clamp_window_ = static_cast<uint16_t>(window);
    return true;
  }
  if (args[0] == "zwsm") {
    mode_ = Mode::kZwsm;
    if (args.size() >= 2) {
      util::ParseU32(args[1], &eem_ifindex_);
    }
    // Subscribe to link state through the EEM when one is wired up
    // (thesis: SP filters can be EEM clients). An Op::kAny interrupt
    // registration notifies on every status change.
    if (eem_ifindex_ != 0 && ctx.eem() != nullptr) {
      monitor::VariableId status_id;
      status_id.name = "ifOperStatus";
      status_id.index = eem_ifindex_;
      ctx.eem()->SetCallback([this](const monitor::VariableId& id, const monitor::Value& v) {
        if (id.name != "ifOperStatus" || !std::holds_alternative<int64_t>(v)) {
          return;
        }
        if (std::get<int64_t>(v) == 2) {
          NotifyLinkDown();
        } else {
          NotifyLinkUp();
        }
      });
      ctx.eem()->Register(status_id, monitor::Attr::Always(monitor::NotifyMode::kInterrupt));
    }
    return true;
  }
  if (error != nullptr) {
    *error = "wsize: unknown mode (expected clamp or zwsm)";
  }
  return false;
}

void WsizeFilter::In(proxy::FilterContext&, const proxy::StreamKey& key,
                     const net::Packet& packet) {
  if (!packet.has_tcp() || !(key == ack_key_)) {
    return;
  }
  if (packet.tcp().flags & net::kTcpAck) {
    seen_ack_ = true;
    last_seq_ = packet.tcp().seq + net::TcpSegmentLength(packet);
    last_ack_ = packet.tcp().ack;
    last_window_ = packet.tcp().window != 0 ? packet.tcp().window : last_window_;
  }
}

proxy::FilterVerdict WsizeFilter::Out(proxy::FilterContext&, const proxy::StreamKey& key,
                                      net::Packet& packet) {
  if (!packet.has_tcp() || !(key == ack_key_) || !(packet.tcp().flags & net::kTcpAck)) {
    return proxy::FilterVerdict::kPass;
  }
  uint16_t target = 0;
  if (mode_ == Mode::kClamp) {
    target = clamp_window_;
  } else {
    if (!link_down_) {
      return proxy::FilterVerdict::kPass;
    }
    target = 0;  // While disconnected every passing ACK becomes a ZWSM.
  }
  if (packet.tcp().window > target) {
    packet.tcp().window = target;
    ++windows_clamped_;
  }
  return proxy::FilterVerdict::kPass;
}

void WsizeFilter::SendWindowMessage(uint16_t window) {
  if (ctx_ == nullptr || !seen_ack_) {
    return;
  }
  net::TcpHeader h;
  h.src_port = ack_key_.src_port;
  h.dst_port = ack_key_.dst_port;
  h.seq = last_seq_;
  h.ack = last_ack_;
  h.flags = net::kTcpAck;
  h.window = window;
  ++zwsms_sent_;
  ctx_->InjectPacket(net::Packet::MakeTcp(ack_key_.src, ack_key_.dst, h, {}));
}

void WsizeFilter::NotifyLinkDown() {
  if (mode_ != Mode::kZwsm || link_down_) {
    return;
  }
  link_down_ = true;
  // The ZWSM: an ACK with a zero receive window, crafted on behalf of the
  // mobile (§8.2.2). The sender stalls in persist mode and the stream stays
  // alive indefinitely.
  SendWindowMessage(0);
}

void WsizeFilter::NotifyLinkUp() {
  if (mode_ != Mode::kZwsm || !link_down_) {
    return;
  }
  link_down_ = false;
  // Re-open the window: the sender resumes immediately instead of waiting
  // out its backed-off retransmission timer.
  SendWindowMessage(last_window_);
}

void WsizeFilter::OnDetach(proxy::FilterContext&, const proxy::StreamKey&) { ctx_ = nullptr; }

// --- Failover state contract ---
//
// "WSIZ" v1: u8 flags (seen_ack), u32 last_seq, u32 last_ack,
// u16 last_window, u64 windows_clamped, u64 zwsms_sent. Link state is
// deliberately absent: the standby gateway learns its own wireless link's
// status from its own EEM.

namespace {
constexpr char kWsizeStateMagic[] = "WSIZ";
constexpr uint8_t kWsizeStateVersion = 1;
}  // namespace

proxy::FilterStateKind WsizeFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool WsizeFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kWsizeStateMagic, kWsizeStateVersion);
  w.WriteU8(seen_ack_ ? 1 : 0);
  w.WriteU32(last_seq_);
  w.WriteU32(last_ack_);
  w.WriteU16(last_window_);
  w.WriteU64(windows_clamped_);
  w.WriteU64(zwsms_sent_);
  return true;
}

bool WsizeFilter::ImportState(proxy::FilterContext&, const util::Bytes& in, std::string* error) {
  util::ByteReader r(in);
  std::optional<uint8_t> version = proxy::ReadStateHeader(&r, kWsizeStateMagic);
  if (!version.has_value() || *version != kWsizeStateVersion) {
    if (error != nullptr) {
      *error = "wsize import: bad magic or version";
    }
    return false;
  }
  const uint8_t flags = r.ReadU8();
  const uint32_t last_seq = r.ReadU32();
  const uint32_t last_ack = r.ReadU32();
  const uint16_t last_window = r.ReadU16();
  const uint64_t clamped = r.ReadU64();
  const uint64_t zwsms = r.ReadU64();
  if (r.failed()) {
    if (error != nullptr) {
      *error = "wsize import: truncated blob";
    }
    return false;
  }
  seen_ack_ = (flags & 1u) != 0;
  last_seq_ = last_seq;
  last_ack_ = last_ack;
  last_window_ = last_window;
  windows_clamped_ = clamped;
  zwsms_sent_ = zwsms;
  link_down_ = false;  // Local to the gateway; re-learned at the standby.
  return true;
}

std::string WsizeFilter::Status() const {
  return util::Format("mode=%s clamped=%llu zwsms=%llu link=%s",
                      mode_ == Mode::kClamp ? "clamp" : "zwsm",
                      static_cast<unsigned long long>(windows_clamped_),
                      static_cast<unsigned long long>(zwsms_sent_), link_down_ ? "down" : "up");
}

}  // namespace comma::filters

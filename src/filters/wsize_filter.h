// The `wsize` filter: BSSP-style TCP window-size modification
// (thesis §8.2.2, after Lioy's Base Station Service Protocol).
//
// Two services, selected by the first argument:
//
//  clamp <bytes>   Stream prioritization: the advertised window in ACKs
//                  travelling on the attached key is clamped to <bytes>,
//                  throttling the peer that sends data on the reverse key.
//                  Low-priority streams get small clamps, freeing wireless
//                  bandwidth and lowering delay for priority streams.
//
//  zwsm [ifindex]  Disconnection management: when the wireless link goes
//                  down, the filter sends the wired sender a zero-window-
//                  size message (ZWSM) so the connection stalls in persist
//                  mode instead of piling up congestion backoff; when the
//                  link returns, a window-update ACK restarts the stream
//                  immediately. Link state arrives from the EEM
//                  (ifOperStatus, interrupt mode) or via NotifyLinkDown/Up.
//
// Attach the filter to the key whose packets carry the window field to
// modify — i.e. the ACK path from the mobile toward the wired sender.
#ifndef COMMA_FILTERS_WSIZE_FILTER_H_
#define COMMA_FILTERS_WSIZE_FILTER_H_

#include "src/proxy/filter.h"
#include "src/tcp/seq.h"

namespace comma::filters {

class WsizeFilter : public proxy::Filter {
 public:
  WsizeFilter() : Filter("wsize", proxy::FilterPriority::kLowest) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  void In(proxy::FilterContext& ctx, const proxy::StreamKey& key,
          const net::Packet& packet) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  void OnDetach(proxy::FilterContext& ctx, const proxy::StreamKey& key) override;
  std::string Status() const override;

  // Manual disconnection signalling (tests and deployments without an EEM).
  void NotifyLinkDown();
  void NotifyLinkUp();

  uint64_t windows_clamped() const { return windows_clamped_; }
  uint64_t zwsms_sent() const { return zwsms_sent_; }
  bool link_down() const { return link_down_; }

  // Failover (docs/robustness.md): the observed ACK-path state (what a ZWSM
  // needs) is checkpointed; link_down_ is NOT — link state is local to the
  // new gateway and re-learned from its own EEM or NotifyLinkDown.
  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 private:
  void SendWindowMessage(uint16_t window);

  enum class Mode { kClamp, kZwsm };
  Mode mode_ = Mode::kClamp;
  uint16_t clamp_window_ = 0;
  proxy::StreamKey ack_key_;  // Key carrying the windows we modify.
  proxy::FilterContext* ctx_ = nullptr;

  // Last observed ACK-path state, used to craft ZWSMs.
  bool seen_ack_ = false;
  uint32_t last_seq_ = 0;
  uint32_t last_ack_ = 0;
  uint16_t last_window_ = 8192;

  bool link_down_ = false;
  uint32_t eem_ifindex_ = 0;
  uint64_t windows_clamped_ = 0;
  uint64_t zwsms_sent_ = 0;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_WSIZE_FILTER_H_

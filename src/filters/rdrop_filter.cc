#include "src/filters/rdrop_filter.h"

#include "src/util/strings.h"

namespace comma::filters {

bool RdropFilter::OnInsert(proxy::FilterContext&, const proxy::StreamKey&,
                           const std::vector<std::string>& args, std::string* error) {
  if (!args.empty()) {
    uint32_t percent = 0;
    if (!util::ParseU32(args[0], &percent) || percent > 100) {
      if (error != nullptr) {
        *error = "rdrop: drop rate must be an integer percentage 0-100";
      }
      return false;
    }
    drop_probability_ = percent / 100.0;
  }
  if (args.size() > 1) {
    uint64_t seed = 0;
    if (util::ParseU64(args[1], &seed)) {
      rng_ = sim::Random(seed);
    }
  }
  return true;
}

proxy::FilterVerdict RdropFilter::Out(proxy::FilterContext&, const proxy::StreamKey&,
                                      net::Packet&) {
  if (rng_.Bernoulli(drop_probability_)) {
    ++dropped_;
    return proxy::FilterVerdict::kDrop;
  }
  ++passed_;
  return proxy::FilterVerdict::kPass;
}

std::string RdropFilter::Status() const {
  return util::Format("rate=%.0f%% dropped=%llu passed=%llu", drop_probability_ * 100,
                      static_cast<unsigned long long>(dropped_),
                      static_cast<unsigned long long>(passed_));
}

}  // namespace comma::filters

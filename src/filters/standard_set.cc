#include "src/filters/standard_set.h"

#include "src/filters/dnscache_filter.h"
#include "src/filters/http_filters.h"
#include "src/filters/launcher_filter.h"
#include "src/filters/media_filters.h"
#include "src/filters/qcache_filter.h"
#include "src/filters/rdrop_filter.h"
#include "src/filters/snoop_filter.h"
#include "src/filters/tcp_filter.h"
#include "src/filters/transform_filters.h"
#include "src/filters/ttsf_filter.h"
#include "src/filters/wsize_filter.h"

namespace comma::filters {

void RegisterStandardFilters(proxy::FilterRegistry* registry) {
  registry->Register("tcp", "TCP housekeeping: checksum recomputation, stream teardown",
                     [] { return std::make_unique<TcpFilter>(); });
  registry->Register("launcher", "applies a service list to new streams matching a wild-card key",
                     [] { return std::make_unique<LauncherFilter>(); });
  registry->Register("rdrop", "randomly drops packets (non-transparent)",
                     [] { return std::make_unique<RdropFilter>(); });
  registry->Register("wsize", "BSSP window modification: clamp (priority) / zwsm (disconnection)",
                     [] { return std::make_unique<WsizeFilter>(); });
  registry->Register("snoop", "TCP-aware local retransmission and dupack suppression",
                     [] { return std::make_unique<SnoopFilter>(); });
  registry->Register("ttsf", "TCP transparency support: seq/ack remapping for transformed streams",
                     [] { return std::make_unique<TtsfFilter>(); });
  registry->Register("tdrop", "transparent packet dropping (requires ttsf)",
                     [] { return std::make_unique<TdropFilter>(); });
  registry->Register("tcompress", "transparent payload compression (requires ttsf)",
                     [] { return std::make_unique<TcompressFilter>(); });
  registry->Register("tdecompress", "transparent payload decompression (requires ttsf)",
                     [] { return std::make_unique<TdecompressFilter>(); });
  registry->Register("hdiscard", "hierarchical discard for layered media streams",
                     [] { return std::make_unique<HdiscardFilter>(); });
  registry->Register("dtrans", "data-type translation (colour->mono, rich text->ASCII)",
                     [] { return std::make_unique<DtransFilter>(); });
  registry->Register("delay", "delays matching packets by a fixed amount",
                     [] { return std::make_unique<DelayFilter>(); });
  registry->Register("meter", "passive per-stream packet/byte accounting",
                     [] { return std::make_unique<MeterFilter>(); });
  registry->Register("qcache", "application partitioning: proxy-side query cache",
                     [] { return std::make_unique<QcacheFilter>(); });
  registry->Register("hrewrite", "HTTP request header rewriting: Via/X-Forwarded-For, hop-by-hop",
                     [] { return std::make_unique<HrewriteFilter>(); });
  registry->Register("htype", "HTTP content-type transcode/discard on responses (requires ttsf)",
                     [] { return std::make_unique<HtypeFilter>(); });
  registry->Register("dnscache", "DNS-over-UDP answering cache at the proxy",
                     [] { return std::make_unique<DnscacheFilter>(); });
}

proxy::ServiceCatalog StandardCatalog() {
  using Entry = proxy::ServiceCatalog::Entry;
  proxy::ServiceCatalog catalog;
  catalog.Register("reliable-wireless",
                   Entry{"local recovery of wireless losses (snoop, 8.2.1)",
                         {{"tcp", {}}, {"snoop", {}}}});
  catalog.Register("realtime-thin",
                   Entry{"transparently thin the stream by ~30% (tdrop, 8.1.5)",
                         {{"tcp", {}}, {"ttsf", {}}, {"tdrop", {"30"}}}});
  catalog.Register("compressed",
                   Entry{"wired-side transparent compression (8.1.6); pair with `decompress`",
                         {{"tcp", {}}, {"ttsf", {}}, {"tcompress", {"lz"}}}});
  catalog.Register("decompress",
                   Entry{"mobile-side half of `compressed` (10.2.4 double proxy)",
                         {{"tcp", {}}, {"ttsf", {}}, {"tdecompress", {}}}});
  catalog.Register("background",
                   Entry{"low-priority stream: clamp advertised window (8.2.2)",
                         {{"tcp", {}}, {"wsize", {"clamp", "2000"}}}});
  catalog.Register("disconnect-tolerant",
                   Entry{"ZWSM disconnection management on wireless ifindex 2 (8.2.2)",
                         {{"tcp", {}}, {"wsize", {"zwsm", "2"}}}});
  catalog.Register("media-thin",
                   Entry{"layered media: base layer only (8.3.2)", {{"hdiscard", {"0"}}}});
  catalog.Register("media-adaptive",
                   Entry{"layered media: EEM-adaptive layer cut (8.3.2)",
                         {{"hdiscard", {"auto", "2"}}}});
  catalog.Register("monitored",
                   Entry{"passive per-stream accounting", {{"meter", {}}}});
  catalog.Register("partitioned-query",
                   Entry{"answer repeated queries at the proxy (app partitioning, ch. 1)",
                         {{"qcache", {}}}});
  catalog.Register("web-proxy",
                   Entry{"HTTP proxy mode: header rewriting on requests (8.3 at message tier)",
                         {{"tcp", {}}, {"ttsf", {}}, {"hrewrite", {}}}});
  catalog.Register("web-adaptive",
                   Entry{"HTTP content-aware transcode/discard on responses (8.3.2/8.3.3)",
                         {{"tcp", {}}, {"ttsf", {}}, {"htype", {"1"}}}});
  catalog.Register("dns-answering",
                   Entry{"answer repeated DNS queries at the proxy (app partitioning, ch. 1)",
                         {{"dnscache", {}}}});
  return catalog;
}

proxy::FilterRegistry StandardRegistry(const std::vector<std::string>& names) {
  proxy::FilterRegistry registry;
  RegisterStandardFilters(&registry);
  if (names.empty()) {
    for (const std::string& name : registry.known()) {
      registry.Load(name);
    }
  } else {
    for (const std::string& name : names) {
      registry.Load(name);
    }
  }
  return registry;
}

}  // namespace comma::filters

// The `launcher` filter (thesis §5.3.2): attached to a wild-card key; when
// the first packet of a new stream matching that key arrives, it adds a
// configured set of services to the new stream.
//
// Arguments: the service list, one token per filter, with optional filter
// arguments separated by colons — e.g. "tcp wsize" or "tcp rdrop:50".
#ifndef COMMA_FILTERS_LAUNCHER_FILTER_H_
#define COMMA_FILTERS_LAUNCHER_FILTER_H_

#include "src/proxy/filter.h"

namespace comma::filters {

// The launcher never sees packets — it acts at stream creation via
// OnNewStream — so it has no data-path direction to declare.
class LauncherFilter : public proxy::Filter {  // NOLINT(comma-filter-contract): no data-path direction; acts at stream creation via OnNewStream only
 public:
  LauncherFilter() : Filter("launcher", proxy::FilterPriority::kHighest) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  void OnNewStream(proxy::FilterContext& ctx, const proxy::StreamKey& stream) override;
  std::string Status() const override;

  uint64_t streams_launched() const { return streams_launched_; }

 private:
  struct Service {
    std::string filter;
    std::vector<std::string> args;
  };
  std::vector<Service> services_;
  uint64_t streams_launched_ = 0;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_LAUNCHER_FILTER_H_

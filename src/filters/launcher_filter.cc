#include "src/filters/launcher_filter.h"

#include "src/proxy/service_proxy.h"

#include "src/util/strings.h"

namespace comma::filters {

bool LauncherFilter::OnInsert(proxy::FilterContext&, const proxy::StreamKey& key,
                              const std::vector<std::string>& args, std::string* error) {
  if (!key.IsWildcard()) {
    if (error != nullptr) {
      *error = "launcher expects a wild-card key";
    }
    return false;
  }
  if (args.empty()) {
    if (error != nullptr) {
      *error = "launcher requires a service list, e.g. \"tcp wsize\"";
    }
    return false;
  }
  for (const std::string& token : args) {
    auto parts = util::Split(token, ':');
    Service service;
    service.filter = parts[0];
    service.args.assign(parts.begin() + 1, parts.end());
    services_.push_back(std::move(service));
  }
  return true;
}

void LauncherFilter::OnNewStream(proxy::FilterContext& ctx, const proxy::StreamKey& stream) {
  ++streams_launched_;
  for (const Service& service : services_) {
    std::string error;
    if (!ctx.proxy().AddService(service.filter, stream, service.args, &error)) {
      ctx.tracer().Logf(sim::TraceLevel::kWarn, "launcher", "cannot launch %s on %s: %s",
                        service.filter.c_str(), stream.ToString().c_str(), error.c_str());
    }
  }
}

std::string LauncherFilter::Status() const {
  return util::Format("launched=%llu services=%zu",
                      static_cast<unsigned long long>(streams_launched_), services_.size());
}

}  // namespace comma::filters

// The TCP-Transparency-Support Filter (TTSF) — thesis §8.1, Fig. 8.2.
//
// The TTSF lets other filters drop, shrink, or grow the payload of TCP
// segments without breaking the connection's end-to-end semantics. It keeps,
// per direction, a map between the *original* sequence space (what the
// sender emits) and the *output* sequence space (what the receiver sees):
//
//   - Each processed segment becomes a Record{orig_seq, orig_len, out_seq,
//     out_payload}. Transformer filters (tdrop, tcompress, tdecompress)
//     submit a replacement payload for the in-flight packet; absent a
//     submission the record is the identity.
//   - Data packets are rewritten into output space (seq shifted by the
//     accumulated length delta, payload replaced).
//   - Retransmissions are answered by *replaying the cached transform* so
//     the receiver always sees a consistent byte stream (§8.1.4: the same
//     data must always be modified the same way). A retransmission that
//     covers only part of a record is widened to the full record set — TCP
//     receivers discard duplicate bytes, so over-delivery is safe;
//     under-delivery or inconsistency is not.
//   - ACKs travelling the reverse path are mapped from output space back to
//     original space, conservatively rounding down inside a record so data
//     the receiver has not seen is never acknowledged to the sender.
//   - A segment transformed to zero bytes is dropped from the wire. Its
//     sequence range is acknowledged to the sender either by the mapping of
//     later ACKs, or — when it sits at the tail of the stream — by an ACK
//     the TTSF manufactures itself.
//
// SYN and FIN consume sequence numbers in both spaces; the TTSF tracks them
// so connection setup and teardown stay transparent.
#ifndef COMMA_FILTERS_TTSF_FILTER_H_
#define COMMA_FILTERS_TTSF_FILTER_H_

#include <deque>
#include <map>
#include <memory>

#include "src/obs/metric_registry.h"
#include "src/proxy/filter.h"

namespace comma::filters {

class SeqSpaceAuditor;

struct TtsfStats {
  uint64_t segments_transformed = 0;
  uint64_t segments_dropped = 0;       // Transformed to zero bytes.
  uint64_t retransmissions_replayed = 0;
  uint64_t acks_remapped = 0;
  uint64_t acks_injected = 0;
  uint64_t bytes_in = 0;   // Original payload bytes.
  uint64_t bytes_out = 0;  // Transformed payload bytes.
  uint64_t bypass_entries = 0;      // Stream pairs degraded to passthrough.
  uint64_t bypass_drained = 0;      // Held packets flushed on bypass entry.
  uint64_t bypass_passthrough = 0;  // Segments forwarded while bypassed.
};

class TtsfFilter : public proxy::Filter {
 public:
  TtsfFilter();
  ~TtsfFilter() override;

  // --- Transformer-facing API (called during the out pass, before TTSF) ---
  // Replaces the payload of `packet` (identified by uid) when TTSF processes
  // it. An empty payload drops the segment's bytes from the stream.
  void SubmitTransform(const net::Packet& packet, util::Bytes new_payload);
  void SubmitDrop(const net::Packet& packet) { SubmitTransform(packet, {}); }

  const TtsfStats& stats() const { return stats_; }

  // --- Graceful degradation (bypass-and-drain) ---
  // When the sequence map is no longer trustworthy (a quick health probe or
  // the SeqSpaceAuditor fails, or fault injection demands it), the stream
  // pair degrades to *bypass*: transforming stops, held packets drain, and
  // from then on every segment is forwarded with its original payload and a
  // constant sequence shift — the frozen frontier offset — so the map is
  // effectively identity-plus-constant and never again depends on cached
  // (possibly corrupt) state. Original bytes are by definition uncorrupted,
  // which is the degradation contract: a bypassed TTSF may stall a stream
  // whose transforms changed segment lengths, but it never delivers bytes
  // the sender did not send. A new SYN resets the direction and re-arms
  // transforming.
  void ForceBypass(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                   const std::string& reason);
  // True when `key`'s direction is in bypass mode.
  bool bypassed(const proxy::StreamKey& key) const;
  const std::string& bypass_reason() const { return bypass_reason_; }

  // --- Invariant auditing (active when util::DebugChecksEnabled()) ---
  // The SeqSpaceAuditor attached to this filter; runs over both directions
  // of a stream after every packet the TTSF processes.
  const SeqSpaceAuditor& auditor() const { return *auditor_; }
  // Audits both directions of `key` immediately (test hook; also fired from
  // Out() when debug checks are on).
  void AuditKey(const proxy::StreamKey& key);
  // Deliberately desynchronizes the offset map of `key`'s direction so tests
  // can prove the auditor fires. Returns false if there is nothing to
  // corrupt yet (no records).
  bool CorruptOffsetMapForTest(const proxy::StreamKey& key);

  // --- Filter interface ---
  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  void In(proxy::FilterContext& ctx, const proxy::StreamKey& key,
          const net::Packet& packet) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  std::string Status() const override;

  // --- Failover state contract (docs/robustness.md) ---
  // Exports every direction's offset map: frontiers, records with cached
  // replay payloads, ack bookkeeping. Held packets and pending transforms
  // are NOT exported — the sender's RTO re-delivers them, and the restored
  // map replays their transforms consistently. After ImportState each
  // restored direction is *provisional*: the first data packet either
  // confirms the map (data at or below the restored frontier) or proves the
  // checkpoint stale (data beyond it), in which case the direction enters
  // bypass-and-drain and resyncs from live traffic.
  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 private:
  struct Record {
    uint32_t orig_seq = 0;
    uint32_t orig_len = 0;  // Payload bytes only (FIN/SYN handled separately).
    uint32_t out_seq = 0;
    uint32_t out_len = 0;
    util::Bytes cached;    // Replay payload; empty for gap/FIN records.
    bool identity = false;  // Output bytes == original bytes.
    bool is_fin = false;   // A one-sequence-unit FIN marker record.
  };

  struct HeldPacket {
    net::PacketPtr packet;  // ACK field already remapped.
    bool has_transform = false;
    util::Bytes transform;
  };

  struct DirState {
    bool initialized = false;
    uint32_t orig_frontier = 0;  // Next unseen original sequence number.
    uint32_t out_frontier = 0;   // Its image in output space.
    std::deque<Record> records;  // Contiguous, ordered by orig_seq.
    // Packets that arrived beyond the frontier while transforms are active:
    // held until the gap fills, because their output position depends on the
    // (unknown) transform of the missing data.
    std::map<uint32_t, HeldPacket> held;
    // Highest ack (output space) seen from the receiver of this direction.
    bool ack_seen = false;
    uint32_t max_acked_out = 0;
    // Bookkeeping from the *reverse* travel direction, for injected ACKs.
    uint32_t peer_seq = 0;      // Receiver's current send position.
    uint16_t peer_window = 0;   // Receiver's last advertised window.
    bool transforms_used = false;
    // Degraded passthrough: frontiers are frozen (their difference is the
    // constant shift applied to everything), records are gone, transforms
    // are ignored. Cleared by the next SYN.
    bool bypass = false;
    // Set by ImportState: the map came from a checkpoint and has not yet
    // been confirmed by live traffic. Cleared by the first data packet at or
    // below the restored frontier; data beyond it enters bypass instead.
    bool restored = false;
  };

  proxy::FilterVerdict ProcessData(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                   net::Packet& packet, DirState& st);
  // Appends the record(s) for an in-order packet at the frontier and
  // rewrites the packet into output space. Returns kDrop when the packet's
  // image is empty.
  proxy::FilterVerdict ApplyInOrder(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                    DirState& st, net::Packet& packet, bool has_transform,
                                    util::Bytes transform);
  // Releases any held packets that are now in order, re-injecting them.
  void ReleaseHeld(proxy::FilterContext& ctx, const proxy::StreamKey& key, DirState& st);
  void RemapAck(net::Packet& packet, DirState& data_dir);
  uint32_t MapAckToOrig(const DirState& st, uint32_t ack_out) const;
  void AppendRecord(DirState& st, Record rec);
  void PruneAcked(DirState& st);
  void MaybeInjectTailAck(proxy::FilterContext& ctx, const proxy::StreamKey& key, DirState& st,
                          uint32_t acked_orig);
  // O(1) health probe run on every packet before the map is consulted: the
  // newest record must end exactly at both frontiers.
  bool MapHealthy(const DirState& st) const;
  // Degrades both travel directions of `key` to bypass and drains held
  // packets (shifted by the frozen offset, original payloads) in order.
  void EnterBypass(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                   const std::string& reason);
  void BypassDirection(proxy::FilterContext& ctx, DirState& st);

  friend class SeqSpaceAuditor;

  // Registry handles ("ttsf.*", docs/observability.md). Null sinks until
  // OnInsert binds them, so a TTSF constructed outside a proxy still runs.
  // Counters mirror TtsfStats and are advanced by delta in PublishObs;
  // bytes_dropped (the transform byte reduction Kati watches) is bumped at
  // the transform site itself.
  struct TtsfObs {
    obs::Counter* segments_transformed = obs::MetricRegistry::NullCounter();
    obs::Counter* segments_dropped = obs::MetricRegistry::NullCounter();
    obs::Counter* retransmissions_replayed = obs::MetricRegistry::NullCounter();
    obs::Counter* acks_remapped = obs::MetricRegistry::NullCounter();
    obs::Counter* acks_injected = obs::MetricRegistry::NullCounter();
    obs::Counter* bytes_in = obs::MetricRegistry::NullCounter();
    obs::Counter* bytes_out = obs::MetricRegistry::NullCounter();
    obs::Counter* bytes_dropped = obs::MetricRegistry::NullCounter();
    obs::Counter* bypass_entries = obs::MetricRegistry::NullCounter();
    obs::Gauge* offset_map_entries = obs::MetricRegistry::NullGauge();
    obs::Gauge* held_packets = obs::MetricRegistry::NullGauge();
  };
  void BindObs(proxy::FilterContext& ctx);
  // Advances the registry counters by the TtsfStats delta since the last
  // call and refreshes the map-size gauges. Called at the end of Out.
  void PublishObs();

  std::map<proxy::StreamKey, DirState> dirs_;
  std::map<uint64_t, util::Bytes> pending_;  // uid -> submitted payload.
  TtsfStats stats_;
  TtsfStats published_;  // Counter values already pushed to the registry.
  TtsfObs obs_;
  std::string bypass_reason_;  // First reason; empty while healthy.
  std::unique_ptr<SeqSpaceAuditor> auditor_;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_TTSF_FILTER_H_

#include "src/filters/snoop_filter.h"

#include "src/proxy/service_proxy.h"

#include "src/proxy/filter_state.h"
#include "src/util/strings.h"

namespace comma::filters {

using tcp::SeqGt;
using tcp::SeqLeq;

bool SnoopFilter::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           const std::vector<std::string>& args, std::string* error) {
  if (key.IsWildcard()) {
    if (error != nullptr) {
      *error = "snoop requires a concrete stream key (the data direction)";
    }
    return false;
  }
  data_key_ = key;
  ctx_ = &ctx.proxy().context();
  for (const std::string& arg : args) {
    if (arg == "fixed") {
      stall_gated_ = false;  // Ablation: plain fixed-period local timer.
      continue;
    }
    uint32_t rto_ms = 0;
    if (!util::ParseU32(arg, &rto_ms) || rto_ms == 0) {
      if (error != nullptr) {
        *error = "snoop: arguments are the local RTO in ms and/or \"fixed\"";
      }
      return false;
    }
    local_rto_ = static_cast<sim::Duration>(rto_ms) * sim::kMillisecond;
  }
  ctx.proxy().Attach(shared_from_this(), key.Reversed());
  ArmTimer(ctx);
  return true;
}

proxy::FilterVerdict SnoopFilter::Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                      net::Packet& packet) {
  if (!packet.has_tcp()) {
    return proxy::FilterVerdict::kPass;
  }
  if (key == data_key_) {
    HandleData(ctx, packet);
    return proxy::FilterVerdict::kPass;
  }
  return HandleAck(ctx, packet);
}

void SnoopFilter::HandleData(proxy::FilterContext& ctx, net::Packet& packet) {
  if (packet.payload().empty()) {
    return;
  }
  const uint32_t seq = packet.tcp().seq;
  if (ack_seen_ && SeqLeq(seq + static_cast<uint32_t>(packet.payload().size()), last_ack_)) {
    return;  // Already acknowledged; no point caching.
  }
  auto it = cache_.find(seq);
  if (it == cache_.end()) {
    if (cache_.size() >= cache_limit_) {
      return;  // Cache full: pass through uncached.
    }
    CachedSegment seg;
    seg.packet = packet.Clone();
    seg.cached_at = ctx.simulator().Now();
    cache_.emplace(seq, std::move(seg));
    ++stats_.segments_cached;
  } else {
    // Sender retransmission: refresh the cache entry.
    it->second.packet = packet.Clone();
    it->second.cached_at = ctx.simulator().Now();
  }
}

proxy::FilterVerdict SnoopFilter::HandleAck(proxy::FilterContext& ctx, net::Packet& packet) {
  if (!(packet.tcp().flags & net::kTcpAck)) {
    return proxy::FilterVerdict::kPass;
  }
  const uint32_t ack = packet.tcp().ack;
  if (!ack_seen_ || SeqGt(ack, last_ack_)) {
    // New ack: flush acknowledged segments and pass it to the sender.
    ack_seen_ = true;
    last_ack_ = ack;
    dupack_count_ = 0;
    last_progress_ = ctx.simulator().Now();
    for (auto it = cache_.begin(); it != cache_.end();) {
      const uint32_t end =
          it->first + static_cast<uint32_t>(it->second.packet->payload().size());
      if (SeqLeq(end, ack)) {
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
    return proxy::FilterVerdict::kPass;
  }
  if (ack == last_ack_ && packet.payload().empty() &&
      !(packet.tcp().flags & (net::kTcpSyn | net::kTcpFin))) {
    // Duplicate ack: the mobile is missing the segment at `ack`. If we have
    // it, retransmit locally and suppress the dupack so the wired sender
    // never enters fast retransmit (§8.2.1).
    auto it = cache_.find(ack);
    if (it != cache_.end()) {
      ++dupack_count_;
      if (dupack_count_ == 1) {
        ++stats_.local_retransmits;
        RetransmitFromCache(ack);
      }
      ++stats_.dupacks_suppressed;
      return proxy::FilterVerdict::kDrop;
    }
  }
  return proxy::FilterVerdict::kPass;
}

void SnoopFilter::RetransmitFromCache(uint32_t seq) {
  auto it = cache_.find(seq);
  if (it == cache_.end() || ctx_ == nullptr) {
    return;
  }
  ++stats_.cache_hits;
  ++it->second.local_retransmits;
  it->second.cached_at = ctx_->simulator().Now();
  ctx_->InjectPacket(it->second.packet->Clone());
}

void SnoopFilter::ArmTimer(proxy::FilterContext& ctx) {
  proxy::FilterPtr self = shared_from_this();
  timer_ = ctx.simulator().ScheduleTimer(local_rto_, [self, this] { OnTimer(); });
}

void SnoopFilter::OnTimer() {
  timer_ = sim::kInvalidTimerId;
  if (ctx_ == nullptr) {
    return;  // Detached.
  }
  // Retransmit the oldest unacknowledged cached segment only if acks have
  // genuinely stalled (the loss also killed the dupacks). While acks are
  // progressing, queueing delay alone must never trigger duplicates.
  const sim::TimePoint now = ctx_->simulator().Now();
  if (!cache_.empty() && (!stall_gated_ || now - last_progress_ >= local_rto_)) {
    auto it = cache_.begin();
    if (now - it->second.cached_at >= local_rto_ && it->second.local_retransmits < 8) {
      ++stats_.timer_retransmits;
      RetransmitFromCache(it->first);
      last_progress_ = now;  // Back off: wait another RTO before retrying.
    }
  }
  ArmTimer(*ctx_);
}

void SnoopFilter::OnDetach(proxy::FilterContext& ctx, const proxy::StreamKey& key) {
  if (key == data_key_) {
    if (timer_ != sim::kInvalidTimerId) {
      ctx.simulator().Cancel(timer_);
      timer_ = sim::kInvalidTimerId;
    }
    ctx_ = nullptr;
    cache_.clear();
  }
}

// --- Failover state contract ---
//
// "SNOP" v1: u8 flags (ack_seen), u32 last_ack, 5 × u64 stats. The segment
// cache re-warms from the sender's retransmissions after a takeover (the
// thesis-era rebuild-from-wire escape applied to one part of the state).

namespace {
constexpr char kSnoopStateMagic[] = "SNOP";
constexpr uint8_t kSnoopStateVersion = 1;
}  // namespace

proxy::FilterStateKind SnoopFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool SnoopFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kSnoopStateMagic, kSnoopStateVersion);
  w.WriteU8(ack_seen_ ? 1 : 0);
  w.WriteU32(last_ack_);
  w.WriteU64(stats_.segments_cached);
  w.WriteU64(stats_.local_retransmits);
  w.WriteU64(stats_.timer_retransmits);
  w.WriteU64(stats_.dupacks_suppressed);
  w.WriteU64(stats_.cache_hits);
  return true;
}

bool SnoopFilter::ImportState(proxy::FilterContext& ctx, const util::Bytes& in,
                              std::string* error) {
  util::ByteReader r(in);
  std::optional<uint8_t> version = proxy::ReadStateHeader(&r, kSnoopStateMagic);
  if (!version.has_value() || *version != kSnoopStateVersion) {
    if (error != nullptr) {
      *error = "snoop import: bad magic or version";
    }
    return false;
  }
  const uint8_t flags = r.ReadU8();
  const uint32_t last_ack = r.ReadU32();
  SnoopStats stats;
  stats.segments_cached = r.ReadU64();
  stats.local_retransmits = r.ReadU64();
  stats.timer_retransmits = r.ReadU64();
  stats.dupacks_suppressed = r.ReadU64();
  stats.cache_hits = r.ReadU64();
  if (r.failed()) {
    if (error != nullptr) {
      *error = "snoop import: truncated blob";
    }
    return false;
  }
  ack_seen_ = (flags & 1u) != 0;
  last_ack_ = last_ack;
  stats_ = stats;
  dupack_count_ = 0;
  // The stall gate restarts from takeover time: the gap the crash tore into
  // the ack stream must not count as a stall at the standby.
  last_progress_ = ctx.simulator().Now();
  return true;
}

std::string SnoopFilter::Status() const {
  return util::Format("cached=%llu local_rtx=%llu timer_rtx=%llu dupacks_suppressed=%llu",
                      static_cast<unsigned long long>(stats_.segments_cached),
                      static_cast<unsigned long long>(stats_.local_retransmits),
                      static_cast<unsigned long long>(stats_.timer_retransmits),
                      static_cast<unsigned long long>(stats_.dupacks_suppressed));
}

}  // namespace comma::filters

#include "src/filters/http_filters.h"

#include <algorithm>

#include "src/filters/transform_filters.h"
#include "src/filters/ttsf_filter.h"
#include "src/proxy/filter_state.h"
#include "src/proxy/service_proxy.h"
#include "src/util/compress.h"
#include "src/util/strings.h"

namespace comma::filters {

namespace {

// Heads larger than this are not HTTP traffic we understand; fail open
// rather than buffer without bound.
constexpr size_t kMaxHeadBytes = 8 * 1024;

constexpr char kHrewriteStateMagic[] = "HRWR";
constexpr char kHtypeStateMagic[] = "HTYP";
constexpr uint8_t kHttpStateVersion = 1;

bool IsHopByHopHeader(const std::string& name) {
  static const char* kHopByHop[] = {"Connection",       "Keep-Alive", "Proxy-Connection",
                                    "TE",               "Upgrade",    "Trailer"};
  for (const char* h : kHopByHop) {
    if (reassembly::HeaderNameEquals(name, h)) {
      return true;
    }
  }
  return false;
}

// Splits a complete header block (including the trailing blank line) into
// its start line and parsed headers. Returns false on malformed structure.
bool SplitHead(const std::string& head, std::string* start_line,
               std::vector<reassembly::HttpHeader>* headers) {
  size_t pos = 0;
  bool first = true;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) {
      return false;
    }
    std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (first) {
      if (line.empty()) {
        return false;
      }
      *start_line = std::move(line);
      first = false;
      continue;
    }
    if (line.empty()) {
      return true;  // Blank line: end of head.
    }
    reassembly::HttpHeader h;
    if (!reassembly::ParseHeaderLine(line, &h)) {
      return false;
    }
    headers->push_back(std::move(h));
  }
  return false;
}

// Parses a Content-Length value; returns false on a non-numeric or absurd
// length.
bool ParseContentLength(const std::string& value, size_t* out) {
  if (value.empty()) {
    return false;
  }
  size_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return false;
    }
    n = n * 10 + static_cast<size_t>(c - '0');
    if (n > (1u << 30)) {
      return false;
    }
  }
  *out = n;
  return true;
}

void AppendString(util::Bytes* out, const std::string& s) {
  out->insert(out->end(), util::AsBytePtr(s.data()), util::AsBytePtr(s.data()) + s.size());
}

bool StateVersionOk(util::ByteReader* r, const char* magic, std::string* error, const char* who) {
  std::optional<uint8_t> version = proxy::ReadStateHeader(r, magic);
  if (!version.has_value() || *version != kHttpStateVersion) {
    if (error != nullptr) {
      *error = std::string(who) + " import: bad magic or version";
    }
    return false;
  }
  return true;
}

}  // namespace

// --- HttpStreamFilterBase: the reassembler/TTSF protocol ---

bool HttpStreamFilterBase::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                    const std::vector<std::string>& args, std::string* error) {
  if (key.IsWildcard()) {
    if (error != nullptr) {
      *error = name() + " requires a concrete stream key";
    }
    return false;
  }
  if (ctx.FindFilterOnKey(key, "ttsf") == nullptr) {
    if (error != nullptr) {
      *error = name() + " requires a ttsf filter on the stream (add ttsf first)";
    }
    return false;
  }
  if (WatchesResponses()) {
    // The service is requested on the request-direction key; this filter
    // rewrites the responses flowing the other way.
    data_key_ = key.Reversed();
    ctx.proxy().Attach(shared_from_this(), data_key_);
  } else {
    data_key_ = key;
  }
  obs_fail_open_ = ctx.metrics()->GetCounter("http.fail_open");
  obs_bytes_in_ = ctx.metrics()->GetCounter("http.bytes_in");
  obs_bytes_out_ = ctx.metrics()->GetCounter("http.bytes_out");
  return Configure(ctx, args, error);
}

void HttpStreamFilterBase::LatchFailOpen(proxy::FilterContext& ctx, const char* reason) {
  if (fail_open_) {
    return;
  }
  fail_open_ = true;
  obs_fail_open_->Inc();
  ctx.tracer().Logf(sim::TraceLevel::kWarn, name().c_str(), "fail-open %s: %s",
                    data_key_.ToString().c_str(), reason);
}

proxy::FilterVerdict HttpStreamFilterBase::Out(proxy::FilterContext& ctx,
                                               const proxy::StreamKey& key, net::Packet& packet) {
  if (!packet.has_tcp() || !(key == data_key_)) {
    return proxy::FilterVerdict::kPass;
  }
  auto& h = packet.tcp();
  if (h.flags & net::kTcpSyn) {
    // Fresh connection on the key: restart everything (the TTSF re-arms on
    // SYN the same way).
    reassembler_ = reassembly::StreamReassembler();
    reassembler_.OnSyn(h.seq);
    fail_open_ = false;
    ResetScanner();
    return proxy::FilterVerdict::kPass;
  }
  if (h.flags & net::kTcpRst) {
    LatchFailOpen(ctx, "stream reset");
    return proxy::FilterVerdict::kPass;
  }
  if (fail_open_) {
    return proxy::FilterVerdict::kPass;
  }
  const bool fin = (h.flags & net::kTcpFin) != 0;
  const util::Bytes& payload = packet.payload();
  if (payload.empty() && !fin) {
    return proxy::FilterVerdict::kPass;  // Pure ACK.
  }
  auto* ttsf = dynamic_cast<TtsfFilter*>(ctx.FindFilterOnKey(key, "ttsf"));
  if (ttsf == nullptr || ttsf->bypassed(key)) {
    LatchFailOpen(ctx, "ttsf missing or bypassed");
    return proxy::FilterVerdict::kPass;
  }
  // Below-frontier data is a retransmission (or a frontier-straddling one):
  // the TTSF replays its recorded transforms for it — and discards any
  // submission — so it must not reach the reassembler, whose clipped
  // delivery would double-consume the suffix. A straddle is under-delivered
  // by the replay; the sender's retransmission from the frontier repairs it.
  if (reassembler_.initialized() && !payload.empty() &&
      tcp::SeqLt(h.seq, reassembler_.frontier())) {
    return proxy::FilterVerdict::kPass;
  }
  const uint64_t oow_before = reassembler_.stats().out_of_window;
  util::Bytes delivered;
  reassembler_.OnSegment(h.seq, payload, fin, &delivered);
  obs_bytes_in_->Inc(payload.size());
  if (reassembler_.failed()) {
    LatchFailOpen(ctx, "reassembly buffer overflow");
    return proxy::FilterVerdict::kPass;
  }
  if (!delivered.empty()) {
    bool failed = false;
    util::Bytes out = ScanBytes(delivered, &failed);
    if (!failed && fin && reassembler_.finished()) {
      util::Bytes tail = FlushScanner();
      out.insert(out.end(), tail.begin(), tail.end());
    }
    obs_bytes_out_->Inc(out.size());
    ttsf->SubmitTransform(packet, std::move(out));
    if (failed) {
      LatchFailOpen(ctx, "unparseable http content");
    }
    return proxy::FilterVerdict::kPass;
  }
  if (payload.empty()) {
    return proxy::FilterVerdict::kPass;  // Bare FIN.
  }
  if (reassembler_.stats().out_of_window != oow_before) {
    // The reassembler refused to buffer it; we can neither consume nor
    // safely drop it, so stop interpreting the stream.
    LatchFailOpen(ctx, "segment beyond buffering window");
    return proxy::FilterVerdict::kPass;
  }
  // Beyond-frontier segment, now buffered in the reassembler. Submit the
  // empty transform: the TTSF holds the packet and releases it as a drop
  // once the gap fills — the gap-filler's transform carries these bytes.
  ttsf->SubmitDrop(packet);
  return proxy::FilterVerdict::kPass;
}

// --- hrewrite ---

bool HrewriteFilter::Configure(proxy::FilterContext& ctx, const std::vector<std::string>&,
                               std::string*) {
  client_addr_ = data_key_.src.ToString();
  obs_requests_ = ctx.metrics()->GetCounter("http.requests_rewritten");
  obs_stripped_ = ctx.metrics()->GetCounter("http.hop_headers_stripped");
  return true;
}

void HrewriteFilter::ResetScanner() {
  head_buf_.clear();
  body_remaining_ = 0;
  in_body_ = false;
}

util::Bytes HrewriteFilter::FlushScanner() {
  util::Bytes out = util::ToBytes(head_buf_);
  head_buf_.clear();
  return out;
}

util::Bytes HrewriteFilter::RewriteHead(const std::string& head, bool* failed) {
  std::string start_line;
  std::vector<reassembly::HttpHeader> headers;
  if (!SplitHead(head, &start_line, &headers)) {
    *failed = true;
    return {};
  }
  // Only message framings we can follow: no body, or Content-Length.
  body_remaining_ = 0;
  std::string rewritten = start_line + "\r\n";
  for (const auto& hdr : headers) {
    if (reassembly::HeaderNameEquals(hdr.name, "Transfer-Encoding")) {
      *failed = true;  // Chunked requests are not interpreted.
      return {};
    }
    if (reassembly::HeaderNameEquals(hdr.name, "Content-Length")) {
      if (!ParseContentLength(hdr.value, &body_remaining_)) {
        *failed = true;
        return {};
      }
    }
    if (IsHopByHopHeader(hdr.name)) {
      ++headers_stripped_;
      obs_stripped_->Inc();
      continue;
    }
    rewritten += hdr.name + ": " + hdr.value + "\r\n";
  }
  rewritten += "Via: 1.1 comma-proxy\r\n";
  rewritten += "X-Forwarded-For: " + client_addr_ + "\r\n";
  rewritten += "\r\n";
  in_body_ = body_remaining_ > 0;
  ++requests_rewritten_;
  obs_requests_->Inc();
  return util::ToBytes(rewritten);
}

util::Bytes HrewriteFilter::ScanBytes(const util::Bytes& data, bool* failed) {
  util::Bytes out;
  size_t i = 0;
  while (i < data.size()) {
    if (in_body_) {
      const size_t n = std::min(data.size() - i, body_remaining_);
      out.insert(out.end(), data.begin() + static_cast<long>(i),
                 data.begin() + static_cast<long>(i + n));
      body_remaining_ -= n;
      i += n;
      if (body_remaining_ == 0) {
        in_body_ = false;  // Next message (pipelining).
      }
      continue;
    }
    head_buf_.push_back(static_cast<char>(data[i]));
    ++i;
    const bool head_done =
        head_buf_.size() >= 4 && head_buf_.compare(head_buf_.size() - 4, 4, "\r\n\r\n") == 0;
    if (!head_done) {
      if (head_buf_.size() > kMaxHeadBytes) {
        *failed = true;
      }
      continue;
    }
    util::Bytes head_out = RewriteHead(head_buf_, failed);
    if (*failed) {
      break;
    }
    head_buf_.clear();
    out.insert(out.end(), head_out.begin(), head_out.end());
  }
  if (*failed) {
    // Nothing already consumed may be lost at the fail-open boundary: emit
    // the buffered head and the rest of this delivery raw.
    AppendString(&out, head_buf_);
    head_buf_.clear();
    out.insert(out.end(), data.begin() + static_cast<long>(i), data.end());
  }
  return out;
}

std::string HrewriteFilter::Status() const {
  return util::Format("rewritten=%llu stripped=%llu%s",
                      static_cast<unsigned long long>(requests_rewritten_),
                      static_cast<unsigned long long>(headers_stripped_),
                      fail_open_ ? " FAIL-OPEN" : "");
}

proxy::FilterStateKind HrewriteFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool HrewriteFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kHrewriteStateMagic, kHttpStateVersion);
  w.WriteU8(reassembler_.initialized() ? 1 : 0);
  w.WriteU32(reassembler_.frontier());
  w.WriteU8(fail_open_ ? 1 : 0);
  w.WriteU8(in_body_ ? 1 : 0);
  w.WriteU64(body_remaining_);
  w.WriteString(head_buf_);
  w.WriteU64(requests_rewritten_);
  w.WriteU64(headers_stripped_);
  return true;
}

bool HrewriteFilter::ImportState(proxy::FilterContext&, const util::Bytes& in,
                                 std::string* error) {
  util::ByteReader r(in);
  if (!StateVersionOk(&r, kHrewriteStateMagic, error, "hrewrite")) {
    return false;
  }
  const bool has_stream = r.ReadU8() != 0;
  const uint32_t frontier = r.ReadU32();
  const bool fail_open = r.ReadU8() != 0;
  const bool in_body = r.ReadU8() != 0;
  const uint64_t body_remaining = r.ReadU64();
  const std::string head_buf = r.ReadString();
  const uint64_t rewritten = r.ReadU64();
  const uint64_t stripped = r.ReadU64();
  if (r.failed()) {
    if (error != nullptr) {
      *error = "hrewrite import: truncated blob";
    }
    return false;
  }
  if (has_stream) {
    reassembler_.RestoreFrontier(frontier);
  }
  fail_open_ = fail_open;
  in_body_ = in_body;
  body_remaining_ = static_cast<size_t>(body_remaining);
  head_buf_ = head_buf;
  requests_rewritten_ = rewritten;
  headers_stripped_ = stripped;
  return true;
}

// --- htype ---

bool HtypeFilter::Configure(proxy::FilterContext& ctx, const std::vector<std::string>& args,
                            std::string* error) {
  if (!args.empty()) {
    uint32_t layer = 0;
    if (!util::ParseU32(args[0], &layer) || layer > 8) {
      if (error != nullptr) {
        *error = "htype: optional argument is the max media layer to keep (0-8)";
      }
      return false;
    }
    max_layer_ = static_cast<int>(layer);
  }
  obs_transcoded_ = ctx.metrics()->GetCounter("http.responses_transcoded");
  obs_frames_dropped_ = ctx.metrics()->GetCounter("http.media_frames_dropped");
  return true;
}

void HtypeFilter::ResetScanner() {
  head_buf_.clear();
  mode_ = BodyMode::kNone;
  body_remaining_ = 0;
  carry_.clear();
}

util::Bytes HtypeFilter::FlushScanner() {
  util::Bytes out = util::ToBytes(head_buf_);
  head_buf_.clear();
  out.insert(out.end(), carry_.begin(), carry_.end());
  carry_.clear();
  return out;
}

void HtypeFilter::EmitChunk(const util::Bytes& piece, util::Bytes* out) {
  if (piece.empty()) {
    return;
  }
  AppendString(out, util::Format("%zx\r\n", piece.size()));
  out->insert(out->end(), piece.begin(), piece.end());
  AppendString(out, "\r\n");
}

util::Bytes HtypeFilter::RewriteHead(const std::string& head, bool* failed) {
  std::string start_line;
  std::vector<reassembly::HttpHeader> headers;
  if (!SplitHead(head, &start_line, &headers)) {
    *failed = true;
    return {};
  }
  size_t content_length = 0;
  bool has_length = false;
  std::string content_type;
  for (const auto& hdr : headers) {
    if (reassembly::HeaderNameEquals(hdr.name, "Transfer-Encoding")) {
      *failed = true;  // Already chunked upstream: not interpreted.
      return {};
    }
    if (reassembly::HeaderNameEquals(hdr.name, "Content-Length")) {
      if (!ParseContentLength(hdr.value, &content_length)) {
        *failed = true;
        return {};
      }
      has_length = true;
    }
    if (reassembly::HeaderNameEquals(hdr.name, "Content-Type")) {
      content_type = hdr.value;
    }
  }
  if (!has_length || content_length == 0) {
    // Bodiless (or unknown-length, which we refuse to guess at): pass the
    // head unchanged and look for the next message.
    if (!has_length) {
      *failed = true;
      return {};
    }
    mode_ = BodyMode::kNone;
    return util::ToBytes(head);
  }
  body_remaining_ = content_length;
  const bool is_text = reassembly::ValueHasPrefix(content_type, "text/");
  const bool is_media = reassembly::ValueHasPrefix(content_type, kMediaContentType);
  if (!is_text && !is_media) {
    mode_ = BodyMode::kIdentity;
    return util::ToBytes(head);
  }
  // Transcoded body: final length is unknown at head time, so re-frame as
  // chunked; Content-Length goes, X-Comma-Encoding marks compressed-blob
  // bodies for the receiver (media frames are self-describing).
  mode_ = is_text ? BodyMode::kText : BodyMode::kMedia;
  carry_.clear();
  std::string rewritten = start_line + "\r\n";
  for (const auto& hdr : headers) {
    if (reassembly::HeaderNameEquals(hdr.name, "Content-Length")) {
      continue;
    }
    rewritten += hdr.name + ": " + hdr.value + "\r\n";
  }
  rewritten += "Transfer-Encoding: chunked\r\n";
  if (is_text) {
    rewritten += std::string(kEncodingHeader) + ": " + kEncodingFrames + "\r\n";
  }
  rewritten += "\r\n";
  ++responses_transcoded_;
  obs_transcoded_->Inc();
  return util::ToBytes(rewritten);
}

void HtypeFilter::ConsumeBody(const util::Bytes& data, size_t* idx, util::Bytes* out) {
  const size_t n = std::min(data.size() - *idx, body_remaining_);
  const auto begin = data.begin() + static_cast<long>(*idx);
  const auto end = begin + static_cast<long>(n);
  switch (mode_) {
    case BodyMode::kIdentity: {
      out->insert(out->end(), begin, end);
      break;
    }
    case BodyMode::kText: {
      util::Bytes piece(begin, end);
      EmitChunk(FrameCompressedBlob(util::Compress(piece, util::Codec::kLz)), out);
      break;
    }
    case BodyMode::kMedia: {
      carry_.insert(carry_.end(), begin, end);
      util::Bytes kept;
      size_t pos = 0;
      // Frames are [layer, type, u16 len BE, payload].
      while (carry_.size() - pos >= 4) {
        const uint8_t layer = carry_[pos];
        const size_t frame_len =
            4 + ((static_cast<size_t>(carry_[pos + 2]) << 8) | carry_[pos + 3]);
        if (carry_.size() - pos < frame_len) {
          break;
        }
        if (layer <= static_cast<uint8_t>(max_layer_)) {
          kept.insert(kept.end(), carry_.begin() + static_cast<long>(pos),
                      carry_.begin() + static_cast<long>(pos + frame_len));
        } else {
          ++frames_dropped_;
          obs_frames_dropped_->Inc();
        }
        pos += frame_len;
      }
      carry_.erase(carry_.begin(), carry_.begin() + static_cast<long>(pos));
      EmitChunk(kept, out);
      break;
    }
    case BodyMode::kNone:
      break;
  }
  body_remaining_ -= n;
  *idx += n;
  if (body_remaining_ == 0) {
    if (mode_ == BodyMode::kMedia && !carry_.empty()) {
      // Misaligned trailing bytes: deliver them raw rather than lose them.
      EmitChunk(carry_, out);
      carry_.clear();
    }
    if (mode_ != BodyMode::kIdentity) {
      AppendString(out, "0\r\n\r\n");  // Chunked terminator.
    }
    mode_ = BodyMode::kNone;
  }
}

util::Bytes HtypeFilter::ScanBytes(const util::Bytes& data, bool* failed) {
  util::Bytes out;
  size_t i = 0;
  while (i < data.size()) {
    if (mode_ != BodyMode::kNone) {
      ConsumeBody(data, &i, &out);
      continue;
    }
    head_buf_.push_back(static_cast<char>(data[i]));
    ++i;
    const bool head_done =
        head_buf_.size() >= 4 && head_buf_.compare(head_buf_.size() - 4, 4, "\r\n\r\n") == 0;
    if (!head_done) {
      if (head_buf_.size() > kMaxHeadBytes) {
        *failed = true;
      }
      continue;
    }
    util::Bytes head_out = RewriteHead(head_buf_, failed);
    if (*failed) {
      break;
    }
    head_buf_.clear();
    out.insert(out.end(), head_out.begin(), head_out.end());
  }
  if (*failed) {
    AppendString(&out, head_buf_);
    head_buf_.clear();
    out.insert(out.end(), carry_.begin(), carry_.end());
    carry_.clear();
    out.insert(out.end(), data.begin() + static_cast<long>(i), data.end());
  }
  return out;
}

std::string HtypeFilter::Status() const {
  return util::Format("max_layer=%d transcoded=%llu frames_dropped=%llu%s", max_layer_,
                      static_cast<unsigned long long>(responses_transcoded_),
                      static_cast<unsigned long long>(frames_dropped_),
                      fail_open_ ? " FAIL-OPEN" : "");
}

proxy::FilterStateKind HtypeFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool HtypeFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kHtypeStateMagic, kHttpStateVersion);
  w.WriteU8(reassembler_.initialized() ? 1 : 0);
  w.WriteU32(reassembler_.frontier());
  w.WriteU8(fail_open_ ? 1 : 0);
  w.WriteU8(static_cast<uint8_t>(mode_));
  w.WriteU8(static_cast<uint8_t>(max_layer_));
  w.WriteU64(body_remaining_);
  w.WriteString(head_buf_);
  w.WriteString(util::ToString(carry_));
  w.WriteU64(responses_transcoded_);
  w.WriteU64(frames_dropped_);
  return true;
}

bool HtypeFilter::ImportState(proxy::FilterContext&, const util::Bytes& in, std::string* error) {
  util::ByteReader r(in);
  if (!StateVersionOk(&r, kHtypeStateMagic, error, "htype")) {
    return false;
  }
  const bool has_stream = r.ReadU8() != 0;
  const uint32_t frontier = r.ReadU32();
  const bool fail_open = r.ReadU8() != 0;
  const uint8_t mode = r.ReadU8();
  const uint8_t max_layer = r.ReadU8();
  const uint64_t body_remaining = r.ReadU64();
  const std::string head_buf = r.ReadString();
  const std::string carry = r.ReadString();
  const uint64_t transcoded = r.ReadU64();
  const uint64_t dropped = r.ReadU64();
  if (r.failed() || mode > static_cast<uint8_t>(BodyMode::kMedia)) {
    if (error != nullptr) {
      *error = "htype import: truncated or malformed blob";
    }
    return false;
  }
  if (has_stream) {
    reassembler_.RestoreFrontier(frontier);
  }
  fail_open_ = fail_open;
  mode_ = static_cast<BodyMode>(mode);
  max_layer_ = max_layer;
  body_remaining_ = static_cast<size_t>(body_remaining);
  head_buf_ = head_buf;
  carry_ = util::ToBytes(carry);
  responses_transcoded_ = transcoded;
  frames_dropped_ = dropped;
  return true;
}

}  // namespace comma::filters

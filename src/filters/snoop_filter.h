// The `snoop` filter (thesis §8.2.1, after Balakrishnan et al.).
//
// A TCP-aware local-recovery service at the wired/wireless boundary:
//  - data segments heading to the mobile are cached until acknowledged;
//  - duplicate acks from the mobile trigger an immediate *local*
//    retransmission from the cache and are suppressed, so the wired sender
//    never sees them and never mistakes wireless corruption for congestion;
//  - a local timer retransmits cached segments the mobile never
//    acknowledged (losses that also killed the dupacks).
//
// Attach the filter to the data-bearing key (wired sender -> mobile); the
// insertion method also attaches to the reverse (ack) key.
#ifndef COMMA_FILTERS_SNOOP_FILTER_H_
#define COMMA_FILTERS_SNOOP_FILTER_H_

#include <map>

#include "src/proxy/filter.h"
#include "src/tcp/seq.h"

namespace comma::filters {

struct SnoopStats {
  uint64_t segments_cached = 0;
  uint64_t local_retransmits = 0;
  uint64_t timer_retransmits = 0;
  uint64_t dupacks_suppressed = 0;
  uint64_t cache_hits = 0;
};

class SnoopFilter : public proxy::Filter {
 public:
  SnoopFilter() : Filter("snoop", proxy::FilterPriority::kNormal) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  void OnDetach(proxy::FilterContext& ctx, const proxy::StreamKey& key) override;
  std::string Status() const override;

  // Failover (docs/robustness.md): the ack-tracking state is checkpointed;
  // the segment cache is deliberately kRebuildFromWire in spirit — it
  // re-warms from the sender's retransmissions, so it is not exported.
  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

  const SnoopStats& stats() const { return stats_; }

 private:
  struct CachedSegment {
    net::PacketPtr packet;
    sim::TimePoint cached_at = 0;
    int local_retransmits = 0;
  };

  void HandleData(proxy::FilterContext& ctx, net::Packet& packet);
  proxy::FilterVerdict HandleAck(proxy::FilterContext& ctx, net::Packet& packet);
  void RetransmitFromCache(uint32_t seq);
  void ArmTimer(proxy::FilterContext& ctx);
  void OnTimer();

  proxy::StreamKey data_key_;
  proxy::FilterContext* ctx_ = nullptr;
  std::map<uint32_t, CachedSegment> cache_;  // By segment seq (bounded).
  bool ack_seen_ = false;
  uint32_t last_ack_ = 0;
  uint32_t dupack_count_ = 0;
  // When cumulative acks last advanced. The local timer only fires when
  // progress has genuinely stalled — otherwise deep-queue delay (which can
  // exceed any fixed RTO) would trigger spurious duplicate retransmissions,
  // whose re-acks would reach the sender as dupacks.
  sim::TimePoint last_progress_ = 0;
  sim::TimerId timer_ = sim::kInvalidTimerId;
  sim::Duration local_rto_ = 200 * sim::kMillisecond;
  // Stall-gated timer (default): only retransmit when acks stop advancing.
  // `fixed` argument reverts to a plain fixed-period timer (the ablation in
  // bench_ablation shows why stall gating matters under deep queues).
  bool stall_gated_ = true;
  size_t cache_limit_ = 256;
  SnoopStats stats_;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_SNOOP_FILTER_H_

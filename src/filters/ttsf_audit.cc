#include "src/filters/ttsf_audit.h"

#include "src/tcp/seq.h"
#include "src/util/check.h"

namespace comma::filters {

using tcp::SeqGt;
using tcp::SeqLeq;

void SeqSpaceAuditor::AuditDirection(const proxy::StreamKey& key,
                                     const TtsfFilter::DirState& st) {
  ++audits_;
  if (st.bypass) {
    // Degraded passthrough: records are gone and the frozen frontiers no
    // longer bound max_acked_out (the receiver keeps acking drained and
    // shifted data). The only invariant left is that bypass really did
    // discard the map.
    COMMA_CHECK(st.records.empty())
        << "ttsf " << key.ToString() << ": bypassed direction still holds records";
    COMMA_CHECK(st.held.empty())
        << "ttsf " << key.ToString() << ": bypassed direction still holds packets";
    return;
  }
  if (!st.initialized) {
    COMMA_CHECK(st.records.empty())
        << "ttsf " << key.ToString() << ": records exist before initialization";
    COMMA_CHECK(st.held.empty())
        << "ttsf " << key.ToString() << ": held packets before initialization";
    return;
  }

  const TtsfFilter::Record* prev = nullptr;
  for (const TtsfFilter::Record& rec : st.records) {
    ++records_checked_;
    // Internal consistency of the record itself.
    if (rec.is_fin) {
      COMMA_CHECK_EQ(rec.orig_len, 1u) << "ttsf " << key.ToString() << ": FIN record width";
      COMMA_CHECK_EQ(rec.out_len, 1u) << "ttsf " << key.ToString() << ": FIN record width";
      COMMA_CHECK(rec.cached.empty())
          << "ttsf " << key.ToString() << ": FIN record carries payload";
    } else {
      COMMA_CHECK_EQ(rec.cached.size(), static_cast<size_t>(rec.out_len))
          << "ttsf " << key.ToString() << ": cached replay payload does not match out_len at orig_seq "
          << rec.orig_seq;
      if (rec.identity) {
        COMMA_CHECK_EQ(rec.orig_len, rec.out_len)
            << "ttsf " << key.ToString() << ": identity record changed length at orig_seq "
            << rec.orig_seq;
      }
    }
    // Contiguity in both sequence spaces: each record starts exactly where
    // the previous one ended. (uint32 wrap-around is handled by the modular
    // equality itself.)
    if (prev != nullptr) {
      COMMA_CHECK_EQ(prev->orig_seq + prev->orig_len, rec.orig_seq)
          << "ttsf " << key.ToString() << ": gap or overlap in original sequence space";
      COMMA_CHECK_EQ(prev->out_seq + prev->out_len, rec.out_seq)
          << "ttsf " << key.ToString() << ": gap or overlap in output sequence space";
    }
    prev = &rec;
  }

  // The record list must end exactly at the frontiers: the next in-order
  // byte continues both spaces without a seam.
  if (prev != nullptr) {
    COMMA_CHECK_EQ(prev->orig_seq + prev->orig_len, st.orig_frontier)
        << "ttsf " << key.ToString() << ": records end " << prev->orig_seq + prev->orig_len
        << " but orig frontier is " << st.orig_frontier;
    COMMA_CHECK_EQ(prev->out_seq + prev->out_len, st.out_frontier)
        << "ttsf " << key.ToString() << ": records end " << prev->out_seq + prev->out_len
        << " but out frontier is " << st.out_frontier;
  }

  // Held out-of-order packets lie strictly beyond the frontier (anything at
  // or below it would have been applied or discarded by ReleaseHeld) and
  // only exist once transforms are in play.
  COMMA_CHECK(st.held.empty() || st.transforms_used)
      << "ttsf " << key.ToString() << ": held packets without active transforms";
  for (const auto& [held_seq, held] : st.held) {
    COMMA_CHECK_EQ(held_seq, held.packet->tcp().seq)
        << "ttsf " << key.ToString() << ": held packet indexed under the wrong sequence number";
    COMMA_CHECK(SeqGt(held_seq, st.orig_frontier))
        << "ttsf " << key.ToString() << ": held packet at " << held_seq
        << " not beyond frontier " << st.orig_frontier;
  }

  // The receiver can only acknowledge output-space bytes we have emitted.
  if (st.ack_seen) {
    COMMA_CHECK(SeqLeq(st.max_acked_out, st.out_frontier))
        << "ttsf " << key.ToString() << ": receiver acked " << st.max_acked_out
        << " beyond out frontier " << st.out_frontier;
  }
}

}  // namespace comma::filters

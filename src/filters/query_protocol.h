// The query application's wire protocol (DNS-shaped), shared between the
// workload (src/apps/query.h) and the qcache partitioning filter — the
// "knowledge of application data" a proxy service needs (thesis Ch. 1).
//
// Wire format (UDP):
//   request:  [0x01, u32 query-id, u16 key-len, key bytes]
//   response: [0x02, u32 query-id, u16 key-len, key bytes, u16 value-len,
//              value bytes]
#ifndef COMMA_FILTERS_QUERY_PROTOCOL_H_
#define COMMA_FILTERS_QUERY_PROTOCOL_H_

#include <optional>
#include <string>

#include "src/util/bytes.h"

namespace comma::filters {

inline constexpr uint16_t kQueryPort = 5300;

struct QueryRequest {
  uint32_t id = 0;
  std::string key;
};

struct QueryResponse {
  uint32_t id = 0;
  std::string key;
  util::Bytes value;
};

util::Bytes EncodeQueryRequest(const QueryRequest& request);
util::Bytes EncodeQueryResponse(const QueryResponse& response);
std::optional<QueryRequest> DecodeQueryRequest(const util::Bytes& data);
std::optional<QueryResponse> DecodeQueryResponse(const util::Bytes& data);

}  // namespace comma::filters

#endif  // COMMA_FILTERS_QUERY_PROTOCOL_H_

// Data-manipulation services for real-time media streams (thesis §8.3).
//
// The media workloads (src/apps/media.h) send UDP datagrams whose payload
// starts with a two-byte header: [layer, type]. These filters exploit that
// application knowledge at the proxy:
//
//  hdiscard <max_layer>      Hierarchical discard (§8.3.2): packets of
//  hdiscard auto <ifindex>   enhancement layers above <max_layer> are
//                            dropped. In auto mode the filter adapts the cut
//                            to the wireless link: it watches the EEM's
//                            ifOutQLen for the given interface and lowers or
//                            raises the layer cut as the queue builds or
//                            drains.
//
//  dtrans                    Data-type translation (§8.3.3): payloads marked
//                            type=kColorImage are converted to kMonoImage by
//                            keeping one byte in three (24->8 bpp);
//                            type=kRichText is converted to kPlainText by
//                            stripping bytes with the high bit set
//                            (PostScript -> ASCII in the thesis's example).
//
//  delay <ms>                Test utility: delays matching packets by a
//                            fixed amount (re-injected later).
//
//  meter                     Passive per-key accounting; Kati's netload view
//                            reads its Status().
#ifndef COMMA_FILTERS_MEDIA_FILTERS_H_
#define COMMA_FILTERS_MEDIA_FILTERS_H_

#include <map>

#include "src/proxy/filter.h"

namespace comma::filters {

// Media payload header bytes (shared with src/apps/media.h).
inline constexpr uint8_t kMediaTypeMonoImage = 1;
inline constexpr uint8_t kMediaTypeColorImage = 2;
inline constexpr uint8_t kMediaTypePlainText = 3;
inline constexpr uint8_t kMediaTypeRichText = 4;
inline constexpr size_t kMediaHeaderSize = 2;  // [layer, type].

class HdiscardFilter : public proxy::Filter {
 public:
  // A monitored value older than this is treated as "EEM unreachable" and
  // the filter climbs back toward configured quality (fail open) rather
  // than keep shedding layers on a congestion reading from a past world.
  static constexpr sim::Duration kStaleAfter = 5 * sim::kSecond;

  HdiscardFilter() : Filter("hdiscard", proxy::FilterPriority::kLow) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  void OnDetach(proxy::FilterContext& ctx, const proxy::StreamKey& key) override;
  std::string Status() const override;

  int max_layer() const { return max_layer_; }
  uint64_t discarded() const { return discarded_; }
  uint64_t passed() const { return passed_; }

 private:
  void Adapt();

  int max_layer_ = 0;
  bool auto_mode_ = false;
  uint32_t ifindex_ = 0;
  int configured_max_ = 2;
  proxy::FilterContext* ctx_ = nullptr;
  sim::TimerId timer_ = sim::kInvalidTimerId;
  uint64_t discarded_ = 0;
  uint64_t passed_ = 0;
};

class DtransFilter : public proxy::Filter {
 public:
  DtransFilter() : Filter("dtrans", proxy::FilterPriority::kLow) {}

  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  std::string Status() const override;

  uint64_t translated() const { return translated_; }
  uint64_t bytes_saved() const { return bytes_saved_; }

 private:
  uint64_t translated_ = 0;
  uint64_t bytes_saved_ = 0;
};

class DelayFilter : public proxy::Filter {
 public:
  DelayFilter() : Filter("delay", proxy::FilterPriority::kLow) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  std::string Status() const override;

 private:
  sim::Duration delay_ = 50 * sim::kMillisecond;
  uint64_t delayed_ = 0;
};

class MeterFilter : public proxy::Filter {
 public:
  MeterFilter() : Filter("meter", proxy::FilterPriority::kHighest) {}

  void In(proxy::FilterContext& ctx, const proxy::StreamKey& key,
          const net::Packet& packet) override;
  std::string Status() const override;

  uint64_t packets(const proxy::StreamKey& key) const;
  uint64_t bytes(const proxy::StreamKey& key) const;

 private:
  struct Counts {
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };
  std::map<proxy::StreamKey, Counts> counts_;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_MEDIA_FILTERS_H_

#include "src/filters/transform_filters.h"

#include "src/proxy/service_proxy.h"

#include "src/proxy/filter_state.h"
#include "src/util/strings.h"

namespace comma::filters {

bool TransformFilterBase::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                   const std::vector<std::string>& args, std::string* error) {
  if (key.IsWildcard()) {
    if (error != nullptr) {
      *error = name() + " requires a concrete stream key";
    }
    return false;
  }
  if (ctx.FindFilterOnKey(key, "ttsf") == nullptr) {
    if (error != nullptr) {
      *error = name() + " requires a ttsf filter on the stream (add ttsf first)";
    }
    return false;
  }
  data_key_ = key;
  return Configure(args, error);
}

proxy::FilterVerdict TransformFilterBase::Out(proxy::FilterContext& ctx,
                                              const proxy::StreamKey& key, net::Packet& packet) {
  if (!packet.has_tcp() || !(key == data_key_) || packet.payload().empty()) {
    return proxy::FilterVerdict::kPass;
  }
  // Leave connection management segments alone.
  if (packet.tcp().flags & (net::kTcpSyn | net::kTcpRst)) {
    return proxy::FilterVerdict::kPass;
  }
  auto* ttsf = dynamic_cast<TtsfFilter*>(ctx.FindFilterOnKey(key, "ttsf"));
  if (ttsf == nullptr) {
    return proxy::FilterVerdict::kPass;  // TTSF was removed; fail open.
  }
  auto replacement = Transform(packet);
  if (replacement.has_value()) {
    ttsf->SubmitTransform(packet, std::move(*replacement));
  }
  return proxy::FilterVerdict::kPass;
}

// --- tdrop ---

bool TdropFilter::Configure(const std::vector<std::string>& args, std::string* error) {
  if (!args.empty()) {
    uint32_t percent = 0;
    if (!util::ParseU32(args[0], &percent) || percent > 100) {
      if (error != nullptr) {
        *error = "tdrop: drop rate must be an integer percentage 0-100";
      }
      return false;
    }
    drop_probability_ = percent / 100.0;
  }
  if (args.size() > 1) {
    uint64_t seed = 0;
    if (util::ParseU64(args[1], &seed)) {
      rng_ = sim::Random(seed);
    }
  }
  return true;
}

std::optional<util::Bytes> TdropFilter::Transform(const net::Packet&) {
  if (rng_.Bernoulli(drop_probability_)) {
    ++dropped_;
    return util::Bytes{};  // Remove the data from the stream.
  }
  ++passed_;
  return std::nullopt;
}

std::string TdropFilter::Status() const {
  return util::Format("rate=%.0f%% dropped=%llu passed=%llu", drop_probability_ * 100,
                      static_cast<unsigned long long>(dropped_),
                      static_cast<unsigned long long>(passed_));
}

// --- tcompress ---

util::Bytes FrameCompressedBlob(const util::Bytes& blob) {
  util::Bytes framed;
  framed.reserve(blob.size() + 2);
  util::ByteWriter w(&framed);
  w.WriteU16(static_cast<uint16_t>(blob.size()));
  w.WriteBytes(blob);
  return framed;
}

std::optional<util::Bytes> DecodeCompressedFrames(const util::Bytes& payload,
                                                  uint64_t* blobs_decoded) {
  util::ByteReader r(payload);
  util::Bytes out;
  while (r.remaining() > 0) {
    const uint16_t len = r.ReadU16();
    util::Bytes blob = r.ReadBytes(len);
    if (r.failed()) {
      return std::nullopt;
    }
    auto plain = util::Decompress(blob);
    if (!plain.has_value()) {
      return std::nullopt;
    }
    if (blobs_decoded != nullptr) {
      ++*blobs_decoded;
    }
    out.insert(out.end(), plain->begin(), plain->end());
  }
  return out;
}

bool TcompressFilter::Configure(const std::vector<std::string>& args, std::string* error) {
  if (!args.empty()) {
    if (args[0] == "rle") {
      codec_ = util::Codec::kRle;
    } else if (args[0] == "lz") {
      codec_ = util::Codec::kLz;
    } else {
      if (error != nullptr) {
        *error = "tcompress: codec must be rle or lz";
      }
      return false;
    }
  }
  return true;
}

std::optional<util::Bytes> TcompressFilter::Transform(const net::Packet& packet) {
  const util::Bytes& payload = packet.payload();
  util::Bytes framed = FrameCompressedBlob(util::Compress(payload, codec_));
  bytes_in_ += payload.size();
  if (framed.size() >= payload.size()) {
    bytes_out_ += payload.size();
    return std::nullopt;  // Incompressible: leave the identity mapping.
  }
  bytes_out_ += framed.size();
  return framed;
}

std::string TcompressFilter::Status() const {
  const double ratio = bytes_in_ > 0 ? static_cast<double>(bytes_out_) / bytes_in_ : 1.0;
  return util::Format("codec=%s bytes %llu->%llu (%.2fx)",
                      codec_ == util::Codec::kLz ? "lz" : "rle",
                      static_cast<unsigned long long>(bytes_in_),
                      static_cast<unsigned long long>(bytes_out_), ratio);
}

// --- tdecompress ---

bool TdecompressFilter::Configure(const std::vector<std::string>&, std::string*) { return true; }

std::optional<util::Bytes> TdecompressFilter::Transform(const net::Packet& packet) {
  auto plain = DecodeCompressedFrames(packet.payload(), &blobs_decoded_);
  if (!plain.has_value()) {
    // Not a compressed payload (e.g. the compressor skipped it as
    // incompressible): leave it untouched.
    ++decode_failures_;
    return std::nullopt;
  }
  return plain;
}

std::string TdecompressFilter::Status() const {
  return util::Format("blobs=%llu failures=%llu",
                      static_cast<unsigned long long>(blobs_decoded_),
                      static_cast<unsigned long long>(decode_failures_));
}

// --- Failover state contracts ---
//
// Configuration (drop percentage, codec) is NOT in the blobs: it rides in
// the checkpointed service args and is re-applied by OnInsert at the
// standby. The blobs carry only what live traffic accumulated.

namespace {
constexpr char kTdropStateMagic[] = "TDRP";
constexpr char kTcompressStateMagic[] = "TCMP";
constexpr char kTdecompressStateMagic[] = "TDEC";
constexpr uint8_t kTransformStateVersion = 1;

bool StateVersionOk(util::ByteReader* r, const char* magic, std::string* error,
                    const char* who) {
  std::optional<uint8_t> version = proxy::ReadStateHeader(r, magic);
  if (!version.has_value() || *version != kTransformStateVersion) {
    if (error != nullptr) {
      *error = std::string(who) + " import: bad magic or version";
    }
    return false;
  }
  return true;
}
}  // namespace

proxy::FilterStateKind TdropFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool TdropFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kTdropStateMagic, kTransformStateVersion);
  uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) {
    w.WriteU64(word);
  }
  w.WriteU64(dropped_);
  w.WriteU64(passed_);
  return true;
}

bool TdropFilter::ImportState(proxy::FilterContext&, const util::Bytes& in, std::string* error) {
  util::ByteReader r(in);
  if (!StateVersionOk(&r, kTdropStateMagic, error, "tdrop")) {
    return false;
  }
  uint64_t rng_state[4];
  for (uint64_t& word : rng_state) {
    word = r.ReadU64();
  }
  const uint64_t dropped = r.ReadU64();
  const uint64_t passed = r.ReadU64();
  if (r.failed()) {
    if (error != nullptr) {
      *error = "tdrop import: truncated blob";
    }
    return false;
  }
  rng_.RestoreState(rng_state);
  dropped_ = dropped;
  passed_ = passed;
  return true;
}

proxy::FilterStateKind TcompressFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool TcompressFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kTcompressStateMagic, kTransformStateVersion);
  w.WriteU64(bytes_in_);
  w.WriteU64(bytes_out_);
  return true;
}

bool TcompressFilter::ImportState(proxy::FilterContext&, const util::Bytes& in,
                                  std::string* error) {
  util::ByteReader r(in);
  if (!StateVersionOk(&r, kTcompressStateMagic, error, "tcompress")) {
    return false;
  }
  const uint64_t bytes_in = r.ReadU64();
  const uint64_t bytes_out = r.ReadU64();
  if (r.failed()) {
    if (error != nullptr) {
      *error = "tcompress import: truncated blob";
    }
    return false;
  }
  bytes_in_ = bytes_in;
  bytes_out_ = bytes_out;
  return true;
}

proxy::FilterStateKind TdecompressFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool TdecompressFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kTdecompressStateMagic, kTransformStateVersion);
  w.WriteU64(blobs_decoded_);
  w.WriteU64(decode_failures_);
  return true;
}

bool TdecompressFilter::ImportState(proxy::FilterContext&, const util::Bytes& in,
                                    std::string* error) {
  util::ByteReader r(in);
  if (!StateVersionOk(&r, kTdecompressStateMagic, error, "tdecompress")) {
    return false;
  }
  const uint64_t blobs_decoded = r.ReadU64();
  const uint64_t decode_failures = r.ReadU64();
  if (r.failed()) {
    if (error != nullptr) {
      *error = "tdecompress import: truncated blob";
    }
    return false;
  }
  blobs_decoded_ = blobs_decoded;
  decode_failures_ = decode_failures;
  return true;
}

}  // namespace comma::filters

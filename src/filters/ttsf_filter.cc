#include "src/filters/ttsf_filter.h"

#include "src/proxy/service_proxy.h"

#include <algorithm>

#include "src/filters/ttsf_audit.h"
#include "src/proxy/filter_state.h"
#include "src/tcp/seq.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace comma::filters {

using tcp::SeqDiff;
using tcp::SeqGeq;
using tcp::SeqGt;
using tcp::SeqLeq;
using tcp::SeqLt;
using tcp::SeqMax;

TtsfFilter::TtsfFilter()
    : Filter("ttsf", proxy::FilterPriority::kNormal),
      auditor_(std::make_unique<SeqSpaceAuditor>()) {}

TtsfFilter::~TtsfFilter() = default;

void TtsfFilter::AuditKey(const proxy::StreamKey& key) {
  if (auto it = dirs_.find(key); it != dirs_.end()) {
    auditor_->AuditDirection(key, it->second);
  }
  const proxy::StreamKey rev = key.Reversed();
  if (auto it = dirs_.find(rev); it != dirs_.end()) {
    auditor_->AuditDirection(rev, it->second);
  }
}

bool TtsfFilter::CorruptOffsetMapForTest(const proxy::StreamKey& key) {
  auto it = dirs_.find(key);
  if (it == dirs_.end() || it->second.records.empty()) {
    return false;
  }
  // Shift the newest record's output position: the out-space map is no
  // longer contiguous and no longer meets the frontier.
  it->second.records.back().out_seq += 1000;
  return true;
}

void TtsfFilter::SubmitTransform(const net::Packet& packet, util::Bytes new_payload) {
  pending_[packet.uid()] = std::move(new_payload);
}

bool TtsfFilter::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                          const std::vector<std::string>& /*args*/, std::string* error) {
  if (key.IsWildcard()) {
    if (error != nullptr) {
      *error = "ttsf requires a concrete stream key";
    }
    return false;
  }
  // Sequence mapping needs both travel directions.
  ctx.proxy().Attach(shared_from_this(), key.Reversed());
  BindObs(ctx);
  return true;
}

void TtsfFilter::BindObs(proxy::FilterContext& ctx) {
  obs::MetricRegistry* reg = ctx.metrics();
  obs_.segments_transformed = reg->GetCounter("ttsf.segments_transformed");
  obs_.segments_dropped = reg->GetCounter("ttsf.segments_dropped");
  obs_.retransmissions_replayed = reg->GetCounter("ttsf.retransmissions_replayed");
  obs_.acks_remapped = reg->GetCounter("ttsf.acks_remapped");
  obs_.acks_injected = reg->GetCounter("ttsf.acks_injected");
  obs_.bytes_in = reg->GetCounter("ttsf.bytes_in");
  obs_.bytes_out = reg->GetCounter("ttsf.bytes_out");
  obs_.bytes_dropped = reg->GetCounter("ttsf.bytes_dropped");
  obs_.bypass_entries = reg->GetCounter("ttsf.bypass_entries");
  obs_.offset_map_entries = reg->GetGauge("ttsf.offset_map_entries");
  obs_.held_packets = reg->GetGauge("ttsf.held_packets");
}

void TtsfFilter::PublishObs() {
  obs_.segments_transformed->Inc(stats_.segments_transformed - published_.segments_transformed);
  obs_.segments_dropped->Inc(stats_.segments_dropped - published_.segments_dropped);
  obs_.retransmissions_replayed->Inc(stats_.retransmissions_replayed -
                                     published_.retransmissions_replayed);
  obs_.acks_remapped->Inc(stats_.acks_remapped - published_.acks_remapped);
  obs_.acks_injected->Inc(stats_.acks_injected - published_.acks_injected);
  obs_.bytes_in->Inc(stats_.bytes_in - published_.bytes_in);
  obs_.bytes_out->Inc(stats_.bytes_out - published_.bytes_out);
  obs_.bypass_entries->Inc(stats_.bypass_entries - published_.bypass_entries);
  published_ = stats_;
  size_t records = 0;
  size_t held = 0;
  for (const auto& [key, st] : dirs_) {
    records += st.records.size();
    held += st.held.size();
  }
  obs_.offset_map_entries->Set(static_cast<double>(records));
  obs_.held_packets->Set(static_cast<double>(held));
}

void TtsfFilter::In(proxy::FilterContext&, const proxy::StreamKey&, const net::Packet&) {}

proxy::FilterVerdict TtsfFilter::Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                     net::Packet& packet) {
  if (!packet.has_tcp()) {
    return proxy::FilterVerdict::kPass;
  }
  DirState& st = dirs_[key];
  DirState& rev = dirs_[key.Reversed()];

  // 0. Health probe before the map is consulted: a desynchronized record
  //    chain would rewrite this packet with garbage offsets, so degrade to
  //    passthrough first (fail-open; see EnterBypass).
  if (!MapHealthy(st) || !MapHealthy(rev)) {
    EnterBypass(ctx, key, "sequence map desynchronized");
  }

  // 1. ACK remapping: this packet acknowledges data of the reverse travel
  //    direction; its ack number is in that direction's output space.
  if (packet.tcp().flags & net::kTcpAck) {
    if (rev.initialized) {
      const uint32_t ack_out = packet.tcp().ack;
      if (!rev.ack_seen) {
        rev.ack_seen = true;
        rev.max_acked_out = ack_out;
      } else {
        rev.max_acked_out = SeqMax(rev.max_acked_out, ack_out);
      }
      const uint32_t ack_orig = MapAckToOrig(rev, ack_out);
      if (ack_orig != ack_out) {
        ++stats_.acks_remapped;
      }
      packet.tcp().ack = ack_orig;
      PruneAcked(rev);
    }
  }

  // 2. Data processing in this direction (seq rewrite, payload transform).
  const proxy::FilterVerdict verdict = ProcessData(ctx, key, packet, st);

  // 3. Peer bookkeeping for injected ACKs in the reverse direction: the
  //    sender of this packet is the receiver of `rev`'s data.
  if (verdict == proxy::FilterVerdict::kPass) {
    rev.peer_seq = packet.tcp().seq + net::TcpSegmentLength(packet);
    rev.peer_window = packet.tcp().window;
  }

  if (util::DebugChecksEnabled()) {
    if (util::CheckThrowEnabled()) {
      // In throw mode a fired invariant is recoverable: degrade the stream
      // pair to bypass instead of letting the failure escape (which would
      // quarantine the whole filter — unsafe once sequence numbers have been
      // rewritten, since plain removal would seam the receiver's stream).
      try {
        auditor_->AuditDirection(key, st);
        auditor_->AuditDirection(key.Reversed(), rev);
      } catch (const util::CheckFailure& e) {
        EnterBypass(ctx, key, e.what());
      }
    } else {
      auditor_->AuditDirection(key, st);
      auditor_->AuditDirection(key.Reversed(), rev);
    }
  }
  PublishObs();
  return verdict;
}

bool TtsfFilter::MapHealthy(const DirState& st) const {
  if (!st.initialized || st.bypass || st.records.empty()) {
    return true;
  }
  const Record& back = st.records.back();
  return back.orig_seq + back.orig_len == st.orig_frontier &&
         back.out_seq + back.out_len == st.out_frontier;
}

void TtsfFilter::ForceBypass(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                             const std::string& reason) {
  EnterBypass(ctx, key, reason);
}

bool TtsfFilter::bypassed(const proxy::StreamKey& key) const {
  auto it = dirs_.find(key);
  return it != dirs_.end() && it->second.bypass;
}

void TtsfFilter::EnterBypass(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                             const std::string& reason) {
  DirState& st = dirs_[key];
  DirState& rev = dirs_[key.Reversed()];
  if (st.bypass && rev.bypass) {
    return;
  }
  if (bypass_reason_.empty()) {
    bypass_reason_ = reason;
  }
  ++stats_.bypass_entries;
  ctx.tracer().Logf(sim::TraceLevel::kWarn, "ttsf", "bypass %s: %s", key.ToString().c_str(),
                    reason.c_str());
  // Both travel directions go together: each one's ack numbers are
  // interpreted through the other's map.
  BypassDirection(ctx, st);
  BypassDirection(ctx, rev);
}

void TtsfFilter::BypassDirection(proxy::FilterContext& ctx, DirState& st) {
  if (st.bypass) {
    return;
  }
  st.bypass = true;
  st.restored = false;
  // Frontiers freeze here; their difference is the constant shift applied to
  // everything from now on. With the records gone, MapAckToOrig reduces to
  // exactly that shift.
  st.records.clear();
  // Drain: held packets (beyond the frontier) leave now, shifted, with their
  // original payloads. The gap before them is the sender's to retransmit;
  // the retransmission passes through bypassed like everything else.
  const uint32_t shift = static_cast<uint32_t>(SeqDiff(st.out_frontier, st.orig_frontier));
  for (auto& [held_seq, held] : st.held) {
    held.packet->tcp().seq = held_seq + shift;
    ++stats_.bypass_drained;
    auto holder = std::make_shared<net::PacketPtr>(std::move(held.packet));
    proxy::ServiceProxy* proxy = &ctx.proxy();
    ctx.simulator().Schedule(0, [proxy, holder] { proxy->InjectPacket(std::move(*holder)); });
  }
  st.held.clear();
}

proxy::FilterVerdict TtsfFilter::ProcessData(proxy::FilterContext& ctx,
                                             const proxy::StreamKey& key, net::Packet& packet,
                                             DirState& st) {
  auto& h = packet.tcp();
  const uint32_t seq = h.seq;

  // Take any transform submitted for this packet by an earlier out-pass
  // filter.
  bool has_transform = false;
  util::Bytes transform;
  if (auto it = pending_.find(packet.uid()); it != pending_.end()) {
    has_transform = true;
    transform = std::move(it->second);
    pending_.erase(it);
  }

  if (h.flags & net::kTcpRst) {
    // Pass RSTs with a frontier-offset seq correction.
    if (st.initialized) {
      h.seq = seq + static_cast<uint32_t>(SeqDiff(st.out_frontier, st.orig_frontier));
    }
    return proxy::FilterVerdict::kPass;
  }

  if (h.flags & net::kTcpSyn) {
    st.initialized = true;
    st.orig_frontier = seq + 1;
    st.out_frontier = seq + 1;
    st.records.clear();
    st.held.clear();
    st.transforms_used = false;
    st.bypass = false;  // A fresh connection re-arms transforming.
    st.restored = false;
    return proxy::FilterVerdict::kPass;  // SYNs are never transformed.
  }

  if (!st.initialized) {
    // Mid-stream attachment: adopt this packet's seq as the frontier.
    st.initialized = true;
    st.orig_frontier = seq;
    st.out_frontier = seq;
  }

  const uint32_t len = static_cast<uint32_t>(packet.payload().size());
  const bool fin = (h.flags & net::kTcpFin) != 0;

  if (len == 0 && !fin) {
    // Pure ACK / window update: shift seq by the frontier offset.
    h.seq = seq + static_cast<uint32_t>(SeqDiff(st.out_frontier, st.orig_frontier));
    return proxy::FilterVerdict::kPass;
  }

  stats_.bytes_in += len;

  if (st.restored) {
    // The map came from a checkpoint; the first live data packet tells us
    // whether the snapshot was current. Data at or below the restored
    // frontier confirms it (the conservative ack mapping kept the sender
    // behind the checkpointed frontier). Data beyond it means the crashed
    // gateway processed segments after the last checkpoint whose transforms
    // we never saw — the map is stale, so degrade to bypass-and-drain and
    // resync from the live stream.
    if (st.transforms_used && SeqGt(seq, st.orig_frontier)) {
      EnterBypass(ctx, key, "stale checkpoint: data beyond restored frontier");
    } else {
      st.restored = false;  // Live traffic confirmed the restored map.
    }
  }

  if (st.bypass) {
    // Degraded passthrough: constant shift, original payload, no records.
    // Any submitted transform was consumed above and is deliberately
    // ignored — bypass means the sender's own bytes, nothing else.
    h.seq = seq + static_cast<uint32_t>(SeqDiff(st.out_frontier, st.orig_frontier));
    ++stats_.bypass_passthrough;
    stats_.bytes_out += len;
    return proxy::FilterVerdict::kPass;
  }

  // Fast path: identity direction with no transform in play.
  if (!st.transforms_used && !has_transform) {
    const uint32_t end = seq + len + (fin ? 1 : 0);
    if (SeqGt(end, st.orig_frontier)) {
      st.orig_frontier = end;
      st.out_frontier = end;
    }
    stats_.bytes_out += len;
    return proxy::FilterVerdict::kPass;
  }
  st.transforms_used = true;

  if (SeqGt(seq, st.orig_frontier)) {
    // --- Beyond the frontier: out-of-order arrival while transforms are
    // active. We cannot assign it an output position (it depends on the
    // transform of the missing data), so hold it until the gap fills.
    if (st.held.size() < 256) {
      HeldPacket held;
      held.packet = packet.Clone();
      held.has_transform = has_transform;
      held.transform = std::move(transform);
      st.held[seq] = std::move(held);
    }
    return proxy::FilterVerdict::kDrop;  // Consumed (re-emitted in order).
  }

  if (seq == st.orig_frontier) {
    // --- In-order new data at the frontier ---
    const proxy::FilterVerdict verdict =
        ApplyInOrder(ctx, key, st, packet, has_transform, std::move(transform));
    ReleaseHeld(ctx, key, st);
    return verdict;
  }

  // --- Retransmission: replay the recorded transforms (§8.1.4) ---
  ++stats_.retransmissions_replayed;
  const uint32_t end = seq + len + (fin ? 1 : 0);

  // Collect records overlapping [seq, end).
  std::vector<const Record*> covered;
  for (const Record& r : st.records) {
    const uint32_t r_end = r.orig_seq + r.orig_len;
    if (SeqLt(r.orig_seq, end) && SeqGt(r_end, seq)) {
      covered.push_back(&r);
    }
  }
  if (covered.empty()) {
    // Entirely below the retained window (already acked end-to-end): map by
    // the pre-window offset and pass; the receiver will discard it.
    const uint32_t base_orig = st.records.empty() ? st.orig_frontier : st.records.front().orig_seq;
    const uint32_t base_out = st.records.empty() ? st.out_frontier : st.records.front().out_seq;
    h.seq = seq + static_cast<uint32_t>(SeqDiff(base_out, base_orig));
    stats_.bytes_out += len;
    return proxy::FilterVerdict::kPass;
  }

  // Rebuild the output image of the covered records in full (widening a
  // partial retransmission: duplicate delivery is safe, inconsistency isn't).
  util::Bytes out_payload;
  bool out_fin = false;
  for (const Record* r : covered) {
    if (r->is_fin) {
      out_fin = true;
      continue;
    }
    if (!r->cached.empty() || !r->identity) {
      out_payload.insert(out_payload.end(), r->cached.begin(), r->cached.end());
    } else {
      // Uncached identity (gap) record: slice what we can from the packet.
      const uint32_t r_end = r->orig_seq + r->orig_len;
      const uint32_t lo = SeqMax(r->orig_seq, seq);
      const uint32_t hi = tcp::SeqMin(r_end, seq + len);
      if (SeqLt(lo, hi)) {
        const size_t off = static_cast<uint32_t>(SeqDiff(lo, seq));
        const size_t n = static_cast<uint32_t>(SeqDiff(hi, lo));
        out_payload.insert(out_payload.end(), packet.payload().begin() + static_cast<long>(off),
                           packet.payload().begin() + static_cast<long>(off + n));
      }
    }
  }
  h.seq = covered.front()->out_seq;
  if (out_fin) {
    h.flags |= net::kTcpFin;
  } else {
    h.flags &= static_cast<uint8_t>(~net::kTcpFin);
  }
  stats_.bytes_out += out_payload.size();
  packet.set_payload(std::move(out_payload));

  if (packet.payload().empty() && !out_fin) {
    // Everything in range was dropped from the stream; answer the sender
    // directly if the receiver has already covered the preceding bytes.
    MaybeInjectTailAck(ctx, key, st, covered.back()->orig_seq + covered.back()->orig_len);
    return proxy::FilterVerdict::kDrop;
  }
  return proxy::FilterVerdict::kPass;
}

proxy::FilterVerdict TtsfFilter::ApplyInOrder(proxy::FilterContext& ctx,
                                              const proxy::StreamKey& key, DirState& st,
                                              net::Packet& packet, bool has_transform,
                                              util::Bytes transform) {
  auto& h = packet.tcp();
  const uint32_t seq = h.seq;
  const uint32_t len = static_cast<uint32_t>(packet.payload().size());
  const bool fin = (h.flags & net::kTcpFin) != 0;

  COMMA_DCHECK_EQ(seq, st.orig_frontier) << "ApplyInOrder called off the frontier";

  Record rec;
  rec.orig_seq = seq;
  rec.orig_len = len;
  rec.out_seq = st.out_frontier;
  if (has_transform) {
    rec.cached = std::move(transform);
    rec.out_len = static_cast<uint32_t>(rec.cached.size());
    rec.identity = false;
    ++stats_.segments_transformed;
    if (rec.out_len == 0) {
      ++stats_.segments_dropped;
    }
    if (rec.out_len < len) {
      // The byte reduction this transform removed from the wire — the
      // signal the Kati control loop watches (docs/observability.md).
      obs_.bytes_dropped->Inc(len - rec.out_len);
    }
  } else {
    rec.cached = packet.payload();
    rec.out_len = len;
    rec.identity = true;
  }
  stats_.bytes_out += rec.out_len;
  const uint32_t rec_out_end = rec.out_seq + rec.out_len;
  const bool drop_packet = rec.out_len == 0 && !fin;
  const uint32_t rec_orig_end = seq + len;
  h.seq = rec.out_seq;
  if (!rec.identity) {
    packet.set_payload(rec.cached);
  }
  if (len > 0) {
    AppendRecord(st, std::move(rec));
  }
  st.orig_frontier = rec_orig_end;
  st.out_frontier = rec_out_end;

  if (fin) {
    Record fr;
    fr.orig_seq = st.orig_frontier;
    fr.orig_len = 1;
    fr.out_seq = st.out_frontier;
    fr.out_len = 1;
    fr.identity = true;
    fr.is_fin = true;
    AppendRecord(st, std::move(fr));
    st.orig_frontier += 1;
    st.out_frontier += 1;
  }

  if (drop_packet) {
    MaybeInjectTailAck(ctx, key, st, rec_orig_end);
    return proxy::FilterVerdict::kDrop;
  }
  return proxy::FilterVerdict::kPass;
}

void TtsfFilter::ReleaseHeld(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                             DirState& st) {
  bool progressed = true;
  while (progressed && !st.held.empty()) {
    progressed = false;
    for (auto it = st.held.begin(); it != st.held.end();) {
      const uint32_t held_seq = it->second.packet->tcp().seq;
      if (SeqLt(held_seq, st.orig_frontier)) {
        // Stale: the gap filled through a wider retransmission.
        it = st.held.erase(it);
        continue;
      }
      if (held_seq == st.orig_frontier) {
        HeldPacket held = std::move(it->second);
        st.held.erase(it);
        const proxy::FilterVerdict verdict = ApplyInOrder(
            ctx, key, st, *held.packet, held.has_transform, std::move(held.transform));
        if (verdict == proxy::FilterVerdict::kPass) {
          // Defer emission so the packet that just filled the gap leaves
          // first and the receiver sees everything in order.
          auto holder = std::make_shared<net::PacketPtr>(std::move(held.packet));
          proxy::ServiceProxy* proxy = &ctx.proxy();
          ctx.simulator().Schedule(
              0, [proxy, holder] { proxy->InjectPacket(std::move(*holder)); });
        }
        progressed = true;
        break;  // Restart: the map ordering is plain uint32, not seq-space.
      }
      ++it;
    }
  }
}

void TtsfFilter::AppendRecord(DirState& st, Record rec) {
  st.records.push_back(std::move(rec));
  // Bound memory: keep at most 4096 records; the front ones are long acked.
  while (st.records.size() > 4096) {
    st.records.pop_front();
  }
}

void TtsfFilter::PruneAcked(DirState& st) {
  if (!st.ack_seen) {
    return;
  }
  while (!st.records.empty()) {
    const Record& r = st.records.front();
    if (SeqLeq(r.out_seq + r.out_len, st.max_acked_out)) {
      st.records.pop_front();
    } else {
      break;
    }
  }
}

uint32_t TtsfFilter::MapAckToOrig(const DirState& st, uint32_t ack_out) const {
  if (!st.initialized) {
    return ack_out;
  }
  if (st.records.empty()) {
    return ack_out + static_cast<uint32_t>(SeqDiff(st.orig_frontier, st.out_frontier));
  }
  const Record& first = st.records.front();
  if (SeqLt(ack_out, first.out_seq)) {
    // Below the retained window: the pruned prefix was contiguous, so the
    // first record's own offset applies.
    return ack_out + static_cast<uint32_t>(SeqDiff(first.orig_seq, first.out_seq));
  }
  uint32_t orig_pos = first.orig_seq;
  for (const Record& r : st.records) {
    const uint32_t r_out_end = r.out_seq + r.out_len;
    if (SeqGeq(ack_out, r_out_end)) {
      orig_pos = r.orig_seq + r.orig_len;
      continue;
    }
    if (SeqGt(ack_out, r.out_seq)) {
      // Partial ack inside a transformed record: round down — never
      // acknowledge original bytes whose image has not fully arrived.
      return r.orig_seq;
    }
    return orig_pos;
  }
  // Beyond every record: records are contiguous up to the frontier.
  return st.orig_frontier + static_cast<uint32_t>(SeqDiff(ack_out, st.out_frontier));
}

void TtsfFilter::MaybeInjectTailAck(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                    DirState& st, uint32_t acked_orig) {
  // Only safe when the receiver has acknowledged everything up to the
  // dropped range — otherwise we would acknowledge undelivered data and
  // recreate the split-connection end-to-end violation (§5.1.2).
  // MapAckToOrig advances through zero-output-length records, so if the
  // receiver has acknowledged everything preceding the drop, the mapped ack
  // already covers the dropped bytes.
  if (!st.ack_seen || SeqLt(MapAckToOrig(st, st.max_acked_out), acked_orig)) {
    return;
  }
  net::TcpHeader h;
  h.src_port = key.dst_port;
  h.dst_port = key.src_port;
  h.seq = st.peer_seq;
  h.ack = acked_orig;
  h.flags = net::kTcpAck;
  h.window = st.peer_window != 0 ? st.peer_window : 8192;
  ++stats_.acks_injected;
  ctx.InjectPacket(net::Packet::MakeTcp(key.dst, key.src, h, {}));
}

// --- Failover state contract ---
//
// "TTSF" v1 blob layout (docs/robustness.md):
//   u32 n_dirs, then per direction:
//     StreamKey, u8 flags (initialized/ack_seen/transforms_used/bypass),
//     u32 orig_frontier, u32 out_frontier, u32 max_acked_out,
//     u32 peer_seq, u16 peer_window,
//     u32 n_records, per record: u32 orig_seq, u32 orig_len, u32 out_seq,
//       u32 out_len, u8 flags (identity/is_fin), u32 cached_len + bytes
//   string bypass_reason
// Held packets and pending transforms are rebuilt from the wire (the
// sender's RTO re-delivers them).

namespace {
constexpr char kTtsfStateMagic[] = "TTSF";
constexpr uint8_t kTtsfStateVersion = 1;
// Import sanity caps; a well-formed exporter never exceeds them (records are
// bounded at 4096 per direction, payloads by the MTU).
constexpr uint32_t kMaxStateDirs = 1024;
constexpr uint32_t kMaxStateRecords = 4096;
constexpr uint32_t kMaxStateCached = 65536;
}  // namespace

proxy::FilterStateKind TtsfFilter::state_kind() const {
  return proxy::FilterStateKind::kCheckpointed;
}

bool TtsfFilter::ExportState(util::Bytes* out) const {
  if (dirs_.empty()) {
    return false;
  }
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kTtsfStateMagic, kTtsfStateVersion);
  w.WriteU32(static_cast<uint32_t>(dirs_.size()));
  for (const auto& [key, st] : dirs_) {
    proxy::WriteStreamKey(&w, key);
    uint8_t flags = 0;
    flags |= st.initialized ? 1u : 0u;
    flags |= st.ack_seen ? 2u : 0u;
    flags |= st.transforms_used ? 4u : 0u;
    flags |= st.bypass ? 8u : 0u;
    w.WriteU8(flags);
    w.WriteU32(st.orig_frontier);
    w.WriteU32(st.out_frontier);
    w.WriteU32(st.max_acked_out);
    w.WriteU32(st.peer_seq);
    w.WriteU16(st.peer_window);
    w.WriteU32(static_cast<uint32_t>(st.records.size()));
    for (const Record& r : st.records) {
      w.WriteU32(r.orig_seq);
      w.WriteU32(r.orig_len);
      w.WriteU32(r.out_seq);
      w.WriteU32(r.out_len);
      uint8_t rflags = 0;
      rflags |= r.identity ? 1u : 0u;
      rflags |= r.is_fin ? 2u : 0u;
      w.WriteU8(rflags);
      w.WriteU32(static_cast<uint32_t>(r.cached.size()));
      w.WriteBytes(r.cached);
    }
  }
  w.WriteString(bypass_reason_);
  return true;
}

bool TtsfFilter::ImportState(proxy::FilterContext&, const util::Bytes& in, std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) {
      *error = std::string("ttsf import: ") + what;
    }
    return false;
  };
  util::ByteReader r(in);
  std::optional<uint8_t> version = proxy::ReadStateHeader(&r, kTtsfStateMagic);
  if (!version.has_value()) {
    return fail("bad magic");
  }
  if (*version != kTtsfStateVersion) {
    return fail("unsupported version");
  }
  const uint32_t n_dirs = r.ReadU32();
  if (r.failed() || n_dirs > kMaxStateDirs) {
    return fail("bad direction count");
  }
  std::map<proxy::StreamKey, DirState> dirs;
  for (uint32_t d = 0; d < n_dirs; ++d) {
    const proxy::StreamKey key = proxy::ReadStreamKey(&r);
    DirState st;
    const uint8_t flags = r.ReadU8();
    st.initialized = (flags & 1u) != 0;
    st.ack_seen = (flags & 2u) != 0;
    st.transforms_used = (flags & 4u) != 0;
    st.bypass = (flags & 8u) != 0;
    st.orig_frontier = r.ReadU32();
    st.out_frontier = r.ReadU32();
    st.max_acked_out = r.ReadU32();
    st.peer_seq = r.ReadU32();
    st.peer_window = r.ReadU16();
    const uint32_t n_records = r.ReadU32();
    if (r.failed() || n_records > kMaxStateRecords) {
      return fail("bad record count");
    }
    for (uint32_t i = 0; i < n_records; ++i) {
      Record rec;
      rec.orig_seq = r.ReadU32();
      rec.orig_len = r.ReadU32();
      rec.out_seq = r.ReadU32();
      rec.out_len = r.ReadU32();
      const uint8_t rflags = r.ReadU8();
      rec.identity = (rflags & 1u) != 0;
      rec.is_fin = (rflags & 2u) != 0;
      const uint32_t cached_len = r.ReadU32();
      if (r.failed() || cached_len > kMaxStateCached) {
        return fail("bad cached payload");
      }
      rec.cached = r.ReadBytes(cached_len);
      st.records.push_back(std::move(rec));
    }
    if (r.failed()) {
      return fail("truncated direction");
    }
    // The map resumes provisionally; the first live packet confirms or
    // invalidates it (see ProcessData). Bypassed directions stay bypassed.
    st.restored = st.initialized && !st.bypass;
    dirs[key] = std::move(st);
  }
  const std::string reason = r.ReadString();
  if (r.failed()) {
    return fail("truncated blob");
  }
  dirs_ = std::move(dirs);
  pending_.clear();
  if (!reason.empty() && bypass_reason_.empty()) {
    bypass_reason_ = reason;
  }
  return true;
}

std::string TtsfFilter::Status() const {
  std::string out = util::Format(
      "transformed=%llu dropped=%llu replayed=%llu acks_remapped=%llu acks_injected=%llu "
      "bytes %llu->%llu",
      static_cast<unsigned long long>(stats_.segments_transformed),
      static_cast<unsigned long long>(stats_.segments_dropped),
      static_cast<unsigned long long>(stats_.retransmissions_replayed),
      static_cast<unsigned long long>(stats_.acks_remapped),
      static_cast<unsigned long long>(stats_.acks_injected),
      static_cast<unsigned long long>(stats_.bytes_in),
      static_cast<unsigned long long>(stats_.bytes_out));
  if (stats_.bypass_entries > 0) {
    out += util::Format(" BYPASS entries=%llu drained=%llu passthrough=%llu reason=\"%s\"",
                        static_cast<unsigned long long>(stats_.bypass_entries),
                        static_cast<unsigned long long>(stats_.bypass_drained),
                        static_cast<unsigned long long>(stats_.bypass_passthrough),
                        bypass_reason_.c_str());
  }
  return out;
}

}  // namespace comma::filters

// Registers the standard Comma filter set into a FilterRegistry, and the
// standard service recipes into a ServiceCatalog (§10.2.1).
#ifndef COMMA_FILTERS_STANDARD_SET_H_
#define COMMA_FILTERS_STANDARD_SET_H_

#include "src/proxy/filter_registry.h"
#include "src/proxy/service_catalog.h"

namespace comma::filters {

// Registers factories for: tcp, launcher, rdrop, wsize, snoop, ttsf, tdrop,
// tcompress, tdecompress, hdiscard, dtrans, delay, meter. Nothing is loaded;
// call registry->Load(...) (or the SP `load` command) per filter.
void RegisterStandardFilters(proxy::FilterRegistry* registry);

// Convenience: a registry with the standard set registered and `names`
// preloaded (empty list = load everything).
proxy::FilterRegistry StandardRegistry(const std::vector<std::string>& names = {});

// The standard service recipes (the thesis's "layered service abstraction"):
//   reliable-wireless   snoop local recovery for lossy links
//   realtime-thin       transparent 30% thinning for stale-tolerant streams
//   compressed          wired-side transparent compression (pair with
//                       `decompress` at a mobile-side proxy)
//   decompress          mobile-side half of `compressed`
//   background          window-clamped low-priority transfer
//   disconnect-tolerant ZWSM disconnection management (EEM-driven)
//   media-thin          base-layer-only media
//   media-adaptive      EEM-adaptive hierarchical discard
//   monitored           passive per-stream metering
proxy::ServiceCatalog StandardCatalog();

}  // namespace comma::filters

#endif  // COMMA_FILTERS_STANDARD_SET_H_

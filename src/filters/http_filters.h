// Content-aware HTTP stream services (thesis §8.3 at message granularity).
//
// The byte-oriented transform filters (tdrop/tcompress) act on whatever
// segment boundaries the sender happens to emit. These filters instead
// recover the application byte stream with a reassembly::StreamReassembler,
// interpret HTTP/1.1 message structure, and rewrite it — then hand the
// per-segment replacement payloads to the TTSF exactly like any other
// transformer, so end-to-end TCP semantics stay intact.
//
//  hrewrite                  Header-rewriting proxy mode on the request
//                            direction: injects Via and X-Forwarded-For,
//                            strips hop-by-hop headers (Connection,
//                            Keep-Alive, Proxy-Connection, TE, Upgrade,
//                            Trailer). Bodies pass through untouched.
//
//  htype [max_layer]         Content-type-directed transcoding on the
//                            response direction (§8.3.2/§8.3.3 closed at the
//                            application tier): text/* bodies are re-framed
//                            as chunked sequences of compressed blobs (the
//                            tcompress wire format, so tdecompress-style
//                            decoding applies); application/x-comma-media
//                            bodies are hierarchically discarded above
//                            `max_layer` (default 1); everything else passes
//                            identity.
//
// Reassembler/TTSF protocol (see docs/app-services.md for the proof sketch):
// the filter runs at kLow priority, before the TTSF, and keeps its
// reassembler frontier in lock-step with the TTSF's original-space frontier.
//  - segment at the frontier: reassemble, scan, submit the scanner's output
//    as this segment's transform (possibly empty, possibly larger);
//  - segment beyond the frontier: buffer in the reassembler AND submit an
//    empty transform — the TTSF holds the packet, and when the gap fills the
//    gap-filler's transform carries the combined output while the held
//    packets release as drops;
//  - segment below the frontier: submit nothing; the TTSF replays its
//    recorded transforms (§8.1.4 consistency).
// Any loss of interpretability (reassembler overflow, malformed HTTP, TTSF
// bypass, RST) latches *fail-open*: the filter stops submitting and the
// remaining stream passes as raw bytes. Content already consumed into an
// unfinished rewrite may be truncated — transparency of the *transport* is
// preserved, content fidelity is the documented casualty (http.fail_open).
#ifndef COMMA_FILTERS_HTTP_FILTERS_H_
#define COMMA_FILTERS_HTTP_FILTERS_H_

#include <string>

#include "src/obs/metric_registry.h"
#include "src/proxy/filter.h"
#include "src/reassembly/http_parser.h"
#include "src/reassembly/stream_reassembler.h"

namespace comma::filters {

class TtsfFilter;

// Base for filters that rewrite one direction of an HTTP byte stream
// through a TTSF. Subclasses implement the stream scanner.
class HttpStreamFilterBase : public proxy::Filter {
 public:
  explicit HttpStreamFilterBase(std::string name)
      : Filter(std::move(name), proxy::FilterPriority::kLow) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;

  bool fail_open() const { return fail_open_; }
  const reassembly::StreamReassembler& reassembler() const { return reassembler_; }

 protected:
  // True when the filter rewrites the *response* direction and must attach
  // to the reversed key (htype); false for the request direction (hrewrite).
  virtual bool WatchesResponses() const = 0;
  virtual bool Configure(proxy::FilterContext& ctx, const std::vector<std::string>& args,
                         std::string* error) = 0;
  // Consumes newly contiguous stream bytes; returns the rewritten bytes to
  // put on the wire in their place. Sets *failed on unparseable content, in
  // which case the return value must carry every byte the scanner still
  // holds (buffered head etc.) plus `data` raw, so nothing already consumed
  // is silently lost at the fail-open boundary.
  virtual util::Bytes ScanBytes(const util::Bytes& data, bool* failed) = 0;
  // The stream finished cleanly (FIN, all bytes delivered): flush whatever
  // the scanner still buffers, raw.
  virtual util::Bytes FlushScanner() = 0;
  // A new connection reused the key (fresh SYN): reset scanner state.
  virtual void ResetScanner() = 0;

  void LatchFailOpen(proxy::FilterContext& ctx, const char* reason);

  proxy::StreamKey data_key_;
  reassembly::StreamReassembler reassembler_;
  bool fail_open_ = false;
  obs::Counter* obs_fail_open_ = obs::MetricRegistry::NullCounter();
  obs::Counter* obs_bytes_in_ = obs::MetricRegistry::NullCounter();
  obs::Counter* obs_bytes_out_ = obs::MetricRegistry::NullCounter();
};

class HrewriteFilter : public HttpStreamFilterBase {
 public:
  HrewriteFilter() : HttpStreamFilterBase("hrewrite") {}

  uint64_t requests_rewritten() const { return requests_rewritten_; }
  uint64_t headers_stripped() const { return headers_stripped_; }
  std::string Status() const override;

  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 protected:
  bool WatchesResponses() const override { return false; }
  bool Configure(proxy::FilterContext& ctx, const std::vector<std::string>& args,
                 std::string* error) override;
  util::Bytes ScanBytes(const util::Bytes& data, bool* failed) override;
  util::Bytes FlushScanner() override;
  void ResetScanner() override;

 private:
  // Rewrites one complete header block (start line through blank line).
  util::Bytes RewriteHead(const std::string& head, bool* failed);

  std::string client_addr_;  // X-Forwarded-For value, from the stream key.
  std::string head_buf_;     // Bytes of the in-progress header block.
  size_t body_remaining_ = 0;
  bool in_body_ = false;
  uint64_t requests_rewritten_ = 0;
  uint64_t headers_stripped_ = 0;
  obs::Counter* obs_requests_ = obs::MetricRegistry::NullCounter();
  obs::Counter* obs_stripped_ = obs::MetricRegistry::NullCounter();
};

class HtypeFilter : public HttpStreamFilterBase {
 public:
  // Marker header on rewritten responses: the body is a chunked sequence of
  // length-prefixed compressed blobs (FrameCompressedBlob wire format).
  static constexpr const char* kEncodingHeader = "X-Comma-Encoding";
  static constexpr const char* kEncodingFrames = "frames";
  // Media content type whose body is [layer, type, u16 len, payload] frames.
  static constexpr const char* kMediaContentType = "application/x-comma-media";

  HtypeFilter() : HttpStreamFilterBase("htype") {}

  // Runtime discard-aggressiveness control (examples/http_adapt): layers
  // above this are dropped from media bodies. Takes effect at the next
  // response head.
  void set_max_layer(int max_layer) { max_layer_ = max_layer; }
  int max_layer() const { return max_layer_; }

  uint64_t responses_transcoded() const { return responses_transcoded_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  std::string Status() const override;

  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 protected:
  bool WatchesResponses() const override { return true; }
  bool Configure(proxy::FilterContext& ctx, const std::vector<std::string>& args,
                 std::string* error) override;
  util::Bytes ScanBytes(const util::Bytes& data, bool* failed) override;
  util::Bytes FlushScanner() override;
  void ResetScanner() override;

 private:
  enum class BodyMode : uint8_t {
    kNone = 0,      // Parsing a head.
    kIdentity = 1,  // Pass-through body.
    kText = 2,      // Compress into chunked frames.
    kMedia = 3,     // Hierarchical discard into chunked frames.
  };

  util::Bytes RewriteHead(const std::string& head, bool* failed);
  // Processes `n` body bytes from `data[idx...]` under the current mode,
  // appending output. Emits the chunked terminator when the body completes.
  void ConsumeBody(const util::Bytes& data, size_t* idx, util::Bytes* out);
  void EmitChunk(const util::Bytes& piece, util::Bytes* out);

  int max_layer_ = 1;
  std::string head_buf_;
  BodyMode mode_ = BodyMode::kNone;
  size_t body_remaining_ = 0;
  util::Bytes carry_;  // Partial media frame straddling deliveries.
  uint64_t responses_transcoded_ = 0;
  uint64_t frames_dropped_ = 0;
  obs::Counter* obs_transcoded_ = obs::MetricRegistry::NullCounter();
  obs::Counter* obs_frames_dropped_ = obs::MetricRegistry::NullCounter();
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_HTTP_FILTERS_H_

// Transparency-supported stream services built on the TTSF (thesis §8.1.5,
// §8.1.6, §8.3).
//
// These filters never touch sequence numbers themselves: they *submit* a
// payload replacement to the ttsf filter on the same stream, which applies
// it consistently (including across retransmissions) and keeps both ends'
// TCP state machines coherent.
//
//  tdrop <percent> [seed]   Transparent packet dropping (§8.1.5, Fig. 8.3):
//                           randomly selected data segments are removed from
//                           the stream entirely; the sender sees normal
//                           acknowledgement progress; the receiver sees a
//                           shorter but contiguous stream. Suits real-time
//                           data where stale segments are better discarded
//                           than delivered late.
//
//  tcompress [rle|lz]       Transparent compression (§8.1.6, Fig. 8.4): each
//                           data segment's payload is replaced by a length-
//                           prefixed compressed image, cutting wireless
//                           bytes.
//
//  tdecompress              The inverse, for a second proxy near (or on) the
//                           mobile — together they realize the double-proxy
//                           arrangement of §10.2.4, and the ends exchange
//                           the original byte stream.
#ifndef COMMA_FILTERS_TRANSFORM_FILTERS_H_
#define COMMA_FILTERS_TRANSFORM_FILTERS_H_

#include "src/filters/ttsf_filter.h"
#include "src/proxy/filter.h"
#include "src/sim/random.h"
#include "src/util/compress.h"

namespace comma::filters {

// Base for filters that rewrite TCP payloads through a TTSF.
class TransformFilterBase : public proxy::Filter {
 public:
  TransformFilterBase(std::string name) : Filter(std::move(name), proxy::FilterPriority::kLow) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;

 protected:
  // Parses filter-specific arguments.
  virtual bool Configure(const std::vector<std::string>& args, std::string* error) = 0;
  // Returns the replacement payload, or nullopt to leave the packet alone.
  virtual std::optional<util::Bytes> Transform(const net::Packet& packet) = 0;

  proxy::StreamKey data_key_;
};

class TdropFilter : public TransformFilterBase {
 public:
  TdropFilter() : TransformFilterBase("tdrop"), rng_(0x7d20b) {}
  uint64_t dropped() const { return dropped_; }
  uint64_t passed() const { return passed_; }
  std::string Status() const override;

 protected:
  bool Configure(const std::vector<std::string>& args, std::string* error) override;
  std::optional<util::Bytes> Transform(const net::Packet& packet) override;

 public:
  // Failover: the RNG state is checkpointed so a standby continues the
  // exact drop sequence the primary would have produced — same-seed chaos
  // runs stay byte-identical across a takeover.
  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 private:
  double drop_probability_ = 0.5;
  sim::Random rng_;
  uint64_t dropped_ = 0;
  uint64_t passed_ = 0;
};

class TcompressFilter : public TransformFilterBase {
 public:
  TcompressFilter() : TransformFilterBase("tcompress") {}
  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t bytes_out() const { return bytes_out_; }
  std::string Status() const override;

 protected:
  bool Configure(const std::vector<std::string>& args, std::string* error) override;
  std::optional<util::Bytes> Transform(const net::Packet& packet) override;

 public:
  // Failover: byte accounting moves with the stream.
  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 private:
  util::Codec codec_ = util::Codec::kLz;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
};

class TdecompressFilter : public TransformFilterBase {
 public:
  TdecompressFilter() : TransformFilterBase("tdecompress") {}
  uint64_t blobs_decoded() const { return blobs_decoded_; }
  uint64_t decode_failures() const { return decode_failures_; }
  std::string Status() const override;

 protected:
  bool Configure(const std::vector<std::string>& args, std::string* error) override;
  std::optional<util::Bytes> Transform(const net::Packet& packet) override;

 public:
  // Failover: decode accounting moves with the stream.
  proxy::FilterStateKind state_kind() const override;
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 private:
  uint64_t blobs_decoded_ = 0;
  uint64_t decode_failures_ = 0;
};

// Frames `blob` with the u16 length prefix tcompress emits on the wire.
util::Bytes FrameCompressedBlob(const util::Bytes& blob);
// Parses a sequence of length-prefixed blobs, decompressing each. Returns
// nullopt if any blob is malformed.
std::optional<util::Bytes> DecodeCompressedFrames(const util::Bytes& payload,
                                                  uint64_t* blobs_decoded);

}  // namespace comma::filters

#endif  // COMMA_FILTERS_TRANSFORM_FILTERS_H_

#include "src/filters/tcp_filter.h"

#include "src/proxy/service_proxy.h"

#include "src/util/strings.h"

namespace comma::filters {

bool TcpFilter::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                         const std::vector<std::string>& /*args*/, std::string* error) {
  if (key.IsWildcard()) {
    if (error != nullptr) {
      *error = "tcp filter requires a concrete stream key";
    }
    return false;
  }
  forward_key_ = key;
  ctx.proxy().Attach(shared_from_this(), key.Reversed());
  return true;
}

void TcpFilter::In(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                   const net::Packet& packet) {
  if (!packet.has_tcp()) {
    return;
  }
  const auto& h = packet.tcp();
  const bool forward = key == forward_key_;

  if (h.flags & net::kTcpRst) {
    rst_seen_ = true;
    ScheduleTeardown(ctx);
    return;
  }
  if (h.flags & net::kTcpFin) {
    const uint32_t fin_seq = h.seq + static_cast<uint32_t>(packet.payload().size());
    if (forward) {
      fin_seen_forward_ = true;
      fin_seq_forward_ = fin_seq;
    } else {
      fin_seen_reverse_ = true;
      fin_seq_reverse_ = fin_seq;
    }
  }
  if (h.flags & net::kTcpAck) {
    // An ack on this key acknowledges the *other* direction's FIN.
    if (forward && fin_seen_reverse_ && tcp::SeqGt(h.ack, fin_seq_reverse_)) {
      fin_acked_reverse_ = true;
    }
    if (!forward && fin_seen_forward_ && tcp::SeqGt(h.ack, fin_seq_forward_)) {
      fin_acked_forward_ = true;
    }
  }
  if (fin_acked_forward_ && fin_acked_reverse_) {
    ScheduleTeardown(ctx);
  }
}

proxy::FilterVerdict TcpFilter::Out(proxy::FilterContext&, const proxy::StreamKey&,
                                    net::Packet& packet) {
  // The checksum contract (§5.3.2): run after every other filter has had its
  // chance to modify the packet, and make the wire image consistent again.
  if (!packet.VerifyChecksums()) {
    packet.UpdateChecksums();
    ++checksums_recomputed_;
  }
  return proxy::FilterVerdict::kPass;
}

void TcpFilter::ScheduleTeardown(proxy::FilterContext& ctx) {
  if (teardown_scheduled_) {
    return;
  }
  teardown_scheduled_ = true;
  // Give retransmitted FINs/ACKs a grace period before the stream state
  // disappears, then delete every filter on both directions.
  proxy::FilterPtr self = shared_from_this();
  proxy::ServiceProxy* proxy = &ctx.proxy();
  const proxy::StreamKey key = forward_key_;
  ctx.simulator().Schedule(2 * sim::kSecond, [self, proxy, key] {
    proxy->RemoveStream(key);
    proxy->RemoveStream(key.Reversed());
  });
}

std::string TcpFilter::Status() const {
  return util::Format("checksums=%llu fins=%d/%d rst=%d",
                      static_cast<unsigned long long>(checksums_recomputed_),
                      fin_seen_forward_ ? 1 : 0, fin_seen_reverse_ ? 1 : 0, rst_seen_ ? 1 : 0);
}

}  // namespace comma::filters

// The `qcache` filter: application partitioning at the proxy (thesis Ch. 1
// "Support for Partitioned Applications"; §5.2's first service class: "a
// service filter can include part of the code of an application").
//
// It understands the query application's wire protocol and moves the
// answering half of the application onto the proxy:
//  - responses passing toward the mobile are remembered (key -> value);
//  - requests from the mobile for a known key are answered directly from
//    the proxy — the request never crosses the wired network, and the
//    answer keeps coming "if the mobile becomes disconnected" from the
//    wired side (Ch. 1). Unknown keys pass through to the real server.
//
// Attach to the request direction (mobile -> server); the insertion method
// also attaches to the response path.
#ifndef COMMA_FILTERS_QCACHE_FILTER_H_
#define COMMA_FILTERS_QCACHE_FILTER_H_

#include <map>

#include "src/filters/query_protocol.h"
#include "src/proxy/filter.h"

namespace comma::filters {

struct QcacheStats {
  uint64_t requests_seen = 0;
  uint64_t hits = 0;        // Answered from the proxy.
  uint64_t misses = 0;      // Passed through to the server.
  uint64_t responses_cached = 0;
};

class QcacheFilter : public proxy::Filter {
 public:
  QcacheFilter() : Filter("qcache", proxy::FilterPriority::kLow) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  std::string Status() const override;

  const QcacheStats& stats() const { return stats_; }
  size_t cache_size() const { return cache_.size(); }

  // Failover (docs/robustness.md): the explicit thesis-era escape — the
  // query cache is content a handoff deliberately rebuilds from live
  // traffic, so it is not exported at all and a standby starts cold.
  proxy::FilterStateKind state_kind() const override {
    return proxy::FilterStateKind::kRebuildFromWire;
  }

 private:
  proxy::StreamKey request_key_;  // Possibly wild-card (mobile -> anywhere).
  size_t capacity_ = 512;
  std::map<std::string, util::Bytes> cache_;
  QcacheStats stats_;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_QCACHE_FILTER_H_

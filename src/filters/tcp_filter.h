// The `tcp` filter (thesis §5.3.2): the housekeeping filter attached to
// every serviced TCP stream. It
//  - recomputes IP and TCP checksums after all lower-priority filters have
//    made their modifications (it runs last in the out queue, priority HIGH);
//  - watches connection teardown (FINs acknowledged in both directions, or
//    a RST) and deletes all filters associated with the stream when it
//    closes.
#ifndef COMMA_FILTERS_TCP_FILTER_H_
#define COMMA_FILTERS_TCP_FILTER_H_

#include "src/proxy/filter.h"
#include "src/tcp/seq.h"

namespace comma::filters {

class TcpFilter : public proxy::Filter {
 public:
  TcpFilter() : Filter("tcp", proxy::FilterPriority::kHigh) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  void In(proxy::FilterContext& ctx, const proxy::StreamKey& key,
          const net::Packet& packet) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  std::string Status() const override;

  uint64_t checksums_recomputed() const { return checksums_recomputed_; }

 private:
  void ScheduleTeardown(proxy::FilterContext& ctx);

  proxy::StreamKey forward_key_;  // The key the service was added on.
  bool fin_seen_forward_ = false;
  bool fin_seen_reverse_ = false;
  uint32_t fin_seq_forward_ = 0;
  uint32_t fin_seq_reverse_ = 0;
  bool fin_acked_forward_ = false;
  bool fin_acked_reverse_ = false;
  bool rst_seen_ = false;
  bool teardown_scheduled_ = false;
  uint64_t checksums_recomputed_ = 0;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_TCP_FILTER_H_

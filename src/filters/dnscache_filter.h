// The `dnscache` filter: a DNS-over-UDP answering cache at the proxy
// (thesis Ch. 1 application partitioning, at a real protocol instead of the
// synthetic query app).
//
// Responses passing toward the mobile are decoded (src/reassembly/dns_codec)
// and their answer records remembered per (name, qtype) with the record TTL
// against the simulation clock. A later query for a cached name is answered
// directly from the proxy — forged as if from the queried server — and never
// crosses the wired network. Expired entries and unknown names pass through.
//
// Attach to the request direction (mobile -> resolver); the insertion method
// also attaches to the response path, like qcache.
#ifndef COMMA_FILTERS_DNSCACHE_FILTER_H_
#define COMMA_FILTERS_DNSCACHE_FILTER_H_

#include <map>
#include <vector>

#include "src/obs/metric_registry.h"
#include "src/proxy/filter.h"
#include "src/reassembly/dns_codec.h"

namespace comma::filters {

struct DnscacheStats {
  uint64_t queries_seen = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t responses_cached = 0;
  uint64_t expired = 0;  // Hits refused because the TTL ran out.
};

class DnscacheFilter : public proxy::Filter {
 public:
  DnscacheFilter() : Filter("dnscache", proxy::FilterPriority::kLow) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  std::string Status() const override;

  const DnscacheStats& stats() const { return stats_; }
  size_t cache_size() const { return cache_.size(); }

  // Failover: unlike qcache's rebuild-from-wire escape, the DNS cache is
  // checkpointed — answers carry absolute expiry times on the shared
  // simulation clock, so a standby can keep answering without re-warming
  // (docs/app-services.md).
  proxy::FilterStateKind state_kind() const override {
    return proxy::FilterStateKind::kCheckpointed;
  }
  bool ExportState(util::Bytes* out) const override;
  bool ImportState(proxy::FilterContext& ctx, const util::Bytes& in, std::string* error) override;

 private:
  struct CacheKey {
    std::string name;
    uint16_t qtype = 0;
    friend bool operator<(const CacheKey& a, const CacheKey& b) {
      return std::tie(a.name, a.qtype) < std::tie(b.name, b.qtype);
    }
  };
  struct CacheEntry {
    std::vector<reassembly::DnsRecord> answers;
    sim::TimePoint expires_at = 0;
  };

  size_t capacity_ = 512;
  std::map<CacheKey, CacheEntry> cache_;
  DnscacheStats stats_;
  obs::Counter* obs_queries_ = obs::MetricRegistry::NullCounter();
  obs::Counter* obs_hits_ = obs::MetricRegistry::NullCounter();
  obs::Counter* obs_misses_ = obs::MetricRegistry::NullCounter();
  obs::Counter* obs_cached_ = obs::MetricRegistry::NullCounter();
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_DNSCACHE_FILTER_H_

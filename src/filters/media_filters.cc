#include "src/filters/media_filters.h"

#include "src/proxy/service_proxy.h"

#include "src/monitor/eem_client.h"
#include "src/util/strings.h"

namespace comma::filters {

// --- hdiscard ---

bool HdiscardFilter::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& /*key*/,
                              const std::vector<std::string>& args, std::string* error) {
  ctx_ = &ctx.proxy().context();
  if (args.empty()) {
    max_layer_ = 0;  // Base layer only.
    return true;
  }
  if (args[0] == "auto") {
    auto_mode_ = true;
    max_layer_ = configured_max_;
    if (args.size() >= 2) {
      util::ParseU32(args[1], &ifindex_);
    }
    if (ifindex_ == 0 || ctx.eem() == nullptr) {
      if (error != nullptr) {
        *error = "hdiscard auto requires an interface index and a wired EEM";
      }
      return false;
    }
    // Watch the wireless queue through the monitor and adapt (§8.3.2: shape
    // the stream to the available QoS).
    monitor::VariableId qlen;
    qlen.name = "ifOutQLen";
    qlen.index = ifindex_;
    ctx.eem()->Register(qlen, monitor::Attr::Always(monitor::NotifyMode::kPeriodic));
    proxy::FilterPtr self = shared_from_this();
    std::function<void()> tick = [self, this, tick_ref = &timer_] { Adapt(); };
    timer_ = ctx.simulator().ScheduleTimer(500 * sim::kMillisecond, [self, this] { Adapt(); });
    return true;
  }
  uint32_t layer = 0;
  if (!util::ParseU32(args[0], &layer) || layer > 15) {
    if (error != nullptr) {
      *error = "hdiscard: usage: hdiscard <max_layer>|auto <ifindex>";
    }
    return false;
  }
  max_layer_ = static_cast<int>(layer);
  return true;
}

void HdiscardFilter::Adapt() {
  timer_ = sim::kInvalidTimerId;
  if (ctx_ == nullptr || ctx_->eem() == nullptr) {
    return;
  }
  monitor::VariableId qlen;
  qlen.name = "ifOutQLen";
  qlen.index = ifindex_;
  auto v = ctx_->eem()->GetValue(qlen);
  const auto age = ctx_->eem()->ValueAge(qlen);
  if (age.has_value() && *age > kStaleAfter) {
    // The EEM stopped talking (server dead or path down): the number in the
    // PDA describes a past world. Fail open toward full quality instead of
    // shedding layers on stale congestion data.
    if (max_layer_ < configured_max_) {
      ++max_layer_;
    }
  } else if (v.has_value() && std::holds_alternative<int64_t>(*v)) {
    const int64_t depth = std::get<int64_t>(*v);
    if (depth > 20) {
      max_layer_ = 0;  // Severe overload: cut straight to the base layer.
    } else if (depth > 8 && max_layer_ > 0) {
      --max_layer_;  // Queue building: shed an enhancement layer.
    } else if (depth < 2 && max_layer_ < configured_max_) {
      ++max_layer_;  // Headroom: restore quality.
    }
  }
  proxy::FilterPtr self = shared_from_this();
  timer_ = ctx_->simulator().ScheduleTimer(500 * sim::kMillisecond, [self, this] { Adapt(); });
}

proxy::FilterVerdict HdiscardFilter::Out(proxy::FilterContext&, const proxy::StreamKey&,
                                         net::Packet& packet) {
  if (!packet.has_udp() || packet.payload().size() < kMediaHeaderSize) {
    return proxy::FilterVerdict::kPass;
  }
  const int layer = packet.payload()[0];
  if (layer > max_layer_) {
    ++discarded_;
    return proxy::FilterVerdict::kDrop;
  }
  ++passed_;
  return proxy::FilterVerdict::kPass;
}

void HdiscardFilter::OnDetach(proxy::FilterContext& ctx, const proxy::StreamKey&) {
  if (timer_ != sim::kInvalidTimerId) {
    ctx.simulator().Cancel(timer_);
    timer_ = sim::kInvalidTimerId;
  }
  ctx_ = nullptr;
}

std::string HdiscardFilter::Status() const {
  return util::Format("max_layer=%d%s discarded=%llu passed=%llu", max_layer_,
                      auto_mode_ ? " (auto)" : "", static_cast<unsigned long long>(discarded_),
                      static_cast<unsigned long long>(passed_));
}

// --- dtrans ---

proxy::FilterVerdict DtransFilter::Out(proxy::FilterContext&, const proxy::StreamKey&,
                                       net::Packet& packet) {
  if (!packet.has_udp() || packet.payload().size() < kMediaHeaderSize) {
    return proxy::FilterVerdict::kPass;
  }
  util::Bytes& payload = packet.payload();
  const uint8_t type = payload[1];
  const size_t before = payload.size();
  if (type == kMediaTypeColorImage) {
    // 24bpp -> 8bpp: keep one byte per pixel triple.
    util::Bytes mono(payload.begin(), payload.begin() + kMediaHeaderSize);
    for (size_t i = kMediaHeaderSize; i < payload.size(); i += 3) {
      mono.push_back(payload[i]);
    }
    mono[1] = kMediaTypeMonoImage;
    payload = std::move(mono);
  } else if (type == kMediaTypeRichText) {
    // PostScript -> ASCII: strip non-ASCII bytes.
    util::Bytes plain(payload.begin(), payload.begin() + kMediaHeaderSize);
    for (size_t i = kMediaHeaderSize; i < payload.size(); ++i) {
      if (payload[i] < 0x80) {
        plain.push_back(payload[i]);
      }
    }
    plain[1] = kMediaTypePlainText;
    payload = std::move(plain);
  } else {
    return proxy::FilterVerdict::kPass;
  }
  ++translated_;
  bytes_saved_ += before - payload.size();
  // No UDP housekeeping filter exists (the thesis's `tcp` filter is
  // TCP-only), so the translator restores checksum consistency itself.
  packet.UpdateChecksums();
  return proxy::FilterVerdict::kPass;
}

std::string DtransFilter::Status() const {
  return util::Format("translated=%llu bytes_saved=%llu",
                      static_cast<unsigned long long>(translated_),
                      static_cast<unsigned long long>(bytes_saved_));
}

// --- delay ---

bool DelayFilter::OnInsert(proxy::FilterContext&, const proxy::StreamKey&,
                           const std::vector<std::string>& args, std::string* error) {
  if (!args.empty()) {
    uint32_t ms = 0;
    if (!util::ParseU32(args[0], &ms)) {
      if (error != nullptr) {
        *error = "delay: usage: delay <milliseconds>";
      }
      return false;
    }
    delay_ = static_cast<sim::Duration>(ms) * sim::kMillisecond;
  }
  return true;
}

proxy::FilterVerdict DelayFilter::Out(proxy::FilterContext& ctx, const proxy::StreamKey&,
                                      net::Packet& packet) {
  ++delayed_;
  auto holder = std::make_shared<net::PacketPtr>(packet.Clone());
  proxy::ServiceProxy* proxy = &ctx.proxy();
  proxy::FilterPtr self = shared_from_this();
  ctx.simulator().Schedule(delay_, [self, proxy, holder] {
    proxy->InjectPacket(std::move(*holder));
  });
  return proxy::FilterVerdict::kDrop;  // The original is replaced by the delayed copy.
}

std::string DelayFilter::Status() const {
  return util::Format("delay=%lldms delayed=%llu", static_cast<long long>(delay_ / 1000),
                      static_cast<unsigned long long>(delayed_));
}

// --- meter ---

void MeterFilter::In(proxy::FilterContext&, const proxy::StreamKey& key,
                     const net::Packet& packet) {
  Counts& c = counts_[key];
  ++c.packets;
  c.bytes += packet.SizeBytes();
}

uint64_t MeterFilter::packets(const proxy::StreamKey& key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second.packets;
}

uint64_t MeterFilter::bytes(const proxy::StreamKey& key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second.bytes;
}

std::string MeterFilter::Status() const {
  std::string out;
  for (const auto& [key, c] : counts_) {
    out += util::Format("%s pkts=%llu bytes=%llu; ", key.ToString().c_str(),
                        static_cast<unsigned long long>(c.packets),
                        static_cast<unsigned long long>(c.bytes));
  }
  return out;
}

}  // namespace comma::filters

#include "src/filters/qcache_filter.h"

#include "src/proxy/service_proxy.h"
#include "src/util/strings.h"

namespace comma::filters {

bool QcacheFilter::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                            const std::vector<std::string>& args, std::string* error) {
  request_key_ = key;
  if (!args.empty()) {
    uint32_t capacity = 0;
    if (!util::ParseU32(args[0], &capacity) || capacity == 0) {
      if (error != nullptr) {
        *error = "qcache: optional argument is the cache capacity (entries)";
      }
      return false;
    }
    capacity_ = capacity;
  }
  // Watch the response path too (server -> mobile) to populate the cache.
  ctx.proxy().Attach(shared_from_this(), key.Reversed());
  return true;
}

proxy::FilterVerdict QcacheFilter::Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                       net::Packet& packet) {
  if (!packet.has_udp()) {
    return proxy::FilterVerdict::kPass;
  }

  // Response passing toward the mobile: learn it.
  auto response = DecodeQueryResponse(packet.payload());
  if (response.has_value()) {
    if (cache_.size() >= capacity_ && cache_.count(response->key) == 0) {
      cache_.erase(cache_.begin());  // Simple bounded eviction.
    }
    cache_[response->key] = response->value;
    ++stats_.responses_cached;
    return proxy::FilterVerdict::kPass;
  }

  // Request from the mobile: answer locally when we can.
  auto request = DecodeQueryRequest(packet.payload());
  if (!request.has_value()) {
    return proxy::FilterVerdict::kPass;
  }
  ++stats_.requests_seen;
  auto hit = cache_.find(request->key);
  if (hit == cache_.end()) {
    ++stats_.misses;
    return proxy::FilterVerdict::kPass;  // The real server answers.
  }
  ++stats_.hits;
  // The partitioned application answers from the proxy: forge the response
  // as if it came from the queried server.
  QueryResponse answer;
  answer.id = request->id;
  answer.key = request->key;
  answer.value = hit->second;
  ctx.InjectPacket(net::Packet::MakeUdp(packet.ip().dst, packet.ip().src,
                                        packet.udp().dst_port, packet.udp().src_port,
                                        EncodeQueryResponse(answer)));
  (void)key;
  return proxy::FilterVerdict::kDrop;  // The request never goes upstream.
}

std::string QcacheFilter::Status() const {
  return util::Format("entries=%zu hits=%llu misses=%llu cached=%llu", cache_.size(),
                      static_cast<unsigned long long>(stats_.hits),
                      static_cast<unsigned long long>(stats_.misses),
                      static_cast<unsigned long long>(stats_.responses_cached));
}

}  // namespace comma::filters

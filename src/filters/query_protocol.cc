#include "src/filters/query_protocol.h"

namespace comma::filters {

namespace {
constexpr uint8_t kTagRequest = 0x01;
constexpr uint8_t kTagResponse = 0x02;
}  // namespace

util::Bytes EncodeQueryRequest(const QueryRequest& request) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(kTagRequest);
  w.WriteU32(request.id);
  w.WriteString(request.key);
  return out;
}

util::Bytes EncodeQueryResponse(const QueryResponse& response) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(kTagResponse);
  w.WriteU32(response.id);
  w.WriteString(response.key);
  w.WriteU16(static_cast<uint16_t>(response.value.size()));
  w.WriteBytes(response.value);
  return out;
}

std::optional<QueryRequest> DecodeQueryRequest(const util::Bytes& data) {
  util::ByteReader r(data);
  if (r.ReadU8() != kTagRequest) {
    return std::nullopt;
  }
  QueryRequest request;
  request.id = r.ReadU32();
  request.key = r.ReadString();
  if (r.failed() || r.remaining() != 0) {
    return std::nullopt;
  }
  return request;
}

std::optional<QueryResponse> DecodeQueryResponse(const util::Bytes& data) {
  util::ByteReader r(data);
  if (r.ReadU8() != kTagResponse) {
    return std::nullopt;
  }
  QueryResponse response;
  response.id = r.ReadU32();
  response.key = r.ReadString();
  const uint16_t len = r.ReadU16();
  response.value = r.ReadBytes(len);
  if (r.failed() || r.remaining() != 0) {
    return std::nullopt;
  }
  return response;
}

}  // namespace comma::filters

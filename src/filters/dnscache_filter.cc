#include "src/filters/dnscache_filter.h"

#include "src/proxy/filter_state.h"
#include "src/proxy/service_proxy.h"
#include "src/util/strings.h"

namespace comma::filters {

namespace {
constexpr char kDnscacheStateMagic[] = "DNSC";
constexpr uint8_t kDnscacheStateVersion = 1;
}  // namespace

bool DnscacheFilter::OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                              const std::vector<std::string>& args, std::string* error) {
  if (!args.empty()) {
    uint32_t capacity = 0;
    if (!util::ParseU32(args[0], &capacity) || capacity == 0) {
      if (error != nullptr) {
        *error = "dnscache: optional argument is the cache capacity (entries)";
      }
      return false;
    }
    capacity_ = capacity;
  }
  obs_queries_ = ctx.metrics()->GetCounter("dns.queries_seen");
  obs_hits_ = ctx.metrics()->GetCounter("dns.cache_hits");
  obs_misses_ = ctx.metrics()->GetCounter("dns.cache_misses");
  obs_cached_ = ctx.metrics()->GetCounter("dns.responses_cached");
  // Watch the response path too (resolver -> mobile) to populate the cache.
  ctx.proxy().Attach(shared_from_this(), key.Reversed());
  return true;
}

proxy::FilterVerdict DnscacheFilter::Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                                         net::Packet& packet) {
  if (!packet.has_udp()) {
    return proxy::FilterVerdict::kPass;
  }
  reassembly::DnsMessage msg;
  if (!reassembly::DecodeDnsMessage(packet.payload(), &msg) || msg.questions.empty()) {
    return proxy::FilterVerdict::kPass;  // Not DNS (or not a shape we parse).
  }
  const sim::TimePoint now = ctx.simulator().Now();

  if (msg.is_response()) {
    // Learn it: key by the first question, expire on the minimum answer TTL.
    if (msg.rcode() != 0 || msg.answers.empty()) {
      return proxy::FilterVerdict::kPass;  // Don't cache failures.
    }
    uint32_t min_ttl = msg.answers.front().ttl;
    for (const auto& a : msg.answers) {
      min_ttl = std::min(min_ttl, a.ttl);
    }
    if (min_ttl == 0) {
      return proxy::FilterVerdict::kPass;  // Uncacheable.
    }
    CacheKey ck{msg.questions.front().name, msg.questions.front().qtype};
    if (cache_.size() >= capacity_ && cache_.count(ck) == 0) {
      cache_.erase(cache_.begin());  // Simple bounded eviction.
    }
    cache_[ck] = CacheEntry{msg.answers, now + static_cast<sim::Duration>(min_ttl) * sim::kSecond};
    ++stats_.responses_cached;
    obs_cached_->Inc();
    return proxy::FilterVerdict::kPass;
  }

  // Query from the mobile: answer locally when we can.
  ++stats_.queries_seen;
  obs_queries_->Inc();
  CacheKey ck{msg.questions.front().name, msg.questions.front().qtype};
  auto hit = cache_.find(ck);
  if (hit != cache_.end() && hit->second.expires_at <= now) {
    cache_.erase(hit);
    hit = cache_.end();
    ++stats_.expired;
  }
  if (hit == cache_.end()) {
    ++stats_.misses;
    obs_misses_->Inc();
    return proxy::FilterVerdict::kPass;  // The real resolver answers.
  }
  ++stats_.hits;
  obs_hits_->Inc();
  reassembly::DnsMessage answer;
  answer.id = msg.id;
  answer.flags = reassembly::kDnsFlagResponse | (msg.flags & reassembly::kDnsFlagRecursionDesired);
  answer.questions = msg.questions;
  answer.answers = hit->second.answers;
  ctx.InjectPacket(net::Packet::MakeUdp(packet.ip().dst, packet.ip().src, packet.udp().dst_port,
                                        packet.udp().src_port,
                                        reassembly::EncodeDnsMessage(answer)));
  (void)key;
  return proxy::FilterVerdict::kDrop;  // The query never goes upstream.
}

std::string DnscacheFilter::Status() const {
  return util::Format("entries=%zu hits=%llu misses=%llu cached=%llu", cache_.size(),
                      static_cast<unsigned long long>(stats_.hits),
                      static_cast<unsigned long long>(stats_.misses),
                      static_cast<unsigned long long>(stats_.responses_cached));
}

bool DnscacheFilter::ExportState(util::Bytes* out) const {
  util::ByteWriter w(out);
  proxy::WriteStateHeader(&w, kDnscacheStateMagic, kDnscacheStateVersion);
  w.WriteU32(static_cast<uint32_t>(cache_.size()));
  for (const auto& [ck, entry] : cache_) {
    w.WriteString(ck.name);
    w.WriteU16(ck.qtype);
    w.WriteU64(static_cast<uint64_t>(entry.expires_at));
    w.WriteU16(static_cast<uint16_t>(entry.answers.size()));
    for (const auto& rec : entry.answers) {
      w.WriteString(rec.name);
      w.WriteU16(rec.rtype);
      w.WriteU16(rec.rclass);
      w.WriteU32(rec.ttl);
      w.WriteString(util::ToString(rec.rdata));
    }
  }
  w.WriteU64(stats_.hits);
  w.WriteU64(stats_.misses);
  w.WriteU64(stats_.responses_cached);
  return true;
}

bool DnscacheFilter::ImportState(proxy::FilterContext&, const util::Bytes& in,
                                 std::string* error) {
  util::ByteReader r(in);
  std::optional<uint8_t> version = proxy::ReadStateHeader(&r, kDnscacheStateMagic);
  if (!version.has_value() || *version != kDnscacheStateVersion) {
    if (error != nullptr) {
      *error = "dnscache import: bad magic or version";
    }
    return false;
  }
  std::map<CacheKey, CacheEntry> cache;
  const uint32_t entries = r.ReadU32();
  for (uint32_t i = 0; i < entries && !r.failed(); ++i) {
    CacheKey ck;
    ck.name = r.ReadString();
    ck.qtype = r.ReadU16();
    CacheEntry entry;
    entry.expires_at = static_cast<sim::TimePoint>(r.ReadU64());
    const uint16_t answers = r.ReadU16();
    for (uint16_t j = 0; j < answers && !r.failed(); ++j) {
      reassembly::DnsRecord rec;
      rec.name = r.ReadString();
      rec.rtype = r.ReadU16();
      rec.rclass = r.ReadU16();
      rec.ttl = r.ReadU32();
      rec.rdata = util::ToBytes(r.ReadString());
      entry.answers.push_back(std::move(rec));
    }
    cache.emplace(std::move(ck), std::move(entry));
  }
  const uint64_t hits = r.ReadU64();
  const uint64_t misses = r.ReadU64();
  const uint64_t cached = r.ReadU64();
  if (r.failed()) {
    if (error != nullptr) {
      *error = "dnscache import: truncated blob";
    }
    return false;
  }
  cache_ = std::move(cache);
  stats_.hits = hits;
  stats_.misses = misses;
  stats_.responses_cached = cached;
  return true;
}

}  // namespace comma::filters

// The `rdrop` filter (thesis §5.3.2): randomly drops packets with a given
// frequency. Argument: drop percentage (0-100), optional seed.
//
// This is the *non-transparent* dropper — dropped TCP segments will be
// retransmitted end-to-end. For the transparency-supported variant that
// removes the data from the stream entirely, see tdrop (§8.1.5).
#ifndef COMMA_FILTERS_RDROP_FILTER_H_
#define COMMA_FILTERS_RDROP_FILTER_H_

#include "src/proxy/filter.h"
#include "src/sim/random.h"

namespace comma::filters {

class RdropFilter : public proxy::Filter {
 public:
  RdropFilter() : Filter("rdrop", proxy::FilterPriority::kLow), rng_(0x5d7c0) {}

  bool OnInsert(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                const std::vector<std::string>& args, std::string* error) override;
  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override;
  std::string Status() const override;

  uint64_t dropped() const { return dropped_; }
  uint64_t passed() const { return passed_; }

 private:
  double drop_probability_ = 0.5;
  sim::Random rng_;
  uint64_t dropped_ = 0;
  uint64_t passed_ = 0;
};

}  // namespace comma::filters

#endif  // COMMA_FILTERS_RDROP_FILTER_H_

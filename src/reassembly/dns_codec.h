// DNS-over-UDP message codec (RFC 1035 subset) for the dnscache filter and
// the DNS app pair. Encodes/decodes the header, question section, and
// resource records with A-record rdata kept as raw bytes; name compression
// pointers are followed on decode (with a loop guard) but never emitted on
// encode — the simulator's messages are small enough that plain labels keep
// the wire format trivially deterministic.
#ifndef COMMA_REASSEMBLY_DNS_CODEC_H_
#define COMMA_REASSEMBLY_DNS_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace comma::reassembly {

inline constexpr uint16_t kDnsTypeA = 1;
inline constexpr uint16_t kDnsClassIn = 1;
inline constexpr uint16_t kDnsFlagResponse = 0x8000;
inline constexpr uint16_t kDnsFlagRecursionDesired = 0x0100;
inline constexpr uint16_t kDnsRcodeNameError = 0x0003;

struct DnsQuestion {
  std::string name;  // Dotted form, lowercase preferred ("host.example").
  uint16_t qtype = kDnsTypeA;
  uint16_t qclass = kDnsClassIn;
};

struct DnsRecord {
  std::string name;
  uint16_t rtype = kDnsTypeA;
  uint16_t rclass = kDnsClassIn;
  uint32_t ttl = 0;  // Seconds.
  util::Bytes rdata;  // For A records: 4 address bytes.
};

struct DnsMessage {
  uint16_t id = 0;
  uint16_t flags = 0;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;

  bool is_response() const { return (flags & kDnsFlagResponse) != 0; }
  uint16_t rcode() const { return flags & 0x000F; }
};

util::Bytes EncodeDnsMessage(const DnsMessage& msg);

// False on any malformed input (truncation, bad label, pointer loop);
// `*out` is unspecified on failure.
bool DecodeDnsMessage(const util::Bytes& payload, DnsMessage* out);

}  // namespace comma::reassembly

#endif  // COMMA_REASSEMBLY_DNS_CODEC_H_

#include "src/reassembly/http_parser.h"

#include <algorithm>
#include <cctype>

namespace comma::reassembly {

namespace {

char AsciiLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

bool HeaderNameEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) {
      return false;
    }
  }
  return true;
}

bool ValueHasPrefix(const std::string& value, const std::string& prefix) {
  if (value.size() < prefix.size()) {
    return false;
  }
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (AsciiLower(value[i]) != AsciiLower(prefix[i])) {
      return false;
    }
  }
  return true;
}

bool ParseHeaderLine(const std::string& line, HttpHeader* out) {
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    return false;
  }
  out->name = line.substr(0, colon);
  // Field names may not contain whitespace (obsolete line folding is not
  // supported; a folded continuation line will fail here and latch failed()).
  if (out->name.find(' ') != std::string::npos || out->name.find('\t') != std::string::npos) {
    return false;
  }
  out->value = Trim(line.substr(colon + 1));
  return true;
}

const std::string* HttpMessage::FindHeader(const std::string& name) const {
  for (const auto& h : headers) {
    if (HeaderNameEquals(h.name, name)) {
      return &h.value;
    }
  }
  return nullptr;
}

bool HttpParser::Feed(const util::Bytes& data) { return Feed(data.data(), data.size()); }

bool HttpParser::Feed(const uint8_t* data, size_t len) {
  if (failed_) {
    return false;
  }
  buffer_.insert(buffer_.end(), data, data + len);
  Parse();
  return !failed_;
}

void HttpParser::FinishStream() {
  if (failed_) {
    return;
  }
  Parse();
  if (state_ == State::kBodyUntilClose) {
    current_.complete_on_close = true;
    CompleteMessage();
    return;
  }
  // EOF between messages is a clean close; anywhere else it truncated one.
  if (state_ != State::kStartLine || pending_bytes() > 0) {
    Fail();
  }
}

HttpMessage HttpParser::PopMessage() {
  HttpMessage m = std::move(messages_.front());
  messages_.pop_front();
  return m;
}

bool HttpParser::NextLine(std::string* line) {
  for (size_t i = consumed_; i < buffer_.size(); ++i) {
    if (buffer_[i] == '\n') {
      size_t end = i;
      if (end > consumed_ && buffer_[end - 1] == '\r') {
        --end;
      }
      line->assign(util::AsCharPtr(buffer_.data() + consumed_), end - consumed_);
      consumed_ = i + 1;
      return true;
    }
  }
  return false;
}

void HttpParser::Fail() {
  failed_ = true;
  buffer_.clear();
  consumed_ = 0;
}

void HttpParser::CompleteMessage() {
  messages_.push_back(std::move(current_));
  current_ = HttpMessage{};
  ++messages_parsed_;
  state_ = State::kStartLine;
}

bool HttpParser::BeginBody() {
  const std::string* te = current_.FindHeader("Transfer-Encoding");
  if (te != nullptr) {
    // Only the terminal "chunked" coding is supported; anything else means
    // we cannot find the message boundary.
    if (!HeaderNameEquals(Trim(*te), "chunked")) {
      Fail();
      return false;
    }
    current_.chunked = true;
    state_ = State::kBodyChunkSize;
    return true;
  }
  const std::string* cl = current_.FindHeader("Content-Length");
  if (cl != nullptr) {
    size_t value = 0;
    if (cl->empty()) {
      Fail();
      return false;
    }
    for (char c : *cl) {
      if (c < '0' || c > '9') {
        Fail();
        return false;
      }
      value = value * 10 + static_cast<size_t>(c - '0');
      if (value > (1u << 30)) {  // Reject absurd lengths before buffering.
        Fail();
        return false;
      }
    }
    current_.has_content_length = true;
    if (value == 0) {
      CompleteMessage();
      return true;
    }
    body_remaining_ = value;
    state_ = State::kBodyContentLength;
    return true;
  }
  if (mode_ == Mode::kRequest) {
    // A request without a length has no body.
    CompleteMessage();
    return true;
  }
  // Responses without explicit framing: bodiless statuses end at the head;
  // everything else reads until the peer closes.
  if (current_.status_code == 204 || current_.status_code == 304 ||
      (current_.status_code >= 100 && current_.status_code < 200)) {
    CompleteMessage();
    return true;
  }
  state_ = State::kBodyUntilClose;
  return true;
}

void HttpParser::Parse() {
  while (!failed_) {
    switch (state_) {
      case State::kStartLine: {
        std::string line;
        if (!NextLine(&line)) {
          goto compact;
        }
        if (line.empty()) {
          continue;  // Tolerate a stray CRLF between pipelined messages.
        }
        const size_t sp1 = line.find(' ');
        const size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos) {
          Fail();
          return;
        }
        if (mode_ == Mode::kRequest) {
          if (sp2 == std::string::npos) {
            Fail();
            return;
          }
          current_.method = line.substr(0, sp1);
          current_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
          current_.version = line.substr(sp2 + 1);
          if (current_.method.empty() || current_.target.empty() ||
              current_.version.rfind("HTTP/", 0) != 0) {
            Fail();
            return;
          }
        } else {
          current_.version = line.substr(0, sp1);
          const std::string code =
              sp2 == std::string::npos ? line.substr(sp1 + 1) : line.substr(sp1 + 1, sp2 - sp1 - 1);
          current_.reason = sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
          if (current_.version.rfind("HTTP/", 0) != 0 || code.size() != 3 ||
              !std::all_of(code.begin(), code.end(),
                           [](char c) { return c >= '0' && c <= '9'; })) {
            Fail();
            return;
          }
          current_.status_code = (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');
        }
        state_ = State::kHeaders;
        continue;
      }
      case State::kHeaders: {
        std::string line;
        if (!NextLine(&line)) {
          goto compact;
        }
        if (line.empty()) {
          if (!BeginBody()) {
            return;
          }
          continue;
        }
        HttpHeader h;
        if (!ParseHeaderLine(line, &h)) {
          Fail();
          return;
        }
        current_.headers.push_back(std::move(h));
        continue;
      }
      case State::kBodyContentLength:
      case State::kBodyChunkData:
      case State::kBodyUntilClose: {
        size_t avail = buffer_.size() - consumed_;
        if (state_ == State::kBodyUntilClose) {
          body_remaining_ = avail;  // Take everything; EOF delimits.
        }
        const size_t take = std::min(avail, body_remaining_);
        current_.body.insert(current_.body.end(), buffer_.begin() + static_cast<long>(consumed_),
                             buffer_.begin() + static_cast<long>(consumed_ + take));
        consumed_ += take;
        if (state_ == State::kBodyUntilClose) {
          goto compact;
        }
        body_remaining_ -= take;
        if (body_remaining_ > 0) {
          goto compact;
        }
        if (state_ == State::kBodyContentLength) {
          CompleteMessage();
        } else {
          state_ = State::kBodyChunkDataEnd;
        }
        continue;
      }
      case State::kBodyChunkSize: {
        std::string line;
        if (!NextLine(&line)) {
          goto compact;
        }
        // Strip any chunk extension.
        const size_t semi = line.find(';');
        if (semi != std::string::npos) {
          line = line.substr(0, semi);
        }
        line = Trim(line);
        if (line.empty()) {
          Fail();
          return;
        }
        size_t size = 0;
        for (char c : line) {
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            Fail();
            return;
          }
          size = size * 16 + static_cast<size_t>(digit);
          if (size > (1u << 30)) {
            Fail();
            return;
          }
        }
        if (size == 0) {
          state_ = State::kBodyTrailers;
        } else {
          body_remaining_ = size;
          state_ = State::kBodyChunkData;
        }
        continue;
      }
      case State::kBodyChunkDataEnd: {
        std::string line;
        if (!NextLine(&line)) {
          goto compact;
        }
        if (!line.empty()) {
          Fail();  // Chunk data must be followed by a bare CRLF.
          return;
        }
        state_ = State::kBodyChunkSize;
        continue;
      }
      case State::kBodyTrailers: {
        std::string line;
        if (!NextLine(&line)) {
          goto compact;
        }
        if (line.empty()) {
          CompleteMessage();
          continue;
        }
        HttpHeader h;
        if (!ParseHeaderLine(line, &h)) {
          Fail();
          return;
        }
        current_.headers.push_back(std::move(h));  // Trailers join the headers.
        continue;
      }
    }
  }
  return;

compact:
  // Drop the consumed prefix so pending_bytes() reflects only unparsed data.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
}

}  // namespace comma::reassembly

// Incremental HTTP/1.1 message parser (ROADMAP item 5).
//
// Feed() accepts stream bytes in any piece sizes (straight off a
// StreamReassembler) and produces complete messages in order, so pipelined
// requests and responses parse naturally: when one message ends, parsing
// continues into the next with whatever bytes remain. Supported framing:
// request line / status line, header block, Content-Length bodies, chunked
// transfer coding (with trailers), and — for responses — read-until-close
// (FinishStream() completes the open message).
//
// The parser is deliberately strict about structure (a malformed start line
// or chunk size latches failed()) but tolerant about header content: it
// stores headers verbatim and lets callers interpret them. A proxy filter
// that sees failed() must stop interpreting the stream and fail open.
#ifndef COMMA_REASSEMBLY_HTTP_PARSER_H_
#define COMMA_REASSEMBLY_HTTP_PARSER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace comma::reassembly {

struct HttpHeader {
  std::string name;   // As received (case preserved).
  std::string value;  // Leading/trailing whitespace trimmed.
};

struct HttpMessage {
  // Request fields (kRequest mode).
  std::string method;
  std::string target;
  // Response fields (kResponse mode).
  int status_code = 0;
  std::string reason;

  std::string version;  // "HTTP/1.1"
  std::vector<HttpHeader> headers;
  util::Bytes body;
  bool chunked = false;             // Body arrived chunk-encoded.
  bool has_content_length = false;  // Body was Content-Length-delimited.
  bool complete_on_close = false;   // Body was delimited by stream end.

  // First header matching `name` (ASCII case-insensitive), or nullptr.
  const std::string* FindHeader(const std::string& name) const;
};

// Shared header-block utilities (also used by the content-aware filters,
// which rewrite heads without buffering bodies).
bool ParseHeaderLine(const std::string& line, HttpHeader* out);
bool HeaderNameEquals(const std::string& a, const std::string& b);
// Case-insensitive prefix match on a header value ("text/" vs "Text/Plain").
bool ValueHasPrefix(const std::string& value, const std::string& prefix);

class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode) : mode_(mode) {}

  // Appends stream bytes and parses as far as possible. Returns false once
  // the parser has latched failed().
  bool Feed(const util::Bytes& data);
  bool Feed(const uint8_t* data, size_t len);

  // The stream ended (FIN). Completes a read-until-close response body;
  // a mid-message EOF in any other framing latches failed().
  void FinishStream();

  bool failed() const { return failed_; }
  bool HasMessage() const { return !messages_.empty(); }
  HttpMessage PopMessage();
  uint64_t messages_parsed() const { return messages_parsed_; }
  // Bytes buffered for the in-progress message (bounded by callers feeding
  // bounded streams; the parser itself never reorders).
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  enum class State {
    kStartLine,
    kHeaders,
    kBodyContentLength,
    kBodyChunkSize,
    kBodyChunkData,
    kBodyChunkDataEnd,  // CRLF after each chunk.
    kBodyTrailers,
    kBodyUntilClose,
  };

  void Parse();
  // Reads one CRLF- (or LF-) terminated line from the buffer; false when no
  // complete line is buffered yet.
  bool NextLine(std::string* line);
  void Fail();
  void CompleteMessage();
  bool BeginBody();  // Decides framing from the parsed header block.

  Mode mode_;
  State state_ = State::kStartLine;
  bool failed_ = false;
  util::Bytes buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already parsed.
  HttpMessage current_;
  size_t body_remaining_ = 0;  // Content-Length or current-chunk countdown.
  std::deque<HttpMessage> messages_;
  uint64_t messages_parsed_ = 0;
};

}  // namespace comma::reassembly

#endif  // COMMA_REASSEMBLY_HTTP_PARSER_H_

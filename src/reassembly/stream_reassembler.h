// In-order TCP stream reassembly for application-layer services (ROADMAP
// item 5; thesis §8.3 — data-manipulation services act on *message*
// semantics, which first requires recovering the byte stream from the
// segment soup a proxy taps mid-path).
//
// A StreamReassembler tracks one direction of one TCP stream. Segments are
// fed in arrival order; the reassembler keys its out-of-order buffer in
// sequence space (via the src/tcp/seq.h helpers, so the 2^32 wrap is
// handled) and hands back the newly contiguous bytes as they become
// deliverable. Design points, mirrored in docs/app-services.md:
//
//  - Overlap resolution is first-arrival-wins: a retransmission carrying
//    different bytes for an already-buffered range is counted
//    (`overlap_conflicts`) and its conflicting bytes discarded, so one
//    consistent stream image is delivered no matter how the sender
//    retransmits.
//  - Buffering is bounded (`max_buffered_bytes`). On overflow the
//    reassembler *fails open*: the pending buffer is dropped, `failed()`
//    latches, and the owner is expected to stop interpreting the stream and
//    let the raw bytes through — a proxy service must degrade to
//    pass-through, never stall the stream (thesis §5.2's transparency
//    contract).
//  - Segments entirely below the frontier are duplicates (delivered
//    already); segments beyond the buffering window are out-of-window and
//    ignored. Both are counted, neither is an error.
//  - FIN consumes one sequence number and marks the stream finished once
//    every byte before it has been delivered; RST tears down immediately.
#ifndef COMMA_REASSEMBLY_STREAM_REASSEMBLER_H_
#define COMMA_REASSEMBLY_STREAM_REASSEMBLER_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/tcp/seq.h"
#include "src/util/bytes.h"

namespace comma::reassembly {

struct ReassemblerConfig {
  // Ceiling on buffered out-of-order payload bytes. A receive window's
  // worth is plenty: the sender cannot usefully keep more in flight.
  size_t max_buffered_bytes = 64 * 1024;
};

struct ReassemblerStats {
  uint64_t segments_in = 0;
  uint64_t bytes_delivered = 0;
  uint64_t duplicate_segments = 0;   // Entirely at or below the frontier.
  uint64_t overlap_conflicts = 0;    // Retransmitted bytes disagreed.
  uint64_t out_of_window = 0;        // Beyond the buffering window.
  uint64_t buffered_evictions = 0;   // Overflow -> fail-open.
  uint64_t gaps_filled = 0;          // A hole closed and buffered data drained.
};

class StreamReassembler {
 public:
  explicit StreamReassembler(ReassemblerConfig config = {}) : config_(config) {}

  // Establishes the frontier from a SYN (first data byte is isn+1). Without
  // this, the first segment fed adopts its own seq as the frontier
  // (mid-stream attachment, exactly like the TTSF).
  void OnSyn(uint32_t isn);

  // Feeds one segment. Newly deliverable in-order bytes are *appended* to
  // `*out` (which may gain zero bytes: a duplicate, a hole, or a failed
  // stream). Returns the number of bytes appended. `fin` marks the segment
  // as carrying FIN at seq+payload size.
  size_t OnSegment(uint32_t seq, const util::Bytes& payload, bool fin, util::Bytes* out);

  // RST: drops all buffered state and latches failed().
  void OnRst();

  bool initialized() const { return initialized_; }
  uint32_t frontier() const { return frontier_; }
  // Fail-open latch: buffering overflowed or the stream was reset. The
  // owner must stop interpreting stream content once this is set.
  bool failed() const { return failed_; }
  // FIN seen and every byte before it delivered.
  bool finished() const { return fin_seen_ && initialized_ && frontier_ == fin_seq_; }
  size_t buffered_bytes() const { return buffered_bytes_; }
  const ReassemblerStats& stats() const { return stats_; }

  // Failover support (docs/app-services.md): a checkpoint restores only the
  // frontier — pending out-of-order buffers are deliberately dropped, the
  // sender's RTO redelivers them (same contract as the TTSF's state blob).
  void RestoreFrontier(uint32_t frontier);

 private:
  struct SeqBefore {
    bool operator()(uint32_t a, uint32_t b) const { return tcp::SeqLt(a, b); }
  };

  // Buffers [seq, seq+data size) clipped against already-buffered ranges;
  // first arrival wins on conflicts.
  void BufferSegment(uint32_t seq, const util::Bytes& payload, size_t offset);
  // Drains buffered segments now contiguous with the frontier into *out.
  size_t Drain(util::Bytes* out);
  void FailOpen();

  ReassemblerConfig config_;
  bool initialized_ = false;
  bool failed_ = false;
  uint32_t frontier_ = 0;  // Next in-order sequence number expected.
  bool fin_seen_ = false;
  uint32_t fin_seq_ = 0;   // Sequence number of the FIN itself.
  // Out-of-order payloads keyed by their first sequence number. Keys stay
  // within the buffering window (a fraction of the 2^31 half-space), so the
  // SeqLt comparator is a valid strict weak ordering over the live key set.
  std::map<uint32_t, util::Bytes, SeqBefore> pending_;
  size_t buffered_bytes_ = 0;
  ReassemblerStats stats_;
};

}  // namespace comma::reassembly

#endif  // COMMA_REASSEMBLY_STREAM_REASSEMBLER_H_

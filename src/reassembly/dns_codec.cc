#include "src/reassembly/dns_codec.h"

namespace comma::reassembly {

namespace {

constexpr size_t kMaxNameLength = 255;
constexpr size_t kMaxSections = 64;  // Sanity cap on question/answer counts.

bool EncodeName(const std::string& name, util::ByteWriter* w) {
  if (name.size() > kMaxNameLength) {
    return false;
  }
  size_t start = 0;
  while (start <= name.size()) {
    size_t dot = name.find('.', start);
    if (dot == std::string::npos) {
      dot = name.size();
    }
    const size_t len = dot - start;
    if (len > 63) {
      return false;
    }
    if (len > 0) {
      w->WriteU8(static_cast<uint8_t>(len));
      w->WriteBytes(util::AsBytePtr(name.data()) + start, len);
    } else if (dot < name.size()) {
      return false;  // Empty label inside the name ("a..b").
    }
    if (dot >= name.size()) {
      break;
    }
    start = dot + 1;
  }
  w->WriteU8(0);  // Root label.
  return true;
}

// Decodes a possibly-compressed name starting at *pos in `data`. Advances
// *pos past the name as stored (pointers count as two bytes). Bounded by a
// jump budget so malicious pointer loops cannot spin forever.
bool DecodeName(const util::Bytes& data, size_t* pos, std::string* out) {
  out->clear();
  size_t p = *pos;
  bool jumped = false;
  int jumps = 0;
  while (true) {
    if (p >= data.size()) {
      return false;
    }
    const uint8_t len = data[p];
    if ((len & 0xC0) == 0xC0) {
      if (p + 1 >= data.size() || ++jumps > 16) {
        return false;
      }
      const size_t target = (static_cast<size_t>(len & 0x3F) << 8) | data[p + 1];
      if (!jumped) {
        *pos = p + 2;
        jumped = true;
      }
      if (target >= p) {
        return false;  // Pointers may only point backwards.
      }
      p = target;
      continue;
    }
    if ((len & 0xC0) != 0) {
      return false;  // 01/10 label types are unsupported.
    }
    if (len == 0) {
      if (!jumped) {
        *pos = p + 1;
      }
      return true;
    }
    if (p + 1 + len > data.size() || out->size() + len + 1 > kMaxNameLength) {
      return false;
    }
    if (!out->empty()) {
      out->push_back('.');
    }
    out->append(util::AsCharPtr(data.data()) + p + 1, len);
    p += 1 + static_cast<size_t>(len);
  }
}

}  // namespace

util::Bytes EncodeDnsMessage(const DnsMessage& msg) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU16(msg.id);
  w.WriteU16(msg.flags);
  w.WriteU16(static_cast<uint16_t>(msg.questions.size()));
  w.WriteU16(static_cast<uint16_t>(msg.answers.size()));
  w.WriteU16(0);  // NSCOUNT
  w.WriteU16(0);  // ARCOUNT
  for (const auto& q : msg.questions) {
    if (!EncodeName(q.name, &w)) {
      return {};
    }
    w.WriteU16(q.qtype);
    w.WriteU16(q.qclass);
  }
  for (const auto& r : msg.answers) {
    if (!EncodeName(r.name, &w)) {
      return {};
    }
    w.WriteU16(r.rtype);
    w.WriteU16(r.rclass);
    w.WriteU32(r.ttl);
    w.WriteU16(static_cast<uint16_t>(r.rdata.size()));
    w.WriteBytes(r.rdata);
  }
  return out;
}

bool DecodeDnsMessage(const util::Bytes& payload, DnsMessage* out) {
  *out = DnsMessage{};
  util::ByteReader r(payload);
  out->id = r.ReadU16();
  out->flags = r.ReadU16();
  const uint16_t qdcount = r.ReadU16();
  const uint16_t ancount = r.ReadU16();
  r.ReadU16();  // NSCOUNT (ignored).
  r.ReadU16();  // ARCOUNT (ignored).
  if (r.failed() || qdcount > kMaxSections || ancount > kMaxSections) {
    return false;
  }
  size_t pos = r.position();
  for (uint16_t i = 0; i < qdcount; ++i) {
    DnsQuestion q;
    if (!DecodeName(payload, &pos, &q.name) || pos + 4 > payload.size()) {
      return false;
    }
    util::ByteReader fixed(payload.data() + pos, 4);
    q.qtype = fixed.ReadU16();
    q.qclass = fixed.ReadU16();
    pos += 4;
    out->questions.push_back(std::move(q));
  }
  for (uint16_t i = 0; i < ancount; ++i) {
    DnsRecord rec;
    if (!DecodeName(payload, &pos, &rec.name) || pos + 10 > payload.size()) {
      return false;
    }
    util::ByteReader fixed(payload.data() + pos, 10);
    rec.rtype = fixed.ReadU16();
    rec.rclass = fixed.ReadU16();
    rec.ttl = fixed.ReadU32();
    const uint16_t rdlen = fixed.ReadU16();
    pos += 10;
    if (pos + rdlen > payload.size()) {
      return false;
    }
    rec.rdata.assign(payload.begin() + static_cast<long>(pos),
                     payload.begin() + static_cast<long>(pos + rdlen));
    pos += rdlen;
    out->answers.push_back(std::move(rec));
  }
  return true;
}

}  // namespace comma::reassembly

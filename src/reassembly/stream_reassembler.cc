#include "src/reassembly/stream_reassembler.h"

namespace comma::reassembly {

using tcp::SeqDiff;
using tcp::SeqGeq;
using tcp::SeqGt;
using tcp::SeqLeq;
using tcp::SeqLt;

void StreamReassembler::OnSyn(uint32_t isn) {
  if (initialized_) {
    return;  // Retransmitted SYN; the frontier is already set.
  }
  initialized_ = true;
  frontier_ = isn + 1;
}

void StreamReassembler::RestoreFrontier(uint32_t frontier) {
  initialized_ = true;
  frontier_ = frontier;
  pending_.clear();
  buffered_bytes_ = 0;
}

void StreamReassembler::OnRst() {
  pending_.clear();
  buffered_bytes_ = 0;
  failed_ = true;
}

size_t StreamReassembler::OnSegment(uint32_t seq, const util::Bytes& payload, bool fin,
                                    util::Bytes* out) {
  ++stats_.segments_in;
  if (failed_) {
    return 0;
  }
  if (!initialized_) {
    // Mid-stream attachment: adopt this packet's seq as the frontier.
    initialized_ = true;
    frontier_ = seq;
  }

  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t end = seq + len;

  if (fin) {
    const uint32_t fin_seq = end;
    if (!fin_seen_) {
      fin_seen_ = true;
      fin_seq_ = fin_seq;
    } else if (fin_seq != fin_seq_) {
      // A FIN moved in sequence space: the stream is incoherent.
      FailOpen();
      return 0;
    }
  }

  if (len == 0) {
    return 0;  // Pure ACK or bare FIN: no payload to deliver.
  }

  // Window check: a segment starting beyond frontier + window cannot be
  // buffered without breaking the bound (and, far enough out, the SeqLt
  // ordering); it is the sender's job to stay inside the receive window.
  if (SeqGt(end, frontier_ + static_cast<uint32_t>(config_.max_buffered_bytes) +
                     static_cast<uint32_t>(config_.max_buffered_bytes))) {
    ++stats_.out_of_window;
    return 0;
  }

  if (SeqLeq(end, frontier_)) {
    ++stats_.duplicate_segments;
    return 0;  // Entirely old data; already delivered.
  }

  // Clip the prefix that is already delivered (partial retransmission).
  size_t offset = 0;
  uint32_t first_new = seq;
  if (SeqLt(seq, frontier_)) {
    offset = static_cast<uint32_t>(SeqDiff(frontier_, seq));
    first_new = frontier_;
  }

  if (first_new == frontier_) {
    // In-order new data: deliver directly, then drain anything buffered
    // that has become contiguous.
    const size_t n = payload.size() - offset;
    out->insert(out->end(), payload.begin() + static_cast<long>(offset), payload.end());
    frontier_ = end;
    stats_.bytes_delivered += n;
    size_t drained = 0;
    if (!pending_.empty()) {
      drained = Drain(out);
      if (drained > 0) {
        ++stats_.gaps_filled;
      }
    }
    return n + drained;
  }

  // Out of order: buffer beyond the hole.
  BufferSegment(first_new, payload, offset);
  return 0;
}

void StreamReassembler::BufferSegment(uint32_t seq, const util::Bytes& payload, size_t offset) {
  uint32_t pos = seq;
  size_t idx = offset;
  const uint32_t end = seq + static_cast<uint32_t>(payload.size() - offset);

  // Walk the pending map, fill the gaps the new segment covers, and verify
  // the overlapped stretches byte-by-byte (first arrival wins).
  auto it = pending_.begin();
  while (SeqLt(pos, end)) {
    // Skip buffered ranges entirely before pos.
    while (it != pending_.end() &&
           SeqLeq(it->first + static_cast<uint32_t>(it->second.size()), pos)) {
      ++it;
    }
    uint32_t gap_end = end;
    if (it != pending_.end() && SeqLt(it->first, gap_end)) {
      gap_end = tcp::SeqMax(it->first, pos);
    }
    if (SeqLt(pos, gap_end)) {
      // [pos, gap_end) is new. Respect the buffering bound.
      const size_t n = static_cast<uint32_t>(SeqDiff(gap_end, pos));
      if (buffered_bytes_ + n > config_.max_buffered_bytes) {
        FailOpen();
        return;
      }
      util::Bytes piece(payload.begin() + static_cast<long>(idx),
                        payload.begin() + static_cast<long>(idx + n));
      buffered_bytes_ += piece.size();
      it = pending_.emplace(pos, std::move(piece)).first;
      ++it;
      pos = gap_end;
      idx += n;
      continue;
    }
    if (it == pending_.end()) {
      break;
    }
    // [pos, ...) overlaps the buffered range at it: compare, keep first.
    const uint32_t buf_end = it->first + static_cast<uint32_t>(it->second.size());
    const uint32_t upto = tcp::SeqMin(buf_end, end);
    const size_t buf_off = static_cast<uint32_t>(SeqDiff(pos, it->first));
    const size_t n = static_cast<uint32_t>(SeqDiff(upto, pos));
    bool conflict = false;
    for (size_t i = 0; i < n; ++i) {
      if (it->second[buf_off + i] != payload[idx + i]) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      ++stats_.overlap_conflicts;
    }
    pos = upto;
    idx += n;
  }
}

size_t StreamReassembler::Drain(util::Bytes* out) {
  size_t drained = 0;
  while (!pending_.empty()) {
    auto it = pending_.begin();
    const uint32_t seq = it->first;
    if (SeqGt(seq, frontier_)) {
      break;  // Still a hole.
    }
    util::Bytes data = std::move(it->second);
    buffered_bytes_ -= data.size();
    pending_.erase(it);
    const uint32_t data_end = seq + static_cast<uint32_t>(data.size());
    if (SeqLeq(data_end, frontier_)) {
      continue;  // Fully superseded by a wider delivery.
    }
    const size_t skip = static_cast<uint32_t>(SeqDiff(frontier_, seq));
    out->insert(out->end(), data.begin() + static_cast<long>(skip), data.end());
    drained += data.size() - skip;
    frontier_ = data_end;
  }
  stats_.bytes_delivered += drained;
  return drained;
}

void StreamReassembler::FailOpen() {
  pending_.clear();
  buffered_bytes_ = 0;
  failed_ = true;
  ++stats_.buffered_evictions;
}

}  // namespace comma::reassembly

#include "src/udp/udp_stack.h"

namespace comma::udp {

UdpSocket::UdpSocket(UdpStack* stack, uint16_t port) : stack_(stack), port_(port) {}

UdpSocket::~UdpSocket() {
  if (stack_ != nullptr) {
    stack_->Unbind(port_);
  }
}

void UdpSocket::SendTo(net::Ipv4Address addr, uint16_t port, util::Bytes payload) {
  ++datagrams_sent_;
  bytes_sent_ += payload.size();
  stack_->node()->SendPacket(net::Packet::MakeUdp(stack_->node()->PrimaryAddress(), addr, port_,
                                                  port, std::move(payload)));
}

void UdpSocket::Deliver(const net::Packet& p) {
  ++datagrams_received_;
  bytes_received_ += p.payload().size();
  if (on_receive_) {
    on_receive_(p.payload(), UdpEndpoint{p.ip().src, p.udp().src_port});
  }
}

UdpStack::UdpStack(net::Node* node) : node_(node) {
  node_->RegisterProtocol(net::IpProtocol::kUdp,
                          [this](net::PacketPtr p) { OnUdpPacket(std::move(p)); });
}

std::unique_ptr<UdpSocket> UdpStack::Bind(uint16_t port) {
  if (port == 0) {
    for (int attempts = 0; attempts < 65536; ++attempts) {
      uint16_t candidate = next_ephemeral_++;
      if (next_ephemeral_ == 0) {
        next_ephemeral_ = 20000;
      }
      if (candidate >= 1024 && sockets_.count(candidate) == 0) {
        port = candidate;
        break;
      }
    }
    if (port == 0) {
      return nullptr;
    }
  } else if (sockets_.count(port) != 0) {
    return nullptr;
  }
  auto socket = std::make_unique<UdpSocket>(this, port);
  sockets_[port] = socket.get();
  return socket;
}

void UdpStack::Unbind(uint16_t port) { sockets_.erase(port); }

void UdpStack::OnUdpPacket(net::PacketPtr packet) {
  if (!packet->has_udp()) {
    return;
  }
  if (!packet->VerifyChecksums()) {
    ++checksum_failures_;
    return;  // Corrupted in flight; UDP offers no recovery.
  }
  ++in_datagrams_;
  auto it = sockets_.find(packet->udp().dst_port);
  if (it == sockets_.end()) {
    ++no_ports_;
    return;
  }
  it->second->Deliver(*packet);
}

}  // namespace comma::udp

// Per-node UDP stack: sockets bound to ports with receive callbacks.
// Carries the EEM monitor protocol and the real-time media workloads.
#ifndef COMMA_UDP_UDP_STACK_H_
#define COMMA_UDP_UDP_STACK_H_

#include <functional>
#include <map>
#include <memory>

#include "src/net/node.h"

namespace comma::udp {

class UdpStack;

struct UdpEndpoint {
  net::Ipv4Address addr;
  uint16_t port = 0;
};

class UdpSocket {
 public:
  // Callback receives payload plus the sender's address/port.
  using ReceiveCallback = std::function<void(const util::Bytes&, const UdpEndpoint&)>;

  UdpSocket(UdpStack* stack, uint16_t port);
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void SendTo(net::Ipv4Address addr, uint16_t port, util::Bytes payload);
  void set_on_receive(ReceiveCallback cb) { on_receive_ = std::move(cb); }

  uint16_t port() const { return port_; }
  uint64_t datagrams_sent() const { return datagrams_sent_; }
  uint64_t datagrams_received() const { return datagrams_received_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class UdpStack;
  void Deliver(const net::Packet& p);

  UdpStack* stack_;
  uint16_t port_;
  ReceiveCallback on_receive_;
  uint64_t datagrams_sent_ = 0;
  uint64_t datagrams_received_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

class UdpStack {
 public:
  explicit UdpStack(net::Node* node);
  UdpStack(const UdpStack&) = delete;
  UdpStack& operator=(const UdpStack&) = delete;

  // Binds a socket to `port` (0 picks an ephemeral port). Returns nullptr if
  // the port is taken.
  std::unique_ptr<UdpSocket> Bind(uint16_t port);

  net::Node* node() const { return node_; }
  uint64_t in_datagrams() const { return in_datagrams_; }
  uint64_t no_ports() const { return no_ports_; }
  // Datagrams dropped for failing checksum verification.
  uint64_t checksum_failures() const { return checksum_failures_; }

 private:
  friend class UdpSocket;
  void OnUdpPacket(net::PacketPtr packet);
  void Unbind(uint16_t port);

  net::Node* node_;
  std::map<uint16_t, UdpSocket*> sockets_;
  uint16_t next_ephemeral_ = 20000;
  uint64_t in_datagrams_ = 0;
  uint64_t no_ports_ = 0;
  uint64_t checksum_failures_ = 0;
};

}  // namespace comma::udp

#endif  // COMMA_UDP_UDP_STACK_H_

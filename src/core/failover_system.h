// Warm-standby gateway failover assembled over the Mobile IP topology
// (docs/robustness.md, "Checkpoint & failover").
//
// Two foreign-agent routers each host a Service Proxy. FA1 is the *primary*
// gateway: the mobile attaches through it, its proxy runs the services, and
// a CheckpointManager replicates filter state to FA2 over the simulated
// backbone (checkpoint traffic shares links with data traffic). FA2 is the
// *warm standby*: its CheckpointReceiver holds the latest replicated
// CheckpointState and watches the inter-frame gap.
//
// When the primary crashes (ScheduleGatewayCrash severs its backhaul and
// wireless link and destroys its proxy, EEM, and manager), the frames stop,
// the standby's watchdog fires, and TakeOver() runs the recovery state
// machine:
//   1. the standby SP imports the last checkpoint (streams adopted first,
//      services re-issued with restored state; failures degrade to
//      pass-through — RestoreFromCheckpoint);
//   2. Mobile IP re-registers the mobile through the backup FA
//      (MoveToForeign2: agent solicitation, registration via FA2, HA
//      re-tunnels);
//   3. a fresh EEM server + client come up on the standby and the metrics
//      bridge re-registers the proxy's registry as EEM variables;
//   4. recovery metrics land in the standby registry ("sp.recovery.*").
// Streams whose TTSF state was stale enter bypass-and-drain (ttsf_filter);
// streams whose services could not be restored run as plain pass-through.
// Either way the end hosts' own retransmissions revive the transfer — no
// stream stalls past its RTO backoff ceiling.
#ifndef COMMA_CORE_FAILOVER_SYSTEM_H_
#define COMMA_CORE_FAILOVER_SYSTEM_H_

#include <functional>
#include <memory>

#include "src/mobileip/proxy_handoff.h"
#include "src/mobileip/scenario.h"
#include "src/monitor/eem_client.h"
#include "src/monitor/eem_server.h"
#include "src/proxy/checkpoint.h"
#include "src/proxy/service_proxy.h"
#include "src/sim/fault_plan.h"

namespace comma::core {

struct FailoverConfig {
  mobileip::MobileIpConfig scenario;
  sim::Duration checkpoint_interval = 100 * sim::kMillisecond;
  sim::Duration watchdog = 500 * sim::kMillisecond;
  monitor::EemServerConfig eem;
  bool start_eem = true;
  // Extra filter factories registered into BOTH proxies' pools before
  // construction (tests inject custom transformers this way; a factory
  // present only on the primary would make every takeover reject it).
  std::function<void(proxy::FilterRegistry&)> extend_registry;
  // Enables the runtime invariant auditors process-wide (docs/correctness.md).
  bool debug_checks = false;
};

// What happened across one crash/takeover cycle.
struct FailoverRecovery {
  bool crashed = false;
  bool taken_over = false;
  sim::TimePoint crash_at = 0;
  sim::TimePoint takeover_at = 0;
  // Primary-side counts recorded at the instant of the crash.
  uint64_t pre_crash_streams = 0;
  uint64_t pre_crash_services = 0;
  mobileip::RestoreResult restore;
};

class FailoverSystem {
 public:
  explicit FailoverSystem(const FailoverConfig& config = {});
  ~FailoverSystem();
  FailoverSystem(const FailoverSystem&) = delete;
  FailoverSystem& operator=(const FailoverSystem&) = delete;

  // Attaches the mobile through the primary FA and starts checkpoint
  // replication. Call once, before Run.
  void Start();

  // --- Fault injection ---
  sim::FaultPlan& fault_plan() { return fault_plan_; }
  // Arms the plan; fired faults are traced through the standby router (it
  // survives the crash). Fault actions mutate FA-side state, so the plan's
  // events belong to the fa region on a partitioned scenario.
  void ArmFaults() {
    sim::ScopedRegion in_fa(&scenario_.sim(), scenario_.fa_region());
    fault_plan_.Arm(&scenario_.sim(), &scenario_.fa2_router().tracer());
  }
  // Schedules an unplanned primary death at `when`: links severed, proxy,
  // checkpoint manager, and EEM destroyed. Nothing announces the crash to
  // the standby — its watchdog has to notice.
  void ScheduleGatewayCrash(sim::TimePoint when);
  // Immediate version (the scheduled fault calls this).
  void CrashPrimary();

  // --- Accessors ---
  sim::Simulator& sim() { return scenario_.sim(); }
  mobileip::MobileIpScenario& scenario() { return scenario_; }
  // The primary proxy; null after the crash.
  proxy::ServiceProxy* primary_sp() { return sp1_.get(); }
  proxy::ServiceProxy& standby_sp() { return *sp2_; }
  mobileip::ProxyHandoffManager& handoff() { return handoff_; }
  proxy::CheckpointManager* checkpoint_manager() { return ckpt_manager_.get(); }
  proxy::CheckpointReceiver& checkpoint_receiver() { return *ckpt_receiver_; }
  const FailoverRecovery& recovery() const { return recovery_; }
  monitor::EemServer* eem_server() { return eem_server_.get(); }

  // Fires after TakeOver() finishes (tests hook assertions here).
  void set_on_takeover(std::function<void()> cb) { on_takeover_ = std::move(cb); }

 private:
  // The recovery state machine, run by the standby watchdog.
  void TakeOver();
  void StartEemOn(Host& host, proxy::ServiceProxy& sp);
  // Exports Mobile IP client/handoff counters into `sp`'s registry ("mip.*").
  void RegisterMobileIpMetrics(proxy::ServiceProxy& sp);

  FailoverConfig config_;
  // Declaration order doubles as teardown order (reverse): EEM and
  // checkpoint components die before the proxies, the proxies before the
  // scenario whose nodes they tap.
  mobileip::MobileIpScenario scenario_;
  mobileip::ProxyHandoffManager handoff_;
  sim::FaultPlan fault_plan_;
  std::unique_ptr<proxy::ServiceProxy> sp1_;
  std::unique_ptr<proxy::ServiceProxy> sp2_;
  std::unique_ptr<proxy::CheckpointManager> ckpt_manager_;
  std::unique_ptr<proxy::CheckpointReceiver> ckpt_receiver_;
  std::unique_ptr<monitor::EemServer> eem_server_;
  std::unique_ptr<monitor::EemClient> eem_client_;
  FailoverRecovery recovery_;
  std::function<void()> on_takeover_;
};

}  // namespace comma::core

#endif  // COMMA_CORE_FAILOVER_SYSTEM_H_

#include "src/core/multi_gateway.h"

#include <utility>

#include "src/filters/standard_set.h"
#include "src/sim/witness.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace comma::core {

namespace {

// Cluster k addressing (k < 100): the wired subnet is 10.k/16, the wireless
// subnet 11.k/16, and the backbone point-to-point pair 192.168.k/24 —
// the Fig. 1.1 plan replicated per cluster.
net::Ipv4Address WiredHostAddr(int k) {
  return net::Ipv4Address(10, static_cast<uint8_t>(k), 0, 99);
}
net::Ipv4Address GatewayWiredAddr(int k) {
  return net::Ipv4Address(10, static_cast<uint8_t>(k), 0, 1);
}
net::Ipv4Address GatewayWirelessAddr(int k) {
  return net::Ipv4Address(11, static_cast<uint8_t>(k), 10, 1);
}
net::Ipv4Address MobileHostAddr(int k) {
  return net::Ipv4Address(11, static_cast<uint8_t>(k), 10, 10);
}
net::Ipv4Address GatewayBackboneAddr(int k) {
  return net::Ipv4Address(192, 168, static_cast<uint8_t>(k), 2);
}
net::Ipv4Address BackboneRouterAddr(int k) {
  return net::Ipv4Address(192, 168, static_cast<uint8_t>(k), 1);
}

net::Ipv4Prefix Prefix(const std::string& text) {
  auto parsed = net::Ipv4Prefix::Parse(text);
  COMMA_CHECK(parsed.has_value()) << "bad prefix " << text;
  return *parsed;
}

// Stable per-entity RNG stream indices (DeriveStreamSeed): partitioning the
// topology differently must never shift another entity's sequence.
enum StreamSlot : uint64_t {
  kSlotWiredHost = 0,
  kSlotGateway = 1,
  kSlotMobile = 2,
  kSlotWiredLink = 3,
  kSlotWirelessLink = 4,
  kSlotBackboneLink = 5,
  kSlotFaults = 6,
  kSlotsPerCluster = 8,
  kSlotBackboneRouter = 1'000'000,
};

uint64_t ClusterSeed(uint64_t seed, int k, StreamSlot slot) {
  return sim::DeriveStreamSeed(seed,
                               static_cast<uint64_t>(k) * kSlotsPerCluster + slot);
}

}  // namespace

MultiGatewayScenario::MultiGatewayScenario(const MultiGatewayConfig& config)
    : config_(config), sim_(config.sim) {
  COMMA_CHECK(config_.clusters >= 1 && config_.clusters < 100) << "cluster count out of range";

  // Region 0 holds the backbone router; cluster k gets region k+1.
  backbone_ = std::make_unique<Host>(&sim_, "backbone",
                                     sim::Random(sim::DeriveStreamSeed(config_.seed,
                                                                       kSlotBackboneRouter)));
  clusters_.resize(static_cast<size_t>(config_.clusters));
  for (int k = 0; k < config_.clusters; ++k) {
    Cluster& cluster = clusters_[static_cast<size_t>(k)];
    cluster.region = sim_.AddRegion(util::Format("cluster-%d", k));
    sim::ScopedRegion guard(&sim_, cluster.region);

    const auto host_rng = [&](StreamSlot slot) {
      return sim::Random(ClusterSeed(config_.seed, k, slot));
    };
    cluster.wired_host =
        std::make_unique<Host>(&sim_, util::Format("wired-%d", k), host_rng(kSlotWiredHost));
    cluster.gateway =
        std::make_unique<Host>(&sim_, util::Format("gw-%d", k), host_rng(kSlotGateway));
    cluster.mobile =
        std::make_unique<Host>(&sim_, util::Format("mobile-%d", k), host_rng(kSlotMobile));

    cluster.wired_link = std::make_unique<net::Link>(
        &sim_, host_rng(kSlotWiredLink), config_.wired, util::Format("wired-%d", k));
    cluster.wireless_link = std::make_unique<net::Link>(
        &sim_, host_rng(kSlotWirelessLink), config_.wireless, util::Format("wireless-%d", k));
    cluster.backbone_link = std::make_unique<net::Link>(
        &sim_, host_rng(kSlotBackboneLink), config_.backbone, util::Format("backbone-%d", k));
    cluster.wired_link->SetRegions(cluster.region, cluster.region);
    cluster.wireless_link->SetRegions(cluster.region, cluster.region);
    // Side 0 is the gateway (cluster region), side 1 the backbone router:
    // the one cross-region edge per cluster, lookahead = propagation delay.
    cluster.backbone_link->SetRegions(cluster.region, sim::kMainRegion);

    const uint32_t wh_if = cluster.wired_host->AddInterface(WiredHostAddr(k));
    const uint32_t gw_wired_if = cluster.gateway->AddInterface(GatewayWiredAddr(k));
    const uint32_t gw_wireless_if = cluster.gateway->AddInterface(GatewayWirelessAddr(k));
    const uint32_t gw_backbone_if = cluster.gateway->AddInterface(GatewayBackboneAddr(k));
    const uint32_t mh_if = cluster.mobile->AddInterface(MobileHostAddr(k));
    const uint32_t bb_if = backbone_->AddInterface(BackboneRouterAddr(k));

    cluster.wired_host->AttachLink(wh_if, cluster.wired_link.get(), 0);
    cluster.gateway->AttachLink(gw_wired_if, cluster.wired_link.get(), 1);
    cluster.gateway->AttachLink(gw_wireless_if, cluster.wireless_link.get(), 0);
    cluster.mobile->AttachLink(mh_if, cluster.wireless_link.get(), 1);
    cluster.gateway->AttachLink(gw_backbone_if, cluster.backbone_link.get(), 0);
    backbone_->AttachLink(bb_if, cluster.backbone_link.get(), 1);

    cluster.wired_host->SetDefaultRoute(wh_if);
    cluster.mobile->SetDefaultRoute(mh_if);
    cluster.gateway->AddRoute(Prefix(util::Format("10.%d.0.0/16", k)), gw_wired_if);
    cluster.gateway->AddRoute(Prefix(util::Format("11.%d.0.0/16", k)), gw_wireless_if);
    cluster.gateway->SetDefaultRoute(gw_backbone_if);
    backbone_->AddRoute(Prefix(util::Format("10.%d.0.0/16", k)), bb_if);
    backbone_->AddRoute(Prefix(util::Format("11.%d.0.0/16", k)), bb_if);
    backbone_->AddRoute(Prefix(util::Format("192.168.%d.0/24", k)), bb_if);

    if (config_.with_proxy) {
      cluster.sp = std::make_unique<proxy::ServiceProxy>(cluster.gateway.get(),
                                                         filters::StandardRegistry());
      // All of the mobile's inbound streams run through the tcp filter —
      // the enhanced-proxy data path every packet of cluster k crosses.
      std::string error;
      const proxy::StreamKey wildcard{net::Ipv4Address(), 0, MobileHostAddr(k), 0};
      COMMA_CHECK(cluster.sp->AddService("launcher", wildcard, {"tcp"}, &error)) << error;
    }

    cluster.faults = std::make_unique<sim::FaultPlan>();
    if (config_.with_flaps) {
      // Two scripted wireless outages per cluster, drawn from the cluster's
      // own stream so partitioning never shifts a neighbour's timeline.
      sim::Random fault_rng(ClusterSeed(config_.seed, k, kSlotFaults));
      sim::TimePoint cursor = sim::kSecond + fault_rng.UniformInt(0, 1500) * sim::kMillisecond;
      for (int flap = 0; flap < 2; ++flap) {
        const sim::Duration down = (100 + fault_rng.UniformInt(0, 200)) * sim::kMillisecond;
        net::Link* link = cluster.wireless_link.get();
        cluster.faults->Window(
            cursor, cursor + down, util::Format("flap wireless-%d", k),
            [link] { link->SetUp(false); }, [link] { link->SetUp(true); });
        cursor += down + sim::kSecond + fault_rng.UniformInt(0, 1500) * sim::kMillisecond;
      }
      cluster.faults->Arm(&sim_, &cluster.gateway->tracer());
    }
  }
}

MultiGatewayScenario::~MultiGatewayScenario() = default;

net::Ipv4Address MultiGatewayScenario::mobile_addr(int k) const { return MobileHostAddr(k); }

void MultiGatewayScenario::StartTraffic() {
  COMMA_CHECK(!traffic_started_) << "StartTraffic called twice";
  traffic_started_ = true;
  const int n = config_.clusters;
  for (int k = 0; k < n; ++k) {
    Cluster& cluster = clusters_[static_cast<size_t>(k)];
    sim::ScopedRegion guard(&sim_, cluster.region);
    cluster.local_sink = std::make_unique<apps::BulkSink>(cluster.mobile.get(), 80);
    cluster.cross_sink = std::make_unique<apps::BulkSink>(cluster.mobile.get(), 81);
  }
  for (int k = 0; k < n; ++k) {
    Cluster& cluster = clusters_[static_cast<size_t>(k)];
    {
      sim::ScopedRegion guard(&sim_, cluster.region);
      cluster.local_sender = std::make_unique<apps::BulkSender>(
          cluster.wired_host.get(), MobileHostAddr(k), 80,
          apps::PatternPayload(config_.local_bytes));
    }
    // The cross stream originates in the *next* cluster's wired host and
    // rides the backbone into this one.
    Cluster& src = clusters_[static_cast<size_t>((k + 1) % n)];
    sim::ScopedRegion guard(&sim_, src.region);
    cluster.cross_sender = std::make_unique<apps::BulkSender>(
        src.wired_host.get(), MobileHostAddr(k), 81, apps::PatternPayload(config_.cross_bytes));
  }
}

bool MultiGatewayScenario::AllCompleted() const {
  for (const Cluster& cluster : clusters_) {
    if (cluster.local_sink == nullptr ||
        cluster.local_sink->bytes_received() != config_.local_bytes ||
        cluster.cross_sink->bytes_received() != config_.cross_bytes) {
      return false;
    }
  }
  return true;
}

std::string MultiGatewayScenario::FaultLog() const {
  std::string out;
  for (int k = 0; k < config_.clusters; ++k) {
    out += util::Format("## cluster %d\n", k);
    out += clusters_[static_cast<size_t>(k)].faults->AppliedLog();
  }
  return out;
}

std::string MultiGatewayScenario::StreamWitness() const {
  std::string out;
  const auto line = [&](int k, int port, const apps::BulkSink* sink) {
    const std::string body(sink->received().begin(), sink->received().end());
    out += util::Format("cluster=%d port=%d bytes=%llu hash=%016llx last_byte_at=%lld\n", k,
                        port, static_cast<unsigned long long>(sink->bytes_received()),
                        static_cast<unsigned long long>(sim::WitnessHash(body)),
                        static_cast<long long>(sink->last_byte_at()));
  };
  for (int k = 0; k < config_.clusters; ++k) {
    const Cluster& cluster = clusters_[static_cast<size_t>(k)];
    if (cluster.local_sink != nullptr) {
      line(k, 80, cluster.local_sink.get());
      line(k, 81, cluster.cross_sink.get());
    }
  }
  return out;
}

std::string MultiGatewayScenario::LinkStatsWitness() const {
  std::string out;
  const auto stats = [&](const net::Link& link) {
    for (int side = 0; side < 2; ++side) {
      const net::LinkSideStats& s = link.stats(side);
      out += util::Format(
          "%s[%d] tx=%llu/%llu rx=%llu/%llu drops=%llu/%llu/%llu corrupt=%llu\n",
          link.name().c_str(), side, static_cast<unsigned long long>(s.tx_packets),
          static_cast<unsigned long long>(s.tx_bytes),
          static_cast<unsigned long long>(s.rx_packets),
          static_cast<unsigned long long>(s.rx_bytes),
          static_cast<unsigned long long>(s.drops_queue),
          static_cast<unsigned long long>(s.drops_error),
          static_cast<unsigned long long>(s.drops_down),
          static_cast<unsigned long long>(s.corrupted));
    }
  };
  for (const Cluster& cluster : clusters_) {
    stats(*cluster.wired_link);
    stats(*cluster.wireless_link);
    stats(*cluster.backbone_link);
  }
  return out;
}

std::string MultiGatewayScenario::Witness() const {
  std::string out = "=== faults ===\n" + FaultLog();
  out += "=== streams ===\n" + StreamWitness();
  out += "=== links ===\n" + LinkStatsWitness();
  out += util::Format(
      "=== sim ===\nepochs=%llu cross_region_events=%llu events=%llu critical_path=%llu\n",
      static_cast<unsigned long long>(sim_.epochs()),
      static_cast<unsigned long long>(sim_.cross_region_events()),
      static_cast<unsigned long long>(sim_.EventsRun()),
      static_cast<unsigned long long>(sim_.critical_path_events()));
  return out;
}

}  // namespace comma::core
